package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"webwave/internal/gateway"
)

func startService(t *testing.T) (*service, *httptest.Server) {
	t.Helper()
	svc, err := buildService(7, 4, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return svc, srv
}

// TestServeDocAndCacheHit smokes the read path: a published document comes
// back with the protocol headers, and a repeat of the same request is
// served again (a cache hit somewhere in the tree — same body, a live
// Served-By either way).
func TestServeDocAndCacheHit(t *testing.T) {
	_, srv := startService(t)
	var firstBody string
	for i := 0; i < 2; i++ {
		resp, err := http.Get(srv.URL + "/docs/doc-0")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %d: status %d", i, resp.StatusCode)
		}
		if resp.Header.Get("X-WebWave-Served-By") == "" {
			t.Fatalf("GET %d: missing X-WebWave-Served-By", i)
		}
		if i == 0 {
			firstBody = string(body)
			continue
		}
		if string(body) != firstBody {
			t.Fatalf("repeat GET body %q, want %q", body, firstBody)
		}
	}
}

// TestSessionHeaderReadMyWrites exercises the new session flow end to end
// through the command's own service assembly: PUT returns a session token,
// and a GET presenting it must serve at least the written version.
func TestSessionHeaderReadMyWrites(t *testing.T) {
	_, srv := startService(t)
	put, err := http.NewRequest(http.MethodPut, srv.URL+"/docs/doc-1", bytes.NewReader([]byte("rewritten")))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(put)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT status %d, want %d", resp.StatusCode, http.StatusNoContent)
	}
	token := resp.Header.Get(gateway.SessionHeader)
	if token != "doc-1=1" {
		t.Fatalf("session token %q, want %q", token, "doc-1=1")
	}

	get, err := http.NewRequest(http.MethodGet, srv.URL+"/docs/doc-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	get.Header.Set(gateway.SessionHeader, token)
	resp, err = http.DefaultClient.Do(get)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session GET status %d", resp.StatusCode)
	}
	if string(body) != "rewritten" {
		t.Fatalf("session GET body %q, want the written body", body)
	}
	if got := resp.Header.Get(gateway.DocVersionHeader); got != "1" {
		t.Fatalf("session GET version %q, want 1", got)
	}
}

// TestRunErrors covers the command's own failure surface without binding a
// real port: a bad flag fails the parse, a zero-node tree fails assembly,
// and an unlistenable address surfaces the server error.
func TestRunErrors(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-nodes", "0"}); err == nil {
		t.Error("zero-node tree accepted")
	}
	if err := run([]string{"-nodes", "3", "-docs", "1", "-listen", "127.0.0.1:99999"}); err == nil {
		t.Error("unlistenable address accepted")
	}
}

// TestErrorPaths covers the failure surface: a missing document name is a
// 400, an unpublished document a 404, and an unsupported method a 405.
func TestErrorPaths(t *testing.T) {
	_, srv := startService(t)
	cases := []struct {
		method, path string
		want         int
	}{
		{http.MethodGet, "/docs/", http.StatusBadRequest},
		{http.MethodGet, "/docs/no-such-doc", http.StatusNotFound},
		{http.MethodGet, "/other/doc-0", http.StatusNotFound},
		{http.MethodDelete, "/docs/doc-0", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}
}
