// Command webwave-http publishes a live WebWave tree as an ordinary HTTP
// document service: it starts one cache server per tree node over the
// in-memory transport, fronts the tree with the HTTP gateway, and serves
// GET /docs/<name> until interrupted.
//
// Response headers expose the protocol at work: X-WebWave-Served-By names
// the cache server that answered and X-WebWave-Hops how many tree edges the
// request climbed before stumbling on a copy. Hammer a hot document and
// watch Served-By migrate down the tree as WebWave delegates copies.
//
// Documents are writable: PUT /docs/<name> republishes a new version into
// the tree and returns an X-WebWave-Session token; presenting that token on
// later GETs (any entry node) guarantees read-my-writes — a node holding an
// older copy bypasses it and refreshes through the tree.
//
// Usage:
//
//	webwave-http -listen 127.0.0.1:8080 -nodes 15 -docs 8
//	curl -i http://127.0.0.1:8080/docs/doc-0
//	curl -i -X PUT --data-binary 'new body' http://127.0.0.1:8080/docs/doc-0
//	curl -i -H 'X-WebWave-Session: doc-0=1' http://127.0.0.1:8080/docs/doc-0
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"time"

	"webwave/internal/cluster"
	"webwave/internal/core"
	"webwave/internal/gateway"
	"webwave/internal/tree"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "webwave-http:", err)
		os.Exit(1)
	}
}

// service is the assembled document service: a live in-process tree behind
// the HTTP gateway. Split from run so tests can drive the handler through
// httptest without flags, sockets, or signal handling.
type service struct {
	c      *cluster.Cluster
	gw     *gateway.Gateway
	tree   *tree.Tree
	leaves []int
}

// Handler is the HTTP surface tests and the real server both mount.
func (s *service) Handler() http.Handler { return s.gw }

func (s *service) Close() {
	s.gw.Close()
	s.c.Stop()
}

// buildService starts the tree and fronts it with a gateway whose entry
// points are the tree's leaves.
func buildService(nodes, nDocs int, seed int64, tunneling bool) (*service, error) {
	t, err := tree.Random(nodes, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	docs := make(map[core.DocID][]byte, nDocs)
	for i := 0; i < nDocs; i++ {
		id := core.DocID(fmt.Sprintf("doc-%d", i))
		docs[id] = []byte(fmt.Sprintf("WebWave document %q served off a %d-node tree\n", id, nodes))
	}

	c, err := cluster.New(t, docs, cluster.Config{
		GossipPeriod:    50 * time.Millisecond,
		DiffusionPeriod: 100 * time.Millisecond,
		Window:          time.Second,
		Tunneling:       tunneling,
	})
	if err != nil {
		return nil, err
	}

	var leaves []int
	for v := 0; v < t.Len(); v++ {
		if t.NumChildren(v) == 0 {
			leaves = append(leaves, v)
		}
	}
	gw := gateway.New(c, gateway.Config{Origin: gateway.HashOrigin(leaves)})
	return &service{c: c, gw: gw, tree: t, leaves: leaves}, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("webwave-http", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:8080", "HTTP listen address")
	nodes := fs.Int("nodes", 15, "tree size")
	nDocs := fs.Int("docs", 8, "number of published documents (doc-0 ... doc-N-1)")
	seed := fs.Int64("seed", 1, "tree seed")
	tunneling := fs.Bool("tunneling", true, "enable Section 5.2 tunneling")
	if err := fs.Parse(args); err != nil {
		return err
	}

	svc, err := buildService(*nodes, *nDocs, *seed, *tunneling)
	if err != nil {
		return err
	}
	defer svc.Close()

	srv := &http.Server{
		Addr:              *listen,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	fmt.Printf("webwave-http: %d-node tree, %d documents, entry at %d leaves\n",
		svc.tree.Len(), *nDocs, len(svc.leaves))
	fmt.Printf("webwave-http: serving on http://%s/docs/doc-0\n", *listen)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	select {
	case err := <-errCh:
		return err
	case <-sig:
		fmt.Println("\nwebwave-http: shutting down")
		return srv.Close()
	}
}
