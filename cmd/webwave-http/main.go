// Command webwave-http publishes a live WebWave tree as an ordinary HTTP
// document service: it starts one cache server per tree node over the
// in-memory transport, fronts the tree with the HTTP gateway, and serves
// GET /docs/<name> until interrupted.
//
// Response headers expose the protocol at work: X-WebWave-Served-By names
// the cache server that answered and X-WebWave-Hops how many tree edges the
// request climbed before stumbling on a copy. Hammer a hot document and
// watch Served-By migrate down the tree as WebWave delegates copies.
//
// Usage:
//
//	webwave-http -listen 127.0.0.1:8080 -nodes 15 -docs 8
//	curl -i http://127.0.0.1:8080/docs/doc-0
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"time"

	"webwave/internal/cluster"
	"webwave/internal/core"
	"webwave/internal/gateway"
	"webwave/internal/tree"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "webwave-http:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("webwave-http", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:8080", "HTTP listen address")
	nodes := fs.Int("nodes", 15, "tree size")
	nDocs := fs.Int("docs", 8, "number of published documents (doc-0 ... doc-N-1)")
	seed := fs.Int64("seed", 1, "tree seed")
	tunneling := fs.Bool("tunneling", true, "enable Section 5.2 tunneling")
	if err := fs.Parse(args); err != nil {
		return err
	}

	t, err := tree.Random(*nodes, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	docs := make(map[core.DocID][]byte, *nDocs)
	for i := 0; i < *nDocs; i++ {
		id := core.DocID(fmt.Sprintf("doc-%d", i))
		docs[id] = []byte(fmt.Sprintf("WebWave document %q served off a %d-node tree\n", id, *nodes))
	}

	c, err := cluster.New(t, docs, cluster.Config{
		GossipPeriod:    50 * time.Millisecond,
		DiffusionPeriod: 100 * time.Millisecond,
		Window:          time.Second,
		Tunneling:       *tunneling,
	})
	if err != nil {
		return err
	}
	defer c.Stop()

	var leaves []int
	for v := 0; v < t.Len(); v++ {
		if t.NumChildren(v) == 0 {
			leaves = append(leaves, v)
		}
	}
	gw := gateway.New(c, gateway.Config{Origin: gateway.HashOrigin(leaves)})
	defer gw.Close()

	srv := &http.Server{
		Addr:              *listen,
		Handler:           gw,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	fmt.Printf("webwave-http: %d-node tree, %d documents, entry at %d leaves\n",
		t.Len(), len(docs), len(leaves))
	fmt.Printf("webwave-http: serving on http://%s/docs/doc-0\n", *listen)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	select {
	case err := <-errCh:
		return err
	case <-sig:
		fmt.Println("\nwebwave-http: shutting down")
		return srv.Close()
	}
}
