package main

import (
	"testing"
)

func TestLoadInstanceFigures(t *testing.T) {
	for _, fig := range []string{"2a", "2b", "4", "6"} {
		tr, e, err := loadInstance(fig, "", "")
		if err != nil {
			t.Fatalf("figure %s: %v", fig, err)
		}
		if tr.Len() != len(e) {
			t.Errorf("figure %s: tree %d nodes, %d rates", fig, tr.Len(), len(e))
		}
	}
	if _, _, err := loadInstance("99", "", ""); err == nil {
		t.Error("unknown figure accepted")
	}
	if _, _, err := loadInstance("", "", ""); err == nil {
		t.Error("missing input accepted")
	}
}

func TestLoadInstanceCustom(t *testing.T) {
	tr, e, err := loadInstance("", "-1 0 0", "60 0 0")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 || e[0] != 60 {
		t.Errorf("custom instance: n=%d e=%v", tr.Len(), e)
	}
	if _, _, err := loadInstance("", "-1 0", "1"); err == nil {
		t.Error("rate count mismatch accepted")
	}
	if _, _, err := loadInstance("", "-1 0", "1 x"); err == nil {
		t.Error("non-numeric rate accepted")
	}
	if _, _, err := loadInstance("", "bogus", "1"); err == nil {
		t.Error("bogus parent list accepted")
	}
	if _, _, err := loadInstance("", "-1 0", "1 -5"); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestParseVector(t *testing.T) {
	v, err := parseVector("1.5 2 3", 3)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 1.5 || v[2] != 3 {
		t.Errorf("parsed %v", v)
	}
	if _, err := parseVector("1 2", 3); err == nil {
		t.Error("short vector accepted")
	}
	if _, err := parseVector("a b c", 3); err == nil {
		t.Error("non-numeric vector accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	// The full CLI path on paper figures and a weighted instance; output
	// goes to stdout, correctness is signalled by the error.
	cases := [][]string{
		{"-figure", "4", "-trace"},
		{"-figure", "2a", "-dot"},
		{"-parents", "-1 0", "-rates", "0 90", "-capacity", "1 2"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
	if err := run([]string{"-figure", "4", "-capacity", "bad"}); err == nil {
		t.Error("bad capacity accepted")
	}
	if err := run([]string{"-figure", "nope"}); err == nil {
		t.Error("bad figure accepted")
	}
}
