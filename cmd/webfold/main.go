// Command webfold computes the TLB-optimal load assignment for a routing
// tree with WebFold (the paper's Figure 3 algorithm) and prints the folds,
// the per-node assignment and the folding trace.
//
// Usage:
//
//	webfold -parents "-1 0 0 1 1 2 5 5" -rates "10 0 0 40 40 0 12 12" [-trace] [-dot]
//	webfold -figure 2a|2b|4|6
//	webfold -parents "-1 0" -rates "0 90" -capacity "1 2"   # heterogeneous servers
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"webwave/internal/core"
	"webwave/internal/fold"
	"webwave/internal/tree"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "webfold:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("webfold", flag.ContinueOnError)
	parents := fs.String("parents", "", "space-separated parent list (-1 marks the root)")
	rates := fs.String("rates", "", "space-separated spontaneous request rates, one per node")
	capacity := fs.String("capacity", "", "optional per-node capacities (heterogeneous servers)")
	figure := fs.String("figure", "", "use a paper instance instead: 2a, 2b, 4 or 6")
	showTrace := fs.Bool("trace", false, "print the folding sequence")
	showDot := fs.Bool("dot", false, "print the tree in Graphviz DOT format")
	if err := fs.Parse(args); err != nil {
		return err
	}

	t, e, err := loadInstance(*figure, *parents, *rates)
	if err != nil {
		return err
	}

	var res *fold.Result
	if *capacity != "" {
		caps, err := parseVector(*capacity, t.Len())
		if err != nil {
			return fmt.Errorf("capacity: %w", err)
		}
		res, err = fold.ComputeWeighted(t, e, caps)
		if err != nil {
			return err
		}
		if err := fold.VerifyWeighted(t, e, caps, res, 1e-9); err != nil {
			return fmt.Errorf("verification failed: %w", err)
		}
	} else {
		res, err = fold.Compute(t, e)
		if err != nil {
			return err
		}
		if err := fold.VerifyAll(t, e, res, 1e-9); err != nil {
			return fmt.Errorf("verification failed: %w", err)
		}
	}

	fmt.Printf("nodes: %d, total rate: %.6g, GLE would be %.6g\n",
		t.Len(), core.SumVec(e), core.SumVec(e)/float64(t.Len()))
	fmt.Printf("TLB max load: %.6g, folds: %d, TLB==GLE: %v\n",
		res.MaxLoad(), res.FoldCount(), res.IsGLE(1e-9))
	fmt.Println()
	fmt.Print(t.FormatWithValues([]string{"E", "L", "A"}, e, res.Load, res.Forward))
	fmt.Println("\nfolds:")
	for _, f := range res.Folds {
		fmt.Printf("  root=%d load=%.6g members=%v\n", f.Root, f.Load, f.Members)
	}
	if *showTrace {
		fmt.Println("\nfolding sequence:")
		for i, s := range res.Trace {
			fmt.Printf("  %2d: %s\n", i+1, s)
		}
	}
	if *showDot {
		fmt.Println()
		fmt.Print(t.DOT("webfold", func(v int) string {
			return fmt.Sprintf("%d\nE=%.4g L=%.4g", v, e[v], res.Load[v])
		}))
	}
	return nil
}

func loadInstance(figure, parents, rates string) (*tree.Tree, core.Vector, error) {
	switch figure {
	case "2a":
		t, e := tree.Figure2a()
		return t, e, nil
	case "2b":
		t, e := tree.Figure2b()
		return t, e, nil
	case "4":
		t, e := tree.Figure4()
		return t, e, nil
	case "6":
		t, e := tree.Figure6()
		return t, e, nil
	case "":
	default:
		return nil, nil, fmt.Errorf("unknown figure %q (want 2a, 2b, 4 or 6)", figure)
	}
	if parents == "" {
		return nil, nil, fmt.Errorf("either -figure or -parents/-rates is required")
	}
	t, err := tree.ParseParents(parents)
	if err != nil {
		return nil, nil, err
	}
	e, err := parseVector(rates, t.Len())
	if err != nil {
		return nil, nil, fmt.Errorf("rates: %w", err)
	}
	if err := core.ValidateRates(e, t.Len()); err != nil {
		return nil, nil, err
	}
	return t, e, nil
}

func parseVector(s string, n int) (core.Vector, error) {
	fields := strings.Fields(s)
	if len(fields) != n {
		return nil, fmt.Errorf("need %d values, got %d", n, len(fields))
	}
	out := make(core.Vector, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("value %d %q: %w", i, f, err)
		}
		out[i] = v
	}
	return out, nil
}
