// Command webwave-swarm launches an N-hundred-node WebWave tree as separate
// OS processes over real TCP — one `webwave-cluster node` exec per routing
// tree node — drives a Poisson schedule through it, SIGKILLs a whole rack
// mid-run, re-execs it warm from its journals, and writes the scenario
// report benchgate consumes.
//
// Usage:
//
//	webwave-swarm -node-bin bin/webwave-cluster -racks 4 -rack-nodes 25 -rack-depth 5 -json BENCH_swarm.json
//
// The default shape is the headline scenario: 1 + 4×25 = 101 processes at
// tree depth 6, rack 0 killed a third of the way in. Availability, repair
// and reabsorption times, warm-recovery counts and harness health all land
// in the JSON report (gate with `benchgate -swarm-report`).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"webwave/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "webwave-swarm:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("webwave-swarm", flag.ContinueOnError)
	nodeBin := fs.String("node-bin", "bin/webwave-cluster", "node binary (exec'd as '<node-bin> node ...' per tree node)")
	seed := fs.Int64("seed", 7, "RNG seed (tree shape, catalog demand, schedule)")
	racks := fs.Int("racks", 0, "racks under the root (0 = default 4)")
	rackNodes := fs.Int("rack-nodes", 0, "nodes per rack (0 = default 25)")
	rackDepth := fs.Int("rack-depth", 0, "rack spine length; tree depth is this +1 (0 = default 5)")
	docs := fs.Int("docs", 0, "catalog size (0 = default 32)")
	docBytes := fs.Int("doc-bytes", 0, "body bytes per document (0 = default 512)")
	rate := fs.Float64("rate", 0, "offered load, req/s (0 = default 400)")
	duration := fs.Float64("duration", 0, "schedule length, seconds (0 = default 12)")
	killRack := fs.Int("kill-rack", 0, "rack SIGKILLed mid-run (-1 = no failure)")
	killAt := fs.Float64("kill-at", 0, "kill time, seconds (0 = duration/3)")
	downtime := fs.Float64("downtime", 0, "seconds the rack stays down (0 = duration/4)")
	heartbeatMS := fs.Int("heartbeat-ms", 0, "failure-detector period, ms (0 = default 50)")
	workdir := fs.String("workdir", "", "run directory for per-node logs and data dirs (empty = temp dir, removed at exit)")
	basePort := fs.Int("base-port", 0, "fixed port plan 127.0.0.1:base+id (0 = probe free ports)")
	cacheBudget := fs.Int64("cache-budget", 0, "per-node cache budget, bytes (0 = unlimited)")
	diskBudget := fs.Int64("disk-budget", 0, "per-node disk-tier budget, bytes (0 = unlimited)")
	jsonPath := fs.String("json", "", "write the swarm report to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if _, err := os.Stat(*nodeBin); err != nil {
		return fmt.Errorf("node binary %q: %w (build it: go build -o bin/webwave-cluster ./cmd/webwave-cluster)", *nodeBin, err)
	}

	sp := workload.SwarmSpec{
		Seed: *seed, Racks: *racks, RackNodes: *rackNodes, RackDepth: *rackDepth,
		NumDocs: *docs, DocBytes: *docBytes, TotalRate: *rate, Duration: *duration,
		KillRack: *killRack, KillAt: *killAt, Downtime: *downtime,
		HeartbeatMS: *heartbeatMS,
	}.WithDefaults()
	fmt.Printf("scenario swarm: %d racks x %d nodes (spine %d) = %d processes, %d docs, %.0f req/s for %.1fs\n",
		sp.Racks, sp.RackNodes, sp.RackDepth, 1+sp.Racks*sp.RackNodes,
		sp.NumDocs, sp.TotalRate, sp.Duration)
	if sp.KillRack >= 0 {
		fmt.Printf("  killing rack %d (%d processes) at %.1fs for %.1fs (heartbeat %dms)\n",
			sp.KillRack, sp.RackNodes, sp.KillAt, sp.Downtime, sp.HeartbeatMS)
	}

	rep, err := workload.RunSwarm(sp, workload.SwarmOptions{
		Command:          []string{*nodeBin, "node"},
		WorkDir:          *workdir,
		BasePort:         *basePort,
		CacheBudgetBytes: *cacheBudget,
		DiskBudgetBytes:  *diskBudget,
	}, func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	})
	if err != nil {
		return err
	}

	fmt.Printf("  availability %.4f (%d/%d; %d rerouted, %d failed, %d lost in flight)\n",
		rep.Availability, rep.Responses, rep.Offered,
		rep.Rerouted, rep.FailedInjects, rep.LostInFlight)
	fmt.Printf("  repair %.2fs, reabsorb %.2fs, reconnects %d, reclaimed %.1f req/s, absorbed %.1f req/s\n",
		rep.RepairSeconds, rep.ReabsorbSeconds, rep.Reconnects,
		rep.ReclaimedDuty, rep.AbsorbedDuty)
	fmt.Printf("  warm docs %d, scrape errors %d, orphaned at end %d, failed revives %d, forced teardowns %d\n",
		rep.WarmDocs, rep.ScrapeErrors, rep.FinalOrphaned,
		rep.FailedRevives, rep.ForcedTeardowns)

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  report written to %s\n", *jsonPath)
	}
	return nil
}
