package main

import (
	"os"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: webwave/internal/netproto
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEncodeGossip-8         34776181                32.89 ns/op            0 B/op          0 allocs/op
BenchmarkDecodeRequestJSON-8      283923              4248 ns/op             248 B/op          6 allocs/op
PASS
ok      webwave/internal/netproto       9.961s
pkg: webwave/internal/server
BenchmarkServeCachedRequest-8    2169637               168.8 ns/op             0 B/op          0 allocs/op
PASS
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	b := rep.Benchmarks[0]
	if b.Name != "netproto.EncodeGossip" || b.NsOp != 32.89 || b.AllocsOp != 0 {
		t.Errorf("first benchmark = %+v", b)
	}
	if rep.Benchmarks[1].AllocsOp != 6 || rep.Benchmarks[1].BOp != 248 {
		t.Errorf("second benchmark = %+v", rep.Benchmarks[1])
	}
	if rep.Benchmarks[2].Name != "server.ServeCachedRequest" {
		t.Errorf("package qualification broken: %+v", rep.Benchmarks[2])
	}
}

func TestGate(t *testing.T) {
	base := `{"schema":"webwave-bench-micro/v1","benchmarks":[
		{"name":"netproto.EncodeGossip","ns_op":30,"b_op":0,"allocs_op":0},
		{"name":"netproto.DecodeRequestJSON","ns_op":4000,"b_op":248,"allocs_op":6}]}`
	dir := t.TempDir()
	path := dir + "/baseline.json"
	if err := writeFile(path, base); err != nil {
		t.Fatal(err)
	}

	rep, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if err := gate(rep, path); err != nil {
		t.Errorf("clean run failed the gate: %v", err)
	}

	// A zero-baseline benchmark that starts allocating must fail.
	rep.Benchmarks[0].AllocsOp = 2
	if err := gate(rep, path); err == nil {
		t.Error("0 -> 2 allocs/op regression passed the gate")
	}
	rep.Benchmarks[0].AllocsOp = 0

	// A >2x regression on an allocating benchmark must fail; 2x passes.
	rep.Benchmarks[1].AllocsOp = 13
	if err := gate(rep, path); err == nil {
		t.Error("6 -> 13 allocs/op regression passed the gate")
	}
	rep.Benchmarks[1].AllocsOp = 12
	if err := gate(rep, path); err != nil {
		t.Errorf("6 -> 12 allocs/op (exactly 2x) failed the gate: %v", err)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
