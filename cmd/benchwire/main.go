// Command benchwire turns `go test -bench -benchmem` output into the
// machine-readable BENCH_wire.json artifact and enforces the allocation
// regression gate: any benchmark whose allocs/op grew to more than 2x its
// committed baseline (or above 1 when the baseline is allocation-free)
// fails the run. CI runs it via `make bench-micro` so the hot path's
// ns/op and allocs/op trajectory is recorded on every push.
//
// Usage:
//
//	go test -bench . -benchmem ./internal/netproto/ | benchwire -out BENCH_wire.json
//	benchwire -in bench.out -baseline bench/BENCH_wire_baseline.json -out BENCH_wire.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	// Name is "<package>.<benchmark>" with the Benchmark prefix and the
	// -GOMAXPROCS suffix stripped, e.g. "netproto.EncodeGossip".
	Name     string  `json:"name"`
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// Report is the BENCH_wire.json document.
type Report struct {
	Schema     string      `json:"schema"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchwire:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchwire", flag.ContinueOnError)
	in := fs.String("in", "", "bench output file (default stdin)")
	out := fs.String("out", "BENCH_wire.json", "JSON report path")
	baseline := fs.String("baseline", "", "baseline JSON to gate allocs/op regressions against")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	rep, err := parse(r)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found (was -benchmem passed?)")
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchwire: %d benchmarks -> %s\n", len(rep.Benchmarks), *out)

	if *baseline != "" {
		return gate(rep, *baseline)
	}
	return nil
}

// parse extracts benchmark result lines, qualifying names with the short
// package name from the surrounding `pkg:` headers.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Schema: "webwave-bench-micro/v1"}
	sc := bufio.NewScanner(r)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			full := strings.TrimSpace(rest)
			pkg = full[strings.LastIndexByte(full, '/')+1:]
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkName-8 N 32.89 ns/op 0 B/op 0 allocs/op
		if len(fields) < 4 {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i]
		}
		if pkg != "" {
			name = pkg + "." + name
		}
		b := Benchmark{Name: name, NsOp: -1, BOp: -1, AllocsOp: -1}
		for i := 2; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsOp = v
			case "B/op":
				b.BOp = v
			case "allocs/op":
				b.AllocsOp = v
			}
		}
		if b.NsOp < 0 {
			continue // not a result line (e.g. a failure message)
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// gate compares allocs/op against the baseline and fails on regressions.
func gate(rep *Report, baselinePath string) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	base := &Report{}
	if err := json.Unmarshal(data, base); err != nil {
		return fmt.Errorf("parse baseline: %w", err)
	}
	got := make(map[string]Benchmark, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		got[b.Name] = b
	}
	var failures []string
	checked := 0
	for _, b := range base.Benchmarks {
		cur, ok := got[b.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchwire: warning: baseline benchmark %s missing from this run\n", b.Name)
			continue
		}
		checked++
		limit := 2 * b.AllocsOp
		if b.AllocsOp == 0 {
			limit = 1 // allocation-free paths may not silently start allocating
		}
		if cur.AllocsOp > limit {
			failures = append(failures, fmt.Sprintf(
				"%s: %.0f allocs/op vs baseline %.0f (limit %.0f)",
				b.Name, cur.AllocsOp, b.AllocsOp, limit))
		}
	}
	if checked == 0 {
		return fmt.Errorf("no baseline benchmarks matched this run")
	}
	if len(failures) > 0 {
		return fmt.Errorf("allocs/op regressions:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Printf("benchwire: allocs/op gate passed (%d benchmarks checked against %s)\n", checked, baselinePath)
	return nil
}
