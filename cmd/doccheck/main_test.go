package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckFileResolvesGoodLinks(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "docs", "a.md"),
		"# Title Here\n\nsee [b](b.md), [up](../top.md#quick-start), [self](#title-here), [ext](https://example.com/x)\n")
	write(t, filepath.Join(dir, "docs", "b.md"), "# B\n")
	write(t, filepath.Join(dir, "top.md"), "# Top\n\n## Quick start\n")
	bad, err := checkFile(filepath.Join(dir, "docs", "a.md"))
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("good links reported broken: %v", bad)
	}
}

func TestCheckFileFlagsBrokenLinksAndAnchors(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "a.md"),
		"# A\n\n[gone](missing.md) and [bad anchor](b.md#nope) and [bad self](#nothing)\n")
	write(t, filepath.Join(dir, "b.md"), "# B\n")
	bad, err := checkFile(filepath.Join(dir, "a.md"))
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 3 {
		t.Fatalf("broken = %d (%v), want 3", len(bad), bad)
	}
}

func TestLinksInsideCodeFencesIgnored(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "a.md"),
		"# A\n\n```sh\ncat [not a link](nowhere.md)\n```\n")
	bad, err := checkFile(filepath.Join(dir, "a.md"))
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("fenced pseudo-link flagged: %v", bad)
	}
}

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"Quick start":               "quick-start",
		"The `evict` wire kind":     "the-evict-wire-kind",
		"Layer map: top to bottom!": "layer-map-top-to-bottom",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}
