// Command doccheck is the repository's markdown link checker: it walks the
// given files and directories (recursively, *.md), extracts every inline
// link and image, and verifies that each relative target resolves — the
// file exists, and when the link carries a #fragment into a markdown file,
// a heading with that GitHub-style anchor exists there. External schemes
// (http, https, mailto) are skipped: CI must not depend on the network.
//
// Usage:
//
//	doccheck README.md docs
//
// Exit status 1 lists every broken link, so one run shows the full damage.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	targets := os.Args[1:]
	if len(targets) == 0 {
		targets = []string{"README.md", "docs"}
	}
	files, err := collect(targets)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(1)
	}
	broken := 0
	for _, f := range files {
		bad, err := checkFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(1)
		}
		for _, b := range bad {
			fmt.Println(b)
			broken++
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d broken link(s) in %d file(s)\n", broken, len(files))
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d file(s), all links resolve\n", len(files))
}

// collect expands the argument list into markdown files.
func collect(targets []string) ([]string, error) {
	var out []string
	for _, t := range targets {
		info, err := os.Stat(t)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			out = append(out, t)
			continue
		}
		err = filepath.WalkDir(t, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(strings.ToLower(d.Name()), ".md") {
				out = append(out, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// linkRe matches inline markdown links and images: [text](target) with an
// optional title. Targets with spaces are out of scope (quote them).
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// headingRe matches ATX headings.
var headingRe = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*#*\s*$`)

// codeFenceRe strips fenced code blocks so links inside examples are not
// checked (and fake headings inside them are not collected).
var codeFenceRe = regexp.MustCompile("(?s)```.*?```")

// anchors returns the GitHub-style heading anchors of a markdown document.
func anchors(md string) map[string]bool {
	out := make(map[string]bool)
	for _, m := range headingRe.FindAllStringSubmatch(codeFenceRe.ReplaceAllString(md, ""), -1) {
		out[slugify(m[1])] = true
	}
	return out
}

// slugify approximates GitHub's heading-anchor algorithm: lowercase, drop
// everything but letters, digits, spaces and hyphens (backticks vanish),
// then turn spaces into hyphens.
func slugify(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(heading)) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// checkFile verifies every relative link in one markdown file, returning a
// description of each broken one.
func checkFile(path string) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	md := string(raw)
	selfAnchors := anchors(md)
	var bad []string
	for _, m := range linkRe.FindAllStringSubmatch(codeFenceRe.ReplaceAllString(md, ""), -1) {
		target := m[1]
		if hasScheme(target) {
			continue
		}
		file, frag, _ := strings.Cut(target, "#")
		if file == "" {
			// Same-document anchor.
			if frag != "" && !selfAnchors[frag] {
				bad = append(bad, fmt.Sprintf("%s: broken anchor %q", path, target))
			}
			continue
		}
		resolved := filepath.Join(filepath.Dir(path), file)
		info, err := os.Stat(resolved)
		if err != nil {
			bad = append(bad, fmt.Sprintf("%s: broken link %q (%s does not exist)", path, target, resolved))
			continue
		}
		if frag != "" && !info.IsDir() && strings.HasSuffix(strings.ToLower(file), ".md") {
			other, err := os.ReadFile(resolved)
			if err != nil {
				return nil, err
			}
			if !anchors(string(other))[frag] {
				bad = append(bad, fmt.Sprintf("%s: broken anchor %q (no such heading in %s)", path, target, resolved))
			}
		}
	}
	return bad, nil
}

func hasScheme(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:")
}
