package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"webwave/internal/workload"
)

func TestListRuns(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestUnknownScenario(t *testing.T) {
	if err := run([]string{"-scenario", "no-such-scenario"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestUnknownMode(t *testing.T) {
	if err := run([]string{"-scenario", "zipf-steady", "-mode", "warp"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestParseProcsRejectsGarbage(t *testing.T) {
	if _, err := parseProcs("1,x,4"); err == nil {
		t.Fatal("garbage proc list accepted")
	}
	sweep, err := parseProcs("1,2,4")
	if err != nil || len(sweep) != 3 || sweep[2] != 4 {
		t.Fatalf("parseProcs(1,2,4) = %v, %v", sweep, err)
	}
}

// TestSessionScenarioCLI drives the session scenario through the CLI
// dispatch at small scale and checks the written report parses with the
// headline shape intact: zero violations with tokens, some without.
func TestSessionScenarioCLI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "session.json")
	if err := run([]string{"-scenario", "session", "-seed", "1",
		"-subtrees", "2", "-leaves-per", "2", "-docs", "2",
		"-rounds", "6", "-reads-per-write", "3", "-json", path}); err != nil {
		t.Fatalf("small session run: %v", err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep := &workload.SessionReport{}
	if err := json.Unmarshal(blob, rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Schema != workload.SessionSchema {
		t.Fatalf("schema %q, want %q", rep.Schema, workload.SessionSchema)
	}
	if rep.WithTokens.Violations != 0 {
		t.Errorf("with tokens: %d violations, want 0", rep.WithTokens.Violations)
	}
	if rep.WithoutTokens.Violations == 0 {
		t.Error("without tokens: no violations provoked")
	}
}

func TestFsFlagSet(t *testing.T) {
	// The storm scenario only honors -clients when it was set explicitly;
	// otherwise StormSpec's own default (120) wins over the flag default (16).
	if err := run([]string{"-scenario", "invalidation-storm", "-seed", "1",
		"-subtrees", "2", "-leaves-per", "2", "-clients", "12", "-writes", "2",
		"-k", "1", "-settle-ms", "20"}); err != nil {
		t.Fatalf("explicit small storm run: %v", err)
	}
}
