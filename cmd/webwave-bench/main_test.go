package main

import "testing"

func TestListRuns(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestUnknownScenario(t *testing.T) {
	if err := run([]string{"-scenario", "no-such-scenario"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestUnknownMode(t *testing.T) {
	if err := run([]string{"-scenario", "zipf-steady", "-mode", "warp"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestParseProcsRejectsGarbage(t *testing.T) {
	if _, err := parseProcs("1,x,4"); err == nil {
		t.Fatal("garbage proc list accepted")
	}
	sweep, err := parseProcs("1,2,4")
	if err != nil || len(sweep) != 3 || sweep[2] != 4 {
		t.Fatalf("parseProcs(1,2,4) = %v, %v", sweep, err)
	}
}

func TestFsFlagSet(t *testing.T) {
	// The storm scenario only honors -clients when it was set explicitly;
	// otherwise StormSpec's own default (120) wins over the flag default (16).
	if err := run([]string{"-scenario", "invalidation-storm", "-seed", "1",
		"-subtrees", "2", "-leaves-per", "2", "-clients", "12", "-writes", "2",
		"-k", "1", "-settle-ms", "20"}); err != nil {
		t.Fatalf("explicit small storm run: %v", err)
	}
}
