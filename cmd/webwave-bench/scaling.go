package main

// CLI wiring for the core-scaling scenario (internal/workload.RunCoreScaling):
// parse the GOMAXPROCS sweep, run it, print the scaling table, write the
// JSON artifact CI's benchgate compares against the committed baseline.

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"webwave/internal/workload"
)

// parseProcs turns "1,2,4,8" into the sweep list.
func parseProcs(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		n, err := strconv.Atoi(p)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -procs entry %q (want positive integers, e.g. 1,2,4,8)", p)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -procs sweep")
	}
	return out, nil
}

func runCoreScaling(sp workload.ScalingSpec, jsonPath string) error {
	sp = sp.WithDefaults()
	fmt.Printf("scenario core-scaling: %d nodes over TCP loopback, %d closed-loop clients, %d docs x %dB, %.1fs per core count, sweep %v\n",
		sp.Nodes, sp.Clients, sp.NumDocs, sp.BodyBytes, sp.Duration, sp.Procs)
	rep, err := workload.RunCoreScaling(sp, func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	})
	if err != nil {
		return err
	}
	fmt.Printf("  host cores: %d; max speedup over 1 proc: %.2fx\n", rep.HostProcs, rep.SpeedupMaxOverOne)
	for _, r := range rep.Runs {
		fmt.Printf("  procs=%d shards=%d: eff=%.3f (%6.0f req/s/core)\n",
			r.Procs, r.Shards, r.Efficiency, r.PerCoreRPS)
	}

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("report: %s\n", jsonPath)
	}
	return nil
}
