// Command webwave-bench runs named workload scenarios against the WebWave
// reproduction and emits a machine-readable JSON report comparing WebWave
// with the comparison policies on the identical request trace.
//
// Fast-forward mode (the default) replays the scenario in virtual time on
// the discrete-event engine against the document-level protocol simulator;
// two runs with the same seed produce byte-identical reports. Live mode
// replays the compressed schedule against a real in-memory cluster through
// the HTTP gateway.
//
// Usage:
//
//	webwave-bench -list
//	webwave-bench -scenario flash-crowd -seed 1 -json out.json
//	webwave-bench -scenario churn -mode live -speedup 20 -json out.json
//	webwave-bench -scenario zipf-steady -n 63 -duration 60 -rate 500
//	webwave-bench -scenario zipf-steady -mode live -transport tcp -wirev 2
//	webwave-bench -scenario wire-throughput -duration 3 -json BENCH_wire_throughput.json
//	webwave-bench -scenario core-scaling -procs 1,2,4,8 -json BENCH_scaling.json
//	webwave-bench -scenario core-scaling -procs 1,4 -cpuprofile cpu.pprof -memprofile mem.pprof
//	webwave-bench -scenario chaos -kill-fraction 0.1 -json BENCH_chaos.json
//	webwave-bench -scenario hot-key -ks 1,3 -json BENCH_hotkey.json
//	webwave-bench -scenario update-heavy -write-fraction 0.1 -json BENCH_update.json
//	webwave-bench -scenario invalidation-storm -k 2 -writes 8 -json BENCH_storm.json
//	webwave-bench -scenario session -rounds 40 -json BENCH_session.json
//
// hot-key is special but deterministic: a seeded capacity model of the
// replication forest (one document's flash crowd against k=1 vs k=3 trees,
// promote/demote hysteresis, two-choices routing) whose report benchgate
// thresholds against the committed baseline.
//
// update-heavy and invalidation-storm are the mutable-document scenarios:
// update-heavy replays one Poisson schedule twice against a live cluster
// (read-only control, then a seeded write mix) and reports staleness
// percentiles plus the hit-rate cost of mutability; invalidation-storm
// promotes one hot document, then repeatedly invalidates it and storms the
// leaves, measuring how far the subtree leases collapse per-write origin
// fetches below one-per-client. session replays a seeded
// write-then-read-elsewhere schedule twice — session token riding the wire,
// then stripped — and reports read-my-writes violations per arm: the gated
// shape is zero with tokens and strictly positive without.
//
// Three scenarios are special, wall-clock (NOT deterministic) measurements
// of the live serving stack: wire-throughput drives the same pressure once
// per wire protocol version over TCP loopback and reports the v2/v1
// speedup; core-scaling sweeps GOMAXPROCS (the servers' shard-loop count
// follows) and reports req/s, per-core efficiency, Jain fairness and hit
// rate per core count; chaos kills and restarts a fraction of a live
// cluster's interior nodes mid-run and reports availability, repair time
// and post-repair fairness against a no-failure control pass.
//
// -cpuprofile and -memprofile write pprof artifacts covering the run, so a
// scaling regression caught by CI can be diagnosed from the uploaded
// profile instead of reproduced by hand.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"webwave/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "webwave-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("webwave-bench", flag.ContinueOnError)
	list := fs.Bool("list", false, "list scenarios and exit")
	scenario := fs.String("scenario", "zipf-steady", "scenario name (see -list)")
	seed := fs.Int64("seed", 1, "RNG seed; fixes tree, trace and report in fast mode")
	mode := fs.String("mode", "fast", "fast (virtual time, deterministic) or live (real cluster)")
	jsonPath := fs.String("json", "", "write the JSON report to this file")
	n := fs.Int("n", 0, "override tree size")
	duration := fs.Float64("duration", 0, "override schedule length, seconds")
	rate := fs.Float64("rate", 0, "override aggregate request rate, req/s")
	window := fs.Float64("window", 0, "override metrics window, seconds")
	speedup := fs.Float64("speedup", 10, "live: schedule time compression")
	clients := fs.Int("clients", 16, "live/wire: concurrent workers")
	transportName := fs.String("transport", "mem", "live: cluster transport (mem or tcp)")
	wirev := fs.Int("wirev", 2, "live/wire: TCP wire protocol version (1=JSON, 2=binary)")
	body := fs.Int("body", 0, "wire-throughput: document body bytes (default 1024)")
	cacheBudget := fs.Int64("cache-budget", 0, "override per-node cache budget, bytes (0 = scenario default)")
	diskBudget := fs.Int64("disk-budget", 0, "restart/bigger-than-ram: per-node disk-tier budget, bytes (0 = scenario default)")
	docBytes := fs.Int("doc-bytes", 0, "override document body size, bytes")
	evictPolicy := fs.String("evict-policy", "", "live: eviction policy (lru, heat or gdsf)")
	procs := fs.String("procs", "1,2,4,8", "core-scaling: comma-separated GOMAXPROCS sweep")
	repeat := fs.Int("repeat", 1, "core-scaling: full-sweep repetitions, keeping the lowest efficiency per core count (baselines use 3)")
	killFraction := fs.Float64("kill-fraction", 0, "chaos: fraction of interior nodes killed mid-run (0 = default 0.10)")
	heartbeatMS := fs.Int("heartbeat-ms", 0, "chaos: failure-detector period, milliseconds (0 = default 40)")
	ks := fs.String("ks", "", "hot-key: comma-separated forest widths to sweep (default 1,3)")
	writeFraction := fs.Float64("write-fraction", 0, "update-heavy: fraction of the schedule that becomes republish writes (0 = default 0.10)")
	writes := fs.Int("writes", 0, "invalidation-storm: write rounds (0 = default 8)")
	subtrees := fs.Int("subtrees", 0, "invalidation-storm/session: interior subtrees under the origin (0 = default 3)")
	leavesPer := fs.Int("leaves-per", 0, "invalidation-storm/session: leaves per subtree (0 = default 4)")
	sessionDocs := fs.Int("docs", 0, "session: catalog size (0 = default 4)")
	rounds := fs.Int("rounds", 0, "session: write-then-read rounds per pass (0 = default 40)")
	readsPerWrite := fs.Int("reads-per-write", 0, "session: reads injected per round (0 = default 6)")
	kWidth := fs.Int("k", 0, "invalidation-storm: replication-forest width for the hot doc (0 = default 2, 1 disables)")
	settleMS := fs.Int("settle-ms", 0, "invalidation-storm: write-to-burst settle, milliseconds (0 = default 25)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile covering the run to this file")
	memprofile := fs.String("memprofile", "", "write an end-of-run heap profile to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Printf("cpu profile: %s\n", *cpuprofile)
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "webwave-bench: memprofile:", err)
				return
			}
			runtime.GC() // settle so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "webwave-bench: memprofile:", err)
			}
			f.Close()
			fmt.Printf("heap profile: %s\n", *memprofile)
		}()
	}

	if *list {
		for _, s := range workload.Scenarios() {
			d := s.WithDefaults()
			fmt.Printf("%-14s %3d nodes, %4d docs, %-7s popularity, %-7s arrivals, %.0f req/s for %.0fs\n",
				d.Name, d.Nodes, d.NumDocs, d.Popularity, d.Arrival, d.TotalRate, d.Duration)
		}
		fmt.Printf("%-14s live TCP stack, v1 (JSON) vs v2 (binary) wire protocol, closed-loop saturation\n",
			"wire-throughput")
		fmt.Printf("%-14s live TCP stack, GOMAXPROCS sweep, req/s + per-core efficiency + Jain + hit rate\n",
			"core-scaling")
		fmt.Printf("%-14s live cluster under node churn: kill/restart interior nodes, availability + repair time + post-repair Jain\n",
			"chaos")
		fmt.Printf("%-14s chaos workload twice, cold vs warm (disk-tier) restarts: post-restart availability + reabsorb + recovered docs\n",
			"restart")
		fmt.Printf("%-14s corpus ~10x memory budget, three passes (in-ram / mem-only / two-tier): hit-rate retention + disk hits\n",
			"bigger-than-ram")
		fmt.Printf("%-14s deterministic replication-forest model: single-doc flash crowd, k=1 vs k=3 trees, scaling + Jain + promote/demote round trip\n",
			"hot-key")
		fmt.Printf("%-14s live cluster, one schedule twice (read-only vs write mix): staleness percentiles + hit-rate cost of mutability\n",
			"update-heavy")
		fmt.Printf("%-18s live forest, repeated invalidate + leaf read storm: per-write origin fetches vs clients (lease collapse)\n",
			"invalidation-storm")
		fmt.Printf("%-14s live star, seeded write-then-read-elsewhere schedule twice (token on/off): read-my-writes violations\n",
			"session")
		return nil
	}

	if *scenario == "wire-throughput" {
		return runWireThroughput(wireSpec{
			Seed: *seed, Nodes: *n, Clients: *clients,
			Duration: *duration, BodyBytes: *body,
		}, *jsonPath)
	}
	if *scenario == "core-scaling" {
		sweep, err := parseProcs(*procs)
		if err != nil {
			return err
		}
		return runCoreScaling(workload.ScalingSpec{
			Seed: *seed, Nodes: *n, Clients: *clients,
			Duration: *duration, BodyBytes: *body, Procs: sweep, Repeat: *repeat,
		}, *jsonPath)
	}
	if *scenario == "chaos" {
		return runChaos(workload.ChaosSpec{
			Seed: *seed, Nodes: *n, TotalRate: *rate, Duration: *duration,
			KillFraction: *killFraction, HeartbeatMS: *heartbeatMS,
		}, *jsonPath)
	}
	if *scenario == "restart" {
		return runRestart(workload.RestartSpec{
			ChaosSpec: workload.ChaosSpec{
				Seed: *seed, Nodes: *n, TotalRate: *rate, Duration: *duration,
				KillFraction: *killFraction, HeartbeatMS: *heartbeatMS,
			},
			CacheBudgetBytes: *cacheBudget,
			DiskBudgetBytes:  *diskBudget,
		}, *jsonPath)
	}
	if *scenario == "bigger-than-ram" {
		return runBigram(workload.BigramSpec{
			Seed: *seed, Nodes: *n, Clients: *clients,
			BodyBytes: *docBytes, Duration: *duration,
			CacheBudgetBytes: *cacheBudget,
			DiskBudgetBytes:  *diskBudget,
		}, *jsonPath)
	}
	if *scenario == "hot-key" {
		sweep, err := parseKs(*ks)
		if err != nil {
			return err
		}
		return runHotkey(workload.HotkeySpec{
			Seed: *seed, Nodes: *n, BaseRate: *rate,
			Duration: *duration, Window: *window, Ks: sweep,
		}, *jsonPath)
	}

	if *scenario == "update-heavy" {
		return runUpdate(workload.UpdateSpec{
			Seed: *seed, Nodes: *n, TotalRate: *rate, Duration: *duration,
			WriteFraction: *writeFraction,
		}, *jsonPath)
	}
	if *scenario == "invalidation-storm" {
		cl := 0
		if fsFlagSet(fs, "clients") {
			cl = *clients
		}
		return runStorm(workload.StormSpec{
			Seed: *seed, Subtrees: *subtrees, LeavesPer: *leavesPer,
			Clients: cl, Writes: *writes, K: *kWidth, SettleMS: *settleMS,
		}, *jsonPath)
	}

	if *scenario == "session" {
		return runSession(workload.SessionSpec{
			Seed: *seed, Subtrees: *subtrees, LeavesPer: *leavesPer,
			Docs: *sessionDocs, Rounds: *rounds, ReadsPerWrite: *readsPerWrite,
		}, *jsonPath)
	}

	sp, ok := workload.Lookup(*scenario)
	if !ok {
		return fmt.Errorf("unknown scenario %q (try -list)", *scenario)
	}
	if *n > 0 {
		sp.Nodes = *n
	}
	if *duration > 0 {
		sp.Duration = *duration
	}
	if *rate > 0 {
		sp.TotalRate = *rate
	}
	if *window > 0 {
		sp.Window = *window
	}
	if *cacheBudget > 0 {
		sp.CacheBudgetBytes = *cacheBudget
	}
	if *docBytes > 0 {
		sp.DocBytes = *docBytes
	}
	if *evictPolicy != "" {
		sp.EvictPolicy = *evictPolicy
	}

	var rep *workload.Report
	var err error
	switch *mode {
	case "fast":
		rep, err = workload.RunFast(sp, *seed)
	case "live":
		rep, err = workload.RunLive(sp, *seed, workload.LiveOptions{
			Speedup: *speedup, Clients: *clients,
			Transport: *transportName, WireVersion: *wirev,
		})
	default:
		return fmt.Errorf("unknown mode %q (want fast or live)", *mode)
	}
	if err != nil {
		return err
	}

	printSummary(rep)

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("report: %s\n", *jsonPath)
	}
	return nil
}

// fsFlagSet reports whether the named flag was set explicitly — the storm
// scenario's clients default (120) differs from the live-mode default (16),
// so only an explicit -clients overrides it.
func fsFlagSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func printSummary(rep *workload.Report) {
	fmt.Printf("scenario %s (%s mode, seed %d): %d nodes (height %d), %d requests @ %.1f req/s, %d churn events\n",
		rep.Scenario, rep.Mode, rep.Seed, rep.Tree.Nodes, rep.Tree.Height,
		rep.Requests, rep.OfferedRPS, rep.ChurnEvents)
	fmt.Printf("%-12s %9s %7s %8s %8s %8s %8s %9s %9s\n",
		"system", "thr(r/s)", "failed", "p50(ms)", "p95(ms)", "p99(ms)", "hops", "jain", "max/mean")
	for _, s := range rep.Systems {
		fmt.Printf("%-12s %9.1f %7d %8.2f %8.2f %8.2f %8.2f %9.3f %9.2f\n",
			s.Name, s.ThroughputRPS, s.Failed,
			s.Latency.P50MS, s.Latency.P95MS, s.Latency.P99MS,
			s.MeanHops, s.MeanJain, s.WorstMaxOverMean)
	}
	for _, s := range rep.Systems {
		if s.Cache == nil {
			continue
		}
		c := s.Cache
		fmt.Printf("%-12s cache: policy=%-4s budget=%dB hit=%.3f evictions=%d evictedMB=%.1f maxnode=%dB overBudget=%v\n",
			s.Name, c.Policy, c.BudgetBytes, c.HitRate, c.Evictions,
			float64(c.EvictedBytes)/(1<<20), c.MaxNodeBytes, c.OverBudget)
	}
	fmt.Println("analytic capacity models (steady-state mean demand):")
	for _, b := range rep.Baselines {
		fmt.Printf("  %-12s thr=%8.1f maxload=%8.1f nodes=%3d ctl/req=%.2f bottleneck=%s\n",
			b.Name, b.ThroughputRPS, b.MaxLoadRPS, b.ServingNodes, b.ControlMsgsPerReq, b.Bottleneck)
	}
}
