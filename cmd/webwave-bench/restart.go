package main

// CLI wiring for the restart-warmth scenario (internal/workload.RunRestart):
// replay the chaos workload twice — cold restarts vs warm (disk-tier)
// restarts — print the comparison, write the JSON artifact CI's benchgate
// thresholds against the committed baseline.

import (
	"encoding/json"
	"fmt"
	"os"

	"webwave/internal/workload"
)

func runRestart(sp workload.RestartSpec, jsonPath string) error {
	sp = sp.WithDefaults()
	fmt.Printf("scenario restart: %d nodes, %d docs, %.0f req/s for %.1fs; cache budget %d B, disk budget %d B; killing %.0f%% of interior nodes at %.1fs for %.1fs\n",
		sp.Nodes, sp.NumDocs, sp.TotalRate, sp.Duration,
		sp.CacheBudgetBytes, sp.DiskBudgetBytes,
		sp.KillFraction*100, sp.KillAt, sp.Downtime)
	rep, err := workload.RunRestart(sp, func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	})
	if err != nil {
		return err
	}
	fmt.Printf("  post-restart availability: warm %.4f vs cold %.4f; reabsorb: warm %.2fs vs cold %.2fs\n",
		rep.Warm.PostRestartAvailability, rep.Cold.PostRestartAvailability,
		rep.Warm.ReabsorbSeconds, rep.Cold.ReabsorbSeconds)
	fmt.Printf("  warm docs recovered %d, disk hits %d, failed revives warm %d cold %d\n",
		rep.Warm.WarmDocs, rep.Warm.DiskHits, rep.Warm.FailedRevives, rep.Cold.FailedRevives)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("report: %s\n", jsonPath)
	}
	return nil
}

func runBigram(sp workload.BigramSpec, jsonPath string) error {
	sp = sp.WithDefaults()
	fmt.Printf("scenario bigger-than-ram: %d nodes, %d docs x %d B (corpus %d B), memory budget %d B, disk budget %d B, %.1fs per pass\n",
		sp.Nodes, sp.NumDocs, sp.BodyBytes, int64(sp.NumDocs)*int64(sp.BodyBytes),
		sp.CacheBudgetBytes, sp.DiskBudgetBytes, sp.Duration)
	rep, err := workload.RunBigram(sp, func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	})
	if err != nil {
		return err
	}
	fmt.Printf("  hit-rate drop vs in-ram: mem-only %.4f, two-tier %.4f; two-tier disk hits %d\n",
		rep.MemOnlyHitDrop, rep.TwoTierHitDrop, rep.TwoTier.DiskHits)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("report: %s\n", jsonPath)
	}
	return nil
}
