package main

// CLI wiring for the mutable-document scenarios (internal/workload.RunUpdate
// and RunStorm): run the passes, print the staleness and collapse figures,
// write the JSON artifacts CI's benchgate thresholds against the committed
// baselines.

import (
	"encoding/json"
	"fmt"
	"os"

	"webwave/internal/workload"
)

func runUpdate(sp workload.UpdateSpec, jsonPath string) error {
	sp = sp.WithDefaults()
	fmt.Printf("scenario update-heavy: %d nodes, %d docs, %.0f req/s for %.1fs, write fraction %.2f\n",
		sp.Nodes, sp.NumDocs, sp.TotalRate, sp.Duration, sp.WriteFraction)
	rep, err := workload.RunUpdate(sp, func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	})
	if err != nil {
		return err
	}
	fmt.Printf("  hit-rate cost %.4f (%.4f -> %.4f), staleness p99 %.4fs vs diffusion period %.3fs\n",
		rep.HitRateCost, rep.ReadOnly.HitRate, rep.Update.HitRate,
		rep.Update.Staleness.P99, rep.DiffusionPeriodS)
	return writeReportJSON(rep, jsonPath)
}

func runStorm(sp workload.StormSpec, jsonPath string) error {
	sp = sp.WithDefaults()
	fmt.Printf("scenario invalidation-storm: %d subtrees x %d leaves, %d clients per burst, %d writes, K=%d, settle %dms\n",
		sp.Subtrees, sp.LeavesPer, sp.Clients, sp.Writes, sp.K, sp.SettleMS)
	rep, err := workload.RunStorm(sp, func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	})
	if err != nil {
		return err
	}
	fmt.Printf("  %.1f origin fetches/write (collapse %.0fx vs %d clients), %.1f forwards/write, %d lease refreshes, %d coalesced\n",
		rep.PerWriteOriginFetches, rep.FetchCollapseX, sp.Clients,
		rep.PerWriteForwards, rep.LeaseRefreshes, rep.Coalesced)
	return writeReportJSON(rep, jsonPath)
}

func runSession(sp workload.SessionSpec, jsonPath string) error {
	sp = sp.WithDefaults()
	fmt.Printf("scenario session: %d subtrees x %d leaves, %d docs, %d rounds x %d reads\n",
		sp.Subtrees, sp.LeavesPer, sp.Docs, sp.Rounds, sp.ReadsPerWrite)
	rep, err := workload.RunSession(sp, func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	})
	if err != nil {
		return err
	}
	fmt.Printf("  violations: %d with tokens, %d without (over %d/%d rounds), %d session refreshes\n",
		rep.WithTokens.Violations, rep.WithoutTokens.Violations,
		rep.WithoutTokens.ViolationWindows, sp.Rounds, rep.WithTokens.SessionRefreshes)
	return writeReportJSON(rep, jsonPath)
}

func writeReportJSON(rep any, jsonPath string) error {
	if jsonPath == "" {
		return nil
	}
	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("report: %s\n", jsonPath)
	return nil
}
