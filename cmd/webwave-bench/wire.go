package main

// The wire-throughput scenario measures the live serving stack end to end
// over real TCP loopback sockets: the same tree, documents and client
// pressure are driven once over the legacy v1 (JSON) wire protocol and
// once over v2 (binary, pooled framing, batched flushing), and the report
// records sustained responses/second, Jain fairness of the per-node served
// counts, and the v2/v1 speedup. Unlike the fast-forward scenarios this is
// a wall-clock measurement and is NOT deterministic.

import (
	"encoding/json"
	"fmt"
	"os"

	"webwave/internal/transport"
	"webwave/internal/workload"
)

// wireSpec parameterizes the wire-throughput scenario.
type wireSpec struct {
	Seed      int64
	Nodes     int     // tree size; default 15
	Clients   int     // closed-loop injector connections; default 32
	Duration  float64 // measured seconds per protocol version; default 3
	BodyBytes int     // document body size; default 1024
	NumDocs   int
	ZipfSkew  float64
}

func (w wireSpec) withDefaults() wireSpec {
	if w.Nodes <= 0 {
		w.Nodes = 15
	}
	if w.Clients <= 0 {
		w.Clients = 32
	}
	if w.Duration <= 0 {
		w.Duration = 3
	}
	if w.BodyBytes <= 0 {
		w.BodyBytes = 1024
	}
	if w.NumDocs <= 0 {
		w.NumDocs = 32
	}
	if w.ZipfSkew <= 0 {
		w.ZipfSkew = 1.0
	}
	return w
}

// wireRun is one protocol version's measurement.
type wireRun struct {
	WireVersion   int     `json:"wire_version"`
	Responses     int64   `json:"responses"`
	ThroughputRPS float64 `json:"throughput_rps"`
	Jain          float64 `json:"jain"`
	MeanHops      float64 `json:"mean_hops"`
	ServingNodes  int     `json:"serving_nodes"`
	Forwarded     int64   `json:"forwarded"`
	Coalesced     int64   `json:"coalesced"`
}

// wireReport is the wire-throughput JSON document.
type wireReport struct {
	Schema          string    `json:"schema"`
	Scenario        string    `json:"scenario"`
	Seed            int64     `json:"seed"`
	Nodes           int       `json:"nodes"`
	Clients         int       `json:"clients"`
	DurationS       float64   `json:"duration_s"`
	BodyBytes       int       `json:"body_bytes"`
	NumDocs         int       `json:"num_docs"`
	Runs            []wireRun `json:"runs"`
	SpeedupV2OverV1 float64   `json:"speedup_v2_over_v1"`
}

func runWireThroughput(sp wireSpec, jsonPath string) error {
	sp = sp.withDefaults()
	fmt.Printf("scenario wire-throughput: %d nodes over TCP loopback, %d closed-loop clients, %d docs x %dB, %.1fs per version\n",
		sp.Nodes, sp.Clients, sp.NumDocs, sp.BodyBytes, sp.Duration)

	rep := &wireReport{
		Schema: "webwave-wire-throughput/v1", Scenario: "wire-throughput",
		Seed: sp.Seed, Nodes: sp.Nodes, Clients: sp.Clients,
		DurationS: sp.Duration, BodyBytes: sp.BodyBytes, NumDocs: sp.NumDocs,
	}
	for _, version := range []int{1, 2} {
		run, err := wireRunOnce(sp, version)
		if err != nil {
			return fmt.Errorf("wire-throughput v%d: %w", version, err)
		}
		rep.Runs = append(rep.Runs, run)
		fmt.Printf("  v%d: %9.0f req/s  (%d responses, jain %.3f, hops %.2f, %d nodes serving, coalesced %d)\n",
			version, run.ThroughputRPS, run.Responses, run.Jain, run.MeanHops, run.ServingNodes, run.Coalesced)
	}
	if rep.Runs[0].ThroughputRPS > 0 {
		rep.SpeedupV2OverV1 = rep.Runs[1].ThroughputRPS / rep.Runs[0].ThroughputRPS
	}
	fmt.Printf("  v2/v1 speedup: %.2fx\n", rep.SpeedupV2OverV1)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("report: %s\n", jsonPath)
	}
	return nil
}

// wireRunOnce drives the shared closed-loop harness (workload.RunClosedLoop)
// against a fresh TCP cluster speaking the given wire version.
func wireRunOnce(sp wireSpec, version int) (wireRun, error) {
	res, err := workload.RunClosedLoop(workload.ClosedLoopSpec{
		Seed: sp.Seed, Nodes: sp.Nodes, Clients: sp.Clients,
		NumDocs: sp.NumDocs, BodyBytes: sp.BodyBytes, ZipfSkew: sp.ZipfSkew,
		Duration: sp.Duration,
		Network:  transport.TCPNetwork{Version: version},
	})
	if err != nil {
		return wireRun{}, err
	}
	return wireRun{
		WireVersion:   version,
		Responses:     res.Responses,
		ThroughputRPS: res.ThroughputRPS,
		Jain:          res.Jain,
		MeanHops:      res.MeanHops,
		ServingNodes:  res.ServingNodes,
		Forwarded:     res.Forwarded,
		Coalesced:     res.Coalesced,
	}, nil
}
