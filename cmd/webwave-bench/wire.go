package main

// The wire-throughput scenario measures the live serving stack end to end
// over real TCP loopback sockets: the same tree, documents and client
// pressure are driven once over the legacy v1 (JSON) wire protocol and
// once over v2 (binary, pooled framing, batched flushing), and the report
// records sustained responses/second, Jain fairness of the per-node served
// counts, and the v2/v1 speedup. Unlike the fast-forward scenarios this is
// a wall-clock measurement and is NOT deterministic.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"webwave/internal/cluster"
	"webwave/internal/core"
	"webwave/internal/netproto"
	"webwave/internal/stats"
	"webwave/internal/trace"
	"webwave/internal/transport"
	"webwave/internal/tree"
	"webwave/internal/workload"
)

// wireSpec parameterizes the wire-throughput scenario.
type wireSpec struct {
	Seed      int64
	Nodes     int     // tree size; default 15
	Clients   int     // closed-loop injector connections; default 32
	Duration  float64 // measured seconds per protocol version; default 3
	BodyBytes int     // document body size; default 1024
	NumDocs   int
	ZipfSkew  float64
}

func (w wireSpec) withDefaults() wireSpec {
	if w.Nodes <= 0 {
		w.Nodes = 15
	}
	if w.Clients <= 0 {
		w.Clients = 32
	}
	if w.Duration <= 0 {
		w.Duration = 3
	}
	if w.BodyBytes <= 0 {
		w.BodyBytes = 1024
	}
	if w.NumDocs <= 0 {
		w.NumDocs = 32
	}
	if w.ZipfSkew <= 0 {
		w.ZipfSkew = 1.0
	}
	return w
}

// wireRun is one protocol version's measurement.
type wireRun struct {
	WireVersion   int     `json:"wire_version"`
	Responses     int64   `json:"responses"`
	ThroughputRPS float64 `json:"throughput_rps"`
	Jain          float64 `json:"jain"`
	MeanHops      float64 `json:"mean_hops"`
	ServingNodes  int     `json:"serving_nodes"`
	Forwarded     int64   `json:"forwarded"`
	Coalesced     int64   `json:"coalesced"`
}

// wireReport is the wire-throughput JSON document.
type wireReport struct {
	Schema          string    `json:"schema"`
	Scenario        string    `json:"scenario"`
	Seed            int64     `json:"seed"`
	Nodes           int       `json:"nodes"`
	Clients         int       `json:"clients"`
	DurationS       float64   `json:"duration_s"`
	BodyBytes       int       `json:"body_bytes"`
	NumDocs         int       `json:"num_docs"`
	Runs            []wireRun `json:"runs"`
	SpeedupV2OverV1 float64   `json:"speedup_v2_over_v1"`
}

func runWireThroughput(sp wireSpec, jsonPath string) error {
	sp = sp.withDefaults()
	fmt.Printf("scenario wire-throughput: %d nodes over TCP loopback, %d closed-loop clients, %d docs x %dB, %.1fs per version\n",
		sp.Nodes, sp.Clients, sp.NumDocs, sp.BodyBytes, sp.Duration)

	rep := &wireReport{
		Schema: "webwave-wire-throughput/v1", Scenario: "wire-throughput",
		Seed: sp.Seed, Nodes: sp.Nodes, Clients: sp.Clients,
		DurationS: sp.Duration, BodyBytes: sp.BodyBytes, NumDocs: sp.NumDocs,
	}
	for _, version := range []int{1, 2} {
		run, err := wireRunOnce(sp, version)
		if err != nil {
			return fmt.Errorf("wire-throughput v%d: %w", version, err)
		}
		rep.Runs = append(rep.Runs, run)
		fmt.Printf("  v%d: %9.0f req/s  (%d responses, jain %.3f, hops %.2f, %d nodes serving, coalesced %d)\n",
			version, run.ThroughputRPS, run.Responses, run.Jain, run.MeanHops, run.ServingNodes, run.Coalesced)
	}
	if rep.Runs[0].ThroughputRPS > 0 {
		rep.SpeedupV2OverV1 = rep.Runs[1].ThroughputRPS / rep.Runs[0].ThroughputRPS
	}
	fmt.Printf("  v2/v1 speedup: %.2fx\n", rep.SpeedupV2OverV1)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("report: %s\n", jsonPath)
	}
	return nil
}

// wireRunOnce builds a fresh cluster on TCP with the given wire version and
// hammers it closed-loop: each client keeps exactly one request in flight.
// The first part of the run warms the tree (delegation spreads the hot
// documents); only the measured window counts.
func wireRunOnce(sp wireSpec, version int) (wireRun, error) {
	rng := rand.New(rand.NewSource(sp.Seed))
	t, err := tree.RandomBounded(sp.Nodes, 4, rng)
	if err != nil {
		return wireRun{}, err
	}
	body := make([]byte, sp.BodyBytes)
	for i := range body {
		body[i] = byte('a' + i%26)
	}
	docs := make(map[core.DocID][]byte, sp.NumDocs)
	for j := 0; j < sp.NumDocs; j++ {
		docs[workload.DocID(j)] = body
	}
	c, err := cluster.New(t, docs, cluster.Config{
		Network:         transport.TCPNetwork{Version: version},
		AddrFor:         func(int) string { return "127.0.0.1:0" },
		GossipPeriod:    25 * time.Millisecond,
		DiffusionPeriod: 50 * time.Millisecond,
		Window:          500 * time.Millisecond,
		Tunneling:       true,
	})
	if err != nil {
		return wireRun{}, err
	}
	defer c.Stop()

	// Zipf CDF over the documents, on the same weights the other scenarios
	// use.
	cdf := trace.ZipfWeights(sp.NumDocs, sp.ZipfSkew)
	for j := 1; j < len(cdf); j++ {
		cdf[j] += cdf[j-1]
	}

	var (
		measuring atomic.Bool
		stop      atomic.Bool
		responses atomic.Int64
		hops      atomic.Int64
		servedBy  = make([]atomic.Int64, t.Len())
		wg        sync.WaitGroup
	)
	docIDs := make([]core.DocID, sp.NumDocs)
	for j := range docIDs {
		docIDs[j] = workload.DocID(j)
	}
	conns := make([]transport.Conn, 0, sp.Clients)
	closeAll := func() {
		stop.Store(true)
		for _, cn := range conns {
			cn.Close() // releases workers blocked in Recv
		}
		wg.Wait()
	}
	for w := 0; w < sp.Clients; w++ {
		origin := 0
		if t.Len() > 1 {
			origin = 1 + w%(t.Len()-1) // clients enter at non-root nodes
		}
		wrng := rand.New(rand.NewSource(sp.Seed + int64(w)*7919))
		conn, err := c.Network().Dial(c.Addr(origin))
		if err != nil {
			closeAll()
			return wireRun{}, fmt.Errorf("dial origin %d: %w", origin, err)
		}
		conns = append(conns, conn)
		wg.Add(1)
		go func(conn transport.Conn, origin, w int, wrng *rand.Rand) {
			defer wg.Done()
			defer conn.Close()
			// Disjoint request-id spaces: workers sharing an origin node
			// must not collide in the servers' response-routing tables.
			reqID := uint64(w+1) << 32
			for !stop.Load() {
				reqID++
				u := wrng.Float64()
				doc := 0
				for doc < len(cdf)-1 && cdf[doc] < u {
					doc++
				}
				err := conn.Send(&netproto.Envelope{
					Kind: netproto.TypeRequest, From: -1, To: origin,
					Origin: origin, ReqID: reqID, Doc: docIDs[doc],
				})
				if err != nil {
					return
				}
				for {
					env, err := conn.Recv()
					if err != nil {
						return
					}
					isResp := env.Kind == netproto.TypeResponse && env.ReqID == reqID
					if isResp && measuring.Load() {
						responses.Add(1)
						hops.Add(int64(env.Hops))
						if env.ServedBy >= 0 && env.ServedBy < len(servedBy) {
							servedBy[env.ServedBy].Add(1)
						}
					}
					netproto.PutEnvelope(env)
					if isResp {
						break
					}
				}
			}
		}(conn, origin, w, wrng)
	}

	warmup := time.Duration(sp.Duration*float64(time.Second)) / 2
	if warmup > 2*time.Second {
		warmup = 2 * time.Second
	}
	time.Sleep(warmup)
	measuring.Store(true)
	time.Sleep(time.Duration(sp.Duration * float64(time.Second)))
	measuring.Store(false)
	// Closing the client conns unblocks any worker stuck in Recv on a
	// response that was lost or expired server-side.
	closeAll()

	run := wireRun{WireVersion: version, Responses: responses.Load()}
	run.ThroughputRPS = float64(run.Responses) / sp.Duration
	if run.Responses > 0 {
		run.MeanHops = float64(hops.Load()) / float64(run.Responses)
	}
	loads := make([]float64, t.Len())
	for v := range servedBy {
		loads[v] = float64(servedBy[v].Load())
		if loads[v] > 0 {
			run.ServingNodes++
		}
	}
	run.Jain = stats.JainIndex(loads)
	if sts, err := c.Stats(); err == nil {
		for _, st := range sts {
			run.Forwarded += st.Forwarded
			run.Coalesced += st.Coalesced
		}
	}
	return run, nil
}
