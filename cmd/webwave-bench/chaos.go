package main

// CLI wiring for the chaos scenario (internal/workload.RunChaos): run the
// control and failure passes, print the repair figures, write the JSON
// artifact CI's benchgate thresholds against the committed baseline.

import (
	"encoding/json"
	"fmt"
	"os"

	"webwave/internal/workload"
)

func runChaos(sp workload.ChaosSpec, jsonPath string) error {
	sp = sp.WithDefaults()
	fmt.Printf("scenario chaos: %d nodes, %d docs, %.0f req/s for %.1fs; killing %.0f%% of interior nodes at %.1fs for %.1fs (heartbeat %dms)\n",
		sp.Nodes, sp.NumDocs, sp.TotalRate, sp.Duration,
		sp.KillFraction*100, sp.KillAt, sp.Downtime, sp.HeartbeatMS)
	rep, err := workload.RunChaos(sp, func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	})
	if err != nil {
		return err
	}
	fmt.Printf("  availability %.4f (control %.4f), reabsorb %.2fs, jain ratio %.3f (%.3f vs %.3f)\n",
		rep.Availability, rep.ControlAvailability, rep.ReabsorbSeconds,
		rep.JainRatio, rep.PostRepairJain, rep.NoFailJain)
	fmt.Printf("  reconnects %d, reclaimed duty %.1f req/s, absorbed duty %.1f req/s, heartbeat misses %d, orphaned at end %d\n",
		rep.Reconnects, rep.ReclaimedDuty, rep.AbsorbedDuty, rep.HeartbeatMisses, rep.FinalOrphaned)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("report: %s\n", jsonPath)
	}
	return nil
}
