package main

// CLI wiring for the hot-key scenario (internal/workload.RunHotkey): sweep
// the forest widths, print the scaling and fairness figures, write the JSON
// artifact CI's benchgate thresholds against the committed baseline.

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"webwave/internal/workload"
)

func runHotkey(sp workload.HotkeySpec, jsonPath string) error {
	sp = sp.WithDefaults()
	fmt.Printf("scenario hot-key: %d nodes, forest widths %v; one document ramping %.0f -> %.0f req/s against %.0f req/s per server\n",
		sp.Nodes, sp.Ks, sp.BaseRate, sp.BaseRate*sp.PeakFactor, sp.NodeCapacity)
	rep, err := workload.RunHotkey(sp, func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	})
	if err != nil {
		return err
	}
	fmt.Printf("  scaling %.2fx throughput at the widest forest vs k=1, jain ratio %.3f\n",
		rep.ScalingX, rep.JainRatio)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("report: %s\n", jsonPath)
	}
	return nil
}

// parseKs parses the -ks flag ("1,3") into a forest-width sweep.
func parseKs(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var ks []int
	for _, part := range strings.Split(s, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || k < 1 {
			return nil, fmt.Errorf("bad -ks entry %q (want positive integers)", part)
		}
		ks = append(ks, k)
	}
	return ks, nil
}
