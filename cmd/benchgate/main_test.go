package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"webwave/internal/workload"
)

func writeReport(t *testing.T, dir, name string, rep *workload.Report) string {
	t.Helper()
	path := filepath.Join(dir, name)
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	return path
}

func report(hitHeat, hitLRU float64, overBudget bool) *workload.Report {
	return &workload.Report{
		Schema: workload.Schema, Scenario: "cache-pressure", Seed: 1,
		Systems: []workload.SystemResult{
			{Name: "webwave-heat", Cache: &workload.CacheResult{
				Policy: "heat", BudgetBytes: 40960, HitRate: hitHeat, OverBudget: overBudget,
				MaxNodeBytes: 40960,
			}},
			{Name: "webwave-lru", Cache: &workload.CacheResult{
				Policy: "lru", BudgetBytes: 40960, HitRate: hitLRU, MaxNodeBytes: 40960,
			}},
			{Name: "no-cache"}, // no cache summary: ignored by the gate
		},
	}
}

func TestGatePasses(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", report(0.30, 0.28, false))
	// Slightly lower but within the 10% band.
	rep := writeReport(t, dir, "rep.json", report(0.28, 0.26, false))
	if err := run([]string{"-report", rep, "-baseline", base}); err != nil {
		t.Fatalf("gate failed on an in-band report: %v", err)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", report(0.30, 0.28, false))
	rep := writeReport(t, dir, "rep.json", report(0.20, 0.28, false)) // heat fell 33%
	if err := run([]string{"-report", rep, "-baseline", base}); err == nil {
		t.Fatalf("gate accepted a >10%% hit-rate regression")
	}
}

func TestGateFailsOnBudgetViolation(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", report(0.30, 0.28, false))
	rep := writeReport(t, dir, "rep.json", report(0.30, 0.28, true))
	if err := run([]string{"-report", rep, "-baseline", base}); err == nil {
		t.Fatalf("gate accepted an over-budget run")
	}
}

func TestGateFailsOnMissingSystem(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", report(0.30, 0.28, false))
	rep := report(0.30, 0.28, false)
	rep.Systems = rep.Systems[:1] // drop webwave-lru
	repPath := writeReport(t, dir, "rep.json", rep)
	if err := run([]string{"-report", repPath, "-baseline", base}); err == nil {
		t.Fatalf("gate accepted a report missing a baseline system")
	}
}

func TestGateRejectsMismatchedRuns(t *testing.T) {
	dir := t.TempDir()
	base := report(0.30, 0.28, false)
	base.Seed = 2
	basePath := writeReport(t, dir, "base.json", base)
	rep := writeReport(t, dir, "rep.json", report(0.30, 0.28, false))
	if err := run([]string{"-report", rep, "-baseline", basePath}); err == nil {
		t.Fatalf("gate compared reports from different runs")
	}
}
