package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"webwave/internal/workload"
)

func writeReport(t *testing.T, dir, name string, rep *workload.Report) string {
	t.Helper()
	path := filepath.Join(dir, name)
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	return path
}

func report(hitHeat, hitLRU float64, overBudget bool) *workload.Report {
	return &workload.Report{
		Schema: workload.Schema, Scenario: "cache-pressure", Seed: 1,
		Systems: []workload.SystemResult{
			{Name: "webwave-heat", Cache: &workload.CacheResult{
				Policy: "heat", BudgetBytes: 40960, HitRate: hitHeat, OverBudget: overBudget,
				MaxNodeBytes: 40960,
			}},
			{Name: "webwave-lru", Cache: &workload.CacheResult{
				Policy: "lru", BudgetBytes: 40960, HitRate: hitLRU, MaxNodeBytes: 40960,
			}},
			{Name: "no-cache"}, // no cache summary: ignored by the gate
		},
	}
}

func TestGatePasses(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", report(0.30, 0.28, false))
	// Slightly lower but within the 10% band.
	rep := writeReport(t, dir, "rep.json", report(0.28, 0.26, false))
	if err := run([]string{"-report", rep, "-baseline", base}); err != nil {
		t.Fatalf("gate failed on an in-band report: %v", err)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", report(0.30, 0.28, false))
	rep := writeReport(t, dir, "rep.json", report(0.20, 0.28, false)) // heat fell 33%
	if err := run([]string{"-report", rep, "-baseline", base}); err == nil {
		t.Fatalf("gate accepted a >10%% hit-rate regression")
	}
}

func TestGateFailsOnBudgetViolation(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", report(0.30, 0.28, false))
	rep := writeReport(t, dir, "rep.json", report(0.30, 0.28, true))
	if err := run([]string{"-report", rep, "-baseline", base}); err == nil {
		t.Fatalf("gate accepted an over-budget run")
	}
}

func TestGateFailsOnMissingSystem(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", report(0.30, 0.28, false))
	rep := report(0.30, 0.28, false)
	rep.Systems = rep.Systems[:1] // drop webwave-lru
	repPath := writeReport(t, dir, "rep.json", rep)
	if err := run([]string{"-report", repPath, "-baseline", base}); err == nil {
		t.Fatalf("gate accepted a report missing a baseline system")
	}
}

func TestGateRejectsMismatchedRuns(t *testing.T) {
	dir := t.TempDir()
	base := report(0.30, 0.28, false)
	base.Seed = 2
	basePath := writeReport(t, dir, "base.json", base)
	rep := writeReport(t, dir, "rep.json", report(0.30, 0.28, false))
	if err := run([]string{"-report", rep, "-baseline", basePath}); err == nil {
		t.Fatalf("gate compared reports from different runs")
	}
}

// ---------------------------------------------------------------------------
// Core-scaling gate.

func scalingReport(effs map[int]float64, perCore map[int]float64) *workload.ScalingReport {
	procs := []int{1, 2, 4}
	rep := &workload.ScalingReport{
		Schema: workload.ScalingSchema, Scenario: "core-scaling",
		Spec: workload.ScalingSpec{Procs: procs},
	}
	for _, p := range procs {
		if _, ok := effs[p]; !ok {
			continue
		}
		rep.Runs = append(rep.Runs, workload.ScalingRun{
			Procs: p, Shards: p, Efficiency: effs[p], PerCoreRPS: perCore[p],
		})
	}
	return rep
}

func writeScaling(t *testing.T, dir, name string, rep *workload.ScalingReport) string {
	t.Helper()
	path := filepath.Join(dir, name)
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	return path
}

func TestScalingGatePasses(t *testing.T) {
	dir := t.TempDir()
	base := writeScaling(t, dir, "base.json",
		scalingReport(map[int]float64{1: 1, 2: 0.8, 4: 0.6}, map[int]float64{1: 50e3, 2: 40e3, 4: 30e3}))
	// Within the 15% band at every common core count (raw req/s far lower —
	// different hardware — must only warn).
	rep := writeScaling(t, dir, "rep.json",
		scalingReport(map[int]float64{1: 1, 2: 0.72, 4: 0.55}, map[int]float64{1: 20e3, 2: 15e3, 4: 11e3}))
	if err := run([]string{"-scaling-report", rep, "-scaling-baseline", base}); err != nil {
		t.Fatalf("gate failed on an in-band report: %v", err)
	}
}

func TestScalingGateFailsOnEfficiencyDrop(t *testing.T) {
	dir := t.TempDir()
	base := writeScaling(t, dir, "base.json",
		scalingReport(map[int]float64{1: 1, 2: 0.8, 4: 0.6}, nil))
	rep := writeScaling(t, dir, "rep.json",
		scalingReport(map[int]float64{1: 1, 2: 0.8, 4: 0.4}, nil)) // 4-proc eff fell 33%
	if err := run([]string{"-scaling-report", rep, "-scaling-baseline", base}); err == nil {
		t.Fatalf("gate accepted a >15%% efficiency regression")
	}
}

func TestScalingGateSubsetSweep(t *testing.T) {
	// CI sweeps 1,4 against a committed 1,2,4 baseline: only common core
	// counts are compared, and that must be enough to gate.
	dir := t.TempDir()
	base := writeScaling(t, dir, "base.json",
		scalingReport(map[int]float64{1: 1, 2: 0.8, 4: 0.6}, nil))
	rep := scalingReport(map[int]float64{1: 1, 4: 0.58}, nil)
	rep.Spec.Procs = []int{1, 4}
	repPath := writeScaling(t, dir, "rep.json", rep)
	if err := run([]string{"-scaling-report", repPath, "-scaling-baseline", base}); err != nil {
		t.Fatalf("gate failed on a passing subset sweep: %v", err)
	}
}

func TestScalingGateRejectsMismatchedBase(t *testing.T) {
	dir := t.TempDir()
	base := writeScaling(t, dir, "base.json",
		scalingReport(map[int]float64{1: 1, 2: 0.8}, nil))
	rep := scalingReport(map[int]float64{1: 1, 2: 0.8}, nil)
	rep.Spec.Procs = []int{2, 4} // efficiency normalized to 2 procs, not 1
	repPath := writeScaling(t, dir, "rep.json", rep)
	if err := run([]string{"-scaling-report", repPath, "-scaling-baseline", base}); err == nil {
		t.Fatalf("gate compared sweeps with different normalization bases")
	}
}

func TestScalingGateNoCommonProcs(t *testing.T) {
	dir := t.TempDir()
	base := writeScaling(t, dir, "base.json",
		scalingReport(map[int]float64{1: 1, 2: 0.8}, nil))
	rep := scalingReport(map[int]float64{1: 1}, nil)
	rep.Spec.Procs = []int{1}
	repPath := writeScaling(t, dir, "rep.json", rep)
	if err := run([]string{"-scaling-report", repPath, "-scaling-baseline", base}); err == nil {
		t.Fatalf("gate passed with nothing beyond the base to compare")
	}
}

func TestScalingGateRejectsDifferentWorkload(t *testing.T) {
	dir := t.TempDir()
	base := scalingReport(map[int]float64{1: 1, 2: 0.8}, nil)
	base.Spec.Clients = 64
	basePath := writeScaling(t, dir, "base.json", base)
	rep := scalingReport(map[int]float64{1: 1, 2: 0.8}, nil) // Clients 0
	repPath := writeScaling(t, dir, "rep.json", rep)
	if err := run([]string{"-scaling-report", repPath, "-scaling-baseline", basePath}); err == nil {
		t.Fatalf("gate compared scaling curves from different workloads")
	}
}

// ---------------------------------------------------------------------------
// Chaos gate.

func chaosReport(avail, jainRatio float64, reconnects int64, orphaned int) *workload.ChaosReport {
	return &workload.ChaosReport{
		Schema: workload.ChaosSchema, Scenario: "chaos",
		Spec: workload.ChaosSpec{
			Seed: 1, Nodes: 31, NumDocs: 48, TotalRate: 600, Duration: 12,
			KillFraction: 0.10,
		},
		Killed:          []int{4},
		Offered:         7200,
		Responses:       int64(avail * 7200),
		Availability:    avail,
		PostRepairJain:  0.5 * jainRatio,
		NoFailJain:      0.5,
		JainRatio:       jainRatio,
		Reconnects:      reconnects,
		ReabsorbSeconds: 0.25,
		FinalOrphaned:   orphaned,
	}
}

func writeChaos(t *testing.T, dir, name string, rep *workload.ChaosReport) string {
	t.Helper()
	path := filepath.Join(dir, name)
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	return path
}

func TestChaosGatePasses(t *testing.T) {
	dir := t.TempDir()
	base := writeChaos(t, dir, "base.json", chaosReport(0.99, 1.0, 2, 0))
	rep := writeChaos(t, dir, "rep.json", chaosReport(0.96, 0.95, 1, 0))
	if err := run([]string{"-chaos-report", rep, "-chaos-baseline", base}); err != nil {
		t.Fatalf("gate failed on a healthy chaos run: %v", err)
	}
}

func TestChaosGateFailsOnLowAvailability(t *testing.T) {
	dir := t.TempDir()
	base := writeChaos(t, dir, "base.json", chaosReport(0.99, 1.0, 2, 0))
	rep := writeChaos(t, dir, "rep.json", chaosReport(0.90, 1.0, 2, 0))
	if err := run([]string{"-chaos-report", rep, "-chaos-baseline", base}); err == nil {
		t.Fatal("gate accepted availability below the floor")
	}
}

func TestChaosGateFailsOnJainCollapse(t *testing.T) {
	dir := t.TempDir()
	base := writeChaos(t, dir, "base.json", chaosReport(0.99, 1.0, 2, 0))
	rep := writeChaos(t, dir, "rep.json", chaosReport(0.99, 0.7, 2, 0))
	if err := run([]string{"-chaos-report", rep, "-chaos-baseline", base}); err == nil {
		t.Fatal("gate accepted a post-repair fairness collapse")
	}
}

func TestChaosGateFailsWithoutRepair(t *testing.T) {
	dir := t.TempDir()
	base := writeChaos(t, dir, "base.json", chaosReport(0.99, 1.0, 2, 0))
	// No failover observed and an orphan left behind.
	rep := writeChaos(t, dir, "rep.json", chaosReport(0.99, 1.0, 0, 1))
	if err := run([]string{"-chaos-report", rep, "-chaos-baseline", base}); err == nil {
		t.Fatal("gate accepted a run whose tree never repaired")
	}
}

func TestChaosGateRejectsDifferentWorkload(t *testing.T) {
	dir := t.TempDir()
	base := writeChaos(t, dir, "base.json", chaosReport(0.99, 1.0, 2, 0))
	shrunk := chaosReport(0.99, 1.0, 2, 0)
	shrunk.Spec.KillFraction = 0.01 // gentler kills than the gated scenario
	rep := writeChaos(t, dir, "rep.json", shrunk)
	if err := run([]string{"-chaos-report", rep, "-chaos-baseline", base}); err == nil {
		t.Fatal("gate compared different workloads")
	}
}

func TestChaosGateFailsOnFailedRevives(t *testing.T) {
	dir := t.TempDir()
	base := writeChaos(t, dir, "base.json", chaosReport(0.99, 1.0, 2, 0))
	broken := chaosReport(0.99, 1.0, 2, 0)
	broken.FailedRevives = 1
	rep := writeChaos(t, dir, "rep.json", broken)
	if err := run([]string{"-chaos-report", rep, "-chaos-baseline", base}); err == nil {
		t.Fatal("gate accepted a run with a swallowed revive failure")
	}
}

// ---------------------------------------------------------------------------
// Restart gate.

func restartReport(warmAvail, coldReabsorb, warmReabsorb float64, warmDocs int64) *workload.RestartReport {
	spec := workload.RestartSpec{
		ChaosSpec: workload.ChaosSpec{
			Seed: 1, Nodes: 31, NumDocs: 48, TotalRate: 600, Duration: 12,
			KillFraction: 0.10,
		},
		CacheBudgetBytes: 16 << 10,
	}
	return &workload.RestartReport{
		Schema: workload.RestartSchema, Scenario: "restart", Spec: spec,
		Killed: []int{4},
		Cold: workload.RestartPassReport{
			Offered: 7200, Responses: 7100, Availability: 0.986,
			PostRestartAvailability: 0.985, ReabsorbSeconds: coldReabsorb, Reconnects: 2,
		},
		Warm: workload.RestartPassReport{
			Offered: 7200, Responses: 7150, Availability: 0.993,
			PostRestartAvailability: warmAvail, ReabsorbSeconds: warmReabsorb, Reconnects: 2,
			WarmDocs: warmDocs, DiskHits: 40,
		},
	}
}

func writeRestart(t *testing.T, dir, name string, rep *workload.RestartReport) string {
	t.Helper()
	path := filepath.Join(dir, name)
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	return path
}

func TestRestartGatePasses(t *testing.T) {
	dir := t.TempDir()
	base := writeRestart(t, dir, "base.json", restartReport(0.995, 0.08, 0.04, 6))
	rep := writeRestart(t, dir, "rep.json", restartReport(0.990, 0.07, 0.03, 5))
	if err := run([]string{"-restart-report", rep, "-restart-baseline", base}); err != nil {
		t.Fatalf("gate failed on a healthy restart run: %v", err)
	}
}

func TestRestartGateFailsOnColdWarmPass(t *testing.T) {
	// Warm availability below the floor: the tier bought nothing.
	dir := t.TempDir()
	base := writeRestart(t, dir, "base.json", restartReport(0.995, 0.08, 0.04, 6))
	rep := writeRestart(t, dir, "rep.json", restartReport(0.90, 0.08, 0.04, 6))
	if err := run([]string{"-restart-report", rep, "-restart-baseline", base}); err == nil {
		t.Fatal("gate accepted warm availability below the floor")
	}
}

func TestRestartGateFailsWithoutWarmDocs(t *testing.T) {
	// warm_docs 0: the warm pass degenerated to a second cold run.
	dir := t.TempDir()
	base := writeRestart(t, dir, "base.json", restartReport(0.995, 0.08, 0.04, 6))
	rep := writeRestart(t, dir, "rep.json", restartReport(0.995, 0.08, 0.04, 0))
	if err := run([]string{"-restart-report", rep, "-restart-baseline", base}); err == nil {
		t.Fatal("gate accepted a warm pass that recovered nothing")
	}
}

func TestRestartGateReabsorbRelativeArm(t *testing.T) {
	// Warm reabsorb over the absolute ceiling but inside one
	// failure-detection window (3 x 40ms default heartbeat) of cold: that's
	// detector quantization or a loaded CI box, so this must pass.
	dir := t.TempDir()
	base := writeRestart(t, dir, "base.json", restartReport(0.995, 0.30, 0.40, 6))
	rep := writeRestart(t, dir, "rep.json", restartReport(0.995, 0.30, 0.40, 6))
	if err := run([]string{"-restart-report", rep, "-restart-baseline", base}); err != nil {
		t.Fatalf("gate failed a warm pass within the detection window of cold: %v", err)
	}
	// But warm beyond BOTH the ceiling and cold + the window fails.
	slow := writeRestart(t, dir, "slow.json", restartReport(0.995, 0.30, 0.50, 6))
	baseSlow := writeRestart(t, dir, "baseslow.json", restartReport(0.995, 0.30, 0.50, 6))
	if err := run([]string{"-restart-report", slow, "-restart-baseline", baseSlow}); err == nil {
		t.Fatal("gate accepted warm reabsorb beyond cold plus a detection window and over the ceiling")
	}
}

func TestRestartGateFailsOnFailedRevives(t *testing.T) {
	dir := t.TempDir()
	base := writeRestart(t, dir, "base.json", restartReport(0.995, 0.08, 0.04, 6))
	broken := restartReport(0.995, 0.08, 0.04, 6)
	broken.Warm.FailedRevives = 1
	rep := writeRestart(t, dir, "rep.json", broken)
	if err := run([]string{"-restart-report", rep, "-restart-baseline", base}); err == nil {
		t.Fatal("gate accepted a pass with a failed revive")
	}
}

func TestRestartGateRejectsDifferentWorkload(t *testing.T) {
	dir := t.TempDir()
	base := writeRestart(t, dir, "base.json", restartReport(0.995, 0.08, 0.04, 6))
	eased := restartReport(0.995, 0.08, 0.04, 6)
	eased.Spec.CacheBudgetBytes = 1 << 30 // nothing evicts, nothing to recover
	rep := writeRestart(t, dir, "rep.json", eased)
	if err := run([]string{"-restart-report", rep, "-restart-baseline", base}); err == nil {
		t.Fatal("gate compared different workloads")
	}
}

// ---------------------------------------------------------------------------
// Bigger-than-ram gate.

func bigramReport(inram, memonly, twotier float64, diskHits int64) *workload.BigramReport {
	return &workload.BigramReport{
		Schema: workload.BigramSchema, Scenario: "bigger-than-ram",
		Spec: workload.BigramSpec{
			Seed: 1, Nodes: 15, Clients: 24, NumDocs: 256, BodyBytes: 4096,
			ZipfSkew: 0.7, Duration: 2, MemoryRatio: 10,
			CacheBudgetBytes: 104857, DiskBudgetBytes: 2097152,
		},
		InRAM:          workload.BigramPassReport{HitRate: inram},
		MemOnly:        workload.BigramPassReport{HitRate: memonly},
		TwoTier:        workload.BigramPassReport{HitRate: twotier, DiskHits: diskHits},
		MemOnlyHitDrop: inram - memonly,
		TwoTierHitDrop: inram - twotier,
	}
}

func writeBigram(t *testing.T, dir, name string, rep *workload.BigramReport) string {
	t.Helper()
	path := filepath.Join(dir, name)
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	return path
}

func TestBigramGatePasses(t *testing.T) {
	dir := t.TempDir()
	base := writeBigram(t, dir, "base.json", bigramReport(0.82, 0.31, 0.81, 8000))
	rep := writeBigram(t, dir, "rep.json", bigramReport(0.80, 0.35, 0.78, 6000))
	if err := run([]string{"-bigram-report", rep, "-bigram-baseline", base}); err != nil {
		t.Fatalf("gate failed on a healthy bigger-than-ram run: %v", err)
	}
}

func TestBigramGateFailsOnTwoTierCollapse(t *testing.T) {
	// Two-tier more than 10% below the in-ram ceiling: the tier leaks.
	dir := t.TempDir()
	base := writeBigram(t, dir, "base.json", bigramReport(0.82, 0.31, 0.81, 8000))
	rep := writeBigram(t, dir, "rep.json", bigramReport(0.82, 0.31, 0.60, 8000))
	if err := run([]string{"-bigram-report", rep, "-bigram-baseline", base}); err == nil {
		t.Fatal("gate accepted a collapsed two-tier hit rate")
	}
}

func TestBigramGateFailsWithoutThrash(t *testing.T) {
	// Mem-only barely dropping means the workload is not actually bigger
	// than ram — the scenario gates nothing and must fail loudly.
	dir := t.TempDir()
	base := writeBigram(t, dir, "base.json", bigramReport(0.82, 0.80, 0.81, 8000))
	rep := writeBigram(t, dir, "rep.json", bigramReport(0.82, 0.80, 0.81, 8000))
	if err := run([]string{"-bigram-report", rep, "-bigram-baseline", base}); err == nil {
		t.Fatal("gate accepted a workload where memory-only never thrashed")
	}
}

func TestBigramGateFailsWithoutDiskHits(t *testing.T) {
	dir := t.TempDir()
	base := writeBigram(t, dir, "base.json", bigramReport(0.82, 0.31, 0.81, 8000))
	rep := writeBigram(t, dir, "rep.json", bigramReport(0.82, 0.31, 0.81, 0))
	if err := run([]string{"-bigram-report", rep, "-bigram-baseline", base}); err == nil {
		t.Fatal("gate accepted a two-tier pass that never served from disk")
	}
}

func TestBigramGateRejectsDifferentWorkload(t *testing.T) {
	dir := t.TempDir()
	base := writeBigram(t, dir, "base.json", bigramReport(0.82, 0.31, 0.81, 8000))
	eased := bigramReport(0.82, 0.31, 0.81, 8000)
	eased.Spec.CacheBudgetBytes = 1 << 30 // the corpus fits in memory
	rep := writeBigram(t, dir, "rep.json", eased)
	if err := run([]string{"-bigram-report", rep, "-bigram-baseline", base}); err == nil {
		t.Fatal("gate compared different workloads")
	}
}
