package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"webwave/internal/workload"
)

func writeReport(t *testing.T, dir, name string, rep *workload.Report) string {
	t.Helper()
	path := filepath.Join(dir, name)
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	return path
}

func report(hitHeat, hitLRU float64, overBudget bool) *workload.Report {
	return &workload.Report{
		Schema: workload.Schema, Scenario: "cache-pressure", Seed: 1,
		Systems: []workload.SystemResult{
			{Name: "webwave-heat", Cache: &workload.CacheResult{
				Policy: "heat", BudgetBytes: 40960, HitRate: hitHeat, OverBudget: overBudget,
				MaxNodeBytes: 40960,
			}},
			{Name: "webwave-lru", Cache: &workload.CacheResult{
				Policy: "lru", BudgetBytes: 40960, HitRate: hitLRU, MaxNodeBytes: 40960,
			}},
			{Name: "no-cache"}, // no cache summary: ignored by the gate
		},
	}
}

func TestGatePasses(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", report(0.30, 0.28, false))
	// Slightly lower but within the 10% band.
	rep := writeReport(t, dir, "rep.json", report(0.28, 0.26, false))
	if err := run([]string{"-report", rep, "-baseline", base}); err != nil {
		t.Fatalf("gate failed on an in-band report: %v", err)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", report(0.30, 0.28, false))
	rep := writeReport(t, dir, "rep.json", report(0.20, 0.28, false)) // heat fell 33%
	if err := run([]string{"-report", rep, "-baseline", base}); err == nil {
		t.Fatalf("gate accepted a >10%% hit-rate regression")
	}
}

func TestGateFailsOnBudgetViolation(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", report(0.30, 0.28, false))
	rep := writeReport(t, dir, "rep.json", report(0.30, 0.28, true))
	if err := run([]string{"-report", rep, "-baseline", base}); err == nil {
		t.Fatalf("gate accepted an over-budget run")
	}
}

func TestGateFailsOnMissingSystem(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", report(0.30, 0.28, false))
	rep := report(0.30, 0.28, false)
	rep.Systems = rep.Systems[:1] // drop webwave-lru
	repPath := writeReport(t, dir, "rep.json", rep)
	if err := run([]string{"-report", repPath, "-baseline", base}); err == nil {
		t.Fatalf("gate accepted a report missing a baseline system")
	}
}

func TestGateRejectsMismatchedRuns(t *testing.T) {
	dir := t.TempDir()
	base := report(0.30, 0.28, false)
	base.Seed = 2
	basePath := writeReport(t, dir, "base.json", base)
	rep := writeReport(t, dir, "rep.json", report(0.30, 0.28, false))
	if err := run([]string{"-report", rep, "-baseline", basePath}); err == nil {
		t.Fatalf("gate compared reports from different runs")
	}
}

// ---------------------------------------------------------------------------
// Core-scaling gate.

func scalingReport(effs map[int]float64, perCore map[int]float64) *workload.ScalingReport {
	procs := []int{1, 2, 4}
	rep := &workload.ScalingReport{
		Schema: workload.ScalingSchema, Scenario: "core-scaling",
		Spec: workload.ScalingSpec{Procs: procs},
	}
	for _, p := range procs {
		if _, ok := effs[p]; !ok {
			continue
		}
		rep.Runs = append(rep.Runs, workload.ScalingRun{
			Procs: p, Shards: p, Efficiency: effs[p], PerCoreRPS: perCore[p],
		})
	}
	return rep
}

func writeScaling(t *testing.T, dir, name string, rep *workload.ScalingReport) string {
	t.Helper()
	path := filepath.Join(dir, name)
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	return path
}

func TestScalingGatePasses(t *testing.T) {
	dir := t.TempDir()
	base := writeScaling(t, dir, "base.json",
		scalingReport(map[int]float64{1: 1, 2: 0.8, 4: 0.6}, map[int]float64{1: 50e3, 2: 40e3, 4: 30e3}))
	// Within the 15% band at every common core count (raw req/s far lower —
	// different hardware — must only warn).
	rep := writeScaling(t, dir, "rep.json",
		scalingReport(map[int]float64{1: 1, 2: 0.72, 4: 0.55}, map[int]float64{1: 20e3, 2: 15e3, 4: 11e3}))
	if err := run([]string{"-scaling-report", rep, "-scaling-baseline", base}); err != nil {
		t.Fatalf("gate failed on an in-band report: %v", err)
	}
}

func TestScalingGateFailsOnEfficiencyDrop(t *testing.T) {
	dir := t.TempDir()
	base := writeScaling(t, dir, "base.json",
		scalingReport(map[int]float64{1: 1, 2: 0.8, 4: 0.6}, nil))
	rep := writeScaling(t, dir, "rep.json",
		scalingReport(map[int]float64{1: 1, 2: 0.8, 4: 0.4}, nil)) // 4-proc eff fell 33%
	if err := run([]string{"-scaling-report", rep, "-scaling-baseline", base}); err == nil {
		t.Fatalf("gate accepted a >15%% efficiency regression")
	}
}

func TestScalingGateSubsetSweep(t *testing.T) {
	// CI sweeps 1,4 against a committed 1,2,4 baseline: only common core
	// counts are compared, and that must be enough to gate.
	dir := t.TempDir()
	base := writeScaling(t, dir, "base.json",
		scalingReport(map[int]float64{1: 1, 2: 0.8, 4: 0.6}, nil))
	rep := scalingReport(map[int]float64{1: 1, 4: 0.58}, nil)
	rep.Spec.Procs = []int{1, 4}
	repPath := writeScaling(t, dir, "rep.json", rep)
	if err := run([]string{"-scaling-report", repPath, "-scaling-baseline", base}); err != nil {
		t.Fatalf("gate failed on a passing subset sweep: %v", err)
	}
}

func TestScalingGateRejectsMismatchedBase(t *testing.T) {
	dir := t.TempDir()
	base := writeScaling(t, dir, "base.json",
		scalingReport(map[int]float64{1: 1, 2: 0.8}, nil))
	rep := scalingReport(map[int]float64{1: 1, 2: 0.8}, nil)
	rep.Spec.Procs = []int{2, 4} // efficiency normalized to 2 procs, not 1
	repPath := writeScaling(t, dir, "rep.json", rep)
	if err := run([]string{"-scaling-report", repPath, "-scaling-baseline", base}); err == nil {
		t.Fatalf("gate compared sweeps with different normalization bases")
	}
}

func TestScalingGateNoCommonProcs(t *testing.T) {
	dir := t.TempDir()
	base := writeScaling(t, dir, "base.json",
		scalingReport(map[int]float64{1: 1, 2: 0.8}, nil))
	rep := scalingReport(map[int]float64{1: 1}, nil)
	rep.Spec.Procs = []int{1}
	repPath := writeScaling(t, dir, "rep.json", rep)
	if err := run([]string{"-scaling-report", repPath, "-scaling-baseline", base}); err == nil {
		t.Fatalf("gate passed with nothing beyond the base to compare")
	}
}

func TestScalingGateRejectsDifferentWorkload(t *testing.T) {
	dir := t.TempDir()
	base := scalingReport(map[int]float64{1: 1, 2: 0.8}, nil)
	base.Spec.Clients = 64
	basePath := writeScaling(t, dir, "base.json", base)
	rep := scalingReport(map[int]float64{1: 1, 2: 0.8}, nil) // Clients 0
	repPath := writeScaling(t, dir, "rep.json", rep)
	if err := run([]string{"-scaling-report", repPath, "-scaling-baseline", basePath}); err == nil {
		t.Fatalf("gate compared scaling curves from different workloads")
	}
}

// ---------------------------------------------------------------------------
// Chaos gate.

func chaosReport(avail, jainRatio float64, reconnects int64, orphaned int) *workload.ChaosReport {
	return &workload.ChaosReport{
		Schema: workload.ChaosSchema, Scenario: "chaos",
		Spec: workload.ChaosSpec{
			Seed: 1, Nodes: 31, NumDocs: 48, TotalRate: 600, Duration: 12,
			KillFraction: 0.10,
		},
		Killed:          []int{4},
		Offered:         7200,
		Responses:       int64(avail * 7200),
		Availability:    avail,
		PostRepairJain:  0.5 * jainRatio,
		NoFailJain:      0.5,
		JainRatio:       jainRatio,
		Reconnects:      reconnects,
		ReabsorbSeconds: 0.25,
		FinalOrphaned:   orphaned,
	}
}

func writeChaos(t *testing.T, dir, name string, rep *workload.ChaosReport) string {
	t.Helper()
	path := filepath.Join(dir, name)
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	return path
}

func TestChaosGatePasses(t *testing.T) {
	dir := t.TempDir()
	base := writeChaos(t, dir, "base.json", chaosReport(0.99, 1.0, 2, 0))
	rep := writeChaos(t, dir, "rep.json", chaosReport(0.96, 0.95, 1, 0))
	if err := run([]string{"-chaos-report", rep, "-chaos-baseline", base}); err != nil {
		t.Fatalf("gate failed on a healthy chaos run: %v", err)
	}
}

func TestChaosGateFailsOnLowAvailability(t *testing.T) {
	dir := t.TempDir()
	base := writeChaos(t, dir, "base.json", chaosReport(0.99, 1.0, 2, 0))
	rep := writeChaos(t, dir, "rep.json", chaosReport(0.90, 1.0, 2, 0))
	if err := run([]string{"-chaos-report", rep, "-chaos-baseline", base}); err == nil {
		t.Fatal("gate accepted availability below the floor")
	}
}

func TestChaosGateFailsOnJainCollapse(t *testing.T) {
	dir := t.TempDir()
	base := writeChaos(t, dir, "base.json", chaosReport(0.99, 1.0, 2, 0))
	rep := writeChaos(t, dir, "rep.json", chaosReport(0.99, 0.7, 2, 0))
	if err := run([]string{"-chaos-report", rep, "-chaos-baseline", base}); err == nil {
		t.Fatal("gate accepted a post-repair fairness collapse")
	}
}

func TestChaosGateFailsWithoutRepair(t *testing.T) {
	dir := t.TempDir()
	base := writeChaos(t, dir, "base.json", chaosReport(0.99, 1.0, 2, 0))
	// No failover observed and an orphan left behind.
	rep := writeChaos(t, dir, "rep.json", chaosReport(0.99, 1.0, 0, 1))
	if err := run([]string{"-chaos-report", rep, "-chaos-baseline", base}); err == nil {
		t.Fatal("gate accepted a run whose tree never repaired")
	}
}

func TestChaosGateRejectsDifferentWorkload(t *testing.T) {
	dir := t.TempDir()
	base := writeChaos(t, dir, "base.json", chaosReport(0.99, 1.0, 2, 0))
	shrunk := chaosReport(0.99, 1.0, 2, 0)
	shrunk.Spec.KillFraction = 0.01 // gentler kills than the gated scenario
	rep := writeChaos(t, dir, "rep.json", shrunk)
	if err := run([]string{"-chaos-report", rep, "-chaos-baseline", base}); err == nil {
		t.Fatal("gate compared different workloads")
	}
}
