package main

// Swarm gate: thresholds for the multi-process scale-out scenario
// (webwave-swarm). The committed baseline pins the workload shape — racks,
// rack size, spine depth, rate, kill schedule, detector period — so the
// scenario cannot be quietly shrunk until it passes; the report must then
// show the swarm surviving a whole-rack SIGKILL: availability above the
// floor, the tree repaired and re-whole within the run, duty actually
// moving (absorbed by survivors, reclaimed by the revived rack), the
// re-exec provably warm, and the harness itself healthy (every revive
// succeeded, every process drained at teardown, scrapes mostly answered).

import (
	"encoding/json"
	"fmt"
	"os"

	"webwave/internal/workload"
)

func loadSwarm(path string) (*workload.SwarmReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep := &workload.SwarmReport{}
	if err := json.NewDecoder(f).Decode(rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != workload.SwarmSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, workload.SwarmSchema)
	}
	return rep, nil
}

// gateSwarm applies the scale-out thresholds; every violation is reported
// before the error returns so CI logs show the full picture.
func gateSwarm(rep, base *workload.SwarmReport, minAvail float64, out *os.File) error {
	// The baseline pins the workload: fewer racks, a shallower spine, a
	// gentler rate or a kinder kill schedule is not the gated scenario.
	if rep.Spec != base.Spec {
		return fmt.Errorf("report spec %+v and baseline spec %+v are different workloads; regenerate the baseline",
			rep.Spec, base.Spec)
	}
	bad := 0
	check := func(ok bool, format string, args ...any) {
		if ok {
			fmt.Fprintf(out, "ok   "+format+"\n", args...)
		} else {
			fmt.Fprintf(out, "FAIL "+format+"\n", args...)
			bad++
		}
	}
	check(rep.Nodes == 1+rep.Spec.Racks*rep.Spec.RackNodes,
		"%d node processes launched (spec says %d)", rep.Nodes, 1+rep.Spec.Racks*rep.Spec.RackNodes)
	check(rep.Depth == rep.Spec.RackDepth+1,
		"tree depth %d (spec spine %d + root)", rep.Depth, rep.Spec.RackDepth)
	check(rep.Availability >= minAvail,
		"availability %.4f with rack %d killed (floor %.4f; %d rerouted, %d lost in flight)",
		rep.Availability, rep.Spec.KillRack, minAvail, rep.Rerouted, rep.LostInFlight)
	if rep.Spec.KillRack >= 0 {
		check(rep.RepairSeconds >= 0,
			"survivors repaired %.2fs after the rack kill (must complete)", rep.RepairSeconds)
		check(rep.ReabsorbSeconds >= 0,
			"tree whole %.2fs after the rack re-exec (must complete)", rep.ReabsorbSeconds)
		check(rep.ReclaimedDuty+rep.AbsorbedDuty > 0,
			"duty moved: %.1f req/s reclaimed + %.1f req/s absorbed (a silent kill moves nothing)",
			rep.ReclaimedDuty, rep.AbsorbedDuty)
		check(rep.WarmDocs >= 1,
			"warm docs %d (the re-exec'd rack must recover from its journals)", rep.WarmDocs)
	}
	check(rep.FinalOrphaned == 0, "orphaned at end %d (tree must be repaired)", rep.FinalOrphaned)
	check(rep.FailedRevives == 0, "failed revives %d (every re-exec must come back)", rep.FailedRevives)
	check(rep.ForcedTeardowns == 0,
		"forced teardowns %d (every process must drain on SIGTERM)", rep.ForcedTeardowns)
	// Scrapes are allowed occasional timeouts on a loaded host — that is
	// what the partial-results design is for — but persistent failure means
	// the stats path itself is broken.
	check(rep.ScrapeErrors <= int64(rep.Nodes),
		"scrape errors %d over %d nodes (ceiling one per node)", rep.ScrapeErrors, rep.Nodes)
	if bad > 0 {
		return fmt.Errorf("%d swarm gate violation(s)", bad)
	}
	return nil
}
