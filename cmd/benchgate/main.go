// Command benchgate compares freshly produced webwave-bench reports
// against committed baselines and fails (exit 1) on regressions. Two gates
// are implemented; CI runs both so a regression breaks the build instead
// of the tail latency of some future long-haul run:
//
//   - Cache (-report/-baseline): a system's hit rate dropping more than the
//     allowed fraction below the baseline, a budgeted system exceeding its
//     byte budget, or a system present in the baseline vanishing from the
//     report.
//
//   - Core scaling (-scaling-report/-scaling-baseline): the multi-core
//     serving efficiency — req/s-per-core normalized by the same sweep's
//     1-proc throughput — dropping more than the allowed fraction below the
//     baseline at any common core count. The normalization makes the gate
//     portable across hardware: a committed baseline from one machine still
//     bounds the *shape* of the scaling curve on another, where gating raw
//     req/s would only measure whose CPU is newer. Absolute per-core drops
//     are printed as warnings, not failures, for the same reason.
//
//   - Hot-key (-hotkey-report/-hotkey-baseline): the replication-forest
//     floor. The committed baseline pins the workload (spec mismatch fails);
//     the report must then show the widest forest beating the single tree by
//     at least -min-scaling in throughput on the single-document flash crowd
//     while keeping Jain fairness at least -min-hotkey-jain-ratio of the
//     k=1 run, and every multi-tree run must complete a promote/demote
//     round trip — promotion during the ramp AND demotion after the decay,
//     so the hysteresis can never be satisfied by a forest that promotes
//     and sticks.
//
//   - Chaos (-chaos-report/-chaos-baseline): the fault-tolerance floor. The
//     committed baseline pins the workload (spec mismatch fails, so the
//     scenario cannot be silently shrunk until it passes); the report must
//     then clear absolute thresholds: availability under the interior-node
//     kills at least -min-availability, post-repair Jain within the allowed
//     ratio of the same schedule's no-failure run, at least one observed
//     failover, nobody left orphaned at the end, and zero failed revives.
//     Thresholds rather than byte comparison because the run is wall-clock.
//
//   - Restart (-restart-report/-restart-baseline): the warm-restart floor.
//     The committed baseline pins the workload; the warm pass must then
//     answer at least -min-warm-availability of the schedule offered after
//     the revival instant, reabsorb within -max-warm-reabsorb seconds (or
//     within one failure-detection window of the same report's cold pass —
//     the figure is wall-clock and quantized by the heartbeat detector, so
//     the relative bound is the honest one on a loaded or jittery CI box),
//     actually recover documents from its journals (warm_docs >= 1,
//     otherwise the tier silently did nothing and the pass degenerates to a
//     second cold run), and revive every victim in both passes.
//
//   - Update-heavy (-update-report/-update-baseline): the mutability floor.
//     The committed baseline pins the workload (spec mismatch fails); the
//     report's write-mix pass must then answer everything, actually write
//     (writes >= 1, every post-write response staleness-sampled, at least
//     one republish applied somewhere), keep the p99 response staleness at
//     or under -max-p99-staleness (default 0 = one diffusion period, read
//     from the report — a write must diffuse within a propagation tick),
//     and cost at most -max-hitrate-cost of the read-only control's hit
//     rate. Thresholds rather than byte comparison because the run is
//     wall-clock.
//
//   - Invalidation-storm (-storm-report/-storm-baseline): the lease floor.
//     The committed baseline pins the workload; the storm must then answer
//     every burst read, exercise the leases (lease refreshes >= 1, at least
//     one invalidation applied), complete the warm-up promotion when a
//     forest is configured, and collapse the per-write origin load: origin
//     fetches per write at most -max-origin-factor times the subtree count
//     (O(subtrees), not O(clients)) and upstream forwards per write at most
//     -max-forward-fraction of the client count (no thundering herd).
//
//   - Session (-session-report/-session-baseline): the read-my-writes
//     floor. The committed baseline pins the workload; the token arm must
//     then answer every read with ZERO violations (the guarantee holds end
//     to end) while the token-less arm of the identical schedule shows
//     strictly positive violations — a zero there means the schedule went
//     soft and stopped provoking the races the tokens exist to close, so
//     the gate fails rather than vacuously passing. The token arm must also
//     have exercised the server-side gate (session refreshes >= 1).
//
//   - Bigger-than-ram (-bigram-report/-bigram-baseline): the disk-tier
//     floor. The committed baseline pins the workload (a corpus that fits in
//     memory would gate nothing); two-tier's hit rate must stay within
//     -max-twotier-regress of the in-ram ceiling, memory-only must lose at
//     least -min-drop-ratio times more hit rate than two-tier (the thrash is
//     real AND the fix is real — a gentle workload where nothing thrashes
//     fails the gate rather than vacuously passing it), and two-tier must
//     actually serve from disk (disk_hits > 0).
//
//   - Swarm (-swarm-report/-swarm-baseline): the multi-process scale-out
//     floor. The committed baseline pins the swarm shape (racks, rack size,
//     spine depth, kill schedule); the report must then survive the
//     whole-rack SIGKILL with availability at least -min-swarm-availability,
//     repair and re-whole the tree within the run, move duty (absorbed by
//     survivors and reclaimed by the revived rack), recover documents from
//     journals on the re-exec (warm, not cold), and keep the harness clean:
//     zero failed revives, zero forced teardowns, scrape errors bounded.
//
// Usage:
//
//	benchgate -report BENCH_cache.json -baseline bench/BENCH_cache_baseline.json [-max-regress 0.10]
//	benchgate -scaling-report BENCH_scaling.json -scaling-baseline bench/BENCH_scaling_baseline.json [-max-scaling-regress 0.15]
//	benchgate -chaos-report BENCH_chaos.json -chaos-baseline bench/BENCH_chaos_baseline.json [-min-availability 0.95] [-min-jain-ratio 0.90]
//	benchgate -hotkey-report BENCH_hotkey.json -hotkey-baseline bench/BENCH_hotkey_baseline.json [-min-scaling 2.0] [-min-hotkey-jain-ratio 0.90]
//	benchgate -restart-report BENCH_restart.json -restart-baseline bench/BENCH_restart_baseline.json [-min-warm-availability 0.981] [-max-warm-reabsorb 0.06]
//	benchgate -bigram-report BENCH_bigram.json -bigram-baseline bench/BENCH_bigram_baseline.json [-max-twotier-regress 0.10] [-min-drop-ratio 2.0]
//	benchgate -update-report BENCH_update.json -update-baseline bench/BENCH_update_baseline.json [-max-p99-staleness 0] [-max-hitrate-cost 0.10]
//	benchgate -storm-report BENCH_storm.json -storm-baseline bench/BENCH_storm_baseline.json [-max-origin-factor 4.0] [-max-forward-fraction 0.5]
//	benchgate -session-report BENCH_session.json -session-baseline bench/BENCH_session_baseline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"webwave/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	reportPath := fs.String("report", "", "cache report JSON produced by this run")
	basePath := fs.String("baseline", "", "committed cache baseline report JSON")
	maxRegress := fs.Float64("max-regress", 0.10, "max allowed fractional hit-rate drop vs baseline")
	scalingPath := fs.String("scaling-report", "", "core-scaling report JSON produced by this run")
	scalingBasePath := fs.String("scaling-baseline", "", "committed core-scaling baseline JSON")
	maxScalingRegress := fs.Float64("max-scaling-regress", 0.15, "max allowed fractional per-core efficiency drop vs baseline")
	chaosPath := fs.String("chaos-report", "", "chaos report JSON produced by this run")
	chaosBasePath := fs.String("chaos-baseline", "", "committed chaos baseline JSON (pins the workload)")
	minAvailability := fs.Float64("min-availability", 0.95, "chaos: minimum served/offered under the scheduled kills")
	minJainRatio := fs.Float64("min-jain-ratio", 0.90, "chaos: minimum post-repair Jain relative to the no-failure run")
	hotkeyPath := fs.String("hotkey-report", "", "hot-key report JSON produced by this run")
	hotkeyBasePath := fs.String("hotkey-baseline", "", "committed hot-key baseline JSON (pins the workload)")
	minScaling := fs.Float64("min-scaling", 2.0, "hot-key: minimum widest-forest/k=1 throughput ratio")
	minHotkeyJainRatio := fs.Float64("min-hotkey-jain-ratio", 0.90, "hot-key: minimum widest-forest Jain relative to the k=1 run")
	restartPath := fs.String("restart-report", "", "restart-warmth report JSON produced by this run")
	restartBasePath := fs.String("restart-baseline", "", "committed restart baseline JSON (pins the workload)")
	minWarmAvail := fs.Float64("min-warm-availability", 0.981, "restart: minimum warm-pass post-restart availability")
	maxWarmReabsorb := fs.Float64("max-warm-reabsorb", 0.06, "restart: warm reabsorb ceiling in seconds (relaxed when cold is slower)")
	bigramPath := fs.String("bigram-report", "", "bigger-than-ram report JSON produced by this run")
	bigramBasePath := fs.String("bigram-baseline", "", "committed bigger-than-ram baseline JSON (pins the workload)")
	maxTwoTierRegress := fs.Float64("max-twotier-regress", 0.10, "bigram: max allowed fractional two-tier hit-rate drop vs the in-ram ceiling")
	minDropRatio := fs.Float64("min-drop-ratio", 2.0, "bigram: memory-only hit drop must be at least this multiple of two-tier's")
	minMemOnlyDrop := fs.Float64("min-memonly-drop", 0.10, "bigram: minimum memory-only hit drop (proves the corpus really exceeds memory)")
	updatePath := fs.String("update-report", "", "update-heavy report JSON produced by this run")
	updateBasePath := fs.String("update-baseline", "", "committed update-heavy baseline JSON (pins the workload)")
	maxP99Staleness := fs.Float64("max-p99-staleness", 0, "update: p99 staleness ceiling in seconds (0 = one diffusion period from the report)")
	maxHitRateCost := fs.Float64("max-hitrate-cost", 0.10, "update: max fractional hit-rate drop of the write mix vs the read-only control")
	swarmPath := fs.String("swarm-report", "", "swarm report JSON produced by this run")
	swarmBasePath := fs.String("swarm-baseline", "", "committed swarm baseline JSON (pins the workload)")
	minSwarmAvail := fs.Float64("min-swarm-availability", 0.95, "swarm: minimum served/offered under the whole-rack kill")
	stormPath := fs.String("storm-report", "", "invalidation-storm report JSON produced by this run")
	stormBasePath := fs.String("storm-baseline", "", "committed invalidation-storm baseline JSON (pins the workload)")
	maxOriginFactor := fs.Float64("max-origin-factor", 4.0, "storm: per-write origin fetches ceiling as a multiple of the subtree count")
	maxForwardFraction := fs.Float64("max-forward-fraction", 0.5, "storm: per-write upstream forwards ceiling as a fraction of the client count")
	sessionPath := fs.String("session-report", "", "session report JSON produced by this run")
	sessionBasePath := fs.String("session-baseline", "", "committed session baseline JSON (pins the workload)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ranAny := false
	if *reportPath != "" || *basePath != "" {
		if *reportPath == "" || *basePath == "" {
			return fmt.Errorf("both -report and -baseline are required")
		}
		rep, err := load(*reportPath)
		if err != nil {
			return err
		}
		base, err := load(*basePath)
		if err != nil {
			return err
		}
		if err := gate(rep, base, *maxRegress, os.Stdout); err != nil {
			return err
		}
		ranAny = true
	}
	if *scalingPath != "" || *scalingBasePath != "" {
		if *scalingPath == "" || *scalingBasePath == "" {
			return fmt.Errorf("both -scaling-report and -scaling-baseline are required")
		}
		rep, err := loadScaling(*scalingPath)
		if err != nil {
			return err
		}
		base, err := loadScaling(*scalingBasePath)
		if err != nil {
			return err
		}
		if err := gateScaling(rep, base, *maxScalingRegress, os.Stdout); err != nil {
			return err
		}
		ranAny = true
	}
	if *chaosPath != "" || *chaosBasePath != "" {
		if *chaosPath == "" || *chaosBasePath == "" {
			return fmt.Errorf("both -chaos-report and -chaos-baseline are required")
		}
		rep, err := loadChaos(*chaosPath)
		if err != nil {
			return err
		}
		base, err := loadChaos(*chaosBasePath)
		if err != nil {
			return err
		}
		if err := gateChaos(rep, base, *minAvailability, *minJainRatio, os.Stdout); err != nil {
			return err
		}
		ranAny = true
	}
	if *hotkeyPath != "" || *hotkeyBasePath != "" {
		if *hotkeyPath == "" || *hotkeyBasePath == "" {
			return fmt.Errorf("both -hotkey-report and -hotkey-baseline are required")
		}
		rep, err := loadHotkey(*hotkeyPath)
		if err != nil {
			return err
		}
		base, err := loadHotkey(*hotkeyBasePath)
		if err != nil {
			return err
		}
		if err := gateHotkey(rep, base, *minScaling, *minHotkeyJainRatio, os.Stdout); err != nil {
			return err
		}
		ranAny = true
	}
	if *restartPath != "" || *restartBasePath != "" {
		if *restartPath == "" || *restartBasePath == "" {
			return fmt.Errorf("both -restart-report and -restart-baseline are required")
		}
		rep, err := loadRestart(*restartPath)
		if err != nil {
			return err
		}
		base, err := loadRestart(*restartBasePath)
		if err != nil {
			return err
		}
		if err := gateRestart(rep, base, *minWarmAvail, *maxWarmReabsorb, os.Stdout); err != nil {
			return err
		}
		ranAny = true
	}
	if *bigramPath != "" || *bigramBasePath != "" {
		if *bigramPath == "" || *bigramBasePath == "" {
			return fmt.Errorf("both -bigram-report and -bigram-baseline are required")
		}
		rep, err := loadBigram(*bigramPath)
		if err != nil {
			return err
		}
		base, err := loadBigram(*bigramBasePath)
		if err != nil {
			return err
		}
		if err := gateBigram(rep, base, *maxTwoTierRegress, *minDropRatio, *minMemOnlyDrop, os.Stdout); err != nil {
			return err
		}
		ranAny = true
	}
	if *updatePath != "" || *updateBasePath != "" {
		if *updatePath == "" || *updateBasePath == "" {
			return fmt.Errorf("both -update-report and -update-baseline are required")
		}
		rep, err := loadUpdate(*updatePath)
		if err != nil {
			return err
		}
		base, err := loadUpdate(*updateBasePath)
		if err != nil {
			return err
		}
		if err := gateUpdate(rep, base, *maxP99Staleness, *maxHitRateCost, os.Stdout); err != nil {
			return err
		}
		ranAny = true
	}
	if *swarmPath != "" || *swarmBasePath != "" {
		if *swarmPath == "" || *swarmBasePath == "" {
			return fmt.Errorf("both -swarm-report and -swarm-baseline are required")
		}
		rep, err := loadSwarm(*swarmPath)
		if err != nil {
			return err
		}
		base, err := loadSwarm(*swarmBasePath)
		if err != nil {
			return err
		}
		if err := gateSwarm(rep, base, *minSwarmAvail, os.Stdout); err != nil {
			return err
		}
		ranAny = true
	}
	if *stormPath != "" || *stormBasePath != "" {
		if *stormPath == "" || *stormBasePath == "" {
			return fmt.Errorf("both -storm-report and -storm-baseline are required")
		}
		rep, err := loadStorm(*stormPath)
		if err != nil {
			return err
		}
		base, err := loadStorm(*stormBasePath)
		if err != nil {
			return err
		}
		if err := gateStorm(rep, base, *maxOriginFactor, *maxForwardFraction, os.Stdout); err != nil {
			return err
		}
		ranAny = true
	}
	if *sessionPath != "" || *sessionBasePath != "" {
		if *sessionPath == "" || *sessionBasePath == "" {
			return fmt.Errorf("both -session-report and -session-baseline are required")
		}
		rep, err := loadSession(*sessionPath)
		if err != nil {
			return err
		}
		base, err := loadSession(*sessionBasePath)
		if err != nil {
			return err
		}
		if err := gateSession(rep, base, os.Stdout); err != nil {
			return err
		}
		ranAny = true
	}
	if !ranAny {
		return fmt.Errorf("nothing to gate: pass -report/-baseline, -scaling-report/-scaling-baseline, -chaos-report/-chaos-baseline, -hotkey-report/-hotkey-baseline, -restart-report/-restart-baseline, -bigram-report/-bigram-baseline, -update-report/-update-baseline, -storm-report/-storm-baseline, -session-report/-session-baseline and/or -swarm-report/-swarm-baseline")
	}
	return nil
}

func loadUpdate(path string) (*workload.UpdateReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep := &workload.UpdateReport{}
	if err := json.NewDecoder(f).Decode(rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != workload.UpdateSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, workload.UpdateSchema)
	}
	return rep, nil
}

// gateUpdate applies the mutability thresholds; every violation is reported
// before the error returns so CI logs show the full picture.
func gateUpdate(rep, base *workload.UpdateReport, maxP99, maxCost float64, out *os.File) error {
	// The baseline pins the workload: a report from a smaller tree, a gentler
	// rate or a thinner write mix is not the gated scenario.
	if rep.Spec != base.Spec {
		return fmt.Errorf("report spec %+v and baseline spec %+v are different workloads; regenerate the baseline",
			rep.Spec, base.Spec)
	}
	// The default staleness ceiling is the propagation unit itself: a write
	// must be visible tree-wide within about one diffusion period.
	if maxP99 <= 0 {
		maxP99 = rep.DiffusionPeriodS
	}
	bad := 0
	check := func(ok bool, format string, args ...any) {
		if ok {
			fmt.Fprintf(out, "ok   "+format+"\n", args...)
		} else {
			fmt.Fprintf(out, "FAIL "+format+"\n", args...)
			bad++
		}
	}
	check(rep.ReadOnly.Unanswered == 0 && rep.Update.Unanswered == 0,
		"unanswered reads: read-only %d, update %d (every request must be served)",
		rep.ReadOnly.Unanswered, rep.Update.Unanswered)
	check(rep.Update.Writes >= 1,
		"writes %d (the mix must actually write)", rep.Update.Writes)
	check(rep.Update.Staleness.Samples >= rep.Update.Writes,
		"staleness samples %d over %d writes (post-write responses must be sampled)",
		rep.Update.Staleness.Samples, rep.Update.Writes)
	check(rep.Update.RepublishesIn >= 1,
		"republishes applied %d (writes must diffuse to at least one node)",
		rep.Update.RepublishesIn)
	check(rep.Update.Staleness.P99 <= maxP99,
		"p99 staleness %.4fs (ceiling %.4fs, one diffusion period %.4fs)",
		rep.Update.Staleness.P99, maxP99, rep.DiffusionPeriodS)
	check(rep.HitRateCost <= maxCost,
		"hit-rate cost %.4f of the read-only control (ceiling %.2f; %.4f -> %.4f)",
		rep.HitRateCost, maxCost, rep.ReadOnly.HitRate, rep.Update.HitRate)
	if bad > 0 {
		return fmt.Errorf("%d update-heavy gate violation(s)", bad)
	}
	return nil
}

func loadStorm(path string) (*workload.StormReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep := &workload.StormReport{}
	if err := json.NewDecoder(f).Decode(rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != workload.StormSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, workload.StormSchema)
	}
	return rep, nil
}

// gateStorm applies the lease-collapse thresholds; every violation is
// reported before the error returns so CI logs show the full picture.
func gateStorm(rep, base *workload.StormReport, maxOriginFactor, maxForwardFraction float64, out *os.File) error {
	// The baseline pins the workload: fewer clients per burst, fewer writes
	// or a longer settle would ease the storm the gate exists to measure.
	if rep.Spec != base.Spec {
		return fmt.Errorf("report spec %+v and baseline spec %+v are different workloads; regenerate the baseline",
			rep.Spec, base.Spec)
	}
	bad := 0
	check := func(ok bool, format string, args ...any) {
		if ok {
			fmt.Fprintf(out, "ok   "+format+"\n", args...)
		} else {
			fmt.Fprintf(out, "FAIL "+format+"\n", args...)
			bad++
		}
	}
	check(rep.Unanswered == 0,
		"unanswered burst reads %d (every storm read must be served)", rep.Unanswered)
	check(rep.Writes >= 1 && rep.InvalidationsIn >= 1,
		"%d writes, %d invalidations applied (the storm must actually invalidate)",
		rep.Writes, rep.InvalidationsIn)
	check(rep.LeaseRefreshes >= 1,
		"lease refreshes %d (the leases must be exercised)", rep.LeaseRefreshes)
	if rep.Spec.K > 1 {
		check(rep.Promotions >= 1,
			"promotions %d with K=%d (warm-up must raise the forest)", rep.Promotions, rep.Spec.K)
	}
	// The headline: per-write origin load is O(subtrees), not O(clients).
	// Zero is legitimate — proactive duty diffusion can repair the tree
	// before the burst lands — so only the ceiling is gated.
	originCeiling := maxOriginFactor * float64(rep.Spec.Subtrees)
	check(rep.PerWriteOriginFetches <= originCeiling,
		"%.1f origin fetches/write over %d subtrees (ceiling %.1f; %d clients would herd)",
		rep.PerWriteOriginFetches, rep.Spec.Subtrees, originCeiling, rep.Spec.Clients)
	forwardCeiling := maxForwardFraction * float64(rep.Spec.Clients)
	check(rep.PerWriteForwards <= forwardCeiling,
		"%.1f upstream forwards/write vs %d clients (ceiling %.1f)",
		rep.PerWriteForwards, rep.Spec.Clients, forwardCeiling)
	if bad > 0 {
		return fmt.Errorf("%d invalidation-storm gate violation(s)", bad)
	}
	return nil
}

func loadSession(path string) (*workload.SessionReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep := &workload.SessionReport{}
	if err := json.NewDecoder(f).Decode(rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != workload.SessionSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, workload.SessionSchema)
	}
	return rep, nil
}

// gateSession applies the read-my-writes thresholds; every violation is
// reported before the error returns so CI logs show the full picture.
func gateSession(rep, base *workload.SessionReport, out *os.File) error {
	// The baseline pins the workload: fewer rounds, fewer reads per write or
	// a smaller catalog would soften the races the gate exists to measure.
	if rep.Spec != base.Spec {
		return fmt.Errorf("report spec %+v and baseline spec %+v are different workloads; regenerate the baseline",
			rep.Spec, base.Spec)
	}
	bad := 0
	check := func(ok bool, format string, args ...any) {
		if ok {
			fmt.Fprintf(out, "ok   "+format+"\n", args...)
		} else {
			fmt.Fprintf(out, "FAIL "+format+"\n", args...)
			bad++
		}
	}
	check(rep.WithTokens.Unanswered == 0 && rep.WithoutTokens.Unanswered == 0,
		"unanswered reads: with tokens %d, without %d (every session read must be served)",
		rep.WithTokens.Unanswered, rep.WithoutTokens.Unanswered)
	check(rep.WithTokens.Writes >= 1 && rep.WithoutTokens.Writes >= 1,
		"writes: with tokens %d, without %d (the schedule must actually write)",
		rep.WithTokens.Writes, rep.WithoutTokens.Writes)
	// The headline pair: the token arm must hold the guarantee absolutely,
	// and the bare arm of the identical schedule must demonstrate the races
	// the tokens close — otherwise the zero above proves nothing.
	check(rep.WithTokens.Violations == 0,
		"read-my-writes violations with tokens %d (the guarantee admits no exceptions)",
		rep.WithTokens.Violations)
	check(rep.WithoutTokens.Violations > 0,
		"read-my-writes violations without tokens %d over %d rounds (the schedule must provoke the race)",
		rep.WithoutTokens.Violations, rep.WithoutTokens.ViolationWindows)
	check(rep.WithTokens.SessionRefreshes >= 1,
		"session refreshes %d (the server-side gate must be exercised, not bypassed)",
		rep.WithTokens.SessionRefreshes)
	if bad > 0 {
		return fmt.Errorf("%d session gate violation(s)", bad)
	}
	return nil
}

func loadRestart(path string) (*workload.RestartReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep := &workload.RestartReport{}
	if err := json.NewDecoder(f).Decode(rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != workload.RestartSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, workload.RestartSchema)
	}
	return rep, nil
}

// gateRestart applies the warm-restart thresholds; every violation is
// reported before the error returns so CI logs show the full picture.
func gateRestart(rep, base *workload.RestartReport, minWarmAvail, maxWarmReabsorb float64, out *os.File) error {
	// The baseline pins the workload: a report from a smaller tree, gentler
	// kills, a shorter downtime or a bigger cache budget is not the gated
	// scenario.
	if rep.Spec != base.Spec {
		return fmt.Errorf("report spec %+v and baseline spec %+v are different workloads; regenerate the baseline",
			rep.Spec, base.Spec)
	}
	bad := 0
	check := func(ok bool, format string, args ...any) {
		if ok {
			fmt.Fprintf(out, "ok   "+format+"\n", args...)
		} else {
			fmt.Fprintf(out, "FAIL "+format+"\n", args...)
			bad++
		}
	}
	check(rep.Warm.PostRestartAvailability >= minWarmAvail,
		"warm post-restart availability %.4f (floor %.4f; cold %.4f)",
		rep.Warm.PostRestartAvailability, minWarmAvail, rep.Cold.PostRestartAvailability)
	// Reabsorb is wall-clock AND quantized by the failure detector: any
	// single measurement lands anywhere inside one detection window
	// (HeartbeatMisses silent periods), so the absolute ceiling alone would
	// flake. A warm pass within one detection window of the same report's
	// cold pass also passes — that covers both detector quantization and a
	// loaded CI runner slowing the passes alike — while a genuinely broken
	// warm path overshoots the window. -1 (never repaired) fails both arms.
	hb := rep.Spec.HeartbeatMS
	if hb <= 0 {
		hb = 40 // ChaosSpec.WithDefaults
	}
	detectWindow := 3 * float64(hb) / 1000 // default HeartbeatMisses
	warmReabsorbOK := rep.Warm.ReabsorbSeconds >= 0 &&
		(rep.Warm.ReabsorbSeconds <= maxWarmReabsorb ||
			(rep.Cold.ReabsorbSeconds >= 0 && rep.Warm.ReabsorbSeconds <= rep.Cold.ReabsorbSeconds+detectWindow))
	check(warmReabsorbOK, "warm reabsorb %.2fs (ceiling %.2fs, cold %.2fs + %.2fs detection window)",
		rep.Warm.ReabsorbSeconds, maxWarmReabsorb, rep.Cold.ReabsorbSeconds, detectWindow)
	check(rep.Warm.WarmDocs >= 1,
		"warm docs recovered %d (journal replay must restore something)", rep.Warm.WarmDocs)
	check(rep.Cold.FailedRevives == 0 && rep.Warm.FailedRevives == 0,
		"failed revives cold %d warm %d (every victim must come back)",
		rep.Cold.FailedRevives, rep.Warm.FailedRevives)
	if bad > 0 {
		return fmt.Errorf("%d restart gate violation(s)", bad)
	}
	return nil
}

func loadBigram(path string) (*workload.BigramReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep := &workload.BigramReport{}
	if err := json.NewDecoder(f).Decode(rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != workload.BigramSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, workload.BigramSchema)
	}
	return rep, nil
}

// gateBigram applies the disk-tier thresholds; every violation is reported
// before the error returns so CI logs show the full picture.
func gateBigram(rep, base *workload.BigramReport, maxTwoTierRegress, minDropRatio, minMemOnlyDrop float64, out *os.File) error {
	// The baseline pins the workload: a smaller corpus or a bigger memory
	// budget removes the pressure the gate exists to measure.
	if rep.Spec != base.Spec {
		return fmt.Errorf("report spec %+v and baseline spec %+v are different workloads; regenerate the baseline",
			rep.Spec, base.Spec)
	}
	bad := 0
	check := func(ok bool, format string, args ...any) {
		if ok {
			fmt.Fprintf(out, "ok   "+format+"\n", args...)
		} else {
			fmt.Fprintf(out, "FAIL "+format+"\n", args...)
			bad++
		}
	}
	// All three figures come from the same report — the in-ram ceiling is
	// re-measured every run, so the comparison is same-hardware by
	// construction and the baseline only pins the spec.
	check(rep.TwoTier.HitRate >= rep.InRAM.HitRate*(1-maxTwoTierRegress),
		"two-tier hit rate %.4f within %.0f%% of in-ram %.4f",
		rep.TwoTier.HitRate, maxTwoTierRegress*100, rep.InRAM.HitRate)
	check(rep.MemOnlyHitDrop >= minMemOnlyDrop,
		"mem-only hit drop %.4f (floor %.2f — the constrained budget must actually thrash)",
		rep.MemOnlyHitDrop, minMemOnlyDrop)
	twoTierDrop := rep.TwoTierHitDrop
	if twoTierDrop < 0 {
		twoTierDrop = 0 // two-tier beating the in-ram ceiling only makes the ratio easier
	}
	check(rep.MemOnlyHitDrop >= minDropRatio*twoTierDrop,
		"mem-only drop %.4f is %.1fx two-tier drop %.4f (floor %.1fx)",
		rep.MemOnlyHitDrop, safeRatio(rep.MemOnlyHitDrop, twoTierDrop), rep.TwoTierHitDrop, minDropRatio)
	check(rep.TwoTier.DiskHits > 0,
		"two-tier disk hits %d (the tier must actually serve)", rep.TwoTier.DiskHits)
	if bad > 0 {
		return fmt.Errorf("%d bigger-than-ram gate violation(s)", bad)
	}
	return nil
}

// safeRatio is for display only: the drop ratio with a zero denominator is
// effectively infinite, rendered as 999x rather than +Inf.
func safeRatio(num, den float64) float64 {
	if den <= 0 {
		return 999
	}
	return num / den
}

func loadHotkey(path string) (*workload.HotkeyReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep := &workload.HotkeyReport{}
	if err := json.NewDecoder(f).Decode(rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != workload.HotkeySchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, workload.HotkeySchema)
	}
	return rep, nil
}

// gateHotkey applies the replication-forest thresholds; every violation is
// reported before the error returns so CI logs show the full picture.
func gateHotkey(rep, base *workload.HotkeyReport, minScaling, minJainRatio float64, out *os.File) error {
	// The baseline pins the workload: HotkeySpec includes the K sweep (a
	// slice), so the pin is a field-wise comparison via canonical JSON — a
	// report from a gentler flash, a bigger server or a narrower sweep is
	// not the gated scenario.
	repSpec, err := json.Marshal(rep.Spec)
	if err != nil {
		return err
	}
	baseSpec, err := json.Marshal(base.Spec)
	if err != nil {
		return err
	}
	if string(repSpec) != string(baseSpec) {
		return fmt.Errorf("report spec %s and baseline spec %s are different workloads; regenerate the baseline",
			repSpec, baseSpec)
	}
	bad := 0
	check := func(ok bool, format string, args ...any) {
		if ok {
			fmt.Fprintf(out, "ok   "+format+"\n", args...)
		} else {
			fmt.Fprintf(out, "FAIL "+format+"\n", args...)
			bad++
		}
	}
	baseRun := rep.Run(1)
	check(baseRun != nil, "k=1 baseline run present in the sweep")
	check(rep.ScalingX >= minScaling,
		"widest forest scales %.2fx over k=1 (floor %.2fx)", rep.ScalingX, minScaling)
	check(rep.JainRatio >= minJainRatio,
		"widest forest jain ratio %.3f vs k=1 (floor %.2f)", rep.JainRatio, minJainRatio)
	for _, run := range rep.Runs {
		if run.K <= 1 {
			continue
		}
		check(run.Promotions >= 1 && run.Demotions >= 1,
			"k=%d promote/demote round trip (%d promotions, %d demotions)",
			run.K, run.Promotions, run.Demotions)
		check(run.PromotedAtS >= 0 && run.DemotedAtS > run.PromotedAtS,
			"k=%d promoted at %.1fs, demoted at %.1fs", run.K, run.PromotedAtS, run.DemotedAtS)
	}
	if bad > 0 {
		return fmt.Errorf("%d hot-key gate violation(s)", bad)
	}
	return nil
}

func loadChaos(path string) (*workload.ChaosReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep := &workload.ChaosReport{}
	if err := json.NewDecoder(f).Decode(rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != workload.ChaosSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, workload.ChaosSchema)
	}
	return rep, nil
}

// gateChaos applies the fault-tolerance thresholds; every violation is
// reported before the error returns so CI logs show the full picture.
func gateChaos(rep, base *workload.ChaosReport, minAvail, minJainRatio float64, out *os.File) error {
	// The baseline pins the workload: a report from a smaller tree, lighter
	// kills or a shorter schedule is not the gated scenario.
	// Every spec field is pinned — including the kill schedule and the
	// detector period, since a faster heartbeat or gentler downtime would
	// ease the scenario as surely as a smaller tree.
	if rep.Spec != base.Spec {
		return fmt.Errorf("report spec %+v and baseline spec %+v are different workloads; regenerate the baseline",
			rep.Spec, base.Spec)
	}
	bad := 0
	check := func(ok bool, format string, args ...any) {
		if ok {
			fmt.Fprintf(out, "ok   "+format+"\n", args...)
		} else {
			fmt.Fprintf(out, "FAIL "+format+"\n", args...)
			bad++
		}
	}
	check(rep.Availability >= minAvail,
		"availability %.4f under %d kills (floor %.4f)", rep.Availability, len(rep.Killed), minAvail)
	check(rep.JainRatio >= minJainRatio,
		"post-repair jain %.3f = %.3f of the no-failure run (floor %.2f)",
		rep.PostRepairJain, rep.JainRatio, minJainRatio)
	check(rep.Reconnects >= 1, "reconnects %d (failover must have fired)", rep.Reconnects)
	check(rep.FinalOrphaned == 0, "orphaned at end %d (tree must be repaired)", rep.FinalOrphaned)
	check(rep.ReabsorbSeconds >= 0, "reabsorb %.2fs (repair must complete within the run)", rep.ReabsorbSeconds)
	check(rep.FailedRevives == 0, "failed revives %d (every scheduled restart must succeed)", rep.FailedRevives)
	if bad > 0 {
		return fmt.Errorf("%d chaos gate violation(s)", bad)
	}
	return nil
}

func loadScaling(path string) (*workload.ScalingReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep := &workload.ScalingReport{}
	if err := json.NewDecoder(f).Decode(rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != workload.ScalingSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, workload.ScalingSchema)
	}
	return rep, nil
}

// gateScaling applies the efficiency rules; it reports every violation
// before returning an error so CI logs show the full picture.
func gateScaling(rep, base *workload.ScalingReport, maxRegress float64, out *os.File) error {
	if len(rep.Spec.Procs) == 0 || len(base.Spec.Procs) == 0 {
		return fmt.Errorf("scaling report/baseline with empty proc sweep")
	}
	// Same workload or the curves mean nothing. Duration is deliberately
	// exempt: it sets the sampling window, not the offered pressure, and CI
	// measures a shorter window than the committed baseline.
	rw, bw := rep.Spec, base.Spec
	if rw.Seed != bw.Seed || rw.Nodes != bw.Nodes || rw.Clients != bw.Clients ||
		rw.NumDocs != bw.NumDocs || rw.BodyBytes != bw.BodyBytes || rw.ZipfSkew != bw.ZipfSkew {
		return fmt.Errorf("report (seed %d, %d nodes, %d clients, %d docs x %dB, skew %g) and baseline (seed %d, %d nodes, %d clients, %d docs x %dB, skew %g) are different workloads; regenerate the baseline",
			rw.Seed, rw.Nodes, rw.Clients, rw.NumDocs, rw.BodyBytes, rw.ZipfSkew,
			bw.Seed, bw.Nodes, bw.Clients, bw.NumDocs, bw.BodyBytes, bw.ZipfSkew)
	}
	if rep.Spec.Procs[0] != base.Spec.Procs[0] {
		return fmt.Errorf("report sweep starts at %d procs, baseline at %d; efficiencies are not comparable — regenerate the baseline",
			rep.Spec.Procs[0], base.Spec.Procs[0])
	}
	bad, checked := 0, 0
	for _, br := range base.Runs {
		rr := rep.Run(br.Procs)
		if rr == nil {
			continue // CI sweeps a subset of the committed baseline's procs
		}
		if rr.PerCoreRPS < br.PerCoreRPS*(1-maxRegress) {
			fmt.Fprintf(out, "warn procs=%d raw %8.0f req/s/core vs baseline %8.0f (different hardware? not gated)\n",
				br.Procs, rr.PerCoreRPS, br.PerCoreRPS)
		}
		if br.Procs == base.Spec.Procs[0] {
			continue // efficiency at the sweep base is 1.0 by definition
		}
		checked++
		if rr.Efficiency < br.Efficiency*(1-maxRegress) {
			fmt.Fprintf(out, "FAIL procs=%d efficiency %.4f fell >%.0f%% below baseline %.4f\n",
				br.Procs, rr.Efficiency, maxRegress*100, br.Efficiency)
			bad++
		} else {
			fmt.Fprintf(out, "ok   procs=%d efficiency %.4f (baseline %.4f, %6.0f req/s/core)\n",
				br.Procs, rr.Efficiency, br.Efficiency, rr.PerCoreRPS)
		}
	}
	if checked == 0 {
		return fmt.Errorf("no common core counts beyond the sweep base between report and baseline")
	}
	if bad > 0 {
		return fmt.Errorf("%d core-scaling regression(s) vs baseline", bad)
	}
	return nil
}

func load(path string) (*workload.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep := &workload.Report{}
	if err := json.NewDecoder(f).Decode(rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// gate applies the regression rules; it reports every violation before
// returning an error so CI logs show the full picture.
func gate(rep, base *workload.Report, maxRegress float64, out *os.File) error {
	if rep.Scenario != base.Scenario || rep.Seed != base.Seed {
		return fmt.Errorf("report (%s seed %d) and baseline (%s seed %d) are different runs; regenerate the baseline",
			rep.Scenario, rep.Seed, base.Scenario, base.Seed)
	}
	bad := 0
	for i := range base.Systems {
		bs := &base.Systems[i]
		if bs.Cache == nil {
			continue
		}
		rs := rep.System(bs.Name)
		switch {
		case rs == nil || rs.Cache == nil:
			fmt.Fprintf(out, "FAIL %-14s missing from the report (baseline hit %.4f)\n", bs.Name, bs.Cache.HitRate)
			bad++
		case rs.Cache.OverBudget:
			fmt.Fprintf(out, "FAIL %-14s exceeded its byte budget (max node %d > %d)\n",
				rs.Name, rs.Cache.MaxNodeBytes, rs.Cache.BudgetBytes)
			bad++
		case rs.Cache.HitRate < bs.Cache.HitRate*(1-maxRegress):
			fmt.Fprintf(out, "FAIL %-14s hit rate %.4f fell >%.0f%% below baseline %.4f\n",
				rs.Name, rs.Cache.HitRate, maxRegress*100, bs.Cache.HitRate)
			bad++
		default:
			fmt.Fprintf(out, "ok   %-14s hit rate %.4f (baseline %.4f)\n",
				rs.Name, rs.Cache.HitRate, bs.Cache.HitRate)
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d cache regression(s) vs baseline", bad)
	}
	return nil
}
