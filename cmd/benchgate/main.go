// Command benchgate compares a freshly produced webwave-bench report
// against a committed baseline and fails (exit 1) when cache behavior
// regressed: a system's hit rate dropping more than the allowed fraction
// below the baseline, a budgeted system exceeding its byte budget, or a
// system present in the baseline vanishing from the report. CI runs it
// after the deterministic cache-pressure scenario so an eviction-policy
// regression breaks the build instead of the tail latency of some future
// long-haul run.
//
// Usage:
//
//	benchgate -report BENCH_cache.json -baseline bench/BENCH_cache_baseline.json [-max-regress 0.10]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"webwave/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	reportPath := fs.String("report", "", "report JSON produced by this run")
	basePath := fs.String("baseline", "", "committed baseline report JSON")
	maxRegress := fs.Float64("max-regress", 0.10, "max allowed fractional hit-rate drop vs baseline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *reportPath == "" || *basePath == "" {
		return fmt.Errorf("both -report and -baseline are required")
	}
	rep, err := load(*reportPath)
	if err != nil {
		return err
	}
	base, err := load(*basePath)
	if err != nil {
		return err
	}
	return gate(rep, base, *maxRegress, os.Stdout)
}

func load(path string) (*workload.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep := &workload.Report{}
	if err := json.NewDecoder(f).Decode(rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// gate applies the regression rules; it reports every violation before
// returning an error so CI logs show the full picture.
func gate(rep, base *workload.Report, maxRegress float64, out *os.File) error {
	if rep.Scenario != base.Scenario || rep.Seed != base.Seed {
		return fmt.Errorf("report (%s seed %d) and baseline (%s seed %d) are different runs; regenerate the baseline",
			rep.Scenario, rep.Seed, base.Scenario, base.Seed)
	}
	bad := 0
	for i := range base.Systems {
		bs := &base.Systems[i]
		if bs.Cache == nil {
			continue
		}
		rs := rep.System(bs.Name)
		switch {
		case rs == nil || rs.Cache == nil:
			fmt.Fprintf(out, "FAIL %-14s missing from the report (baseline hit %.4f)\n", bs.Name, bs.Cache.HitRate)
			bad++
		case rs.Cache.OverBudget:
			fmt.Fprintf(out, "FAIL %-14s exceeded its byte budget (max node %d > %d)\n",
				rs.Name, rs.Cache.MaxNodeBytes, rs.Cache.BudgetBytes)
			bad++
		case rs.Cache.HitRate < bs.Cache.HitRate*(1-maxRegress):
			fmt.Fprintf(out, "FAIL %-14s hit rate %.4f fell >%.0f%% below baseline %.4f\n",
				rs.Name, rs.Cache.HitRate, maxRegress*100, bs.Cache.HitRate)
			bad++
		default:
			fmt.Fprintf(out, "ok   %-14s hit rate %.4f (baseline %.4f)\n",
				rs.Name, rs.Cache.HitRate, bs.Cache.HitRate)
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d cache regression(s) vs baseline", bad)
	}
	return nil
}
