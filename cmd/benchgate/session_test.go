package main

// Gate tests for the session scenario: the read-my-writes floor. The gated
// shape is two-sided — zero violations with tokens AND a strictly positive
// count without them — so both directions of softness fail.

import (
	"testing"

	"webwave/internal/workload"
)

func sessionReport(withViolations, withoutViolations int64) *workload.SessionReport {
	sp := workload.SessionSpec{Seed: 1}.WithDefaults()
	pass := func(violations int64) workload.SessionPass {
		return workload.SessionPass{
			Reads: int64(sp.Rounds * sp.ReadsPerWrite), Writes: int64(sp.Rounds),
			Responses:  int64(sp.Rounds * sp.ReadsPerWrite),
			Violations: violations, ViolationWindows: min64(violations, int64(sp.Rounds)),
			SessionRefreshes: 400, LeaseRefreshes: 60,
		}
	}
	return &workload.SessionReport{
		Schema: workload.SessionSchema, Scenario: "session", Spec: sp,
		Nodes:            1 + sp.Subtrees*(1+sp.LeavesPer),
		WithTokens:       pass(withViolations),
		WithoutTokens:    pass(withoutViolations),
		DiffusionPeriodS: 0.04,
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func TestSessionGatePasses(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", sessionReport(0, 180))
	rep := writeJSON(t, dir, "rep.json", sessionReport(0, 205))
	if err := run([]string{"-session-report", rep, "-session-baseline", base}); err != nil {
		t.Fatalf("gate failed on an in-band report: %v", err)
	}
}

func TestSessionGateFailsOnTokenViolation(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", sessionReport(0, 180))
	// Even a single violation with tokens on the wire breaks the guarantee.
	rep := writeJSON(t, dir, "rep.json", sessionReport(1, 180))
	if err := run([]string{"-session-report", rep, "-session-baseline", base}); err == nil {
		t.Fatal("gate accepted a read-my-writes violation under tokens")
	}
}

func TestSessionGateFailsOnSoftSchedule(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", sessionReport(0, 180))
	// Zero violations WITHOUT tokens means the schedule stopped provoking
	// the race — the token arm's zero proves nothing.
	rep := writeJSON(t, dir, "rep.json", sessionReport(0, 0))
	if err := run([]string{"-session-report", rep, "-session-baseline", base}); err == nil {
		t.Fatal("gate accepted a schedule that provoked no races")
	}
}

func TestSessionGateFailsOnUnexercisedGate(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", sessionReport(0, 180))
	idle := sessionReport(0, 180)
	idle.WithTokens.SessionRefreshes = 0
	rep := writeJSON(t, dir, "rep.json", idle)
	if err := run([]string{"-session-report", rep, "-session-baseline", base}); err == nil {
		t.Fatal("gate accepted a run that never exercised the server-side gate")
	}
}

func TestSessionGateFailsOnUnanswered(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", sessionReport(0, 180))
	starved := sessionReport(0, 180)
	starved.WithTokens.Unanswered = 2
	rep := writeJSON(t, dir, "rep.json", starved)
	if err := run([]string{"-session-report", rep, "-session-baseline", base}); err == nil {
		t.Fatal("gate accepted unanswered session reads")
	}
}

func TestSessionGateRejectsMismatchedSpec(t *testing.T) {
	dir := t.TempDir()
	soft := sessionReport(0, 180)
	soft.Spec.Rounds = 5 // quietly shrunk schedule
	rep := writeJSON(t, dir, "rep.json", soft)
	base := writeJSON(t, dir, "base.json", sessionReport(0, 180))
	if err := run([]string{"-session-report", rep, "-session-baseline", base}); err == nil {
		t.Fatal("gate compared different workloads")
	}
}
