package main

// Gate tests for the mutable-document scenarios: update-heavy (staleness +
// hit-rate cost) and invalidation-storm (lease collapse).

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"webwave/internal/workload"
)

func updateReport(p99, hitRateCost float64) *workload.UpdateReport {
	return &workload.UpdateReport{
		Schema: workload.UpdateSchema, Scenario: "update-heavy",
		Spec: workload.UpdateSpec{Seed: 1}.WithDefaults(),
		ReadOnly: workload.UpdatePass{
			Offered: 6000, Responses: 6000, HitRate: 0.88, Jain: 0.66,
		},
		Update: workload.UpdatePass{
			Offered: 5400, Writes: 600, Responses: 5400,
			HitRate: 0.88 * (1 - hitRateCost), Jain: 0.62,
			Staleness: workload.StalenessStats{
				Samples: 5000, Stale: 80, P99: p99, Max: p99,
			},
			RepublishesIn: 900, InvalidationsIn: 400, LeaseRefreshes: 50,
		},
		HitRateCost:      hitRateCost,
		DiffusionPeriodS: 0.04,
	}
}

func writeJSON(t *testing.T, dir, name string, rep any) string {
	t.Helper()
	path := filepath.Join(dir, name)
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	return path
}

func TestUpdateGatePasses(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", updateReport(0.002, 0.01))
	rep := writeJSON(t, dir, "rep.json", updateReport(0.01, 0.05))
	if err := run([]string{"-update-report", rep, "-update-baseline", base}); err != nil {
		t.Fatalf("gate failed on an in-band report: %v", err)
	}
}

func TestUpdateGateFailsOnStaleness(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", updateReport(0.002, 0.01))
	// p99 over one diffusion period (the default ceiling from the report).
	rep := writeJSON(t, dir, "rep.json", updateReport(0.09, 0.01))
	if err := run([]string{"-update-report", rep, "-update-baseline", base}); err == nil {
		t.Fatal("gate accepted a p99 staleness beyond one diffusion period")
	}
}

func TestUpdateGateFailsOnHitRateCost(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", updateReport(0.002, 0.01))
	rep := writeJSON(t, dir, "rep.json", updateReport(0.002, 0.25))
	if err := run([]string{"-update-report", rep, "-update-baseline", base}); err == nil {
		t.Fatal("gate accepted a 25% hit-rate cost")
	}
}

func TestUpdateGateFailsOnUnanswered(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", updateReport(0.002, 0.01))
	bad := updateReport(0.002, 0.01)
	bad.Update.Unanswered = 3
	rep := writeJSON(t, dir, "rep.json", bad)
	if err := run([]string{"-update-report", rep, "-update-baseline", base}); err == nil {
		t.Fatal("gate accepted unanswered reads")
	}
}

func TestUpdateGateRejectsMismatchedSpec(t *testing.T) {
	dir := t.TempDir()
	shrunk := updateReport(0.002, 0.01)
	shrunk.Spec.Nodes = 5 // quietly shrunk tree
	rep := writeJSON(t, dir, "rep.json", shrunk)
	base := writeJSON(t, dir, "base.json", updateReport(0.002, 0.01))
	if err := run([]string{"-update-report", rep, "-update-baseline", base}); err == nil {
		t.Fatal("gate compared different workloads")
	}
}

func TestUpdateGateStalenessCeilingOverride(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", updateReport(0.002, 0.01))
	rep := writeJSON(t, dir, "rep.json", updateReport(0.09, 0.01))
	// An explicit ceiling above the report's p99 overrides the diffusion-period default.
	if err := run([]string{"-update-report", rep, "-update-baseline", base,
		"-max-p99-staleness", "0.2"}); err != nil {
		t.Fatalf("explicit ceiling not honored: %v", err)
	}
}

// ---------------------------------------------------------------------------
// Invalidation-storm gate.

func stormReport(perWriteFetches, perWriteForwards float64) *workload.StormReport {
	sp := workload.StormSpec{Seed: 1}.WithDefaults()
	return &workload.StormReport{
		Schema: workload.StormSchema, Scenario: "invalidation-storm",
		Spec: sp, Nodes: 1 + sp.Subtrees*(1+sp.LeavesPer), Promotions: 1,
		Writes: int64(sp.Writes), BurstReads: int64(sp.Writes * sp.Clients),
		Responses:             2000,
		OriginFetches:         int64(perWriteFetches * float64(sp.Writes)),
		PerWriteOriginFetches: perWriteFetches,
		UpstreamForwards:      int64(perWriteForwards * float64(sp.Writes)),
		PerWriteForwards:      perWriteForwards,
		InvalidationsIn:       100, LeaseRefreshes: 90, Coalesced: 1200,
	}
}

func TestStormGatePasses(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", stormReport(1.1, 11.6))
	rep := writeJSON(t, dir, "rep.json", stormReport(2.5, 20.0))
	if err := run([]string{"-storm-report", rep, "-storm-baseline", base}); err != nil {
		t.Fatalf("gate failed on an in-band report: %v", err)
	}
}

func TestStormGateFailsOnHerd(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", stormReport(1.1, 11.6))
	// Per-write origin fetches near the client count: the leases collapsed nothing.
	rep := writeJSON(t, dir, "rep.json", stormReport(110, 115))
	if err := run([]string{"-storm-report", rep, "-storm-baseline", base}); err == nil {
		t.Fatal("gate accepted a thundering herd")
	}
}

func TestStormGateFailsWithoutLeaseRefresh(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", stormReport(1.1, 11.6))
	dead := stormReport(1.1, 11.6)
	dead.LeaseRefreshes = 0
	rep := writeJSON(t, dir, "rep.json", dead)
	if err := run([]string{"-storm-report", rep, "-storm-baseline", base}); err == nil {
		t.Fatal("gate accepted a run that never exercised a lease")
	}
}

func TestStormGateFailsWithoutPromotion(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", stormReport(1.1, 11.6))
	flat := stormReport(1.1, 11.6)
	flat.Promotions = 0 // K=2 in the default spec: the forest must have fired
	rep := writeJSON(t, dir, "rep.json", flat)
	if err := run([]string{"-storm-report", rep, "-storm-baseline", base}); err == nil {
		t.Fatal("gate accepted an unpromoted forest run")
	}
}

func TestStormGateRejectsMismatchedSpec(t *testing.T) {
	dir := t.TempDir()
	gentle := stormReport(1.1, 11.6)
	gentle.Spec.Clients = 10 // quietly softened storm
	rep := writeJSON(t, dir, "rep.json", gentle)
	base := writeJSON(t, dir, "base.json", stormReport(1.1, 11.6))
	if err := run([]string{"-storm-report", rep, "-storm-baseline", base}); err == nil {
		t.Fatal("gate compared different workloads")
	}
}
