package main

// Gate tests for the multi-process swarm scenario: synthetic reports walk
// each threshold without launching any processes.

import (
	"testing"

	"webwave/internal/workload"
)

func swarmReport() *workload.SwarmReport {
	sp := workload.SwarmSpec{Seed: 7}.WithDefaults()
	return &workload.SwarmReport{
		Schema: workload.SwarmSchema, Scenario: "swarm", Spec: sp,
		Nodes: 1 + sp.Racks*sp.RackNodes, Depth: sp.RackDepth + 1,
		RackKilled: []int{1, 2, 3},
		Offered:    4700, Rerouted: 280, Responses: 4650, LostInFlight: 50,
		Availability:  0.989,
		RepairSeconds: 0.3, ReabsorbSeconds: 0.9,
		Reconnects: 0, ReclaimedDuty: 1300, AbsorbedDuty: 700,
		WarmDocs: 100,
	}
}

func TestSwarmGatePasses(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", swarmReport())
	rep := writeJSON(t, dir, "rep.json", swarmReport())
	if err := run([]string{"-swarm-report", rep, "-swarm-baseline", base}); err != nil {
		t.Fatalf("gate failed on an in-band report: %v", err)
	}
}

func TestSwarmGateFailsOnAvailability(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", swarmReport())
	bad := swarmReport()
	bad.Availability = 0.90
	rep := writeJSON(t, dir, "rep.json", bad)
	if err := run([]string{"-swarm-report", rep, "-swarm-baseline", base}); err == nil {
		t.Fatal("gate accepted availability below the floor")
	}
}

func TestSwarmGateFailsOnColdRestart(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", swarmReport())
	bad := swarmReport()
	bad.WarmDocs = 0 // re-exec came back cold: journals recovered nothing
	rep := writeJSON(t, dir, "rep.json", bad)
	if err := run([]string{"-swarm-report", rep, "-swarm-baseline", base}); err == nil {
		t.Fatal("gate accepted a cold re-exec (warm_docs 0)")
	}
}

func TestSwarmGateFailsOnIncompleteReabsorb(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", swarmReport())
	bad := swarmReport()
	bad.ReabsorbSeconds = -1
	rep := writeJSON(t, dir, "rep.json", bad)
	if err := run([]string{"-swarm-report", rep, "-swarm-baseline", base}); err == nil {
		t.Fatal("gate accepted a tree that never became whole again")
	}
}

func TestSwarmGateFailsOnDirtyHarness(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", swarmReport())
	for _, mutate := range []func(r *workload.SwarmReport){
		func(r *workload.SwarmReport) { r.FailedRevives = 1 },
		func(r *workload.SwarmReport) { r.ForcedTeardowns = 2 },
		func(r *workload.SwarmReport) { r.FinalOrphaned = 1 },
		func(r *workload.SwarmReport) { r.ScrapeErrors = int64(r.Nodes) + 1 },
	} {
		bad := swarmReport()
		mutate(bad)
		rep := writeJSON(t, dir, "rep.json", bad)
		if err := run([]string{"-swarm-report", rep, "-swarm-baseline", base}); err == nil {
			t.Fatalf("gate accepted a dirty harness: %+v", bad)
		}
	}
}

func TestSwarmGateRejectsSpecMismatch(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", swarmReport())
	shrunk := swarmReport()
	shrunk.Spec.Racks = 2 // half the swarm is not the gated scenario
	rep := writeJSON(t, dir, "rep.json", shrunk)
	if err := run([]string{"-swarm-report", rep, "-swarm-baseline", base}); err == nil {
		t.Fatal("gate accepted a shrunken swarm against the committed baseline")
	}
}
