package main

// Gate tests for the hot-key scenario: the replication-forest thresholds
// (scaling floor, Jain fairness ratio, promote/demote round trip) and the
// spec pin against the committed baseline.

import (
	"testing"

	"webwave/internal/workload"
)

func hotkeyReport(scaling, jainRatio float64) *workload.HotkeyReport {
	sp := workload.HotkeySpec{Seed: 1}.WithDefaults()
	run := func(k int, rps float64) workload.HotkeyRun {
		r := workload.HotkeyRun{
			K: k, Offered: 4000, Served: 3800, ThroughputRPS: rps, Jain: 0.9,
			PromotedAtS: -1, DemotedAtS: -1,
		}
		if k > 1 {
			r.Promotions, r.Demotions = 1, 1
			r.PromotedAtS, r.DemotedAtS = 8, 30
		}
		return r
	}
	return &workload.HotkeyReport{
		Schema: workload.HotkeySchema, Scenario: "hot-key", Spec: sp,
		Runs:      []workload.HotkeyRun{run(1, 100), run(4, 100*scaling)},
		ScalingX:  scaling,
		JainRatio: jainRatio,
	}
}

func TestHotkeyGatePasses(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", hotkeyReport(2.6, 0.95))
	rep := writeJSON(t, dir, "rep.json", hotkeyReport(2.6, 0.95))
	if err := run([]string{"-hotkey-report", rep, "-hotkey-baseline", base}); err != nil {
		t.Fatalf("gate failed on an in-band report: %v", err)
	}
}

func TestHotkeyGateFailsBelowScalingFloor(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", hotkeyReport(2.6, 0.95))
	rep := writeJSON(t, dir, "rep.json", hotkeyReport(1.2, 0.95))
	if err := run([]string{"-hotkey-report", rep, "-hotkey-baseline", base,
		"-min-scaling", "2.0"}); err == nil {
		t.Fatal("gate accepted a forest that stopped scaling")
	}
}

func TestHotkeyGateFailsWithoutRoundTrip(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", hotkeyReport(2.6, 0.95))
	stuck := hotkeyReport(2.6, 0.95)
	// The widest forest promoted but never demoted after the decay.
	stuck.Runs[1].Demotions = 0
	stuck.Runs[1].DemotedAtS = -1
	rep := writeJSON(t, dir, "rep.json", stuck)
	if err := run([]string{"-hotkey-report", rep, "-hotkey-baseline", base}); err == nil {
		t.Fatal("gate accepted a promotion that never demoted")
	}
}

func TestHotkeyGateRejectsMismatchedSpec(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", hotkeyReport(2.6, 0.95))
	soft := hotkeyReport(2.6, 0.95)
	soft.Spec.PeakFactor = 2 // quietly gentler flash
	rep := writeJSON(t, dir, "rep.json", soft)
	if err := run([]string{"-hotkey-report", rep, "-hotkey-baseline", base}); err == nil {
		t.Fatal("gate compared different workloads")
	}
}
