// Command webwave-cluster starts a live WebWave cluster — one goroutine
// server per routing-tree node speaking the wire protocol over an in-memory
// transport — drives Zipf document traffic through it, and reports the
// measured load distribution against the TLB optimum. (The same servers run
// over TCP; see internal/cluster's TestClusterOverTCP.)
//
// Usage:
//
//	webwave-cluster [-docs 8] [-rate 4000] [-horizon 3] [-parents "-1 0 0 1 1 2 2"]
//
// The `node` subcommand instead hosts a single server in this process over
// real TCP until SIGTERM — the building block the webwave-swarm runner
// spawns hundreds of:
//
//	webwave-cluster node -id 3 -addr 127.0.0.1:42003 -parent-id 1 -parent-addr 127.0.0.1:42001 ...
package main

import (
	"flag"
	"fmt"
	"os"

	"webwave/internal/cluster"
	"webwave/internal/repro"
	"webwave/internal/tree"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "node" {
		if err := cluster.RunNode(args[1:], os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "webwave-cluster node:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(args); err != nil {
		fmt.Fprintln(os.Stderr, "webwave-cluster:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("webwave-cluster", flag.ContinueOnError)
	docs := fs.Int("docs", 8, "catalog size")
	rate := fs.Float64("rate", 4000, "total request rate (req/s)")
	horizon := fs.Float64("horizon", 3, "schedule length (s)")
	seed := fs.Int64("seed", 7, "RNG seed")
	parents := fs.String("parents", "-1 0 0 1 1 2 2", "routing tree parent list")
	tunneling := fs.Bool("tunneling", true, "enable barrier tunneling")
	cacheBudget := fs.Int64("cache-budget", 0, "per-server cache budget, bytes (0 = unlimited)")
	cacheShards := fs.Int("cache-shards", 0, "cache store stripe count (0 = follow -shards)")
	evictPolicy := fs.String("evict-policy", "", "eviction policy: lru (default), heat or gdsf")
	dataDir := fs.String("data-dir", "", "disk-tier root (per-node subdirs for spilled bodies + recovery journal; empty = no disk tier)")
	diskBudget := fs.Int64("disk-budget", 0, "per-server disk-tier budget, bytes (0 = unlimited; needs -data-dir)")
	shards := fs.Int("shards", 0, "doc-sharded event loops per server (0 = GOMAXPROCS)")
	maxBatch := fs.Int("max-batch", 0, "events drained per loop iteration (0 = default 256)")
	queueDepth := fs.Int("queue-depth", 0, "per-loop event queue capacity (0 = default 1024)")
	ancestors := fs.Bool("ancestors", false, "give nodes ancestor failover lists (survive interior-node loss)")
	heartbeat := fs.Duration("heartbeat", 0, "failure-detector period, e.g. 50ms (0 = off; >0 implies -ancestors)")
	heartbeatMisses := fs.Int("heartbeat-misses", 0, "silent heartbeat periods before a neighbor is declared dead (0 = default 3)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	t, err := tree.ParseParents(*parents)
	if err != nil {
		return err
	}
	cfg := repro.LiveConfig{
		Tree:             t,
		NumDocs:          *docs,
		TotalRate:        *rate,
		Horizon:          *horizon,
		Seed:             *seed,
		Tunneling:        *tunneling,
		CacheBudgetBytes: *cacheBudget,
		CacheShards:      *cacheShards,
		EvictPolicy:      *evictPolicy,
		DataDir:          *dataDir,
		DiskBudgetBytes:  *diskBudget,
		NumShards:        *shards,
		MaxBatch:         *maxBatch,
		QueueDepth:       *queueDepth,
		Ancestors:        *ancestors,
		HeartbeatPeriod:  *heartbeat,
		HeartbeatMisses:  *heartbeatMisses,
	}
	res, err := repro.RunLiveCluster(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	return nil
}
