// Command webwave-sim runs WebWave protocol simulations: synchronous
// convergence to TLB on a chosen tree, the asynchronous variant with gossip
// periods, delay and loss, and the document-level variant with potential
// barriers and tunneling.
//
// Usage:
//
//	webwave-sim -mode sync   -n 60 -depth 9 -seed 1 [-rounds 4000]
//	webwave-sim -mode async  -n 30 -seed 1 -delay 0.2 -loss 0.05
//	webwave-sim -mode barrier [-rounds 200]
package main

import (
	"flag"
	"fmt"
	"os"

	"webwave/internal/core"
	"webwave/internal/fold"
	"webwave/internal/repro"
	"webwave/internal/stats"
	"webwave/internal/trace"
	"webwave/internal/tree"
	"webwave/internal/wave"

	"math/rand"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "webwave-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("webwave-sim", flag.ContinueOnError)
	mode := fs.String("mode", "sync", "sync, async or barrier")
	n := fs.Int("n", 60, "tree size")
	depth := fs.Int("depth", 9, "exact tree height (sync/async modes)")
	seed := fs.Int64("seed", 1, "RNG seed")
	rounds := fs.Int("rounds", 4000, "max rounds / samples")
	delay := fs.Float64("delay", 0.1, "async: one-way message delay (s)")
	jitter := fs.Float64("jitter", 0.05, "async: extra uniform delay (s)")
	loss := fs.Float64("loss", 0, "async: gossip loss probability")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *mode {
	case "sync":
		return runSync(*n, *depth, *seed, *rounds)
	case "async":
		return runAsync(*n, *depth, *seed, *delay, *jitter, *loss)
	case "barrier":
		return runBarrier(*rounds)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

func runSync(n, depth int, seed int64, rounds int) error {
	rng := rand.New(rand.NewSource(seed))
	t, err := tree.RandomDepth(n, depth, rng)
	if err != nil {
		return err
	}
	e := trace.UniformRates(n, 0, 100, rng)
	tlb, err := fold.Compute(t, e)
	if err != nil {
		return err
	}
	s, err := wave.NewSim(t, e, wave.Config{Initial: wave.InitialSelf, Alpha: wave.LocalDegreeAlpha(t)})
	if err != nil {
		return err
	}
	rr, err := s.Run(tlb.Load, rounds, 1e-7)
	if err != nil {
		return err
	}
	fmt.Printf("n=%d depth=%d folds=%d TLBmax=%.4g\n", n, t.Height(), tlb.FoldCount(), tlb.MaxLoad())
	fmt.Printf("converged=%v rounds=%d d0=%.6g dEnd=%.6g totalLoad=%.6g (ΣE=%.6g)\n",
		rr.Converged, rr.Rounds, rr.Distances[0], rr.Distances[len(rr.Distances)-1],
		s.TotalLoad(), core.SumVec(e))
	fmt.Printf("‖L−TLB‖ (log scale): %s\n", stats.LogSparkline(rr.Distances, 60))
	if fit, err := stats.FitGeometric(rr.Distances); err == nil {
		fmt.Printf("geometric fit: %s (paper: γ=%.6f se %.6f)\n", fit, repro.PaperGamma, repro.PaperGammaSE)
	}
	return nil
}

func runAsync(n, depth int, seed int64, delay, jitter, loss float64) error {
	rng := rand.New(rand.NewSource(seed))
	t, err := tree.RandomDepth(n, depth, rng)
	if err != nil {
		return err
	}
	e := trace.UniformRates(n, 0, 100, rng)
	tlb, err := fold.Compute(t, e)
	if err != nil {
		return err
	}
	res, err := wave.RunAsync(t, e, tlb.Load, wave.AsyncConfig{
		GossipPeriod:    1,
		DiffusionPeriod: 1,
		Delay:           delay,
		Jitter:          jitter,
		LossProb:        loss,
		Seed:            seed,
		Initial:         wave.InitialSelf,
		Alpha:           wave.LocalDegreeAlpha(t),
	}, 3000, 10)
	if err != nil {
		return err
	}
	last := res.Distances[len(res.Distances)-1]
	fmt.Printf("async n=%d delay=%.3gs jitter=%.3gs loss=%.3g\n", n, delay, jitter, loss)
	fmt.Printf("converged=%v d0=%.6g dEnd=%.6g messages=%d lost=%d inflight=%.4g\n",
		res.Converged, res.Distances[0], last, res.MessagesSent, res.MessagesLost, res.InFlight)
	return nil
}

func runBarrier(rounds int) error {
	res, err := repro.RunFigure7(rounds)
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	return nil
}
