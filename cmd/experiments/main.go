// Command experiments regenerates every evaluation artifact of the paper
// (DESIGN.md §4): Figures 2, 4, 6a/6b, 7, the γ regression, the Section 2
// GLE diffusion bound, and the extension experiments. EXPERIMENTS.md quotes
// this command's output.
//
// Usage:
//
//	experiments            # run everything
//	experiments -run fig6b # one of: fig2 fig4 fig6 gamma fig7 gle baselines forest erratic stability live
//	experiments -quick     # smaller parameters (CI-sized)
//	experiments -plot      # also render ASCII charts for the curve artifacts
//	experiments -csv DIR   # also write the curve series as CSV files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"webwave/internal/plot"
	"webwave/internal/repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	only := fs.String("run", "", "run a single experiment: fig2 fig4 fig6 gamma spectral fig7 gle baselines hierarchy forest churn erratic policies capacity stability live update")
	quick := fs.Bool("quick", false, "smaller parameters")
	doPlot := fs.Bool("plot", false, "render ASCII charts for curve artifacts")
	csvDir := fs.String("csv", "", "directory to write curve series as CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fmt.Errorf("csv dir: %w", err)
		}
	}

	want := func(name string) bool { return *only == "" || *only == name }

	// emitCurves renders/dumps per-round series for one artifact.
	emitCurves := func(name, title string, logY bool, series ...plot.Series) error {
		if *doPlot {
			out, err := plot.Render(plot.Config{
				Title: title, LogY: logY, Width: 64, Height: 18,
				YLabel: "Euclidean distance to TLB", XLabel: "round",
			}, series...)
			if err != nil {
				return fmt.Errorf("%s: plot: %w", name, err)
			}
			fmt.Println(out)
		}
		if *csvDir != "" {
			f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
			if err != nil {
				return fmt.Errorf("%s: csv: %w", name, err)
			}
			defer f.Close()
			if err := plot.WriteCSV(f, series...); err != nil {
				return fmt.Errorf("%s: csv: %w", name, err)
			}
		}
		return nil
	}

	if want("fig2") {
		r, err := repro.RunFigure2()
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if want("fig4") {
		r, err := repro.RunFigure4()
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if want("fig6") || want("fig6a") || want("fig6b") {
		r, err := repro.RunFigure6(5000)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
		err = emitCurves("fig6b", "Figure 6b — WebWave convergence to TLB (semilog)", true,
			plot.Series{Name: "‖L−TLB‖", Y: r.Distances})
		if err != nil {
			return err
		}
	}
	if want("gamma") {
		cfg := repro.DefaultGammaConfig()
		if *quick {
			cfg.Trees = 3
			cfg.MaxRound = 1500
		}
		r, err := repro.RunGammaEstimate(cfg)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if want("spectral") {
		cfg := repro.DefaultGammaConfig()
		if *quick {
			cfg.Trees = 4
			cfg.MaxRound = 1500
		}
		r, err := repro.RunGammaSpectral(cfg)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if want("fig7") {
		r, err := repro.RunFigure7(600)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
		err = emitCurves("fig7", "Figure 7 — barrier plateau vs tunneling recovery (semilog)", true,
			plot.Series{Name: "no tunneling", Y: r.NoTunnel.Distances},
			plot.Series{Name: "with tunneling", Y: r.WithTunnel.Distances})
		if err != nil {
			return err
		}
	}
	if want("gle") {
		r, err := repro.RunGLEDiffusion(1)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if want("baselines") {
		sizes := []int{10, 50, 100, 500, 1000}
		if *quick {
			sizes = []int{10, 100}
		}
		r, err := repro.RunBaselineComparison(sizes, 1)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if want("hierarchy") {
		n := 25
		if *quick {
			n = 12
		}
		r, err := repro.RunHierarchyComparison(n, 12, 1)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if want("forest") {
		counts := []int{1, 2, 4, 8}
		if *quick {
			counts = []int{1, 3}
		}
		r, err := repro.RunForestComparison(30, counts, 1)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if want("churn") {
		epochs, rounds := 6, 400
		if *quick {
			epochs, rounds = 3, 150
		}
		r, err := repro.RunRouteChurn(30, epochs, rounds, 1)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if want("erratic") {
		regimes, rounds := 6, 400
		if *quick {
			regimes, rounds = 3, 150
		}
		r, err := repro.RunErraticTracking(40, regimes, rounds, 1)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if want("policies") {
		n, docs, rounds := 40, 24, 400
		if *quick {
			n, docs, rounds = 20, 10, 150
		}
		r, err := repro.RunPolicyComparison(n, docs, rounds, 3)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if want("capacity") {
		n, docs, rounds := 40, 24, 400
		caps := []int{1, 2, 4, 8, 0}
		if *quick {
			n, docs, rounds = 20, 10, 150
			caps = []int{1, 4, 0}
		}
		r, err := repro.RunCapacitySweep(n, docs, rounds, caps, 3)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if want("stability") {
		cfg := repro.DefaultStabilityConfig()
		if *quick {
			cfg.Nodes = 30
			cfg.Rounds = 300
		}
		r, err := repro.RunStability(cfg)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
		series := make([]plot.Series, 0, len(r.Rows))
		for _, row := range r.Rows {
			series = append(series, plot.Series{Name: string(row.Scenario), Y: row.Errors})
		}
		if err := emitCurves("stability", "X7 — normalized tracking error by scenario", false, series...); err != nil {
			return err
		}
	}
	if want("live") {
		cfg := repro.DefaultLiveConfig()
		if *quick {
			cfg.Horizon = 1.5
			cfg.TotalRate = 2000
		}
		r, err := repro.RunLiveCluster(cfg)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if want("update") {
		n, duration := 31, 10.0
		if *quick {
			n, duration = 9, 2.5
		}
		r, err := repro.RunUpdateExtension(n, 0.10, duration, 1)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	return nil
}
