package forest

import (
	"math"
	"math/rand"
	"testing"

	"webwave/internal/core"
	"webwave/internal/tree"
)

func twoTreeForest(t *testing.T) *Forest {
	t.Helper()
	// Tree A rooted at 0, tree B rooted at 2, over 3 shared nodes.
	ta := tree.MustFromParents([]int{tree.NoParent, 0, 0})
	tb := tree.MustFromParents([]int{2, 2, tree.NoParent})
	f, err := New(
		[]*tree.Tree{ta, tb},
		[]core.Vector{{0, 30, 30}, {30, 30, 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	ta := tree.MustFromParents([]int{tree.NoParent, 0})
	if _, err := New(nil, nil); err == nil {
		t.Error("empty forest accepted")
	}
	if _, err := New([]*tree.Tree{ta}, nil); err == nil {
		t.Error("missing rates accepted")
	}
	tb := tree.MustFromParents([]int{tree.NoParent, 0, 0})
	if _, err := New([]*tree.Tree{ta, tb}, []core.Vector{{1, 1}, {1, 1, 1}}); err == nil {
		t.Error("mismatched node counts accepted")
	}
	if _, err := New([]*tree.Tree{ta}, []core.Vector{{1, -1}}); err == nil {
		t.Error("negative rates accepted")
	}
}

func TestTotalRates(t *testing.T) {
	f := twoTreeForest(t)
	got := f.TotalRates()
	want := core.Vector{30, 60, 30}
	if !core.VecAlmostEqual(got, want, 1e-12) {
		t.Errorf("TotalRates = %v, want %v", got, want)
	}
}

func TestPerTreeTLB(t *testing.T) {
	f := twoTreeForest(t)
	results, totals, err := f.PerTreeTLB()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	// Each tree is the GLE-feasible star: per-tree TLB is 20 everywhere,
	// so totals are 40 everywhere.
	for v, x := range totals {
		if math.Abs(x-40) > 1e-9 {
			t.Errorf("total[%d] = %v, want 40", v, x)
		}
	}
}

func TestRandomForestShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f, err := Random(20, 4, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 20 || f.NumTrees() != 4 {
		t.Fatalf("forest shape %dx%d", f.Len(), f.NumTrees())
	}
	// Roots should not all coincide (random relabeling).
	roots := map[int]bool{}
	for k := 0; k < 4; k++ {
		roots[f.Tree(k).Root()] = true
	}
	if len(roots) < 2 {
		t.Error("all trees share one root; relabeling ineffective")
	}
	for k := 0; k < 4; k++ {
		if math.Abs(core.SumVec(f.Rates(k))-500) > 1e-6 {
			t.Errorf("tree %d total rate %v, want 500", k, core.SumVec(f.Rates(k)))
		}
	}
	if _, err := Random(0, 1, 1, rng); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestSimConservesPerTreeLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f, err := Random(15, 3, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSim(f, Config{Coupling: Coupled})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 100; r++ {
		s.Step()
		for k := 0; k < f.NumTrees(); k++ {
			got := core.SumVec(s.TreeLoad(k))
			want := core.SumVec(f.Rates(k))
			if math.Abs(got-want) > 1e-6 {
				t.Fatalf("round %d tree %d: ΣL=%v, want %v", r, k, got, want)
			}
		}
	}
}

func TestSimRespectsPerTreeNSS(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f, err := Random(12, 2, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSim(f, Config{Coupling: Coupled})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 80; r++ {
		s.Step()
		for k := 0; k < f.NumTrees(); k++ {
			fwd := s.recomputeForward(k)
			for v, a := range fwd {
				if a < -1e-6 {
					t.Fatalf("round %d tree %d node %d: NSS violated (A=%v)", r, k, v, a)
				}
			}
		}
	}
}

func TestCoupledBalancesTotalsBetter(t *testing.T) {
	// A forest built so independent TLBs collide: both trees' folds land
	// their heaviest loads on the same nodes.
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		f, err := Random(25, 3, 500, rng)
		if err != nil {
			t.Fatal(err)
		}
		cmp, err := Compare(f, 3000)
		if err != nil {
			t.Fatal(err)
		}
		// Coupled must not do meaningfully worse than independent, and must
		// stay above the unconstrained ideal.
		if cmp.CoupledFinal > cmp.IndependentFinal*1.05+1e-9 {
			t.Errorf("seed %d: coupled %v worse than independent %v",
				seed, cmp.CoupledFinal, cmp.IndependentFinal)
		}
		if cmp.CoupledFinal < cmp.GLETotal-1e-6 {
			t.Errorf("seed %d: coupled %v below the GLE ideal %v (impossible)",
				seed, cmp.CoupledFinal, cmp.GLETotal)
		}
	}
}

func TestIndependentConvergesToPerTreeTLB(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f, err := Random(15, 2, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSim(f, Config{Coupling: Independent})
	if err != nil {
		t.Fatal(err)
	}
	run := s.Run(20000, 1e-12)
	_, indTotals, err := f.PerTreeTLB()
	if err != nil {
		t.Fatal(err)
	}
	// The independent protocol's fixed point is each tree's TLB, so totals
	// converge to the per-tree-TLB totals.
	for v := range indTotals {
		if math.Abs(run.Final[v]-indTotals[v]) > 0.02*(1+indTotals[v]) {
			t.Errorf("node %d: independent final %v vs per-tree TLB total %v",
				v, run.Final[v], indTotals[v])
		}
	}
}

func TestRunRecordsTrajectories(t *testing.T) {
	f := twoTreeForest(t)
	s, err := NewSim(f, Config{Coupling: Coupled})
	if err != nil {
		t.Fatal(err)
	}
	run := s.Run(500, 1e-12)
	if len(run.MaxTotal) != run.Rounds+1 || len(run.Spread) != run.Rounds+1 {
		t.Fatalf("trajectory lengths %d/%d vs rounds %d", len(run.MaxTotal), len(run.Spread), run.Rounds)
	}
	first, last := run.MaxTotal[0], run.MaxTotal[len(run.MaxTotal)-1]
	if last > first {
		t.Errorf("max total grew: %v -> %v", first, last)
	}
	if SpreadDistance(run.Final) > SpreadDistance(s.Totals())+1e-9 {
		t.Error("SpreadDistance inconsistent with state")
	}
}

func TestCompareString(t *testing.T) {
	f := twoTreeForest(t)
	cmp, err := Compare(f, 500)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.String() == "" {
		t.Error("empty render")
	}
}
