// Package forest explores the paper's primary future-work question
// (Section 7): how WebWave behaves on "the forest of overlapping routing
// trees that is the Internet".
//
// A Forest is a set of routing trees over the same server population: each
// tree is rooted at a different home server and carries the request flow
// for the documents published there, with its own spontaneous-rate vector.
// Every server therefore participates in every tree at once, and its real
// load is the sum of its per-tree loads.
//
// Two protocol variants are simulated:
//
//   - Independent: each tree runs plain WebWave on its own load, blind to
//     the others. Per-tree load converges to each tree's TLB, but the
//     per-node totals can stack up badly (a node that is a hot fold in two
//     trees pays twice).
//
//   - Coupled: diffusion decisions compare *total* node loads while moves
//     stay constrained to each tree's NSS cap — a node sheds load in
//     whichever tree has headroom. This is the natural forest
//     generalization of Figure 5 and balances totals strictly better than
//     or equal to Independent on the instances we measure.
package forest

import (
	"fmt"
	"math/rand"

	"webwave/internal/core"
	"webwave/internal/fold"
	"webwave/internal/stats"
	"webwave/internal/trace"
	"webwave/internal/tree"
)

// Forest is a set of routing trees over one shared node set 0..n-1.
type Forest struct {
	trees []*tree.Tree
	rates []core.Vector
	n     int
}

// New validates that all trees and rate vectors cover the same node set.
func New(trees []*tree.Tree, rates []core.Vector) (*Forest, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("forest: no trees")
	}
	if len(trees) != len(rates) {
		return nil, fmt.Errorf("forest: %d trees but %d rate vectors", len(trees), len(rates))
	}
	n := trees[0].Len()
	for k, t := range trees {
		if t.Len() != n {
			return nil, fmt.Errorf("forest: tree %d has %d nodes, want %d", k, t.Len(), n)
		}
		if err := core.ValidateRates(rates[k], n); err != nil {
			return nil, fmt.Errorf("forest: tree %d: %w", k, err)
		}
	}
	return &Forest{trees: trees, rates: rates, n: n}, nil
}

// Random builds a forest of k uniformly random trees over n nodes, each
// rooted at a random node (via relabeling) with uniform random rates
// summing to about totalRate per tree.
func Random(n, k int, totalRate float64, rng *rand.Rand) (*Forest, error) {
	if n <= 0 || k <= 0 {
		return nil, fmt.Errorf("forest: invalid size n=%d k=%d", n, k)
	}
	trees := make([]*tree.Tree, k)
	rates := make([]core.Vector, k)
	for i := 0; i < k; i++ {
		t, err := tree.Random(n, rng)
		if err != nil {
			return nil, fmt.Errorf("forest: %w", err)
		}
		// Move the root to a random node so homes differ across trees.
		perm := rng.Perm(n)
		t, err = t.Relabel(perm)
		if err != nil {
			return nil, fmt.Errorf("forest: relabel: %w", err)
		}
		trees[i] = t
		e := trace.UniformRates(n, 0, 1, rng)
		scale := totalRate / core.SumVec(e)
		for j := range e {
			e[j] *= scale
		}
		rates[i] = e
	}
	return New(trees, rates)
}

// NumTrees returns the number of routing trees.
func (f *Forest) NumTrees() int { return len(f.trees) }

// Len returns the number of nodes.
func (f *Forest) Len() int { return f.n }

// Tree returns tree k.
func (f *Forest) Tree(k int) *tree.Tree { return f.trees[k] }

// Rates returns a copy of tree k's spontaneous rates.
func (f *Forest) Rates(k int) core.Vector { return core.CloneVec(f.rates[k]) }

// TotalRates returns the per-node sum of spontaneous rates across trees.
func (f *Forest) TotalRates() core.Vector {
	out := make(core.Vector, f.n)
	for _, e := range f.rates {
		for v, x := range e {
			out[v] += x
		}
	}
	return out
}

// PerTreeTLB computes each tree's independent TLB assignment and returns
// the per-node totals — the fixed point of the Independent variant.
func (f *Forest) PerTreeTLB() ([]*fold.Result, core.Vector, error) {
	results := make([]*fold.Result, len(f.trees))
	totals := make(core.Vector, f.n)
	for k, t := range f.trees {
		res, err := fold.Compute(t, f.rates[k])
		if err != nil {
			return nil, nil, fmt.Errorf("forest: tree %d: %w", k, err)
		}
		results[k] = res
		for v, l := range res.Load {
			totals[v] += l
		}
	}
	return results, totals, nil
}

// Coupling selects how per-tree WebWave instances interact.
type Coupling int

const (
	// Independent runs each tree's protocol on its own per-tree loads.
	Independent Coupling = iota + 1
	// Coupled drives each tree's diffusion by total node loads.
	Coupled
)

// Config parameterizes a forest simulation.
type Config struct {
	Coupling Coupling
	// Alpha is the per-edge diffusion parameter before division by the
	// tree count (each node participates in NumTrees trees, so the
	// per-tree α is Alpha/NumTrees to preserve Cybenko stability). Zero
	// selects 1/(maxdeg+1) over all trees.
	Alpha float64
}

// Sim simulates WebWave over a forest in synchronous rounds.
type Sim struct {
	f        *Forest
	coupling Coupling
	alpha    float64 // per-tree, already divided by tree count
	loads    []core.Vector
	fwd      []core.Vector
	delta    core.Vector // scratch
}

// NewSim builds a simulator. Each tree starts from its own InitialRoot
// state (all of a tree's load at its home server), the hardest initial
// condition.
func NewSim(f *Forest, cfg Config) (*Sim, error) {
	if cfg.Coupling == 0 {
		cfg.Coupling = Coupled
	}
	alpha := cfg.Alpha
	if alpha <= 0 {
		maxDeg := 0
		for _, t := range f.trees {
			if d := t.MaxDegree(); d > maxDeg {
				maxDeg = d
			}
		}
		alpha = 1.0 / float64(maxDeg+1)
	}
	s := &Sim{
		f:        f,
		coupling: cfg.Coupling,
		alpha:    alpha / float64(f.NumTrees()),
		loads:    make([]core.Vector, f.NumTrees()),
		fwd:      make([]core.Vector, f.NumTrees()),
		delta:    make(core.Vector, f.Len()),
	}
	for k := range s.loads {
		s.loads[k] = make(core.Vector, f.Len())
		s.loads[k][f.trees[k].Root()] = core.SumVec(f.rates[k])
		s.fwd[k] = s.recomputeForward(k)
	}
	return s, nil
}

func (s *Sim) recomputeForward(k int) core.Vector {
	t := s.f.trees[k]
	e := s.f.rates[k]
	a := make(core.Vector, t.Len())
	for _, v := range t.PostOrder() {
		sum := e[v] - s.loads[k][v]
		t.EachChild(v, func(c int) {
			sum += a[c]
		})
		a[v] = sum
	}
	return a
}

// TreeLoad returns a copy of tree k's per-node load.
func (s *Sim) TreeLoad(k int) core.Vector { return core.CloneVec(s.loads[k]) }

// Totals returns the per-node total load across trees.
func (s *Sim) Totals() core.Vector {
	out := make(core.Vector, s.f.Len())
	for _, l := range s.loads {
		for v, x := range l {
			out[v] += x
		}
	}
	return out
}

// transfer is one desired per-edge move within one tree's round.
type transfer struct {
	from, to int
	amount   float64
}

// Step runs one synchronous round over every tree.
//
// Under Coupled the desired move on an edge is α·(T_i − T_j) — a function
// of the *total* loads — but the moved quantity is this tree's load, which
// can be smaller than the desire. Each sender's total outflow is therefore
// scaled down to the per-tree load it actually carries; scaling only ever
// shrinks transfers, so the per-edge NSS caps remain respected and no node
// is overdrafted.
func (s *Sim) Step() {
	totals := s.Totals()
	var moves []transfer
	outflow := make(core.Vector, s.f.Len())
	for k := range s.loads {
		t := s.f.trees[k]
		load := s.loads[k]
		fwd := s.fwd[k]

		// The comparison metric: totals when coupled, per-tree when not.
		metric := load
		if s.coupling == Coupled {
			metric = totals
		}
		moves = moves[:0]
		for v := range outflow {
			outflow[v] = 0
		}
		for _, edge := range t.Edges() {
			i, j := edge[0], edge[1]
			switch {
			case metric[i] > metric[j]:
				d := s.alpha * (metric[i] - metric[j])
				if d > fwd[j] {
					d = fwd[j] // NSS: only requests j forwards can move down
				}
				if d > 0 {
					moves = append(moves, transfer{from: i, to: j, amount: d})
					outflow[i] += d
				}
			case metric[j] > metric[i]:
				u := s.alpha * (metric[j] - metric[i])
				if u > 0 {
					moves = append(moves, transfer{from: j, to: i, amount: u})
					outflow[j] += u
				}
			}
		}
		// Scale factors come from the pre-round snapshot so that applying
		// moves sequentially cannot skew them.
		scale := make(core.Vector, len(outflow))
		for v := range scale {
			scale[v] = 1
			if outflow[v] > load[v] && outflow[v] > 0 {
				scale[v] = load[v] / outflow[v]
			}
		}
		changed := false
		for _, m := range moves {
			amt := m.amount * scale[m.from]
			if amt <= 0 {
				continue
			}
			load[m.from] -= amt
			load[m.to] += amt
			changed = true
		}
		if changed {
			s.fwd[k] = s.recomputeForward(k)
		}
	}
}

// RunResult captures a forest run.
type RunResult struct {
	// MaxTotal[r] is the maximum per-node total load after round r
	// (index 0 = initial state).
	MaxTotal []float64
	// Spread[r] is max-min of the per-node totals after round r.
	Spread []float64
	Rounds int
	Final  core.Vector // final totals
}

// Run executes up to maxRounds rounds, stopping early when the round-over-
// round improvement of the max total falls below tol for 10 consecutive
// rounds.
func (s *Sim) Run(maxRounds int, tol float64) *RunResult {
	res := &RunResult{}
	record := func() {
		totals := s.Totals()
		max, _ := core.MaxVec(totals)
		min, _ := core.MinVec(totals)
		res.MaxTotal = append(res.MaxTotal, max)
		res.Spread = append(res.Spread, max-min)
	}
	record()
	stable := 0
	for r := 0; r < maxRounds; r++ {
		prev := res.MaxTotal[len(res.MaxTotal)-1]
		s.Step()
		res.Rounds++
		record()
		cur := res.MaxTotal[len(res.MaxTotal)-1]
		if prev-cur < tol {
			stable++
			if stable >= 10 {
				break
			}
		} else {
			stable = 0
		}
	}
	res.Final = s.Totals()
	return res
}

// CompareResult is the X4 experiment outcome: coupled versus independent
// forest balancing on one instance.
type CompareResult struct {
	Nodes, Trees     int
	GLETotal         float64 // ΣΣE/n — the unconstrained ideal
	IndependentTLB   float64 // max per-node total if every tree reaches its own TLB
	IndependentFinal float64 // measured max total, independent protocol
	CoupledFinal     float64 // measured max total, coupled protocol
	Rounds           int
}

// Compare runs both variants on the same forest.
func Compare(f *Forest, maxRounds int) (*CompareResult, error) {
	_, indTotals, err := f.PerTreeTLB()
	if err != nil {
		return nil, err
	}
	indTLBMax, _ := core.MaxVec(indTotals)

	indSim, err := NewSim(f, Config{Coupling: Independent})
	if err != nil {
		return nil, err
	}
	indRun := indSim.Run(maxRounds, 1e-9)

	coupSim, err := NewSim(f, Config{Coupling: Coupled})
	if err != nil {
		return nil, err
	}
	coupRun := coupSim.Run(maxRounds, 1e-9)

	total := core.SumVec(f.TotalRates())
	return &CompareResult{
		Nodes:            f.Len(),
		Trees:            f.NumTrees(),
		GLETotal:         total / float64(f.Len()),
		IndependentTLB:   indTLBMax,
		IndependentFinal: indRun.MaxTotal[len(indRun.MaxTotal)-1],
		CoupledFinal:     coupRun.MaxTotal[len(coupRun.MaxTotal)-1],
		Rounds:           coupRun.Rounds,
	}, nil
}

// String renders one comparison row.
func (c *CompareResult) String() string {
	return fmt.Sprintf("n=%d k=%d GLE=%.1f indTLB=%.1f indFinal=%.1f coupledFinal=%.1f (rounds %d)",
		c.Nodes, c.Trees, c.GLETotal, c.IndependentTLB, c.IndependentFinal, c.CoupledFinal, c.Rounds)
}

// SpreadDistance is a convenience: Euclidean distance of the totals from
// their own mean — 0 exactly at GLE of totals.
func SpreadDistance(totals core.Vector) float64 {
	mean := core.SumVec(totals) / float64(len(totals))
	uniform := core.UniformVec(len(totals), mean)
	return stats.Euclidean(totals, uniform)
}
