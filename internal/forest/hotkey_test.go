package forest

import (
	"math"
	"math/rand"
	"testing"

	"webwave/internal/tree"
)

func TestPickReplicaRoots(t *testing.T) {
	loads := map[int]float64{2: 5, 3: 1, 4: 3, 5: 1}
	load := func(v int) float64 { return loads[v] }
	got := PickReplicaRoots([]int{2, 3, 4, 5}, load, 2)
	// Least-loaded first; the 3-vs-5 tie breaks toward the smaller id.
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("PickReplicaRoots = %v, want [3 5]", got)
	}
	if got := PickReplicaRoots([]int{7, 8}, load, 5); len(got) != 2 {
		t.Fatalf("k beyond candidates: got %v", got)
	}
	if got := PickReplicaRoots(nil, load, 3); got != nil {
		t.Fatalf("no candidates: got %v", got)
	}
}

// TestTwoChoicesUniform checks the sampling distribution under equal loads:
// every root must be picked with frequency close to 1/k.
func TestTwoChoicesUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	roots := []int{3, 9, 12, 17}
	flat := func(int) float64 { return 0 }
	counts := make(map[int]int)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[TwoChoices(roots, flat, rng)]++
	}
	want := float64(n) / float64(len(roots))
	for _, r := range roots {
		if dev := math.Abs(float64(counts[r]) - want); dev > 0.05*want {
			t.Errorf("root %d picked %d times, want ~%.0f", r, counts[r], want)
		}
	}
}

// TestTwoChoicesBalances runs the classic balls-into-bins experiment: each
// pick increments the chosen root's load. Two choices must keep the final
// spread dramatically tighter than one random choice does.
func TestTwoChoicesBalances(t *testing.T) {
	const bins, balls = 8, 8000
	roots := make([]int, bins)
	for i := range roots {
		roots[i] = i
	}

	spread := func(loads []float64) float64 {
		min, max := loads[0], loads[0]
		for _, l := range loads {
			min, max = math.Min(min, l), math.Max(max, l)
		}
		return max - min
	}

	rng := rand.New(rand.NewSource(7))
	two := make([]float64, bins)
	for i := 0; i < balls; i++ {
		v := TwoChoices(roots, func(r int) float64 { return two[r] }, rng)
		two[v]++
	}
	one := make([]float64, bins)
	for i := 0; i < balls; i++ {
		one[rng.Intn(bins)]++
	}

	// Two-choices with load feedback self-corrects: any bin more than one
	// ball ahead loses every comparison it appears in, so the spread stays
	// O(1) while single-choice drifts like sqrt(balls).
	if s := spread(two); s > 4 {
		t.Errorf("two-choices spread = %v, want <= 4", s)
	}
	if spread(two) >= spread(one) {
		t.Errorf("two-choices spread %v not tighter than single-choice %v",
			spread(two), spread(one))
	}
}

func TestTwoChoicesDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	flat := func(int) float64 { return 0 }
	if got := TwoChoices(nil, flat, rng); got != -1 {
		t.Errorf("no roots: got %d, want -1", got)
	}
	if got := TwoChoices([]int{5}, flat, rng); got != 5 {
		t.Errorf("one root: got %d, want 5", got)
	}
}

func TestBall(t *testing.T) {
	// 0 -> {1, 2}; 1 -> {3, 4}; 3 -> {5}
	tr := tree.MustFromParents([]int{-1, 0, 0, 1, 1, 3})
	cases := []struct {
		root, radius int
		want         []int
	}{
		{1, 0, []int{1}},
		{1, 1, []int{1, 3, 4}},
		{1, 2, []int{1, 3, 4, 5}},
		{1, 9, []int{1, 3, 4, 5}},
		{2, 3, []int{2}},
	}
	for _, c := range cases {
		got := Ball(tr, c.root, c.radius)
		if len(got) != len(c.want) {
			t.Errorf("Ball(%d,%d) = %v, want %v", c.root, c.radius, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Ball(%d,%d) = %v, want %v", c.root, c.radius, got, c.want)
				break
			}
		}
	}
	if got := Ball(tr, -1, 2); got != nil {
		t.Errorf("out-of-range root: got %v", got)
	}
}

// TestPromoTrackerRoundTrip walks one document through the full life cycle:
// hot long enough to promote, then cold long enough to demote.
func TestPromoTrackerRoundTrip(t *testing.T) {
	cfg := PromoConfig{PromoteThreshold: 100}.WithDefaults()
	if cfg.DemoteThreshold != 25 || cfg.Hysteresis != 3 {
		t.Fatalf("defaults: got %+v", cfg)
	}
	var p PromoTracker
	// Two hot observations are not enough; the third promotes.
	for i := 0; i < 2; i++ {
		if a := p.Observe(150, cfg); a != PromoNone {
			t.Fatalf("observation %d: got %v, want PromoNone", i, a)
		}
	}
	if a := p.Observe(150, cfg); a != PromoPromote {
		t.Fatalf("third hot observation: got %v, want PromoPromote", a)
	}
	if !p.Promoted() {
		t.Fatal("not promoted after PromoPromote")
	}
	// Cooling below the demote threshold for Hysteresis periods demotes.
	for i := 0; i < 2; i++ {
		if a := p.Observe(10, cfg); a != PromoNone {
			t.Fatalf("cold observation %d: got %v, want PromoNone", i, a)
		}
	}
	if a := p.Observe(10, cfg); a != PromoDemote {
		t.Fatalf("third cold observation: got %v, want PromoDemote", a)
	}
	if p.Promoted() || !p.Idle() {
		t.Fatalf("after demote: promoted=%v idle=%v", p.Promoted(), p.Idle())
	}
}

// TestPromoTrackerNoFlapping pins the hysteresis guarantees: a heat signal
// oscillating inside the dead band never transitions, an interrupted hot
// streak resets, and a brief cold dip does not demote a promoted document.
func TestPromoTrackerNoFlapping(t *testing.T) {
	cfg := PromoConfig{PromoteThreshold: 100, DemoteThreshold: 25, Hysteresis: 3}

	// Oscillation across the promote threshold: hot streak resets each
	// time the signal dips, so no promotion ever fires.
	var p PromoTracker
	for i := 0; i < 50; i++ {
		heat := 150.0
		if i%3 == 2 {
			heat = 50 // inside the dead band — resets the streak
		}
		if a := p.Observe(heat, cfg); a != PromoNone {
			t.Fatalf("oscillating signal promoted at observation %d", i)
		}
	}

	// Promote, then oscillate inside the dead band: never demotes.
	p = PromoTracker{}
	for i := 0; i < 3; i++ {
		p.Observe(200, cfg)
	}
	if !p.Promoted() {
		t.Fatal("setup: not promoted")
	}
	for i := 0; i < 50; i++ {
		heat := 10.0
		if i%3 == 2 {
			heat = 50 // above demote threshold — resets the cold streak
		}
		if a := p.Observe(heat, cfg); a != PromoNone {
			t.Fatalf("dead-band signal demoted at observation %d", i)
		}
	}
	if !p.Promoted() {
		t.Fatal("document flapped out of promotion")
	}
}

func TestReplicaForestServingSet(t *testing.T) {
	tr := tree.MustFromParents([]int{-1, 0, 0, 1, 1, 2})
	rf := &ReplicaForest{Roots: []int{1, 2}, Age: 1}
	got := rf.ServingSet(tr)
	want := []int{1, 3, 4, 2, 5}
	if len(got) != len(want) {
		t.Fatalf("ServingSet = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ServingSet = %v, want %v", got, want)
		}
	}
}
