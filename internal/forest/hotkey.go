// Hot-document replication forests.
//
// One routing tree ceilings a viral document at the capacity its diffusion
// wave can recruit around a single root. A replication forest breaks that
// ceiling by promoting the document onto k replica roots in disjoint
// subtrees — each runs the ordinary WebWave protocol on its own branch, so
// the document effectively gains k independent trees — and by routing each
// request to the less-loaded of two randomly sampled roots
// (power-of-two-choices), which keeps the replica loads within a constant
// factor of each other without any global coordination.
//
// This file holds the pieces shared by the live runtime and the
// deterministic hot-key benchmark: replica-root selection, the two-choices
// pick, and the diffusion-ball capacity model the simulator integrates.
package forest

import (
	"math/rand"
	"sort"

	"webwave/internal/tree"
)

// PickReplicaRoots chooses k replica roots among candidates, preferring the
// least-loaded (ties broken by id for determinism). The home server calls
// this over its direct children — sibling subtrees are disjoint by
// construction, which is what makes the replica trees independent.
func PickReplicaRoots(candidates []int, load func(int) float64, k int) []int {
	if k <= 0 || len(candidates) == 0 {
		return nil
	}
	picked := append([]int(nil), candidates...)
	sort.Slice(picked, func(i, j int) bool {
		li, lj := load(picked[i]), load(picked[j])
		if li != lj {
			return li < lj
		}
		return picked[i] < picked[j]
	})
	if k > len(picked) {
		k = len(picked)
	}
	return picked[:k]
}

// TwoChoices returns the less-loaded of two roots sampled uniformly at
// random (distinct when possible). With one root it is that root; with zero
// it returns -1. Mitzenmacher's power-of-two-choices result is what keeps
// the forest balanced: sampling two and taking the lighter drives the max
// load exponentially closer to the mean than one random choice would.
func TwoChoices(roots []int, load func(int) float64, rng *rand.Rand) int {
	switch len(roots) {
	case 0:
		return -1
	case 1:
		return roots[0]
	}
	i := rng.Intn(len(roots))
	j := rng.Intn(len(roots) - 1)
	if j >= i {
		j++
	}
	a, b := roots[i], roots[j]
	if load(b) < load(a) {
		return b
	}
	return a
}

// Ball returns the nodes of root's subtree within radius edges of root, in
// BFS order starting at root itself. This is the set a diffusion wave can
// have recruited radius rounds after a copy lands on root — the serving set
// the hot-key capacity model integrates over.
func Ball(t *tree.Tree, root, radius int) []int {
	if root < 0 || root >= t.Len() {
		return nil
	}
	ball := []int{root}
	frontier := []int{root}
	for r := 0; r < radius && len(frontier) > 0; r++ {
		var next []int
		for _, v := range frontier {
			t.EachChild(v, func(c int) {
				next = append(next, c)
			})
		}
		ball = append(ball, next...)
		frontier = next
	}
	return ball
}

// PromoConfig parameterizes the promotion hysteresis: a document is
// promoted after Hysteresis consecutive observations at or above
// PromoteThreshold, and demoted after Hysteresis consecutive observations
// below DemoteThreshold. Keeping DemoteThreshold well under
// PromoteThreshold opens a dead band in which neither transition fires —
// the anti-flapping guarantee the state-machine tests pin down.
type PromoConfig struct {
	PromoteThreshold float64
	DemoteThreshold  float64
	Hysteresis       int
}

// WithDefaults fills the derived knobs: DemoteThreshold defaults to a
// quarter of PromoteThreshold, Hysteresis to 3 observations.
func (c PromoConfig) WithDefaults() PromoConfig {
	if c.DemoteThreshold <= 0 {
		c.DemoteThreshold = c.PromoteThreshold / 4
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 3
	}
	return c
}

// PromoAction is a promotion state machine's verdict for one observation.
type PromoAction int

const (
	// PromoNone: no transition this observation.
	PromoNone PromoAction = iota
	// PromoPromote: the document just crossed into the promoted state.
	PromoPromote
	// PromoDemote: the document just cooled out of the promoted state.
	PromoDemote
)

// PromoTracker is the per-document promotion hysteresis state machine,
// shared by the live home server's control loop and the deterministic
// hot-key benchmark model. The zero value is an unpromoted document.
type PromoTracker struct {
	promoted        bool
	hotFor, coldFor int
}

// Promoted reports whether the document is currently promoted.
func (p *PromoTracker) Promoted() bool { return p.promoted }

// Observe feeds one heat measurement (the document's forest-wide serve
// rate) and returns the transition it triggers, if any.
func (p *PromoTracker) Observe(heat float64, cfg PromoConfig) PromoAction {
	if !p.promoted {
		if heat >= cfg.PromoteThreshold {
			p.hotFor++
		} else {
			p.hotFor = 0
		}
		if p.hotFor >= cfg.Hysteresis {
			p.promoted, p.hotFor, p.coldFor = true, 0, 0
			return PromoPromote
		}
		return PromoNone
	}
	if heat < cfg.DemoteThreshold {
		p.coldFor++
	} else {
		p.coldFor = 0
	}
	if p.coldFor >= cfg.Hysteresis {
		p.promoted, p.hotFor, p.coldFor = false, 0, 0
		return PromoDemote
	}
	return PromoNone
}

// Idle reports whether the tracker holds no state worth keeping: not
// promoted and no partial hot streak. Callers use it to garbage-collect
// per-document trackers.
func (p *PromoTracker) Idle() bool { return !p.promoted && p.hotFor == 0 }

// ReplicaForest is the home server's bookkeeping for one promoted document:
// the replica roots and how many diffusion rounds each copy has had to
// spread. It is deliberately tiny — the live server embeds one per promoted
// document, and the simulator steps a slice of them.
type ReplicaForest struct {
	Roots []int // disjoint replica roots (home's children, plus the home tree)
	Age   int   // diffusion rounds since promotion
}

// ServingSet returns the union of each replica root's diffusion ball at the
// forest's current age. Roots live in disjoint subtrees, so the union is
// concatenation without duplicates.
func (rf *ReplicaForest) ServingSet(t *tree.Tree) []int {
	var out []int
	for _, r := range rf.Roots {
		out = append(out, Ball(t, r, rf.Age)...)
	}
	return out
}
