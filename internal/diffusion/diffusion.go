package diffusion

import (
	"fmt"
	"math"
	"math/rand"

	"webwave/internal/core"
	"webwave/internal/stats"
)

// AlphaFunc assigns the diffusion parameter α_ij to an edge. It must be
// symmetric (α_ij = α_ji); the run functions only ever evaluate it with
// i < j.
type AlphaFunc func(i, j int) float64

// UniformAlpha returns the same α for every edge.
func UniformAlpha(alpha float64) AlphaFunc {
	return func(i, j int) float64 { return alpha }
}

// MaxDegreeAlpha returns α = 1/(maxdeg+1) for every edge — the classic safe
// choice satisfying Cybenko's condition 1 − Σ_j α_ij > 0 at every node.
func MaxDegreeAlpha(g *Graph) AlphaFunc {
	a := 1.0 / float64(g.MaxDegree()+1)
	return func(i, j int) float64 { return a }
}

// LocalDegreeAlpha returns α_ij = 1/(1 + max(deg i, deg j)) — a locally
// computable choice that also satisfies Cybenko's condition and adapts to
// irregular graphs better than the global maximum degree.
func LocalDegreeAlpha(g *Graph) AlphaFunc {
	return func(i, j int) float64 {
		d := g.Degree(i)
		if dj := g.Degree(j); dj > d {
			d = dj
		}
		return 1.0 / float64(1+d)
	}
}

// ValidateAlpha checks Cybenko's sufficient conditions on g with the given
// α: every α_ij ∈ (0, 1) and every node keeps a positive self-weight,
// 1 − Σ_{j∈N_i} α_ij > 0.
func ValidateAlpha(g *Graph, alpha AlphaFunc) error {
	for i := 0; i < g.Len(); i++ {
		sum := 0.0
		for _, j := range g.adj[i] {
			a, b := i, j
			if a > b {
				a, b = b, a
			}
			av := alpha(a, b)
			if av <= 0 || av >= 1 {
				return fmt.Errorf("diffusion: alpha(%d,%d)=%v outside (0,1)", a, b, av)
			}
			sum += av
		}
		if sum >= 1 {
			return fmt.Errorf("diffusion: node %d self-weight 1-Σα = %v <= 0 violates Cybenko's condition", i, 1-sum)
		}
	}
	return nil
}

// Matrix returns the dense diffusion matrix D with D_ij = α_ij for edges,
// D_ii = 1 − Σ_j α_ij: the load evolves as x(t) = D·x(t−1).
func Matrix(g *Graph, alpha AlphaFunc) [][]float64 {
	n := g.Len()
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for _, e := range g.Edges() {
		i, j := e[0], e[1]
		a := alpha(i, j)
		d[i][j] = a
		d[j][i] = a
	}
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			sum += d[i][j]
		}
		d[i][i] = 1 - sum
	}
	return d
}

// Step performs one synchronous diffusion iteration in place:
// L_i ← L_i + Σ_{j∈N_i} α_ij (L_j − L_i). scratch must have the same length
// as load (it is overwritten); pass nil to allocate.
func Step(g *Graph, alpha AlphaFunc, load, scratch core.Vector) core.Vector {
	if scratch == nil {
		scratch = make(core.Vector, len(load))
	}
	copy(scratch, load)
	for _, e := range g.Edges() {
		i, j := e[0], e[1]
		a := alpha(i, j)
		flow := a * (scratch[i] - scratch[j])
		load[i] -= flow
		load[j] += flow
	}
	return scratch
}

// RunResult captures a diffusion run: the final load vector and the
// Euclidean distance to the uniform distribution after every iteration
// (Distances[0] is the initial distance).
type RunResult struct {
	Final     core.Vector
	Distances []float64
	Steps     int
}

// Converged reports whether the final distance is below tol.
func (r *RunResult) Converged(tol float64) bool {
	return len(r.Distances) > 0 && r.Distances[len(r.Distances)-1] <= tol
}

// Run performs synchronous diffusion for at most maxSteps iterations,
// stopping early once the distance to uniform load falls below tol. The
// input vector is not modified.
func Run(g *Graph, alpha AlphaFunc, initial core.Vector, maxSteps int, tol float64) (*RunResult, error) {
	if len(initial) != g.Len() {
		return nil, fmt.Errorf("diffusion: load length %d != graph size %d", len(initial), g.Len())
	}
	if err := ValidateAlpha(g, alpha); err != nil {
		return nil, err
	}
	uniform := core.UniformVec(len(initial), core.SumVec(initial)/float64(len(initial)))
	load := core.CloneVec(initial)
	scratch := make(core.Vector, len(load))
	res := &RunResult{Distances: []float64{stats.Euclidean(load, uniform)}}
	for s := 0; s < maxSteps; s++ {
		Step(g, alpha, load, scratch)
		res.Steps++
		d := stats.Euclidean(load, uniform)
		res.Distances = append(res.Distances, d)
		if d <= tol {
			break
		}
	}
	res.Final = load
	return res, nil
}

// RunAsync performs edge-asynchronous diffusion with bounded staleness, the
// Bertsekas–Tsitsiklis regime: at every step each edge independently fires
// with probability fireProb and, when it fires, exchanges load computed from
// values up to maxDelay steps old. The exchange is applied symmetrically
// (equal and opposite), so total load is conserved exactly.
func RunAsync(g *Graph, alpha AlphaFunc, initial core.Vector, maxSteps, maxDelay int, fireProb float64, rng *rand.Rand, tol float64) (*RunResult, error) {
	if len(initial) != g.Len() {
		return nil, fmt.Errorf("diffusion: load length %d != graph size %d", len(initial), g.Len())
	}
	if err := ValidateAlpha(g, alpha); err != nil {
		return nil, err
	}
	if maxDelay < 0 {
		return nil, fmt.Errorf("diffusion: negative maxDelay %d", maxDelay)
	}
	if fireProb <= 0 || fireProb > 1 {
		return nil, fmt.Errorf("diffusion: fireProb %v outside (0,1]", fireProb)
	}
	n := len(initial)
	uniform := core.UniformVec(n, core.SumVec(initial)/float64(n))
	load := core.CloneVec(initial)

	// History ring buffer of the last maxDelay+1 snapshots.
	histLen := maxDelay + 1
	history := make([]core.Vector, histLen)
	for i := range history {
		history[i] = core.CloneVec(load)
	}
	edges := g.Edges()
	res := &RunResult{Distances: []float64{stats.Euclidean(load, uniform)}}
	for s := 0; s < maxSteps; s++ {
		for _, e := range edges {
			if rng.Float64() >= fireProb {
				continue
			}
			i, j := e[0], e[1]
			stale := history[rng.Intn(histLen)]
			flow := alpha(i, j) * (stale[i] - stale[j])
			// Clamp so a stale view cannot drive a load negative.
			if flow > load[i] {
				flow = load[i]
			}
			if -flow > load[j] {
				flow = -load[j]
			}
			load[i] -= flow
			load[j] += flow
		}
		res.Steps++
		copy(history[s%histLen], load)
		d := stats.Euclidean(load, uniform)
		res.Distances = append(res.Distances, d)
		if d <= tol {
			break
		}
	}
	res.Final = load
	return res, nil
}

// SpectralGamma computes γ, the second-largest eigenvalue modulus of the
// diffusion matrix — the exact asymptotic contraction factor of synchronous
// diffusion (‖D^t x(0) − ū‖ ≤ γ^t ‖x(0) − ū‖ for symmetric D). It runs
// power iteration on D deflated by the uniform eigenvector.
func SpectralGamma(d [][]float64) float64 {
	n := len(d)
	if n <= 1 {
		return 0
	}
	v := make([]float64, n)
	// Deterministic pseudo-random start, orthogonal to the all-ones vector.
	for i := range v {
		v[i] = math.Sin(float64(i+1) * 2.39996322972865332) // golden-angle spread
	}
	deflate := func(x []float64) {
		mean := 0.0
		for _, xi := range x {
			mean += xi
		}
		mean /= float64(n)
		for i := range x {
			x[i] -= mean
		}
	}
	deflate(v)
	normalize := func(x []float64) float64 {
		norm := stats.Norm2(x)
		if norm == 0 {
			return 0
		}
		for i := range x {
			x[i] /= norm
		}
		return norm
	}
	normalize(v)
	w := make([]float64, n)
	gamma := 0.0
	for iter := 0; iter < 3000; iter++ {
		for i := 0; i < n; i++ {
			s := 0.0
			row := d[i]
			for j := 0; j < n; j++ {
				s += row[j] * v[j]
			}
			w[i] = s
		}
		deflate(w)
		norm := normalize(w)
		v, w = w, v
		if iter > 10 && math.Abs(norm-gamma) < 1e-13 {
			gamma = norm
			break
		}
		gamma = norm
	}
	return gamma
}

// HypercubeOptimal returns the optimal uniform diffusion parameter and the
// resulting γ for the d-dimensional hypercube: the Laplacian spectrum is
// {2m : m = 0..d}, so α* = 2/(μ₂+μ_max) = 1/(d+1) and
// γ* = (μ_max−μ₂)/(μ_max+μ₂) = (d−1)/(d+1).
func HypercubeOptimal(d int) (alpha, gamma float64) {
	return 1 / float64(d+1), float64(d-1) / float64(d+1)
}

// KAryNCubeOptimal returns the Xu–Lau optimal uniform diffusion parameter
// and the resulting γ for the k-ary n-cube (k ≥ 3). The torus Laplacian
// spectrum is Σ_i (2 − 2cos(2π m_i/k)); with μ₂ = 2 − 2cos(2π/k) and
// μ_max = n·(2 − 2cos(2π⌊k/2⌋/k)), the optimum is α* = 2/(μ₂+μ_max),
// γ* = (μ_max−μ₂)/(μ_max+μ₂).
func KAryNCubeOptimal(k, n int) (alpha, gamma float64) {
	mu2 := 2 - 2*math.Cos(2*math.Pi/float64(k))
	muMax := float64(n) * (2 - 2*math.Cos(2*math.Pi*math.Floor(float64(k)/2)/float64(k)))
	return 2 / (mu2 + muMax), (muMax - mu2) / (muMax + mu2)
}
