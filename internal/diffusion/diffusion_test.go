package diffusion

import (
	"math"
	"math/rand"
	"testing"

	"webwave/internal/core"
	"webwave/internal/stats"
	"webwave/internal/trace"
)

func TestGraphConstructors(t *testing.T) {
	tests := []struct {
		name      string
		build     func() (*Graph, error)
		wantN     int
		wantDeg   int // uniform degree; -1 to skip
		wantEdges int
	}{
		{"path4", func() (*Graph, error) { return Path(4) }, 4, -1, 3},
		{"ring5", func() (*Graph, error) { return Ring(5) }, 5, 2, 5},
		{"complete4", func() (*Graph, error) { return Complete(4) }, 4, 3, 6},
		{"hypercube3", func() (*Graph, error) { return Hypercube(3) }, 8, 3, 12},
		{"4ary2cube", func() (*Graph, error) { return KAryNCube(4, 2) }, 16, 4, 32},
		{"3ary1cube", func() (*Graph, error) { return KAryNCube(3, 1) }, 3, 2, 3},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			if g.Len() != tc.wantN {
				t.Errorf("n = %d, want %d", g.Len(), tc.wantN)
			}
			if len(g.Edges()) != tc.wantEdges {
				t.Errorf("edges = %d, want %d", len(g.Edges()), tc.wantEdges)
			}
			if tc.wantDeg >= 0 {
				for v := 0; v < g.Len(); v++ {
					if g.Degree(v) != tc.wantDeg {
						t.Errorf("degree(%d) = %d, want %d", v, g.Degree(v), tc.wantDeg)
					}
				}
			}
			if !g.Connected() {
				t.Error("not connected")
			}
		})
	}
}

func TestGraphErrors(t *testing.T) {
	if _, err := NewGraph(0, nil); err == nil {
		t.Error("empty graph accepted")
	}
	if _, err := NewGraph(2, [][2]int{{0, 0}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := NewGraph(2, [][2]int{{0, 1}, {1, 0}}); err == nil {
		t.Error("duplicate edge accepted")
	}
	if _, err := NewGraph(2, [][2]int{{0, 5}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := Ring(2); err == nil {
		t.Error("Ring(2) accepted")
	}
	if _, err := KAryNCube(2, 2); err == nil {
		t.Error("KAryNCube(2,·) accepted (should direct to Hypercube)")
	}
	if _, err := DeBruijn(1, 2); err == nil {
		t.Error("DeBruijn(1,·) accepted")
	}
	if _, err := Hypercube(0); err == nil {
		t.Error("Hypercube(0) accepted")
	}
}

func TestDeBruijn(t *testing.T) {
	g, err := DeBruijn(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 8 {
		t.Fatalf("n = %d, want 8", g.Len())
	}
	if !g.Connected() {
		t.Error("De Bruijn graph disconnected")
	}
	// Undirected De Bruijn degree is at most 2·base.
	for v := 0; v < g.Len(); v++ {
		if g.Degree(v) > 4 {
			t.Errorf("degree(%d) = %d > 4", v, g.Degree(v))
		}
	}
}

func TestDisconnectedDetected(t *testing.T) {
	g, err := NewGraph(4, [][2]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
}

func TestMatrixRowStochastic(t *testing.T) {
	g, err := Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	d := Matrix(g, MaxDegreeAlpha(g))
	for i, row := range d {
		sum := 0.0
		for j, x := range row {
			if x < 0 {
				t.Fatalf("D[%d][%d] = %v < 0", i, j, x)
			}
			if i != j && x != row[j] { // sanity of indexing
				_ = x
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
	// Symmetry.
	for i := range d {
		for j := range d {
			if math.Abs(d[i][j]-d[j][i]) > 1e-15 {
				t.Fatalf("D not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestValidateAlpha(t *testing.T) {
	g, err := Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateAlpha(g, UniformAlpha(0.3)); err != nil {
		t.Errorf("valid alpha rejected: %v", err)
	}
	if err := ValidateAlpha(g, UniformAlpha(0.5)); err == nil {
		t.Error("alpha sum = 1 accepted (violates Cybenko's condition)")
	}
	if err := ValidateAlpha(g, UniformAlpha(0)); err == nil {
		t.Error("alpha = 0 accepted")
	}
	if err := ValidateAlpha(g, UniformAlpha(1)); err == nil {
		t.Error("alpha = 1 accepted")
	}
	if err := ValidateAlpha(g, LocalDegreeAlpha(g)); err != nil {
		t.Errorf("LocalDegreeAlpha rejected: %v", err)
	}
}

func TestUniformIsFixedPoint(t *testing.T) {
	g, err := KAryNCube(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	load := core.UniformVec(g.Len(), 7.5)
	Step(g, MaxDegreeAlpha(g), load, nil)
	for _, x := range load {
		if math.Abs(x-7.5) > 1e-12 {
			t.Fatalf("uniform load moved to %v", x)
		}
	}
}

func TestStepConservesLoad(t *testing.T) {
	g, err := DeBruijn(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	load := trace.UniformRates(g.Len(), 0, 100, rng)
	total := core.SumVec(load)
	scratch := make(core.Vector, len(load))
	for i := 0; i < 50; i++ {
		Step(g, LocalDegreeAlpha(g), load, scratch)
	}
	if math.Abs(core.SumVec(load)-total) > 1e-8 {
		t.Errorf("total drifted from %v to %v", total, core.SumVec(load))
	}
}

func TestRunConvergesToUniform(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func() (*Graph, error)
	}{
		{"ring8", func() (*Graph, error) { return Ring(8) }},
		{"hypercube4", func() (*Graph, error) { return Hypercube(4) }},
		{"path6", func() (*Graph, error) { return Path(6) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(2))
			load := trace.UniformRates(g.Len(), 0, 100, rng)
			res, err := Run(g, MaxDegreeAlpha(g), load, 5000, 1e-9)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged(1e-9) {
				t.Fatalf("did not converge: final distance %v", res.Distances[len(res.Distances)-1])
			}
			mean := core.SumVec(load) / float64(len(load))
			for _, x := range res.Final {
				if math.Abs(x-mean) > 1e-6 {
					t.Fatalf("final load %v != mean %v", x, mean)
				}
			}
			// Monotone non-increasing distances (symmetric diffusion).
			for i := 1; i < len(res.Distances); i++ {
				if res.Distances[i] > res.Distances[i-1]+1e-9 {
					t.Fatalf("distance increased at step %d", i)
				}
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	g, err := Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, UniformAlpha(0.2), core.Vector{1, 2}, 10, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Run(g, UniformAlpha(0.9), core.Vector{1, 2, 3, 4}, 10, 0); err == nil {
		t.Error("unstable alpha accepted")
	}
}

func TestSpectralGammaAgainstTheory(t *testing.T) {
	// Hypercube with α = 1/(d+1): γ = (d−1)/(d+1).
	for d := 2; d <= 5; d++ {
		g, err := Hypercube(d)
		if err != nil {
			t.Fatal(err)
		}
		alpha, wantGamma := HypercubeOptimal(d)
		got := SpectralGamma(Matrix(g, UniformAlpha(alpha)))
		if math.Abs(got-wantGamma) > 1e-6 {
			t.Errorf("hypercube-%d: spectral γ = %v, want %v", d, got, wantGamma)
		}
	}
	// Complete graph with α = 1/n: D = J/n, γ = 0.
	g, err := Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	got := SpectralGamma(Matrix(g, UniformAlpha(1.0/6)))
	if got > 1e-8 {
		t.Errorf("complete graph γ = %v, want 0", got)
	}
}

func TestKAryNCubeOptimalMatchesSpectrum(t *testing.T) {
	for _, tc := range []struct{ k, n int }{{3, 2}, {4, 2}, {5, 1}} {
		g, err := KAryNCube(tc.k, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		alpha, wantGamma := KAryNCubeOptimal(tc.k, tc.n)
		if err := ValidateAlpha(g, UniformAlpha(alpha)); err != nil {
			t.Fatalf("optimal alpha invalid: %v", err)
		}
		got := SpectralGamma(Matrix(g, UniformAlpha(alpha)))
		if math.Abs(got-wantGamma) > 1e-6 {
			t.Errorf("k=%d n=%d: spectral γ = %v, want %v", tc.k, tc.n, got, wantGamma)
		}
		// The Xu–Lau α must beat the generic max-degree choice.
		generic := SpectralGamma(Matrix(g, MaxDegreeAlpha(g)))
		if got > generic+1e-9 {
			t.Errorf("k=%d n=%d: optimal γ %v worse than generic %v", tc.k, tc.n, got, generic)
		}
	}
}

func TestMeasuredContractionWithinSpectralBound(t *testing.T) {
	g, err := KAryNCube(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	alpha := MaxDegreeAlpha(g)
	rng := rand.New(rand.NewSource(3))
	load := trace.UniformRates(g.Len(), 0, 100, rng)
	res, err := Run(g, alpha, load, 500, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	gamma := SpectralGamma(Matrix(g, alpha))
	if !stats.BoundHolds(res.Distances, res.Distances[0], gamma, 1e-5) {
		t.Errorf("measured distances exceed the γ^t bound (γ=%v)", gamma)
	}
}

func TestRunAsyncConvergesAndConserves(t *testing.T) {
	g, err := Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	load := trace.UniformRates(g.Len(), 0, 100, rng)
	total := core.SumVec(load)
	res, err := RunAsync(g, MaxDegreeAlpha(g), load, 3000, 3, 0.7, rng, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(core.SumVec(res.Final)-total) > 1e-6 {
		t.Errorf("async total drifted: %v vs %v", core.SumVec(res.Final), total)
	}
	if !res.Converged(1e-3) {
		t.Errorf("async did not converge: final %v", res.Distances[len(res.Distances)-1])
	}
}

func TestRunAsyncErrors(t *testing.T) {
	g, err := Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	ok := core.Vector{1, 2, 3, 4}
	if _, err := RunAsync(g, UniformAlpha(0.2), core.Vector{1}, 10, 1, 0.5, rng, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := RunAsync(g, UniformAlpha(0.2), ok, 10, -1, 0.5, rng, 0); err == nil {
		t.Error("negative delay accepted")
	}
	if _, err := RunAsync(g, UniformAlpha(0.2), ok, 10, 1, 0, rng, 0); err == nil {
		t.Error("zero fire probability accepted")
	}
}

func TestFromTree(t *testing.T) {
	tr := mustTree(t)
	g := FromTree(tr)
	if g.Len() != tr.Len() || len(g.Edges()) != tr.Len()-1 {
		t.Errorf("FromTree: n=%d edges=%d", g.Len(), len(g.Edges()))
	}
	if !g.Connected() {
		t.Error("tree graph disconnected")
	}
}
