package diffusion

import (
	"testing"

	"webwave/internal/tree"
)

func mustTree(t *testing.T) *tree.Tree {
	t.Helper()
	return tree.MustFromParents([]int{tree.NoParent, 0, 0, 1, 1, 2, 2})
}
