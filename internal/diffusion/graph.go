// Package diffusion implements the load-diffusion background of the paper's
// Section 2: the synchronous diffusion method of Cybenko and the bounded-
// delay asynchronous variant of Bertsekas & Tsitsiklis, on general
// connected graphs. WebWave (internal/wave) is this method specialized to a
// routing tree under the no-sibling-sharing cap.
//
// The package provides the standard interconnection topologies from the
// paper's related work — hypercubes (Hong et al.), k-ary n-cubes (Xu & Lau),
// rings and De Bruijn networks (Lüling & Monien) — together with the
// diffusion matrix, its spectral convergence factor γ (the second-largest
// eigenvalue modulus), and closed-form optimal diffusion parameters where
// the literature gives them.
package diffusion

import (
	"fmt"
	"sort"

	"webwave/internal/tree"
)

// Graph is an undirected simple graph on nodes 0..n-1.
type Graph struct {
	n   int
	adj [][]int
}

// NewGraph builds a graph from an edge list. Self-loops and duplicate edges
// are rejected.
func NewGraph(n int, edges [][2]int) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("diffusion: graph size %d <= 0", n)
	}
	g := &Graph{n: n, adj: make([][]int, n)}
	seen := make(map[[2]int]bool, len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("diffusion: edge (%d,%d) out of range (n=%d)", u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("diffusion: self-loop at %d", u)
		}
		key := [2]int{u, v}
		if u > v {
			key = [2]int{v, u}
		}
		if seen[key] {
			return nil, fmt.Errorf("diffusion: duplicate edge (%d,%d)", u, v)
		}
		seen[key] = true
		g.adj[u] = append(g.adj[u], v)
		g.adj[v] = append(g.adj[v], u)
	}
	for _, a := range g.adj {
		sort.Ints(a)
	}
	return g, nil
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return g.n }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns the maximum degree.
func (g *Graph) MaxDegree() int {
	m := 0
	for _, a := range g.adj {
		if len(a) > m {
			m = len(a)
		}
	}
	return m
}

// Neighbors returns a copy of v's neighbor list.
func (g *Graph) Neighbors(v int) []int {
	out := make([]int, len(g.adj[v]))
	copy(out, g.adj[v])
	return out
}

// EachNeighbor iterates v's neighbors without allocating.
func (g *Graph) EachNeighbor(v int, fn func(u int)) {
	for _, u := range g.adj[v] {
		fn(u)
	}
}

// Edges returns each undirected edge once, as (min, max) pairs in sorted
// order.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// Connected reports whether the graph is connected — one of Cybenko's two
// sufficient conditions for diffusion convergence.
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return false
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range g.adj[v] {
			if !seen[u] {
				seen[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	return count == g.n
}

// Path returns the path graph on n nodes.
func Path(n int) (*Graph, error) {
	edges := make([][2]int, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return NewGraph(n, edges)
}

// Ring returns the cycle on n nodes (n >= 3).
func Ring(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("diffusion: ring needs n >= 3, got %d", n)
	}
	edges := make([][2]int, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	return NewGraph(n, edges)
}

// Complete returns the complete graph on n nodes.
func Complete(n int) (*Graph, error) {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return NewGraph(n, edges)
}

// Hypercube returns the d-dimensional hypercube on 2^d nodes (Hong, Tan &
// Chen's nearest-neighbor averaging topology).
func Hypercube(d int) (*Graph, error) {
	if d < 1 || d > 20 {
		return nil, fmt.Errorf("diffusion: hypercube dimension %d outside [1,20]", d)
	}
	n := 1 << d
	var edges [][2]int
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			u := v ^ (1 << b)
			if v < u {
				edges = append(edges, [2]int{v, u})
			}
		}
	}
	return NewGraph(n, edges)
}

// KAryNCube returns the k-ary n-cube (the n-dimensional torus Z_k^n) studied
// by Xu & Lau. k must be at least 3 so that each dimension contributes two
// distinct neighbors; use Hypercube for k = 2.
func KAryNCube(k, n int) (*Graph, error) {
	if k < 3 {
		return nil, fmt.Errorf("diffusion: k-ary n-cube needs k >= 3, got %d (use Hypercube for k=2)", k)
	}
	if n < 1 {
		return nil, fmt.Errorf("diffusion: k-ary n-cube needs n >= 1, got %d", n)
	}
	size := 1
	for i := 0; i < n; i++ {
		size *= k
		if size > 1<<20 {
			return nil, fmt.Errorf("diffusion: k-ary n-cube too large (k=%d n=%d)", k, n)
		}
	}
	var edges [][2]int
	stride := 1
	for dim := 0; dim < n; dim++ {
		for v := 0; v < size; v++ {
			coord := (v / stride) % k
			next := v + stride
			if coord == k-1 {
				next = v - (k-1)*stride
			}
			// Each undirected edge appears exactly once when every node
			// emits only its +1-direction neighbor (k >= 3 guarantees the
			// -1 and +1 neighbors differ).
			edges = append(edges, [2]int{v, next})
		}
		stride *= k
	}
	return NewGraph(size, edges)
}

// DeBruijn returns the undirected version of the (base, dim) De Bruijn
// network on base^dim nodes (Lüling & Monien's load-balancer substrate):
// node u connects to (u·base + a) mod base^dim for each symbol a, with
// self-loops and parallel edges collapsed.
func DeBruijn(base, dim int) (*Graph, error) {
	if base < 2 || dim < 1 {
		return nil, fmt.Errorf("diffusion: De Bruijn needs base >= 2, dim >= 1 (got %d, %d)", base, dim)
	}
	size := 1
	for i := 0; i < dim; i++ {
		size *= base
		if size > 1<<20 {
			return nil, fmt.Errorf("diffusion: De Bruijn too large (base=%d dim=%d)", base, dim)
		}
	}
	seen := make(map[[2]int]bool)
	var edges [][2]int
	for u := 0; u < size; u++ {
		for a := 0; a < base; a++ {
			v := (u*base + a) % size
			if u == v {
				continue
			}
			key := [2]int{u, v}
			if u > v {
				key = [2]int{v, u}
			}
			if !seen[key] {
				seen[key] = true
				edges = append(edges, key)
			}
		}
	}
	return NewGraph(size, edges)
}

// FromTree returns the graph underlying a routing tree (each parent-child
// edge becomes an undirected edge). Running unconstrained diffusion on this
// graph shows what WebWave would do without the NSS cap.
func FromTree(t *tree.Tree) *Graph {
	edges := t.Edges()
	ge := make([][2]int, len(edges))
	for i, e := range edges {
		ge[i] = [2]int{e[0], e[1]}
	}
	g, err := NewGraph(t.Len(), ge)
	if err != nil {
		// A valid tree always yields a valid simple graph.
		panic(err)
	}
	return g
}
