package cluster

// Read-my-writes session tokens. A session that writes through the cluster
// carries the version each write was assigned; a later read in the same
// session demands at least that version. The token is the whole mechanism:
// no global coordination, no write acks — the client's own version ratchet
// rides each request as the envelope's MinVersion, and any node holding an
// older copy bypasses it and refreshes through the tree (server-side
// sessionGate). The harness side here also runs the violation detector:
// every session read records the version it expects, and a response that
// comes back older counts as one read-my-writes violation — with tokens on
// the wire that count must be zero, and the token-less arm of the session
// scenario measures the violation rate the tokens eliminate.

import (
	"sync"

	"webwave/internal/core"
)

// SessionToken is one client session's version ratchet: the highest version
// it has written (or observed) per document. Safe for concurrent use.
type SessionToken struct {
	mu   sync.Mutex
	vers map[core.DocID]uint64
}

// NewSessionToken returns an empty session: every read accepts any version
// until the session's first write.
func NewSessionToken() *SessionToken {
	return &SessionToken{vers: make(map[core.DocID]uint64, 4)}
}

// Observe ratchets the session's floor for doc up to ver. Older
// observations are no-ops — a session never lowers its guarantee.
func (t *SessionToken) Observe(doc core.DocID, ver uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if ver > t.vers[doc] {
		t.vers[doc] = ver
	}
	t.mu.Unlock()
}

// MinVersion returns the session's version floor for doc (0 = any version
// is acceptable; the session has not written it).
func (t *SessionToken) MinVersion(doc core.DocID) uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.vers[doc]
}

// RepublishSession injects a versioned body write and records the assigned
// version in the session's token, so the session's subsequent reads demand
// at least this write.
func (c *Cluster) RepublishSession(doc core.DocID, body []byte, tok *SessionToken) (uint64, error) {
	ver, err := c.Republish(doc, body)
	if err == nil {
		tok.Observe(doc, ver)
	}
	return ver, err
}

// InjectSession sends one read belonging to a session: the response is
// checked against the session's version floor for doc (a violation is
// counted if it comes back older), and when tokens is true the floor also
// rides the wire as the request's MinVersion so the tree enforces it. With
// tokens false the read is indistinguishable on the wire from Inject — the
// detector still runs, which is exactly how the session scenario measures
// the violation rate without the guarantee.
func (c *Cluster) InjectSession(origin int, doc core.DocID, tok *SessionToken, tokens bool) error {
	expect := tok.MinVersion(doc)
	minVer := uint64(0)
	if tokens {
		minVer = expect
	}
	return c.inject(origin, doc, expect, minVer)
}

// RMWViolations returns the number of read-my-writes violations observed so
// far: session reads answered with a version older than their session had
// already written.
func (c *Cluster) RMWViolations() int64 { return c.rmwViolations.Load() }

// isRMWViolation is the violation predicate, factored out for deterministic
// testing: a read that expected version expect (0 = no expectation) was
// answered with servedVer. NotFound responses never count — they carry no
// copy at all, and gating them is the server's parking path's job, not the
// detector's.
func isRMWViolation(expect, servedVer uint64, notFound bool) bool {
	return expect > 0 && !notFound && servedVer < expect
}
