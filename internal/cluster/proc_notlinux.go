//go:build !linux

package cluster

import "syscall"

// nodeSysProcAttr returns no special attributes off linux (no parent-death
// signal available; Stop's SIGTERM/SIGKILL sweep is the only reaper).
func nodeSysProcAttr() *syscall.SysProcAttr { return nil }
