//go:build !unix

package cluster

import "os"

// signalTerm has no graceful option without unix signals; the process is
// killed outright (Stop still reaps it, it just skips the drain).
func signalTerm(proc *os.Process) {
	proc.Kill()
}
