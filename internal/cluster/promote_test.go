package cluster

import (
	"sync"
	"testing"
	"time"

	"webwave/internal/core"
	"webwave/internal/netproto"
	"webwave/internal/tree"
)

// promoteConfig is smallConfig plus the replication-forest knobs, tuned so
// a test's injection loop crosses the threshold within a few diffusion
// periods.
func promoteConfig() Config {
	cfg := smallConfig()
	cfg.PromoteThreshold = 50 // req/s
	cfg.PromoteK = 2
	cfg.PromoteHysteresis = 2
	return cfg
}

// pump injects `doc` at `origin` in a background loop until the returned
// stop function is called — the flash crowd the promotion machinery reacts
// to. Send errors are tolerated: a killed entry node mid-chaos just thins
// the flash.
func pump(c *Cluster, origin int, doc core.DocID) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				for i := 0; i < 5; i++ {
					_ = c.Inject(origin, doc) // ~1000 req/s offered
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done); <-finished })
	}
}

func rootsOf(st *netproto.Stats, doc core.DocID) []int {
	if st == nil || st.PromotedDocs == nil {
		return nil
	}
	return st.PromotedDocs[doc]
}

// TestHotDocPromotionAndDemotion drives a flash crowd at a live cluster's
// home and watches the full replication-forest life cycle: the home
// promotes the document onto PromoteK of its children (who report replica
// duty and hold the copy), and once the flash ends the document cools
// through the hysteresis window and is demoted everywhere.
func TestHotDocPromotionAndDemotion(t *testing.T) {
	tr := tree.MustFromParents([]int{tree.NoParent, 0, 0, 0})
	docs := map[core.DocID][]byte{"hot": []byte("viral body"), "cold": []byte("quiet")}
	c, err := New(tr, docs, promoteConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	stop := pump(c, 0, "hot")
	st := waitNodeStats(t, c, 0, "home promoted the hot doc", func(st *netproto.Stats) bool {
		return len(rootsOf(st, "hot")) == 2 && st.Promotions >= 1
	})
	roots := rootsOf(st, "hot")

	// Each replica root hosts the copy and reports its replica duty.
	for _, r := range roots {
		waitNodeStats(t, c, r, "replica root hosts the copy", func(st *netproto.Stats) bool {
			return len(st.ReplicaDocs) == 1 && st.ReplicaDocs[0] == "hot"
		})
	}
	// The quiet document never promotes.
	if got := rootsOf(st, "cold"); got != nil {
		t.Fatalf("cold doc promoted to %v", got)
	}

	// Flash over: demand decays out of the rate windows and the document
	// cools through the hysteresis into demotion, forest-wide.
	stop()
	if left := c.Drain(5 * time.Second); left != 0 {
		t.Fatalf("%d flash requests unanswered", left)
	}
	waitNodeStats(t, c, 0, "home demoted the cooled doc", func(st *netproto.Stats) bool {
		return st.Demotions >= 1 && len(rootsOf(st, "hot")) == 0
	})
	for _, r := range roots {
		waitNodeStats(t, c, r, "replica root tore its copy down", func(st *netproto.Stats) bool {
			return len(st.ReplicaDocs) == 0
		})
	}
}

// TestKillReplicaRootConservesDuty is the forest chaos test: killing a
// replica root mid-flash must (a) leave the cluster answering every
// request, (b) re-absorb the dead root's handed-over duty at the home —
// the promote path credits the same per-child ledger delegation uses, so
// AbsorbedDuty must rise — and (c) repair the forest back to PromoteK
// roots from the remaining children.
func TestKillReplicaRootConservesDuty(t *testing.T) {
	tr := tree.MustFromParents([]int{tree.NoParent, 0, 0, 0})
	docs := map[core.DocID][]byte{"hot": []byte("viral body")}
	c, err := New(tr, docs, promoteConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	stop := pump(c, 0, "hot")
	defer stop()
	st := waitNodeStats(t, c, 0, "home promoted the hot doc", func(st *netproto.Stats) bool {
		return len(rootsOf(st, "hot")) == 2
	})
	roots := rootsOf(st, "hot")
	victim := roots[0]
	absorbedBefore := st.AbsorbedDuty

	if !c.KillNode(victim) {
		t.Fatalf("KillNode(%d) reported no kill", victim)
	}

	// The forest repairs: the home re-absorbs the ledgered duty and
	// replaces the dead root with the remaining child, keeping K live
	// roots — none of them the victim.
	waitNodeStats(t, c, 0, "forest repaired after root death", func(st *netproto.Stats) bool {
		roots := rootsOf(st, "hot")
		if len(roots) != 2 || st.AbsorbedDuty <= absorbedBefore {
			return false
		}
		for _, r := range roots {
			if r == victim {
				return false
			}
		}
		return true
	})

	// The surviving forest answers requests entering at every live node.
	// (Flash off first, so Drain converges on a finite request set.)
	stop()
	if left := c.Drain(5 * time.Second); left != 0 {
		t.Fatalf("%d flash requests unanswered", left)
	}
	want := c.Responses()
	for v := 0; v < tr.Len(); v++ {
		if c.NodeDead(v) {
			continue
		}
		for i := 0; i < 10; i++ {
			if err := c.Inject(v, "hot"); err != nil {
				t.Fatalf("inject at %d: %v", v, err)
			}
			want++
		}
	}
	if left := c.Drain(5 * time.Second); left != 0 {
		t.Fatalf("%d requests unanswered after root death", left)
	}
	if c.Responses() < want {
		t.Fatalf("responses = %d, want >= %d", c.Responses(), want)
	}
}
