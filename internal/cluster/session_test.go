package cluster

import (
	"fmt"
	"testing"
	"time"

	"webwave/internal/core"
	"webwave/internal/tree"
)

// TestIsRMWViolation pins the violation predicate deterministically: a
// stale serve after a session write must count, an equal-or-newer serve
// must not, and reads outside any session (expect 0) never count.
func TestIsRMWViolation(t *testing.T) {
	cases := []struct {
		name     string
		expect   uint64
		served   uint64
		notFound bool
		want     bool
	}{
		{name: "stale serve after session write", expect: 3, served: 2, want: true},
		{name: "serve of the never-written version after a write", expect: 1, served: 0, want: true},
		{name: "equal-version serve", expect: 3, served: 3, want: false},
		{name: "newer-version serve", expect: 3, served: 5, want: false},
		{name: "no session expectation", expect: 0, served: 0, want: false},
		{name: "no session expectation, versioned serve", expect: 0, served: 7, want: false},
		{name: "not-found carries no copy", expect: 3, served: 0, notFound: true, want: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := isRMWViolation(tc.expect, tc.served, tc.notFound); got != tc.want {
				t.Errorf("isRMWViolation(%d, %d, %v) = %v, want %v",
					tc.expect, tc.served, tc.notFound, got, tc.want)
			}
		})
	}
}

// TestSessionTokenRatchet checks the token only moves forward and degrades
// safely when nil (a token-less session).
func TestSessionTokenRatchet(t *testing.T) {
	tok := NewSessionToken()
	if got := tok.MinVersion("d"); got != 0 {
		t.Fatalf("fresh token floor = %d, want 0", got)
	}
	tok.Observe("d", 4)
	tok.Observe("d", 2) // older write observation must not lower the floor
	if got := tok.MinVersion("d"); got != 4 {
		t.Fatalf("floor after observe(4), observe(2) = %d, want 4", got)
	}
	tok.Observe("e", 1)
	if got, gotE := tok.MinVersion("d"), tok.MinVersion("e"); got != 4 || gotE != 1 {
		t.Fatalf("per-doc floors = %d/%d, want 4/1", got, gotE)
	}
	var nilTok *SessionToken
	nilTok.Observe("d", 9) // must not panic
	if got := nilTok.MinVersion("d"); got != 0 {
		t.Fatalf("nil token floor = %d, want 0", got)
	}
}

// TestSessionReadMyWrites runs the guarantee end to end on a live two-node
// tree: a leaf-cached copy goes stale the instant the session writes, and a
// tokened read injected at the leaf immediately after must come back at the
// written version (zero violations), with the server recording the session
// refresh that bypassed the stale copy.
func TestSessionReadMyWrites(t *testing.T) {
	tr := tree.MustFromParents([]int{tree.NoParent, 0})
	c, err := New(tr, map[core.DocID][]byte{"d": []byte("v0")}, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	warmCopy(t, c, 1, "d")

	tok := NewSessionToken()
	for i := 1; i <= 5; i++ {
		ver, err := c.RepublishSession("d", []byte(fmt.Sprintf("v%d", i)), tok)
		if err != nil {
			t.Fatal(err)
		}
		if ver != uint64(i) || tok.MinVersion("d") != uint64(i) {
			t.Fatalf("write %d assigned version %d, token floor %d", i, ver, tok.MinVersion("d"))
		}
		// Read through the other edge immediately — the write is still
		// diffusing, so without the token this is exactly the stale window.
		if err := c.InjectSession(1, "d", tok, true); err != nil {
			t.Fatal(err)
		}
		if left := c.Drain(5 * time.Second); left != 0 {
			t.Fatalf("write %d: %d session reads unanswered", i, left)
		}
	}
	if v := c.RMWViolations(); v != 0 {
		t.Fatalf("%d read-my-writes violations with tokens, want 0", v)
	}
	sts, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var refreshes int64
	for _, st := range sts {
		if st != nil {
			refreshes += st.SessionRefreshes
		}
	}
	if refreshes == 0 {
		t.Fatal("no session refreshes recorded: the token never gated a stale copy")
	}
}
