package cluster

// Process-backed topology registry: ProcCluster assembles the same routing
// tree the in-process Cluster does, but every node is a separate OS process
// (an exec of `webwave-cluster node ...`) speaking the wire protocol over
// real TCP. The failure injection is correspondingly real — KillNode is
// SIGKILL, RestartNode is a re-exec onto the same address and DataDir (the
// disk tier's journal makes it a warm restart), and Stop is SIGTERM with a
// drain deadline before SIGKILL reaps stragglers.
//
// Both harnesses satisfy the Harness interface, so scenario code written
// against goroutine clusters drives a few hundred processes unchanged.

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"webwave/internal/core"
	"webwave/internal/netproto"
	"webwave/internal/transport"
	"webwave/internal/tree"
)

// Harness is the failure-injection surface shared by the in-process Cluster
// and the process-backed ProcCluster: inject traffic, scrape stats and
// topology, kill/restart nodes, tear down. Scenario engines (workload's
// chaos and swarm runners) are written against this, not a concrete type.
type Harness interface {
	Inject(origin int, doc core.DocID) error
	Responses() int64
	ServedBy() map[int]int64
	Drain(timeout time.Duration) int64
	Stats() ([]*netproto.Stats, error)
	Topology() ([]int, error)
	KillNode(v int) bool
	RestartNode(v int) error
	NodeDead(v int) bool
	Tree() *tree.Tree
	Stop()
}

var (
	_ Harness = (*Cluster)(nil)
	_ Harness = (*ProcCluster)(nil)
)

// ProcConfig parameterizes a process-backed cluster.
type ProcConfig struct {
	// Command is the argv prefix each node process is exec'd with; node
	// flags (-id, -addr, ...) are appended. Typically
	// {"bin/webwave-cluster", "node"}; tests pass their own re-exec'd
	// binary. Required.
	Command []string
	// Env entries are appended to the parent's environment for every node
	// process.
	Env []string
	// WorkDir receives per-node DataDirs (WorkDir/data/node-<id>) and
	// stderr logs (WorkDir/logs/node-<id>.log). Empty creates a temp dir
	// that Stop removes.
	WorkDir string
	// BasePort fixes the address plan to 127.0.0.1:BasePort+id; 0 probes
	// the kernel for a block of free ports instead.
	BasePort int

	NumDocs  int // root publishes the deterministic SwarmDocs catalog
	DocBytes int

	GossipPeriod    time.Duration // default 20ms
	DiffusionPeriod time.Duration // default 40ms
	Window          time.Duration // default 400ms
	HeartbeatPeriod time.Duration // default 50ms (0 keeps the default; <0 disables)
	HeartbeatMisses int

	CacheBudgetBytes int64
	DiskBudgetBytes  int64

	// SpawnBudget bounds how long NewProc waits for each node's readiness
	// handshake (default 10s — a hundred execs share one machine).
	SpawnBudget time.Duration
	// DrainTimeout is Stop's SIGTERM grace before SIGKILL (default 5s).
	DrainTimeout time.Duration
	// ScrapeTimeout bounds each node's stats reply; a slow or wedged node
	// costs one timeout and a scrape_errors tick, not the whole scrape
	// (default 2s).
	ScrapeTimeout time.Duration
}

func (cfg ProcConfig) withDefaults() ProcConfig {
	if cfg.GossipPeriod <= 0 {
		cfg.GossipPeriod = 20 * time.Millisecond
	}
	if cfg.DiffusionPeriod <= 0 {
		cfg.DiffusionPeriod = 40 * time.Millisecond
	}
	if cfg.Window <= 0 {
		cfg.Window = 400 * time.Millisecond
	}
	if cfg.HeartbeatPeriod == 0 {
		cfg.HeartbeatPeriod = 50 * time.Millisecond
	} else if cfg.HeartbeatPeriod < 0 {
		cfg.HeartbeatPeriod = 0
	}
	if cfg.NumDocs <= 0 {
		cfg.NumDocs = 16
	}
	if cfg.DocBytes <= 0 {
		cfg.DocBytes = 512
	}
	if cfg.SpawnBudget <= 0 {
		cfg.SpawnBudget = 10 * time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	if cfg.ScrapeTimeout <= 0 {
		cfg.ScrapeTimeout = 2 * time.Second
	}
	return cfg
}

// procNode is one node's registry entry across incarnations: the argv it is
// (re-)exec'd with, its fixed address, and the current process.
type procNode struct {
	argv   []string
	addr   string
	cmd    *exec.Cmd
	exited chan struct{} // closed by the reaper of the current incarnation
}

// ProcCluster is a running tree of node processes.
type ProcCluster struct {
	t   *tree.Tree
	cfg ProcConfig
	net transport.TCPNetwork

	regMu   sync.Mutex
	nodes   []*procNode
	dead    []bool
	tmpWork bool // WorkDir was auto-created; Stop removes it

	injectMu    sync.Mutex
	injectConns []transport.Conn
	reqSeq      []uint64

	outstanding atomic.Int64
	responses   atomic.Int64
	servedByMu  sync.Mutex
	servedBy    map[int]int64

	scrapeErrs      atomic.Int64
	forcedTeardowns atomic.Int64
	stopped         chan struct{}
}

// freePorts asks the kernel for n distinct free TCP ports by holding n
// listeners open at once (so no port repeats), then releasing them. The
// window between release and the node binding is racy in principle; in
// practice the swarm owns the machine for the run, and SO_REUSEADDR plus
// bind retries absorb stragglers.
func freePorts(n int) ([]int, error) {
	listeners := make([]net.Listener, 0, n)
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()
	ports := make([]int, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("probe free port: %w", err)
		}
		listeners = append(listeners, l)
		ports[i] = l.Addr().(*net.TCPAddr).Port
	}
	return ports, nil
}

// NewProc spawns one OS process per tree node (parents before children) and
// waits for every node to answer a ping — the same handshake failover uses —
// before returning. The handshaken connections double as the injection
// conns.
func NewProc(t *tree.Tree, cfg ProcConfig) (*ProcCluster, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Command) == 0 {
		return nil, fmt.Errorf("proc: ProcConfig.Command is required")
	}
	p := &ProcCluster{
		t:           t,
		cfg:         cfg,
		net:         transport.TCPNetwork{DialTimeout: 2 * time.Second},
		nodes:       make([]*procNode, t.Len()),
		dead:        make([]bool, t.Len()),
		injectConns: make([]transport.Conn, t.Len()),
		reqSeq:      make([]uint64, t.Len()),
		servedBy:    make(map[int]int64),
		stopped:     make(chan struct{}),
	}
	if p.cfg.WorkDir == "" {
		dir, err := os.MkdirTemp("", "webwave-swarm-")
		if err != nil {
			return nil, fmt.Errorf("proc: workdir: %w", err)
		}
		p.cfg.WorkDir = dir
		p.tmpWork = true
	}
	for _, sub := range []string{"data", "logs"} {
		if err := os.MkdirAll(filepath.Join(p.cfg.WorkDir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("proc: workdir: %w", err)
		}
	}

	addrs := make([]string, t.Len())
	if cfg.BasePort > 0 {
		for v := range addrs {
			addrs[v] = fmt.Sprintf("127.0.0.1:%d", cfg.BasePort+v)
		}
	} else {
		ports, err := freePorts(t.Len())
		if err != nil {
			return nil, fmt.Errorf("proc: %w", err)
		}
		for v := range addrs {
			addrs[v] = fmt.Sprintf("127.0.0.1:%d", ports[v])
		}
	}

	// Build every node's argv up front (all addresses are fixed), then exec
	// in BFS order so most children find their parent listening on the
	// first dial; the -dial-attempts budget covers the rest.
	for _, v := range t.BFSOrder() {
		argv := p.nodeArgv(v, addrs)
		p.nodes[v] = &procNode{argv: argv, addr: addrs[v]}
		if err := p.spawn(v); err != nil {
			p.Stop()
			return nil, fmt.Errorf("proc: node %d: %w", v, err)
		}
	}

	// Readiness: handshake every node in parallel. A node that never
	// answers within the spawn budget fails the whole bring-up — a swarm
	// that starts degraded would poison every measurement after it.
	errs := make([]error, t.Len())
	var wg sync.WaitGroup
	for v := 0; v < t.Len(); v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			conn, err := p.handshake(addrs[v], cfg.SpawnBudget)
			if err != nil {
				errs[v] = err
				return
			}
			p.injectMu.Lock()
			p.injectConns[v] = conn
			p.injectMu.Unlock()
			go p.collect(conn)
		}(v)
	}
	wg.Wait()
	for v, err := range errs {
		if err != nil {
			p.Stop()
			return nil, fmt.Errorf("proc: node %d not ready: %w", v, err)
		}
	}
	return p, nil
}

// nodeArgv assembles the node-subcommand argv for node v (without the
// Command prefix).
func (p *ProcCluster) nodeArgv(v int, addrs []string) []string {
	cfg := p.cfg
	d := func(t time.Duration) string { return t.String() }
	argv := []string{
		"-id", strconv.Itoa(v),
		"-addr", addrs[v],
		"-gossip", d(cfg.GossipPeriod),
		"-diffusion", d(cfg.DiffusionPeriod),
		"-window", d(cfg.Window),
		"-heartbeat", d(cfg.HeartbeatPeriod),
		"-data-dir", filepath.Join(cfg.WorkDir, "data", fmt.Sprintf("node-%d", v)),
		"-dial-attempts", "10",
		"-drain", d(cfg.DrainTimeout),
	}
	if cfg.HeartbeatMisses > 0 {
		argv = append(argv, "-heartbeat-misses", strconv.Itoa(cfg.HeartbeatMisses))
	}
	if cfg.CacheBudgetBytes > 0 {
		argv = append(argv, "-cache-budget", strconv.FormatInt(cfg.CacheBudgetBytes, 10))
	}
	if cfg.DiskBudgetBytes > 0 {
		argv = append(argv, "-disk-budget", strconv.FormatInt(cfg.DiskBudgetBytes, 10))
	}
	if v == p.t.Root() {
		argv = append(argv,
			"-docs", strconv.Itoa(cfg.NumDocs),
			"-doc-bytes", strconv.Itoa(cfg.DocBytes),
		)
	} else {
		parent := p.t.Parent(v)
		argv = append(argv,
			"-parent-id", strconv.Itoa(parent),
			"-parent-addr", addrs[parent],
			"-home-addr", addrs[p.t.Root()],
		)
		anc := ""
		for a := parent; a >= 0; a = p.t.Parent(a) {
			if anc != "" {
				anc += ","
			}
			anc += addrs[a]
		}
		argv = append(argv, "-ancestors", anc)
	}
	return argv
}

// spawn execs node v's current argv and installs the reaper for the new
// incarnation. Caller holds no locks; the node must not be running.
func (p *ProcCluster) spawn(v int) error {
	node := p.nodes[v]
	logPath := filepath.Join(p.cfg.WorkDir, "logs", fmt.Sprintf("node-%d.log", v))
	logf, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("open log: %w", err)
	}
	argv := append(append([]string(nil), p.cfg.Command[1:]...), node.argv...)
	cmd := exec.Command(p.cfg.Command[0], argv...)
	cmd.Env = append(os.Environ(), p.cfg.Env...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	// On linux the kernel SIGKILLs the child if this process dies first, so
	// a crashed or interrupted harness cannot strand a hundred node
	// processes.
	cmd.SysProcAttr = nodeSysProcAttr()
	if err := cmd.Start(); err != nil {
		logf.Close()
		return fmt.Errorf("exec %s: %w", p.cfg.Command[0], err)
	}
	exited := make(chan struct{})
	p.regMu.Lock()
	node.cmd = cmd
	node.exited = exited
	p.regMu.Unlock()
	go func() {
		cmd.Wait() // the exit cause is judged by whoever requested it
		logf.Close()
		close(exited)
	}()
	return nil
}

// handshake dials addr until it answers a ping or the budget runs out. The
// returned conn carries the completed handshake and is ready for traffic.
func (p *ProcCluster) handshake(addr string, budget time.Duration) (transport.Conn, error) {
	deadline := time.Now().Add(budget)
	backoff := &transport.Backoff{Base: 25 * time.Millisecond, Cap: 250 * time.Millisecond}
	var lastErr error = fmt.Errorf("no attempt completed")
	for {
		conn, err := p.net.Dial(addr)
		if err == nil {
			err = conn.Send(&netproto.Envelope{Kind: netproto.TypePing, From: -1})
			if err == nil {
				pong := make(chan error, 1)
				go func() {
					for {
						env, err := conn.Recv()
						if err != nil {
							pong <- err
							return
						}
						kind := env.Kind
						netproto.PutEnvelope(env)
						if kind == netproto.TypePong {
							pong <- nil
							return
						}
					}
				}()
				t := time.NewTimer(time.Second)
				select {
				case err = <-pong:
					t.Stop()
					if err == nil {
						return conn, nil
					}
					conn.Close()
				case <-t.C:
					conn.Close() // unblocks the Recv goroutine
					<-pong
					err = fmt.Errorf("ping unanswered after 1s")
				}
			} else {
				conn.Close()
			}
		}
		lastErr = err
		if !time.Now().Before(deadline) {
			return nil, lastErr
		}
		t := time.NewTimer(backoff.Next())
		select {
		case <-p.stopped:
			t.Stop()
			return nil, fmt.Errorf("cluster stopping")
		case <-t.C:
		}
	}
}

func (p *ProcCluster) collect(conn transport.Conn) {
	for {
		env, err := conn.Recv()
		if err != nil {
			return
		}
		if env.Kind != netproto.TypeResponse {
			netproto.PutEnvelope(env)
			continue
		}
		p.outstanding.Add(-1)
		p.responses.Add(1)
		p.servedByMu.Lock()
		p.servedBy[env.ServedBy]++
		p.servedByMu.Unlock()
		netproto.PutEnvelope(env)
	}
}

// Inject sends one client request for doc entering the tree at origin. An
// origin marked dead fails immediately — a send into a SIGKILLed process's
// half-open socket would otherwise sit on kernel buffers instead of
// erroring, hiding the failure from the scenario's accounting.
func (p *ProcCluster) Inject(origin int, doc core.DocID) error {
	if origin < 0 || origin >= p.t.Len() {
		return fmt.Errorf("proc: origin %d out of range", origin)
	}
	if p.NodeDead(origin) {
		return fmt.Errorf("proc: origin %d is dead", origin)
	}
	p.injectMu.Lock()
	p.reqSeq[origin]++
	seq := p.reqSeq[origin]
	conn := p.injectConns[origin]
	p.injectMu.Unlock()
	if conn == nil {
		return fmt.Errorf("proc: origin %d has no injection conn", origin)
	}
	p.outstanding.Add(1)
	err := conn.Send(&netproto.Envelope{
		Kind: netproto.TypeRequest, From: -1, To: origin,
		Origin: origin, ReqID: seq, Doc: doc,
	})
	if err != nil {
		p.outstanding.Add(-1)
	}
	return err
}

// Drain waits until every injected request has been answered or the timeout
// elapses, returning the number still outstanding. Requests that died with
// a killed node never resolve; callers account for them via availability,
// not Drain.
func (p *ProcCluster) Drain(timeout time.Duration) int64 {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if p.outstanding.Load() <= 0 {
			return 0
		}
		time.Sleep(5 * time.Millisecond)
	}
	return p.outstanding.Load()
}

// Responses returns the number of answered requests so far.
func (p *ProcCluster) Responses() int64 { return p.responses.Load() }

// ServedBy returns how many requests each node has served (by responses).
func (p *ProcCluster) ServedBy() map[int]int64 {
	p.servedByMu.Lock()
	defer p.servedByMu.Unlock()
	out := make(map[int]int64, len(p.servedBy))
	for k, v := range p.servedBy {
		out[k] = v
	}
	return out
}

// Tree returns the routing tree the cluster was built on.
func (p *ProcCluster) Tree() *tree.Tree { return p.t }

// Addr returns node v's listen address (empty when out of range).
func (p *ProcCluster) Addr(v int) string {
	if v < 0 || v >= len(p.nodes) {
		return ""
	}
	return p.nodes[v].addr
}

// WorkDir returns the run's working directory (logs and data dirs).
func (p *ProcCluster) WorkDir() string { return p.cfg.WorkDir }

// Pid returns node v's current process id, or 0 when it is dead.
func (p *ProcCluster) Pid(v int) int {
	p.regMu.Lock()
	defer p.regMu.Unlock()
	if v < 0 || v >= len(p.nodes) || p.dead[v] || p.nodes[v].cmd == nil {
		return 0
	}
	return p.nodes[v].cmd.Process.Pid
}

// NodeDead reports whether node v is currently killed.
func (p *ProcCluster) NodeDead(v int) bool {
	if v < 0 || v >= len(p.dead) {
		return true
	}
	p.regMu.Lock()
	defer p.regMu.Unlock()
	return p.dead[v]
}

// KillNode SIGKILLs node v's process — no drain, no goodbye, the same
// failure a kernel panic or OOM kill presents to the rest of the tree — and
// waits for the corpse to be reaped. It reports whether a live node was
// actually killed.
func (p *ProcCluster) KillNode(v int) bool {
	if v < 0 || v >= len(p.nodes) {
		return false
	}
	p.regMu.Lock()
	if p.dead[v] || p.nodes[v].cmd == nil {
		p.regMu.Unlock()
		return false
	}
	p.dead[v] = true
	cmd, exited := p.nodes[v].cmd, p.nodes[v].exited
	p.regMu.Unlock()
	p.injectMu.Lock()
	if conn := p.injectConns[v]; conn != nil {
		conn.Close()
		p.injectConns[v] = nil
	}
	p.injectMu.Unlock()
	cmd.Process.Kill()
	<-exited
	return true
}

// RestartNode re-execs a killed node with its original argv: same address
// (SO_REUSEADDR and bind retries reclaim it from the dead incarnation's
// sockets), same DataDir (the journal replays, so the node comes back warm
// and re-announces what it held). The revived process must answer the
// readiness handshake before the node is marked live again.
func (p *ProcCluster) RestartNode(v int) error {
	if v < 0 || v >= len(p.nodes) {
		return fmt.Errorf("proc: restart node %d out of range", v)
	}
	p.regMu.Lock()
	if !p.dead[v] {
		p.regMu.Unlock()
		return fmt.Errorf("proc: restart node %d: not dead", v)
	}
	p.regMu.Unlock()
	if err := p.spawn(v); err != nil {
		return fmt.Errorf("proc: restart node %d: %w", v, err)
	}
	conn, err := p.handshake(p.nodes[v].addr, p.cfg.SpawnBudget)
	if err != nil {
		p.regMu.Lock()
		cmd, exited := p.nodes[v].cmd, p.nodes[v].exited
		p.regMu.Unlock()
		cmd.Process.Kill()
		<-exited
		return fmt.Errorf("proc: restart node %d: not ready: %w", v, err)
	}
	p.injectMu.Lock()
	p.injectConns[v] = conn
	p.injectMu.Unlock()
	p.regMu.Lock()
	p.dead[v] = false
	p.regMu.Unlock()
	go p.collect(conn)
	return nil
}

// Stats scrapes every live node in parallel and returns the replies ordered
// by node id. Dead nodes yield nil entries; a node that cannot be reached or
// does not answer within ScrapeTimeout also yields nil and ticks
// ScrapeErrors — partial results beat a scrape that hangs on one wedged
// process out of a hundred. The error return is always nil (kept for
// Harness parity with the in-process cluster).
func (p *ProcCluster) Stats() ([]*netproto.Stats, error) {
	out := make([]*netproto.Stats, p.t.Len())
	var wg sync.WaitGroup
	for v := 0; v < p.t.Len(); v++ {
		if p.NodeDead(v) {
			continue
		}
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			st, err := p.scrapeOne(v)
			if err != nil {
				if !p.NodeDead(v) { // a kill racing the scrape is not an error
					p.scrapeErrs.Add(1)
				}
				return
			}
			out[v] = st
		}(v)
	}
	wg.Wait()
	return out, nil
}

// scrapeOne queries node v's stats over a fresh connection, bounded by
// ScrapeTimeout (the transport has no read deadline, so the timer closes
// the conn to unblock the read).
func (p *ProcCluster) scrapeOne(v int) (*netproto.Stats, error) {
	conn, err := p.net.Dial(p.nodes[v].addr)
	if err != nil {
		return nil, fmt.Errorf("stats dial %d: %w", v, err)
	}
	defer conn.Close()
	if err := conn.Send(&netproto.Envelope{Kind: netproto.TypeStatsQuery, From: -1, To: v}); err != nil {
		return nil, fmt.Errorf("stats query %d: %w", v, err)
	}
	timer := time.AfterFunc(p.cfg.ScrapeTimeout, func() { conn.Close() })
	defer timer.Stop()
	for {
		env, err := conn.Recv()
		if err != nil {
			return nil, fmt.Errorf("stats reply %d: %w", v, err)
		}
		if env.Kind == netproto.TypeStatsReply && env.Stats != nil {
			st := env.Stats
			netproto.PutEnvelope(env)
			return st, nil
		}
		netproto.PutEnvelope(env)
	}
}

// ScrapeErrors returns how many per-node stats scrapes have failed or timed
// out so far (excluding nodes that were dead or killed mid-scrape).
func (p *ProcCluster) ScrapeErrors() int64 { return p.scrapeErrs.Load() }

// Topology scrapes each live node's current parent id — the repaired
// routing tree after failures, as the nodes themselves see it. Dead and
// unreachable nodes report -1; index Root() is always -1.
func (p *ProcCluster) Topology() ([]int, error) {
	sts, err := p.Stats()
	if err != nil {
		return nil, err
	}
	out := make([]int, len(sts))
	for v, st := range sts {
		out[v] = -1
		if st != nil {
			out[v] = st.ParentID
		}
	}
	return out, nil
}

// ForcedTeardowns returns how many nodes failed to drain within
// DrainTimeout at Stop and had to be SIGKILLed — 0 after a clean run.
func (p *ProcCluster) ForcedTeardowns() int64 { return p.forcedTeardowns.Load() }

// Stop tears the swarm down: SIGTERM to every live node (graceful drain),
// then SIGKILL for any process still running after DrainTimeout. Stragglers
// are counted in ForcedTeardowns. Safe to call more than once.
func (p *ProcCluster) Stop() {
	select {
	case <-p.stopped:
	default:
		close(p.stopped)
	}
	p.injectMu.Lock()
	for v, conn := range p.injectConns {
		if conn != nil {
			conn.Close()
			p.injectConns[v] = nil
		}
	}
	p.injectMu.Unlock()

	type victim struct {
		cmd    *exec.Cmd
		exited chan struct{}
	}
	var victims []victim
	p.regMu.Lock()
	for v, node := range p.nodes {
		if node == nil || node.cmd == nil || p.dead[v] {
			continue
		}
		p.dead[v] = true
		victims = append(victims, victim{node.cmd, node.exited})
	}
	p.regMu.Unlock()

	for _, vic := range victims {
		signalTerm(vic.cmd.Process)
	}
	deadline := time.NewTimer(p.cfg.DrainTimeout)
	defer deadline.Stop()
	for _, vic := range victims {
		select {
		case <-vic.exited:
		case <-deadline.C:
			// Budget spent: everything still running is killed outright.
			for _, rest := range victims {
				select {
				case <-rest.exited:
				default:
					p.forcedTeardowns.Add(1)
					rest.cmd.Process.Kill()
					<-rest.exited
				}
			}
			if p.tmpWork {
				os.RemoveAll(p.cfg.WorkDir)
			}
			return
		}
	}
	if p.tmpWork {
		os.RemoveAll(p.cfg.WorkDir)
	}
}
