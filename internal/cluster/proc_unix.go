//go:build unix

package cluster

import (
	"os"
	"syscall"
)

// signalTerm asks a node process to drain gracefully.
func signalTerm(proc *os.Process) {
	proc.Signal(syscall.SIGTERM)
}
