package cluster

import (
	"testing"
	"time"

	"webwave/internal/core"
	"webwave/internal/tree"
)

// warmCopy pumps reads for doc at node until a scrape shows the node
// caching its own copy (the root has delegated duty down).
func warmCopy(t *testing.T, c *Cluster, node int, doc core.DocID) {
	t.Helper()
	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		for i := 0; i < 40; i++ {
			if err := c.Inject(node, doc); err != nil {
				t.Fatal(err)
			}
		}
		c.Drain(2 * time.Second)
		cached, err := c.CachedDocs()
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range cached[node] {
			if d == doc {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("node %d never cached %q", node, doc)
}

// TestRepublishConvergesAndBoundsStaleness warms a delegated copy at a
// leaf, republishes the document at its origin, and checks the write
// diffuses: the cluster's version advances, the leaf applies a write frame,
// and post-propagation reads come back fresh — the staleness log shows
// latest-version serves, not a tail of stale ones.
func TestRepublishConvergesAndBoundsStaleness(t *testing.T) {
	tr := tree.MustFromParents([]int{tree.NoParent, 0})
	c, err := New(tr, map[core.DocID][]byte{"d": []byte("v0")}, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	warmCopy(t, c, 1, "d")

	ver, err := c.Republish("d", []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	if ver != 1 || c.LatestVersion("d") != 1 {
		t.Fatalf("assigned version %d, latest %d, want 1/1", ver, c.LatestVersion("d"))
	}

	// The write must reach the leaf as a republish or an invalidate.
	deadline := time.Now().Add(5 * time.Second)
	applied := false
	for !applied && time.Now().Before(deadline) {
		sts, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		applied = sts[1] != nil && sts[1].RepublishesIn+sts[1].InvalidationsIn >= 1
		time.Sleep(20 * time.Millisecond)
	}
	if !applied {
		t.Fatal("write never diffused to the leaf")
	}

	// Post-propagation reads are staleness-sampled and come back fresh.
	for i := 0; i < 30; i++ {
		if err := c.Inject(1, "d"); err != nil {
			t.Fatal(err)
		}
	}
	if left := c.Drain(5 * time.Second); left != 0 {
		t.Fatalf("%d post-write reads unanswered", left)
	}
	stale, total := c.StaleServed()
	if total < 30 {
		t.Fatalf("staleness samples = %d, want >= 30 (every post-write response sampled)", total)
	}
	if stale == total {
		t.Fatalf("all %d sampled responses were stale; write never took effect", total)
	}
	sum := c.StalenessSummary()
	if sum.N != int(total) {
		t.Errorf("summary over %d samples, want %d", sum.N, total)
	}
	if sum.Min != 0 {
		t.Errorf("min staleness %v, want 0 (fresh serves present)", sum.Min)
	}
}

// TestInvalidateLeaseRefreshesThroughTheTree invalidates a delegated copy
// (version-only at the leaf) and storms the leaf with reads: the leaf must
// converge back to serving by refreshing through its subtree lease — one
// coalesced upward fetch, visible as a lease-refresh counter — and every
// request still gets answered.
func TestInvalidateLeaseRefreshesThroughTheTree(t *testing.T) {
	tr := tree.MustFromParents([]int{tree.NoParent, 0})
	c, err := New(tr, map[core.DocID][]byte{"d": []byte("v0")}, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	warmCopy(t, c, 1, "d")

	if _, err := c.Invalidate("d", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Storm the leaf: all of these either hit the refreshed copy or coalesce
	// behind the single lease fetch.
	deadline := time.Now().Add(8 * time.Second)
	refreshed := false
	for !refreshed && time.Now().Before(deadline) {
		for i := 0; i < 40; i++ {
			if err := c.Inject(1, "d"); err != nil {
				t.Fatal(err)
			}
		}
		if left := c.Drain(5 * time.Second); left != 0 {
			t.Fatalf("%d storm reads unanswered", left)
		}
		sts, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		// The leaf either lease-refreshed, or the root republished the body
		// down the duty edge before the storm hit — both converge.
		refreshed = sts[1] != nil &&
			(sts[1].LeaseRefreshes >= 1 || sts[1].RepublishesIn >= 1)
		time.Sleep(10 * time.Millisecond)
	}
	if !refreshed {
		t.Fatal("leaf never re-acquired the document after the invalidation")
	}
	if c.LatestVersion("d") != 1 {
		t.Fatalf("latest version = %d, want 1", c.LatestVersion("d"))
	}
	stale, total := c.StaleServed()
	if total == 0 {
		t.Fatal("no staleness samples recorded for a written document")
	}
	if stale == total {
		t.Fatal("every post-invalidate response was stale; lease refresh ineffective")
	}
}

// TestStalenessSummaryEmptyWithoutWrites: read-only traffic produces no
// staleness samples — there is no version history to be stale against.
func TestStalenessSummaryEmptyWithoutWrites(t *testing.T) {
	tr := tree.MustFromParents([]int{tree.NoParent})
	c, err := New(tr, map[core.DocID][]byte{"d": []byte("x")}, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for i := 0; i < 10; i++ {
		if err := c.Inject(0, "d"); err != nil {
			t.Fatal(err)
		}
	}
	c.Drain(2 * time.Second)
	if sum := c.StalenessSummary(); sum.N != 0 {
		t.Errorf("staleness samples = %d without writes, want 0", sum.N)
	}
	if _, total := c.StaleServed(); total != 0 {
		t.Errorf("stale-served total = %d without writes, want 0", total)
	}
}
