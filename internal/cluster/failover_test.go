package cluster

import (
	"runtime"
	"testing"
	"time"

	"webwave/internal/core"
	"webwave/internal/netproto"
	"webwave/internal/transport"
	"webwave/internal/tree"
)

// TestKillRestartRepairsTreeOverTCP is the live-socket acceptance test for
// the fault-tolerant runtime: killing an interior node of a real TCP
// cluster must repair the tree (the stranded child fails over to the
// grandparent: reconnects > 0, orphaned back to 0), restarting the node
// must re-attach it on its original address, traffic must flow end to end
// afterward, and stopping the whole cluster must not leak goroutines.
func TestKillRestartRepairsTreeOverTCP(t *testing.T) {
	before := runtime.NumGoroutine()

	tr := tree.MustFromParents([]int{tree.NoParent, 0, 1})
	docs := map[core.DocID][]byte{"d": []byte("x")}
	cfg := smallConfig()
	cfg.Network = transport.TCPNetwork{}
	cfg.AddrFor = func(int) string { return "127.0.0.1:0" }
	cfg.Ancestors = true
	cfg.HeartbeatPeriod = 25 * time.Millisecond
	c, err := New(tr, docs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	// Warm traffic through the intact chain.
	for i := 0; i < 20; i++ {
		if err := c.Inject(2, "d"); err != nil {
			t.Fatal(err)
		}
	}
	if left := c.Drain(5 * time.Second); left != 0 {
		t.Fatalf("%d warmup requests unanswered", left)
	}

	if !c.KillNode(1) {
		t.Fatal("KillNode(1) reported no kill")
	}
	waitNodeStats(t, c, 2, "node 2 failed over to the root", func(st *netproto.Stats) bool {
		return st.Orphaned == 0 && st.ParentID == 0 && st.Reconnects >= 1
	})

	// The repaired (flattened) tree serves requests entering at the leaf.
	got := c.Responses()
	for i := 0; i < 20; i++ {
		if err := c.Inject(2, "d"); err != nil {
			t.Fatal(err)
		}
	}
	if left := c.Drain(5 * time.Second); left != 0 {
		t.Fatalf("%d requests unanswered on the repaired tree", left)
	}
	if c.Responses() != got+20 {
		t.Fatalf("responses = %d, want %d", c.Responses(), got+20)
	}

	// Restart: the node rebinds its old address and re-attaches upward.
	if err := c.RestartNode(1); err != nil {
		t.Fatal(err)
	}
	waitNodeStats(t, c, 1, "restarted node re-attached", func(st *netproto.Stats) bool {
		return st.Orphaned == 0 && st.ParentID == 0
	})
	topo, err := c.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if topo[0] != -1 || topo[1] != 0 {
		t.Fatalf("repaired topology = %v, want node 1 under the root", topo)
	}
	if topo[2] != 0 && topo[2] != 1 {
		t.Fatalf("node 2's parent = %d, want a live ancestor", topo[2])
	}
	for i := 0; i < 20; i++ {
		if err := c.Inject(1, "d"); err != nil {
			t.Fatal(err)
		}
		if err := c.Inject(2, "d"); err != nil {
			t.Fatal(err)
		}
	}
	if left := c.Drain(5 * time.Second); left != 0 {
		t.Fatalf("%d requests unanswered after restart", left)
	}

	// Goroutine-leak check: after a full stop everything the kill/restart
	// cycle spawned (failover hunts, read loops, revived servers) unwinds.
	c.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+3 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after stop — leak", before, runtime.NumGoroutine())
}
