package cluster

import (
	"math/rand"
	"testing"
	"time"

	"webwave/internal/core"
	"webwave/internal/fold"
	"webwave/internal/trace"
	"webwave/internal/transport"
	"webwave/internal/tree"
)

func smallConfig() Config {
	return Config{
		GossipPeriod:    15 * time.Millisecond,
		DiffusionPeriod: 30 * time.Millisecond,
		Window:          300 * time.Millisecond,
		Tunneling:       true,
	}
}

func docsFor(d *trace.Demand) map[core.DocID][]byte {
	out := make(map[core.DocID][]byte, len(d.Docs))
	for _, doc := range d.Docs {
		out[doc.ID] = []byte("body:" + string(doc.ID))
	}
	return out
}

func TestClusterServesEveryRequest(t *testing.T) {
	tr := tree.MustFromParents([]int{tree.NoParent, 0, 0})
	rng := rand.New(rand.NewSource(1))
	demand, err := trace.ZipfDemand(tr, trace.ZipfDemandConfig{
		NumDocs: 4, Skew: 1, TotalRate: 1500, LeavesOnly: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(tr, docsFor(demand), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	sched := trace.PoissonSchedule(demand, 1.5, rng)
	if err := c.Play(sched, 1.0); err != nil {
		t.Fatal(err)
	}
	if left := c.Drain(5 * time.Second); left != 0 {
		t.Fatalf("%d of %d requests unanswered", left, len(sched))
	}
	if got := c.Responses(); got != int64(len(sched)) {
		t.Errorf("responses = %d, want %d", got, len(sched))
	}
}

func TestClusterSpreadsLoadOffTheRoot(t *testing.T) {
	tr := tree.MustFromParents([]int{tree.NoParent, 0, 0, 1, 1, 2, 2})
	rng := rand.New(rand.NewSource(2))
	demand, err := trace.ZipfDemand(tr, trace.ZipfDemandConfig{
		NumDocs: 6, Skew: 1, TotalRate: 3000, LeavesOnly: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(tr, docsFor(demand), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	sched := trace.PoissonSchedule(demand, 2.5, rng)
	if err := c.Play(sched, 1.0); err != nil {
		t.Fatal(err)
	}
	c.Drain(5 * time.Second)

	served := c.ServedVector()
	total := core.SumVec(served)
	if total == 0 {
		t.Fatal("nothing served")
	}
	rootShare := served[tr.Root()] / total
	if rootShare > 0.7 {
		t.Errorf("root still serves %.0f%% of requests; caching ineffective", rootShare*100)
	}
	// Several nodes participate.
	participating := 0
	for _, s := range served {
		if s > 0 {
			participating++
		}
	}
	if participating < 4 {
		t.Errorf("only %d nodes serve; want most of the tree", participating)
	}
	// Copies exist beyond the root.
	cached, err := c.CachedDocs()
	if err != nil {
		t.Fatal(err)
	}
	copies := 0
	for v, ds := range cached {
		if v != tr.Root() {
			copies += len(ds)
		}
	}
	if copies == 0 {
		t.Error("no cache copies spread into the tree")
	}
	// Mean hops must beat all-the-way-to-root (depth 2 for the leaves).
	if h := c.MeanHops(); h >= 2 {
		t.Errorf("mean hops = %v; requests not stumbling on en-route copies", h)
	}
}

func TestClusterLoadsVsTLB(t *testing.T) {
	tr := tree.MustFromParents([]int{tree.NoParent, 0, 0})
	rng := rand.New(rand.NewSource(3))
	demand, err := trace.ZipfDemand(tr, trace.ZipfDemandConfig{
		NumDocs: 4, Skew: 0.8, TotalRate: 2000, LeavesOnly: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(tr, docsFor(demand), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	sched := trace.PoissonSchedule(demand, 2.5, rng)
	if err := c.Play(sched, 1.0); err != nil {
		t.Fatal(err)
	}
	c.Drain(5 * time.Second)

	loads, err := c.Loads()
	if err != nil {
		t.Fatal(err)
	}
	tlb, err := fold.Compute(tr, demand.NodeTotals())
	if err != nil {
		t.Fatal(err)
	}
	maxLoad, _ := core.MaxVec(loads)
	// Loose steady-state bound: the live max load stays within 3x the TLB
	// optimum (a no-caching system would be at n× for this demand).
	if maxLoad > 3*tlb.MaxLoad() {
		t.Errorf("max live load %v vs TLB %v: balancing ineffective", maxLoad, tlb.MaxLoad())
	}
}

func TestClusterOverTCP(t *testing.T) {
	tr := tree.MustFromParents([]int{tree.NoParent, 0})
	rng := rand.New(rand.NewSource(4))
	demand, err := trace.ZipfDemand(tr, trace.ZipfDemandConfig{
		NumDocs: 2, Skew: 1, TotalRate: 400,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.Network = transport.TCPNetwork{}
	cfg.AddrFor = func(id int) string { return "127.0.0.1:0" }
	c, err := New(tr, docsFor(demand), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	sched := trace.PoissonSchedule(demand, 1.0, rng)
	if err := c.Play(sched, 1.0); err != nil {
		t.Fatal(err)
	}
	if left := c.Drain(5 * time.Second); left != 0 {
		t.Fatalf("%d requests unanswered over TCP", left)
	}
	sts, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 2 || sts[0] == nil || sts[1] == nil {
		t.Fatalf("stats scrape over TCP failed: %v", sts)
	}
}

func TestClusterWithLossyLinks(t *testing.T) {
	tr := tree.MustFromParents([]int{tree.NoParent, 0, 0})
	rng := rand.New(rand.NewSource(5))
	demand, err := trace.ZipfDemand(tr, trace.ZipfDemandConfig{
		NumDocs: 3, Skew: 1, TotalRate: 800, LeavesOnly: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	// Loss on the transport would also drop requests/responses (they are
	// soft-state-tolerant protocol-wise but the harness counts them), so
	// keep loss mild and only assert liveness.
	cfg.Network = transport.NewMemoryNetwork(transport.MemoryOptions{
		Latency: 2 * time.Millisecond, Jitter: 2 * time.Millisecond, Seed: 5,
	})
	c, err := New(tr, docsFor(demand), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	sched := trace.PoissonSchedule(demand, 1.0, rng)
	if err := c.Play(sched, 1.0); err != nil {
		t.Fatal(err)
	}
	if left := c.Drain(5 * time.Second); left != 0 {
		t.Fatalf("%d requests unanswered on jittery links", left)
	}
}

func TestSurvivesNodeFailure(t *testing.T) {
	// Star: root 0 with leaves 1 and 2. Kill leaf 2's server; traffic
	// entering at leaf 1 and the root keeps being served.
	tr := tree.MustFromParents([]int{tree.NoParent, 0, 0})
	docs := map[core.DocID][]byte{"d": []byte("x")}
	c, err := New(tr, docs, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	c.StopServer(2)
	time.Sleep(50 * time.Millisecond)

	for i := 0; i < 50; i++ {
		if err := c.Inject(1, "d"); err != nil {
			t.Fatalf("inject at healthy node: %v", err)
		}
		if err := c.Inject(0, "d"); err != nil {
			t.Fatalf("inject at root: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Responses() < 100 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.Responses(); got < 100 {
		t.Fatalf("only %d of 100 requests served after a leaf failure", got)
	}
}

func TestLatencySummary(t *testing.T) {
	tr := tree.MustFromParents([]int{tree.NoParent, 0})
	rng := rand.New(rand.NewSource(6))
	demand, err := trace.ZipfDemand(tr, trace.ZipfDemandConfig{
		NumDocs: 2, Skew: 1, TotalRate: 500,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(tr, docsFor(demand), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	sched := trace.PoissonSchedule(demand, 1.0, rng)
	if err := c.Play(sched, 1.0); err != nil {
		t.Fatal(err)
	}
	c.Drain(5 * time.Second)
	lat := c.LatencySummary()
	if lat.N != len(sched) {
		t.Errorf("latency samples = %d, want %d", lat.N, len(sched))
	}
	if lat.P50 <= 0 || lat.P50 > 1 {
		t.Errorf("median latency %v s implausible on an in-memory transport", lat.P50)
	}
	if lat.P95 < lat.P50 {
		t.Errorf("p95 %v < p50 %v", lat.P95, lat.P50)
	}
}

func TestInjectValidation(t *testing.T) {
	tr := tree.MustFromParents([]int{tree.NoParent})
	c, err := New(tr, map[core.DocID][]byte{"d": []byte("x")}, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if err := c.Inject(5, "d"); err == nil {
		t.Error("out-of-range origin accepted")
	}
}
