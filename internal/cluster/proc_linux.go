//go:build linux

package cluster

import "syscall"

// nodeSysProcAttr arms the parent-death signal: if the harness process dies
// — crash, SIGKILL, a test binary torn down by a timeout — the kernel
// SIGKILLs every node child, so an interrupted swarm run cannot strand a
// hundred webwave processes on the machine.
func nodeSysProcAttr() *syscall.SysProcAttr {
	return &syscall.SysProcAttr{Pdeathsig: syscall.SIGKILL}
}
