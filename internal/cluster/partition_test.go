package cluster

import (
	"testing"
	"time"

	"webwave/internal/core"
	"webwave/internal/tree"
)

func TestPartitionEdgeIsolatesSubtreeThenHeals(t *testing.T) {
	// Chain 0 <- 1 <- 2. Partition the (1,2) edge: requests entering at 2
	// for a document only the root holds go unanswered; requests entering
	// at 0 and 1 keep flowing. After healing, node 2's traffic drains.
	tr := tree.MustFromParents([]int{tree.NoParent, 0, 1})
	docs := map[core.DocID][]byte{"d": []byte("x")}
	cfg := smallConfig()
	cfg.Tunneling = false // keep the document pinned at the root
	c, err := New(tr, docs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	if !c.PartitionEdge(2) {
		t.Fatal("PartitionEdge(2) not supported on the memory network")
	}

	for i := 0; i < 20; i++ {
		if err := c.Inject(0, "d"); err != nil {
			t.Fatal(err)
		}
		if err := c.Inject(2, "d"); err != nil {
			t.Fatal(err)
		}
	}
	// The root-side 20 must be answered; node 2's 20 must stay outstanding.
	deadline := time.Now().Add(5 * time.Second)
	for c.Responses() < 20 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.Responses(); got < 20 {
		t.Fatalf("root-side responses = %d, want >= 20 during partition", got)
	}
	time.Sleep(100 * time.Millisecond) // give stray deliveries a chance
	if got := c.Responses(); got != 20 {
		t.Fatalf("responses = %d during partition, want exactly 20 (subtree isolated)", got)
	}

	if !c.HealEdge(2) {
		t.Fatal("HealEdge(2) failed")
	}
	// The 20 partition-era requests were dropped on the dead link (a real
	// partition loses in-flight packets); new traffic must flow again.
	for i := 0; i < 20; i++ {
		if err := c.Inject(2, "d"); err != nil {
			t.Fatal(err)
		}
	}
	deadline = time.Now().Add(5 * time.Second)
	for c.Responses() < 40 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.Responses(); got < 40 {
		t.Fatalf("responses = %d after heal, want >= 40", got)
	}
}

func TestPartitionEdgeValidation(t *testing.T) {
	tr := tree.MustFromParents([]int{tree.NoParent, 0})
	c, err := New(tr, map[core.DocID][]byte{"d": []byte("x")}, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if c.PartitionEdge(0) {
		t.Error("partitioned the root's (nonexistent) parent edge")
	}
	if c.PartitionEdge(-1) || c.PartitionEdge(99) {
		t.Error("partitioned an out-of-range node")
	}
	if !c.PartitionEdge(1) || !c.HealEdge(1) {
		t.Error("valid edge rejected")
	}
}
