package cluster

import (
	"testing"
	"time"

	"webwave/internal/core"
	"webwave/internal/netproto"
	"webwave/internal/tree"
)

func TestPartitionEdgeIsolatesSubtreeThenHeals(t *testing.T) {
	// Chain 0 <- 1 <- 2. Partition the (1,2) edge: requests entering at 2
	// for a document only the root holds go unanswered; requests entering
	// at 0 and 1 keep flowing. After healing, node 2's traffic drains.
	tr := tree.MustFromParents([]int{tree.NoParent, 0, 1})
	docs := map[core.DocID][]byte{"d": []byte("x")}
	cfg := smallConfig()
	cfg.Tunneling = false // keep the document pinned at the root
	c, err := New(tr, docs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	if !c.PartitionEdge(2) {
		t.Fatal("PartitionEdge(2) not supported on the memory network")
	}

	for i := 0; i < 20; i++ {
		if err := c.Inject(0, "d"); err != nil {
			t.Fatal(err)
		}
		if err := c.Inject(2, "d"); err != nil {
			t.Fatal(err)
		}
	}
	// The root-side 20 must be answered; node 2's 20 must stay outstanding.
	deadline := time.Now().Add(5 * time.Second)
	for c.Responses() < 20 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.Responses(); got < 20 {
		t.Fatalf("root-side responses = %d, want >= 20 during partition", got)
	}
	time.Sleep(100 * time.Millisecond) // give stray deliveries a chance
	if got := c.Responses(); got != 20 {
		t.Fatalf("responses = %d during partition, want exactly 20 (subtree isolated)", got)
	}

	if !c.HealEdge(2) {
		t.Fatal("HealEdge(2) failed")
	}
	// The 20 partition-era requests were dropped on the dead link (a real
	// partition loses in-flight packets); new traffic must flow again.
	for i := 0; i < 20; i++ {
		if err := c.Inject(2, "d"); err != nil {
			t.Fatal(err)
		}
	}
	deadline = time.Now().Add(5 * time.Second)
	for c.Responses() < 40 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.Responses(); got < 40 {
		t.Fatalf("responses = %d after heal, want >= 40", got)
	}
}

// TestHealTriggersRejoin is the regression test for the dead-pipe bug:
// before the rejoin path existed, a heartbeat-equipped child whose parent
// edge was partitioned kept its parentConn pointing at a pipe the detector
// had killed, and HealEdge restored the link state but never the
// connection. Now the partition must drive the child into orphan mode
// (heartbeat misses, no failover possible — the only ancestor is across
// the partition) and HealEdge must let the background rejoin succeed:
// reconnects goes positive, orphaned returns to zero, traffic flows.
func TestHealTriggersRejoin(t *testing.T) {
	tr := tree.MustFromParents([]int{tree.NoParent, 0})
	docs := map[core.DocID][]byte{"d": []byte("x")}
	cfg := smallConfig()
	cfg.Ancestors = true
	cfg.HeartbeatPeriod = 20 * time.Millisecond
	c, err := New(tr, docs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	if !c.PartitionEdge(1) {
		t.Fatal("PartitionEdge(1) not supported")
	}
	waitNodeStats(t, c, 1, "node 1 orphaned behind the partition", func(st *netproto.Stats) bool {
		return st.Orphaned == 1 && st.HeartbeatMisses > 0
	})

	if !c.HealEdge(1) {
		t.Fatal("HealEdge(1) failed")
	}
	waitNodeStats(t, c, 1, "node 1 rejoined after heal", func(st *netproto.Stats) bool {
		return st.Orphaned == 0 && st.ParentID == 0 && st.Reconnects >= 1
	})

	for i := 0; i < 20; i++ {
		if err := c.Inject(1, "d"); err != nil {
			t.Fatal(err)
		}
	}
	if left := c.Drain(5 * time.Second); left != 0 {
		t.Fatalf("%d requests unanswered after heal+rejoin", left)
	}
}

// waitNodeStats polls one node's scrape until pred accepts it.
func waitNodeStats(t *testing.T, c *Cluster, v int, what string, pred func(*netproto.Stats) bool) *netproto.Stats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var last *netproto.Stats
	for time.Now().Before(deadline) {
		sts, err := c.Stats()
		if err == nil && sts[v] != nil {
			last = sts[v]
			if pred(last) {
				return last
			}
		}
		time.Sleep(15 * time.Millisecond)
	}
	t.Fatalf("%s never held; last scrape %+v", what, last)
	return nil
}

func TestPartitionEdgeValidation(t *testing.T) {
	tr := tree.MustFromParents([]int{tree.NoParent, 0})
	c, err := New(tr, map[core.DocID][]byte{"d": []byte("x")}, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if c.PartitionEdge(0) {
		t.Error("partitioned the root's (nonexistent) parent edge")
	}
	if c.PartitionEdge(-1) || c.PartitionEdge(99) {
		t.Error("partitioned an out-of-range node")
	}
	if !c.PartitionEdge(1) || !c.HealEdge(1) {
		t.Error("valid edge rejected")
	}
}
