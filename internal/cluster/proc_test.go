package cluster

// Lifecycle test for the process-backed harness: the test binary re-execs
// itself as the node processes (TestMain dispatches on WEBWAVE_NODE_MAIN),
// so spawn → SIGKILL → warm re-exec → duty reclaim runs over real TCP with
// real processes and no prebuilt binary. Leak checks cover both resource
// kinds a process harness can leak: goroutines in the harness and child
// processes on the machine.

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"webwave/internal/tree"
)

// TestMain lets the test binary play both roles: harness (normal `go test`
// run) and node process (exec'd by ProcCluster with WEBWAVE_NODE_MAIN=1 —
// the MIT 6.824-style re-exec pattern, so the lifecycle test needs no
// separately built webwave-cluster binary).
func TestMain(m *testing.M) {
	if os.Getenv("WEBWAVE_NODE_MAIN") == "1" {
		if err := RunNode(os.Args[1:], os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "node:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// childProcCount counts this process's direct children via /proc; -1 when
// the procfs is unavailable (non-linux), which skips the process-leak
// check.
func childProcCount() int {
	entries, err := os.ReadDir("/proc")
	if err != nil {
		return -1
	}
	self := os.Getpid()
	count := 0
	for _, e := range entries {
		pid, err := strconv.Atoi(e.Name())
		if err != nil {
			continue
		}
		stat, err := os.ReadFile(filepath.Join("/proc", e.Name(), "stat"))
		if err != nil {
			continue // the process may have exited; fine
		}
		// Field 4 (after the parenthesized comm, which can contain spaces).
		s := string(stat)
		if i := strings.LastIndexByte(s, ')'); i >= 0 {
			fields := strings.Fields(s[i+1:])
			if len(fields) >= 2 {
				if ppid, err := strconv.Atoi(fields[1]); err == nil && ppid == self && pid != self {
					count++
				}
			}
		}
	}
	return count
}

// TestProcClusterLifecycleOverTCP is the process-harness acceptance test:
// spawn a real-process tree, drive traffic over TCP, SIGKILL an interior
// node, re-exec it warm (same address, same DataDir), observe the journal
// recovery and the re-attachment, and tear down without leaking a
// goroutine or a child process.
func TestProcClusterLifecycleOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	goroutinesBefore := runtime.NumGoroutine()
	childrenBefore := childProcCount()

	// Root -> 1 -> 2 chain plus a sibling leaf under the root: node 1 is
	// interior (its death strands node 2), node 3 is untouched control.
	tr := tree.MustFromParents([]int{tree.NoParent, 0, 1, 0})
	p, err := NewProc(tr, ProcConfig{
		Command:  []string{os.Args[0]},
		Env:      []string{"WEBWAVE_NODE_MAIN=1"},
		WorkDir:  t.TempDir(),
		NumDocs:  4,
		DocBytes: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	// Drive traffic entering at the interior node until diffusion has
	// placed copies there: warm recovery can only replay what the journal
	// admitted, and admission follows copy placement, not forwarding. Keep
	// the demand up across windows rather than firing one burst.
	ids := SwarmDocIDs(4)
	injected := 0
	cachedAt1 := 0
	for deadline := time.Now().Add(20 * time.Second); time.Now().Before(deadline); {
		for i := 0; i < 40; i++ {
			if err := p.Inject(1, ids[i%len(ids)]); err != nil {
				t.Fatalf("inject %d: %v", injected, err)
			}
			injected++
		}
		if left := p.Drain(10 * time.Second); left != 0 {
			t.Fatalf("drain: %d requests unanswered on the intact tree", left)
		}
		sts, err := p.Stats()
		if err != nil {
			t.Fatalf("stats: %v", err)
		}
		if sts[1] != nil {
			cachedAt1 = len(sts[1].CachedDocs)
		}
		if cachedAt1 >= 1 {
			break
		}
	}
	if cachedAt1 < 1 {
		t.Fatalf("node 1 cached nothing after %d requests — no copies to be warm about", injected)
	}
	if got := p.Responses(); got != int64(injected) {
		t.Fatalf("responses %d, want %d", got, injected)
	}

	// SIGKILL the interior node: a real process death, detected over real
	// sockets. Injections at the corpse must fail fast.
	if !p.KillNode(1) {
		t.Fatal("KillNode(1) found no live node")
	}
	if !p.NodeDead(1) {
		t.Fatal("node 1 not marked dead after SIGKILL")
	}
	if err := p.Inject(1, ids[0]); err == nil {
		t.Fatal("inject at a SIGKILLed node succeeded")
	}
	// The scrape must degrade to partial results (nil entry), not fail.
	sts, err := p.Stats()
	if err != nil {
		t.Fatalf("stats during failure: %v", err)
	}
	if sts[1] != nil {
		t.Fatal("dead node produced a stats reply")
	}
	if sts[0] == nil || sts[3] == nil {
		t.Fatal("survivors missing from the partial scrape")
	}

	// Warm re-exec: same argv, same address, same DataDir. The revived
	// process must answer the readiness handshake, replay its journal
	// (warm docs), and re-attach to its configured parent.
	if err := p.RestartNode(1); err != nil {
		t.Fatalf("restart: %v", err)
	}
	deadline := time.Now().Add(15 * time.Second)
	var warmDocs, reclaimed int64
	attached := false
	for time.Now().Before(deadline) {
		sts, err := p.Stats()
		if err == nil && sts[1] != nil {
			warmDocs = sts[1].WarmDocs
			attached = sts[1].ParentID == 0 && sts[1].Orphaned == 0
			reclaimed = 0
			for _, st := range sts {
				if st != nil {
					reclaimed += int64(st.ReclaimedDuty + st.AbsorbedDuty)
				}
			}
			if attached && warmDocs >= 1 {
				break
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !attached {
		t.Fatal("restarted node never re-attached to its parent")
	}
	if warmDocs < 1 {
		t.Fatalf("warm docs %d after re-exec — journal recovery did nothing", warmDocs)
	}
	_ = reclaimed // duty reclaim is timing-dependent; re-attachment + warmth are the hard assertions

	// Traffic flows end to end through the revived node again.
	pre := p.Responses()
	for i := 0; i < 40; i++ {
		if err := p.Inject(2, ids[i%len(ids)]); err != nil {
			t.Fatalf("post-restart inject: %v", err)
		}
	}
	if left := p.Drain(10 * time.Second); left != 0 {
		t.Fatalf("drain after restart: %d unanswered", left)
	}
	if got := p.Responses(); got != pre+40 {
		t.Fatalf("post-restart responses %d, want %d", got, pre+40)
	}

	// Graceful teardown: every process drains on SIGTERM (no SIGKILL
	// stragglers), no goroutine and no child process outlives the harness.
	p.Stop()
	if forced := p.ForcedTeardowns(); forced != 0 {
		t.Fatalf("%d processes had to be SIGKILLed at teardown", forced)
	}
	if childrenBefore >= 0 {
		for deadline := time.Now().Add(5 * time.Second); ; {
			if childProcCount() <= childrenBefore {
				break
			}
			if !time.Now().Before(deadline) {
				t.Fatalf("child processes: %d before, %d after stop — leak", childrenBefore, childProcCount())
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	for deadline := time.Now().Add(5 * time.Second); ; {
		if runtime.NumGoroutine() <= goroutinesBefore+3 {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("goroutines: %d before, %d after stop — leak", goroutinesBefore, runtime.NumGoroutine())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestProcClusterStopIsIdempotent: a second Stop (the deferred one after an
// explicit one) must not panic or double-signal.
func TestProcClusterStopIsIdempotent(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	tr := tree.MustFromParents([]int{tree.NoParent, 0})
	p, err := NewProc(tr, ProcConfig{
		Command: []string{os.Args[0]},
		Env:     []string{"WEBWAVE_NODE_MAIN=1"},
		WorkDir: t.TempDir(),
		NumDocs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Stop()
	p.Stop()
	if forced := p.ForcedTeardowns(); forced != 0 {
		t.Fatalf("%d forced teardowns on an idle cluster", forced)
	}
}
