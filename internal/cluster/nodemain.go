package cluster

// Single-node exec mode: RunNode hosts exactly one live server in this OS
// process, speaking the ordinary wire protocol over real TCP. It is what
// `webwave-cluster node ...` runs and what the swarm harness (ProcCluster)
// spawns a few hundred of; the process is the failure domain, so KillNode
// becomes SIGKILL and RestartNode becomes re-exec — no in-memory shortcuts.
//
// The process answers stats queries, pings and client requests on its one
// listen address (the wire protocol is the stats endpoint; nothing extra to
// scrape), and shuts down cleanly on SIGTERM/SIGINT: the server drains its
// shard/control loops and closes its connections under a hard deadline, so
// swarm teardown reaps every child instead of leaving strays.

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"webwave/internal/cachestore"
	"webwave/internal/core"
	"webwave/internal/server"
	"webwave/internal/transport"
)

// SwarmDocIDs returns the deterministic n-document catalog every swarm
// component derives independently: the root node publishes it, the runner
// injects requests for it. No seed — the catalog is a function of its size,
// so a runner and a root exec'd from different binaries cannot disagree.
func SwarmDocIDs(n int) []core.DocID {
	ids := make([]core.DocID, n)
	for i := range ids {
		ids[i] = core.DocID(fmt.Sprintf("swarm-%04d", i))
	}
	return ids
}

// SwarmDocs materializes the catalog with docBytes-sized bodies.
func SwarmDocs(n, docBytes int) map[core.DocID][]byte {
	if docBytes <= 0 {
		docBytes = 512
	}
	docs := make(map[core.DocID][]byte, n)
	for _, id := range SwarmDocIDs(n) {
		body := make([]byte, docBytes)
		pattern := []byte("webwave swarm body " + string(id) + " ")
		for i := range body {
			body[i] = pattern[i%len(pattern)]
		}
		docs[id] = body
	}
	return docs
}

// RunNode parses single-node flags, runs one server until SIGTERM/SIGINT,
// and drains it under -drain deadline. It returns only on flag errors,
// startup failures, or after a completed shutdown; stderr receives the
// lifecycle lines (stdout stays clean for future machine-readable output).
func RunNode(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("webwave-cluster node", flag.ContinueOnError)
	fs.SetOutput(stderr)
	id := fs.Int("id", 0, "node id in the routing tree")
	addr := fs.String("addr", "", "listen address (host:port; required)")
	parentID := fs.Int("parent-id", -1, "parent node id (-1 = root)")
	parentAddr := fs.String("parent-addr", "", "parent listen address (non-root)")
	homeAddr := fs.String("home-addr", "", "root listen address (tunneling target)")
	ancestors := fs.String("ancestors", "", "comma-separated failover candidates, nearest first")
	docs := fs.Int("docs", 0, "root only: publish the deterministic swarm catalog of this size")
	docBytes := fs.Int("doc-bytes", 512, "root only: body bytes per catalog document")
	gossip := fs.Duration("gossip", 20*time.Millisecond, "gossip period")
	diffusion := fs.Duration("diffusion", 40*time.Millisecond, "diffusion period")
	window := fs.Duration("window", 400*time.Millisecond, "rate-estimation window")
	heartbeat := fs.Duration("heartbeat", 40*time.Millisecond, "liveness-detector period (0 = off)")
	heartbeatMisses := fs.Int("heartbeat-misses", 0, "silent periods before a neighbor is dead (0 = default 3)")
	shards := fs.Int("shards", 1, "doc-sharded event loops (swarm nodes default to 1: the process count is the parallelism)")
	maxBatch := fs.Int("max-batch", 0, "events per loop iteration (0 = default)")
	queueDepth := fs.Int("queue-depth", 0, "per-loop queue capacity (0 = default)")
	cacheBudget := fs.Int64("cache-budget", 0, "cache byte budget (0 = unlimited)")
	evictPolicy := fs.String("evict-policy", "", "eviction policy: lru (default), heat or gdsf")
	dataDir := fs.String("data-dir", "", "disk-tier root for this node (enables warm re-exec recovery)")
	diskBudget := fs.Int64("disk-budget", 0, "disk-tier byte budget (0 = unlimited)")
	tunneling := fs.Bool("tunneling", true, "enable barrier tunneling")
	wirev := fs.Int("wirev", 0, "wire codec: 0/2 = binary v2, 1 = legacy JSON")
	dialTimeout := fs.Duration("dial-timeout", 2*time.Second, "per-dial connect timeout")
	dialAttempts := fs.Int("dial-attempts", 3, "startup parent-dial budget before orphan-starting")
	reconnectCap := fs.Duration("reconnect-cap", 2*time.Second, "failover backoff ceiling")
	bindWait := fs.Duration("bind-wait", 5*time.Second, "address-reuse bind retry budget (re-exec reclaiming its old port)")
	drain := fs.Duration("drain", 5*time.Second, "graceful-drain deadline on SIGTERM before a hard exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("node: -addr is required")
	}

	netw := transport.TCPNetwork{
		Version:       *wirev,
		DialTimeout:   *dialTimeout,
		BindRetryWait: *bindWait,
	}
	scfg := server.Config{
		ID:               *id,
		Addr:             *addr,
		ParentID:         *parentID,
		ParentAddr:       *parentAddr,
		HomeAddr:         *homeAddr,
		GossipPeriod:     *gossip,
		DiffusionPeriod:  *diffusion,
		Window:           *window,
		HeartbeatPeriod:  *heartbeat,
		HeartbeatMisses:  *heartbeatMisses,
		NumShards:        *shards,
		MaxBatch:         *maxBatch,
		QueueDepth:       *queueDepth,
		CacheBudgetBytes: *cacheBudget,
		EvictPolicy:      cachestore.Policy(*evictPolicy),
		DataDir:          *dataDir,
		DiskBudgetBytes:  *diskBudget,
		Tunneling:        *tunneling,
		DialAttempts:     *dialAttempts,
		ReconnectCap:     *reconnectCap,
		Network:          netw,
	}
	if *ancestors != "" {
		for _, a := range strings.Split(*ancestors, ",") {
			if a = strings.TrimSpace(a); a != "" {
				scfg.AncestorAddrs = append(scfg.AncestorAddrs, a)
			}
		}
	}
	if *parentID < 0 && *docs > 0 {
		scfg.Docs = SwarmDocs(*docs, *docBytes)
	}

	srv, err := server.New(scfg)
	if err != nil {
		return fmt.Errorf("node %d: %w", *id, err)
	}
	if err := srv.Start(); err != nil {
		return fmt.Errorf("node %d: %w", *id, err)
	}
	fmt.Fprintf(stderr, "webwave-node ready id=%d addr=%s pid=%d\n", *id, srv.Addr(), os.Getpid())

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	// Notify stays installed: a repeated TERM during the drain is swallowed
	// instead of reverting to the default disposition and killing the drain.

	// Graceful drain under a hard deadline: Stop waits for the accept loop,
	// every shard/control loop, connection readers and the failover hunter;
	// a wedged goroutine must not turn teardown into a hung child the swarm
	// runner then has to SIGKILL.
	done := make(chan struct{})
	go func() {
		srv.Stop()
		close(done)
	}()
	select {
	case <-done:
		fmt.Fprintf(stderr, "webwave-node drained id=%d signal=%s\n", *id, got)
		return nil
	case <-time.After(*drain):
		return fmt.Errorf("node %d: drain deadline %s exceeded after %s", *id, *drain, got)
	}
}
