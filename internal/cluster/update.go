package cluster

// Mutable-document injection and staleness accounting. Writes enter the
// tree at the root — the document's origin — as republish (versioned body
// push) or invalidate (version-only) frames and diffuse down; the cluster
// assigns each document a monotonically increasing version and remembers
// when every version was written, so each response's served version maps
// to a staleness age: how long ago the served copy was superseded (zero
// when the response carried the latest version). The staleness percentiles
// the update scenarios gate on come straight from these samples.

import (
	"fmt"
	"time"

	"webwave/internal/core"
	"webwave/internal/netproto"
	"webwave/internal/stats"
)

// Republish injects a versioned body write for doc at its origin (the
// root). The new body diffuses down the tree along the duty edges as
// republish frames; off-ledger subtrees get version-only invalidates and
// lease-refresh on demand. Returns the version assigned to the write.
func (c *Cluster) Republish(doc core.DocID, body []byte) (uint64, error) {
	return c.write(netproto.TypeRepublish, doc, body)
}

// Invalidate injects a version-only write: every copy below the origin
// drops its body (keeping its duty and filter) and refreshes through the
// subtree lease on the next demand. The body still installs at the origin
// — the root must always serve the latest version — but never travels in
// the invalidate frames. Returns the version assigned to the write.
func (c *Cluster) Invalidate(doc core.DocID, body []byte) (uint64, error) {
	return c.write(netproto.TypeInvalidate, doc, body)
}

func (c *Cluster) write(kind netproto.Type, doc core.DocID, body []byte) (uint64, error) {
	root := c.t.Root()
	c.verMu.Lock()
	ver := c.docVers[doc] + 1
	c.docVers[doc] = ver
	// writeAt[doc][v-1] is the instant version v was written — the moment
	// every copy of version v-1 (and older) became stale.
	c.writeAt[doc] = append(c.writeAt[doc], time.Now())
	c.verMu.Unlock()
	c.injectMu.Lock()
	conn := c.injectConns[root]
	c.injectMu.Unlock()
	err := conn.Send(&netproto.Envelope{
		Kind: kind, From: -1, To: root,
		Doc: doc, DocVersion: ver, Body: body,
	})
	if err != nil {
		return ver, fmt.Errorf("cluster: %s %q: %w", kind, doc, err)
	}
	return ver, nil
}

// LatestVersion returns the version the cluster last assigned to doc (0 =
// never written).
func (c *Cluster) LatestVersion(doc core.DocID) uint64 {
	c.verMu.Lock()
	defer c.verMu.Unlock()
	return c.docVers[doc]
}

// noteServedVersion records one response's staleness sample. Only
// documents that have been written at least once produce samples —
// read-only documents have no version history to be stale against.
// Caller must NOT hold verMu.
func (c *Cluster) noteServedVersion(env *netproto.Envelope, now time.Time) {
	c.verMu.Lock()
	times, written := c.writeAt[env.Doc]
	if written {
		age := 0.0
		if int(env.DocVersion) < len(times) {
			// The served version was superseded the instant the next one
			// was written; the sample is how long ago that was.
			age = now.Sub(times[env.DocVersion]).Seconds()
		}
		c.staleness = append(c.staleness, age)
	}
	c.verMu.Unlock()
}

// StalenessSummary returns descriptive statistics over the staleness ages
// (seconds) of every response for a written document: 0 for a response
// that carried the latest version, else the time since the served version
// was superseded.
func (c *Cluster) StalenessSummary() stats.Summary {
	c.verMu.Lock()
	samples := append([]float64(nil), c.staleness...)
	c.verMu.Unlock()
	return stats.Summarize(samples)
}

// StaleServed returns how many responses carried a superseded version, and
// the total number of staleness-sampled responses.
func (c *Cluster) StaleServed() (stale, total int64) {
	c.verMu.Lock()
	defer c.verMu.Unlock()
	for _, age := range c.staleness {
		if age > 0 {
			stale++
		}
	}
	return stale, int64(len(c.staleness))
}
