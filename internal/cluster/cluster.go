// Package cluster assembles live WebWave servers (internal/server) into a
// routing tree over a transport, injects client request traffic from a
// schedule, and scrapes per-node metrics — the test and demonstration
// harness for the live protocol.
//
// Beyond assembly, the cluster is a topology registry with failure
// injection: KillNode / RestartNode stop and revive whole servers (the
// restarted node rebinds its old address, so surviving ancestor lists stay
// valid), PartitionEdge / HealEdge drop traffic on a tree edge without
// killing anything, and Topology scrapes each node's current parent so the
// repaired tree — children failed over to ancestors, restarted nodes
// re-attached — is observable rather than assumed.
package cluster

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"webwave/internal/cachestore"
	"webwave/internal/core"
	"webwave/internal/netproto"
	"webwave/internal/server"
	"webwave/internal/stats"
	"webwave/internal/trace"
	"webwave/internal/transport"
	"webwave/internal/tree"
)

// Config parameterizes a cluster.
type Config struct {
	// Network is the transport; nil means a zero-latency in-memory network.
	Network transport.Network
	// AddrFor maps a node id to its listen address. nil yields "node-<id>"
	// (memory networks) — pass 127.0.0.1:0-style addresses for TCP.
	AddrFor func(id int) string

	GossipPeriod    time.Duration
	DiffusionPeriod time.Duration
	Window          time.Duration

	Tunneling       bool
	BarrierPatience int
	Alpha           float64 // 0 = per-node 1/(degree+1)

	// CacheBudgetBytes bounds every server's cached bytes (0 = unlimited).
	// The home server's published documents are pinned and exempt.
	CacheBudgetBytes int64
	// DataDir enables each server's disk persistence tier: node v gets
	// DataDir/node-v as its server.Config.DataDir, so a KillNode followed
	// by RestartNode comes back warm — journal replayed, held copies
	// re-announced. Empty disables the tier. DiskBudgetBytes bounds each
	// node's on-disk body bytes (0 = unlimited).
	DataDir         string
	DiskBudgetBytes int64
	// CacheShards is each server's cache-store stripe count (default: the
	// server's NumShards, keeping evictions local to the owning shard).
	CacheShards int
	// EvictPolicy selects the replacement policy (cachestore.LRU, Heat or
	// GDSF; empty = LRU).
	EvictPolicy cachestore.Policy

	// NumShards is each server's doc-sharded event loop count (0 =
	// GOMAXPROCS); MaxBatch bounds events drained per loop iteration
	// (0 = 256); QueueDepth is each loop's inbound queue capacity
	// (0 = 1024). See server.Config.
	NumShards  int
	MaxBatch   int
	QueueDepth int

	// Ancestors gives every non-root server a failover candidate list
	// ([parent, grandparent, ..., root]): a node whose parent link dies
	// re-attaches to the nearest answering ancestor and replays its held
	// duty. HeartbeatPeriod (>0 implies Ancestors) additionally enables the
	// liveness detector, which is what turns a silent failure — a partition,
	// a wedged peer — into a detected one; HeartbeatMisses is the silence
	// budget (0 = server default of 3 periods). See server.Config.
	Ancestors       bool
	HeartbeatPeriod time.Duration
	HeartbeatMisses int

	// PromoteThreshold enables hot-document replication forests (0
	// disables): the home promotes a document whose demand stays above the
	// threshold onto PromoteK replica roots, and demotes it when demand
	// falls below DemoteThreshold (0 = threshold/4) — both transitions
	// debounced by PromoteHysteresis diffusion periods (0 = 3). See
	// server.Config.
	PromoteThreshold  float64
	DemoteThreshold   float64
	PromoteK          int
	PromoteHysteresis int
}

// Cluster is a running tree of live servers.
type Cluster struct {
	t       *tree.Tree
	cfg     Config
	net     transport.Network
	servers []*server.Server
	addrs   []string

	// Topology registry: the per-node server configs (kept so KillNode /
	// RestartNode can revive a node on its original address) and each
	// node's liveness.
	regMu sync.Mutex
	scfgs []server.Config
	dead  []bool

	injectMu    sync.Mutex
	injectConns []transport.Conn
	reqSeq      []uint64

	outstanding atomic.Int64
	responses   atomic.Int64
	totalHops   atomic.Int64
	servedByMu  sync.Mutex
	servedBy    map[int]int64
	sentAt      map[pendingKey]sentInfo
	latencies   []float64 // seconds, one per answered request

	// rmwViolations counts read-my-writes violations: responses that
	// carried an older version than the injecting session had already
	// written (session.go). The detector runs on every session read whether
	// or not the token rode the wire, so the token-less arm of the session
	// scenario measures the violation rate the tokens eliminate.
	rmwViolations atomic.Int64

	// Mutable-document write log (update.go): the latest version assigned
	// per document, when each version was written, and the staleness age of
	// every response for a written document.
	verMu     sync.Mutex
	docVers   map[core.DocID]uint64
	writeAt   map[core.DocID][]time.Time
	staleness []float64 // seconds; 0 = served the latest version
}

// pendingKey identifies an in-flight request for latency accounting.
type pendingKey struct {
	origin int
	reqID  uint64
}

// sentInfo is one in-flight request's accounting record: when it was
// injected, and — for session reads — the version the session expects the
// response to be at or beyond (0 for version-oblivious reads).
type sentInfo struct {
	at     time.Time
	expect uint64
}

// New starts one server per tree node (parents before children, so child
// dials succeed) and opens an injection connection to every node.
func New(t *tree.Tree, docs map[core.DocID][]byte, cfg Config) (*Cluster, error) {
	netw := cfg.Network
	if netw == nil {
		netw = transport.NewMemoryNetwork(transport.MemoryOptions{})
	}
	addrFor := cfg.AddrFor
	if addrFor == nil {
		addrFor = func(id int) string { return fmt.Sprintf("node-%d", id) }
	}
	c := &Cluster{
		t:           t,
		cfg:         cfg,
		net:         netw,
		servers:     make([]*server.Server, t.Len()),
		addrs:       make([]string, t.Len()),
		scfgs:       make([]server.Config, t.Len()),
		dead:        make([]bool, t.Len()),
		injectConns: make([]transport.Conn, t.Len()),
		reqSeq:      make([]uint64, t.Len()),
		servedBy:    make(map[int]int64),
		sentAt:      make(map[pendingKey]sentInfo),
		docVers:     make(map[core.DocID]uint64),
		writeAt:     make(map[core.DocID][]time.Time),
	}

	recovery := cfg.Ancestors || cfg.HeartbeatPeriod > 0
	for _, v := range t.BFSOrder() {
		scfg := server.Config{
			ID:               v,
			Addr:             addrFor(v),
			ParentID:         -1,
			GossipPeriod:     cfg.GossipPeriod,
			DiffusionPeriod:  cfg.DiffusionPeriod,
			Window:           cfg.Window,
			Tunneling:        cfg.Tunneling,
			BarrierPatience:  cfg.BarrierPatience,
			Alpha:            cfg.Alpha,
			Network:          netw,
			CacheBudgetBytes: cfg.CacheBudgetBytes,
			CacheShards:      cfg.CacheShards,
			EvictPolicy:      cfg.EvictPolicy,
			NumShards:        cfg.NumShards,
			MaxBatch:         cfg.MaxBatch,
			QueueDepth:       cfg.QueueDepth,
			DiskBudgetBytes:  cfg.DiskBudgetBytes,
			HeartbeatPeriod:  cfg.HeartbeatPeriod,
			HeartbeatMisses:  cfg.HeartbeatMisses,
			// Promotion knobs go to every node: only the root runs the home
			// state machine, but any node must accept replica enrollments.
			PromoteThreshold:  cfg.PromoteThreshold,
			DemoteThreshold:   cfg.DemoteThreshold,
			PromoteK:          cfg.PromoteK,
			PromoteHysteresis: cfg.PromoteHysteresis,
		}
		if cfg.DataDir != "" {
			scfg.DataDir = filepath.Join(cfg.DataDir, fmt.Sprintf("node-%d", v))
		}
		if v == t.Root() {
			scfg.Docs = docs
		} else {
			scfg.ParentID = t.Parent(v)
			scfg.ParentAddr = c.addrs[t.Parent(v)]
			scfg.HomeAddr = c.addrs[t.Root()]
			if recovery {
				// Failover candidates: parent first (a healed or restarted
				// parent is always preferred), then each farther ancestor.
				// BFS order guarantees every ancestor's address is known.
				for p := t.Parent(v); p >= 0; p = t.Parent(p) {
					scfg.AncestorAddrs = append(scfg.AncestorAddrs, c.addrs[p])
				}
			}
		}
		srv, err := server.New(scfg)
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("cluster: node %d: %w", v, err)
		}
		if err := srv.Start(); err != nil {
			c.Stop()
			return nil, fmt.Errorf("cluster: start node %d: %w", v, err)
		}
		c.servers[v] = srv
		c.addrs[v] = srv.Addr()
		// Registry copy with the concrete bound address, so a restart
		// rebinds exactly where the ancestors expect the node.
		scfg.Addr = srv.Addr()
		c.scfgs[v] = scfg
	}

	// One injection conn per node, with a response-collector goroutine.
	for v := 0; v < t.Len(); v++ {
		conn, err := netw.Dial(c.addrs[v])
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("cluster: dial injector %d: %w", v, err)
		}
		c.injectConns[v] = conn
		go c.collect(conn)
	}
	return c, nil
}

func (c *Cluster) collect(conn transport.Conn) {
	for {
		env, err := conn.Recv()
		if err != nil {
			return
		}
		if env.Kind != netproto.TypeResponse {
			netproto.PutEnvelope(env)
			continue
		}
		now := time.Now()
		c.outstanding.Add(-1)
		c.responses.Add(1)
		c.totalHops.Add(int64(env.Hops))
		key := pendingKey{origin: env.Origin, reqID: env.ReqID}
		c.servedByMu.Lock()
		c.servedBy[env.ServedBy]++
		if sent, ok := c.sentAt[key]; ok {
			delete(c.sentAt, key)
			c.latencies = append(c.latencies, now.Sub(sent.at).Seconds())
			if isRMWViolation(sent.expect, env.DocVersion, env.NotFound) {
				c.rmwViolations.Add(1)
			}
		}
		c.servedByMu.Unlock()
		c.noteServedVersion(env, now)
		netproto.PutEnvelope(env) // fully consumed: recycle
	}
}

// Inject sends one client request for doc entering the tree at origin. A
// failed send (the origin node is down) rolls its accounting back, so Drain
// still converges on the requests that actually entered the tree.
func (c *Cluster) Inject(origin int, doc core.DocID) error {
	return c.inject(origin, doc, 0, 0)
}

// inject is the shared injection path: expect is the version the session
// expects back (violation accounting only), minVer what rides the wire as
// the request's MinVersion (0 = no token).
func (c *Cluster) inject(origin int, doc core.DocID, expect, minVer uint64) error {
	if origin < 0 || origin >= c.t.Len() {
		return fmt.Errorf("cluster: origin %d out of range", origin)
	}
	c.injectMu.Lock()
	c.reqSeq[origin]++
	seq := c.reqSeq[origin]
	conn := c.injectConns[origin]
	c.injectMu.Unlock()
	key := pendingKey{origin: origin, reqID: seq}
	c.servedByMu.Lock()
	c.sentAt[key] = sentInfo{at: time.Now(), expect: expect}
	c.servedByMu.Unlock()
	c.outstanding.Add(1)
	err := conn.Send(&netproto.Envelope{
		Kind: netproto.TypeRequest, From: -1, To: origin,
		Origin: origin, ReqID: seq, Doc: doc, MinVersion: minVer,
	})
	if err != nil {
		c.outstanding.Add(-1)
		c.servedByMu.Lock()
		delete(c.sentAt, key)
		c.servedByMu.Unlock()
	}
	return err
}

// LatencySummary returns descriptive statistics of per-request response
// latencies in seconds (inject to response at the origin).
func (c *Cluster) LatencySummary() stats.Summary {
	c.servedByMu.Lock()
	samples := append([]float64(nil), c.latencies...)
	c.servedByMu.Unlock()
	return stats.Summarize(samples)
}

// Play replays a request schedule, compressing time by `speedup` (a request
// at schedule time T is injected at wall time T/speedup after start).
func (c *Cluster) Play(reqs []trace.Request, speedup float64) error {
	if speedup <= 0 {
		speedup = 1
	}
	start := time.Now()
	for i := range reqs {
		due := start.Add(time.Duration(reqs[i].Time / speedup * float64(time.Second)))
		if wait := time.Until(due); wait > 0 {
			time.Sleep(wait)
		}
		if err := c.Inject(reqs[i].Origin, reqs[i].Doc); err != nil {
			return fmt.Errorf("cluster: inject request %d: %w", i, err)
		}
	}
	return nil
}

// Drain waits until every injected request has been answered or the timeout
// elapses. It returns the number still outstanding.
func (c *Cluster) Drain(timeout time.Duration) int64 {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c.outstanding.Load() <= 0 {
			return 0
		}
		time.Sleep(5 * time.Millisecond)
	}
	return c.outstanding.Load()
}

// Responses returns the number of answered requests so far.
func (c *Cluster) Responses() int64 { return c.responses.Load() }

// Addr returns node v's transport address (empty when out of range).
func (c *Cluster) Addr(v int) string {
	if v < 0 || v >= len(c.addrs) {
		return ""
	}
	return c.addrs[v]
}

// Network returns the transport the cluster runs on.
func (c *Cluster) Network() transport.Network { return c.net }

// Tree returns the routing tree the cluster was built on.
func (c *Cluster) Tree() *tree.Tree { return c.t }

// MeanHops returns the average number of tree edges requests traversed
// before being served — the paper's "requests stumble on cache copies en
// route" effect made measurable.
func (c *Cluster) MeanHops() float64 {
	n := c.responses.Load()
	if n == 0 {
		return 0
	}
	return float64(c.totalHops.Load()) / float64(n)
}

// ServedBy returns how many requests each node has served (by responses).
func (c *Cluster) ServedBy() map[int]int64 {
	c.servedByMu.Lock()
	defer c.servedByMu.Unlock()
	out := make(map[int]int64, len(c.servedBy))
	for k, v := range c.servedBy {
		out[k] = v
	}
	return out
}

// ServedVector returns ServedBy as a dense per-node vector.
func (c *Cluster) ServedVector() core.Vector {
	m := c.ServedBy()
	out := make(core.Vector, c.t.Len())
	for v, n := range m {
		if v >= 0 && v < len(out) {
			out[v] = float64(n)
		}
	}
	return out
}

// Stats scrapes every server and returns the replies ordered by node id.
// Killed nodes yield a nil entry instead of failing the whole scrape, so
// the harness can observe a cluster mid-failure.
func (c *Cluster) Stats() ([]*netproto.Stats, error) {
	out := make([]*netproto.Stats, c.t.Len())
	for v := 0; v < c.t.Len(); v++ {
		if c.NodeDead(v) {
			continue
		}
		// A node can be killed between the liveness check and any step of
		// the scrape; re-checking on error keeps a racing kill a skipped
		// entry instead of failing the whole scrape.
		deadRace := func(err error) bool { return err != nil && c.NodeDead(v) }
		conn, err := c.net.Dial(c.addrs[v])
		if deadRace(err) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("cluster: stats dial %d: %w", v, err)
		}
		err = conn.Send(&netproto.Envelope{Kind: netproto.TypeStatsQuery, From: -1, To: v})
		if err != nil {
			conn.Close()
			if deadRace(err) {
				continue
			}
			return nil, fmt.Errorf("cluster: stats query %d: %w", v, err)
		}
		deadline := time.Now().Add(2 * time.Second)
		for {
			env, err := conn.Recv()
			if err != nil {
				conn.Close()
				if deadRace(err) {
					break
				}
				return nil, fmt.Errorf("cluster: stats reply %d: %w", v, err)
			}
			if env.Kind == netproto.TypeStatsReply && env.Stats != nil {
				out[v] = env.Stats // keep Stats; the envelope shell recycles
				netproto.PutEnvelope(env)
				break
			}
			netproto.PutEnvelope(env)
			if time.Now().After(deadline) {
				conn.Close()
				return nil, fmt.Errorf("cluster: stats reply %d: timeout", v)
			}
		}
		conn.Close()
	}
	return out, nil
}

// Loads returns the per-node served rate (requests/second over each
// server's sliding window) via a stats scrape.
func (c *Cluster) Loads() (core.Vector, error) {
	sts, err := c.Stats()
	if err != nil {
		return nil, err
	}
	out := make(core.Vector, len(sts))
	for i, st := range sts {
		if st != nil {
			out[i] = st.Load
		}
	}
	return out, nil
}

// CachedDocs returns each node's cache contents, by node id.
func (c *Cluster) CachedDocs() (map[int][]core.DocID, error) {
	sts, err := c.Stats()
	if err != nil {
		return nil, err
	}
	out := make(map[int][]core.DocID, len(sts))
	for i, st := range sts {
		if st == nil {
			continue
		}
		docs := append([]core.DocID(nil), st.CachedDocs...)
		sort.Slice(docs, func(a, b int) bool { return docs[a] < docs[b] })
		out[i] = docs
	}
	return out, nil
}

// PartitionEdge cuts the routing-tree edge between node v and its parent
// (failure injection): traffic between the two servers is silently dropped
// in both directions until HealEdge. It returns false when v is the root or
// the transport does not support link faults (only the in-memory network
// does).
func (c *Cluster) PartitionEdge(v int) bool {
	return c.setEdge(v, true)
}

// HealEdge reverses PartitionEdge for node v.
func (c *Cluster) HealEdge(v int) bool {
	return c.setEdge(v, false)
}

func (c *Cluster) setEdge(v int, down bool) bool {
	if v < 0 || v >= c.t.Len() || v == c.t.Root() {
		return false
	}
	mem, ok := c.net.(*transport.MemoryNetwork)
	if !ok {
		return false
	}
	child, parent := c.addrs[v], c.addrs[c.t.Parent(v)]
	if down {
		mem.Partition(child, parent)
	} else {
		mem.Heal(child, parent)
	}
	return true
}

// StopServer kills one node's server (failure injection). Requests that
// would route through the dead node go unanswered; the rest of the tree
// keeps serving (and, with Ancestors configured, repairs around the hole).
// Alias of KillNode, kept for existing callers.
func (c *Cluster) StopServer(v int) { c.KillNode(v) }

// KillNode stops node v's server and marks it dead in the registry: stats
// scrapes skip it, injections at it fail, and — when the cluster runs with
// Ancestors — its children detect the loss and fail over to surviving
// ancestors while its parent re-absorbs the duty it had delegated to it.
// It reports whether a live node was actually killed.
func (c *Cluster) KillNode(v int) bool {
	if v < 0 || v >= len(c.servers) || c.servers[v] == nil {
		return false
	}
	c.regMu.Lock()
	if c.dead[v] {
		c.regMu.Unlock()
		return false
	}
	c.dead[v] = true
	srv := c.servers[v]
	c.regMu.Unlock()
	srv.Stop()
	c.injectMu.Lock()
	if conn := c.injectConns[v]; conn != nil {
		conn.Close()
	}
	c.injectMu.Unlock()
	return true
}

// RestartNode revives a killed node on its original address with its
// original configuration (the root re-publishes its pinned documents). The
// revived node dials its configured parent — or, if that parent is still
// down and ancestors are configured, comes up orphaned and fails over —
// and rejoins the tree as a leaf: its former children have already
// re-attached elsewhere. With Config.DataDir set the restart is warm: the
// node replays its journal against the surviving body files and comes up
// holding (and re-announcing) what it held when it was killed, instead of
// an empty cache. The injection connection is re-dialed so traffic can
// enter at the node again.
func (c *Cluster) RestartNode(v int) error {
	if v < 0 || v >= len(c.servers) {
		return fmt.Errorf("cluster: restart node %d out of range", v)
	}
	c.regMu.Lock()
	if !c.dead[v] {
		c.regMu.Unlock()
		return fmt.Errorf("cluster: restart node %d: not dead", v)
	}
	scfg := c.scfgs[v]
	c.regMu.Unlock()
	srv, err := server.New(scfg)
	if err != nil {
		return fmt.Errorf("cluster: restart node %d: %w", v, err)
	}
	if err := srv.Start(); err != nil {
		return fmt.Errorf("cluster: restart node %d: %w", v, err)
	}
	conn, err := c.net.Dial(srv.Addr())
	if err != nil {
		srv.Stop()
		return fmt.Errorf("cluster: restart node %d: dial injector: %w", v, err)
	}
	c.regMu.Lock()
	c.servers[v] = srv
	c.dead[v] = false
	c.regMu.Unlock()
	c.injectMu.Lock()
	c.injectConns[v] = conn
	c.injectMu.Unlock()
	go c.collect(conn)
	return nil
}

// NodeDead reports whether node v is currently killed.
func (c *Cluster) NodeDead(v int) bool {
	if v < 0 || v >= len(c.dead) {
		return true
	}
	c.regMu.Lock()
	defer c.regMu.Unlock()
	return c.dead[v]
}

// Topology scrapes each live node's current parent id — the repaired
// routing tree after failures, as the nodes themselves see it. Dead nodes
// and (transiently) orphaned nodes report -1; index Root() is always -1.
func (c *Cluster) Topology() ([]int, error) {
	sts, err := c.Stats()
	if err != nil {
		return nil, err
	}
	out := make([]int, len(sts))
	for v, st := range sts {
		out[v] = -1
		if st != nil {
			out[v] = st.ParentID
		}
	}
	return out, nil
}

// Stop shuts every server down.
func (c *Cluster) Stop() {
	c.injectMu.Lock()
	for _, conn := range c.injectConns {
		if conn != nil {
			conn.Close()
		}
	}
	c.injectMu.Unlock()
	c.regMu.Lock()
	servers := append([]*server.Server(nil), c.servers...)
	c.regMu.Unlock()
	for _, s := range servers {
		if s != nil {
			s.Stop()
		}
	}
}
