// Package cluster assembles live WebWave servers (internal/server) into a
// routing tree over a transport, injects client request traffic from a
// schedule, and scrapes per-node metrics — the test and demonstration
// harness for the live protocol.
package cluster

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"webwave/internal/cachestore"
	"webwave/internal/core"
	"webwave/internal/netproto"
	"webwave/internal/server"
	"webwave/internal/stats"
	"webwave/internal/trace"
	"webwave/internal/transport"
	"webwave/internal/tree"
)

// Config parameterizes a cluster.
type Config struct {
	// Network is the transport; nil means a zero-latency in-memory network.
	Network transport.Network
	// AddrFor maps a node id to its listen address. nil yields "node-<id>"
	// (memory networks) — pass 127.0.0.1:0-style addresses for TCP.
	AddrFor func(id int) string

	GossipPeriod    time.Duration
	DiffusionPeriod time.Duration
	Window          time.Duration

	Tunneling       bool
	BarrierPatience int
	Alpha           float64 // 0 = per-node 1/(degree+1)

	// CacheBudgetBytes bounds every server's cached bytes (0 = unlimited).
	// The home server's published documents are pinned and exempt.
	CacheBudgetBytes int64
	// CacheShards is each server's cache-store stripe count (default: the
	// server's NumShards, keeping evictions local to the owning shard).
	CacheShards int
	// EvictPolicy selects the replacement policy (cachestore.LRU, Heat or
	// GDSF; empty = LRU).
	EvictPolicy cachestore.Policy

	// NumShards is each server's doc-sharded event loop count (0 =
	// GOMAXPROCS); MaxBatch bounds events drained per loop iteration
	// (0 = 256); QueueDepth is each loop's inbound queue capacity
	// (0 = 1024). See server.Config.
	NumShards  int
	MaxBatch   int
	QueueDepth int
}

// Cluster is a running tree of live servers.
type Cluster struct {
	t       *tree.Tree
	cfg     Config
	net     transport.Network
	servers []*server.Server
	addrs   []string

	injectMu    sync.Mutex
	injectConns []transport.Conn
	reqSeq      []uint64

	outstanding atomic.Int64
	responses   atomic.Int64
	totalHops   atomic.Int64
	servedByMu  sync.Mutex
	servedBy    map[int]int64
	sentAt      map[pendingKey]time.Time
	latencies   []float64 // seconds, one per answered request
}

// pendingKey identifies an in-flight request for latency accounting.
type pendingKey struct {
	origin int
	reqID  uint64
}

// New starts one server per tree node (parents before children, so child
// dials succeed) and opens an injection connection to every node.
func New(t *tree.Tree, docs map[core.DocID][]byte, cfg Config) (*Cluster, error) {
	netw := cfg.Network
	if netw == nil {
		netw = transport.NewMemoryNetwork(transport.MemoryOptions{})
	}
	addrFor := cfg.AddrFor
	if addrFor == nil {
		addrFor = func(id int) string { return fmt.Sprintf("node-%d", id) }
	}
	c := &Cluster{
		t:           t,
		cfg:         cfg,
		net:         netw,
		servers:     make([]*server.Server, t.Len()),
		addrs:       make([]string, t.Len()),
		injectConns: make([]transport.Conn, t.Len()),
		reqSeq:      make([]uint64, t.Len()),
		servedBy:    make(map[int]int64),
		sentAt:      make(map[pendingKey]time.Time),
	}

	for _, v := range t.BFSOrder() {
		scfg := server.Config{
			ID:               v,
			Addr:             addrFor(v),
			ParentID:         -1,
			GossipPeriod:     cfg.GossipPeriod,
			DiffusionPeriod:  cfg.DiffusionPeriod,
			Window:           cfg.Window,
			Tunneling:        cfg.Tunneling,
			BarrierPatience:  cfg.BarrierPatience,
			Alpha:            cfg.Alpha,
			Network:          netw,
			CacheBudgetBytes: cfg.CacheBudgetBytes,
			CacheShards:      cfg.CacheShards,
			EvictPolicy:      cfg.EvictPolicy,
			NumShards:        cfg.NumShards,
			MaxBatch:         cfg.MaxBatch,
			QueueDepth:       cfg.QueueDepth,
		}
		if v == t.Root() {
			scfg.Docs = docs
		} else {
			scfg.ParentID = t.Parent(v)
			scfg.ParentAddr = c.addrs[t.Parent(v)]
			scfg.HomeAddr = c.addrs[t.Root()]
		}
		srv, err := server.New(scfg)
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("cluster: node %d: %w", v, err)
		}
		if err := srv.Start(); err != nil {
			c.Stop()
			return nil, fmt.Errorf("cluster: start node %d: %w", v, err)
		}
		c.servers[v] = srv
		c.addrs[v] = srv.Addr()
	}

	// One injection conn per node, with a response-collector goroutine.
	for v := 0; v < t.Len(); v++ {
		conn, err := netw.Dial(c.addrs[v])
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("cluster: dial injector %d: %w", v, err)
		}
		c.injectConns[v] = conn
		go c.collect(conn)
	}
	return c, nil
}

func (c *Cluster) collect(conn transport.Conn) {
	for {
		env, err := conn.Recv()
		if err != nil {
			return
		}
		if env.Kind != netproto.TypeResponse {
			netproto.PutEnvelope(env)
			continue
		}
		now := time.Now()
		c.outstanding.Add(-1)
		c.responses.Add(1)
		c.totalHops.Add(int64(env.Hops))
		key := pendingKey{origin: env.Origin, reqID: env.ReqID}
		c.servedByMu.Lock()
		c.servedBy[env.ServedBy]++
		if sent, ok := c.sentAt[key]; ok {
			delete(c.sentAt, key)
			c.latencies = append(c.latencies, now.Sub(sent).Seconds())
		}
		c.servedByMu.Unlock()
		netproto.PutEnvelope(env) // fully consumed: recycle
	}
}

// Inject sends one client request for doc entering the tree at origin.
func (c *Cluster) Inject(origin int, doc core.DocID) error {
	if origin < 0 || origin >= c.t.Len() {
		return fmt.Errorf("cluster: origin %d out of range", origin)
	}
	c.injectMu.Lock()
	c.reqSeq[origin]++
	seq := c.reqSeq[origin]
	conn := c.injectConns[origin]
	c.injectMu.Unlock()
	c.servedByMu.Lock()
	c.sentAt[pendingKey{origin: origin, reqID: seq}] = time.Now()
	c.servedByMu.Unlock()
	c.outstanding.Add(1)
	return conn.Send(&netproto.Envelope{
		Kind: netproto.TypeRequest, From: -1, To: origin,
		Origin: origin, ReqID: seq, Doc: doc,
	})
}

// LatencySummary returns descriptive statistics of per-request response
// latencies in seconds (inject to response at the origin).
func (c *Cluster) LatencySummary() stats.Summary {
	c.servedByMu.Lock()
	samples := append([]float64(nil), c.latencies...)
	c.servedByMu.Unlock()
	return stats.Summarize(samples)
}

// Play replays a request schedule, compressing time by `speedup` (a request
// at schedule time T is injected at wall time T/speedup after start).
func (c *Cluster) Play(reqs []trace.Request, speedup float64) error {
	if speedup <= 0 {
		speedup = 1
	}
	start := time.Now()
	for i := range reqs {
		due := start.Add(time.Duration(reqs[i].Time / speedup * float64(time.Second)))
		if wait := time.Until(due); wait > 0 {
			time.Sleep(wait)
		}
		if err := c.Inject(reqs[i].Origin, reqs[i].Doc); err != nil {
			return fmt.Errorf("cluster: inject request %d: %w", i, err)
		}
	}
	return nil
}

// Drain waits until every injected request has been answered or the timeout
// elapses. It returns the number still outstanding.
func (c *Cluster) Drain(timeout time.Duration) int64 {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c.outstanding.Load() <= 0 {
			return 0
		}
		time.Sleep(5 * time.Millisecond)
	}
	return c.outstanding.Load()
}

// Responses returns the number of answered requests so far.
func (c *Cluster) Responses() int64 { return c.responses.Load() }

// Addr returns node v's transport address (empty when out of range).
func (c *Cluster) Addr(v int) string {
	if v < 0 || v >= len(c.addrs) {
		return ""
	}
	return c.addrs[v]
}

// Network returns the transport the cluster runs on.
func (c *Cluster) Network() transport.Network { return c.net }

// Tree returns the routing tree the cluster was built on.
func (c *Cluster) Tree() *tree.Tree { return c.t }

// MeanHops returns the average number of tree edges requests traversed
// before being served — the paper's "requests stumble on cache copies en
// route" effect made measurable.
func (c *Cluster) MeanHops() float64 {
	n := c.responses.Load()
	if n == 0 {
		return 0
	}
	return float64(c.totalHops.Load()) / float64(n)
}

// ServedBy returns how many requests each node has served (by responses).
func (c *Cluster) ServedBy() map[int]int64 {
	c.servedByMu.Lock()
	defer c.servedByMu.Unlock()
	out := make(map[int]int64, len(c.servedBy))
	for k, v := range c.servedBy {
		out[k] = v
	}
	return out
}

// ServedVector returns ServedBy as a dense per-node vector.
func (c *Cluster) ServedVector() core.Vector {
	m := c.ServedBy()
	out := make(core.Vector, c.t.Len())
	for v, n := range m {
		if v >= 0 && v < len(out) {
			out[v] = float64(n)
		}
	}
	return out
}

// Stats scrapes every server and returns the replies ordered by node id.
func (c *Cluster) Stats() ([]*netproto.Stats, error) {
	out := make([]*netproto.Stats, c.t.Len())
	for v := 0; v < c.t.Len(); v++ {
		conn, err := c.net.Dial(c.addrs[v])
		if err != nil {
			return nil, fmt.Errorf("cluster: stats dial %d: %w", v, err)
		}
		err = conn.Send(&netproto.Envelope{Kind: netproto.TypeStatsQuery, From: -1, To: v})
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("cluster: stats query %d: %w", v, err)
		}
		deadline := time.Now().Add(2 * time.Second)
		for {
			env, err := conn.Recv()
			if err != nil {
				conn.Close()
				return nil, fmt.Errorf("cluster: stats reply %d: %w", v, err)
			}
			if env.Kind == netproto.TypeStatsReply && env.Stats != nil {
				out[v] = env.Stats // keep Stats; the envelope shell recycles
				netproto.PutEnvelope(env)
				break
			}
			netproto.PutEnvelope(env)
			if time.Now().After(deadline) {
				conn.Close()
				return nil, fmt.Errorf("cluster: stats reply %d: timeout", v)
			}
		}
		conn.Close()
	}
	return out, nil
}

// Loads returns the per-node served rate (requests/second over each
// server's sliding window) via a stats scrape.
func (c *Cluster) Loads() (core.Vector, error) {
	sts, err := c.Stats()
	if err != nil {
		return nil, err
	}
	out := make(core.Vector, len(sts))
	for i, st := range sts {
		out[i] = st.Load
	}
	return out, nil
}

// CachedDocs returns each node's cache contents, by node id.
func (c *Cluster) CachedDocs() (map[int][]core.DocID, error) {
	sts, err := c.Stats()
	if err != nil {
		return nil, err
	}
	out := make(map[int][]core.DocID, len(sts))
	for i, st := range sts {
		docs := append([]core.DocID(nil), st.CachedDocs...)
		sort.Slice(docs, func(a, b int) bool { return docs[a] < docs[b] })
		out[i] = docs
	}
	return out, nil
}

// PartitionEdge cuts the routing-tree edge between node v and its parent
// (failure injection): traffic between the two servers is silently dropped
// in both directions until HealEdge. It returns false when v is the root or
// the transport does not support link faults (only the in-memory network
// does).
func (c *Cluster) PartitionEdge(v int) bool {
	return c.setEdge(v, true)
}

// HealEdge reverses PartitionEdge for node v.
func (c *Cluster) HealEdge(v int) bool {
	return c.setEdge(v, false)
}

func (c *Cluster) setEdge(v int, down bool) bool {
	if v < 0 || v >= c.t.Len() || v == c.t.Root() {
		return false
	}
	mem, ok := c.net.(*transport.MemoryNetwork)
	if !ok {
		return false
	}
	child, parent := c.addrs[v], c.addrs[c.t.Parent(v)]
	if down {
		mem.Partition(child, parent)
	} else {
		mem.Heal(child, parent)
	}
	return true
}

// StopServer kills one node's server (failure injection). Requests that
// would route through the dead node go unanswered; the rest of the tree
// keeps serving.
func (c *Cluster) StopServer(v int) {
	if v < 0 || v >= len(c.servers) || c.servers[v] == nil {
		return
	}
	c.servers[v].Stop()
}

// Stop shuts every server down.
func (c *Cluster) Stop() {
	c.injectMu.Lock()
	for _, conn := range c.injectConns {
		if conn != nil {
			conn.Close()
		}
	}
	c.injectMu.Unlock()
	for _, s := range c.servers {
		if s != nil {
			s.Stop()
		}
	}
}
