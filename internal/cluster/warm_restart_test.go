package cluster

import (
	"testing"
	"time"

	"webwave/internal/core"
	"webwave/internal/netproto"
	"webwave/internal/tree"
)

// TestWarmRestartServesHeldCopiesWithoutRefetch is the live acceptance test
// for the disk persistence tier: a node killed and revived with a DataDir
// must come back already holding the copies it held — before any request or
// delegation could have re-delivered them — re-announce the recovered duty
// upstream as reclaim frames, and serve requests for those documents itself
// instead of forwarding them to the parent.
func TestWarmRestartServesHeldCopiesWithoutRefetch(t *testing.T) {
	tr := tree.MustFromParents([]int{tree.NoParent, 0})
	docs := map[core.DocID][]byte{"d": []byte("warm-body")}
	cfg := smallConfig()
	cfg.Ancestors = true
	cfg.DataDir = t.TempDir()
	c, err := New(tr, docs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	// Drive traffic through the child until diffusion hands it a copy of d
	// with real serve duty.
	deadline := time.Now().Add(10 * time.Second)
	var dutySeen bool
	for time.Now().Before(deadline) && !dutySeen {
		for i := 0; i < 40; i++ {
			if err := c.Inject(1, "d"); err != nil {
				t.Fatal(err)
			}
		}
		if left := c.Drain(5 * time.Second); left != 0 {
			t.Fatalf("%d requests unanswered during warmup", left)
		}
		sts, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st := sts[1]; st != nil && st.Targets["d"] > 0 {
			dutySeen = true
		}
	}
	if !dutySeen {
		t.Fatal("child never acquired duty for d")
	}
	// Let a few maintenance ticks run so journalTick records the moved
	// target (admission journals rate as of admit time, which may be zero).
	time.Sleep(5 * cfg.GossipPeriod)

	if !c.KillNode(1) {
		t.Fatal("KillNode(1) reported no kill")
	}
	if err := c.RestartNode(1); err != nil {
		t.Fatal(err)
	}

	// Warm, not cold: the copy is back before any traffic could have
	// re-delivered it, and the recovered duty was re-announced upstream.
	st := waitNodeStats(t, c, 1, "restarted node warm and re-attached", func(st *netproto.Stats) bool {
		return st.Orphaned == 0 && st.WarmDocs >= 1
	})
	held := false
	for _, d := range st.CachedDocs {
		if d == "d" {
			held = true
		}
	}
	if !held {
		t.Fatalf("restarted node's cache %v does not hold d", st.CachedDocs)
	}
	if st.Targets["d"] <= 0 {
		t.Fatalf("recovered duty for d = %v, want > 0", st.Targets["d"])
	}
	waitNodeStats(t, c, 0, "root heard the reclaim re-announcement", func(st *netproto.Stats) bool {
		return st.ReclaimedDuty > 0
	})

	// The warm copy serves locally: requests entering at the child are
	// answered by the child, not forwarded to the home server.
	servedBefore := c.ServedBy()[1]
	for i := 0; i < 40; i++ {
		if err := c.Inject(1, "d"); err != nil {
			t.Fatal(err)
		}
	}
	if left := c.Drain(5 * time.Second); left != 0 {
		t.Fatalf("%d requests unanswered after warm restart", left)
	}
	if got := c.ServedBy()[1]; got <= servedBefore {
		t.Fatalf("warm node served nothing after restart (%d -> %d)", servedBefore, got)
	}
}
