// Package hierarchy simulates classic demand-driven hierarchical caching —
// the Harvest-style architecture of the paper's related work ([5], [9],
// [12], [25]) — as a protocol-level rival to WebWave rather than an
// analytic cost model.
//
// The mechanics: a request travels up the routing tree; the first node
// whose cache holds the document serves it; on the way back down, every
// node on the return path inserts the document into its (LRU-bounded)
// cache. There is no load-balancing objective at all: placement is a pure
// side effect of demand, so popular documents end up cached everywhere and
// the serving load concentrates wherever requests enter the tree.
//
// Comparing this against the document-level WebWave simulator
// (internal/docwave) on identical demand exposes exactly the trade-off the
// paper's introduction describes: hierarchical caching minimizes hit
// distance but does nothing for global load balance, while WebWave
// explicitly shapes who serves how much.
package hierarchy

import (
	"fmt"
	"math/rand"

	"webwave/internal/core"
	"webwave/internal/lru"
	"webwave/internal/trace"
	"webwave/internal/tree"
)

// Config parameterizes a hierarchical-caching simulation.
type Config struct {
	// CacheCapacity bounds each non-home node's cache (documents);
	// 0 = unlimited, the common Harvest deployment assumption.
	CacheCapacity int
	// Seed drives the request sampling.
	Seed int64
}

// Result summarizes a run.
type Result struct {
	Requests int64
	// Served[v] counts requests served at node v.
	Served core.Vector
	// HitHops[h] counts requests served h hops from their origin.
	HitHops []int64
	// MeanHops is the average serving distance.
	MeanHops float64
	// MaxLoad and MaxLoadShare describe the busiest server.
	MaxLoad      float64
	MaxLoadShare float64
	// CopiesTotal counts cache entries across non-home nodes at the end.
	CopiesTotal int
}

// Sim replays sampled requests against a tree of LRU caches.
type Sim struct {
	t      *tree.Tree
	demand *trace.Demand
	cfg    Config
	caches []*lru.Cache
	bodies map[core.DocID][]byte
	served core.Vector
	hops   []int64
	reqs   int64
}

// NewSim builds a simulator; the home server (tree root) holds every
// document permanently.
func NewSim(t *tree.Tree, demand *trace.Demand, cfg Config) (*Sim, error) {
	if err := demand.Validate(t.Len()); err != nil {
		return nil, fmt.Errorf("hierarchy: %w", err)
	}
	s := &Sim{
		t:      t,
		demand: demand,
		cfg:    cfg,
		caches: make([]*lru.Cache, t.Len()),
		bodies: make(map[core.DocID][]byte, len(demand.Docs)),
		served: make(core.Vector, t.Len()),
		hops:   make([]int64, t.Height()+1),
	}
	for v := range s.caches {
		s.caches[v] = lru.New(cfg.CacheCapacity)
	}
	for _, d := range demand.Docs {
		s.bodies[d.ID] = []byte("body:" + string(d.ID))
	}
	return s, nil
}

// Request processes one request for doc entering at origin: serve at the
// first node on the path to the root holding the document (the home always
// does) and cache on the return path.
func (s *Sim) Request(origin int, doc core.DocID) (servedAt, hops int) {
	v := origin
	dist := 0
	for {
		if v == s.t.Root() || s.caches[v].Contains(doc) {
			break
		}
		v = s.t.Parent(v)
		dist++
	}
	if v != s.t.Root() {
		s.caches[v].Get(doc) // touch recency on the hit
	}
	s.served[v]++
	s.reqs++
	s.hops[dist]++
	// Cache on the return path (every node strictly between the server and
	// the origin, plus the origin itself).
	body := s.bodies[doc]
	w := origin
	for w != v {
		s.caches[w].Put(doc, body)
		w = s.t.Parent(w)
	}
	return v, dist
}

// Run samples n requests proportional to the demand matrix and returns the
// summary. Sampling is deterministic for a fixed seed.
func (s *Sim) Run(n int) (*Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("hierarchy: request count %d <= 0", n)
	}
	type cell struct {
		origin int
		doc    core.DocID
		weight float64
	}
	var cells []cell
	total := 0.0
	for v, row := range s.demand.Rates {
		for j, r := range row {
			if r > 0 {
				cells = append(cells, cell{origin: v, doc: s.demand.Docs[j].ID, weight: r})
				total += r
			}
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("hierarchy: empty demand")
	}
	// Cumulative weights for sampling.
	cum := make([]float64, len(cells))
	acc := 0.0
	for i, c := range cells {
		acc += c.weight
		cum[i] = acc
	}
	rng := rand.New(rand.NewSource(s.cfg.Seed))
	for i := 0; i < n; i++ {
		x := rng.Float64() * total
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		s.Request(cells[lo].origin, cells[lo].doc)
	}
	return s.result(), nil
}

func (s *Sim) result() *Result {
	res := &Result{
		Requests: s.reqs,
		Served:   core.CloneVec(s.served),
		HitHops:  append([]int64(nil), s.hops...),
	}
	var hopSum int64
	for h, c := range s.hops {
		hopSum += int64(h) * c
	}
	if s.reqs > 0 {
		res.MeanHops = float64(hopSum) / float64(s.reqs)
	}
	max, _ := core.MaxVec(s.served)
	res.MaxLoad = max
	if s.reqs > 0 {
		res.MaxLoadShare = max / float64(s.reqs)
	}
	for v, c := range s.caches {
		if v != s.t.Root() {
			res.CopiesTotal += c.Len()
		}
	}
	return res
}

// CacheContents returns node v's cached documents, most recent first.
func (s *Sim) CacheContents(v int) []core.DocID { return s.caches[v].Keys() }
