package hierarchy

import (
	"math"
	"math/rand"
	"testing"

	"webwave/internal/core"
	"webwave/internal/trace"
	"webwave/internal/tree"
)

func chainDemand(t *testing.T) (*tree.Tree, *trace.Demand) {
	t.Helper()
	tr := tree.MustFromParents([]int{tree.NoParent, 0, 1}) // 0 <- 1 <- 2
	d := &trace.Demand{
		Docs:  []core.Document{{ID: "a"}, {ID: "b"}},
		Rates: [][]float64{{0, 0}, {0, 0}, {10, 5}},
	}
	return tr, d
}

func TestFirstRequestGoesToHome(t *testing.T) {
	tr, d := chainDemand(t)
	s, err := NewSim(tr, d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	servedAt, hops := s.Request(2, "a")
	if servedAt != tr.Root() || hops != 2 {
		t.Errorf("first request served at %d after %d hops, want root after 2", servedAt, hops)
	}
}

func TestReturnPathCaching(t *testing.T) {
	tr, d := chainDemand(t)
	s, err := NewSim(tr, d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s.Request(2, "a")
	// Both node 1 and node 2 now hold a copy.
	if len(s.CacheContents(1)) != 1 || len(s.CacheContents(2)) != 1 {
		t.Fatalf("caches after miss: n1=%v n2=%v", s.CacheContents(1), s.CacheContents(2))
	}
	// Second request hits at the origin itself.
	servedAt, hops := s.Request(2, "a")
	if servedAt != 2 || hops != 0 {
		t.Errorf("second request served at %d after %d hops, want origin hit", servedAt, hops)
	}
}

func TestBoundedCacheEvicts(t *testing.T) {
	tr := tree.MustFromParents([]int{tree.NoParent, 0})
	docs := make([]core.Document, 5)
	rates := [][]float64{make([]float64, 5), make([]float64, 5)}
	for i := range docs {
		docs[i] = core.Document{ID: core.DocID(string(rune('a' + i)))}
		rates[1][i] = 1
	}
	d := &trace.Demand{Docs: docs, Rates: rates}
	s, err := NewSim(tr, d, Config{CacheCapacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range docs {
		s.Request(1, doc.ID)
	}
	if got := len(s.CacheContents(1)); got != 2 {
		t.Errorf("bounded cache holds %d docs, want 2", got)
	}
}

func TestRunSamplesProportionally(t *testing.T) {
	tr, d := chainDemand(t)
	s, err := NewSim(tr, d, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(30000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 30000 {
		t.Fatalf("requests = %d", res.Requests)
	}
	// After warmup nearly everything hits at the origin: mean hops ≈ 0.
	if res.MeanHops > 0.01 {
		t.Errorf("mean hops = %v, want ~0 with unlimited caches", res.MeanHops)
	}
	// And the origin node serves essentially all load — the imbalance
	// WebWave exists to fix.
	if res.MaxLoadShare < 0.99 {
		t.Errorf("max load share = %v, want ≈1 (all at the requesting leaf)", res.MaxLoadShare)
	}
}

func TestRunValidation(t *testing.T) {
	tr, d := chainDemand(t)
	s, err := NewSim(tr, d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0); err == nil {
		t.Error("n=0 accepted")
	}
	empty := &trace.Demand{Docs: d.Docs, Rates: [][]float64{{0, 0}, {0, 0}, {0, 0}}}
	s2, err := NewSim(tr, empty, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Run(10); err == nil {
		t.Error("empty demand accepted")
	}
	short := &trace.Demand{Docs: d.Docs, Rates: d.Rates[:1]}
	if _, err := NewSim(tr, short, Config{}); err == nil {
		t.Error("short demand accepted")
	}
}

func TestServedCountsConserve(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr, err := tree.Random(15, rng)
	if err != nil {
		t.Fatal(err)
	}
	d, err := trace.ZipfDemand(tr, trace.ZipfDemandConfig{NumDocs: 8, Skew: 1, TotalRate: 100}, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSim(tr, d, Config{Seed: 2, CacheCapacity: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(5000)
	if err != nil {
		t.Fatal(err)
	}
	if got := core.SumVec(res.Served); got != 5000 {
		t.Errorf("served sum = %v, want 5000", got)
	}
	var hopsTotal int64
	for _, c := range res.HitHops {
		hopsTotal += c
	}
	if hopsTotal != 5000 {
		t.Errorf("hop histogram sums to %d", hopsTotal)
	}
	if math.IsNaN(res.MeanHops) || res.MeanHops < 0 {
		t.Errorf("mean hops = %v", res.MeanHops)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	tr, d := chainDemand(t)
	run := func() *Result {
		s, err := NewSim(tr, d, Config{Seed: 42, CacheCapacity: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(2000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !core.VecAlmostEqual(a.Served, b.Served, 0) {
		t.Error("same seed produced different served vectors")
	}
}
