package plot

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestRenderLinear(t *testing.T) {
	s := Series{Name: "ramp", Y: []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}}
	out, err := Render(Config{Width: 20, Height: 10, Title: "T"}, s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "T\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// Title + height rows + axis + x labels + legend.
	if len(lines) < 10+3 {
		t.Fatalf("too few lines (%d):\n%s", len(lines), out)
	}
	// A monotone ramp fills the top-right and bottom-left: the first plot
	// row must contain a marker right of center, the last row left of it.
	top := lines[1]
	bottom := lines[10]
	if !strings.Contains(top, "*") {
		t.Errorf("top row has no marker: %q", top)
	}
	if !strings.Contains(bottom, "*") {
		t.Errorf("bottom row has no marker: %q", bottom)
	}
	if strings.Index(top, "*") < strings.Index(bottom, "*") {
		t.Errorf("ramp plotted downward:\n%s", out)
	}
	if !strings.Contains(out, "ramp") {
		t.Errorf("legend missing series name:\n%s", out)
	}
}

func TestRenderSemilogStraightensGeometricDecay(t *testing.T) {
	// A geometric series is a straight line in log space: every column's
	// marker should step down by roughly the same number of rows.
	y := make([]float64, 30)
	v := 1000.0
	for i := range y {
		y[i] = v
		v *= 0.7
	}
	out, err := Render(Config{Width: 30, Height: 15, LogY: true}, Series{Name: "geo", Y: y})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(out, "\n")
	colRow := map[int]int{}
	for r := 0; r < 15; r++ {
		body := lines[r][strings.Index(lines[r], "|")+1:]
		for c, ch := range body {
			if ch == '*' {
				colRow[c] = r
			}
		}
	}
	if len(colRow) < 20 {
		t.Fatalf("only %d columns plotted:\n%s", len(colRow), out)
	}
	// Check monotone descent with near-constant slope.
	prevRow := -1
	for c := 0; c < 30; c++ {
		r, ok := colRow[c]
		if !ok {
			continue
		}
		if prevRow >= 0 && r < prevRow {
			t.Fatalf("semilog plot of decay not monotone at col %d:\n%s", c, out)
		}
		prevRow = r
	}
	// Axis labels are back-transformed to linear values.
	if !strings.Contains(out, "1e+03") && !strings.Contains(out, "1000") {
		t.Errorf("y-axis label not in linear units:\n%s", out)
	}
}

func TestRenderSkipsNonPositiveInLogMode(t *testing.T) {
	out, err := Render(Config{LogY: true}, Series{Y: []float64{0, -5, 10, 100}})
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Fatal("empty output")
	}
	// All-non-positive is no data.
	if _, err := Render(Config{LogY: true}, Series{Y: []float64{0, -1}}); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v, want ErrNoData", err)
	}
}

func TestRenderNoData(t *testing.T) {
	if _, err := Render(Config{}); !errors.Is(err, ErrNoData) {
		t.Errorf("no series: err = %v, want ErrNoData", err)
	}
	if _, err := Render(Config{}, Series{Y: nil}); !errors.Is(err, ErrNoData) {
		t.Errorf("empty series: err = %v, want ErrNoData", err)
	}
	if _, err := Render(Config{}, Series{Y: []float64{math.NaN(), math.Inf(1)}}); !errors.Is(err, ErrNoData) {
		t.Errorf("non-finite series: err = %v, want ErrNoData", err)
	}
}

func TestRenderFlatSeries(t *testing.T) {
	out, err := Render(Config{Width: 10, Height: 5}, Series{Y: []float64{3, 3, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Errorf("flat series not plotted:\n%s", out)
	}
}

func TestRenderMultipleSeriesDistinctMarkers(t *testing.T) {
	a := Series{Name: "up", Y: []float64{0, 1, 2, 3}}
	b := Series{Name: "down", Y: []float64{3, 2, 1, 0}}
	out, err := Render(Config{Width: 12, Height: 6}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Errorf("expected two marker styles:\n%s", out)
	}
}

func TestRenderBinsLongSeries(t *testing.T) {
	y := make([]float64, 10000)
	for i := range y {
		y[i] = float64(i)
	}
	out, err := Render(Config{Width: 40, Height: 8}, Series{Y: y})
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(out, "\n") {
		if len(line) > 60 {
			t.Fatalf("line wider than plot area: %q", line)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b,
		Series{Name: "dist", Y: []float64{10, 5, 2.5}},
		Series{Name: "bound", Y: []float64{12, 6}},
	)
	if err != nil {
		t.Fatal(err)
	}
	want := "x,dist,bound\n0,10,12\n1,5,6\n2,2.5,\n"
	if b.String() != want {
		t.Errorf("csv = %q, want %q", b.String(), want)
	}
}

func TestWriteCSVDefaultsAndErrors(t *testing.T) {
	var b strings.Builder
	if err := WriteCSV(&b, Series{Y: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "x,series0\n") {
		t.Errorf("default name missing: %q", b.String())
	}
	if err := WriteCSV(&b); !errors.Is(err, ErrNoData) {
		t.Errorf("no series: err = %v", err)
	}
	if err := WriteCSV(&b, Series{}); !errors.Is(err, ErrNoData) {
		t.Errorf("all-empty: err = %v", err)
	}
}
