// Package plot renders small ASCII charts and CSV series for the paper's
// figures. The simulators produce per-round series (Euclidean distance to
// TLB, tracking error); this package turns them into terminal plots — the
// semilog view of Figure 6b — and into CSV for external tooling, with no
// dependencies beyond the standard library.
package plot

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named curve, sampled at integer x = 0..len(Y)-1.
type Series struct {
	Name string
	Y    []float64
}

// markers distinguish overlapping series in render order.
var markers = []byte{'*', '+', 'o', 'x', '#', '@'}

// Config shapes an ASCII chart.
type Config struct {
	Title  string
	Width  int  // plot-area columns (default 60)
	Height int  // plot-area rows (default 16)
	LogY   bool // semilog: log10 y-axis (non-positive samples are skipped)
	YLabel string
	XLabel string
}

func (c Config) withDefaults() Config {
	if c.Width <= 0 {
		c.Width = 60
	}
	if c.Width > 240 {
		c.Width = 240
	}
	if c.Height <= 0 {
		c.Height = 16
	}
	if c.Height > 80 {
		c.Height = 80
	}
	return c
}

// ErrNoData is returned when nothing is plottable (no series, empty series,
// or all samples filtered out by LogY).
var ErrNoData = errors.New("plot: no plottable data")

// Render draws the series onto a character grid.
//
// Each sample maps to one cell; when a series is longer than the plot
// width, samples are binned by column and the bin mean is drawn (for LogY,
// the geometric mean, matching the visual of a semilog plot).
func Render(cfg Config, series ...Series) (string, error) {
	cfg = cfg.withDefaults()

	// Collect plottable values and the x range.
	maxLen := 0
	yMin, yMax := math.Inf(1), math.Inf(-1)
	usable := 0
	for _, s := range series {
		if len(s.Y) > maxLen {
			maxLen = len(s.Y)
		}
		for _, v := range s.Y {
			if math.IsNaN(v) || math.IsInf(v, 0) || (cfg.LogY && v <= 0) {
				continue
			}
			usable++
			w := v
			if cfg.LogY {
				w = math.Log10(v)
			}
			if w < yMin {
				yMin = w
			}
			if w > yMax {
				yMax = w
			}
		}
	}
	if maxLen == 0 || usable == 0 {
		return "", ErrNoData
	}
	if yMax == yMin {
		yMax = yMin + 1 // flat series: one-unit band
	}

	grid := make([][]byte, cfg.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cfg.Width))
	}

	for si, s := range series {
		mark := markers[si%len(markers)]
		cols := columnValues(s.Y, cfg.Width, maxLen, cfg.LogY)
		for col, cv := range cols {
			if !cv.ok {
				continue
			}
			frac := (cv.v - yMin) / (yMax - yMin)
			row := int(math.Round(float64(cfg.Height-1) * (1 - frac)))
			if row < 0 {
				row = 0
			}
			if row >= cfg.Height {
				row = cfg.Height - 1
			}
			grid[row][col] = mark
		}
	}

	var b strings.Builder
	if cfg.Title != "" {
		fmt.Fprintf(&b, "%s\n", cfg.Title)
	}
	axisLabel := func(w float64) string {
		if cfg.LogY {
			return fmt.Sprintf("%9.3g", math.Pow(10, w))
		}
		return fmt.Sprintf("%9.3g", w)
	}
	for r := 0; r < cfg.Height; r++ {
		label := strings.Repeat(" ", 9)
		switch r {
		case 0:
			label = axisLabel(yMax)
		case cfg.Height / 2:
			label = axisLabel(yMin + (yMax-yMin)/2)
		case cfg.Height - 1:
			label = axisLabel(yMin)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 9), strings.Repeat("-", cfg.Width))
	fmt.Fprintf(&b, "%s  0%sx=%d\n", strings.Repeat(" ", 9),
		strings.Repeat(" ", maxInt(1, cfg.Width-len(fmt.Sprintf("x=%d", maxLen-1))-1)), maxLen-1)
	if cfg.YLabel != "" || cfg.XLabel != "" {
		fmt.Fprintf(&b, "          y: %s   x: %s\n", cfg.YLabel, cfg.XLabel)
	}
	for si, s := range series {
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("series %d", si)
		}
		fmt.Fprintf(&b, "          %c %s\n", markers[si%len(markers)], name)
	}
	return b.String(), nil
}

// colValue is one column's aggregated sample.
type colValue struct {
	v  float64
	ok bool
}

// columnValues bins a series into the plot width. Values are pre-mapped to
// log space when logY is set, so the bin mean is a geometric mean.
func columnValues(y []float64, width, maxLen int, logY bool) []colValue {
	out := make([]colValue, width)
	sums := make([]float64, width)
	counts := make([]int, width)
	denom := maxLen
	if denom > 1 {
		denom--
	}
	for i, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) || (logY && v <= 0) {
			continue
		}
		col := 0
		if denom > 0 {
			col = int(math.Round(float64(i) / float64(denom) * float64(width-1)))
		}
		if col < 0 || col >= width {
			continue
		}
		w := v
		if logY {
			w = math.Log10(v)
		}
		sums[col] += w
		counts[col]++
	}
	for c := range out {
		if counts[c] > 0 {
			out[c] = colValue{v: sums[c] / float64(counts[c]), ok: true}
		}
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// WriteCSV emits the series as CSV: a header row, then one row per x with
// one column per series. Series shorter than the longest leave blanks.
func WriteCSV(w io.Writer, series ...Series) error {
	if len(series) == 0 {
		return ErrNoData
	}
	maxLen := 0
	header := make([]string, 0, len(series)+1)
	header = append(header, "x")
	for i, s := range series {
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("series%d", i)
		}
		header = append(header, name)
		if len(s.Y) > maxLen {
			maxLen = len(s.Y)
		}
	}
	if maxLen == 0 {
		return ErrNoData
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return fmt.Errorf("plot: write csv header: %w", err)
	}
	row := make([]string, len(series)+1)
	for x := 0; x < maxLen; x++ {
		row[0] = fmt.Sprintf("%d", x)
		for i, s := range series {
			if x < len(s.Y) {
				row[i+1] = fmt.Sprintf("%g", s.Y[x])
			} else {
				row[i+1] = ""
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return fmt.Errorf("plot: write csv row %d: %w", x, err)
		}
	}
	return nil
}
