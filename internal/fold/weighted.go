package fold

import (
	"fmt"
	"math"

	"webwave/internal/core"
	"webwave/internal/tree"
)

// ComputeWeighted generalizes WebFold to heterogeneous server capacities —
// an extension beyond the paper, whose Section 5.1 assumes "all servers are
// modeled with uniform capacity".
//
// With per-node capacities c the balance objective becomes the
// lexicographic minimum of the sorted *utilization* profile L_v/c_v,
// subject to the same Constraint 1 and NSS. Folds now equalize utilization:
// a fold with spontaneous total E and capacity total C assigns each member
// v the load c_v·E/C. Setting every capacity to 1 recovers Compute exactly.
func ComputeWeighted(t *tree.Tree, e, capacity core.Vector) (*Result, error) {
	if capacity == nil {
		return nil, fmt.Errorf("webfold: nil capacity vector (use Compute for uniform capacities)")
	}
	return computeWeighted(t, e, capacity)
}

// Utilization returns the per-node utilizations L_v/c_v for a load
// assignment under capacities c.
func Utilization(load, capacity core.Vector) (core.Vector, error) {
	if len(load) != len(capacity) {
		return nil, fmt.Errorf("fold: load length %d != capacity length %d", len(load), len(capacity))
	}
	out := make(core.Vector, len(load))
	for i := range load {
		if !(capacity[i] > 0) {
			return nil, fmt.Errorf("fold: capacity[%d] = %v must be positive", i, capacity[i])
		}
		out[i] = load[i] / capacity[i]
	}
	return out, nil
}

// MaxDensityRootedAverageWeighted is the capacity-weighted optimality
// oracle: the maximum over connected subtrees U of subtree(r) containing r
// of Σ_{v∈U} e_v / Σ_{v∈U} c_v, computed by the same parametric search as
// the unweighted oracle with node weights e_v − λ·c_v.
func MaxDensityRootedAverageWeighted(t *tree.Tree, e, capacity core.Vector, r int) float64 {
	nodes := t.SubtreeNodes(r)
	lo, hi := 0.0, 0.0
	for _, v := range nodes {
		if d := e[v] / capacity[v]; d > hi {
			hi = d
		}
	}
	if hi == 0 {
		return 0
	}
	best := make(map[int]float64, len(nodes))
	feasible := func(lambda float64) bool {
		for i := len(nodes) - 1; i >= 0; i-- { // reverse pre-order: children first
			v := nodes[i]
			b := e[v] - lambda*capacity[v]
			t.EachChild(v, func(c int) {
				if bc := best[c]; bc > 0 {
					b += bc
				}
			})
			best[v] = b
		}
		return best[r] >= 0
	}
	for i := 0; i < 100 && hi-lo > 1e-12*(1+hi); i++ {
		mid := (lo + hi) / 2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// VerifyWeighted checks a ComputeWeighted result: flow feasibility (NSS and
// Constraint 1 are capacity-independent), monotone non-increasing
// utilization from root to leaf, load-vector/fold consistency, and the
// weighted optimality oracle.
func VerifyWeighted(t *tree.Tree, e, capacity core.Vector, res *Result, eps float64) error {
	if err := VerifyConstraint1(t, e, res.Load, eps); err != nil {
		return err
	}
	if err := VerifyNSS(t, e, res.Load, eps); err != nil {
		return err
	}
	util, err := Utilization(res.Load, capacity)
	if err != nil {
		return err
	}
	if err := VerifyMonotone(t, util, eps); err != nil {
		return fmt.Errorf("weighted (utilization): %w", err)
	}
	if err := VerifyContiguous(t, res); err != nil {
		return err
	}
	for _, f := range res.Folds {
		for _, m := range f.Members {
			if math.Abs(util[m]-f.Load) > 1e-6*(1+math.Abs(f.Load)) {
				return fmt.Errorf("fold: utilization[%d]=%.9g inconsistent with fold %d per-unit load %.9g",
					m, util[m], f.Root, f.Load)
			}
		}
		want := MaxDensityRootedAverageWeighted(t, e, capacity, f.Root)
		if math.Abs(f.Load-want) > 1e-6*(1+math.Abs(want)) {
			return fmt.Errorf("fold: weighted optimality violated: fold %d per-unit load %.9g != oracle %.9g",
				f.Root, f.Load, want)
		}
	}
	return nil
}
