// Package fold implements WebFold, the paper's offline, provably optimal
// algorithm for computing the tree-load-balanced (TLB) assignment (Section 4,
// Figure 3).
//
// WebFold partitions the routing tree into "folds": contiguous regions whose
// nodes can all be assigned equal load with no load crossing fold
// boundaries. A fold j is foldable into its parent fold i when the load per
// node of j exceeds that of i; WebFold repeatedly folds the foldable fold
// with maximum per-node load until none remains, then assigns every node the
// spontaneous total of its fold divided by the fold size.
//
// The package also provides the verification tooling used throughout the
// reproduction: forwarded-rate computation by flow conservation, checkers
// for Constraint 1 (root forwards nothing), Constraint 2 (NSS), Lemma 1
// (loads monotonically non-increasing from root to leaf), Lemma 2 (no load
// crosses fold boundaries), and an independent optimality oracle based on
// the maximum-density rooted-subtree characterization of TLB.
package fold

import (
	"container/heap"
	"fmt"
	"sort"

	"webwave/internal/core"
	"webwave/internal/tree"
)

// Fold is one contiguous region of the folded tree. Under the paper's
// uniform-capacity model every member serves Load requests per second; the
// fold root forwards nothing (Lemma 2). Under ComputeWeighted, Load is the
// fold's per-unit-capacity load and a member with capacity c serves c·Load.
type Fold struct {
	Root        int     // shallowest member
	Members     []int   // sorted ascending
	Spontaneous float64 // sum of E over members
	Load        float64 // Spontaneous / (total member capacity)
}

// Step records one fold operation for trace output (the paper's Figure 4
// walk-through shows the complete sequence).
type Step struct {
	ChildRoot  int     // root of the fold being folded
	ParentRoot int     // root of the fold absorbing it
	ChildAvg   float64 // per-node load of the child fold before folding
	ParentAvg  float64 // per-node load of the parent fold before folding
	MergedAvg  float64 // per-node load of the merged fold
	FoldsLeft  int     // number of folds remaining after this step
}

func (s Step) String() string {
	return fmt.Sprintf("fold %d(%.4g) -> %d(%.4g) => %.4g [%d folds left]",
		s.ChildRoot, s.ChildAvg, s.ParentRoot, s.ParentAvg, s.MergedAvg, s.FoldsLeft)
}

// Result is the output of WebFold: the TLB load assignment plus the fold
// structure that certifies it.
type Result struct {
	Load    core.Vector // L: TLB request rate served by each node
	Forward core.Vector // A: net rate each node forwards to its parent
	FoldOf  []int       // fold root containing each node
	Folds   []Fold      // final folds, sorted by root id
	Trace   []Step      // complete folding sequence, in execution order
}

// MaxLoad returns the largest per-node load, which TLB minimizes
// (Definition 1).
func (r *Result) MaxLoad() float64 {
	m, _ := core.MaxVec(r.Load)
	return m
}

// FoldCount returns the number of folds in the final partition.
func (r *Result) FoldCount() int { return len(r.Folds) }

// IsGLE reports whether the TLB assignment is also GLE (all loads equal
// within eps) — the fortunate case of the paper's Figure 2(a).
func (r *Result) IsGLE(eps float64) bool {
	if len(r.Load) == 0 {
		return true
	}
	first := r.Load[0]
	for _, l := range r.Load[1:] {
		if !core.AlmostEqual(l, first, eps) {
			return false
		}
	}
	return true
}

// Compute runs WebFold on tree t with spontaneous rates e and returns the
// TLB assignment. It runs in O((n + merges·log n)·amortized) time using a
// lazy max-heap of fold candidates; see ComputeNaive for the literal
// O(n²) transcription of the paper's Figure 3 used as a test oracle.
func Compute(t *tree.Tree, e core.Vector) (*Result, error) {
	return computeWeighted(t, e, nil)
}

// computeWeighted is the shared folding engine. weight is the per-node
// capacity vector; nil means unit capacities (the paper's uniform-server
// assumption), for which per-unit load and per-node load coincide.
func computeWeighted(t *tree.Tree, e, weight core.Vector) (*Result, error) {
	n := t.Len()
	if err := core.ValidateRates(e, n); err != nil {
		return nil, fmt.Errorf("webfold: %w", err)
	}
	if weight != nil {
		if len(weight) != n {
			return nil, fmt.Errorf("webfold: capacity length %d != n %d", len(weight), n)
		}
		for i, w := range weight {
			if !(w > 0) {
				return nil, fmt.Errorf("webfold: capacity[%d] = %v must be positive", i, w)
			}
		}
	}
	wOf := func(i int) float64 {
		if weight == nil {
			return 1
		}
		return weight[i]
	}

	st := &foldingState{
		t:       t,
		dsu:     make([]int, n),
		wsum:    make([]float64, n),
		esum:    make([]float64, n),
		version: make([]int, n),
		kids:    make([][]int, n),
		weight:  weight,
	}
	for i := 0; i < n; i++ {
		st.dsu[i] = i
		st.wsum[i] = wOf(i)
		st.esum[i] = e[i]
		st.kids[i] = t.Children(i)
	}

	h := &candidateHeap{}
	heap.Init(h)
	for i := 0; i < n; i++ {
		if i != t.Root() {
			heap.Push(h, candidate{avg: e[i] / wOf(i), root: i, version: 0})
		}
	}

	var trace []Step
	foldsLeft := n
	for h.Len() > 0 {
		c := heap.Pop(h).(candidate)
		r := st.find(c.root)
		if r != c.root || st.version[r] != c.version {
			continue // stale entry
		}
		if r == st.find(t.Root()) {
			continue // the fold containing the home server never folds upward
		}
		parentRoot := st.find(t.Parent(r))
		childAvg := st.esum[r] / st.wsum[r]
		parentAvg := st.esum[parentRoot] / st.wsum[parentRoot]
		if !(childAvg > parentAvg) {
			// Not foldable now. A relevant future event (this fold absorbing
			// a child, or its parent fold merging upward) re-pushes it.
			continue
		}

		// Fold r into parentRoot.
		formerKids := st.kids[r]
		st.dsu[r] = parentRoot
		st.wsum[parentRoot] += st.wsum[r]
		st.esum[parentRoot] += st.esum[r]
		st.kids[parentRoot] = append(st.kids[parentRoot], formerKids...)
		st.kids[r] = nil
		st.version[parentRoot]++
		foldsLeft--
		mergedAvg := st.esum[parentRoot] / st.wsum[parentRoot]
		trace = append(trace, Step{
			ChildRoot: r, ParentRoot: parentRoot,
			ChildAvg: childAvg, ParentAvg: parentAvg,
			MergedAvg: mergedAvg, FoldsLeft: foldsLeft,
		})

		// The merged fold's average rose; it may now fold into its own
		// parent.
		if parentRoot != st.find(t.Root()) {
			heap.Push(h, candidate{avg: mergedAvg, root: parentRoot, version: st.version[parentRoot]})
		}
		// The former child folds of r now compare against the merged fold's
		// average, which is lower than r's was; they may have become
		// foldable.
		for _, k := range formerKids {
			kr := st.find(k)
			if kr == parentRoot {
				continue
			}
			heap.Push(h, candidate{
				avg:     st.esum[kr] / st.wsum[kr],
				root:    kr,
				version: st.version[kr],
			})
		}
	}

	return st.buildResult(e, trace), nil
}

type foldingState struct {
	t       *tree.Tree
	dsu     []int // union-find; representative is the fold's root node
	wsum    []float64
	esum    []float64
	version []int
	kids    [][]int     // candidate child fold roots (validated through find)
	weight  core.Vector // nil = unit capacities
}

func (st *foldingState) find(x int) int {
	for st.dsu[x] != x {
		st.dsu[x] = st.dsu[st.dsu[x]] // path halving
		x = st.dsu[x]
	}
	return x
}

func (st *foldingState) buildResult(e core.Vector, trace []Step) *Result {
	t := st.t
	n := t.Len()
	res := &Result{
		Load:   make(core.Vector, n),
		FoldOf: make([]int, n),
		Trace:  trace,
	}
	members := make(map[int][]int)
	for i := 0; i < n; i++ {
		r := st.find(i)
		res.FoldOf[i] = r
		w := 1.0
		if st.weight != nil {
			w = st.weight[i]
		}
		res.Load[i] = w * st.esum[r] / st.wsum[r]
		members[r] = append(members[r], i)
	}
	roots := make([]int, 0, len(members))
	for r := range members {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	for _, r := range roots {
		sort.Ints(members[r])
		res.Folds = append(res.Folds, Fold{
			Root:        r,
			Members:     members[r],
			Spontaneous: st.esum[r],
			Load:        st.esum[r] / st.wsum[r],
		})
	}
	res.Forward = ComputeForward(t, e, res.Load)
	return res
}

// candidate is a lazily validated heap entry for one fold.
type candidate struct {
	avg     float64
	root    int
	version int
}

// candidateHeap is a max-heap on (avg desc, root asc, version asc): the
// paper folds "the foldable node with maximum per node load" first; root id
// breaks ties deterministically.
type candidateHeap []candidate

func (h candidateHeap) Len() int { return len(h) }
func (h candidateHeap) Less(i, j int) bool {
	if h[i].avg != h[j].avg {
		return h[i].avg > h[j].avg
	}
	if h[i].root != h[j].root {
		return h[i].root < h[j].root
	}
	return h[i].version < h[j].version
}
func (h candidateHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candidateHeap) Push(x interface{}) { *h = append(*h, x.(candidate)) }
func (h *candidateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// ComputeForward derives the forwarded-rate vector A from a load assignment
// by flow conservation: A_i = E_i + Σ_{j ∈ C_i} A_j − L_i (Table 1 of the
// paper), evaluated bottom-up.
func ComputeForward(t *tree.Tree, e, l core.Vector) core.Vector {
	a := make(core.Vector, t.Len())
	for _, v := range t.PostOrder() {
		sum := e[v] - l[v]
		t.EachChild(v, func(c int) {
			sum += a[c]
		})
		a[v] = sum
	}
	return a
}
