package fold

import (
	"fmt"
	"math"

	"webwave/internal/core"
	"webwave/internal/tree"
)

// GLE returns the global-load-equality assignment: every node serves the
// total spontaneous rate divided by the node count. GLE is the
// unconstrained optimum that TLB approaches when Constraints 1 and 2 permit.
func GLE(e core.Vector) core.Vector {
	n := len(e)
	if n == 0 {
		return nil
	}
	return core.UniformVec(n, core.SumVec(e)/float64(n))
}

// VerifyNSS checks Constraint 2 (no sibling sharing): the net rate every
// node forwards up the tree is non-negative, A_i ≥ 0. A negative A_i would
// mean load flowing down into a subtree that never requested it.
func VerifyNSS(t *tree.Tree, e, l core.Vector, eps float64) error {
	a := ComputeForward(t, e, l)
	for v, av := range a {
		if av < -eps {
			return fmt.Errorf("fold: NSS violated at node %d: A=%.6g < 0", v, av)
		}
	}
	return nil
}

// VerifyConstraint1 checks that the root forwards nothing: A_r = 0, i.e. the
// assignment serves exactly the offered load.
func VerifyConstraint1(t *tree.Tree, e, l core.Vector, eps float64) error {
	a := ComputeForward(t, e, l)
	r := t.Root()
	if math.Abs(a[r]) > eps {
		return fmt.Errorf("fold: Constraint 1 violated: root forwards A=%.6g", a[r])
	}
	return nil
}

// VerifyMonotone checks Lemma 1: the WebFold load assignment is
// monotonically non-increasing from root toward the leaves — for every edge
// (parent i, child j), L_i ≥ L_j.
func VerifyMonotone(t *tree.Tree, l core.Vector, eps float64) error {
	for _, edge := range t.Edges() {
		i, j := edge[0], edge[1]
		if l[i] < l[j]-eps {
			return fmt.Errorf("fold: Lemma 1 violated on edge (%d,%d): parent L=%.6g < child L=%.6g", i, j, l[i], l[j])
		}
	}
	return nil
}

// VerifyNoInterFoldFlow checks Lemma 2: no load crosses fold boundaries —
// the forwarded rate at every fold root is zero.
func VerifyNoInterFoldFlow(t *tree.Tree, e core.Vector, res *Result, eps float64) error {
	a := ComputeForward(t, e, res.Load)
	for _, f := range res.Folds {
		if math.Abs(a[f.Root]) > eps {
			return fmt.Errorf("fold: Lemma 2 violated: fold root %d forwards A=%.6g", f.Root, a[f.Root])
		}
	}
	return nil
}

// VerifyFoldOrdering checks the termination condition of WebFold: no
// remaining fold is foldable, i.e. every fold's per-node load is at most its
// parent fold's.
func VerifyFoldOrdering(t *tree.Tree, res *Result, eps float64) error {
	loadOfFold := make(map[int]float64, len(res.Folds))
	for _, f := range res.Folds {
		loadOfFold[f.Root] = f.Load
	}
	for _, f := range res.Folds {
		if f.Root == t.Root() {
			continue
		}
		parentFold := res.FoldOf[t.Parent(f.Root)]
		if f.Load > loadOfFold[parentFold]+eps {
			return fmt.Errorf("fold: fold %d (load %.6g) still foldable into %d (load %.6g)",
				f.Root, f.Load, parentFold, loadOfFold[parentFold])
		}
	}
	return nil
}

// VerifyContiguous checks that every fold is a contiguous region of the
// tree: each member other than the fold root has its tree-parent in the same
// fold.
func VerifyContiguous(t *tree.Tree, res *Result) error {
	for _, f := range res.Folds {
		for _, m := range f.Members {
			if m == f.Root {
				continue
			}
			if res.FoldOf[t.Parent(m)] != f.Root {
				return fmt.Errorf("fold: fold %d not contiguous at member %d", f.Root, m)
			}
		}
	}
	return nil
}

// MaxDensityRootedAverage returns the maximum, over all connected subtrees U
// of subtree(r) that contain r, of the average spontaneous rate
// Σ_{v∈U} e_v / |U|. By LP duality this is exactly the per-node load of the
// TLB fold rooted at r, which makes it an independent optimality oracle for
// WebFold (it shares no code with the folding loop).
//
// Implementation: parametric search on λ. For a given λ, the maximum over
// rooted connected subtrees of Σ (e_v − λ) is computed by the classic DP
// best(v) = (e_v − λ) + Σ_c max(0, best(c)); the optimum λ* is the largest λ
// with best(r) ≥ 0. The optimum average is achieved by some subset of ≤ n
// nodes, so ~60 bisection iterations give full float64 precision.
func MaxDensityRootedAverage(t *tree.Tree, e core.Vector, r int) float64 {
	nodes := t.SubtreeNodes(r)
	lo := 0.0
	hi := 0.0
	for _, v := range nodes {
		if e[v] > hi {
			hi = e[v]
		}
	}
	if hi == 0 {
		return 0
	}
	best := make(map[int]float64, len(nodes))
	feasible := func(lambda float64) bool {
		// Post-order over subtree(r): children of a node appear before it in
		// reversed pre-order only for chains; do an explicit stack-based
		// post-order instead.
		for i := len(nodes) - 1; i >= 0; i-- {
			// SubtreeNodes returns pre-order, so iterating it in reverse
			// visits children before parents.
			v := nodes[i]
			b := e[v] - lambda
			t.EachChild(v, func(c int) {
				if bc := best[c]; bc > 0 {
					b += bc
				}
			})
			best[v] = b
		}
		return best[r] >= 0
	}
	for i := 0; i < 100 && hi-lo > 1e-12*(1+hi); i++ {
		mid := (lo + hi) / 2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// VerifyOptimal checks Theorem 1 via the oracle: every fold's per-node load
// must equal the maximum-density rooted-subtree average of its fold root's
// subtree, within relative tolerance tol. It first checks that the load
// vector is consistent with the fold structure, so a doctored Load cannot
// pass on the strength of correct fold metadata.
func VerifyOptimal(t *tree.Tree, e core.Vector, res *Result, tol float64) error {
	for _, f := range res.Folds {
		for _, m := range f.Members {
			if math.Abs(res.Load[m]-f.Load) > tol*(1+math.Abs(f.Load)) {
				return fmt.Errorf("fold: load[%d]=%.9g inconsistent with fold %d load %.9g", m, res.Load[m], f.Root, f.Load)
			}
		}
		want := MaxDensityRootedAverage(t, e, f.Root)
		if math.Abs(f.Load-want) > tol*(1+math.Abs(want)) {
			return fmt.Errorf("fold: Theorem 1 violated: fold %d load %.9g != oracle %.9g", f.Root, f.Load, want)
		}
	}
	return nil
}

// VerifyAll runs every check above: Constraints 1 and 2, Lemmas 1 and 2,
// fold contiguity and termination, and the optimality oracle.
func VerifyAll(t *tree.Tree, e core.Vector, res *Result, eps float64) error {
	if err := VerifyConstraint1(t, e, res.Load, eps); err != nil {
		return err
	}
	if err := VerifyNSS(t, e, res.Load, eps); err != nil {
		return err
	}
	if err := VerifyMonotone(t, res.Load, eps); err != nil {
		return err
	}
	if err := VerifyNoInterFoldFlow(t, e, res, eps); err != nil {
		return err
	}
	if err := VerifyContiguous(t, res); err != nil {
		return err
	}
	if err := VerifyFoldOrdering(t, res, eps); err != nil {
		return err
	}
	return VerifyOptimal(t, e, res, 1e-6)
}
