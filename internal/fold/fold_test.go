package fold

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"webwave/internal/core"
	"webwave/internal/trace"
	"webwave/internal/tree"
)

func mustCompute(t *testing.T, tr *tree.Tree, e core.Vector) *Result {
	t.Helper()
	res, err := Compute(tr, e)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	return res
}

func TestFigure2a_TLBIsGLE(t *testing.T) {
	tr, e := tree.Figure2a()
	res := mustCompute(t, tr, e)
	if !res.IsGLE(1e-9) {
		t.Errorf("Figure 2(a) TLB should be GLE, got %v", res.Load)
	}
	if res.FoldCount() != 1 {
		t.Errorf("Figure 2(a) folds = %d, want 1", res.FoldCount())
	}
	for _, l := range res.Load {
		if math.Abs(l-20) > 1e-9 {
			t.Errorf("Figure 2(a) load = %v, want all 20", res.Load)
		}
	}
}

func TestFigure2b_TLBNotGLE(t *testing.T) {
	tr, e := tree.Figure2b()
	res := mustCompute(t, tr, e)
	if res.IsGLE(1e-9) {
		t.Error("Figure 2(b) TLB should not be GLE")
	}
	want := core.Vector{60, 0, 0}
	if !core.VecAlmostEqual(res.Load, want, 1e-9) {
		t.Errorf("Figure 2(b) load = %v, want %v", res.Load, want)
	}
	// NSS forbids pushing the root's load into subtrees that request nothing.
	if res.FoldCount() != 3 {
		t.Errorf("Figure 2(b) folds = %d, want 3 singletons", res.FoldCount())
	}
}

func TestFigure4_FoldSequence(t *testing.T) {
	tr, e := tree.Figure4()
	res := mustCompute(t, tr, e)

	want := core.Vector{22.5, 22.5, 6, 22.5, 22.5, 6, 6, 6}
	if !core.VecAlmostEqual(res.Load, want, 1e-9) {
		t.Fatalf("Figure 4 load = %v, want %v", res.Load, want)
	}
	if res.FoldCount() != 2 {
		t.Fatalf("Figure 4 folds = %d, want 2", res.FoldCount())
	}
	if len(res.Trace) != 6 {
		t.Fatalf("Figure 4 trace length = %d, want 6 folds", len(res.Trace))
	}
	// The first fold must be the maximum-average foldable fold (40 into 0).
	if res.Trace[0].ChildAvg != 40 {
		t.Errorf("first fold child avg = %v, want 40", res.Trace[0].ChildAvg)
	}
	// The trace's FoldsLeft must strictly decrease to the final count.
	for i, s := range res.Trace {
		if s.FoldsLeft != tr.Len()-i-1 {
			t.Errorf("trace step %d FoldsLeft = %d, want %d", i, s.FoldsLeft, tr.Len()-i-1)
		}
		if s.ChildAvg <= s.ParentAvg {
			t.Errorf("trace step %d folded a non-foldable fold: %v", i, s)
		}
		if s.MergedAvg <= s.ParentAvg || s.MergedAvg >= s.ChildAvg {
			t.Errorf("trace step %d merged avg %v outside (%v,%v)", i, s.MergedAvg, s.ParentAvg, s.ChildAvg)
		}
	}
	if err := VerifyAll(tr, e, res, 1e-9); err != nil {
		t.Errorf("Figure 4 verification: %v", err)
	}
}

func TestFigure6_AllLemmas(t *testing.T) {
	tr, e := tree.Figure6()
	res := mustCompute(t, tr, e)
	if err := VerifyAll(tr, e, res, 1e-9); err != nil {
		t.Fatalf("Figure 6 verification: %v", err)
	}
	// The crafted rates must force a genuine variety of folds.
	if res.FoldCount() < 3 {
		t.Errorf("Figure 6 folds = %d, want a variety (>= 3)", res.FoldCount())
	}
}

func TestSingleNode(t *testing.T) {
	tr := tree.MustFromParents([]int{tree.NoParent})
	res := mustCompute(t, tr, core.Vector{42})
	if res.Load[0] != 42 || res.FoldCount() != 1 {
		t.Errorf("single node: load=%v folds=%d", res.Load, res.FoldCount())
	}
}

func TestZeroRates(t *testing.T) {
	tr := tree.MustFromParents([]int{tree.NoParent, 0, 0})
	res := mustCompute(t, tr, core.Vector{0, 0, 0})
	for _, l := range res.Load {
		if l != 0 {
			t.Errorf("zero rates gave load %v", res.Load)
		}
	}
	if err := VerifyAll(tr, res.Load, res, 1e-9); err != nil {
		t.Errorf("zero rates verification: %v", err)
	}
}

func TestChainUphill(t *testing.T) {
	// Rates increase toward the leaf: everything folds into one fold.
	tr, err := tree.Chain(5)
	if err != nil {
		t.Fatal(err)
	}
	e := core.Vector{0, 10, 20, 30, 40}
	res := mustCompute(t, tr, e)
	if res.FoldCount() != 1 {
		t.Errorf("uphill chain folds = %d, want 1", res.FoldCount())
	}
	if !res.IsGLE(1e-9) {
		t.Error("uphill chain should reach GLE")
	}
}

func TestChainDownhill(t *testing.T) {
	// Rates decrease toward the leaf: nothing is foldable; TLB = E.
	tr, err := tree.Chain(5)
	if err != nil {
		t.Fatal(err)
	}
	e := core.Vector{40, 30, 20, 10, 0}
	res := mustCompute(t, tr, e)
	if res.FoldCount() != 5 {
		t.Errorf("downhill chain folds = %d, want 5", res.FoldCount())
	}
	if !core.VecAlmostEqual(res.Load, e, 1e-9) {
		t.Errorf("downhill chain load = %v, want %v", res.Load, e)
	}
}

func TestInvalidRates(t *testing.T) {
	tr := tree.MustFromParents([]int{tree.NoParent, 0})
	if _, err := Compute(tr, core.Vector{1}); err == nil {
		t.Error("short rate vector accepted")
	}
	if _, err := Compute(tr, core.Vector{1, -2}); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := ComputeNaive(tr, core.Vector{1}); err == nil {
		t.Error("naive: short rate vector accepted")
	}
}

func TestComputeForwardConservation(t *testing.T) {
	tr, e := tree.Figure4()
	res := mustCompute(t, tr, e)
	a := ComputeForward(tr, e, res.Load)
	// A at the root must be ~0 (Constraint 1) and load must sum to ΣE.
	if math.Abs(a[tr.Root()]) > 1e-9 {
		t.Errorf("root forward = %v", a[tr.Root()])
	}
	if math.Abs(core.SumVec(res.Load)-core.SumVec(e)) > 1e-9 {
		t.Errorf("ΣL = %v, ΣE = %v", core.SumVec(res.Load), core.SumVec(e))
	}
}

func TestVerifyDetectsViolations(t *testing.T) {
	tr, e := tree.Figure4()
	res := mustCompute(t, tr, e)

	// NSS violation: shift load into a zero-demand leaf's assignment.
	bad := core.CloneVec(res.Load)
	bad[6] += 10 // leaf under node 5
	bad[0] -= 10
	if err := VerifyNSS(tr, e, bad, 1e-9); err == nil {
		t.Error("NSS violation not detected")
	}

	// Constraint 1 violation: serve less than offered.
	short := core.CloneVec(res.Load)
	short[0] -= 5
	if err := VerifyConstraint1(tr, e, short, 1e-9); err == nil {
		t.Error("Constraint 1 violation not detected")
	}

	// Lemma 1 violation: child louder than parent.
	mono := core.CloneVec(res.Load)
	mono[3] = mono[1] + 1
	if err := VerifyMonotone(tr, mono, 1e-9); err == nil {
		t.Error("Lemma 1 violation not detected")
	}

	// Optimality violation: a feasible but unbalanced assignment. On the
	// Figure 2(a) star, serving everything at the root is feasible (NSS
	// holds) but not TLB.
	tr2, e2 := tree.Figure2a()
	res2 := mustCompute(t, tr2, e2)
	res2.Load = core.Vector{60, 0, 0}
	res2.Folds = []Fold{{Root: 0, Members: []int{0, 1, 2}, Spontaneous: 60, Load: 20}}
	if err := VerifyOptimal(tr2, e2, res2, 1e-6); err == nil {
		t.Error("optimality violation not detected")
	}
}

func TestMaxDensityOracleByHand(t *testing.T) {
	// Star with rates (0, 30, 30): best root-containing subtree is the whole
	// tree, average 20.
	tr, e := tree.Figure2a()
	if got := MaxDensityRootedAverage(tr, e, tr.Root()); math.Abs(got-20) > 1e-6 {
		t.Errorf("oracle = %v, want 20", got)
	}
	// Leaf subtree is just the leaf.
	if got := MaxDensityRootedAverage(tr, e, 1); math.Abs(got-30) > 1e-6 {
		t.Errorf("oracle(leaf) = %v, want 30", got)
	}
	// Figure 4: root fold {0,1,3,4} has density 90/4 = 22.5.
	tr4, e4 := tree.Figure4()
	if got := MaxDensityRootedAverage(tr4, e4, tr4.Root()); math.Abs(got-22.5) > 1e-6 {
		t.Errorf("oracle(fig4 root) = %v, want 22.5", got)
	}
}

// randomTreeAndRates builds a seeded random instance for property tests.
func randomTreeAndRates(seed int64, n int) (*tree.Tree, core.Vector) {
	rng := rand.New(rand.NewSource(seed))
	tr, err := tree.Random(n, rng)
	if err != nil {
		panic(err)
	}
	// Mix of shapes: half uniform, half exponential with zero patches.
	var e core.Vector
	if seed%2 == 0 {
		e = trace.UniformRates(n, 0, 100, rng)
	} else {
		e = trace.ExponentialRates(n, 50, rng)
		for i := range e {
			if rng.Float64() < 0.3 {
				e[i] = 0
			}
		}
	}
	return tr, e
}

// Property: the heap-based Compute and the literal Figure 3 transcription
// produce identical assignments on random instances.
func TestQuickHeapMatchesNaive(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw%60) + 1
		tr, e := randomTreeAndRates(seed, n)
		fast, err := Compute(tr, e)
		if err != nil {
			return false
		}
		slow, err := ComputeNaive(tr, e)
		if err != nil {
			return false
		}
		return core.VecAlmostEqual(fast.Load, slow.Load, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: every WebFold result passes all lemma checks and the
// optimality oracle (Theorem 1) on random instances.
func TestQuickVerifyAllRandom(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw%80) + 1
		tr, e := randomTreeAndRates(seed, n)
		res, err := Compute(tr, e)
		if err != nil {
			return false
		}
		return VerifyAll(tr, e, res, 1e-6) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: the TLB max load never exceeds serving everything at the root
// and never undercuts the GLE average.
func TestQuickMaxLoadBounds(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw%60) + 2
		tr, e := randomTreeAndRates(seed, n)
		res, err := Compute(tr, e)
		if err != nil {
			return false
		}
		total := core.SumVec(e)
		gle := total / float64(n)
		return res.MaxLoad() <= total+1e-9 && res.MaxLoad() >= gle-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: TLB is invariant under node relabeling (the algorithm must not
// depend on node ids beyond tie-breaking among equal loads).
func TestQuickRelabelInvariance(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw%40) + 2
		tr, e := randomTreeAndRates(seed, n)
		res, err := Compute(tr, e)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed + 999))
		perm := rng.Perm(n)
		rt, err := tr.Relabel(perm)
		if err != nil {
			return false
		}
		re := tree.ApplyPermutation(e, perm)
		rres, err := Compute(rt, re)
		if err != nil {
			return false
		}
		want := tree.ApplyPermutation(res.Load, perm)
		return core.VecAlmostEqual(rres.Load, want, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: no feasible random perturbation of the TLB assignment is
// lexicographically better (a randomized check of Definition 1).
func TestQuickNoBetterFeasibleAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(12)
		tr, e := randomTreeAndRates(rng.Int63(), n)
		res, err := Compute(tr, e)
		if err != nil {
			t.Fatal(err)
		}
		tlbProfile := core.SortedDesc(res.Load)
		for p := 0; p < 50; p++ {
			cand := randomFeasible(tr, e, rng)
			if core.LexLessDesc(core.SortedDesc(cand), tlbProfile, 1e-9) < 0 {
				t.Fatalf("found better feasible assignment %v than TLB %v (E=%v)", cand, res.Load, e)
			}
		}
	}
}

// randomFeasible builds a random assignment satisfying NSS and Constraint 1
// by pushing random fractions of each subtree's surplus upward.
func randomFeasible(tr *tree.Tree, e core.Vector, rng *rand.Rand) core.Vector {
	l := make(core.Vector, tr.Len())
	fwd := make(core.Vector, tr.Len())
	for _, v := range tr.PostOrder() {
		in := e[v]
		tr.EachChild(v, func(c int) {
			in += fwd[c]
		})
		if v == tr.Root() {
			l[v] = in
			fwd[v] = 0
			continue
		}
		serveFrac := rng.Float64()
		l[v] = in * serveFrac
		fwd[v] = in - l[v]
	}
	return l
}

func TestFoldMembersPartition(t *testing.T) {
	tr, e := tree.Figure6()
	res := mustCompute(t, tr, e)
	seen := make(map[int]bool)
	for _, f := range res.Folds {
		for _, m := range f.Members {
			if seen[m] {
				t.Fatalf("node %d in two folds", m)
			}
			seen[m] = true
			if res.FoldOf[m] != f.Root {
				t.Fatalf("FoldOf[%d] = %d, want %d", m, res.FoldOf[m], f.Root)
			}
		}
	}
	if len(seen) != tr.Len() {
		t.Fatalf("folds cover %d of %d nodes", len(seen), tr.Len())
	}
}

func TestGLEHelper(t *testing.T) {
	g := GLE(core.Vector{10, 20, 30})
	for _, x := range g {
		if x != 20 {
			t.Errorf("GLE = %v", g)
		}
	}
	if GLE(nil) != nil {
		t.Error("GLE(nil) != nil")
	}
}

func TestLargeTreePerformance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(1))
	tr, err := tree.Random(50000, rng)
	if err != nil {
		t.Fatal(err)
	}
	e := trace.UniformRates(tr.Len(), 0, 100, rng)
	res, err := Compute(tr, e)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check invariants cheaply (full oracle is quadratic).
	if err := VerifyNSS(tr, e, res.Load, 1e-6); err != nil {
		t.Error(err)
	}
	if err := VerifyMonotone(tr, res.Load, 1e-6); err != nil {
		t.Error(err)
	}
}
