package fold

import (
	"fmt"
	"sort"

	"webwave/internal/core"
	"webwave/internal/tree"
)

// ComputeNaive is a literal transcription of the paper's Figure 3: scan all
// folds, find the foldable one with the maximum per-node load, fold it, and
// repeat. O(n²) worst case. It exists as an independently-written oracle for
// Compute and as the baseline for the WebFold ablation benchmark.
func ComputeNaive(t *tree.Tree, e core.Vector) (*Result, error) {
	n := t.Len()
	if err := core.ValidateRates(e, n); err != nil {
		return nil, fmt.Errorf("webfold(naive): %w", err)
	}

	// (2) foreach i ∈ T: F_i ← {i}; C_i ← C_i; E_i ← E_i
	foldOf := make([]int, n) // current fold root of each node
	members := make([][]int, n)
	esum := make([]float64, n)
	active := make([]bool, n)
	for i := 0; i < n; i++ {
		foldOf[i] = i
		members[i] = []int{i}
		esum[i] = e[i]
		active[i] = true
	}

	avg := func(r int) float64 { return esum[r] / float64(len(members[r])) }
	parentFold := func(r int) int {
		if r == t.Root() {
			return -1
		}
		return foldOf[t.Parent(r)]
	}

	var trace []Step
	foldsLeft := n
	// (3) Fold(T): while a foldable fold exists, fold the max-average one.
	for {
		best := -1
		bestAvg := 0.0
		for r := 0; r < n; r++ {
			if !active[r] || r == t.Root() {
				continue
			}
			p := parentFold(r)
			if p == r {
				continue
			}
			if avg(r) > avg(p) {
				if best == -1 || avg(r) > bestAvg || (avg(r) == bestAvg && r < best) {
					best = r
					bestAvg = avg(r)
				}
			}
		}
		if best == -1 {
			break
		}
		p := parentFold(best)
		childAvg, parentAvg := avg(best), avg(p)
		for _, m := range members[best] {
			foldOf[m] = p
		}
		members[p] = append(members[p], members[best]...)
		esum[p] += esum[best]
		members[best] = nil
		active[best] = false
		foldsLeft--
		trace = append(trace, Step{
			ChildRoot: best, ParentRoot: p,
			ChildAvg: childAvg, ParentAvg: parentAvg,
			MergedAvg: avg(p), FoldsLeft: foldsLeft,
		})
	}

	// (4) foreach j ∈ T: L_j ← E_fold / |F_fold|
	res := &Result{
		Load:   make(core.Vector, n),
		FoldOf: foldOf,
		Trace:  trace,
	}
	var roots []int
	for r := 0; r < n; r++ {
		if active[r] {
			roots = append(roots, r)
		}
	}
	sort.Ints(roots)
	for _, r := range roots {
		sort.Ints(members[r])
		f := Fold{Root: r, Members: members[r], Spontaneous: esum[r], Load: avg(r)}
		res.Folds = append(res.Folds, f)
		for _, m := range f.Members {
			res.Load[m] = f.Load
		}
	}
	res.Forward = ComputeForward(t, e, res.Load)
	return res, nil
}
