package fold

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"webwave/internal/core"
	"webwave/internal/trace"
	"webwave/internal/tree"
)

func TestWeightedRejectsBadInput(t *testing.T) {
	tr := tree.MustFromParents([]int{tree.NoParent, 0})
	e := core.Vector{1, 1}
	if _, err := ComputeWeighted(tr, e, nil); err == nil {
		t.Error("nil capacity accepted")
	}
	if _, err := ComputeWeighted(tr, e, core.Vector{1}); err == nil {
		t.Error("short capacity accepted")
	}
	if _, err := ComputeWeighted(tr, e, core.Vector{1, 0}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := ComputeWeighted(tr, e, core.Vector{1, -2}); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestWeightedUnitEqualsUnweighted(t *testing.T) {
	for _, mk := range []func() (*tree.Tree, core.Vector){
		tree.Figure2a, tree.Figure2b, tree.Figure4, tree.Figure6,
	} {
		tr, e := mk()
		unit := core.UniformVec(tr.Len(), 1)
		w, err := ComputeWeighted(tr, e, unit)
		if err != nil {
			t.Fatal(err)
		}
		u, err := Compute(tr, e)
		if err != nil {
			t.Fatal(err)
		}
		if !core.VecAlmostEqual(w.Load, u.Load, 1e-9) {
			t.Errorf("unit-capacity weighted %v != unweighted %v", w.Load, u.Load)
		}
	}
}

func TestWeightedTwoNodeByHand(t *testing.T) {
	// Chain root(0) <- leaf(1). Leaf generates 90; root capacity 1, leaf
	// capacity 2. The single fold has E=90, C=3: per-unit load 30, so the
	// leaf serves 60 and the root 30.
	tr := tree.MustFromParents([]int{tree.NoParent, 0})
	e := core.Vector{0, 90}
	c := core.Vector{1, 2}
	res, err := ComputeWeighted(tr, e, c)
	if err != nil {
		t.Fatal(err)
	}
	want := core.Vector{30, 60}
	if !core.VecAlmostEqual(res.Load, want, 1e-9) {
		t.Errorf("load = %v, want %v", res.Load, want)
	}
	if err := VerifyWeighted(tr, e, c, res, 1e-9); err != nil {
		t.Error(err)
	}
}

func TestWeightedCapacityChangesFolding(t *testing.T) {
	// Same structure and rates; boosting the root's capacity must pull
	// utilization down and absorb more load at the root.
	tr := tree.MustFromParents([]int{tree.NoParent, 0, 0})
	e := core.Vector{0, 50, 50}
	small, err := ComputeWeighted(tr, e, core.Vector{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	big, err := ComputeWeighted(tr, e, core.Vector{8, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if big.Load[0] <= small.Load[0] {
		t.Errorf("root with 8x capacity serves %v, small-capacity root %v", big.Load[0], small.Load[0])
	}
	if err := VerifyWeighted(tr, e, core.Vector{8, 1, 1}, big, 1e-9); err != nil {
		t.Error(err)
	}
}

func TestUtilizationHelper(t *testing.T) {
	u, err := Utilization(core.Vector{10, 30}, core.Vector{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if u[0] != 2 || u[1] != 3 {
		t.Errorf("utilization = %v", u)
	}
	if _, err := Utilization(core.Vector{1}, core.Vector{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Utilization(core.Vector{1}, core.Vector{0}); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestWeightedOracleByHand(t *testing.T) {
	tr := tree.MustFromParents([]int{tree.NoParent, 0})
	e := core.Vector{0, 90}
	c := core.Vector{1, 2}
	// Whole tree density 90/3 = 30 beats the root alone (0/1 = 0).
	if got := MaxDensityRootedAverageWeighted(tr, e, c, 0); math.Abs(got-30) > 1e-6 {
		t.Errorf("oracle = %v, want 30", got)
	}
	// Leaf subtree: 90/2 = 45.
	if got := MaxDensityRootedAverageWeighted(tr, e, c, 1); math.Abs(got-45) > 1e-6 {
		t.Errorf("oracle(leaf) = %v, want 45", got)
	}
}

// Property: weighted WebFold passes the weighted verifier on random trees
// with random capacities.
func TestQuickWeightedVerify(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw%50) + 1
		rng := rand.New(rand.NewSource(seed))
		tr, err := tree.Random(n, rng)
		if err != nil {
			return false
		}
		e := trace.UniformRates(n, 0, 100, rng)
		c := make(core.Vector, n)
		for i := range c {
			c[i] = 0.5 + 4*rng.Float64()
		}
		res, err := ComputeWeighted(tr, e, c)
		if err != nil {
			return false
		}
		return VerifyWeighted(tr, e, c, res, 1e-6) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: scaling all capacities uniformly leaves the load assignment
// unchanged (only utilizations rescale).
func TestQuickWeightedScaleInvariance(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw%40) + 1
		rng := rand.New(rand.NewSource(seed))
		tr, err := tree.Random(n, rng)
		if err != nil {
			return false
		}
		e := trace.UniformRates(n, 0, 100, rng)
		c := make(core.Vector, n)
		for i := range c {
			c[i] = 0.5 + rng.Float64()
		}
		a, err := ComputeWeighted(tr, e, c)
		if err != nil {
			return false
		}
		scaled := make(core.Vector, n)
		for i := range c {
			scaled[i] = c[i] * 7
		}
		b, err := ComputeWeighted(tr, e, scaled)
		if err != nil {
			return false
		}
		return core.VecAlmostEqual(a.Load, b.Load, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
