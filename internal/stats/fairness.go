package stats

import "math"

// JainIndex returns Jain's fairness index (Σx)² / (n·Σx²) of a load vector:
// 1 when every node carries identical load, 1/n when a single node carries
// everything. Negative entries are clamped to zero (loads are rates or
// counts). An empty or all-zero vector yields 1 — nothing is unfair about
// no load at all.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		if x < 0 {
			x = 0
		}
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// MaxMeanRatio returns max(x)/mean(x), the load-imbalance factor the paper's
// global balance criterion drives toward 1. It is 1 for a perfectly balanced
// vector and n for a single hot node. An empty or all-zero vector yields 1.
func MaxMeanRatio(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, max float64
	for _, x := range xs {
		if x < 0 {
			x = 0
		}
		sum += x
		if x > max {
			max = x
		}
	}
	if sum == 0 {
		return 1
	}
	return max * float64(len(xs)) / sum
}

// Histogram is a fixed-bucket histogram with logarithmically spaced bounds,
// built for latency distributions: cheap to update, mergeable, and good
// enough for interpolated quantiles in a machine-readable report.
type Histogram struct {
	// Bounds[i] is the inclusive upper bound of bucket i; a final implicit
	// overflow bucket catches everything above Bounds[len-1].
	Bounds []float64
	Counts []int64

	n        int64
	sum      float64
	min, max float64
}

// NewLogHistogram builds a histogram with perDecade buckets per power of ten
// spanning [lo, hi]. lo and hi must be positive with lo < hi.
func NewLogHistogram(lo, hi float64, perDecade int) *Histogram {
	if lo <= 0 || hi <= lo || perDecade <= 0 {
		panic("stats: NewLogHistogram needs 0 < lo < hi and perDecade > 0")
	}
	var bounds []float64
	step := math.Pow(10, 1/float64(perDecade))
	for b := lo; b < hi*(1+1e-12); b *= step {
		bounds = append(bounds, b)
	}
	return &Histogram{
		Bounds: bounds,
		Counts: make([]int64, len(bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Observe adds one sample.
func (h *Histogram) Observe(x float64) {
	i := 0
	for i < len(h.Bounds) && x > h.Bounds[i] {
		i++
	}
	h.Counts[i]++
	h.n++
	h.sum += x
	if x < h.min {
		h.min = x
	}
	if x > h.max {
		h.max = x
	}
}

// N returns the number of observed samples.
func (h *Histogram) N() int64 { return h.n }

// Mean returns the sample mean, 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest observed sample, 0 when empty.
func (h *Histogram) Min() float64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observed sample, 0 when empty.
func (h *Histogram) Max() float64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) estimated by linear
// interpolation within the containing bucket, clamped to the observed
// min/max. It returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.n)
	var cum float64
	for i, c := range h.Counts {
		next := cum + float64(c)
		if rank <= next && c > 0 {
			lo := h.min
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			hi := h.max
			if i < len(h.Bounds) && h.Bounds[i] < hi {
				hi = h.Bounds[i]
			}
			if lo < h.min {
				lo = h.min
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return h.max
}
