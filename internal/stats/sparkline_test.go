package stats

import (
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestSparklineBasics(t *testing.T) {
	if Sparkline(nil, 10) != "" {
		t.Error("empty series should render empty")
	}
	if Sparkline([]float64{1, 2}, 0) != "" {
		t.Error("zero width should render empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("width = %d, want 8", utf8.RuneCountInString(s))
	}
	// Monotone input yields the full ramp.
	if s != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp = %q", s)
	}
}

func TestSparklineConstantSeries(t *testing.T) {
	s := Sparkline([]float64{5, 5, 5}, 3)
	if utf8.RuneCountInString(s) != 3 {
		t.Fatalf("width = %d", utf8.RuneCountInString(s))
	}
	// All columns identical.
	runes := []rune(s)
	for _, r := range runes {
		if r != runes[0] {
			t.Errorf("constant series rendered unevenly: %q", s)
		}
	}
}

func TestSparklineDownsamples(t *testing.T) {
	values := make([]float64, 1000)
	for i := range values {
		values[i] = float64(i)
	}
	s := Sparkline(values, 20)
	if utf8.RuneCountInString(s) != 20 {
		t.Fatalf("width = %d, want 20", utf8.RuneCountInString(s))
	}
	if !strings.HasPrefix(s, "▁") || !strings.HasSuffix(s, "█") {
		t.Errorf("ramp endpoints wrong: %q", s)
	}
}

func TestLogSparklineGeometric(t *testing.T) {
	// Geometric decay is a straight line in log space: the log sparkline
	// of a·γ^t must be a strictly descending ramp.
	values := make([]float64, 64)
	for i := range values {
		values[i] = 1000 * math.Pow(0.8, float64(i))
	}
	s := LogSparkline(values, 8)
	if s != "█▇▆▅▄▃▂▁" {
		t.Errorf("log sparkline = %q, want a clean descending ramp", s)
	}
	// Zeros do not break it.
	values = append(values, 0, 0)
	if out := LogSparkline(values, 8); utf8.RuneCountInString(out) != 8 {
		t.Errorf("log sparkline with zeros = %q", out)
	}
	// All-zero falls back to the linear rendering.
	if out := LogSparkline([]float64{0, 0, 0}, 3); utf8.RuneCountInString(out) != 3 {
		t.Errorf("all-zero log sparkline = %q", out)
	}
	if LogSparkline(nil, 5) != "" {
		t.Error("empty log sparkline should be empty")
	}
}
