package stats

import (
	"math"
	"strings"
)

var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a series as a fixed-width unicode mini-chart, useful
// for showing convergence trajectories in CLI output. Values are
// down-sampled to `width` columns by bucket-averaging and scaled to the
// series range. An empty series yields an empty string.
func Sparkline(values []float64, width int) string {
	if len(values) == 0 || width <= 0 {
		return ""
	}
	cols := resample(values, width)
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range cols {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range cols {
		idx := 0
		if max > min {
			idx = int(math.Round((v - min) / (max - min) * float64(len(sparkLevels)-1)))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// LogSparkline renders the series on a log10 scale — the natural view for
// geometric convergence, where a straight descent means distance ≈ a·γ^t.
// Non-positive values clamp to the smallest positive value in the series.
func LogSparkline(values []float64, width int) string {
	if len(values) == 0 {
		return ""
	}
	smallest := math.Inf(1)
	for _, v := range values {
		if v > 0 && v < smallest {
			smallest = v
		}
	}
	if math.IsInf(smallest, 1) {
		return Sparkline(values, width)
	}
	logs := make([]float64, len(values))
	for i, v := range values {
		if v < smallest {
			v = smallest
		}
		logs[i] = math.Log10(v)
	}
	return Sparkline(logs, width)
}

// resample bucket-averages values into exactly width columns (or fewer when
// the input is shorter than the width).
func resample(values []float64, width int) []float64 {
	if len(values) <= width {
		out := make([]float64, len(values))
		copy(out, values)
		return out
	}
	out := make([]float64, width)
	for c := 0; c < width; c++ {
		lo := c * len(values) / width
		hi := (c + 1) * len(values) / width
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, v := range values[lo:hi] {
			sum += v
		}
		out[c] = sum / float64(hi-lo)
	}
	return out
}
