package stats

import (
	"fmt"
	"math"
)

// GeometricFit is the result of fitting the convergence model
//
//	y_t ≈ A · Gamma^t
//
// to a distance-versus-iteration series, mirroring the paper's S-PLUS
// nonlinear regression (Section 5.1): "Given an objective function
// specifying the shape of the model, and the simulation results, S-PLUS
// estimates the desired parameter (i.e., γ) by optimizing the objective
// function such that the sum of the squared residuals is minimized."
type GeometricFit struct {
	A          float64 // amplitude at t = 0
	Gamma      float64 // per-iteration contraction factor
	StdErrA    float64 // standard error of A
	StdErrG    float64 // standard error of Gamma (the paper reports this)
	SSR        float64 // sum of squared residuals at the optimum
	Iterations int     // Gauss-Newton iterations performed
	R2         float64 // coefficient of determination
}

func (g GeometricFit) String() string {
	return fmt.Sprintf("gamma=%.6f (se %.6f) a=%.4g ssr=%.4g r2=%.4f",
		g.Gamma, g.StdErrG, g.A, g.SSR, g.R2)
}

// FitGeometric fits y_t = A·Gamma^t to the series ys (t = 0, 1, 2, ...)
// by nonlinear least squares. Initialization comes from a log-linear
// regression on the strictly positive prefix of ys; refinement uses damped
// Gauss-Newton on the original (non-log) objective so the estimate matches
// the paper's squared-residual criterion. Standard errors derive from the
// Jacobian at the optimum: Cov = σ²(JᵀJ)⁻¹ with σ² = SSR/(n−2).
func FitGeometric(ys []float64) (GeometricFit, error) {
	// Use only the prefix before the series hits (numerical) zero: once the
	// simulation reaches the fixed point exactly, trailing zeros carry no
	// information about the rate and would bias the fit.
	n := len(ys)
	for n > 0 && ys[n-1] <= 0 {
		n--
	}
	series := ys[:n]
	if n < 3 {
		return GeometricFit{}, fmt.Errorf("fit geometric: %w (need >= 3 positive points, have %d)", ErrInsufficientData, n)
	}

	// Log-linear initialization over positive entries.
	var ts, ls []float64
	for t, y := range series {
		if y > 0 {
			ts = append(ts, float64(t))
			ls = append(ls, math.Log(y))
		}
	}
	if len(ts) < 2 {
		return GeometricFit{}, fmt.Errorf("fit geometric: %w (need >= 2 positive points)", ErrInsufficientData)
	}
	lin, err := FitLinear(ts, ls)
	if err != nil {
		return GeometricFit{}, fmt.Errorf("fit geometric: init: %w", err)
	}
	a := math.Exp(lin.Intercept)
	g := math.Exp(lin.Slope)
	if g <= 0 || g >= 2 || math.IsNaN(g) {
		g = 0.9
	}

	// Damped Gauss-Newton on r_t = y_t − a·g^t.
	const (
		maxIter = 200
		tol     = 1e-12
	)
	ssr := geometricSSR(series, a, g)
	iters := 0
	for ; iters < maxIter; iters++ {
		// Normal equations JᵀJ Δ = Jᵀr with J columns (∂f/∂a, ∂f/∂g).
		var jaa, jag, jgg, ra, rg float64
		for t, y := range series {
			ft := float64(t)
			gt := math.Pow(g, ft)
			fa := gt // ∂f/∂a
			var fg float64
			if t > 0 {
				fg = a * ft * math.Pow(g, ft-1) // ∂f/∂g
			}
			r := y - a*gt
			jaa += fa * fa
			jag += fa * fg
			jgg += fg * fg
			ra += fa * r
			rg += fg * r
		}
		det := jaa*jgg - jag*jag
		if math.Abs(det) < 1e-300 {
			break
		}
		da := (jgg*ra - jag*rg) / det
		dg := (jaa*rg - jag*ra) / det

		// Backtracking line search keeps the step inside the valid region
		// (a > 0, 0 < g < 1.5) and ensures SSR decreases.
		step := 1.0
		improved := false
		for k := 0; k < 30; k++ {
			na, ng := a+step*da, g+step*dg
			if na > 0 && ng > 1e-9 && ng < 1.5 {
				if nssr := geometricSSR(series, na, ng); nssr < ssr {
					a, g, ssr = na, ng, nssr
					improved = true
					break
				}
			}
			step /= 2
		}
		if !improved {
			break
		}
		if step*math.Hypot(da, dg) < tol {
			break
		}
	}

	fit := GeometricFit{A: a, Gamma: g, SSR: ssr, Iterations: iters}

	// Standard errors from the Jacobian at the optimum.
	if n > 2 {
		var jaa, jag, jgg float64
		for t := range series {
			ft := float64(t)
			fa := math.Pow(g, ft)
			var fg float64
			if t > 0 {
				fg = a * ft * math.Pow(g, ft-1)
			}
			jaa += fa * fa
			jag += fa * fg
			jgg += fg * fg
		}
		det := jaa*jgg - jag*jag
		if det > 1e-300 {
			sigma2 := ssr / float64(n-2)
			fit.StdErrA = math.Sqrt(sigma2 * jgg / det)
			fit.StdErrG = math.Sqrt(sigma2 * jaa / det)
		}
	}

	// R² against the mean model.
	meanY := Mean(series)
	var tss float64
	for _, y := range series {
		d := y - meanY
		tss += d * d
	}
	if tss > 0 {
		fit.R2 = 1 - ssr/tss
	}
	return fit, nil
}

func geometricSSR(ys []float64, a, g float64) float64 {
	s := 0.0
	for t, y := range ys {
		r := y - a*math.Pow(g, float64(t))
		s += r * r
	}
	return s
}

// ContractionRatios returns the per-step ratios y_{t+1}/y_t for the strictly
// positive entries of the series. For an exactly geometric series every
// ratio equals Gamma; the spread of the ratios diagnoses how well the
// geometric model describes the data.
func ContractionRatios(ys []float64) []float64 {
	var out []float64
	for t := 0; t+1 < len(ys); t++ {
		if ys[t] > 0 && ys[t+1] > 0 {
			out = append(out, ys[t+1]/ys[t])
		}
	}
	return out
}

// BoundHolds reports whether the series is dominated by a·γ^t for all t
// (within a relative slack), i.e. whether the Cybenko-style exponential
// bound ‖D^t x − u‖ ≤ γ^t ‖x(0) − u‖ holds for the measured data.
func BoundHolds(ys []float64, a, gamma, slack float64) bool {
	for t, y := range ys {
		bound := a * math.Pow(gamma, float64(t))
		if y > bound*(1+slack)+1e-12 {
			return false
		}
	}
	return true
}
