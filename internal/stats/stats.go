// Package stats provides the statistical substrate for the WebWave
// reproduction: vector distances for convergence measurement (the paper
// follows Cybenko in using Euclidean distance to the target assignment),
// summary statistics, and the nonlinear least-squares fit of the geometric
// convergence model a·γ^t that the paper performed with S-PLUS (Section 5.1).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInsufficientData is returned by estimators that need more points.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Euclidean returns the L2 distance between two equal-length vectors.
func Euclidean(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: Euclidean length mismatch %d != %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// L1 returns the Manhattan distance between two equal-length vectors.
func L1(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: L1 length mismatch %d != %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// LInf returns the Chebyshev distance between two equal-length vectors.
func LInf(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: LInf length mismatch %d != %d", len(a), len(b)))
	}
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (n-1 denominator), or 0 for
// fewer than two points.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary bundles the usual descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P50    float64
	P95    float64
	P99    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Mean = Mean(xs)
	s.StdDev = StdDev(xs)
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.P50 = Percentile(xs, 50)
	s.P95 = Percentile(xs, 95)
	s.P99 = Percentile(xs, 99)
	return s
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p95=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.P50, s.P95, s.Max)
}

// LinearFit is the result of an ordinary least-squares line fit y = a + b·x.
type LinearFit struct {
	Intercept float64
	Slope     float64
	R2        float64
}

// FitLinear performs ordinary least squares of y on x.
func FitLinear(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) {
		return LinearFit{}, fmt.Errorf("stats: FitLinear length mismatch %d != %d", len(x), len(y))
	}
	if len(x) < 2 {
		return LinearFit{}, ErrInsufficientData
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("stats: FitLinear degenerate x (zero variance)")
	}
	b := sxy / sxx
	a := my - b*mx
	r2 := 0.0
	if syy > 0 {
		r2 = sxy * sxy / (sxx * syy)
	}
	return LinearFit{Intercept: a, Slope: b, R2: r2}, nil
}
