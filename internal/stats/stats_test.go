package stats

import (
	"errors"
	"math"
	"testing"
)

func TestDistances(t *testing.T) {
	a := []float64{0, 3}
	b := []float64{4, 0}
	if got := Euclidean(a, b); math.Abs(got-5) > 1e-12 {
		t.Errorf("Euclidean = %v, want 5", got)
	}
	if got := L1(a, b); got != 7 {
		t.Errorf("L1 = %v, want 7", got)
	}
	if got := LInf(a, b); got != 4 {
		t.Errorf("LInf = %v, want 4", got)
	}
	if got := Euclidean(a, a); got != 0 {
		t.Errorf("Euclidean(a,a) = %v", got)
	}
}

func TestDistancePanicsOnLengthMismatch(t *testing.T) {
	for name, fn := range map[string]func(){
		"euclidean": func() { Euclidean([]float64{1}, []float64{1, 2}) },
		"l1":        func() { L1([]float64{1}, []float64{1, 2}) },
		"linf":      func() { LInf([]float64{1}, []float64{1, 2}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("length mismatch did not panic")
				}
			}()
			fn()
		})
	}
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Errorf("Norm2(nil) = %v", got)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Unbiased sample variance of the classic dataset: 32/7.
	if got := Variance(xs); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs not zero")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5},
	}
	for _, tc := range tests {
		if got := Percentile(xs, tc.p); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
	// Input must not be mutated (Percentile sorts a copy).
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.String() == "" {
		t.Error("Summary.String empty")
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("Summarize(nil).N = %d", z.N)
	}
}

func TestFitLinearExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 1 + 2x
	fit, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Intercept-1) > 1e-12 || math.Abs(fit.Slope-2) > 1e-12 {
		t.Errorf("fit = %+v, want intercept 1 slope 2", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FitLinear([]float64{1}, []float64{1}); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("single point error = %v", err)
	}
	if _, err := FitLinear([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("zero-variance x accepted")
	}
}
