package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("uniform Jain = %v, want 1", got)
	}
	n := 8
	oneHot := make([]float64, n)
	oneHot[3] = 42
	if got, want := JainIndex(oneHot), 1.0/float64(n); math.Abs(got-want) > 1e-12 {
		t.Fatalf("one-hot Jain = %v, want %v", got, want)
	}
	if got := JainIndex(nil); got != 1 {
		t.Fatalf("empty Jain = %v, want 1", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 1 {
		t.Fatalf("zero Jain = %v, want 1", got)
	}
	// Clamping: negatives behave as zero load.
	if got, want := JainIndex([]float64{-1, 4}), JainIndex([]float64{0, 4}); got != want {
		t.Fatalf("negative clamp: %v != %v", got, want)
	}
}

func TestMaxMeanRatio(t *testing.T) {
	if got := MaxMeanRatio([]float64{2, 2, 2}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("uniform ratio = %v, want 1", got)
	}
	if got := MaxMeanRatio([]float64{0, 0, 9}); math.Abs(got-3) > 1e-12 {
		t.Fatalf("one-hot ratio = %v, want 3", got)
	}
	if got := MaxMeanRatio(nil); got != 1 {
		t.Fatalf("empty ratio = %v, want 1", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewLogHistogram(1e-4, 10, 10)
	rng := rand.New(rand.NewSource(7))
	const n = 20000
	for i := 0; i < n; i++ {
		h.Observe(0.001 + rng.Float64()*0.999) // ~uniform on [0.001, 1]
	}
	if h.N() != n {
		t.Fatalf("N = %d, want %d", h.N(), n)
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.50, 0.5, 0.1},
		{0.95, 0.95, 0.1},
		{0.99, 0.99, 0.1},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("Quantile(%v) = %v, want %v ± %v", tc.q, got, tc.want, tc.tol)
		}
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Fatalf("quantile endpoints: q0=%v min=%v q1=%v max=%v",
			h.Quantile(0), h.Min(), h.Quantile(1), h.Max())
	}
	if h.Min() < 0.001 || h.Max() > 1.0001 {
		t.Fatalf("min/max out of range: %v %v", h.Min(), h.Max())
	}
}

func TestHistogramEmptyAndSingle(t *testing.T) {
	h := NewLogHistogram(1e-3, 1, 5)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Observe(0.02)
	if got := h.Quantile(0.5); math.Abs(got-0.02) > 0.02 {
		t.Fatalf("single-sample median = %v, want ≈0.02", got)
	}
}
