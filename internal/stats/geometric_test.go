package stats

import (
	"math"
	"math/rand"
	"testing"
)

func geomSeries(a, g float64, n int) []float64 {
	out := make([]float64, n)
	for t := range out {
		out[t] = a * math.Pow(g, float64(t))
	}
	return out
}

func TestFitGeometricExact(t *testing.T) {
	tests := []struct {
		name string
		a, g float64
	}{
		{"paperish", 100, 0.830734},
		{"fast", 50, 0.5},
		{"slow", 2000, 0.98},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			fit, err := FitGeometric(geomSeries(tc.a, tc.g, 60))
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(fit.Gamma-tc.g) > 1e-6 {
				t.Errorf("Gamma = %v, want %v", fit.Gamma, tc.g)
			}
			if math.Abs(fit.A-tc.a) > 1e-4*tc.a {
				t.Errorf("A = %v, want %v", fit.A, tc.a)
			}
			if fit.SSR > 1e-12*tc.a*tc.a {
				t.Errorf("SSR = %v on exact data", fit.SSR)
			}
			// Standard errors on exact data are ~0.
			if fit.StdErrG > 1e-6 {
				t.Errorf("StdErrG = %v on exact data", fit.StdErrG)
			}
		})
	}
}

func TestFitGeometricNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ys := geomSeries(100, 0.85, 80)
	for i := range ys {
		ys[i] *= 1 + 0.05*(rng.Float64()-0.5)
	}
	fit, err := FitGeometric(ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Gamma-0.85) > 0.02 {
		t.Errorf("Gamma = %v, want ≈0.85", fit.Gamma)
	}
	if fit.StdErrG <= 0 {
		t.Error("StdErrG should be positive on noisy data")
	}
	if fit.R2 < 0.95 {
		t.Errorf("R2 = %v, want > 0.95", fit.R2)
	}
}

func TestFitGeometricTrailingZeros(t *testing.T) {
	// A run that hits the fixed point exactly: zeros must not bias the fit.
	ys := append(geomSeries(10, 0.5, 20), 0, 0, 0, 0)
	fit, err := FitGeometric(ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Gamma-0.5) > 1e-6 {
		t.Errorf("Gamma = %v with trailing zeros, want 0.5", fit.Gamma)
	}
}

func TestFitGeometricInsufficient(t *testing.T) {
	if _, err := FitGeometric([]float64{1, 0.5}); err == nil {
		t.Error("two points accepted")
	}
	if _, err := FitGeometric(nil); err == nil {
		t.Error("empty series accepted")
	}
	if _, err := FitGeometric([]float64{0, 0, 0, 0}); err == nil {
		t.Error("all-zero series accepted")
	}
}

func TestFitGeometricInteriorZeros(t *testing.T) {
	// An interior zero (measurement glitch) must not break the fit.
	ys := geomSeries(100, 0.8, 30)
	ys[7] = 0
	fit, err := FitGeometric(ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Gamma-0.8) > 0.05 {
		t.Errorf("Gamma = %v with interior zero", fit.Gamma)
	}
}

func TestFitGeometricString(t *testing.T) {
	fit, err := FitGeometric(geomSeries(10, 0.7, 20))
	if err != nil {
		t.Fatal(err)
	}
	if fit.String() == "" {
		t.Error("empty String()")
	}
}

func TestContractionRatios(t *testing.T) {
	ys := geomSeries(8, 0.5, 5)
	rs := ContractionRatios(ys)
	if len(rs) != 4 {
		t.Fatalf("got %d ratios, want 4", len(rs))
	}
	for _, r := range rs {
		if math.Abs(r-0.5) > 1e-12 {
			t.Errorf("ratio = %v, want 0.5", r)
		}
	}
	if got := ContractionRatios([]float64{1, 0, 2}); len(got) != 0 {
		t.Errorf("ratios across zeros = %v", got)
	}
}

func TestBoundHolds(t *testing.T) {
	ys := geomSeries(100, 0.8, 20)
	if !BoundHolds(ys, 100, 0.8, 1e-9) {
		t.Error("exact geometric series violates its own bound")
	}
	if !BoundHolds(ys, 100, 0.9, 0) {
		t.Error("looser gamma must dominate")
	}
	if BoundHolds(ys, 100, 0.7, 1e-9) {
		t.Error("tighter gamma must fail")
	}
	if !BoundHolds(nil, 1, 0.5, 0) {
		t.Error("empty series should hold vacuously")
	}
}
