package netproto

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadFrame feeds arbitrary bytes to the frame decoder: it must never
// panic or over-allocate, only return an envelope or an error.
func FuzzReadFrame(f *testing.F) {
	// Seed corpus: a valid frame, a truncated frame, an oversized header,
	// garbage JSON, and raw noise.
	var valid bytes.Buffer
	if err := WriteFrame(&valid, &Envelope{Kind: TypeGossip, From: 1, Load: 2.5}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())-2])
	var oversized bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	oversized.Write(hdr[:])
	f.Add(oversized.Bytes())
	f.Add([]byte("\x00\x00\x00\x05notjs"))
	f.Add([]byte{0xff, 0xfe, 0x00})
	// Binary v2 seeds: a valid frame, its truncation, and a corrupt kind.
	binFrame, err := AppendFrameV2(nil, &Envelope{
		Kind: TypeRequest, From: -1, To: 3, Origin: 3, ReqID: 7, Doc: "d",
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), binFrame...))
	f.Add(append([]byte(nil), binFrame[:len(binFrame)-2]...))
	corrupt := append([]byte(nil), binFrame...)
	corrupt[5] = 0xEE // kind code byte
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := ReadFrame(bytes.NewReader(data))
		if err == nil && env == nil {
			t.Fatal("nil envelope with nil error")
		}
		if env != nil && err == nil {
			// Anything decoded must re-encode. A JSON payload may claim v:2
			// while carrying a kind the binary codec has no code for; such
			// envelopes must still re-encode on the JSON path.
			var buf bytes.Buffer
			w := NewFrameWriter(&buf, env.V)
			if werr := w.WriteEnvelope(env); werr != nil {
				buf.Reset()
				w1 := NewFrameWriter(&buf, 1)
				if werr1 := w1.WriteEnvelope(env); werr1 != nil {
					t.Fatalf("decoded envelope failed to re-encode: v%d: %v; json: %v", env.V, werr, werr1)
				}
			}
		}
		// The streaming reader must agree with ReadFrame and never panic.
		fr := NewFrameReader(bytes.NewReader(data))
		into := GetEnvelope()
		ierr := fr.ReadInto(into)
		if (err == nil) != (ierr == nil) {
			t.Fatalf("ReadFrame err=%v but ReadInto err=%v", err, ierr)
		}
		PutEnvelope(into)
	})
}
