package netproto

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadFrame feeds arbitrary bytes to the frame decoder: it must never
// panic or over-allocate, only return an envelope or an error.
func FuzzReadFrame(f *testing.F) {
	// Seed corpus: a valid frame, a truncated frame, an oversized header,
	// garbage JSON, and raw noise.
	var valid bytes.Buffer
	if err := WriteFrame(&valid, &Envelope{Kind: TypeGossip, From: 1, Load: 2.5}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())-2])
	var oversized bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	oversized.Write(hdr[:])
	f.Add(oversized.Bytes())
	f.Add([]byte("\x00\x00\x00\x05notjs"))
	f.Add([]byte{0xff, 0xfe, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := ReadFrame(bytes.NewReader(data))
		if err == nil && env == nil {
			t.Fatal("nil envelope with nil error")
		}
		if env != nil && err == nil {
			// Anything decoded must re-encode.
			var buf bytes.Buffer
			if werr := WriteFrame(&buf, env); werr != nil {
				t.Fatalf("decoded envelope failed to re-encode: %v", werr)
			}
		}
	})
}
