package netproto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"reflect"
	"testing"
	"unicode/utf8"

	"webwave/internal/core"
)

// FuzzReadFrame feeds arbitrary bytes to the frame decoder: it must never
// panic or over-allocate, only return an envelope or an error.
func FuzzReadFrame(f *testing.F) {
	// Seed corpus: a valid frame, a truncated frame, an oversized header,
	// garbage JSON, and raw noise.
	var valid bytes.Buffer
	if err := WriteFrame(&valid, &Envelope{Kind: TypeGossip, From: 1, Load: 2.5}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())-2])
	var oversized bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	oversized.Write(hdr[:])
	f.Add(oversized.Bytes())
	f.Add([]byte("\x00\x00\x00\x05notjs"))
	f.Add([]byte{0xff, 0xfe, 0x00})
	// Binary v2 seeds: a valid frame, its truncation, and a corrupt kind.
	binFrame, err := AppendFrameV2(nil, &Envelope{
		Kind: TypeRequest, From: -1, To: 3, Origin: 3, ReqID: 7, Doc: "d",
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), binFrame...))
	f.Add(append([]byte(nil), binFrame[:len(binFrame)-2]...))
	corrupt := append([]byte(nil), binFrame...)
	corrupt[5] = 0xEE // kind code byte
	f.Add(corrupt)
	// Session-token seeds: MinVersion-bearing request and tunnel_fetch
	// frames in both codecs (the trailing-uvarint layouts).
	for _, env := range []*Envelope{
		{Kind: TypeRequest, From: -1, To: 3, Origin: 3, ReqID: 8, Doc: "d", MinVersion: 42},
		{Kind: TypeTunnelFetch, From: 6, To: 0, Doc: "d", MinVersion: 7},
	} {
		var jsonFrame bytes.Buffer
		e := *env
		if err := WriteFrame(&jsonFrame, &e); err != nil {
			f.Fatal(err)
		}
		f.Add(jsonFrame.Bytes())
		v2Frame, err := AppendFrameV2(nil, env)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(v2Frame)
		f.Add(v2Frame[:len(v2Frame)-1]) // trailing MinVersion truncated away
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := ReadFrame(bytes.NewReader(data))
		if err == nil && env == nil {
			t.Fatal("nil envelope with nil error")
		}
		if env != nil && err == nil {
			// Anything decoded must re-encode. A JSON payload may claim v:2
			// while carrying a kind the binary codec has no code for; such
			// envelopes must still re-encode on the JSON path.
			var buf bytes.Buffer
			w := NewFrameWriter(&buf, env.V)
			if werr := w.WriteEnvelope(env); werr != nil {
				buf.Reset()
				w1 := NewFrameWriter(&buf, 1)
				if werr1 := w1.WriteEnvelope(env); werr1 != nil {
					t.Fatalf("decoded envelope failed to re-encode: v%d: %v; json: %v", env.V, werr, werr1)
				}
			}
		}
		// The streaming reader must agree with ReadFrame and never panic.
		fr := NewFrameReader(bytes.NewReader(data))
		into := GetEnvelope()
		ierr := fr.ReadInto(into)
		if (err == nil) != (ierr == nil) {
			t.Fatalf("ReadFrame err=%v but ReadInto err=%v", err, ierr)
		}
		PutEnvelope(into)
	})
}

// FuzzRoundTrip builds an envelope of every kind from fuzzed field values
// and checks decode(encode(env)) == env on both codecs: the v2 bytes must
// re-encode byte-identically after a decode, and the v1 JSON path must
// reproduce the envelope the v2 path canonicalized (v2 drops fields its
// kind layout does not carry, so the v2 decode is the canonical form).
func FuzzRoundTrip(f *testing.F) {
	f.Add(int64(-1), int64(3), uint64(7), "doc-1", 2.5, []byte("body"), uint64(3), uint64(9), int64(4), uint64(11), int64(2), false)
	f.Add(int64(6), int64(0), uint64(0), "d", 0.0, []byte(nil), uint64(0), uint64(42), int64(0), uint64(0), int64(0), true)
	f.Fuzz(func(t *testing.T, from, to int64, seq uint64, doc string, rate float64, body []byte, docVer, minVer uint64, origin int64, reqID uint64, hops int64, flag bool) {
		if math.IsNaN(rate) || math.IsInf(rate, 0) {
			rate = 0 // JSON cannot carry non-finite floats
		}
		for code := 1; code < len(codeToKind); code++ {
			kind := codeToKind[code]
			env := &Envelope{
				Kind: kind, From: int(from), To: int(to), Seq: seq,
				Load: rate, Doc: core.DocID(doc), Rate: math.Abs(rate),
				Body: body, DocVersion: docVer, MinVersion: minVer,
				Origin: int(origin), ReqID: reqID, Hops: int(hops), NotFound: flag,
			}
			if kind == TypeStatsReply && flag {
				env.Stats = &Stats{Node: int(from), Served: int64(seq)}
			}
			frame, err := AppendFrameV2(nil, env)
			if err != nil {
				if errors.Is(err, ErrFrameTooLarge) {
					continue
				}
				t.Fatalf("%s: AppendFrameV2: %v", kind, err)
			}
			canon := &Envelope{}
			if err := DecodePayload(canon, frame[4:], nil); err != nil {
				t.Fatalf("%s: decode of own v2 encoding failed: %v", kind, err)
			}
			re, err := AppendFrameV2(nil, canon)
			if err != nil {
				t.Fatalf("%s: re-encode: %v", kind, err)
			}
			if !bytes.Equal(frame, re) {
				t.Fatalf("%s: v2 encoding not stable across a decode:\n first %x\nsecond %x", kind, frame, re)
			}
			// JSON leg: marshaling replaces invalid UTF-8 in strings, so
			// only byte-exact-representable docs make a fair comparison.
			if !utf8.ValidString(doc) {
				continue
			}
			var jsonBuf bytes.Buffer
			je := *canon
			if err := WriteFrame(&jsonBuf, &je); err != nil {
				t.Fatalf("%s: WriteFrame: %v", kind, err)
			}
			fromJSON, err := ReadFrame(&jsonBuf)
			if err != nil {
				t.Fatalf("%s: ReadFrame(json): %v", kind, err)
			}
			a, b := *fromJSON, *canon
			a.V, b.V = 0, 0
			if len(a.Body) == 0 {
				a.Body = nil
			}
			if len(b.Body) == 0 {
				b.Body = nil
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s: v1 and v2 disagree:\n json %+v\n  v2  %+v", kind, a, b)
			}
		}
	})
}
