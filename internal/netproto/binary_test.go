package netproto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"

	"webwave/internal/core"
)

// allKindEnvelopes returns one representative envelope per message kind,
// with every kind-meaningful field set to a non-default value.
func allKindEnvelopes() []*Envelope {
	return []*Envelope{
		{Kind: TypeGossip, From: 1, To: 2, Seq: 9, Load: 123.5},
		{Kind: TypeDelegate, From: 0, To: 3, Seq: 10, Doc: "doc-1", Rate: 42.25, Body: []byte("payload")},
		{Kind: TypeDelegateAck, From: 3, To: 0, Doc: "doc-1", Rate: 42.25},
		{Kind: TypeShed, From: 5, To: 1, Doc: "d", Rate: 7},
		{Kind: TypeEvict, From: 5, To: 1, Seq: 11, Doc: "d", Rate: 3.5},
		{Kind: TypeRequest, From: -1, To: 4, Origin: 4, ReqID: 99, Hops: 2, Doc: "d"},
		{Kind: TypeRequest, From: -1, To: 4, Origin: 4, ReqID: 102, Hops: 1, Doc: "d", MinVersion: 5},
		{Kind: TypeResponse, From: 2, To: 4, Origin: 4, ReqID: 99, ServedBy: 2, Hops: 3, Doc: "d", Body: []byte("b")},
		{Kind: TypeResponse, From: 2, To: 4, Origin: 4, ReqID: 100, ServedBy: 0, NotFound: true, Doc: "missing"},
		{Kind: TypeTunnelFetch, From: 6, Doc: "d3"},
		{Kind: TypeTunnelFetch, From: 6, Doc: "d3", MinVersion: 9},
		{Kind: TypeTunnelReply, From: 0, To: 6, Doc: "d3", Body: []byte("b")},
		{Kind: TypeStatsQuery, From: -1, To: 1},
		{Kind: TypeStatsReply, From: 1, Stats: &Stats{
			Node: 1, Load: 55.5, Served: 100, Forwarded: 20,
			CachedDocs:  []core.DocID{"a", "b"},
			Targets:     map[core.DocID]float64{"a": 10},
			FilterStats: FilterStats{Inspected: 120, Extracted: 100, Passed: 20},
			QueueLen:    3, CacheBytes: 77,
		}},
		{Kind: TypeShutdown, From: -1, To: 0},
		{Kind: TypePing, From: 4, To: 1, Seq: 12},
		{Kind: TypePong, From: 1, To: 4, Seq: 13},
		{Kind: TypeReclaim, From: 4, To: 0, Seq: 14, Doc: "d", Rate: 12.5},
		{Kind: TypePromote, From: 0, To: 5, Seq: 15, Doc: "hot", Rate: 80.5, Body: []byte("copy"), DocVersion: 3},
		{Kind: TypeDemote, From: 0, To: 5, Seq: 16, Doc: "hot", Rate: 2.25},
		{Kind: TypeRepublish, From: 0, To: 5, Seq: 17, Doc: "hot", Body: []byte("v2 body"), DocVersion: 2},
		{Kind: TypeInvalidate, From: 0, To: 5, Seq: 18, Doc: "hot", DocVersion: 7},
		{Kind: TypeResponse, From: 2, To: 4, Origin: 4, ReqID: 101, ServedBy: 2, Hops: 1, Doc: "hot", Body: []byte("v2 body"), DocVersion: 2},
	}
}

// TestAllKindsHaveBinaryEncoding keeps the codec table and the kind list in
// sync: a new Type constant without a v2 code would silently fall back to
// header-only encoding and corrupt the stream.
func TestAllKindsHaveBinaryEncoding(t *testing.T) {
	kinds := []Type{
		TypeGossip, TypeDelegate, TypeDelegateAck, TypeShed, TypeRequest,
		TypeResponse, TypeEvict, TypeTunnelFetch, TypeTunnelReply,
		TypeStatsQuery, TypeStatsReply, TypeShutdown, TypePing, TypePong,
		TypeReclaim, TypePromote, TypeDemote, TypeRepublish, TypeInvalidate,
	}
	for _, k := range kinds {
		code, ok := kindToCode[k]
		if !ok {
			t.Errorf("kind %q has no binary code", k)
			continue
		}
		if codeToKind[code] != k {
			t.Errorf("code %d maps to %q, want %q", code, codeToKind[code], k)
		}
	}
}

// sameEnvelope compares two envelopes field by field, ignoring V (the codec
// stamps its own version).
func sameEnvelope(t *testing.T, got, want *Envelope) {
	t.Helper()
	a, b := *got, *want
	a.V, b.V = 0, 0
	// Normalize empty vs nil bodies.
	if len(a.Body) == 0 {
		a.Body = nil
	}
	if len(b.Body) == 0 {
		b.Body = nil
	}
	as, bs := a.Stats, b.Stats
	a.Stats, b.Stats = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Errorf("envelope mismatch:\n got %+v\nwant %+v", a, b)
	}
	if (as == nil) != (bs == nil) {
		t.Fatalf("stats presence mismatch: %v vs %v", as, bs)
	}
	if as != nil && !reflect.DeepEqual(as, bs) {
		t.Errorf("stats mismatch:\n got %+v\nwant %+v", as, bs)
	}
}

func TestBinaryRoundTripAllKinds(t *testing.T) {
	var in DocInterner
	for _, env := range allKindEnvelopes() {
		t.Run(string(env.Kind), func(t *testing.T) {
			frame, err := AppendFrameV2(nil, env)
			if err != nil {
				t.Fatalf("AppendFrameV2: %v", err)
			}
			got := &Envelope{}
			if err := DecodePayload(got, frame[4:], &in); err != nil {
				t.Fatalf("DecodePayload: %v", err)
			}
			if got.V != Version2 {
				t.Errorf("V = %d, want %d", got.V, Version2)
			}
			sameEnvelope(t, got, env)
		})
	}
}

// TestCodecEquivalence decodes the same logical message from both codecs
// and requires identical envelopes — the v1↔v2 equivalence contract.
func TestCodecEquivalence(t *testing.T) {
	for _, env := range allKindEnvelopes() {
		t.Run(string(env.Kind), func(t *testing.T) {
			var jsonBuf bytes.Buffer
			e := *env
			if err := WriteFrame(&jsonBuf, &e); err != nil {
				t.Fatalf("WriteFrame: %v", err)
			}
			binFrame, err := AppendFrameV2(nil, env)
			if err != nil {
				t.Fatalf("AppendFrameV2: %v", err)
			}
			fromJSON, err := ReadFrame(&jsonBuf)
			if err != nil {
				t.Fatalf("ReadFrame(json): %v", err)
			}
			fromBin, err := ReadFrame(bytes.NewReader(binFrame))
			if err != nil {
				t.Fatalf("ReadFrame(binary): %v", err)
			}
			sameEnvelope(t, fromBin, fromJSON)
		})
	}
}

// TestMixedVersionStream interleaves v1 and v2 frames on one stream; the
// reader negotiates per frame from the payload's first byte.
func TestMixedVersionStream(t *testing.T) {
	var buf bytes.Buffer
	w1 := NewFrameWriter(&buf, 1)
	w2 := NewFrameWriter(&buf, 2)
	for i := 0; i < 6; i++ {
		w := w1
		if i%2 == 1 {
			w = w2
		}
		env := &Envelope{Kind: TypeGossip, From: i, Load: float64(i) * 2.5}
		if err := w.WriteEnvelope(env); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	r := NewFrameReader(&buf)
	env := &Envelope{}
	for i := 0; i < 6; i++ {
		if err := r.ReadInto(env); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if env.From != i || env.Load != float64(i)*2.5 {
			t.Errorf("frame %d corrupted: %+v", i, env)
		}
		wantV := Version
		if i%2 == 1 {
			wantV = Version2
		}
		if env.V != wantV {
			t.Errorf("frame %d version = %d, want %d", i, env.V, wantV)
		}
	}
	if err := r.ReadInto(env); !errors.Is(err, io.EOF) {
		t.Errorf("after drain: %v, want EOF", err)
	}
}

// TestMaxFrameBoundaryBody exercises bodies that land a v2 frame exactly on
// the MaxFrame payload bound, and one byte past it, for both a classic
// delegate frame and a versioned republish frame (whose trailing uvarint
// version shifts the boundary).
func TestMaxFrameBoundaryBody(t *testing.T) {
	for _, kind := range []Type{TypeDelegate, TypeRepublish} {
		t.Run(string(kind), func(t *testing.T) {
			mk := func(bodyLen int) *Envelope {
				return &Envelope{Kind: kind, From: 1, To: 2, Doc: "d", Rate: 1, Body: make([]byte, bodyLen), DocVersion: 300}
			}
			base, err := AppendEnvelopeV2(nil, mk(0))
			if err != nil {
				t.Fatal(err)
			}
			// payload(B) = len(base) - 1 (nil body's 1-byte length) + uvarintLen(B) + B.
			exact := -1
			for b := MaxFrame - len(base) - 8; b <= MaxFrame; b++ {
				n := len(base) - 1 + uvarintLen(uint64(b)) + b
				if n == MaxFrame {
					exact = b
					break
				}
			}
			if exact < 0 {
				t.Fatal("no body length lands exactly on MaxFrame")
			}
			frame, err := AppendFrameV2(nil, mk(exact))
			if err != nil {
				t.Fatalf("exact MaxFrame payload rejected: %v", err)
			}
			if got := len(frame) - 4; got != MaxFrame {
				t.Fatalf("payload = %d bytes, want MaxFrame", got)
			}
			got := GetEnvelope()
			defer PutEnvelope(got)
			if err := DecodePayload(got, frame[4:], nil); err != nil {
				t.Fatalf("decode MaxFrame payload: %v", err)
			}
			if len(got.Body) != exact {
				t.Fatalf("body length %d, want %d", len(got.Body), exact)
			}
			if got.DocVersion != 300 {
				t.Fatalf("doc version %d, want 300", got.DocVersion)
			}
			if _, err := AppendFrameV2(nil, mk(exact+1)); !errors.Is(err, ErrFrameTooLarge) {
				t.Errorf("over-MaxFrame error = %v, want ErrFrameTooLarge", err)
			}
		})
	}
}

// TestMixedVersionUpdateStream interleaves v1 and v2 republish/invalidate
// frames on one stream: the per-frame codec negotiation must preserve doc
// versions and bodies regardless of which codec carried each frame.
func TestMixedVersionUpdateStream(t *testing.T) {
	var buf bytes.Buffer
	w1 := NewFrameWriter(&buf, 1)
	w2 := NewFrameWriter(&buf, 2)
	const n = 8
	for i := 0; i < n; i++ {
		w := w1
		if i%2 == 1 {
			w = w2
		}
		env := &Envelope{Kind: TypeRepublish, From: 0, To: i, Doc: "hot", DocVersion: uint64(i + 1), Body: []byte{byte(i)}}
		if i%3 == 0 {
			env = &Envelope{Kind: TypeInvalidate, From: 0, To: i, Doc: "hot", DocVersion: uint64(i + 1)}
		}
		if err := w.WriteEnvelope(env); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	r := NewFrameReader(&buf)
	env := &Envelope{}
	for i := 0; i < n; i++ {
		if err := r.ReadInto(env); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		wantKind := TypeRepublish
		if i%3 == 0 {
			wantKind = TypeInvalidate
		}
		if env.Kind != wantKind || env.DocVersion != uint64(i+1) || env.To != i {
			t.Errorf("frame %d corrupted: %+v", i, env)
		}
		if wantKind == TypeRepublish && (len(env.Body) != 1 || env.Body[0] != byte(i)) {
			t.Errorf("frame %d body corrupted: %v", i, env.Body)
		}
		wantV := Version
		if i%2 == 1 {
			wantV = Version2
		}
		if env.V != wantV {
			t.Errorf("frame %d version = %d, want %d", i, env.V, wantV)
		}
	}
	if err := r.ReadInto(env); !errors.Is(err, io.EOF) {
		t.Errorf("after drain: %v, want EOF", err)
	}
}

func uvarintLen(v uint64) int {
	var tmp [binary.MaxVarintLen64]byte
	return binary.PutUvarint(tmp[:], v)
}

func TestBinaryDecodeRejectsGarbage(t *testing.T) {
	valid, err := AppendEnvelopeV2(nil, &Envelope{Kind: TypeRequest, From: 1, Origin: 1, ReqID: 5, Doc: "doc"})
	if err != nil {
		t.Fatal(err)
	}
	env := &Envelope{}
	// Every truncation of a valid payload must error, never panic.
	for i := 0; i < len(valid); i++ {
		if err := DecodePayload(env, valid[:i], nil); err == nil {
			t.Errorf("truncation at %d accepted", i)
		}
	}
	// Trailing junk is rejected.
	if err := DecodePayload(env, append(append([]byte(nil), valid...), 0xAA), nil); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Unknown kind code.
	if err := DecodePayload(env, []byte{Version2, 0xEE, 0, 0, 0}, nil); err == nil {
		t.Error("unknown kind code accepted")
	}
	// A claimed string length far past the payload end.
	bad := []byte{Version2, 5 /* request */, 2, 2, 0 /* from,to,seq */, 2, 10, 0xFF, 0xFF, 0xFF, 0x7F}
	if err := DecodePayload(env, bad, nil); err == nil {
		t.Error("overlong string length accepted")
	}
}

func TestUnknownKindHasNoBinaryEncoding(t *testing.T) {
	if _, err := AppendEnvelopeV2(nil, &Envelope{Kind: "bogus"}); err == nil {
		t.Error("unknown kind encoded")
	}
}

func TestDocInterner(t *testing.T) {
	var in DocInterner
	a := in.Intern([]byte("doc-7"))
	b := in.Intern([]byte("doc-7"))
	if a != b || a != "doc-7" {
		t.Errorf("intern mismatch: %q vs %q", a, b)
	}
	if got := in.Intern(nil); got != "" {
		t.Errorf("empty intern = %q", got)
	}
	var nilIn *DocInterner
	if got := nilIn.Intern([]byte("x")); got != "x" {
		t.Errorf("nil interner = %q", got)
	}
}

// TestHotPathZeroAllocs pins the acceptance criterion: encoding gossip and
// decoding requests on the v2 codec allocate nothing in steady state.
func TestHotPathZeroAllocs(t *testing.T) {
	gossip := &Envelope{Kind: TypeGossip, From: 3, To: 7, Seq: 42, Load: 812.5, V: Version2}
	buf := make([]byte, 0, 256)
	if n := testing.AllocsPerRun(200, func() {
		b, err := AppendFrameV2(buf[:0], gossip)
		if err != nil || len(b) == 0 {
			t.Fatal("encode failed")
		}
	}); n != 0 {
		t.Errorf("EncodeGossip allocs/op = %v, want 0", n)
	}

	reqFrame, err := AppendFrameV2(nil, &Envelope{
		Kind: TypeRequest, From: -1, To: 4, Origin: 4, ReqID: 77, Hops: 1, Doc: "hot-doc",
	})
	if err != nil {
		t.Fatal(err)
	}
	var in DocInterner
	env := &Envelope{}
	in.Intern([]byte("hot-doc")) // steady state: the doc id has been seen
	if n := testing.AllocsPerRun(200, func() {
		if err := DecodePayload(env, reqFrame[4:], &in); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("DecodeRequest allocs/op = %v, want 0", n)
	}
}
