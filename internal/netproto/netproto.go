// Package netproto defines the wire protocol spoken by live WebWave cache
// servers: load gossip, delegation of document service duty down the tree,
// shedding up the tree, client request packets, tunnel fetches across
// potential barriers, and a stats scrape for the harness.
//
// Messages travel as length-prefixed frames in one of two payload codecs
// negotiated per frame by the first payload byte: protocol v1 is JSON
// (inspectable; the stdlib-only constraint rules out protobuf) and protocol
// v2 is a compact binary form (binary.go) whose high-frequency kinds encode
// and decode without allocating. The framing layer bounds message size and
// is covered by fuzz-style round-trip tests.
package netproto

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"webwave/internal/core"
)

// Version is the JSON (v1) protocol version carried in every envelope.
const Version = 1

// MaxFrame bounds a frame's payload size (16 MiB), preventing a corrupt
// length prefix from exhausting memory.
const MaxFrame = 16 << 20

// ErrFrameTooLarge is returned when a frame exceeds MaxFrame.
var ErrFrameTooLarge = errors.New("netproto: frame exceeds maximum size")

// Type discriminates protocol messages.
type Type string

// Message types.
const (
	// TypeGossip carries a server's current load to a tree neighbor.
	TypeGossip Type = "gossip"
	// TypeDelegate hands part of a document's service duty (and, when
	// needed, the document body) from a parent to a child.
	TypeDelegate Type = "delegate"
	// TypeDelegateAck reports how much of a delegation the child accepted.
	TypeDelegateAck Type = "delegate_ack"
	// TypeShed moves service duty from a child up to its parent.
	TypeShed Type = "shed"
	// TypeRequest is a client document request traveling toward the home
	// server.
	TypeRequest Type = "request"
	// TypeResponse answers a request, recording which server served it.
	TypeResponse Type = "response"
	// TypeEvict hints to a tree neighbor that the sender displaced its
	// cache copy of a document under memory pressure: Rate carries the
	// serve duty the sender was still holding, which the receiver absorbs
	// into its own target when it caches the document (the wave recedes to
	// the surviving copies) and ignores otherwise.
	TypeEvict Type = "evict"
	// TypeTunnelFetch asks the home server directly for a document copy —
	// the Section 5.2 recovery across a potential barrier.
	TypeTunnelFetch Type = "tunnel_fetch"
	// TypeTunnelReply carries the tunneled document body.
	TypeTunnelReply Type = "tunnel_reply"
	// TypeStatsQuery and TypeStatsReply let the harness scrape metrics.
	TypeStatsQuery Type = "stats_query"
	TypeStatsReply Type = "stats_reply"
	// TypeShutdown asks a server to stop gracefully.
	TypeShutdown Type = "shutdown"
	// TypePing probes a link for liveness: sent on idle heartbeats by the
	// failure detector and as the first frame of a failover handshake. The
	// receiver answers with TypePong; either frame (or any other traffic)
	// counts as proof of life.
	TypePing Type = "ping"
	// TypePong answers a ping. From carries the responder's node id, which
	// is how a failing-over orphan learns the identity of the ancestor it
	// dialed by address.
	TypePong Type = "pong"
	// TypeReclaim re-announces serve duty across a repaired tree edge: after
	// failing over to a new parent, an orphan replays one reclaim per held
	// document, with Rate carrying the target duty it is still serving. The
	// new parent absorbs the figures into its per-child duty ledger — the
	// same bookkeeping the evict-hint path feeds — so a later loss of this
	// child re-absorbs exactly the duty that actually lives below the edge.
	TypeReclaim Type = "reclaim"
	// TypePromote enrolls the receiver as a replica root for a hot
	// document: Doc names it, Rate is the serve duty the home hands over
	// with the copy, and Body carries the document bytes when the receiver
	// is not known to hold them. The home records the handed-over rate in
	// its per-child duty ledger — the same bookkeeping delegation feeds —
	// so losing a replica root re-absorbs exactly the duty living there.
	TypePromote Type = "promote"
	// TypeDemote dissolves a replica root once the document cools: the
	// replica stops advertising the copy and hands its residual serve duty
	// back up through the ordinary evict-hint path, with Rate echoing the
	// duty the home should expect back.
	TypeDemote Type = "demote"
	// TypeRepublish pushes a new version of a mutable document down the
	// tree: DocVersion is the new monotonically increasing version number
	// and Body the replacement bytes. A copy-holder that sees a higher
	// version than its own swaps its copy in place (memory and disk tiers)
	// and forwards the frame to its children, so the new body diffuses
	// along the same filter/target edges delegation built. Stale frames
	// (DocVersion at or below the local version) are dropped, which makes
	// rebroadcast loops and duplicate delivery harmless.
	TypeRepublish Type = "republish"
	// TypeInvalidate marks a document version stale without shipping the
	// body: DocVersion is the superseding version, Body is empty on the
	// downward diffusion path (the optional body is only meaningful on the
	// injection edge at the origin, which uses it to install the new copy
	// before diffusing). A copy-holder drops its stale copy but keeps its
	// admission filter and serve duty; the next request misses locally and
	// rides the per-shard single-flight upward — the tree-wide lease — so a
	// whole invalidated subtree refreshes with one origin fetch.
	TypeInvalidate Type = "invalidate"
)

// Envelope is the single wire message. Fields are a flat union; which are
// meaningful depends on Kind.
type Envelope struct {
	V    int    `json:"v"`
	Kind Type   `json:"kind"`
	From int    `json:"from"`
	To   int    `json:"to"`
	Seq  uint64 `json:"seq,omitempty"`

	// Gossip.
	Load float64 `json:"load,omitempty"`

	// Delegation / shedding / tunneling.
	Doc  core.DocID `json:"doc,omitempty"`
	Rate float64    `json:"rate,omitempty"`
	Body []byte     `json:"body,omitempty"`
	// DocVersion is the document's version number: the superseding version
	// on republish/invalidate frames, the version of the copy handed over
	// on delegate/promote/tunnel frames, and the version of the copy that
	// answered on responses (so clients can measure staleness). 0 means the
	// document has never been republished.
	DocVersion uint64 `json:"doc_version,omitempty"`

	// Requests.
	Origin int    `json:"origin,omitempty"`
	ReqID  uint64 `json:"req_id,omitempty"`
	// MinVersion is the oldest document version the requesting session will
	// accept (read-my-writes session tokens): a node holding an older copy
	// must bypass it and refresh through the tree instead of serving it.
	// 0 — the default — accepts any version. Rides request and tunnel_fetch
	// frames.
	MinVersion uint64 `json:"min_version,omitempty"`
	// ServedBy is set on responses: the node that served the request.
	ServedBy int `json:"served_by,omitempty"`
	// Hops counts tree edges the request traversed before being served.
	Hops int `json:"hops,omitempty"`
	// NotFound is set on responses from the home server for documents it
	// does not publish.
	NotFound bool `json:"not_found,omitempty"`

	// Stats scrape.
	Stats *Stats `json:"stats,omitempty"`
}

// Stats is the metrics payload a server reports to the harness.
type Stats struct {
	Node      int     `json:"node"`
	Load      float64 `json:"load"`      // served req/s over the window
	Served    int64   `json:"served"`    // total requests served
	Forwarded int64   `json:"forwarded"` // total requests passed upstream
	// Coalesced counts requests answered from another request's upstream
	// fetch (single-flight) instead of traveling up the tree themselves.
	Coalesced      int64                  `json:"coalesced,omitempty"`
	CachedDocs     []core.DocID           `json:"cached_docs"` // current cache contents
	Targets        map[core.DocID]float64 `json:"targets"`     // per-doc target serve rates
	GossipSent     int64                  `json:"gossip_sent"`
	DelegationsIn  int64                  `json:"delegations_in"`
	DelegationsOut int64                  `json:"delegations_out"`
	ShedsIn        int64                  `json:"sheds_in"`
	ShedsOut       int64                  `json:"sheds_out"`
	Tunnels        int64                  `json:"tunnels"`
	FilterStats    FilterStats            `json:"filter_stats"`
	// QueueLen is the server's inbound event backlog at snapshot time —
	// the sum over every shard loop's queue plus the control loop's — and
	// CacheBytes the bytes held in its document cache: the saturation
	// signals the benchmark harness scrapes per window.
	QueueLen   int   `json:"queue_len"`
	CacheBytes int64 `json:"cache_bytes"`
	// Shards is the number of doc-sharded event loops; ShardQueueLens the
	// per-shard backlog at snapshot time (len == Shards) and CtrlQueueLen
	// the control loop's, so a hot-shard imbalance is visible rather than
	// hidden inside the QueueLen sum.
	Shards         int   `json:"shards,omitempty"`
	ShardQueueLens []int `json:"shard_queue_lens,omitempty"`
	CtrlQueueLen   int   `json:"ctrl_queue_len,omitempty"`
	// ShardSnapEpochs is each shard's snapshot-mailbox epoch at scrape
	// time. Ticks are skippable under backpressure, so an epoch that stops
	// advancing between scrapes identifies a wedged or starved shard.
	ShardSnapEpochs []uint64 `json:"shard_snap_epochs,omitempty"`
	// FastServed counts requests answered on the lock-free read fast path
	// (connection goroutine, publication-index hit) — a subset of Served.
	FastServed int64 `json:"fast_served,omitempty"`
	// PendingLen is the size of the response-routing table at snapshot
	// time (in-flight forwarded requests not yet answered or expired).
	PendingLen int `json:"pending_len,omitempty"`
	// Cache pressure counters: the configured byte budget (0 = unlimited),
	// documents displaced by eviction, the bytes they held, and the
	// high-water mark of CacheBytes over the server's lifetime.
	CacheBudgetBytes int64 `json:"cache_budget_bytes,omitempty"`
	EvictedDocs      int64 `json:"evicted_docs,omitempty"`
	EvictedBytes     int64 `json:"evicted_bytes,omitempty"`
	// EvictHintsIn counts evict hints received from neighbors (distinct
	// from ShedsIn, which counts only TypeShed messages).
	EvictHintsIn  int64 `json:"evict_hints_in,omitempty"`
	MaxCacheBytes int64 `json:"max_cache_bytes,omitempty"`
	// Fault-tolerance figures. ParentID is the node currently acting as this
	// server's parent (-1 at the root, or while orphaned); Orphaned is a
	// gauge: 1 while a non-root node has no live parent link. Reconnects
	// counts completed failovers (a new parent installed after a loss);
	// HeartbeatMisses counts heartbeat intervals that elapsed with no
	// traffic from a monitored neighbor — a steadily rising figure points at
	// a partitioned or wedged link before the detector gives up on it.
	ParentID        int   `json:"parent_id"`
	Orphaned        int   `json:"orphaned,omitempty"`
	Reconnects      int64 `json:"reconnects,omitempty"`
	HeartbeatMisses int64 `json:"heartbeat_misses,omitempty"`
	// ReclaimedDuty totals the duty rate re-announced to this node by
	// orphans that failed over to it (TypeReclaim); AbsorbedDuty totals the
	// delegated duty this node re-absorbed into its own targets when a
	// child died. Together they account for where a dead subtree's serve
	// duty went.
	ReclaimedDuty float64 `json:"reclaimed_duty,omitempty"`
	AbsorbedDuty  float64 `json:"absorbed_duty,omitempty"`
	// Hot-document replication forest figures. PromotedDocs is the home
	// server's view of its live replica forests: document → replica-root
	// node ids, the map the gateway's two-choices router refreshes from.
	// ReplicaDocs lists the documents this node currently serves as a
	// replica root. Promotions/Demotions count completed transitions at
	// the home.
	PromotedDocs map[core.DocID][]int `json:"promoted_docs,omitempty"`
	ReplicaDocs  []core.DocID         `json:"replica_docs,omitempty"`
	Promotions   int64                `json:"promotions,omitempty"`
	Demotions    int64                `json:"demotions,omitempty"`
	// Disk persistence tier figures (zero with Config.DataDir unset).
	// DiskHits counts requests served from the disk tier (a subset of
	// Served — each also re-admits the body to memory); DiskDocs/DiskBytes/
	// DiskBudgetBytes mirror the cache figures for the on-disk tier;
	// DiskSpills counts memory evictions that became disk-resident spills
	// (duty kept) rather than losses (duty hinted upstream); WarmDocs is
	// the number of documents recovered from the journal at startup; and
	// JournalLag is the journal records appended but not yet fsynced — what
	// a power cut (not a process kill) could lose.
	DiskHits        int64 `json:"disk_hits,omitempty"`
	DiskDocs        int64 `json:"disk_docs,omitempty"`
	DiskBytes       int64 `json:"disk_bytes,omitempty"`
	DiskBudgetBytes int64 `json:"disk_budget_bytes,omitempty"`
	DiskSpills      int64 `json:"disk_spills,omitempty"`
	WarmDocs        int64 `json:"warm_docs,omitempty"`
	JournalLag      int64 `json:"journal_lag,omitempty"`
	// Mutable-document figures (zero until a document is republished).
	// RepublishesIn counts version-advancing republish frames applied;
	// InvalidationsIn counts version-advancing invalidate frames applied
	// (both exclude stale duplicates, which are dropped). StaleDrops counts
	// frames or handed-over copies refused because they carried a version
	// at or below the local one. LeaseRefreshes counts stale copies
	// re-admitted from an upstream response body — each is one subtree-wide
	// lease fetch that answered every coalesced waiter below it.
	RepublishesIn   int64 `json:"republishes_in,omitempty"`
	InvalidationsIn int64 `json:"invalidations_in,omitempty"`
	StaleDrops      int64 `json:"stale_drops,omitempty"`
	LeaseRefreshes  int64 `json:"lease_refreshes,omitempty"`
	// SessionRefreshes counts requests whose session token demanded a newer
	// version than the local copy held: each bypassed the copy and rode the
	// subtree lease upward (or parked at the root) instead of being served
	// stale.
	SessionRefreshes int64 `json:"session_refreshes,omitempty"`
}

// FilterStats mirrors router.Stats for the wire.
type FilterStats struct {
	Inspected int64 `json:"inspected"`
	Extracted int64 `json:"extracted"`
	Passed    int64 `json:"passed"`
}

// Validate performs basic sanity checks on a received envelope.
func (e *Envelope) Validate() error {
	if e.V != Version && e.V != Version2 {
		return fmt.Errorf("netproto: version %d, want %d or %d", e.V, Version, Version2)
	}
	if e.Kind == "" {
		return errors.New("netproto: missing kind")
	}
	if e.Rate < 0 {
		return fmt.Errorf("netproto: negative rate %v", e.Rate)
	}
	return nil
}

// WriteFrame marshals env and writes it to w as a 4-byte big-endian length
// prefix followed by the JSON payload.
func WriteFrame(w io.Writer, env *Envelope) error {
	if env.V == 0 {
		env.V = Version
	}
	payload, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("netproto: marshal: %w", err)
	}
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("netproto: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("netproto: write payload: %w", err)
	}
	return nil
}

// ReadFrame reads one frame from r and decodes it, accepting either
// payload codec (JSON v1 or binary v2). Callers that read many frames from
// one stream should prefer FrameReader, which reuses its buffers.
func ReadFrame(r io.Reader) (*Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("netproto: read header: %w", err)
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("netproto: read payload: %w", err)
	}
	env := &Envelope{}
	if err := DecodePayload(env, payload, nil); err != nil {
		return nil, err
	}
	return env, nil
}
