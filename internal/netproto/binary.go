// Binary wire codec (protocol v2).
//
// v1 frames a JSON object per message: inspectable, but every frame costs a
// json.Marshal round trip and a fresh payload allocation. v2 keeps the same
// outer framing (4-byte big-endian length prefix, MaxFrame bound) and swaps
// the payload for a compact binary form:
//
//	payload := magic(0x02) kind(1B) from(varint) to(varint) seq(uvarint) <kind fields>
//
// Integers use encoding/binary varints (zigzag for signed), floats are
// 8-byte little-endian IEEE 754, and strings/bytes are uvarint
// length-prefixed. The two codecs coexist on one stream: a JSON payload
// always begins with '{' (0x7B), a v2 payload with 0x02, so receivers
// negotiate per frame by inspecting the first payload byte. High-frequency
// kinds (gossip, request, response) encode and decode without allocating;
// the rare stats_reply embeds its Stats as a JSON blob rather than growing
// the binary schema.
package netproto

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"webwave/internal/core"
)

// Version2 is the binary protocol version; it doubles as the magic first
// payload byte distinguishing v2 frames from v1 JSON frames (which always
// start with '{').
const Version2 = 2

// ErrShortPayload reports a v2 payload that ended mid-field.
var ErrShortPayload = errors.New("netproto: truncated binary payload")

// kind codes: the byte each Type travels as in a v2 frame. 0 is reserved so
// a zeroed buffer never decodes as a valid kind.
var kindToCode = map[Type]byte{
	TypeGossip:      1,
	TypeDelegate:    2,
	TypeDelegateAck: 3,
	TypeShed:        4,
	TypeRequest:     5,
	TypeResponse:    6,
	TypeTunnelFetch: 7,
	TypeTunnelReply: 8,
	TypeStatsQuery:  9,
	TypeStatsReply:  10,
	TypeShutdown:    11,
	TypeEvict:       12,
	TypePing:        13,
	TypePong:        14,
	TypeReclaim:     15,
	TypePromote:     16,
	TypeDemote:      17,
	TypeRepublish:   18,
	TypeInvalidate:  19,
}

var codeToKind = [20]Type{
	1: TypeGossip, 2: TypeDelegate, 3: TypeDelegateAck, 4: TypeShed,
	5: TypeRequest, 6: TypeResponse, 7: TypeTunnelFetch, 8: TypeTunnelReply,
	9: TypeStatsQuery, 10: TypeStatsReply, 11: TypeShutdown, 12: TypeEvict,
	13: TypePing, 14: TypePong, 15: TypeReclaim, 16: TypePromote, 17: TypeDemote,
	18: TypeRepublish, 19: TypeInvalidate,
}

// DocInterner de-duplicates document-id strings seen by a decoder so the
// steady-state hot path (the same few hot documents over and over) converts
// payload bytes to core.DocID without allocating. A lookup with a []byte
// key compiles to a no-alloc map access; only the first sighting of each id
// copies the bytes. The table is bounded: past maxInterned distinct ids it
// is dropped and rebuilt, trading a few re-allocations for a memory cap.
type DocInterner struct {
	m map[string]core.DocID
}

const maxInterned = 4096

// Intern returns b as a DocID, reusing a previously interned copy when one
// exists. A nil receiver degrades to a plain allocating conversion.
func (di *DocInterner) Intern(b []byte) core.DocID {
	if len(b) == 0 {
		return ""
	}
	if di == nil {
		return core.DocID(b)
	}
	if id, ok := di.m[string(b)]; ok {
		return id
	}
	if di.m == nil || len(di.m) >= maxInterned {
		di.m = make(map[string]core.DocID, 64)
	}
	id := core.DocID(b)
	di.m[string(id)] = id
	return id
}

// AppendEnvelopeV2 appends env's v2 payload (magic byte onward, no length
// prefix) to dst and returns the extended slice. It allocates only when dst
// lacks capacity.
func AppendEnvelopeV2(dst []byte, env *Envelope) ([]byte, error) {
	code, ok := kindToCode[env.Kind]
	if !ok {
		return dst, fmt.Errorf("netproto: kind %q has no binary encoding", env.Kind)
	}
	dst = append(dst, Version2, code)
	dst = binary.AppendVarint(dst, int64(env.From))
	dst = binary.AppendVarint(dst, int64(env.To))
	dst = binary.AppendUvarint(dst, env.Seq)
	switch env.Kind {
	case TypeGossip:
		dst = appendFloat(dst, env.Load)
	case TypeRequest:
		dst = binary.AppendVarint(dst, int64(env.Origin))
		dst = binary.AppendUvarint(dst, env.ReqID)
		dst = binary.AppendUvarint(dst, uint64(env.Hops))
		dst = appendString(dst, string(env.Doc))
		dst = binary.AppendUvarint(dst, env.MinVersion)
	case TypeResponse:
		dst = binary.AppendVarint(dst, int64(env.Origin))
		dst = binary.AppendUvarint(dst, env.ReqID)
		dst = binary.AppendVarint(dst, int64(env.ServedBy))
		dst = binary.AppendUvarint(dst, uint64(env.Hops))
		var flags byte
		if env.NotFound {
			flags |= 1
		}
		dst = append(dst, flags)
		dst = appendString(dst, string(env.Doc))
		dst = appendBytes(dst, env.Body)
		dst = binary.AppendUvarint(dst, env.DocVersion)
	case TypeDelegate, TypeDelegateAck, TypeShed, TypeEvict, TypeReclaim,
		TypePromote, TypeDemote, TypeTunnelFetch, TypeTunnelReply,
		TypeRepublish, TypeInvalidate:
		dst = appendString(dst, string(env.Doc))
		dst = appendFloat(dst, env.Rate)
		dst = appendBytes(dst, env.Body)
		dst = binary.AppendUvarint(dst, env.DocVersion)
		if env.Kind == TypeTunnelFetch {
			// MinVersion trails the shared delegate-family layout on
			// tunnel_fetch only — the one family member that carries a
			// session's version floor across a barrier. The decoder demands
			// it, so both sides change together (same discipline as the
			// trailing DocVersion).
			dst = binary.AppendUvarint(dst, env.MinVersion)
		}
	case TypeStatsQuery, TypeShutdown, TypePing, TypePong:
		// Header only.
	case TypeStatsReply:
		if env.Stats == nil {
			dst = append(dst, 0)
		} else {
			dst = append(dst, 1)
			blob, err := json.Marshal(env.Stats) // rare path; JSON blob, not binary schema
			if err != nil {
				return dst, fmt.Errorf("netproto: marshal stats: %w", err)
			}
			dst = appendBytes(dst, blob)
		}
	}
	return dst, nil
}

// AppendFrameV2 appends a complete v2 frame (length prefix + payload) to
// dst. The caller can reuse dst across calls for allocation-free encoding.
func AppendFrameV2(dst []byte, env *Envelope) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length backpatched below
	dst, err := AppendEnvelopeV2(dst, env)
	if err != nil {
		return dst[:start], err
	}
	size := len(dst) - start - 4
	if size > MaxFrame {
		return dst[:start], ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(dst[start:], uint32(size))
	return dst, nil
}

// DecodePayload decodes one frame payload (the bytes after the length
// prefix) into env, auto-detecting the codec from the first byte: '{' means
// v1 JSON, 0x02 means v2 binary. env is fully overwritten. in may be nil.
func DecodePayload(env *Envelope, payload []byte, in *DocInterner) error {
	if len(payload) == 0 {
		return ErrShortPayload
	}
	if payload[0] == Version2 {
		return DecodeEnvelopeV2(env, payload, in)
	}
	*env = Envelope{}
	if err := json.Unmarshal(payload, env); err != nil {
		return fmt.Errorf("netproto: unmarshal: %w", err)
	}
	return env.Validate()
}

// DecodeEnvelopeV2 decodes a v2 payload (magic byte onward) into env,
// overwriting every field. Doc ids are interned through in when non-nil.
// Body bytes are copied into env.Body, reusing its capacity when possible —
// so a caller-owned envelope reused across calls decodes without
// allocating once its Body has grown to the working-set size.
func DecodeEnvelopeV2(env *Envelope, payload []byte, in *DocInterner) error {
	if len(payload) < 2 || payload[0] != Version2 {
		return ErrShortPayload
	}
	code := payload[1]
	if int(code) >= len(codeToKind) || codeToKind[code] == "" {
		return fmt.Errorf("netproto: unknown binary kind code %d", code)
	}
	body := env.Body[:0]
	*env = Envelope{V: Version2, Kind: codeToKind[code]}
	r := byteReader{b: payload, off: 2}
	env.From = int(r.varint())
	env.To = int(r.varint())
	env.Seq = r.uvarint()
	switch env.Kind {
	case TypeGossip:
		env.Load = r.float()
	case TypeRequest:
		env.Origin = int(r.varint())
		env.ReqID = r.uvarint()
		env.Hops = int(r.uvarint())
		env.Doc = in.Intern(r.bytes())
		env.MinVersion = r.uvarint()
	case TypeResponse:
		env.Origin = int(r.varint())
		env.ReqID = r.uvarint()
		env.ServedBy = int(r.varint())
		env.Hops = int(r.uvarint())
		env.NotFound = r.byte()&1 != 0
		env.Doc = in.Intern(r.bytes())
		if b := r.bytes(); len(b) > 0 {
			env.Body = append(body, b...)
		}
		env.DocVersion = r.uvarint()
	case TypeDelegate, TypeDelegateAck, TypeShed, TypeEvict, TypeReclaim,
		TypePromote, TypeDemote, TypeTunnelFetch, TypeTunnelReply,
		TypeRepublish, TypeInvalidate:
		env.Doc = in.Intern(r.bytes())
		env.Rate = r.float()
		if b := r.bytes(); len(b) > 0 {
			env.Body = append(body, b...)
		}
		env.DocVersion = r.uvarint()
		if env.Kind == TypeTunnelFetch {
			env.MinVersion = r.uvarint()
		}
	case TypeStatsQuery, TypeShutdown, TypePing, TypePong:
		// Header only.
	case TypeStatsReply:
		if r.byte() != 0 {
			blob := r.bytes()
			if !r.bad {
				st := &Stats{}
				if err := json.Unmarshal(blob, st); err != nil {
					return fmt.Errorf("netproto: unmarshal stats: %w", err)
				}
				env.Stats = st
			}
		}
	}
	if r.bad {
		return ErrShortPayload
	}
	if r.off != len(payload) {
		return fmt.Errorf("netproto: %d trailing bytes after %s payload", len(payload)-r.off, env.Kind)
	}
	return env.Validate()
}

func appendFloat(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBytes(dst []byte, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// byteReader walks a payload with a sticky error flag so decoders can read
// a whole message and check validity once — no per-field error branches,
// no panics on truncated input.
type byteReader struct {
	b   []byte
	off int
	bad bool
}

func (r *byteReader) uvarint() uint64 {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.off += n
	return v
}

func (r *byteReader) varint() int64 {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.off += n
	return v
}

func (r *byteReader) float() float64 {
	if r.off+8 > len(r.b) {
		r.bad = true
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *byteReader) byte() byte {
	if r.off >= len(r.b) {
		r.bad = true
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *byteReader) bytes() []byte {
	n := r.uvarint()
	if r.bad {
		return nil
	}
	if n > uint64(len(r.b)-r.off) {
		r.bad = true
		return nil
	}
	v := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return v
}
