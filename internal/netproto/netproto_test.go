package netproto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"webwave/internal/core"
)

func TestRoundTripAllKinds(t *testing.T) {
	envs := []*Envelope{
		{Kind: TypeGossip, From: 1, To: 2, Load: 123.5},
		{Kind: TypeDelegate, From: 0, To: 3, Doc: "doc-1", Rate: 42.25, Body: []byte("payload")},
		{Kind: TypeDelegateAck, From: 3, To: 0, Doc: "doc-1", Rate: 42.25},
		{Kind: TypeShed, From: 5, To: 1, Doc: "d", Rate: 7},
		{Kind: TypeEvict, From: 5, To: 1, Doc: "d", Rate: 3.5},
		{Kind: TypeRequest, From: -1, To: 4, Origin: 4, ReqID: 99, Doc: "d"},
		{Kind: TypeResponse, From: 2, To: 4, Origin: 4, ReqID: 99, ServedBy: 2, Hops: 3},
		{Kind: TypeTunnelFetch, From: 6, Doc: "d3"},
		{Kind: TypeTunnelReply, From: 0, To: 6, Doc: "d3", Body: []byte("b")},
		{Kind: TypeStatsQuery, From: -1, To: 1},
		{Kind: TypeStatsReply, From: 1, Stats: &Stats{
			Node: 1, Load: 55.5, Served: 100, Forwarded: 20,
			CachedDocs:  []core.DocID{"a", "b"},
			Targets:     map[core.DocID]float64{"a": 10},
			FilterStats: FilterStats{Inspected: 120, Extracted: 100, Passed: 20},
		}},
		{Kind: TypeShutdown, From: -1, To: 0},
	}
	for _, env := range envs {
		t.Run(string(env.Kind), func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteFrame(&buf, env); err != nil {
				t.Fatalf("WriteFrame: %v", err)
			}
			got, err := ReadFrame(&buf)
			if err != nil {
				t.Fatalf("ReadFrame: %v", err)
			}
			if got.Kind != env.Kind || got.From != env.From || got.To != env.To {
				t.Errorf("header mismatch: %+v vs %+v", got, env)
			}
			if got.Doc != env.Doc || got.Rate != env.Rate || got.Load != env.Load {
				t.Errorf("payload mismatch: %+v vs %+v", got, env)
			}
			if !bytes.Equal(got.Body, env.Body) {
				t.Errorf("body mismatch")
			}
			if env.Stats != nil {
				if got.Stats == nil || got.Stats.Load != env.Stats.Load ||
					len(got.Stats.CachedDocs) != len(env.Stats.CachedDocs) {
					t.Errorf("stats mismatch: %+v vs %+v", got.Stats, env.Stats)
				}
			}
		})
	}
}

func TestMultipleFramesSequential(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		env := &Envelope{Kind: TypeGossip, From: i, Load: float64(i) * 1.5}
		if err := WriteFrame(&buf, env); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.From != i || got.Load != float64(i)*1.5 {
			t.Errorf("frame %d corrupted: %+v", i, got)
		}
	}
	if _, err := ReadFrame(&buf); !errors.Is(err, io.EOF) {
		t.Errorf("after drain: %v, want EOF", err)
	}
}

func TestVersionStampedAndChecked(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Envelope{Kind: TypeGossip}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.V != Version {
		t.Errorf("version = %d, want %d", got.V, Version)
	}
	// A frame with the wrong version is rejected.
	var buf2 bytes.Buffer
	payload := []byte(`{"v":99,"kind":"gossip","from":0,"to":0}`)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	buf2.Write(hdr[:])
	buf2.Write(payload)
	if _, err := ReadFrame(&buf2); err == nil {
		t.Error("wrong version accepted")
	}
}

func TestValidateRejects(t *testing.T) {
	if err := (&Envelope{V: Version}).Validate(); err == nil {
		t.Error("missing kind accepted")
	}
	if err := (&Envelope{V: Version, Kind: TypeShed, Rate: -1}).Validate(); err == nil {
		t.Error("negative rate accepted")
	}
	if err := (&Envelope{V: Version, Kind: TypeGossip}).Validate(); err != nil {
		t.Errorf("valid envelope rejected: %v", err)
	}
}

func TestOversizedFrameRejectedOnWrite(t *testing.T) {
	env := &Envelope{Kind: TypeDelegate, Body: make([]byte, MaxFrame)}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, env); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized write error = %v", err)
	}
}

func TestOversizedFrameRejectedOnRead(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	buf.Write(hdr[:])
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized read error = %v", err)
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Envelope{Kind: TypeGossip}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-3] // cut payload short
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestGarbagePayload(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("this is not json")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	buf.Write(hdr[:])
	buf.Write(payload)
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("garbage payload accepted")
	}
}

// Property: arbitrary gossip/delegate envelopes survive a round trip.
func TestQuickRoundTrip(t *testing.T) {
	f := func(from, to int16, rate float64, doc string, body []byte) bool {
		if rate < 0 {
			rate = -rate
		}
		if rate != rate { // NaN
			rate = 0
		}
		// Strip characters JSON cannot carry in Go strings losslessly.
		doc = strings.ToValidUTF8(doc, "")
		env := &Envelope{
			Kind: TypeDelegate, From: int(from), To: int(to),
			Doc: core.DocID(doc), Rate: rate, Body: body,
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, env); err != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		return got.From == env.From && got.To == env.To &&
			got.Doc == env.Doc && got.Rate == env.Rate &&
			bytes.Equal(got.Body, env.Body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
