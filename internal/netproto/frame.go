// Streaming frame codec with reusable buffers. FrameWriter and FrameReader
// carry their own scratch space so the per-frame cost on a long-lived
// connection is the encode/decode work itself — no payload allocation, no
// envelope boxing beyond what the caller asks for. Envelope and frame-buffer
// pools let transports and servers recycle the remaining per-message
// allocations across connections.
package netproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// ---------------------------------------------------------------------------
// Pools.

var envPool = sync.Pool{New: func() any { return new(Envelope) }}

// GetEnvelope returns a zeroed Envelope from the shared pool.
func GetEnvelope() *Envelope {
	return envPool.Get().(*Envelope)
}

// PutEnvelope recycles an envelope. The caller must not touch e afterward.
// Every reference field (Body, Stats) is dropped, never reused, so bytes a
// consumer retained from e (for example a cached document body) stay valid.
func PutEnvelope(e *Envelope) {
	if e == nil {
		return
	}
	*e = Envelope{}
	envPool.Put(e)
}

// maxPooledBuf bounds the scratch buffers kept by the frame pool; a frame
// that grew past it (a large document body) is left for the GC instead of
// pinning its memory in the pool.
const maxPooledBuf = 64 << 10

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(p *[]byte) {
	if cap(*p) > maxPooledBuf {
		return
	}
	*p = (*p)[:0]
	bufPool.Put(p)
}

// ---------------------------------------------------------------------------
// FrameWriter.

// FrameWriter encodes envelopes onto a stream, reusing one scratch buffer
// across frames. Version selects the payload codec: 1 writes JSON frames
// (WriteFrame's format), anything else writes binary v2. Not safe for
// concurrent use; transports serialize callers.
type FrameWriter struct {
	w       io.Writer
	buf     []byte
	version int
}

// NewFrameWriter returns a writer emitting the given protocol version.
func NewFrameWriter(w io.Writer, version int) *FrameWriter {
	return &FrameWriter{w: w, version: version}
}

// WriteEnvelope encodes env and writes one frame. The frame goes out in a
// single Write call, so an unbuffered destination sees one syscall per
// frame and a buffered one can coalesce many.
func (fw *FrameWriter) WriteEnvelope(env *Envelope) error {
	if fw.version == 1 {
		if env.V == 0 {
			env.V = Version
		}
		return WriteFrame(fw.w, env)
	}
	if env.V == 0 {
		env.V = Version2
	}
	buf, err := AppendFrameV2(fw.buf[:0], env)
	if err != nil {
		return err
	}
	fw.buf = buf
	if _, err := fw.w.Write(buf); err != nil {
		return fmt.Errorf("netproto: write frame: %w", err)
	}
	if cap(fw.buf) > maxPooledBuf {
		fw.buf = nil // don't pin a giant body buffer on the connection
	}
	return nil
}

// ---------------------------------------------------------------------------
// FrameReader.

// FrameReader decodes length-prefixed frames from a stream into
// caller-supplied envelopes, negotiating the codec per frame from the first
// payload byte ('{' = v1 JSON, 0x02 = binary v2). One payload buffer and
// one doc-id intern table are reused across frames, so steady-state reads
// of body-less messages do not allocate. Not safe for concurrent use.
type FrameReader struct {
	r      io.Reader
	buf    []byte
	intern DocInterner
}

// NewFrameReader returns a reader over r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r}
}

// ReadInto reads one frame and decodes it into env, overwriting every
// field. It returns io.EOF at a clean end of stream.
func (fr *FrameReader) ReadInto(env *Envelope) error {
	if cap(fr.buf) < 4 {
		fr.buf = make([]byte, 0, 4096)
	}
	hdr := fr.buf[:4]
	if _, err := io.ReadFull(fr.r, hdr); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("netproto: read header: %w", err)
	}
	size := binary.BigEndian.Uint32(hdr)
	if size > MaxFrame {
		return ErrFrameTooLarge
	}
	if uint32(cap(fr.buf)) < size {
		fr.buf = make([]byte, 0, size)
	}
	payload := fr.buf[:size]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return fmt.Errorf("netproto: read payload: %w", err)
	}
	err := DecodePayload(env, payload, &fr.intern)
	if cap(fr.buf) > maxPooledBuf {
		fr.buf = nil // shed oversized scratch after a big body frame
	}
	return err
}
