package netproto

import (
	"bytes"
	"encoding/json"
	"testing"
)

// The acceptance benchmarks for the v2 codec: BenchmarkEncodeGossip and
// BenchmarkDecodeRequest must report 0 allocs/op, and beat their JSON
// counterparts by >=5x ns/op. Run with:
//
//	go test -bench 'Encode|Decode' -benchmem ./internal/netproto/

var benchGossip = &Envelope{Kind: TypeGossip, From: 3, To: 7, Seq: 123456, Load: 847.25}

func BenchmarkEncodeGossip(b *testing.B) {
	env := *benchGossip
	env.V = Version2
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendFrameV2(buf[:0], &env)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeGossipJSON(b *testing.B) {
	env := *benchGossip
	env.V = Version
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteFrame(&buf, &env); err != nil {
			b.Fatal(err)
		}
	}
}

var benchRequest = &Envelope{Kind: TypeRequest, From: 9, To: 4, Seq: 55, Origin: 12, ReqID: 98765, Hops: 3, Doc: "docs/hot-page.html"}

func BenchmarkDecodeRequest(b *testing.B) {
	frame, err := AppendFrameV2(nil, benchRequest)
	if err != nil {
		b.Fatal(err)
	}
	payload := frame[4:]
	var in DocInterner
	env := &Envelope{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodePayload(env, payload, &in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeRequestJSON(b *testing.B) {
	env := *benchRequest
	env.V = Version
	payload, err := json.Marshal(&env)
	if err != nil {
		b.Fatal(err)
	}
	out := &Envelope{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodePayload(out, payload, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeRequest(b *testing.B) {
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendFrameV2(buf[:0], benchRequest)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeGossip(b *testing.B) {
	frame, err := AppendFrameV2(nil, benchGossip)
	if err != nil {
		b.Fatal(err)
	}
	payload := frame[4:]
	env := &Envelope{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodePayload(env, payload, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func benchResponse() *Envelope {
	return &Envelope{
		Kind: TypeResponse, From: 2, To: 12, Seq: 7, Origin: 12, ReqID: 98765,
		ServedBy: 2, Hops: 3, Doc: "docs/hot-page.html", Body: bytes.Repeat([]byte("w"), 1024),
	}
}

func BenchmarkEncodeResponse1K(b *testing.B) {
	env := benchResponse()
	buf := make([]byte, 0, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendFrameV2(buf[:0], env)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeResponse1KJSON(b *testing.B) {
	env := benchResponse()
	env.V = Version
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteFrame(&buf, env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeResponse1K(b *testing.B) {
	frame, err := AppendFrameV2(nil, benchResponse())
	if err != nil {
		b.Fatal(err)
	}
	payload := frame[4:]
	var in DocInterner
	env := &Envelope{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodePayload(env, payload, &in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeResponse1KJSON(b *testing.B) {
	env := benchResponse()
	env.V = Version
	payload, err := json.Marshal(env)
	if err != nil {
		b.Fatal(err)
	}
	out := &Envelope{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodePayload(out, payload, nil); err != nil {
			b.Fatal(err)
		}
	}
}
