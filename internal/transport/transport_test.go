package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"webwave/internal/netproto"
)

func pair(t *testing.T, netw Network, addr string) (client, server Conn, cleanup func()) {
	t.Helper()
	l, err := netw.Listen(addr)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	type res struct {
		c   Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := l.Accept()
		ch <- res{c, err}
	}()
	client, err = netw.Dial(l.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatalf("Accept: %v", r.err)
	}
	return client, r.c, func() {
		client.Close()
		r.c.Close()
		l.Close()
	}
}

func testSendRecv(t *testing.T, netw Network, addr string) {
	client, server, cleanup := pair(t, netw, addr)
	defer cleanup()

	want := &netproto.Envelope{Kind: netproto.TypeGossip, From: 1, To: 2, Load: 3.5}
	if err := client.Send(want); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := server.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if got.Kind != want.Kind || got.Load != want.Load {
		t.Errorf("got %+v, want %+v", got, want)
	}

	// And the reverse direction.
	if err := server.Send(&netproto.Envelope{Kind: netproto.TypeShed, From: 2, Rate: 1}); err != nil {
		t.Fatalf("reverse Send: %v", err)
	}
	if back, err := client.Recv(); err != nil || back.Kind != netproto.TypeShed {
		t.Fatalf("reverse Recv: %v %v", back, err)
	}
}

func testFIFO(t *testing.T, netw Network, addr string) {
	client, server, cleanup := pair(t, netw, addr)
	defer cleanup()
	const n = 200
	for i := 0; i < n; i++ {
		if err := client.Send(&netproto.Envelope{Kind: netproto.TypeGossip, Seq: uint64(i + 1), From: i}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		env, err := server.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if env.From != i {
			t.Fatalf("out of order: got %d at position %d", env.From, i)
		}
	}
}

func testCloseUnblocksRecv(t *testing.T, netw Network, addr string) {
	client, server, cleanup := pair(t, netw, addr)
	defer cleanup()
	done := make(chan error, 1)
	go func() {
		_, err := server.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	client.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("Recv after close: %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on close")
	}
}

func TestMemorySendRecv(t *testing.T) {
	testSendRecv(t, NewMemoryNetwork(MemoryOptions{}), "a")
}

func TestMemoryFIFO(t *testing.T) {
	testFIFO(t, NewMemoryNetwork(MemoryOptions{}), "a")
}

func TestMemoryFIFOWithJitter(t *testing.T) {
	netw := NewMemoryNetwork(MemoryOptions{
		Latency: time.Millisecond, Jitter: 3 * time.Millisecond, Seed: 1,
	})
	testFIFO(t, netw, "a")
}

func TestMemoryCloseUnblocksRecv(t *testing.T) {
	testCloseUnblocksRecv(t, NewMemoryNetwork(MemoryOptions{}), "a")
}

func TestMemoryDialUnknown(t *testing.T) {
	netw := NewMemoryNetwork(MemoryOptions{})
	if _, err := netw.Dial("nobody"); !errors.Is(err, ErrUnknownAddr) {
		t.Errorf("dial unknown: %v", err)
	}
}

func TestMemoryAddressInUse(t *testing.T) {
	netw := NewMemoryNetwork(MemoryOptions{})
	if _, err := netw.Listen("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := netw.Listen("a"); err == nil {
		t.Error("double listen accepted")
	}
}

func TestMemoryLatency(t *testing.T) {
	netw := NewMemoryNetwork(MemoryOptions{Latency: 50 * time.Millisecond})
	client, server, cleanup := pair(t, netw, "a")
	defer cleanup()
	start := time.Now()
	if err := client.Send(&netproto.Envelope{Kind: netproto.TypeGossip}); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Recv(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Errorf("message arrived after %v, want >= ~50ms", elapsed)
	}
}

func TestMemoryLoss(t *testing.T) {
	netw := NewMemoryNetwork(MemoryOptions{Loss: 1, Seed: 1}) // drop everything
	client, server, cleanup := pair(t, netw, "a")
	defer cleanup()
	if err := client.Send(&netproto.Envelope{Kind: netproto.TypeGossip}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		server.Recv()
		close(done)
	}()
	select {
	case <-done:
		t.Error("message delivered despite 100% loss")
	case <-time.After(50 * time.Millisecond):
	}
	client.Close()
}

func TestMemorySendAfterClose(t *testing.T) {
	netw := NewMemoryNetwork(MemoryOptions{})
	client, _, cleanup := pair(t, netw, "a")
	cleanup()
	if err := client.Send(&netproto.Envelope{Kind: netproto.TypeGossip}); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close: %v", err)
	}
}

func TestMemoryListenerClose(t *testing.T) {
	netw := NewMemoryNetwork(MemoryOptions{})
	l, err := netw.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	l.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("Accept after close: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Accept did not unblock")
	}
}

func TestMemoryConcurrentSenders(t *testing.T) {
	netw := NewMemoryNetwork(MemoryOptions{})
	client, server, cleanup := pair(t, netw, "a")
	defer cleanup()
	const workers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				client.Send(&netproto.Envelope{Kind: netproto.TypeGossip, From: w})
			}
		}(w)
	}
	wg.Wait()
	for i := 0; i < workers*per; i++ {
		if _, err := server.Recv(); err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
	}
}

// --- TCP transport over the loopback interface ---

func TestTCPSendRecv(t *testing.T) {
	testSendRecv(t, TCPNetwork{}, "127.0.0.1:0")
}

func TestTCPFIFO(t *testing.T) {
	testFIFO(t, TCPNetwork{}, "127.0.0.1:0")
}

func TestTCPCloseUnblocksRecv(t *testing.T) {
	testCloseUnblocksRecv(t, TCPNetwork{}, "127.0.0.1:0")
}

func TestTCPDialRefused(t *testing.T) {
	// Port 1 on loopback is essentially never listening.
	if _, err := (TCPNetwork{}).Dial("127.0.0.1:1"); err == nil {
		t.Skip("something actually listens on 127.0.0.1:1")
	}
}

func TestTCPLargeBody(t *testing.T) {
	client, server, cleanup := pair(t, TCPNetwork{}, "127.0.0.1:0")
	defer cleanup()
	body := make([]byte, 1<<20)
	for i := range body {
		body[i] = byte(i)
	}
	if err := client.Send(&netproto.Envelope{Kind: netproto.TypeDelegate, Doc: "big", Body: body}); err != nil {
		t.Fatal(err)
	}
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Body) != len(body) {
		t.Fatalf("body length %d, want %d", len(got.Body), len(body))
	}
}
