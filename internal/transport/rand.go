package transport

import (
	"math/rand"
	"sync"
)

// lockedRand is a mutex-guarded rand.Rand, shared by all connections of a
// MemoryNetwork so that a single seed reproduces a whole network's loss and
// jitter pattern.
type lockedRand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{rng: rand.New(rand.NewSource(seed))}
}

func (l *lockedRand) Float64() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Float64()
}
