// Package transport abstracts the links between live WebWave servers. Two
// implementations are provided: an in-memory network with configurable
// latency, jitter and loss (the default for simulations and tests) and a
// real TCP network on the loopback interface (package net), demonstrating
// that the protocol runs over genuine sockets.
package transport

import (
	"errors"
	"sync"
	"time"

	"webwave/internal/netproto"
)

// ErrClosed is returned by operations on a closed connection or listener.
var ErrClosed = errors.New("transport: closed")

// ErrUnknownAddr is returned when dialing an address nothing listens on.
var ErrUnknownAddr = errors.New("transport: unknown address")

// Conn is a bidirectional, ordered message link.
type Conn interface {
	// Send transmits one envelope. It is safe for concurrent use; the
	// envelope is copied or serialized before Send returns, so the caller
	// may reuse it.
	Send(env *netproto.Envelope) error
	// Recv blocks for the next envelope. It returns ErrClosed once the
	// connection is closed and drained. The caller owns the returned
	// envelope; callers that fully consume one (retaining at most its Body
	// bytes) may recycle it with netproto.PutEnvelope.
	Recv() (*netproto.Envelope, error)
	// Close shuts the connection down; pending Recv calls are released.
	Close() error
}

// BatchConn is implemented by connections that can buffer writes for an
// explicit flush, letting a serial sender (a server's main loop emitting
// many frames per event batch) pay one flush — and on TCP one syscall —
// per batch instead of per frame. SendBuffered may leave the frame
// unflushed indefinitely; the sender owns calling Flush promptly.
type BatchConn interface {
	Conn
	SendBuffered(env *netproto.Envelope) error
	Flush() error
}

// BatchLane is one independent buffered-send lane of a LaneConn. A lane
// encodes frames into its own buffer, so concurrent lanes never contend on
// the encoder; only Flush briefly serializes on the connection's writer.
// Like BatchConn, a lane's frames stay buffered until Flush.
type BatchLane interface {
	SendBuffered(env *netproto.Envelope) error
	Flush() error
}

// LaneConn is implemented by connections offering multiple independent
// flush lanes. A doc-sharded server gives each shard loop its own lane so
// shards batching frames onto a shared connection (responses to one client,
// protocol traffic to one neighbor) encode without taking a common lock.
// Lane is safe for concurrent use and returns the same lane for the same
// index; lane indices should be small and dense.
type LaneConn interface {
	BatchConn
	Lane(i int) BatchLane
}

// Listener accepts inbound connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	Addr() string
}

// Network is a connection factory.
type Network interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
}

// ---------------------------------------------------------------------------
// In-memory network.

// MemoryOptions shape the simulated link behavior.
type MemoryOptions struct {
	Latency time.Duration // base one-way delay
	Jitter  time.Duration // uniform extra delay in [0, Jitter)
	// Loss is the probability of silently dropping a message in transit.
	// The live protocol keeps only soft state in messages, so loss slows
	// balancing but never loses requests or documents.
	Loss float64
	Seed int64
	// Backlog is each listener's accept queue depth; Dial blocks once it
	// fills. Default 64 — raise it for high-fan-out scenarios where many
	// clients dial one node faster than its accept loop drains.
	Backlog int
}

// MemoryNetwork is an in-process Network. The zero value is usable with
// zero latency and no loss.
type MemoryNetwork struct {
	mu        sync.Mutex
	listeners map[string]*memListener
	opts      MemoryOptions
	rng       *lockedRand
	faults    faultRegistry
}

// NewMemoryNetwork returns a memory network with the given link options.
func NewMemoryNetwork(opts MemoryOptions) *MemoryNetwork {
	return &MemoryNetwork{
		listeners: make(map[string]*memListener),
		opts:      opts,
		rng:       newLockedRand(opts.Seed),
	}
}

// Listen implements Network.
func (n *MemoryNetwork) Listen(addr string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.listeners == nil {
		n.listeners = make(map[string]*memListener)
	}
	if _, ok := n.listeners[addr]; ok {
		return nil, errors.New("transport: address already in use: " + addr)
	}
	backlog := n.opts.Backlog
	if backlog <= 0 {
		backlog = 64
	}
	l := &memListener{net: n, addr: addr, backlog: make(chan Conn, backlog), closed: make(chan struct{})}
	n.listeners[addr] = l
	return l, nil
}

// Dial implements Network.
func (n *MemoryNetwork) Dial(addr string) (Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	opts := n.opts
	rng := n.rng
	n.mu.Unlock()
	if !ok {
		return nil, ErrUnknownAddr
	}
	a := newMemConn(opts, rng)
	b := newMemConn(opts, rng)
	a.peer, b.peer = b, a
	select {
	case l.backlog <- b:
		// The listener may have closed concurrently, after its final
		// backlog drain: nothing would ever accept or close b, and a's
		// reads would block forever. Treat the race as a refused dial
		// (closing a closes b too); a conn the accept loop already took is
		// at worst closed under it, which readers observe as a normal
		// disconnect.
		select {
		case <-l.closed:
			a.Close()
			return nil, ErrClosed
		default:
		}
		return a, nil
	case <-l.closed:
		return nil, ErrClosed
	}
}

type memListener struct {
	net     *MemoryNetwork
	addr    string
	backlog chan Conn
	closed  chan struct{}
	once    sync.Once
}

func (l *memListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.closed:
		return nil, ErrClosed
	}
}

// Close releases the address — a later Listen on the same label succeeds,
// mirroring TCP's behavior after a listener closes (restarted nodes rebind
// their old address) — and resets the connections still queued in the
// backlog, like a closed TCP listener resets its accept queue: a dialer
// whose conn was never accepted sees a disconnect instead of hanging.
func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		l.net.mu.Lock()
		if l.net.listeners[l.addr] == l {
			delete(l.net.listeners, l.addr)
		}
		l.net.mu.Unlock()
		for {
			select {
			case c := <-l.backlog:
				c.Close()
			default:
				return
			}
		}
	})
	return nil
}

func (l *memListener) Addr() string { return l.addr }

// memConn is one endpoint of an in-memory link. Envelopes sent on one
// endpoint arrive, in order, at the peer after the configured delay.
type memConn struct {
	peer *memConn
	opts MemoryOptions
	rng  *lockedRand
	// link is the shared fault state for this connection's address pair;
	// nil for plain Dial connections (never partitioned).
	link *linkState

	mu     sync.Mutex
	queue  []*netproto.Envelope
	ready  *sync.Cond
	closed bool

	// Delayed sends are drained by a single dispatcher goroutine per
	// endpoint, which preserves strict FIFO order under jitter (concurrent
	// timers would not).
	sendMu    sync.Mutex
	sendCond  *sync.Cond
	sendQueue []timedEnv
	sending   bool
	lastAt    time.Time // monotonic clamp on delivery times
}

type timedEnv struct {
	env *netproto.Envelope
	at  time.Time
}

func newMemConn(opts MemoryOptions, rng *lockedRand) *memConn {
	c := &memConn{opts: opts, rng: rng}
	c.ready = sync.NewCond(&c.mu)
	c.sendCond = sync.NewCond(&c.sendMu)
	return c
}

// Send implements Conn. Delivery respects per-link FIFO order even under
// jitter: each message's delivery time is clamped to be no earlier than the
// previous message's, and a single dispatcher delivers in queue order.
func (c *memConn) Send(env *netproto.Envelope) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.mu.Unlock()

	if c.link != nil && c.link.down.Load() {
		return nil // partitioned: silently dropped, like a dead link
	}
	if c.opts.Loss > 0 && c.rng.Float64() < c.opts.Loss {
		return nil // dropped in transit
	}
	// The fast lane for in-memory links: no marshaling, just a shallow
	// envelope copy (Body bytes are immutable by convention) drawn from the
	// shared pool so receivers that release consumed envelopes make the
	// per-message allocation disappear.
	cp := netproto.GetEnvelope()
	*cp = *env
	delay := c.opts.Latency
	if c.opts.Jitter > 0 {
		delay += time.Duration(c.rng.Float64() * float64(c.opts.Jitter))
	}
	if delay <= 0 {
		c.peer.deliver(cp)
		return nil
	}

	deliverAt := time.Now().Add(delay)
	c.sendMu.Lock()
	if deliverAt.Before(c.lastAt) {
		deliverAt = c.lastAt
	}
	c.lastAt = deliverAt
	c.sendQueue = append(c.sendQueue, timedEnv{env: cp, at: deliverAt})
	if !c.sending {
		c.sending = true
		go c.dispatch()
	}
	c.sendCond.Signal()
	c.sendMu.Unlock()
	return nil
}

// dispatch delivers queued messages in order at their scheduled times. It
// exits when the connection closes or the queue stays empty.
func (c *memConn) dispatch() {
	for {
		c.sendMu.Lock()
		for len(c.sendQueue) == 0 {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				c.sending = false
				c.sendMu.Unlock()
				return
			}
			c.sendCond.Wait()
		}
		te := c.sendQueue[0]
		c.sendQueue = c.sendQueue[1:]
		c.sendMu.Unlock()

		if wait := time.Until(te.at); wait > 0 {
			time.Sleep(wait)
		}
		c.peer.deliver(te.env)
	}
}

func (c *memConn) deliver(env *netproto.Envelope) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		netproto.PutEnvelope(env)
		return
	}
	c.queue = append(c.queue, env)
	c.ready.Signal()
}

// Recv implements Conn.
func (c *memConn) Recv() (*netproto.Envelope, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.queue) == 0 && !c.closed {
		c.ready.Wait()
	}
	if len(c.queue) == 0 {
		return nil, ErrClosed
	}
	env := c.queue[0]
	c.queue = c.queue[1:]
	return env, nil
}

// Close implements Conn. It also closes the peer's receive side so blocked
// readers observe the shutdown, mirroring TCP semantics.
func (c *memConn) Close() error {
	for _, end := range []*memConn{c, c.peer} {
		end.mu.Lock()
		end.closed = true
		end.ready.Broadcast()
		end.mu.Unlock()
		end.sendMu.Lock()
		end.sendCond.Broadcast() // release an idle dispatcher
		end.sendMu.Unlock()
	}
	return nil
}

var _ Network = (*MemoryNetwork)(nil)
