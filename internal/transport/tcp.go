package transport

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"webwave/internal/netproto"
)

// TCPNetwork implements Network over real TCP sockets (stdlib net). Use
// addresses like "127.0.0.1:0"; Listener.Addr reports the bound address.
//
// Version selects the wire codec new connections speak: 0 or 2 is the
// binary v2 protocol (pooled frame buffers, writes coalesced across
// concurrent senders before each flush), 1 is the legacy JSON protocol
// (one marshal, one write and one flush per frame — kept as the
// inspectable/compatibility path). Receivers negotiate per frame from the
// payload's first byte, so the two versions interoperate on one stream.
type TCPNetwork struct {
	Version int

	// DialTimeout bounds each connect attempt. Without it a dial into a
	// freshly SIGKILLed peer can hang for the kernel's full SYN-retry
	// schedule (minutes), wedging failover hunts behind one dead address.
	// 0 means no timeout (the historical behavior).
	DialTimeout time.Duration

	// BindRetryWait bounds how long Listen retries an "address already in
	// use" failure before giving up. A re-exec'd node reclaiming the
	// address its previous incarnation died holding races the kernel's
	// teardown of the old socket; listeners are opened with SO_REUSEADDR
	// and the bind is retried with backoff inside this budget. 0 means the
	// default 2s; negative disables retrying (one bind attempt).
	BindRetryWait time.Duration
}

func (n TCPNetwork) version() int {
	if n.Version == 1 {
		return 1
	}
	return netproto.Version2
}

// Listen implements Network. Listeners are opened with SO_REUSEADDR so a
// restarted process can rebind the address its predecessor's sockets still
// hold in TIME_WAIT, and a bind that races the predecessor's actual
// teardown ("address already in use") is retried with backoff for up to
// BindRetryWait instead of failing the restart.
func (n TCPNetwork) Listen(addr string) (Listener, error) {
	lc := net.ListenConfig{Control: reuseAddrControl}
	wait := n.BindRetryWait
	if wait == 0 {
		wait = 2 * time.Second
	}
	b := &Backoff{Base: 25 * time.Millisecond, Cap: 250 * time.Millisecond}
	deadline := time.Now().Add(wait)
	for {
		l, err := lc.Listen(context.Background(), "tcp", addr)
		if err == nil {
			return &tcpListener{l: l, version: n.version()}, nil
		}
		if wait <= 0 || !AddrInUse(err) || !time.Now().Before(deadline) {
			return nil, fmt.Errorf("transport: tcp listen %s: %w", addr, err)
		}
		time.Sleep(b.Next())
	}
}

// Dial implements Network.
func (n TCPNetwork) Dial(addr string) (Conn, error) {
	var c net.Conn
	var err error
	if n.DialTimeout > 0 {
		c, err = net.DialTimeout("tcp", addr, n.DialTimeout)
	} else {
		c, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, fmt.Errorf("transport: tcp dial %s: %w", addr, err)
	}
	return newTCPConn(c, n.version()), nil
}

type tcpListener struct {
	l       net.Listener
	version int
}

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("transport: tcp accept: %w", err)
	}
	return newTCPConn(c, t.version), nil
}

func (t *tcpListener) Close() error { return t.l.Close() }

func (t *tcpListener) Addr() string { return t.l.Addr().String() }

type tcpConn struct {
	c       net.Conn
	r       *netproto.FrameReader
	version int

	wm sync.Mutex
	w  *bufio.Writer
	fw *netproto.FrameWriter
	// senders counts goroutines inside or waiting on Send. The holder of wm
	// flushes only when no one else is about to write — concurrent senders
	// coalesce their frames into one flush (and, under TCP, fewer syscalls
	// and fuller segments) instead of flushing per frame.
	senders atomic.Int32

	laneMu sync.RWMutex
	lanes  map[int]*tcpLane
}

func newTCPConn(c net.Conn, version int) *tcpConn {
	t := &tcpConn{c: c, r: netproto.NewFrameReader(bufio.NewReader(c)), version: version}
	t.w = bufio.NewWriter(c)
	t.fw = netproto.NewFrameWriter(t.w, version)
	return t
}

// Send implements Conn. Frames from concurrent senders are batched into a
// shared flush; a lone sender still flushes immediately, so the protocol's
// latency sensitivity is preserved.
func (t *tcpConn) Send(env *netproto.Envelope) error {
	t.senders.Add(1)
	t.wm.Lock()
	err := t.fw.WriteEnvelope(env)
	// Decrement inside the lock: a waiter that has already incremented will
	// take over the flush when it gets the lock. Flush whenever no waiter
	// remains — even after this sender's own encode error — so a failed
	// send never strands an earlier sender's deferred frames in the buffer.
	if pending := t.senders.Add(-1); pending == 0 {
		if ferr := t.w.Flush(); err == nil {
			err = ferr
		}
	}
	t.wm.Unlock()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return ErrClosed
		}
		return fmt.Errorf("transport: tcp send: %w", err)
	}
	return nil
}

// Recv implements Conn. Only one goroutine may call Recv at a time. The
// returned envelope comes from netproto's pool; a caller that fully
// consumes it may release it with netproto.PutEnvelope.
func (t *tcpConn) Recv() (*netproto.Envelope, error) {
	env := netproto.GetEnvelope()
	if err := t.r.ReadInto(env); err != nil {
		netproto.PutEnvelope(env)
		if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, err
	}
	return env, nil
}

func (t *tcpConn) Close() error { return t.c.Close() }

// SendBuffered implements BatchConn: on the v2 path the frame is written
// to the connection's buffer and left for an explicit Flush. The legacy v1
// path keeps its historical flush-per-frame behavior. SendBuffered stays
// out of the senders count — it never flushes, so it must not suppress a
// concurrent Send's flush.
func (t *tcpConn) SendBuffered(env *netproto.Envelope) error {
	if t.version == 1 {
		return t.Send(env)
	}
	t.wm.Lock()
	err := t.fw.WriteEnvelope(env)
	t.wm.Unlock()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return ErrClosed
		}
		return fmt.Errorf("transport: tcp send: %w", err)
	}
	return nil
}

// Flush implements BatchConn.
func (t *tcpConn) Flush() error {
	if t.version == 1 {
		return nil // v1 sends flush themselves
	}
	t.wm.Lock()
	err := t.w.Flush()
	t.wm.Unlock()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return ErrClosed
		}
		return fmt.Errorf("transport: tcp flush: %w", err)
	}
	return nil
}

// Lane implements LaneConn: each index gets a private encode buffer whose
// frames reach the socket only on the lane's Flush. Shard loops batching
// onto a shared connection encode concurrently — the connection-wide writer
// lock is held only for the buffer copy at flush time, not per frame. On
// the legacy v1 codec (flush-per-frame by design) the lane degrades to
// plain Send.
func (t *tcpConn) Lane(i int) BatchLane {
	if t.version == 1 {
		return (*v1Lane)(t)
	}
	t.laneMu.RLock()
	ln := t.lanes[i]
	t.laneMu.RUnlock()
	if ln != nil {
		return ln
	}
	t.laneMu.Lock()
	defer t.laneMu.Unlock()
	if ln = t.lanes[i]; ln != nil {
		return ln
	}
	if t.lanes == nil {
		t.lanes = make(map[int]*tcpLane, 8)
	}
	ln = &tcpLane{t: t}
	ln.fw = netproto.NewFrameWriter(&ln.buf, t.version)
	t.lanes[i] = ln
	return ln
}

// maxLaneBuf bounds the encode buffer a lane keeps across flushes; a lane
// that ballooned on a burst of large bodies is shrunk instead of pinning
// the memory for the connection's lifetime.
const maxLaneBuf = 256 << 10

// tcpLane is one per-shard flush lane. The mutex is effectively
// uncontended — a lane has a single owning shard — and exists so a lane
// handed to a different goroutine (shard handoff, tests) stays safe.
type tcpLane struct {
	t  *tcpConn
	mu sync.Mutex
	// buf accumulates encoded frames between flushes; fw encodes into it.
	buf bytes.Buffer
	fw  *netproto.FrameWriter
}

// SendBuffered implements BatchLane: encode into the lane's private buffer,
// no connection lock taken.
func (l *tcpLane) SendBuffered(env *netproto.Envelope) error {
	l.mu.Lock()
	err := l.fw.WriteEnvelope(env)
	l.mu.Unlock()
	if err != nil {
		return fmt.Errorf("transport: tcp lane send: %w", err)
	}
	return nil
}

// Flush implements BatchLane: the buffered frames are copied to the shared
// socket writer and flushed under the connection's writer lock.
func (l *tcpLane) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.buf.Len() == 0 {
		return nil
	}
	t := l.t
	t.wm.Lock()
	_, err := t.w.Write(l.buf.Bytes())
	if err == nil {
		err = t.w.Flush()
	}
	t.wm.Unlock()
	if l.buf.Cap() > maxLaneBuf {
		l.buf = bytes.Buffer{} // fw writes through the pointer; same address
	} else {
		l.buf.Reset()
	}
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return ErrClosed
		}
		return fmt.Errorf("transport: tcp lane flush: %w", err)
	}
	return nil
}

// v1Lane adapts the legacy JSON codec to the lane interface: v1 flushes per
// frame, so buffering is a no-op and Flush has nothing to do.
type v1Lane tcpConn

func (l *v1Lane) SendBuffered(env *netproto.Envelope) error { return (*tcpConn)(l).Send(env) }
func (l *v1Lane) Flush() error                              { return nil }

var _ Network = TCPNetwork{}
var _ BatchConn = (*tcpConn)(nil)
var _ LaneConn = (*tcpConn)(nil)
