package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"webwave/internal/netproto"
)

// TCPNetwork implements Network over real TCP sockets (stdlib net). Use
// addresses like "127.0.0.1:0"; Listener.Addr reports the bound address.
type TCPNetwork struct{}

// Listen implements Network.
func (TCPNetwork) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: tcp listen %s: %w", addr, err)
	}
	return &tcpListener{l: l}, nil
}

// Dial implements Network.
func (TCPNetwork) Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: tcp dial %s: %w", addr, err)
	}
	return newTCPConn(c), nil
}

type tcpListener struct {
	l net.Listener
}

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("transport: tcp accept: %w", err)
	}
	return newTCPConn(c), nil
}

func (t *tcpListener) Close() error { return t.l.Close() }

func (t *tcpListener) Addr() string { return t.l.Addr().String() }

type tcpConn struct {
	c  net.Conn
	r  *bufio.Reader
	wm sync.Mutex
	w  *bufio.Writer
}

func newTCPConn(c net.Conn) *tcpConn {
	return &tcpConn{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}
}

// Send implements Conn; frames are flushed immediately (the protocol is
// latency-, not throughput-, bound).
func (t *tcpConn) Send(env *netproto.Envelope) error {
	t.wm.Lock()
	defer t.wm.Unlock()
	if err := netproto.WriteFrame(t.w, env); err != nil {
		return err
	}
	if err := t.w.Flush(); err != nil {
		if errors.Is(err, net.ErrClosed) {
			return ErrClosed
		}
		return fmt.Errorf("transport: tcp flush: %w", err)
	}
	return nil
}

// Recv implements Conn. Only one goroutine may call Recv at a time.
func (t *tcpConn) Recv() (*netproto.Envelope, error) {
	env, err := netproto.ReadFrame(t.r)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, err
	}
	return env, nil
}

func (t *tcpConn) Close() error { return t.c.Close() }

var _ Network = TCPNetwork{}
