package transport

import (
	"sync"
	"testing"

	"webwave/internal/netproto"
)

// benchEcho starts an accept loop on l that drains envelopes and returns
// each one unchanged, closing down with the listener.
func benchEcho(l Listener, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					env, err := conn.Recv()
					if err != nil {
						return
					}
					_ = conn.Send(env)
					netproto.PutEnvelope(env)
				}
			}()
		}
	}()
}

func benchRoundTrips(b *testing.B, netw Network, addr string) {
	l, err := netw.Listen(addr)
	if err != nil {
		b.Fatal(err)
	}
	var wg sync.WaitGroup
	benchEcho(l, &wg)
	conn, err := netw.Dial(l.Addr())
	if err != nil {
		b.Fatal(err)
	}
	req := &netproto.Envelope{Kind: netproto.TypeRequest, From: -1, To: 0, Origin: 0, ReqID: 1, Doc: "docs/bench"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.ReqID = uint64(i + 1)
		if err := conn.Send(req); err != nil {
			b.Fatal(err)
		}
		env, err := conn.Recv()
		if err != nil {
			b.Fatal(err)
		}
		netproto.PutEnvelope(env)
	}
	b.StopTimer()
	conn.Close()
	l.Close()
	wg.Wait()
}

func BenchmarkMemoryConnRoundTrip(b *testing.B) {
	benchRoundTrips(b, NewMemoryNetwork(MemoryOptions{}), "bench")
}

func BenchmarkTCPConnRoundTripV2(b *testing.B) {
	benchRoundTrips(b, TCPNetwork{}, "127.0.0.1:0")
}

func BenchmarkTCPConnRoundTripV1(b *testing.B) {
	benchRoundTrips(b, TCPNetwork{Version: 1}, "127.0.0.1:0")
}

// BenchmarkTCPSendBatchedV2 measures the write path under concurrent
// senders, where flush coalescing batches frames into shared syscalls.
func benchConcurrentSend(b *testing.B, version int) {
	netw := TCPNetwork{Version: version}
	l, err := netw.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // sink: drain and discard
		defer wg.Done()
		conn, err := l.Accept()
		if err != nil {
			return
		}
		for {
			env, err := conn.Recv()
			if err != nil {
				return
			}
			netproto.PutEnvelope(env)
		}
	}()
	conn, err := netw.Dial(l.Addr())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		env := &netproto.Envelope{Kind: netproto.TypeGossip, From: 1, To: 2, Load: 3.5}
		for pb.Next() {
			if err := conn.Send(env); err != nil {
				b.Error(err)
				return
			}
			env.V = 0 // rewritable: FrameWriter stamps it per send
		}
	})
	b.StopTimer()
	conn.Close()
	l.Close()
	wg.Wait()
}

func BenchmarkTCPSendBatchedV2(b *testing.B) { benchConcurrentSend(b, 2) }

func BenchmarkTCPSendBatchedV1(b *testing.B) { benchConcurrentSend(b, 1) }
