package transport

import (
	"testing"
	"time"

	"webwave/internal/netproto"
)

func TestPartitionDropsBothDirections(t *testing.T) {
	n := NewMemoryNetwork(MemoryOptions{})
	l, err := n.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	dialed, err := n.DialFrom("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	defer dialed.Close()
	accepted, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer accepted.Close()

	send := func(c Conn, seq uint64) {
		t.Helper()
		if err := c.Send(&netproto.Envelope{Kind: netproto.TypeGossip, Seq: seq}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	recvSeq := func(c Conn) uint64 {
		t.Helper()
		env, err := c.Recv()
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		return env.Seq
	}

	// Healthy link round-trips.
	send(dialed, 1)
	if got := recvSeq(accepted); got != 1 {
		t.Fatalf("seq = %d, want 1", got)
	}
	send(accepted, 2)
	if got := recvSeq(dialed); got != 2 {
		t.Fatalf("seq = %d, want 2", got)
	}

	// Partitioned: sends succeed (soft state) but deliver nothing.
	n.Partition("a", "b")
	if !n.Partitioned("a", "b") || !n.Partitioned("b", "a") {
		t.Fatal("Partitioned should be true for both orders")
	}
	send(dialed, 3)
	send(accepted, 4)

	// Healed: traffic resumes; the partitioned messages stay lost.
	n.Heal("b", "a") // order must not matter
	send(dialed, 5)
	if got := recvSeq(accepted); got != 5 {
		t.Fatalf("after heal seq = %d, want 5 (3 must be lost)", got)
	}
	send(accepted, 6)
	if got := recvSeq(dialed); got != 6 {
		t.Fatalf("after heal seq = %d, want 6 (4 must be lost)", got)
	}
}

func TestPartitionAppliesToFutureDials(t *testing.T) {
	n := NewMemoryNetwork(MemoryOptions{})
	l, err := n.Listen("dst")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	n.Partition("src", "dst")
	conn, err := n.DialFrom("src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	acc, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer acc.Close()

	if err := conn.Send(&netproto.Envelope{Kind: netproto.TypeGossip, Seq: 9}); err != nil {
		t.Fatal(err)
	}
	recvd := make(chan struct{})
	go func() {
		if _, err := acc.Recv(); err == nil {
			close(recvd)
		}
	}()
	select {
	case <-recvd:
		t.Fatal("message delivered across a pre-existing partition")
	case <-time.After(30 * time.Millisecond):
	}
}

func TestPartitionDoesNotAffectOtherLinks(t *testing.T) {
	n := NewMemoryNetwork(MemoryOptions{})
	l, err := n.Listen("hub")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	x, err := n.DialFrom("x", "hub")
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	accX, _ := l.Accept()
	defer accX.Close()

	y, err := n.DialFrom("y", "hub")
	if err != nil {
		t.Fatal(err)
	}
	defer y.Close()
	accY, _ := l.Accept()
	defer accY.Close()

	n.Partition("x", "hub")
	if err := y.Send(&netproto.Envelope{Kind: netproto.TypeGossip, Seq: 42}); err != nil {
		t.Fatal(err)
	}
	env, err := accY.Recv()
	if err != nil || env.Seq != 42 {
		t.Fatalf("unpartitioned link broken: %v %v", env, err)
	}
}

func TestDialOnFallsBackWithoutSourceDialer(t *testing.T) {
	// TCPNetwork has no DialFrom; DialOn must fall back to plain Dial.
	var n Network = TCPNetwork{}
	if _, ok := n.(SourceDialer); ok {
		t.Fatal("TCPNetwork unexpectedly implements SourceDialer; test is stale")
	}
	l, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	conn, err := DialOn(n, "whatever", l.Addr())
	if err != nil {
		t.Fatalf("DialOn fallback: %v", err)
	}
	conn.Close()
}

func TestDialOnEmptySourceUsesPlainDial(t *testing.T) {
	n := NewMemoryNetwork(MemoryOptions{})
	l, err := n.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	conn, err := DialOn(n, "", "b")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A plain-dialed conn has no link state: partitioning cannot touch it.
	n.Partition("", "b")
	if err := conn.Send(&netproto.Envelope{Kind: netproto.TypeGossip, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	acc, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer acc.Close()
	env, err := acc.Recv()
	if err != nil || env.Seq != 1 {
		t.Fatalf("plain dial affected by partition: %v %v", env, err)
	}
}
