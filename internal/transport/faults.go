package transport

import (
	"sync"
	"sync/atomic"
)

// SourceDialer is implemented by networks that can attribute a dialed
// connection to a source address, enabling link-level fault injection.
// MemoryNetwork implements it; callers fall back to Dial when the network
// does not (DialOn handles the downgrade).
type SourceDialer interface {
	// DialFrom dials dst on behalf of src. src is a label only — it does
	// not have to be a listening address.
	DialFrom(src, dst string) (Conn, error)
}

// DialOn dials dst over n, attributing the connection to src when the
// network supports source attribution.
func DialOn(n Network, src, dst string) (Conn, error) {
	if sd, ok := n.(SourceDialer); ok && src != "" {
		return sd.DialFrom(src, dst)
	}
	return n.Dial(dst)
}

// linkKey identifies an undirected link between two address labels.
type linkKey struct {
	a, b string
}

// mkLinkKey normalizes the unordered pair.
func mkLinkKey(x, y string) linkKey {
	if x > y {
		x, y = y, x
	}
	return linkKey{a: x, b: y}
}

// linkState is the mutable fault state shared by every connection on one
// (src, dst) address pair.
type linkState struct {
	down atomic.Bool
}

// faultRegistry tracks per-link state for a MemoryNetwork.
type faultRegistry struct {
	mu    sync.Mutex
	links map[linkKey]*linkState
}

// state returns (creating if needed) the state for a link.
func (f *faultRegistry) state(x, y string) *linkState {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.links == nil {
		f.links = make(map[linkKey]*linkState)
	}
	k := mkLinkKey(x, y)
	ls, ok := f.links[k]
	if !ok {
		ls = &linkState{}
		f.links[k] = ls
	}
	return ls
}

// DialFrom implements SourceDialer on MemoryNetwork: the resulting
// connection is subject to Partition/Heal on the (src, dst) pair.
func (n *MemoryNetwork) DialFrom(src, dst string) (Conn, error) {
	conn, err := n.Dial(dst)
	if err != nil {
		return nil, err
	}
	mc, ok := conn.(*memConn)
	if !ok {
		return conn, nil
	}
	ls := n.faults.state(src, dst)
	mc.link = ls
	mc.peer.link = ls
	return conn, nil
}

// Partition silently drops all traffic (both directions) between the two
// address labels: existing DialFrom connections on the pair stop
// delivering, mimicking a network partition rather than a connection reset.
// New DialFrom connections on the pair are created partitioned.
func (n *MemoryNetwork) Partition(a, b string) {
	n.faults.state(a, b).down.Store(true)
}

// Heal reverses Partition for the pair.
func (n *MemoryNetwork) Heal(a, b string) {
	n.faults.state(a, b).down.Store(false)
}

// Partitioned reports whether the pair is currently partitioned.
func (n *MemoryNetwork) Partitioned(a, b string) bool {
	return n.faults.state(a, b).down.Load()
}

var _ SourceDialer = (*MemoryNetwork)(nil)
