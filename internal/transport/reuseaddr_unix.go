//go:build unix

package transport

import "syscall"

// reuseAddrControl sets SO_REUSEADDR on a listener socket before bind: a
// re-exec'd node reclaiming the address its SIGKILLed predecessor held must
// not flake on the predecessor's lingering TIME_WAIT sockets.
func reuseAddrControl(network, address string, c syscall.RawConn) error {
	var serr error
	err := c.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_REUSEADDR, 1)
	})
	if err != nil {
		return err
	}
	return serr
}
