package transport

// Dial/bind hardening for multi-process clusters. When a whole rack of
// node processes is SIGKILLed and re-exec'd, hundreds of children redial
// their parents at once and every restarted node re-binds the address it
// died holding. Backoff paces the redial storm (jittered exponential
// delays, capped, reset on success); DialRetry and ListenRetry wrap one
// dial/bind in that schedule with a bounded attempt budget, so a node that
// starts before its parent — or outlives a dying rack — degrades to a slow,
// desynchronized hunt instead of a crash-loop or a tight spin.

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// Backoff is a jittered, capped exponential backoff schedule. The zero
// value is usable (50ms base, 2s cap, factor 2, ±20% jitter). Next returns
// the delay to sleep before the next attempt; Reset — called on success —
// rewinds the schedule so the next failure starts cheap again.
//
// Jitter matters here more than it usually does: every child of a killed
// parent observes the loss within one heartbeat of the others, so without
// desynchronization the whole subtree redials in lockstep exactly when the
// parent is busiest recovering.
type Backoff struct {
	Base   time.Duration // first delay (default 50ms)
	Cap    time.Duration // delay ceiling (default 2s)
	Factor float64       // growth per attempt (default 2)
	// Jitter is the fractional spread: each delay is drawn uniformly from
	// [d*(1-Jitter), d*(1+Jitter)], then clamped to Cap. Default 0.2;
	// negative disables jitter entirely (deterministic schedules in tests).
	Jitter float64
	// Seed makes the jitter stream deterministic when nonzero (tests).
	Seed int64

	mu      sync.Mutex
	attempt int
	rng     *rand.Rand
}

func (b *Backoff) base() time.Duration {
	if b.Base > 0 {
		return b.Base
	}
	return 50 * time.Millisecond
}

func (b *Backoff) cap() time.Duration {
	if b.Cap > 0 {
		return b.Cap
	}
	return 2 * time.Second
}

func (b *Backoff) factor() float64 {
	if b.Factor > 1 {
		return b.Factor
	}
	return 2
}

func (b *Backoff) jitter() float64 {
	switch {
	case b.Jitter < 0:
		return 0
	case b.Jitter == 0:
		return 0.2
	default:
		return b.Jitter
	}
}

// Next returns the delay to wait before the next attempt and advances the
// schedule. Safe for concurrent use (one schedule shared by helpers).
func (b *Backoff) Next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	d := float64(b.base())
	for i := 0; i < b.attempt; i++ {
		d *= b.factor()
		if d >= float64(b.cap()) {
			d = float64(b.cap())
			break
		}
	}
	b.attempt++
	if j := b.jitter(); j > 0 {
		if b.rng == nil {
			seed := b.Seed
			if seed == 0 {
				seed = time.Now().UnixNano()
			}
			b.rng = rand.New(rand.NewSource(seed))
		}
		// Uniform in [d*(1-j), d*(1+j)].
		d *= 1 - j + 2*j*b.rng.Float64()
	}
	if d > float64(b.cap()) {
		d = float64(b.cap())
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// Reset rewinds the schedule to the base delay — call it after a success so
// the next independent failure is retried promptly rather than at the cap.
func (b *Backoff) Reset() {
	b.mu.Lock()
	b.attempt = 0
	b.mu.Unlock()
}

// Attempts returns how many delays Next has handed out since the last Reset.
func (b *Backoff) Attempts() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.attempt
}

// DialRetry dials dst over n (attributed to src when the network supports
// it) up to `attempts` times, sleeping b's schedule between failures. A nil
// b uses a fresh default schedule; attempts <= 0 means one try. The stop
// channel (may be nil) aborts the wait between attempts — a stopping server
// must not sit out a capped delay. The last dial error is returned.
func DialRetry(n Network, src, dst string, b *Backoff, attempts int, stop <-chan struct{}) (Conn, error) {
	if b == nil {
		b = &Backoff{}
	}
	if attempts <= 0 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			t := time.NewTimer(b.Next())
			select {
			case <-t.C:
			case <-stop:
				t.Stop()
				return nil, ErrClosed
			}
		}
		var conn Conn
		conn, err = DialOn(n, src, dst)
		if err == nil {
			b.Reset()
			return conn, nil
		}
	}
	return nil, fmt.Errorf("transport: dial %s: %d attempt(s): %w", dst, attempts, err)
}

// ListenRetry binds addr over n, retrying "address already in use" failures
// on b's schedule until wait elapses. A freshly re-exec'd node reclaiming
// the address its previous incarnation died holding races the kernel's
// cleanup of the old socket; retrying the bind (with SO_REUSEADDR set by
// the TCP network) turns that race into a short stall instead of a startup
// failure. Non-address-conflict errors fail immediately.
func ListenRetry(n Network, addr string, b *Backoff, wait time.Duration) (Listener, error) {
	if b == nil {
		b = &Backoff{Base: 25 * time.Millisecond, Cap: 250 * time.Millisecond}
	}
	deadline := time.Now().Add(wait)
	for {
		l, err := n.Listen(addr)
		if err == nil {
			return l, nil
		}
		if !AddrInUse(err) || !time.Now().Before(deadline) {
			return nil, err
		}
		time.Sleep(b.Next())
	}
}

// AddrInUse reports whether err is a bind-time address conflict — the only
// listen failure worth retrying (the previous holder is about to vanish).
func AddrInUse(err error) bool {
	if err == nil {
		return false
	}
	return strings.Contains(err.Error(), "address already in use")
}
