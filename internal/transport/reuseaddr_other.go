//go:build !unix

package transport

import "syscall"

// reuseAddrControl is a no-op off unix; Go's defaults already allow rebinds
// on the platforms the swarm harness targets.
func reuseAddrControl(network, address string, c syscall.RawConn) error { return nil }
