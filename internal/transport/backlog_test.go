package transport

import "testing"

// TestMemoryBacklogConfigurable pins the MemoryOptions.Backlog knob: a
// listener must absorb more un-accepted dials than the old hard-coded 64
// when configured for it (high-fan-out scenarios dial every node before
// any accept loop catches up).
func TestMemoryBacklogConfigurable(t *testing.T) {
	n := NewMemoryNetwork(MemoryOptions{Backlog: 128})
	l, err := n.Listen("hub")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// 100 dials with no Accept: would deadlock at the 65th under the old
	// fixed backlog.
	conns := make([]Conn, 0, 100)
	for i := 0; i < 100; i++ {
		c, err := n.Dial("hub")
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		conns = append(conns, c)
	}
	for i := 0; i < 100; i++ {
		if _, err := l.Accept(); err != nil {
			t.Fatalf("accept %d: %v", i, err)
		}
	}
	for _, c := range conns {
		c.Close()
	}
}

// TestMemoryBacklogDefault keeps the zero value working.
func TestMemoryBacklogDefault(t *testing.T) {
	n := NewMemoryNetwork(MemoryOptions{})
	l, err := n.Listen("hub")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c, err := n.Dial("hub")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := l.Accept(); err != nil {
		t.Fatal(err)
	}
}
