package transport

import (
	"fmt"
	"sync"
	"testing"

	"webwave/internal/netproto"
)

// tcpPair dials a loopback TCP connection pair on the given wire version.
func tcpPair(t *testing.T, version int) (client, server Conn) {
	t.Helper()
	n := TCPNetwork{Version: version}
	l, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	type acc struct {
		c   Conn
		err error
	}
	ch := make(chan acc, 1)
	go func() {
		c, err := l.Accept()
		ch <- acc{c, err}
	}()
	client, err = n.Dial(l.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	a := <-ch
	if a.err != nil {
		t.Fatalf("accept: %v", a.err)
	}
	t.Cleanup(func() { client.Close(); a.c.Close() })
	return client, a.c
}

// TestLanesInterleaveIntact drives several lanes of one TCP connection from
// concurrent goroutines — the doc-sharded server's send pattern — plus
// plain concurrent Sends, and checks every frame arrives whole: per-lane
// buffering must never interleave two frames' bytes on the wire.
func TestLanesInterleaveIntact(t *testing.T) {
	client, server := tcpPair(t, 2)
	lc, ok := client.(LaneConn)
	if !ok {
		t.Fatal("tcp conn does not implement LaneConn")
	}

	const lanes, perLane = 4, 200
	var wg sync.WaitGroup
	for ln := 0; ln < lanes; ln++ {
		wg.Add(1)
		go func(ln int) {
			defer wg.Done()
			lane := lc.Lane(ln)
			for i := 0; i < perLane; i++ {
				err := lane.SendBuffered(&netproto.Envelope{
					Kind: netproto.TypeRequest, From: ln, Origin: ln,
					ReqID: uint64(i + 1), Doc: "doc",
				})
				if err != nil {
					t.Errorf("lane %d send: %v", ln, err)
					return
				}
				if i%17 == 0 {
					if err := lane.Flush(); err != nil {
						t.Errorf("lane %d flush: %v", ln, err)
						return
					}
				}
			}
			if err := lane.Flush(); err != nil {
				t.Errorf("lane %d final flush: %v", ln, err)
			}
		}(ln)
	}
	// A concurrent plain sender on the same conn (the fast path's pattern).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < perLane; i++ {
			err := client.Send(&netproto.Envelope{
				Kind: netproto.TypeGossip, From: 99, Load: float64(i),
			})
			if err != nil {
				t.Errorf("plain send: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	want := lanes*perLane + perLane
	got := make(map[string]bool, want)
	for len(got) < want {
		env, err := server.Recv()
		if err != nil {
			t.Fatalf("recv after %d/%d frames: %v", len(got), want, err)
		}
		var key string
		switch env.Kind {
		case netproto.TypeRequest:
			key = fmt.Sprintf("lane-%d-%d", env.From, env.ReqID)
		case netproto.TypeGossip:
			key = fmt.Sprintf("plain-%v", env.Load)
		default:
			t.Fatalf("unexpected frame %+v", env)
		}
		if got[key] {
			t.Fatalf("duplicate frame %s", key)
		}
		got[key] = true
		netproto.PutEnvelope(env)
	}
}

// TestLaneSameIndexSameLane pins the lane identity contract.
func TestLaneSameIndexSameLane(t *testing.T) {
	client, _ := tcpPair(t, 2)
	lc := client.(LaneConn)
	if lc.Lane(3) != lc.Lane(3) {
		t.Fatal("Lane(3) returned different lanes")
	}
	if lc.Lane(0) == lc.Lane(1) {
		t.Fatal("distinct indices share a lane")
	}
}

// TestLanesV1Degrade pins the legacy path: on the v1 JSON codec a lane's
// SendBuffered flushes per frame (historical behavior), so frames arrive
// without any lane Flush call.
func TestLanesV1Degrade(t *testing.T) {
	client, server := tcpPair(t, 1)
	lane := client.(LaneConn).Lane(0)
	if err := lane.SendBuffered(&netproto.Envelope{
		Kind: netproto.TypeGossip, From: 7, Load: 1,
	}); err != nil {
		t.Fatal(err)
	}
	env, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if env.Kind != netproto.TypeGossip || env.From != 7 {
		t.Fatalf("bad frame %+v", env)
	}
	netproto.PutEnvelope(env)
}
