package transport

import (
	"testing"
	"time"
)

// TestBackoffSchedule verifies the deterministic (jitter-free) growth: base,
// base*2, base*4, ..., clamped at the cap and never beyond it.
func TestBackoffSchedule(t *testing.T) {
	b := &Backoff{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Jitter: -1}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := b.Next(); got != w*time.Millisecond {
			t.Fatalf("attempt %d: delay %v, want %v", i, got, w*time.Millisecond)
		}
	}
	if b.Attempts() != len(want) {
		t.Fatalf("attempts %d, want %d", b.Attempts(), len(want))
	}
}

// TestBackoffJitterBounds draws many delays at a fixed attempt index and
// checks every one lands inside [d*(1-j), d*(1+j)] — and that the spread is
// real (not a constant), since lockstep redials are what jitter exists to
// break up.
func TestBackoffJitterBounds(t *testing.T) {
	const base, j = 100 * time.Millisecond, 0.2
	lo := time.Duration(float64(base) * (1 - j))
	hi := time.Duration(float64(base) * (1 + j))
	seen := map[time.Duration]bool{}
	for i := 0; i < 200; i++ {
		b := &Backoff{Base: base, Cap: time.Second, Jitter: j, Seed: int64(i + 1)}
		d := b.Next() // first delay: growth hasn't kicked in, pure jitter around base
		if d < lo || d > hi {
			t.Fatalf("seed %d: jittered delay %v outside [%v, %v]", i+1, d, lo, hi)
		}
		seen[d] = true
	}
	if len(seen) < 10 {
		t.Fatalf("jitter produced only %d distinct delays in 200 draws", len(seen))
	}
}

// TestBackoffJitterNeverExceedsCap: jitter above the cap is clamped, so the
// cap is a hard ceiling, not a midpoint the jitter straddles.
func TestBackoffJitterNeverExceedsCap(t *testing.T) {
	b := &Backoff{Base: 50 * time.Millisecond, Cap: 100 * time.Millisecond, Jitter: 0.5, Seed: 7}
	for i := 0; i < 50; i++ {
		if d := b.Next(); d > 100*time.Millisecond {
			t.Fatalf("attempt %d: delay %v exceeds the cap", i, d)
		}
	}
}

// TestBackoffResetOnSuccess: after Reset the schedule restarts at the base,
// so one long outage does not poison the retry latency of the next.
func TestBackoffResetOnSuccess(t *testing.T) {
	b := &Backoff{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Jitter: -1}
	for i := 0; i < 5; i++ {
		b.Next()
	}
	b.Reset()
	if got := b.Next(); got != 10*time.Millisecond {
		t.Fatalf("post-reset delay %v, want the base 10ms", got)
	}
	if b.Attempts() != 1 {
		t.Fatalf("post-reset attempts %d, want 1", b.Attempts())
	}
}

// TestDialRetryBudget: a dial against nothing fails after exactly the
// attempt budget, and a listener appearing mid-schedule is found. Reset on
// success is exercised through the helper (the schedule is reusable).
func TestDialRetryBudget(t *testing.T) {
	n := NewMemoryNetwork(MemoryOptions{})
	b := &Backoff{Base: time.Millisecond, Cap: 5 * time.Millisecond, Jitter: -1}
	if _, err := DialRetry(n, "", "nowhere", b, 3, nil); err == nil {
		t.Fatal("dial against nothing succeeded")
	}

	// Listener appears while the retry schedule is sleeping.
	go func() {
		time.Sleep(3 * time.Millisecond)
		l, err := n.Listen("late")
		if err != nil {
			return
		}
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	conn, err := DialRetry(n, "", "late", b, 50, nil)
	if err != nil {
		t.Fatalf("dial retry against a late listener: %v", err)
	}
	conn.Close()
	if b.Attempts() != 0 {
		t.Fatalf("backoff not reset on success: attempts %d", b.Attempts())
	}
}

// TestDialRetryStop: the stop channel aborts the wait between attempts
// immediately instead of sitting out the remaining schedule.
func TestDialRetryStop(t *testing.T) {
	n := NewMemoryNetwork(MemoryOptions{})
	stop := make(chan struct{})
	close(stop)
	start := time.Now()
	_, err := DialRetry(n, "", "nowhere", &Backoff{Base: time.Minute, Jitter: -1}, 10, stop)
	if err == nil {
		t.Fatal("stopped dial succeeded")
	}
	if time.Since(start) > time.Second {
		t.Fatalf("stopped dial took %v; the stop channel should abort the wait", time.Since(start))
	}
}

// TestListenRetryReclaimsAddress simulates a restarted node racing its
// predecessor's teardown: the old listener still holds the address when the
// new bind starts, and the retry schedule picks the address up once the old
// holder lets go.
func TestListenRetryReclaimsAddress(t *testing.T) {
	n := TCPNetwork{}
	old, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("first bind: %v", err)
	}
	addr := old.Addr()

	go func() {
		time.Sleep(100 * time.Millisecond)
		old.Close()
	}()
	// BindRetryWait default (2s) covers the 100ms handover comfortably.
	nl, err := n.Listen(addr)
	if err != nil {
		t.Fatalf("rebind during teardown race: %v", err)
	}
	nl.Close()
}

// TestListenNoRetryFailsFast: with retrying disabled a genuine conflict
// fails immediately (the historical behavior stays reachable).
func TestListenNoRetryFailsFast(t *testing.T) {
	n := TCPNetwork{BindRetryWait: -1}
	l, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	defer l.Close()
	start := time.Now()
	if _, err := n.Listen(l.Addr()); err == nil {
		t.Fatal("conflicting bind succeeded")
	}
	if time.Since(start) > time.Second {
		t.Fatalf("no-retry bind took %v", time.Since(start))
	}
}

// TestAddrInUse covers both the TCP error text and the memory network's.
func TestAddrInUse(t *testing.T) {
	mem := NewMemoryNetwork(MemoryOptions{})
	if _, err := mem.Listen("a"); err != nil {
		t.Fatalf("listen: %v", err)
	}
	_, err := mem.Listen("a")
	if !AddrInUse(err) {
		t.Fatalf("memory double-listen error %v not classified as address-in-use", err)
	}
	if AddrInUse(nil) {
		t.Fatal("nil classified as address-in-use")
	}
}
