package lru

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"webwave/internal/core"
)

func TestGetPutBasics(t *testing.T) {
	c := New(2)
	if _, ok := c.Get("a"); ok {
		t.Error("hit on empty cache")
	}
	c.Put("a", []byte("1"))
	if body, ok := c.Get("a"); !ok || string(body) != "1" {
		t.Errorf("Get(a) = %q, %v", body, ok)
	}
	if !c.Contains("a") || c.Contains("b") {
		t.Error("Contains wrong")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestEvictsLeastRecentlyUsed(t *testing.T) {
	c := New(2)
	c.Put("a", nil)
	c.Put("b", nil)
	c.Get("a") // a most recent
	victim, evicted := c.Put("c", nil)
	if !evicted || victim != "b" {
		t.Errorf("evicted %q (%v), want b", victim, evicted)
	}
	if !c.Contains("a") || !c.Contains("c") || c.Contains("b") {
		t.Errorf("contents after eviction: %v", c.Keys())
	}
}

func TestPutRefreshesRecency(t *testing.T) {
	c := New(2)
	c.Put("a", nil)
	c.Put("b", nil)
	c.Put("a", []byte("new")) // refresh, no eviction
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	if _, ev := c.Put("c", nil); !ev {
		t.Fatal("no eviction on overflow")
	}
	if c.Contains("b") {
		t.Error("b should have been evicted (a was refreshed)")
	}
	if body, _ := c.Get("a"); string(body) != "new" {
		t.Error("refresh lost the new body")
	}
}

func TestUnlimitedCapacity(t *testing.T) {
	c := New(0)
	for i := 0; i < 1000; i++ {
		if _, ev := c.Put(core.DocID(fmt.Sprintf("d%d", i)), nil); ev {
			t.Fatal("unlimited cache evicted")
		}
	}
	if c.Len() != 1000 {
		t.Errorf("Len = %d", c.Len())
	}
	neg := New(-5)
	if neg.Capacity() != 0 {
		t.Error("negative capacity not clamped to unlimited")
	}
}

func TestDelete(t *testing.T) {
	c := New(3)
	c.Put("a", nil)
	c.Put("b", nil)
	if !c.Delete("a") {
		t.Error("Delete(a) = false")
	}
	if c.Delete("a") {
		t.Error("double delete = true")
	}
	if c.Contains("a") || !c.Contains("b") {
		t.Error("wrong contents after delete")
	}
	// Delete head and tail specifically.
	c.Put("c", nil)
	c.Put("d", nil)
	keys := c.Keys()
	c.Delete(keys[0])
	c.Delete(keys[len(keys)-1])
	if c.Len() != 1 {
		t.Errorf("Len = %d after deleting head and tail", c.Len())
	}
}

func TestKeysOrder(t *testing.T) {
	c := New(3)
	c.Put("a", nil)
	c.Put("b", nil)
	c.Put("c", nil)
	c.Get("a")
	want := []core.DocID{"a", "c", "b"}
	if got := c.Keys(); !reflect.DeepEqual(got, want) {
		t.Errorf("Keys = %v, want %v", got, want)
	}
}

func TestStats(t *testing.T) {
	c := New(1)
	c.Put("a", nil)
	c.Get("a")
	c.Get("x")
	c.Put("b", nil) // evicts a
	h, m, e := c.Stats()
	if h != 1 || m != 1 || e != 1 {
		t.Errorf("stats = %d/%d/%d, want 1/1/1", h, m, e)
	}
}

// Property: cache never exceeds capacity and Keys has no duplicates.
func TestRandomizedInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := New(8)
	for op := 0; op < 5000; op++ {
		id := core.DocID(fmt.Sprintf("d%d", rng.Intn(30)))
		switch rng.Intn(3) {
		case 0:
			c.Put(id, nil)
		case 1:
			c.Get(id)
		case 2:
			c.Delete(id)
		}
		if c.Len() > 8 {
			t.Fatalf("len %d exceeds capacity", c.Len())
		}
		seen := map[core.DocID]bool{}
		for _, k := range c.Keys() {
			if seen[k] {
				t.Fatalf("duplicate key %s", k)
			}
			seen[k] = true
		}
		if len(seen) != c.Len() {
			t.Fatalf("Keys len %d != Len %d", len(seen), c.Len())
		}
	}
}
