// Package lru provides a small least-recently-used cache keyed by document
// id. The paper assumes "every node is capable of storing an unlimited
// number of cached copies"; this substrate turns storage into a knob so the
// document-level simulators and the hierarchical-caching baseline can model
// bounded caches.
package lru

import "webwave/internal/core"

// Cache is a fixed-capacity LRU set of document ids with optional bodies.
// A capacity of 0 means unlimited. Cache is not safe for concurrent use.
type Cache struct {
	capacity int
	entries  map[core.DocID]*entry
	head     *entry // most recently used
	tail     *entry // least recently used

	hits      int64
	misses    int64
	evictions int64
}

type entry struct {
	key        core.DocID
	body       []byte
	prev, next *entry
}

// New returns a cache holding at most capacity documents (0 = unlimited).
func New(capacity int) *Cache {
	if capacity < 0 {
		capacity = 0
	}
	return &Cache{
		capacity: capacity,
		entries:  make(map[core.DocID]*entry),
	}
}

// Len returns the number of cached documents.
func (c *Cache) Len() int { return len(c.entries) }

// Capacity returns the configured capacity (0 = unlimited).
func (c *Cache) Capacity() int { return c.capacity }

// Contains reports whether the document is cached, without touching
// recency.
func (c *Cache) Contains(id core.DocID) bool {
	_, ok := c.entries[id]
	return ok
}

// Get returns the cached body and marks the document most recently used.
func (c *Cache) Get(id core.DocID) ([]byte, bool) {
	e, ok := c.entries[id]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.moveToFront(e)
	return e.body, true
}

// Put inserts or refreshes a document, evicting the least recently used
// entry if the cache is full. It returns the id of the evicted document and
// whether an eviction happened.
func (c *Cache) Put(id core.DocID, body []byte) (evicted core.DocID, wasEvicted bool) {
	if e, ok := c.entries[id]; ok {
		e.body = body
		c.moveToFront(e)
		return "", false
	}
	e := &entry{key: id, body: body}
	c.entries[id] = e
	c.pushFront(e)
	if c.capacity > 0 && len(c.entries) > c.capacity {
		victim := c.tail
		c.remove(victim)
		delete(c.entries, victim.key)
		c.evictions++
		return victim.key, true
	}
	return "", false
}

// Delete removes a document if present.
func (c *Cache) Delete(id core.DocID) bool {
	e, ok := c.entries[id]
	if !ok {
		return false
	}
	c.remove(e)
	delete(c.entries, id)
	return true
}

// Keys returns the cached ids from most to least recently used.
func (c *Cache) Keys() []core.DocID {
	out := make([]core.DocID, 0, len(c.entries))
	for e := c.head; e != nil; e = e.next {
		out = append(out, e.key)
	}
	return out
}

// Stats returns (hits, misses, evictions).
func (c *Cache) Stats() (hits, misses, evictions int64) {
	return c.hits, c.misses, c.evictions
}

func (c *Cache) pushFront(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) remove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) moveToFront(e *entry) {
	if c.head == e {
		return
	}
	c.remove(e)
	c.pushFront(e)
}
