package trace

import (
	"math"
	"math/rand"
	"testing"

	"webwave/internal/core"
)

func TestSinusoidOscillatesAroundBase(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := core.Vector{100, 200, 50}
	s := NewSinusoid(base, 0.5, 40, rng)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	min := core.CloneVec(base)
	max := core.CloneVec(base)
	var sum core.Vector = make(core.Vector, 3)
	for round := 0; round < 400; round++ {
		r := s.Rates(round)
		for i, v := range r {
			if v < 0 {
				t.Fatalf("negative rate %v at round %d", v, round)
			}
			if v < min[i] {
				min[i] = v
			}
			if v > max[i] {
				max[i] = v
			}
			sum[i] += v
		}
	}
	for i := range base {
		if max[i] <= base[i] || min[i] >= base[i] {
			t.Errorf("node %d never crossed its base: min %v max %v base %v", i, min[i], max[i], base[i])
		}
		mean := sum[i] / 400
		if math.Abs(mean-base[i]) > 0.15*base[i] {
			t.Errorf("node %d mean %v drifted from base %v", i, mean, base[i])
		}
		if max[i] > 1.55*base[i] {
			t.Errorf("node %d amplitude overshoot: max %v vs base %v", i, max[i], base[i])
		}
	}
}

func TestSinusoidDeterministicAndPeriodic(t *testing.T) {
	base := core.Vector{10, 20}
	a := NewSinusoid(base, 0.3, 50, rand.New(rand.NewSource(7)))
	b := NewSinusoid(base, 0.3, 50, rand.New(rand.NewSource(7)))
	for _, round := range []int{0, 13, 49, 50, 99, 100} {
		ra := core.CloneVec(a.Rates(round))
		rb := core.CloneVec(b.Rates(round))
		if !core.VecAlmostEqual(ra, rb, 1e-12) {
			t.Fatalf("same seed diverged at round %d: %v vs %v", round, ra, rb)
		}
	}
	// Full period repeats.
	r0 := core.CloneVec(a.Rates(3))
	r1 := core.CloneVec(a.Rates(53))
	if !core.VecAlmostEqual(r0, r1, 1e-9) {
		t.Errorf("period 50 not periodic: %v vs %v", r0, r1)
	}
}

func TestFlashCrowdWindows(t *testing.T) {
	base := core.Vector{10, 10, 10, 10}
	f := NewFlashCrowd(base, []int{2}, 50, 5, 10)
	for _, tc := range []struct {
		round  int
		active bool
	}{
		{0, false}, {4, false}, {5, true}, {14, true}, {15, false}, {100, false},
	} {
		if got := f.Active(tc.round); got != tc.active {
			t.Errorf("Active(%d) = %v, want %v", tc.round, got, tc.active)
		}
		r := f.Rates(tc.round)
		want := 10.0
		if tc.active {
			want = 500
		}
		if r[2] != want {
			t.Errorf("round %d: hot rate = %v, want %v", tc.round, r[2], want)
		}
		if r[0] != 10 || r[1] != 10 || r[3] != 10 {
			t.Errorf("round %d: cold rates disturbed: %v", tc.round, r)
		}
	}
}

func TestFlashCrowdClampsFactorAndIgnoresBadNodes(t *testing.T) {
	f := NewFlashCrowd(core.Vector{5}, []int{-1, 7, 0}, 0.2, 0, 10)
	if f.Factor != 1 {
		t.Errorf("Factor = %v, want clamped to 1", f.Factor)
	}
	r := f.Rates(0) // must not panic on out-of-range hot nodes
	if r[0] != 5 {
		t.Errorf("rate = %v, want 5 (factor clamped)", r[0])
	}
}

func TestRandomWalkBoundsAndDeterminism(t *testing.T) {
	start := core.Vector{50, 50, 50}
	w := NewRandomWalk(start, 0.2, 10, 100, 3)
	for round := 0; round < 200; round++ {
		for i, v := range w.Rates(round) {
			if v < 10 || v > 100 {
				t.Fatalf("round %d node %d rate %v out of [10,100]", round, i, v)
			}
		}
	}
	// Random access backwards replays deterministically.
	at50 := core.CloneVec(w.Rates(50))
	w.Rates(120)
	again := core.CloneVec(w.Rates(50))
	if !core.VecAlmostEqual(at50, again, 1e-12) {
		t.Errorf("walk not replayable: %v vs %v", at50, again)
	}
	// Two instances with the same seed agree.
	w2 := NewRandomWalk(start, 0.2, 10, 100, 3)
	if !core.VecAlmostEqual(w.Rates(77), w2.Rates(77), 1e-12) {
		t.Error("same-seed walks diverged")
	}
	// Different seeds diverge.
	w3 := NewRandomWalk(start, 0.2, 10, 100, 4)
	if core.VecAlmostEqual(w.Rates(77), w3.Rates(77), 1e-12) {
		t.Error("different-seed walks identical")
	}
}

func TestConstantProcess(t *testing.T) {
	c := Constant{V: core.Vector{1, 2, 3}}
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	if !core.VecAlmostEqual(c.Rates(0), c.Rates(999), 0) {
		t.Error("constant process varied")
	}
}
