package trace

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"webwave/internal/core"
	"webwave/internal/tree"
)

func TestUniformRatesRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := UniformRates(500, 10, 20, rng)
	if len(e) != 500 {
		t.Fatalf("len = %d", len(e))
	}
	for _, x := range e {
		if x < 10 || x >= 20 {
			t.Fatalf("rate %v outside [10,20)", x)
		}
	}
}

func TestExponentialRatesMean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := ExponentialRates(20000, 50, rng)
	mean := core.SumVec(e) / float64(len(e))
	if math.Abs(mean-50) > 2 {
		t.Errorf("mean = %v, want ≈50", mean)
	}
	for _, x := range e {
		if x < 0 {
			t.Fatal("negative exponential rate")
		}
	}
}

func TestLeafOnlyRates(t *testing.T) {
	tr := tree.MustFromParents([]int{tree.NoParent, 0, 0, 1, 1})
	rng := rand.New(rand.NewSource(3))
	e := LeafOnlyRates(tr, 100, rng)
	if math.Abs(core.SumVec(e)-100) > 1e-9 {
		t.Errorf("total = %v, want 100", core.SumVec(e))
	}
	for v := 0; v < tr.Len(); v++ {
		if !tr.IsLeaf(v) && e[v] != 0 {
			t.Errorf("interior node %d has rate %v", v, e[v])
		}
	}
}

func TestSpikeRates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	e := SpikeRates(10, 5, 100, 3, rng)
	spikes := 0
	for _, x := range e {
		switch {
		case x == 5:
		case x == 105:
			spikes++
		default:
			t.Fatalf("unexpected rate %v", x)
		}
	}
	if spikes != 3 {
		t.Errorf("spikes = %d, want 3", spikes)
	}
	// k > n clamps.
	e2 := SpikeRates(2, 0, 1, 5, rng)
	if core.SumVec(e2) != 2 {
		t.Errorf("clamped spikes sum = %v", core.SumVec(e2))
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(100, 1.0)
	if math.Abs(core.SumVec(w)-1) > 1e-9 {
		t.Errorf("weights sum = %v", core.SumVec(w))
	}
	if !sort.IsSorted(sort.Reverse(sort.Float64Slice(w))) {
		t.Error("Zipf weights not descending")
	}
	// s=0 is uniform.
	u := ZipfWeights(10, 0)
	for _, x := range u {
		if math.Abs(x-0.1) > 1e-12 {
			t.Errorf("uniform weight %v", x)
		}
	}
	if ZipfWeights(0, 1) != nil {
		t.Error("ZipfWeights(0) != nil")
	}
}

func TestZipfDemand(t *testing.T) {
	tr := tree.MustFromParents([]int{tree.NoParent, 0, 0, 1, 1, 2, 2})
	rng := rand.New(rand.NewSource(5))
	d, err := ZipfDemand(tr, ZipfDemandConfig{NumDocs: 10, Skew: 1, TotalRate: 1000, LeavesOnly: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(tr.Len()); err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Total()-1000) > 1e-6 {
		t.Errorf("total = %v, want 1000", d.Total())
	}
	totals := d.NodeTotals()
	for v := 0; v < tr.Len(); v++ {
		if !tr.IsLeaf(v) && totals[v] != 0 {
			t.Errorf("interior node %d demands %v with LeavesOnly", v, totals[v])
		}
	}
	docTotals := d.DocTotals()
	if len(docTotals) != 10 {
		t.Fatalf("doc totals len = %d", len(docTotals))
	}
	if math.Abs(core.SumVec(docTotals)-1000) > 1e-6 {
		t.Errorf("doc totals sum = %v", core.SumVec(docTotals))
	}
}

func TestZipfDemandLocality(t *testing.T) {
	tr := tree.MustFromParents([]int{tree.NoParent, 0, 0})
	rng := rand.New(rand.NewSource(6))
	d, err := ZipfDemand(tr, ZipfDemandConfig{NumDocs: 20, Skew: 1, TotalRate: 100, Locality: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Full locality: each requesting node requests exactly one document.
	for v, row := range d.Rates {
		nonzero := 0
		for _, r := range row {
			if r > 0 {
				nonzero++
			}
		}
		if nonzero > 1 {
			t.Errorf("node %d requests %d docs under full locality", v, nonzero)
		}
	}
}

func TestZipfDemandErrors(t *testing.T) {
	tr := tree.MustFromParents([]int{tree.NoParent})
	rng := rand.New(rand.NewSource(7))
	if _, err := ZipfDemand(tr, ZipfDemandConfig{NumDocs: 0, TotalRate: 1}, rng); err == nil {
		t.Error("NumDocs=0 accepted")
	}
	if _, err := ZipfDemand(tr, ZipfDemandConfig{NumDocs: 1, TotalRate: -1}, rng); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := ZipfDemand(tr, ZipfDemandConfig{NumDocs: 1, TotalRate: 1, Locality: 2}, rng); err == nil {
		t.Error("locality > 1 accepted")
	}
}

func TestDemandValidate(t *testing.T) {
	d := &Demand{
		Docs:  []core.Document{{ID: "a"}},
		Rates: [][]float64{{1}, {2}},
	}
	if err := d.Validate(2); err != nil {
		t.Errorf("valid demand rejected: %v", err)
	}
	if err := d.Validate(3); err == nil {
		t.Error("row count mismatch accepted")
	}
	bad := &Demand{Docs: []core.Document{{ID: "a"}}, Rates: [][]float64{{1, 2}}}
	if err := bad.Validate(1); err == nil {
		t.Error("column mismatch accepted")
	}
	neg := &Demand{Docs: []core.Document{{ID: "a"}}, Rates: [][]float64{{-1}}}
	if err := neg.Validate(1); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestErraticRegimes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	e := NewErratic(5, 3, 10, 20, rng)
	first := core.CloneVec(e.Next())
	second := core.CloneVec(e.Next())
	third := core.CloneVec(e.Next())
	if !core.VecAlmostEqual(first, second, 0) || !core.VecAlmostEqual(second, third, 0) {
		t.Error("rates changed within a regime")
	}
	fourth := core.CloneVec(e.Next()) // regime boundary at step 3
	if core.VecAlmostEqual(third, fourth, 0) {
		t.Error("rates did not change at the regime boundary")
	}
	if e.Step() != 4 {
		t.Errorf("Step = %d, want 4", e.Step())
	}
}

func TestPoissonScheduleProperties(t *testing.T) {
	tr := tree.MustFromParents([]int{tree.NoParent, 0, 0})
	rng := rand.New(rand.NewSource(9))
	d, err := ZipfDemand(tr, ZipfDemandConfig{NumDocs: 4, Skew: 1, TotalRate: 2000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	horizon := 5.0
	reqs := PoissonSchedule(d, horizon, rng)
	// Count matches rate·horizon within 5 sigma.
	want := d.Total() * horizon
	sigma := math.Sqrt(want)
	if diff := math.Abs(float64(len(reqs)) - want); diff > 5*sigma {
		t.Errorf("schedule size %d, want ≈%.0f (±%.0f)", len(reqs), want, 5*sigma)
	}
	// Sorted by time, all within horizon.
	for i := range reqs {
		if reqs[i].Time < 0 || reqs[i].Time >= horizon {
			t.Fatalf("request %d at %v outside [0,%v)", i, reqs[i].Time, horizon)
		}
		if i > 0 && reqs[i].Time < reqs[i-1].Time {
			t.Fatal("schedule not time-sorted")
		}
	}
}

func TestPoissonScheduleEmptyDemand(t *testing.T) {
	d := &Demand{Docs: []core.Document{{ID: "a"}}, Rates: [][]float64{{0}}}
	rng := rand.New(rand.NewSource(10))
	if got := PoissonSchedule(d, 10, rng); len(got) != 0 {
		t.Errorf("empty demand produced %d requests", len(got))
	}
}

func TestParetoOnOffSchedule(t *testing.T) {
	tr := tree.MustFromParents([]int{tree.NoParent, 0})
	rng := rand.New(rand.NewSource(11))
	d, err := ZipfDemand(tr, ZipfDemandConfig{NumDocs: 2, Skew: 0.8, TotalRate: 1000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	reqs := ParetoOnOffSchedule(d, 4, 1.5, 2, rng)
	if len(reqs) == 0 {
		t.Fatal("no requests generated")
	}
	for i := range reqs {
		if i > 0 && reqs[i].Time < reqs[i-1].Time {
			t.Fatal("schedule not time-sorted")
		}
		if reqs[i].Time >= 4 {
			t.Fatalf("request beyond horizon at %v", reqs[i].Time)
		}
	}
	// Burstiness: the max requests in any 100ms window should exceed the
	// average window count (otherwise the ON/OFF structure is absent).
	buckets := make(map[int]int)
	for _, r := range reqs {
		buckets[int(r.Time*10)]++
	}
	maxB, sum := 0, 0
	for _, c := range buckets {
		if c > maxB {
			maxB = c
		}
		sum += c
	}
	avg := float64(sum) / 40
	if float64(maxB) < 1.5*avg {
		t.Errorf("no burstiness: max bucket %d vs avg %.1f", maxB, avg)
	}
	// Defaults clamp invalid parameters rather than failing.
	_ = ParetoOnOffSchedule(d, 1, 0.5, 0.5, rng)
}
