package trace

import (
	"math"
	"math/rand"

	"webwave/internal/core"
)

// A RateProcess produces the spontaneous request-rate vector for each
// simulation round — the time-varying workloads behind the paper's closing
// question about "the dynamics of WebWave under erratic request rates" and
// its stability-under-realistic-load future work (the Crovella–Bestavros
// self-similarity citation).
//
// Implementations must be deterministic: Rates(t) depends only on t and the
// construction-time seed, so a run can be replayed bit-for-bit.
type RateProcess interface {
	// Rates returns the spontaneous rate vector at round t (t >= 0). The
	// caller must not retain or mutate the returned slice across calls.
	Rates(t int) core.Vector
	// Len returns the number of nodes.
	Len() int
}

// Sinusoid is a smoothly drifting workload: node i's rate oscillates
// around Base[i] with amplitude Amp[i] and a per-node phase, so demand
// continuously migrates around the tree and the TLB target never stops
// moving.
type Sinusoid struct {
	Base   core.Vector
	Amp    core.Vector
	Period int // rounds per full cycle
	phase  []float64
	out    core.Vector
}

// NewSinusoid builds a sinusoidal process with uniformly random phases.
// Amplitudes are clamped so rates stay non-negative.
func NewSinusoid(base core.Vector, relAmp float64, period int, rng *rand.Rand) *Sinusoid {
	n := len(base)
	s := &Sinusoid{
		Base:   core.CloneVec(base),
		Amp:    make(core.Vector, n),
		Period: period,
		phase:  make([]float64, n),
		out:    make(core.Vector, n),
	}
	if s.Period <= 0 {
		s.Period = 100
	}
	for i := range s.Amp {
		a := relAmp
		if a < 0 {
			a = 0
		}
		if a > 1 {
			a = 1
		}
		s.Amp[i] = a * base[i]
		s.phase[i] = 2 * math.Pi * rng.Float64()
	}
	return s
}

// Rates implements RateProcess.
func (s *Sinusoid) Rates(t int) core.Vector {
	w := 2 * math.Pi / float64(s.Period)
	for i := range s.out {
		v := s.Base[i] + s.Amp[i]*math.Sin(w*float64(t)+s.phase[i])
		if v < 0 {
			v = 0
		}
		s.out[i] = v
	}
	return s.out
}

// Len implements RateProcess.
func (s *Sinusoid) Len() int { return len(s.Base) }

// FlashCrowd models the canonical hot-document event: background demand
// everywhere, then at round Start the Hot nodes' spontaneous rate
// multiplies by Factor for Duration rounds and drops back — the workload
// the paper's title ("hot published documents") is about.
type FlashCrowd struct {
	Base     core.Vector
	Hot      []int
	Factor   float64
	Start    int
	Duration int
	out      core.Vector
}

// NewFlashCrowd builds a flash-crowd process. Factor < 1 is clamped to 1.
func NewFlashCrowd(base core.Vector, hot []int, factor float64, start, duration int) *FlashCrowd {
	if factor < 1 {
		factor = 1
	}
	return &FlashCrowd{
		Base:     core.CloneVec(base),
		Hot:      append([]int(nil), hot...),
		Factor:   factor,
		Start:    start,
		Duration: duration,
		out:      make(core.Vector, len(base)),
	}
}

// Active reports whether the crowd is in progress at round t.
func (f *FlashCrowd) Active(t int) bool {
	return t >= f.Start && t < f.Start+f.Duration
}

// Rates implements RateProcess.
func (f *FlashCrowd) Rates(t int) core.Vector {
	copy(f.out, f.Base)
	if f.Active(t) {
		for _, v := range f.Hot {
			if v >= 0 && v < len(f.out) {
				f.out[v] *= f.Factor
			}
		}
	}
	return f.out
}

// Len implements RateProcess.
func (f *FlashCrowd) Len() int { return len(f.Base) }

// RandomWalk jitters every node's rate multiplicatively each round within
// [1-Step, 1+Step], clamped to [Lo, Hi] — sustained, unstructured churn.
// The walk is regenerated deterministically from the seed for any t, at the
// cost of replaying t rounds, so random access stays reproducible.
type RandomWalk struct {
	Lo, Hi float64
	Step   float64
	seed   int64
	n      int

	cur   core.Vector
	curT  int
	rng   *rand.Rand
	start core.Vector
}

// NewRandomWalk builds a walk starting from start.
func NewRandomWalk(start core.Vector, step, lo, hi float64, seed int64) *RandomWalk {
	w := &RandomWalk{
		Lo: lo, Hi: hi, Step: step, seed: seed, n: len(start),
		start: core.CloneVec(start),
	}
	w.reset()
	return w
}

func (w *RandomWalk) reset() {
	w.rng = rand.New(rand.NewSource(w.seed))
	w.cur = core.CloneVec(w.start)
	w.curT = 0
}

// Rates implements RateProcess.
func (w *RandomWalk) Rates(t int) core.Vector {
	if t < w.curT {
		w.reset()
	}
	for w.curT < t {
		for i := range w.cur {
			f := 1 + w.Step*(2*w.rng.Float64()-1)
			v := w.cur[i] * f
			if v < w.Lo {
				v = w.Lo
			}
			if v > w.Hi {
				v = w.Hi
			}
			w.cur[i] = v
		}
		w.curT++
	}
	return w.cur
}

// Len implements RateProcess.
func (w *RandomWalk) Len() int { return w.n }

// Constant adapts a fixed rate vector to RateProcess (the paper's own
// steady-state assumption), useful as the control arm of stability
// experiments.
type Constant struct {
	V core.Vector
}

// Rates implements RateProcess.
func (c Constant) Rates(int) core.Vector { return c.V }

// Len implements RateProcess.
func (c Constant) Len() int { return len(c.V) }

var (
	_ RateProcess = (*Sinusoid)(nil)
	_ RateProcess = (*FlashCrowd)(nil)
	_ RateProcess = (*RandomWalk)(nil)
	_ RateProcess = Constant{}
)
