package workload

import (
	"math"

	"webwave/internal/core"
	"webwave/internal/stats"
)

// Collector aggregates per-request observations into the benchmark's
// metrics: an overall latency histogram and per-window load vectors from
// which the fairness series is derived. Time is the schedule's virtual
// time, so fast-forward and live runs window identically. Collector is not
// safe for concurrent use; the live runner serializes Record calls.
type Collector struct {
	n       int
	window  float64
	windows []windowAcc

	hist   *stats.Histogram
	lat    []float64
	hops   int64
	served int64
	failed int64
}

type windowAcc struct {
	served   core.Vector // per-node requests served in this window
	requests int64
	failed   int64
}

// NewCollector sizes a collector for n nodes over ceil(horizon/window)
// windows.
func NewCollector(n int, window, horizon float64) *Collector {
	nw := int(math.Ceil(horizon / window))
	if nw < 1 {
		nw = 1
	}
	c := &Collector{
		n:      n,
		window: window,
		// Latency buckets from 100µs to 100s, 10 per decade.
		hist:    stats.NewLogHistogram(1e-4, 100, 10),
		windows: make([]windowAcc, nw),
	}
	for i := range c.windows {
		c.windows[i].served = make(core.Vector, n)
	}
	return c
}

// Record adds one completed (or failed) request: t is the schedule time it
// was issued, servedBy the node that answered, hops the tree edges it
// traversed, latency its response time in seconds. Failed requests carry no
// latency sample and no serving node.
func (c *Collector) Record(t float64, servedBy, hops int, latency float64, ok bool) {
	w := int(t / c.window)
	if w < 0 {
		w = 0
	}
	if w >= len(c.windows) {
		w = len(c.windows) - 1
	}
	c.windows[w].requests++
	if !ok {
		c.failed++
		c.windows[w].failed++
		return
	}
	c.served++
	c.hops += int64(hops)
	if servedBy >= 0 && servedBy < c.n {
		c.windows[w].served[servedBy]++
	}
	c.hist.Observe(latency)
	c.lat = append(c.lat, latency)
}

// Served returns the number of successfully answered requests.
func (c *Collector) Served() int64 { return c.served }

// Failed returns the number of failed (lost / timed-out) requests.
func (c *Collector) Failed() int64 { return c.failed }

// MeanHops returns the average tree distance of served requests.
func (c *Collector) MeanHops() float64 {
	if c.served == 0 {
		return 0
	}
	return float64(c.hops) / float64(c.served)
}

// Latency summarizes the latency samples (seconds).
func (c *Collector) Latency() stats.Summary { return stats.Summarize(c.lat) }

// Histogram exposes the latency histogram (seconds).
func (c *Collector) Histogram() *stats.Histogram { return c.hist }

// Windows renders the per-window fairness series. Windows with no served
// requests report Jain = 1 and MaxOverMean = 1 (no load, no imbalance).
func (c *Collector) Windows() []WindowStat {
	out := make([]WindowStat, len(c.windows))
	for i, w := range c.windows {
		serving := 0
		var maxLoad float64
		for _, x := range w.served {
			if x > 0 {
				serving++
			}
			if x > maxLoad {
				maxLoad = x
			}
		}
		out[i] = WindowStat{
			Start:        round6(float64(i) * c.window),
			End:          round6(float64(i+1) * c.window),
			Requests:     w.requests,
			Failed:       w.failed,
			Jain:         round6(stats.JainIndex(w.served)),
			MaxOverMean:  round6(stats.MaxMeanRatio(w.served)),
			MaxLoadRPS:   round6(maxLoad / c.window),
			ServingNodes: serving,
		}
	}
	return out
}

// round6 rounds to 6 decimal places so reports are stable to read and still
// byte-deterministic.
func round6(x float64) float64 { return math.Round(x*1e6) / 1e6 }
