package workload

import "testing"

// TestSessionRunSmall smoke-tests the session runner end to end on a small
// star: both arms answer every read, the token arm holds the read-my-writes
// guarantee absolutely, the bare arm of the identical schedule shows the
// violations the tokens eliminate, and the server-side gate actually fires.
// The zero check is NOT loosened for CI noise — the guarantee is the
// product; the calibrated two-sided gate lives in benchgate against the
// committed baseline.
func TestSessionRunSmall(t *testing.T) {
	rep, err := RunSession(SessionSpec{
		Seed: 1, Subtrees: 2, LeavesPer: 2, Docs: 2, Rounds: 8, ReadsPerWrite: 3,
	}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != SessionSchema || rep.Scenario != "session" {
		t.Fatalf("bad report identity: %q %q", rep.Schema, rep.Scenario)
	}
	if rep.Nodes != 7 {
		t.Fatalf("nodes = %d, want 7 for a 2x2 star", rep.Nodes)
	}
	for arm, pass := range map[string]SessionPass{
		"with tokens": rep.WithTokens, "without tokens": rep.WithoutTokens,
	} {
		if pass.Writes != 8 || pass.Reads != 24 {
			t.Errorf("%s: %d writes, %d reads; want 8 and 24", arm, pass.Writes, pass.Reads)
		}
		if pass.Unanswered != 0 {
			t.Errorf("%s: %d session reads unanswered", arm, pass.Unanswered)
		}
		if pass.Responses != pass.Reads {
			t.Errorf("%s: %d responses to %d reads", arm, pass.Responses, pass.Reads)
		}
	}
	if rep.WithTokens.Violations != 0 {
		t.Errorf("with tokens: %d read-my-writes violations, want exactly 0",
			rep.WithTokens.Violations)
	}
	if rep.WithoutTokens.Violations == 0 {
		t.Error("without tokens: 0 violations — the schedule provoked no races, " +
			"so the token arm's zero proves nothing")
	}
	if rep.WithoutTokens.ViolationWindows < 1 ||
		rep.WithoutTokens.ViolationWindows > int64(rep.Spec.Rounds) {
		t.Errorf("violation windows %d out of range [1, %d]",
			rep.WithoutTokens.ViolationWindows, rep.Spec.Rounds)
	}
	if rep.WithTokens.SessionRefreshes < 1 {
		t.Errorf("session refreshes %d: the server-side gate never fired",
			rep.WithTokens.SessionRefreshes)
	}
	// The bare arm carries no floors on the wire, so nothing should gate.
	if rep.WithoutTokens.SessionRefreshes != 0 {
		t.Errorf("without tokens: %d session refreshes on a token-less wire",
			rep.WithoutTokens.SessionRefreshes)
	}
}
