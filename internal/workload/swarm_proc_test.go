package workload

// End-to-end swarm run at test scale: RunSwarm spawns real OS processes
// (this test binary re-exec'd as nodes, same trick as the cluster
// package's proc tests), SIGKILLs a rack, revives it warm, and must come
// back with a clean report. Assertions stay at the level the benchgate
// thresholds use — this is the scenario engine's own smoke test, not a
// performance gate.

import (
	"fmt"
	"os"
	"testing"

	"webwave/internal/cluster"
)

func TestMain(m *testing.M) {
	if os.Getenv("WEBWAVE_NODE_MAIN") == "1" {
		if err := cluster.RunNode(os.Args[1:], os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "node:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func TestRunSwarmEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	sp := SwarmSpec{
		Seed: 3, Racks: 2, RackNodes: 3, RackDepth: 2,
		NumDocs: 6, TotalRate: 60, Duration: 4,
		KillRack: 1, KillAt: 1.2, Downtime: 1,
	}.WithDefaults()
	opt := SwarmOptions{
		Command: []string{os.Args[0]},
		Env:     []string{"WEBWAVE_NODE_MAIN=1"},
		WorkDir: t.TempDir(),
	}
	rep, err := RunSwarm(sp, opt, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != SwarmSchema || rep.Scenario != "swarm" {
		t.Fatalf("report header %q/%q", rep.Schema, rep.Scenario)
	}
	if rep.Nodes != 7 || rep.Depth != 3 {
		t.Fatalf("topology %d nodes depth %d, want 7 nodes depth 3", rep.Nodes, rep.Depth)
	}
	if got, want := len(rep.RackKilled), sp.RackNodes; got != want {
		t.Fatalf("rack kill hit %d processes, want %d", got, want)
	}
	if rep.Responses == 0 || rep.Offered == 0 {
		t.Fatalf("no traffic flowed: offered %d responses %d", rep.Offered, rep.Responses)
	}
	if rep.Availability < 0.9 {
		t.Fatalf("availability %.4f on a 7-process swarm", rep.Availability)
	}
	if rep.RepairSeconds < 0 || rep.ReabsorbSeconds < 0 {
		t.Fatalf("recovery incomplete: repair %.2fs reabsorb %.2fs", rep.RepairSeconds, rep.ReabsorbSeconds)
	}
	if rep.FailedRevives != 0 || rep.ForcedTeardowns != 0 || rep.FinalOrphaned != 0 {
		t.Fatalf("dirty harness: revives %d teardowns %d orphaned %d",
			rep.FailedRevives, rep.ForcedTeardowns, rep.FinalOrphaned)
	}
}

func TestRunSwarmNoFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	sp := SwarmSpec{
		Seed: 5, Racks: 1, RackNodes: 2, RackDepth: 2,
		NumDocs: 4, TotalRate: 40, Duration: 2,
		KillRack: -1,
	}.WithDefaults()
	opt := SwarmOptions{
		Command: []string{os.Args[0]},
		Env:     []string{"WEBWAVE_NODE_MAIN=1"},
		WorkDir: t.TempDir(),
	}
	rep, err := RunSwarm(sp, opt, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	// No kill: the monitors must report "never happened", not zero.
	if rep.RepairSeconds != -1 || rep.ReabsorbSeconds != -1 {
		t.Fatalf("kill monitors ran without a kill: repair %.2f reabsorb %.2f",
			rep.RepairSeconds, rep.ReabsorbSeconds)
	}
	if len(rep.RackKilled) != 0 {
		t.Fatalf("rack killed %v with KillRack -1", rep.RackKilled)
	}
	if rep.Availability < 0.99 {
		t.Fatalf("availability %.4f with no failure injected", rep.Availability)
	}
}
