package workload

// Chaos scenario: does the load-balancing wave survive node churn? A live
// in-memory cluster runs with the full fault-tolerance stack on (ancestor
// failover + heartbeats), a Poisson schedule plays against it, and midway
// through a scheduled fraction of the tree's interior nodes is killed and
// later restarted. The report captures the three figures that matter for a
// repairing system — availability (served/offered), time-to-reabsorb (kill
// until every survivor is orphan-free with its duty re-announced), and
// post-repair Jain fairness — alongside a no-failure control run of the
// identical schedule, so the Jain figure is judged as a ratio rather than
// an absolute. Wall-clock measurement: NOT deterministic; the CI gate
// (benchgate -chaos-report) applies thresholds, not byte equality.

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"webwave/internal/cluster"
	"webwave/internal/core"
	"webwave/internal/stats"
	"webwave/internal/trace"
	"webwave/internal/tree"
)

// ChaosSchema identifies chaos reports.
const ChaosSchema = "webwave-chaos/v1"

// ChaosSpec parameterizes the chaos scenario.
type ChaosSpec struct {
	Seed      int64   `json:"seed"`
	Nodes     int     `json:"nodes"`      // tree size; default 31
	NumDocs   int     `json:"num_docs"`   // catalog size; default 48
	TotalRate float64 `json:"total_rate"` // offered req/s; default 600
	Duration  float64 `json:"duration_s"` // schedule length; default 12
	// KillFraction of the tree's interior (non-root, non-leaf) nodes is
	// killed at KillAt and restarted Downtime seconds later. Default 0.10 —
	// the acceptance point the baseline gates.
	KillFraction float64 `json:"kill_fraction"`
	KillAt       float64 `json:"kill_at_s"`    // default Duration/3
	Downtime     float64 `json:"downtime_s"`   // default Duration/4
	HeartbeatMS  int     `json:"heartbeat_ms"` // failure-detector period; default 40
}

// WithDefaults fills unset fields.
func (s ChaosSpec) WithDefaults() ChaosSpec {
	if s.Nodes <= 0 {
		s.Nodes = 31
	}
	if s.NumDocs <= 0 {
		s.NumDocs = 48
	}
	if s.TotalRate <= 0 {
		s.TotalRate = 600
	}
	if s.Duration <= 0 {
		s.Duration = 12
	}
	if s.KillFraction <= 0 {
		s.KillFraction = 0.10
	}
	if s.KillAt <= 0 {
		s.KillAt = s.Duration / 3
	}
	if s.Downtime <= 0 {
		s.Downtime = s.Duration / 4
	}
	if s.HeartbeatMS <= 0 {
		s.HeartbeatMS = 40
	}
	return s
}

// ChaosReport is the chaos-scenario JSON document.
type ChaosReport struct {
	Schema   string    `json:"schema"`
	Scenario string    `json:"scenario"`
	Spec     ChaosSpec `json:"spec"`
	Killed   []int     `json:"killed"` // interior nodes killed mid-run

	Offered       int64 `json:"offered"`        // schedule entries
	FailedInjects int64 `json:"failed_injects"` // entered a dead node
	Responses     int64 `json:"responses"`
	// Availability is responses/offered after the drain — requests lost to
	// dead entry nodes, dead subtrees and repair windows all count against
	// it.
	Availability float64 `json:"availability"`
	// ReabsorbSeconds measures kill → repaired: every surviving stranded
	// child has failed over (expected reconnect count reached) and no live
	// node is orphaned. -1 when repair never completed within the run.
	ReabsorbSeconds float64 `json:"reabsorb_seconds"`
	// PostRepairJain is Jain's fairness over per-node serves in the window
	// from restart+settle to end of run; NoFailJain is the same window of
	// the control run; JainRatio is their quotient (the gated figure).
	PostRepairJain float64 `json:"post_repair_jain"`
	NoFailJain     float64 `json:"no_fail_jain"`
	JainRatio      float64 `json:"jain_ratio"`

	Reconnects      int64   `json:"reconnects"`
	ReclaimedDuty   float64 `json:"reclaimed_duty"`
	AbsorbedDuty    float64 `json:"absorbed_duty"`
	HeartbeatMisses int64   `json:"heartbeat_misses"`
	FinalOrphaned   int     `json:"final_orphaned"`
	// FailedRevives counts killed nodes whose RestartNode errored — nodes
	// the run meant to bring back but could not. A silent revive failure
	// would depress availability with no visible cause, so the count is
	// reported (and gated to zero) rather than swallowed.
	FailedRevives int64 `json:"failed_revives"`

	ControlAvailability float64 `json:"control_availability"`
}

// chaosPass is one cluster run's raw outcome.
type chaosPass struct {
	offered, failed, responses int64
	tailJain                   float64
	reabsorb                   float64
	reconnects                 int64
	reclaimed, absorbed        float64
	heartbeatMisses            int64
	finalOrphaned              int
	failedRevives              int64
	// Restart-warmth figures: responses already in at restart time, and the
	// schedule entries offered from restart to end — their quotient is the
	// post-restart availability the warm-vs-cold comparison gates.
	respAtRestart int64
	tailOffered   int64
	warmDocs      int64
	diskHits      int64
}

// chaosOpts is the optional cluster configuration a chaos-style run may
// carry: a per-node data dir (enabling warm restarts) and the two tier
// budgets. The zero value is the memory-only cluster RunChaos always ran.
type chaosOpts struct {
	dataDir                 string
	cacheBudget, diskBudget int64
}

// RunChaos executes the control pass and the chaos pass on the identical
// tree, catalog and schedule, and assembles the report. The log callback
// (may be nil) receives one line per pass.
func RunChaos(sp ChaosSpec, logf func(format string, args ...any)) (*ChaosReport, error) {
	sp = sp.WithDefaults()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	t, docs, sched, killed, err := chaosSetup(sp)
	if err != nil {
		return nil, err
	}

	control, err := chaosRun(sp, t, docs, sched, nil, chaosOpts{})
	if err != nil {
		return nil, fmt.Errorf("chaos: control pass: %w", err)
	}
	logf("  control: %d/%d answered (%.4f), tail jain %.3f",
		control.responses, control.offered,
		availability(control), control.tailJain)
	chaos, err := chaosRun(sp, t, docs, sched, killed, chaosOpts{})
	if err != nil {
		return nil, fmt.Errorf("chaos: failure pass: %w", err)
	}
	logf("  chaos:   %d/%d answered (%.4f), tail jain %.3f, reabsorb %.2fs, reconnects %d, killed %v",
		chaos.responses, chaos.offered, availability(chaos),
		chaos.tailJain, chaos.reabsorb, chaos.reconnects, killed)

	rep := &ChaosReport{
		Schema: ChaosSchema, Scenario: "chaos", Spec: sp, Killed: killed,
		Offered:             chaos.offered,
		FailedInjects:       chaos.failed,
		Responses:           chaos.responses,
		Availability:        round6(availability(chaos)),
		ReabsorbSeconds:     round6(chaos.reabsorb),
		PostRepairJain:      round6(chaos.tailJain),
		NoFailJain:          round6(control.tailJain),
		Reconnects:          chaos.reconnects,
		ReclaimedDuty:       round6(chaos.reclaimed),
		AbsorbedDuty:        round6(chaos.absorbed),
		HeartbeatMisses:     chaos.heartbeatMisses,
		FinalOrphaned:       chaos.finalOrphaned,
		FailedRevives:       chaos.failedRevives,
		ControlAvailability: round6(availability(control)),
	}
	if control.tailJain > 0 {
		rep.JainRatio = round6(chaos.tailJain / control.tailJain)
	}
	return rep, nil
}

// chaosSetup builds the deterministic fixtures every chaos-style scenario
// shares: the tree, the document catalog, the Poisson schedule, and the
// interior victim set — all derived from sp.Seed, so two passes (control vs
// chaos, cold vs warm) replay the identical workload.
func chaosSetup(sp ChaosSpec) (*tree.Tree, map[core.DocID][]byte, []trace.Request, []int, error) {
	rng := rand.New(rand.NewSource(sp.Seed))
	t, err := tree.RandomBounded(sp.Nodes, 3, rng)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("chaos: tree: %w", err)
	}
	demand, err := trace.ZipfDemand(t, trace.ZipfDemandConfig{
		NumDocs: sp.NumDocs, Skew: 1.0, TotalRate: sp.TotalRate,
	}, rng)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("chaos: demand: %w", err)
	}
	docs := make(map[core.DocID][]byte, len(demand.Docs))
	for _, d := range demand.Docs {
		docs[d.ID] = []byte("webwave chaos document body: " + string(d.ID))
	}
	sched := trace.PoissonSchedule(demand, sp.Duration, rng)

	// Interior victims, picked deterministically from the seed.
	var interior []int
	for v := 0; v < t.Len(); v++ {
		if v != t.Root() && !t.IsLeaf(v) {
			interior = append(interior, v)
		}
	}
	nKill := int(sp.KillFraction*float64(len(interior)) + 0.5)
	if nKill < 1 {
		nKill = 1
	}
	if nKill > len(interior) {
		nKill = len(interior)
	}
	rng.Shuffle(len(interior), func(i, j int) { interior[i], interior[j] = interior[j], interior[i] })
	killed := append([]int(nil), interior[:nKill]...)
	sort.Ints(killed)
	return t, docs, sched, killed, nil
}

func availability(p *chaosPass) float64 {
	if p.offered == 0 {
		return 0
	}
	return float64(p.responses) / float64(p.offered)
}

// chaosRun plays the schedule against a fresh cluster; killed nil means the
// no-failure control pass.
func chaosRun(sp ChaosSpec, t *tree.Tree, docs map[core.DocID][]byte, sched []trace.Request, killed []int, opt chaosOpts) (*chaosPass, error) {
	c, err := cluster.New(t, docs, cluster.Config{
		GossipPeriod:     20 * time.Millisecond,
		DiffusionPeriod:  40 * time.Millisecond,
		Window:           400 * time.Millisecond,
		Tunneling:        true,
		Ancestors:        true,
		HeartbeatPeriod:  time.Duration(sp.HeartbeatMS) * time.Millisecond,
		DataDir:          opt.dataDir,
		CacheBudgetBytes: opt.cacheBudget,
		DiskBudgetBytes:  opt.diskBudget,
	})
	if err != nil {
		return nil, err
	}
	defer c.Stop()

	pass := &chaosPass{reabsorb: -1}
	start := time.Now()
	var wg sync.WaitGroup

	// Tail-window baseline: per-node serves are snapshotted once repair
	// should be done (restart + one window of settling) and differenced
	// against the end-of-run counts; the control pass uses the same instant
	// so the two Jain figures cover the same schedule slice.
	tailFrom := sp.KillAt + sp.Downtime + 1.0
	var tailBase map[int]int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(time.Until(start.Add(dur(tailFrom))))
		tailBase = c.ServedBy()
	}()

	if len(killed) > 0 {
		// Expected repairs: surviving children stranded by the kills.
		expect := 0
		deadSet := make(map[int]bool, len(killed))
		for _, v := range killed {
			deadSet[v] = true
		}
		for _, v := range killed {
			for _, ch := range t.Children(v) {
				if !deadSet[ch] {
					expect++
				}
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(time.Until(start.Add(dur(sp.KillAt))))
			killT := time.Now()
			for _, v := range killed {
				c.KillNode(v)
			}
			// Poll the survivors until the tree is whole again.
			deadlineT := start.Add(dur(sp.Duration + 5))
			for time.Now().Before(deadlineT) {
				orphans, reconnects := 0, int64(0)
				sts, err := c.Stats()
				if err == nil {
					for _, st := range sts {
						if st != nil {
							orphans += st.Orphaned
							reconnects += st.Reconnects
						}
					}
					if orphans == 0 && reconnects >= int64(expect) {
						pass.reabsorb = time.Since(killT).Seconds()
						return
					}
				}
				time.Sleep(50 * time.Millisecond)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(time.Until(start.Add(dur(sp.KillAt + sp.Downtime))))
			pass.respAtRestart = c.Responses()
			for _, v := range killed {
				if err := c.RestartNode(v); err != nil {
					// A node that should be back but is not silently depresses
					// availability; count it so the report (and gate) sees it.
					pass.failedRevives++
				}
			}
		}()
	}

	// Open-loop playback at schedule times; injections into dead entry
	// nodes fail and count against availability.
	restartAt := sp.KillAt + sp.Downtime
	for i := range sched {
		if wait := time.Until(start.Add(dur(sched[i].Time))); wait > 0 {
			time.Sleep(wait)
		}
		pass.offered++
		if sched[i].Time >= restartAt {
			pass.tailOffered++
		}
		if err := c.Inject(sched[i].Origin, sched[i].Doc); err != nil {
			pass.failed++
		}
	}
	wg.Wait()
	c.Drain(5 * time.Second)

	tailEnd := c.ServedBy()
	loads := make([]float64, t.Len())
	for v := range loads {
		loads[v] = float64(tailEnd[v] - tailBase[v])
	}
	pass.tailJain = stats.JainIndex(loads)
	pass.responses = c.Responses()
	if sts, err := c.Stats(); err == nil {
		for _, st := range sts {
			if st == nil {
				continue
			}
			pass.reconnects += st.Reconnects
			pass.reclaimed += st.ReclaimedDuty
			pass.absorbed += st.AbsorbedDuty
			pass.heartbeatMisses += st.HeartbeatMisses
			pass.finalOrphaned += st.Orphaned
			pass.warmDocs += st.WarmDocs
			pass.diskHits += st.DiskHits
		}
	}
	return pass, nil
}

func dur(seconds float64) time.Duration {
	return time.Duration(seconds * float64(time.Second))
}
