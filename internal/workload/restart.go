package workload

// Restart-warmth scenario: what does the disk persistence tier buy when
// killed nodes come back? Two passes replay the identical chaos workload —
// same tree, catalog, schedule, victims. The cold pass restarts victims
// with empty caches (the committed chaos baseline's behavior); the warm
// pass gives every node a data dir, so a revived node replays its journal,
// re-admits its held copies and re-announces their duty as reclaim frames.
// The gated comparison is post-restart availability (answered share of the
// schedule offered after the revival instant) and time-to-reabsorb: warm
// must beat the committed cold figures, and the warm pass must actually
// recover documents (warm_docs > 0) — otherwise the tier silently did
// nothing. Wall-clock measurement: NOT deterministic; benchgate applies
// thresholds, not byte equality.

import (
	"fmt"
	"os"
)

// RestartSchema identifies restart-warmth reports.
const RestartSchema = "webwave-restart/v1"

// RestartSpec parameterizes the restart scenario: the chaos workload plus
// the two tier budgets the warm pass runs under. CacheBudgetBytes bounds
// memory on BOTH passes (a warm restart is only interesting when the cache
// is the thing being rebuilt); DiskBudgetBytes bounds the warm pass's disk
// tier (0 = unlimited).
type RestartSpec struct {
	ChaosSpec
	CacheBudgetBytes int64 `json:"cache_budget_bytes"`
	DiskBudgetBytes  int64 `json:"disk_budget_bytes"`
}

// WithDefaults fills unset fields.
func (s RestartSpec) WithDefaults() RestartSpec {
	s.ChaosSpec = s.ChaosSpec.WithDefaults()
	if s.CacheBudgetBytes <= 0 {
		s.CacheBudgetBytes = 16 << 10
	}
	return s
}

// RestartPassReport is one pass's figures.
type RestartPassReport struct {
	Offered   int64 `json:"offered"`
	Responses int64 `json:"responses"`
	// Availability covers the whole run; PostRestartAvailability only the
	// schedule offered after the revival instant — the window where a warm
	// cache shows up (capped at 1: a draining backlog can answer more than
	// the tail offered).
	Availability            float64 `json:"availability"`
	PostRestartAvailability float64 `json:"post_restart_availability"`
	ReabsorbSeconds         float64 `json:"reabsorb_seconds"`
	Reconnects              int64   `json:"reconnects"`
	FailedRevives           int64   `json:"failed_revives"`
	// WarmDocs sums documents recovered from journals across the cluster
	// (0 on the cold pass by construction); DiskHits counts serves from the
	// disk tier.
	WarmDocs int64 `json:"warm_docs"`
	DiskHits int64 `json:"disk_hits"`
}

// RestartReport is the restart-scenario JSON document.
type RestartReport struct {
	Schema   string            `json:"schema"`
	Scenario string            `json:"scenario"`
	Spec     RestartSpec       `json:"spec"`
	Killed   []int             `json:"killed"`
	Cold     RestartPassReport `json:"cold"`
	Warm     RestartPassReport `json:"warm"`
}

// RunRestart executes the cold and warm passes and assembles the report.
// The log callback (may be nil) receives one line per pass.
func RunRestart(sp RestartSpec, logf func(format string, args ...any)) (*RestartReport, error) {
	sp = sp.WithDefaults()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	t, docs, sched, killed, err := chaosSetup(sp.ChaosSpec)
	if err != nil {
		return nil, err
	}

	cold, err := chaosRun(sp.ChaosSpec, t, docs, sched, killed, chaosOpts{
		cacheBudget: sp.CacheBudgetBytes,
	})
	if err != nil {
		return nil, fmt.Errorf("restart: cold pass: %w", err)
	}
	coldRep := restartPassReport(cold)
	logf("  cold: avail %.4f, post-restart %.4f, reabsorb %.2fs",
		coldRep.Availability, coldRep.PostRestartAvailability, coldRep.ReabsorbSeconds)

	dataDir, err := os.MkdirTemp("", "webwave-restart-")
	if err != nil {
		return nil, fmt.Errorf("restart: data dir: %w", err)
	}
	defer os.RemoveAll(dataDir)
	warm, err := chaosRun(sp.ChaosSpec, t, docs, sched, killed, chaosOpts{
		dataDir:     dataDir,
		cacheBudget: sp.CacheBudgetBytes,
		diskBudget:  sp.DiskBudgetBytes,
	})
	if err != nil {
		return nil, fmt.Errorf("restart: warm pass: %w", err)
	}
	warmRep := restartPassReport(warm)
	logf("  warm: avail %.4f, post-restart %.4f, reabsorb %.2fs, warm docs %d, disk hits %d",
		warmRep.Availability, warmRep.PostRestartAvailability, warmRep.ReabsorbSeconds,
		warmRep.WarmDocs, warmRep.DiskHits)

	return &RestartReport{
		Schema: RestartSchema, Scenario: "restart", Spec: sp, Killed: killed,
		Cold: coldRep, Warm: warmRep,
	}, nil
}

func restartPassReport(p *chaosPass) RestartPassReport {
	rep := RestartPassReport{
		Offered:         p.offered,
		Responses:       p.responses,
		Availability:    round6(availability(p)),
		ReabsorbSeconds: round6(p.reabsorb),
		Reconnects:      p.reconnects,
		FailedRevives:   p.failedRevives,
		WarmDocs:        p.warmDocs,
		DiskHits:        p.diskHits,
	}
	if p.tailOffered > 0 {
		pra := float64(p.responses-p.respAtRestart) / float64(p.tailOffered)
		if pra > 1 {
			pra = 1
		}
		rep.PostRestartAvailability = round6(pra)
	}
	return rep
}
