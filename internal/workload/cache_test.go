package workload

import (
	"math"
	"testing"
)

// TestCachePressureDefaults sanity-checks the scenario and its policy set.
func TestCachePressureDefaults(t *testing.T) {
	sp, ok := Lookup("cache-pressure")
	if !ok {
		t.Fatalf("cache-pressure scenario missing")
	}
	sp = sp.WithDefaults()
	if err := sp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if sp.CacheBudgetBytes <= 0 || sp.DocBytes <= 0 {
		t.Fatalf("scenario lost its budget: %+v", sp)
	}
	if int64(sp.HotsetSize*sp.DocBytes) <= sp.CacheBudgetBytes {
		t.Fatalf("hot set (%d docs x %d B) fits one node's budget %d; no pressure",
			sp.HotsetSize, sp.DocBytes, sp.CacheBudgetBytes)
	}
	ps := DefaultPolicies(sp)
	want := map[Policy]bool{PolicyBoundedHeat: true, PolicyBoundedLRU: true, PolicyBoundedGDSF: true, PolicyNoCache: true}
	for _, p := range ps {
		delete(want, p)
	}
	if len(want) != 0 {
		t.Fatalf("budgeted spec missing policies %v (got %v)", want, ps)
	}
}

// TestCachePressureHourHoldsBudget fast-forwards a one-hour-equivalent
// cache-pressure run and asserts the two load-bearing properties of the
// capacity model: (1) no server's cache ever exceeded its byte budget,
// and (2) heat-weighted eviction beats plain LRU on hit rate without
// giving up load-balance fairness.
func TestCachePressureHourHoldsBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("hour-equivalent replay is a few seconds of CPU; skipped in -short")
	}
	sp, ok := Lookup("cache-pressure")
	if !ok {
		t.Fatalf("cache-pressure scenario missing")
	}
	sp.Duration = 3600 // one hour of virtual time
	sp.TotalRate = 40  // ~144k requests keeps the replay to seconds of CPU
	rep, err := RunFastPolicies(sp, 1, []Policy{PolicyBoundedHeat, PolicyBoundedLRU})
	if err != nil {
		t.Fatalf("RunFastPolicies: %v", err)
	}
	heat := rep.System("webwave-heat")
	lru := rep.System("webwave-lru")
	if heat == nil || lru == nil || heat.Cache == nil || lru.Cache == nil {
		t.Fatalf("missing systems or cache summaries in report")
	}
	for _, sys := range []*SystemResult{heat, lru} {
		c := sys.Cache
		if c.OverBudget || c.MaxNodeBytes > c.BudgetBytes {
			t.Fatalf("%s: budget violated: max node bytes %d > budget %d",
				sys.Name, c.MaxNodeBytes, c.BudgetBytes)
		}
		if c.Evictions == 0 {
			t.Fatalf("%s: an hour under pressure produced no evictions; the budget never bound", sys.Name)
		}
		if sys.Served == 0 || sys.Failed != 0 {
			t.Fatalf("%s: served=%d failed=%d", sys.Name, sys.Served, sys.Failed)
		}
	}
	if heat.Cache.HitRate < lru.Cache.HitRate {
		t.Fatalf("heat hit rate %.4f below lru %.4f; heat-weighted eviction must win under pressure",
			heat.Cache.HitRate, lru.Cache.HitRate)
	}
	// "At equal fairness": heat must not buy its hit rate with imbalance.
	if heat.MeanJain < lru.MeanJain-0.02 {
		t.Fatalf("heat mean Jain %.4f materially below lru %.4f", heat.MeanJain, lru.MeanJain)
	}
	if math.IsNaN(heat.Cache.HitRate) || heat.Cache.HitRate <= 0 {
		t.Fatalf("degenerate heat hit rate %v", heat.Cache.HitRate)
	}
}

// TestCachePressureDeterministic re-runs the scenario and requires
// byte-identical cache summaries — the property the CI bench gate
// (cmd/benchgate vs bench/BENCH_cache_baseline.json) relies on.
func TestCachePressureDeterministic(t *testing.T) {
	sp, _ := Lookup("cache-pressure")
	sp.Duration = 12
	sp.TotalRate = 120
	a, err := RunFast(sp, 7)
	if err != nil {
		t.Fatalf("run a: %v", err)
	}
	b, err := RunFast(sp, 7)
	if err != nil {
		t.Fatalf("run b: %v", err)
	}
	for i := range a.Systems {
		sa, sb := a.Systems[i], b.Systems[i]
		if sa.Name != sb.Name || sa.Served != sb.Served {
			t.Fatalf("system %d differs: %s/%d vs %s/%d", i, sa.Name, sa.Served, sb.Name, sb.Served)
		}
		if (sa.Cache == nil) != (sb.Cache == nil) {
			t.Fatalf("system %s: cache summary presence differs", sa.Name)
		}
		if sa.Cache != nil && *sa.Cache != *sb.Cache {
			t.Fatalf("system %s: cache summaries differ:\n%+v\n%+v", sa.Name, *sa.Cache, *sb.Cache)
		}
	}
}

// TestValidateRejectsOversizedDocs guards the budget/shard interplay: a
// document bigger than the per-shard budget can never be cached, which
// would silently degrade every policy to no-cache.
func TestValidateRejectsOversizedDocs(t *testing.T) {
	sp, _ := Lookup("cache-pressure")
	sp = sp.WithDefaults()
	sp.CacheShards = 64 // per-shard budget now smaller than one doc
	if err := sp.Validate(); err == nil {
		t.Fatalf("oversized doc_bytes per shard accepted")
	}
	sp.CacheShards = 1
	sp.EvictPolicy = "mru"
	if err := sp.Validate(); err == nil {
		t.Fatalf("unknown evict policy accepted")
	}

	// Validate on an un-defaulted budgeted spec must not divide by zero.
	raw := Spec{Name: "x", Nodes: 4, Popularity: PopZipf, ZipfSkew: 1,
		TotalRate: 10, Duration: 10, Window: 1, Arrival: ArrivalPoisson,
		CacheBudgetBytes: 4096, DocBytes: 1024}
	if err := raw.Validate(); err != nil {
		t.Fatalf("un-defaulted budgeted spec rejected: %v", err)
	}
}
