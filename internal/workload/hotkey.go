package workload

// Hot-key scenario: what does a replication forest buy against a single-URL
// flash crowd? One document's demand ramps far past a single server's
// capacity while every request funnels through one edge entry — the
// worst case for a lone routing tree, whose serving set for that traffic is
// exactly the home node. The forest run promotes the document onto K-1
// replica roots (home's least-loaded children, as the live server picks
// them) once the shared hysteresis state machine (forest.PromoTracker — the
// same type the live control loop steps) fires, routes each request to the
// less loaded of two sampled trees (forest.TwoChoices — the same pick the
// live gateway makes), and demotes when the crowd subsides.
//
// The runner is a seeded capacity model in virtual time — bit-for-bit
// deterministic, so CI can gate its figures without wall-clock noise. The
// modeling assumption matches the live gateway path: a routed request
// enters AT a replica root and is served there (the root holds the copy),
// so the forest's serving set for the crowd is the K tree roots, each a
// server of NodeCapacity req/s; demand beyond a root's capacity in a
// window is lost, exactly like an overloaded origin. Jain fairness is
// computed over cumulative per-node serves across the whole tree, so
// concentrating the crowd on one node shows up as unfairness.

import (
	"fmt"
	"math/rand"
	"slices"

	"webwave/internal/forest"
	"webwave/internal/stats"
	"webwave/internal/tree"
)

// HotkeySchema identifies hot-key reports.
const HotkeySchema = "webwave-hotkey/v1"

// HotkeySpec parameterizes the hot-key scenario. K counts the trees in the
// forest: K=1 is the unreplicated protocol (the single home tree — the
// baseline the speedup is judged against), K≥2 promotes the hot document
// onto K-1 replica roots in disjoint sibling subtrees.
type HotkeySpec struct {
	Seed        int64 `json:"seed"`
	Nodes       int   `json:"nodes"`        // tree size; default 31
	MaxChildren int   `json:"max_children"` // branching bound; default 3

	NodeCapacity float64 `json:"node_capacity"` // req/s one server sustains; default 50
	BaseRate     float64 `json:"base_rate"`     // steady demand for the document, req/s; default 20

	// The flash envelope: demand ramps linearly to PeakFactor×BaseRate over
	// Ramp seconds starting at Start, holds for Hold, decays over Decay.
	Start      float64 `json:"start_s"`     // default 6
	Ramp       float64 `json:"ramp_s"`      // default 4
	Hold       float64 `json:"hold_s"`      // default 18
	Decay      float64 `json:"decay_s"`     // default 4
	PeakFactor float64 `json:"peak_factor"` // default 30 (peak 600 req/s)

	Duration float64 `json:"duration_s"` // default 40
	Window   float64 `json:"window_s"`   // observation/metrics window; default 1

	// Promotion hysteresis, mirroring server.Config's knobs.
	PromoteThreshold float64 `json:"promote_threshold"` // req/s; default 100
	DemoteThreshold  float64 `json:"demote_threshold"`  // req/s; default threshold/4
	Hysteresis       int     `json:"hysteresis"`        // windows; default 2

	Ks []int `json:"ks"` // forest widths to sweep; default [1, 3]
}

// WithDefaults fills unset fields.
func (s HotkeySpec) WithDefaults() HotkeySpec {
	if s.Nodes <= 0 {
		s.Nodes = 31
	}
	if s.MaxChildren <= 0 {
		s.MaxChildren = 3
	}
	if s.NodeCapacity <= 0 {
		s.NodeCapacity = 50
	}
	if s.BaseRate <= 0 {
		s.BaseRate = 20
	}
	if s.Start <= 0 {
		s.Start = 6
	}
	if s.Ramp <= 0 {
		s.Ramp = 4
	}
	if s.Hold <= 0 {
		s.Hold = 18
	}
	if s.Decay <= 0 {
		s.Decay = 4
	}
	if s.PeakFactor <= 1 {
		s.PeakFactor = 30
	}
	if s.Duration <= 0 {
		s.Duration = 40
	}
	if s.Window <= 0 {
		s.Window = 1
	}
	if s.PromoteThreshold <= 0 {
		s.PromoteThreshold = 100
	}
	if s.DemoteThreshold <= 0 {
		s.DemoteThreshold = s.PromoteThreshold / 4
	}
	if s.Hysteresis <= 0 {
		s.Hysteresis = 2
	}
	if len(s.Ks) == 0 {
		s.Ks = []int{1, 3}
	}
	return s
}

// HotkeyRun is one forest width's outcome.
type HotkeyRun struct {
	K     int   `json:"k"`
	Roots []int `json:"roots,omitempty"` // replica roots the promotion picked

	Offered       int64   `json:"offered"`
	Served        int64   `json:"served"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// Jain is fairness over cumulative per-node serves across the whole
	// tree — the figure that shows the crowd spreading over the forest.
	Jain float64 `json:"jain"`

	Promotions int `json:"promotions"`
	Demotions  int `json:"demotions"`
	// PromotedAtS / DemotedAtS are the virtual times of the first promotion
	// and the last demotion, -1 when the transition never fired. A full
	// round trip (promote during the ramp, demote after the decay) is what
	// the CI gate demands of every K>1 run.
	PromotedAtS float64 `json:"promoted_at_s"`
	DemotedAtS  float64 `json:"demoted_at_s"`
}

// HotkeyReport is the hot-key scenario JSON document.
type HotkeyReport struct {
	Schema   string      `json:"schema"`
	Scenario string      `json:"scenario"`
	Spec     HotkeySpec  `json:"spec"`
	Runs     []HotkeyRun `json:"runs"`

	// ScalingX is throughput at the widest forest over throughput at K=1 —
	// the headline figure the gate floors. JainRatio compares the same two
	// runs' fairness.
	ScalingX  float64 `json:"scaling_x"`
	JainRatio float64 `json:"jain_ratio"`
}

// Run returns the run at forest width k, or nil.
func (r *HotkeyReport) Run(k int) *HotkeyRun {
	for i := range r.Runs {
		if r.Runs[i].K == k {
			return &r.Runs[i]
		}
	}
	return nil
}

// RunHotkey executes the sweep and assembles the report. The log callback
// (may be nil) receives one line per forest width.
func RunHotkey(sp HotkeySpec, logf func(format string, args ...any)) (*HotkeyReport, error) {
	sp = sp.WithDefaults()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if sp.Window > sp.Duration {
		return nil, fmt.Errorf("hotkey: window %v > duration %v", sp.Window, sp.Duration)
	}
	rng := rand.New(rand.NewSource(sp.Seed))
	t, err := tree.RandomBounded(sp.Nodes, sp.MaxChildren, rng)
	if err != nil {
		return nil, fmt.Errorf("hotkey: tree: %w", err)
	}
	// The document's home: the node with the most children, so the widest
	// forest has sibling subtrees to promote into. (Deterministic scan; the
	// live system's home is wherever the document was published.)
	home := t.Root()
	for v := 0; v < t.Len(); v++ {
		if len(t.Children(v)) > len(t.Children(home)) {
			home = v
		}
	}
	maxK := 0
	for _, k := range sp.Ks {
		if k < 1 {
			return nil, fmt.Errorf("hotkey: forest width %d < 1", k)
		}
		if k > maxK {
			maxK = k
		}
	}
	if want := maxK - 1; want > len(t.Children(home)) {
		return nil, fmt.Errorf("hotkey: widest forest needs %d replica roots but the home has only %d children (reseed or widen the tree)",
			want, len(t.Children(home)))
	}

	rep := &HotkeyReport{Schema: HotkeySchema, Scenario: "hot-key", Spec: sp}
	for _, k := range sp.Ks {
		run := hotkeyRun(sp, t, home, k)
		logf("  k=%d: served %d/%d (%.1f req/s), jain %.3f, promoted@%.0fs demoted@%.0fs, roots %v",
			k, run.Served, run.Offered, run.ThroughputRPS, run.Jain,
			run.PromotedAtS, run.DemotedAtS, run.Roots)
		rep.Runs = append(rep.Runs, run)
	}
	base, widest := rep.Run(1), rep.Run(maxK)
	if base != nil && widest != nil && base.ThroughputRPS > 0 {
		rep.ScalingX = round6(widest.ThroughputRPS / base.ThroughputRPS)
		if base.Jain > 0 {
			rep.JainRatio = round6(widest.Jain / base.Jain)
		}
	}
	return rep, nil
}

// hotkeyRun plays the flash envelope against one forest width.
func hotkeyRun(sp HotkeySpec, t *tree.Tree, home, k int) HotkeyRun {
	rng := rand.New(rand.NewSource(sp.Seed + int64(1000*k)))
	flash := &FlashCrowd{
		Start: sp.Start, Ramp: sp.Ramp, Hold: sp.Hold, Decay: sp.Decay,
		Factor: sp.PeakFactor,
	}
	cfg := forest.PromoConfig{
		PromoteThreshold: sp.PromoteThreshold,
		DemoteThreshold:  sp.DemoteThreshold,
		Hysteresis:       sp.Hysteresis,
	}.WithDefaults()

	run := HotkeyRun{K: k, PromotedAtS: -1, DemotedAtS: -1}
	var tracker forest.PromoTracker
	served := make([]float64, t.Len())    // cumulative per node, for Jain
	var roots []int                       // replica roots while promoted
	budget := sp.NodeCapacity * sp.Window // per-node serves per window

	windows := int(sp.Duration/sp.Window + 0.5)
	for w := 0; w < windows; w++ {
		mid := (float64(w) + 0.5) * sp.Window
		rate := sp.BaseRate * flash.factorAt(mid)
		n := int(rate*sp.Window + 0.5)
		run.Offered += int64(n)

		// The home observes the document's demand once per window and steps
		// the same hysteresis machine the live control loop runs. Width 1
		// is the unreplicated baseline: no promotion machinery at all.
		if k > 1 {
			switch tracker.Observe(rate, cfg) {
			case forest.PromoPromote:
				roots = forest.PickReplicaRoots(t.Children(home),
					func(v int) float64 { return served[v] }, k-1)
				run.Promotions++
				if run.PromotedAtS < 0 {
					run.PromotedAtS = round6(mid)
					run.Roots = slices.Clone(roots)
					slices.Sort(run.Roots)
				}
			case forest.PromoDemote:
				roots = nil
				run.Demotions++
				run.DemotedAtS = round6(mid)
			}
		}

		// Serving set: the home tree plus, while promoted, one tree per
		// replica root. Each routed request enters at the less loaded of
		// two sampled trees; per-tree serves cap at the root's capacity.
		serving := append([]int{home}, roots...)
		assigned := make(map[int]int, len(serving))
		for i := 0; i < n; i++ {
			v := forest.TwoChoices(serving,
				func(u int) float64 { return float64(assigned[u]) }, rng)
			assigned[v]++
		}
		for _, v := range serving {
			got := float64(assigned[v])
			if got > budget {
				got = budget
			}
			served[v] += got
			run.Served += int64(got + 0.5)
		}
	}

	run.ThroughputRPS = round6(float64(run.Served) / sp.Duration)
	run.Jain = round6(stats.JainIndex(served))
	return run
}
