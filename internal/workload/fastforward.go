package workload

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"webwave/internal/cachestore"
	"webwave/internal/core"
	"webwave/internal/docwave"
	"webwave/internal/lru"
	"webwave/internal/sim"
	"webwave/internal/trace"
	"webwave/internal/tree"
)

// Policy names a request-placement policy replayed on the benchmark trace.
type Policy string

// Policies.
const (
	// PolicyWebWave places requests per the document-level WebWave
	// protocol: the docwave simulator diffuses cache copies between
	// windows and each request is served en route with probability equal
	// to the fluid serve/forward split at each node it passes.
	PolicyWebWave Policy = "webwave"
	// PolicyNoCache serves every request at the home server.
	PolicyNoCache Policy = "no-cache"
	// PolicyPathLRU fills an LRU cache at every node on the request path
	// (classic en-route / CDN caching) and serves at the first hit.
	PolicyPathLRU Policy = "path-lru"
	// PolicyBoundedLRU / PolicyBoundedHeat / PolicyBoundedGDSF run WebWave
	// placement over byte-budgeted cachestores, one per non-home node:
	// the fluid protocol decides where copies should live, the store's
	// eviction policy decides which survive the budget, and a request is
	// served en route only where the copy actually survived.
	PolicyBoundedLRU  Policy = "webwave-lru"
	PolicyBoundedHeat Policy = "webwave-heat"
	PolicyBoundedGDSF Policy = "webwave-gdsf"
)

// DefaultPolicies returns the policies RunFast compares for a spec:
// WebWave and no-cache always, en-route LRU when the spec bounds cache
// slots, and the eviction-policy shoot-out when it bounds cache bytes.
func DefaultPolicies(sp Spec) []Policy {
	if sp.CacheBudgetBytes > 0 {
		return []Policy{PolicyBoundedHeat, PolicyBoundedLRU, PolicyBoundedGDSF, PolicyNoCache}
	}
	ps := []Policy{PolicyWebWave, PolicyNoCache}
	if sp.CacheCap > 0 {
		ps = append(ps, PolicyPathLRU)
	}
	return ps
}

// BuildTree derives the scenario's routing tree deterministically from the
// seed, shared by the fast and live runners.
func BuildTree(sp Spec, seed int64) (*tree.Tree, error) {
	rng := rand.New(rand.NewSource(seed))
	return tree.RandomBounded(sp.Nodes, sp.MaxChildren, rng)
}

// traceSeed separates the tree and trace RNG streams.
func traceSeed(seed int64) int64 { return seed*2654435761 + 1 }

// replayer is one policy's request-placement engine.
type replayer interface {
	name() string
	// windowTick advances protocol state to the window starting at t.
	windowTick(t float64)
	// place returns the serving node and hop count for a request, or
	// ok=false when the request is lost. down flags churned-out nodes.
	place(req trace.Request, down []bool, rng *rand.Rand) (node, hops int, ok bool)
}

// ---------------------------------------------------------------------------

// webwaveReplayer drives docwave.Sim between windows and samples the fluid
// serve/forward split per request.
type webwaveReplayer struct {
	sp       Spec
	t        *tree.Tree
	tr       *Trace
	ds       *docwave.Sim
	demand   *trace.Demand
	docIndex map[core.DocID]int
	rounds   int
}

func newWebwaveReplayer(sp Spec, t *tree.Tree, tr *Trace) (*webwaveReplayer, error) {
	m := len(tr.DocWeights)
	docs := make([]core.Document, m)
	index := make(map[core.DocID]int, m)
	for j := range docs {
		id := DocID(j)
		docs[j] = core.Document{ID: id, Home: t.Root(), Size: 1 << 12}
		index[id] = j
	}
	demand := &trace.Demand{Docs: docs, Rates: tr.DemandMatrix(sp.TotalRate)}
	ds, err := docwave.NewSim(t, demand, docwave.Config{
		Tunneling: sp.Tunneling,
		CacheCap:  sp.CacheCap,
		EvictIdle: sp.CacheCap > 0,
	}, nil)
	if err != nil {
		return nil, fmt.Errorf("workload: webwave replayer: %w", err)
	}
	return &webwaveReplayer{
		sp: sp, t: t, tr: tr, ds: ds, demand: demand,
		docIndex: index, rounds: sp.RoundsPerWindow,
	}, nil
}

func (r *webwaveReplayer) name() string { return string(PolicyWebWave) }

// windowTick refreshes the demand matrix to the window's midpoint rates
// (diurnal scaling plus the flash surplus on the hot set) and runs the
// protocol rounds for the window, so placement chases the moving demand
// exactly as the live protocol would.
func (r *webwaveReplayer) windowTick(t float64) {
	sp := r.sp
	mid := t + sp.Window/2
	di := sp.Diurnal.factorAt(mid)
	f := sp.Flash.factorAt(mid)
	base := r.tr.DemandMatrix(sp.TotalRate * di)
	if f > 1 {
		extra := sp.TotalRate * di * (f - 1)
		for v := range base {
			share := extra * r.tr.NodeWeights[v] / float64(sp.Flash.HotDocs)
			for j := 0; j < sp.Flash.HotDocs; j++ {
				base[v][j] += share
			}
		}
	}
	r.demand.Rates = base
	for i := 0; i < r.rounds; i++ {
		r.ds.Step()
	}
}

func (r *webwaveReplayer) place(req trace.Request, down []bool, rng *rand.Rand) (int, int, bool) {
	if down[req.Origin] {
		return -1, 0, false
	}
	j, ok := r.docIndex[req.Doc]
	if !ok {
		return -1, 0, false
	}
	path := r.t.PathToRoot(req.Origin)
	for hops, v := range path {
		if v == r.t.Root() {
			return v, hops, true
		}
		if down[v] {
			continue // a down node forwards nothing but blocks nothing
		}
		serve := r.ds.ServeRate(v, j)
		fwd := r.ds.ForwardRate(v, j)
		if tot := serve + fwd; tot > 0 && rng.Float64() < serve/tot {
			return v, hops, true
		}
	}
	root := r.t.Root()
	return root, len(path) - 1, true
}

// ---------------------------------------------------------------------------

// boundedReplayer layers byte-budgeted cachestores over the fluid WebWave
// placement: windowTick installs copies where the protocol placed them
// (bounded by budget, displacing per the eviction policy), and a request
// is served en route only where its copy actually survived — a placement
// the wave intended but eviction destroyed counts as a store miss and the
// request keeps climbing toward the home server.
type boundedReplayer struct {
	*webwaveReplayer
	policy cachestore.Policy
	stores []*cachestore.Store // nil at the home node
	flow   [][]float64         // node × doc demand rate for the current window
	body   []byte              // shared dummy body, len = Spec.DocBytes

	servedBelow, servedRoot int64
}

func newBoundedReplayer(sp Spec, t *tree.Tree, tr *Trace, policy cachestore.Policy) (*boundedReplayer, error) {
	// Align the fluid guidance with the byte capacity: the protocol
	// simulator bounds copies per node at budget/doc-size slots, so its
	// placement is one the stores could in principle hold in full.
	guided := sp
	guided.CacheCap = int(sp.CacheBudgetBytes / int64(sp.DocBytes))
	ww, err := newWebwaveReplayer(guided, t, tr)
	if err != nil {
		return nil, err
	}
	r := &boundedReplayer{
		webwaveReplayer: ww,
		policy:          policy,
		stores:          make([]*cachestore.Store, t.Len()),
		flow:            make([][]float64, t.Len()),
		body:            make([]byte, sp.DocBytes),
	}
	for v := range r.stores {
		if v == t.Root() {
			continue // the home serves from pinned originals, not a budget
		}
		v := v
		r.flow[v] = make([]float64, len(tr.DocWeights))
		r.stores[v] = cachestore.New(cachestore.Config{
			BudgetBytes: sp.CacheBudgetBytes,
			Shards:      sp.CacheShards,
			Policy:      policy,
			HeatOf: func(doc core.DocID) float64 {
				if j, ok := r.docIndex[doc]; ok {
					return r.flow[v][j]
				}
				return 0
			},
		})
	}
	return r, nil
}

func (r *boundedReplayer) name() string { return "webwave-" + string(r.policy) }

func (r *boundedReplayer) windowTick(t float64) {
	r.webwaveReplayer.windowTick(t)
	for v := range r.stores {
		if r.stores[v] == nil {
			continue
		}
		// Refresh the heat source first so evictions triggered by this
		// window's installs see this window's rates. Heat is the rate the
		// copy *serves*, not total passing flow: a document whose requests
		// stream through but are served elsewhere must look cold here, or
		// eviction keeps busy-path bystanders over working copies.
		for j := range r.flow[v] {
			r.flow[v][j] = r.ds.ServeRate(v, j)
		}
		for j := range r.flow[v] {
			if r.ds.ServeRate(v, j) <= 0 {
				continue
			}
			doc := DocID(j)
			if !r.stores[v].Contains(doc) {
				r.stores[v].Put(doc, r.body)
			}
		}
	}
}

func (r *boundedReplayer) place(req trace.Request, down []bool, rng *rand.Rand) (int, int, bool) {
	if down[req.Origin] {
		return -1, 0, false
	}
	j, ok := r.docIndex[req.Doc]
	if !ok {
		return -1, 0, false
	}
	path := r.t.PathToRoot(req.Origin)
	for hops, v := range path {
		if v == r.t.Root() {
			r.servedRoot++
			return v, hops, true
		}
		if down[v] {
			continue
		}
		serve := r.ds.ServeRate(v, j)
		fwd := r.ds.ForwardRate(v, j)
		if tot := serve + fwd; tot > 0 && rng.Float64() < serve/tot {
			// The wave wants this node to serve; it can only if the copy
			// survived the byte budget.
			if _, hit := r.stores[v].Get(req.Doc); hit {
				r.servedBelow++
				return v, hops, true
			}
		}
	}
	root := r.t.Root()
	r.servedRoot++
	return root, len(path) - 1, true
}

// cacheResult aggregates the run's cache-pressure outcome.
func (r *boundedReplayer) cacheResult() *CacheResult {
	cr := &CacheResult{
		Policy:      string(r.policy),
		BudgetBytes: r.sp.CacheBudgetBytes,
		DocBytes:    r.sp.DocBytes,
	}
	for _, st := range r.stores {
		if st == nil {
			continue
		}
		s := st.Stats()
		cr.StoreHits += s.Hits
		cr.StoreMisses += s.Misses
		cr.Evictions += s.Evictions
		cr.EvictedBytes += s.EvictedBytes
		if st.MaxBytes() > cr.MaxNodeBytes {
			cr.MaxNodeBytes = st.MaxBytes()
		}
		if st.MaxBytes() > r.sp.CacheBudgetBytes {
			cr.OverBudget = true
		}
	}
	if total := r.servedBelow + r.servedRoot; total > 0 {
		cr.HitRate = round6(float64(r.servedBelow) / float64(total))
	}
	return cr
}

// ---------------------------------------------------------------------------

// noCacheReplayer serves everything at the home server.
type noCacheReplayer struct{ t *tree.Tree }

func (r *noCacheReplayer) name() string       { return string(PolicyNoCache) }
func (r *noCacheReplayer) windowTick(float64) {}

func (r *noCacheReplayer) place(req trace.Request, down []bool, _ *rand.Rand) (int, int, bool) {
	if down[req.Origin] {
		return -1, 0, false
	}
	return r.t.Root(), r.t.Depth(req.Origin), true
}

// ---------------------------------------------------------------------------

// pathLRUReplayer is en-route caching: serve at the first path node holding
// the document, then install it at every node the response passes.
type pathLRUReplayer struct {
	t      *tree.Tree
	caches []*lru.Cache
}

func newPathLRUReplayer(sp Spec, t *tree.Tree) *pathLRUReplayer {
	cap := sp.CacheCap
	if cap <= 0 {
		cap = 8
	}
	caches := make([]*lru.Cache, t.Len())
	for v := range caches {
		if v != t.Root() {
			caches[v] = lru.New(cap)
		}
	}
	return &pathLRUReplayer{t: t, caches: caches}
}

func (r *pathLRUReplayer) name() string       { return string(PolicyPathLRU) }
func (r *pathLRUReplayer) windowTick(float64) {}

func (r *pathLRUReplayer) place(req trace.Request, down []bool, _ *rand.Rand) (int, int, bool) {
	if down[req.Origin] {
		return -1, 0, false
	}
	path := r.t.PathToRoot(req.Origin)
	served, hops := r.t.Root(), len(path)-1
	for i, v := range path {
		if v == r.t.Root() {
			break
		}
		if down[v] {
			continue
		}
		if _, ok := r.caches[v].Get(req.Doc); ok {
			served, hops = v, i
			break
		}
	}
	// En-route fill on the response path.
	for i := 0; i < hops; i++ {
		v := path[i]
		if v != r.t.Root() && !down[v] {
			r.caches[v].Put(req.Doc, nil)
		}
	}
	return served, hops, true
}

// ---------------------------------------------------------------------------

// RunFast replays the scenario in virtual time on the discrete-event engine
// for every policy in DefaultPolicies, producing a deterministic report.
func RunFast(sp Spec, seed int64) (*Report, error) {
	return RunFastPolicies(sp, seed, DefaultPolicies(sp.WithDefaults()))
}

// RunFastPolicies is RunFast with an explicit policy set.
func RunFastPolicies(sp Spec, seed int64, policies []Policy) (*Report, error) {
	sp = sp.WithDefaults()
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	t, err := BuildTree(sp, seed)
	if err != nil {
		return nil, fmt.Errorf("workload: tree: %w", err)
	}
	tr, err := Generate(sp, t, traceSeed(seed))
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Schema: Schema, Scenario: sp.Name, Mode: "fast", Seed: seed,
		Spec: sp, Tree: treeInfo(t),
		Requests:    int64(len(tr.Requests)),
		ChurnEvents: len(tr.Churn),
		OfferedRPS:  round6(float64(len(tr.Requests)) / sp.Duration),
	}

	for _, p := range policies {
		var rp replayer
		switch p {
		case PolicyWebWave:
			rp, err = newWebwaveReplayer(sp, t, tr)
			if err != nil {
				return nil, err
			}
		case PolicyNoCache:
			rp = &noCacheReplayer{t: t}
		case PolicyPathLRU:
			rp = newPathLRUReplayer(sp, t)
		case PolicyBoundedLRU, PolicyBoundedHeat, PolicyBoundedGDSF:
			if sp.CacheBudgetBytes <= 0 {
				return nil, fmt.Errorf("workload: policy %q needs cache_budget_bytes", p)
			}
			pol := cachestore.Policy(string(p)[len("webwave-"):])
			rp, err = newBoundedReplayer(sp, t, tr, pol)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("workload: unknown policy %q", p)
		}
		col, err := replayFast(sp, t, tr, rp, seed)
		if err != nil {
			return nil, err
		}
		sys := systemResult(rp.name(), col, sp.Duration)
		if br, ok := rp.(*boundedReplayer); ok {
			sys.Cache = br.cacheResult()
		}
		rep.Systems = append(rep.Systems, sys)
	}

	rep.Baselines, err = analyticBaselines(t, tr, sp)
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// replayFast runs one policy over the trace on the event engine: window
// ticks advance protocol state and the load-dependent latency model,
// churn events flip node availability, and each request is placed and
// scored in schedule order.
func replayFast(sp Spec, t *tree.Tree, tr *Trace, rp replayer, seed int64) (*Collector, error) {
	col := NewCollector(t.Len(), sp.Window, sp.Duration)
	// Separate RNG stream per policy, keyed by a hash of its name so
	// placement sampling is independent across policies.
	h := fnv.New64a()
	h.Write([]byte(rp.name()))
	rng := rand.New(rand.NewSource(traceSeed(seed) ^ int64(h.Sum64())))
	down := make([]bool, t.Len())

	// Per-window served counts feed a queueing-flavored latency model:
	// response time grows as the serving node's measured utilization in
	// the previous window approaches 1.
	cur := make(core.Vector, t.Len())
	prevUtil := make(core.Vector, t.Len())
	latency := func(servedBy, hops int) float64 {
		u := prevUtil[servedBy]
		if u > 0.95 {
			u = 0.95
		}
		return 2*sp.HopDelay*float64(hops) + sp.ServiceTime/(1-u)
	}

	eng := &sim.Engine{}
	nw := int(math.Ceil(sp.Duration / sp.Window))
	for w := 0; w < nw; w++ {
		start := float64(w) * sp.Window
		eng.At(start, func() {
			for v := range cur {
				prevUtil[v] = cur[v] / (sp.Window * sp.NodeCapacity)
				cur[v] = 0
			}
			rp.windowTick(start)
		})
	}
	for _, ev := range tr.Churn {
		ev := ev
		eng.At(ev.Time, func() { down[ev.Node] = ev.Down })
	}
	for i := range tr.Requests {
		req := tr.Requests[i]
		eng.At(req.Time, func() {
			node, hops, ok := rp.place(req, down, rng)
			if !ok {
				col.Record(req.Time, -1, 0, 0, false)
				return
			}
			cur[node]++
			col.Record(req.Time, node, hops, latency(node, hops), true)
		})
	}
	eng.RunAll(0)
	return col, nil
}
