package workload

// Swarm scenario: the chaos experiment scaled out to real operating-system
// processes. A rack-structured routing tree — root, then R racks of N nodes
// each, every rack a spine-shaped subtree — is launched as one process per
// node over real TCP (cluster.ProcCluster), a Poisson schedule plays
// against it, and midway through an entire rack is SIGKILLed at once: the
// failure mode a power bus or top-of-rack switch presents, where a whole
// subtree vanishes between two heartbeats. The rack is later re-exec'd onto
// its old addresses and DataDirs, so the revived processes come back warm
// from their journals and re-announce the duty they held.
//
// Requests whose entry node is dead are rerouted to the nearest live
// ancestor (the gateway remap a real client population performs) and
// counted, so availability measures what the surviving tree actually
// dropped — in-flight requests lost inside the dying rack — rather than
// the runner's choice of entry points. Wall-clock measurement: NOT
// deterministic; the CI gate (benchgate -swarm-report) applies thresholds,
// not byte equality.

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"webwave/internal/cluster"
	"webwave/internal/trace"
	"webwave/internal/tree"
)

// SwarmSchema identifies swarm reports.
const SwarmSchema = "webwave-swarm/v1"

// SwarmSpec parameterizes the swarm scenario.
type SwarmSpec struct {
	Seed int64 `json:"seed"`
	// Racks of RackNodes nodes each hang under the root; each rack is a
	// spine of RackDepth nodes with the rest attached round-robin,
	// deepest-first, so the tree's depth is RackDepth+1. Defaults 4×25 with
	// spine 5 — a 101-process tree of depth 6.
	Racks     int     `json:"racks"`
	RackNodes int     `json:"rack_nodes"`
	RackDepth int     `json:"rack_depth"`
	NumDocs   int     `json:"num_docs"`   // catalog size; default 32
	DocBytes  int     `json:"doc_bytes"`  // body bytes per document; default 512
	TotalRate float64 `json:"total_rate"` // offered req/s; default 400
	Duration  float64 `json:"duration_s"` // schedule length; default 12
	// KillRack names the rack (0-based) SIGKILLed at KillAt and re-exec'd
	// Downtime seconds later; -1 disables the failure.
	KillRack    int     `json:"kill_rack"`
	KillAt      float64 `json:"kill_at_s"`    // default Duration/3
	Downtime    float64 `json:"downtime_s"`   // default Duration/4
	HeartbeatMS int     `json:"heartbeat_ms"` // failure-detector period; default 50
}

// WithDefaults fills unset fields.
func (s SwarmSpec) WithDefaults() SwarmSpec {
	if s.Racks <= 0 {
		s.Racks = 4
	}
	if s.RackNodes <= 0 {
		s.RackNodes = 25
	}
	if s.RackDepth <= 0 {
		s.RackDepth = 5
	}
	if s.RackDepth > s.RackNodes {
		s.RackDepth = s.RackNodes
	}
	if s.NumDocs <= 0 {
		s.NumDocs = 32
	}
	if s.DocBytes <= 0 {
		s.DocBytes = 512
	}
	if s.TotalRate <= 0 {
		s.TotalRate = 400
	}
	if s.Duration <= 0 {
		s.Duration = 12
	}
	if s.KillAt <= 0 {
		s.KillAt = s.Duration / 3
	}
	if s.Downtime <= 0 {
		s.Downtime = s.Duration / 4
	}
	if s.HeartbeatMS <= 0 {
		// A hundred processes sharing a few cores cannot all wake every
		// 50ms; big swarms default to a slower detector (the protocol
		// periods scale alongside, see swarmPeriods).
		if s.Racks*s.RackNodes >= 64 {
			s.HeartbeatMS = 200
		} else {
			s.HeartbeatMS = 50
		}
	}
	return s
}

// swarmPeriods picks the gossip/diffusion/window periods for a swarm of n
// processes. The in-process cluster runs 20/40/400ms; a hundred OS
// processes ticking that fast saturate the host's cores with timer wakeups
// and starve the actual request path, so big swarms run the paper's
// periods at a humane scale instead.
func swarmPeriods(n int) (gossip, diffusion, window time.Duration) {
	if n >= 64 {
		return 100 * time.Millisecond, 200 * time.Millisecond, time.Second
	}
	return 20 * time.Millisecond, 40 * time.Millisecond, 400 * time.Millisecond
}

// SwarmTree builds the rack-structured routing tree: node 0 is the root;
// rack r owns the contiguous ids [1+r*rackNodes, 1+(r+1)*rackNodes). Each
// rack's first rackDepth nodes form a spine hanging off the root, and the
// remaining nodes attach round-robin to the spine deepest-first — giving
// every rack leaf-heavy weight at the bottom, where reabsorption is
// hardest.
func SwarmTree(racks, rackNodes, rackDepth int) (*tree.Tree, error) {
	parents := make([]int, 1+racks*rackNodes)
	parents[0] = -1
	for r := 0; r < racks; r++ {
		base := 1 + r*rackNodes
		for i := 0; i < rackNodes; i++ {
			v := base + i
			switch {
			case i == 0:
				parents[v] = 0 // rack head
			case i < rackDepth:
				parents[v] = v - 1 // spine chain
			default:
				j := i - rackDepth
				parents[v] = base + (rackDepth - 1) - (j % rackDepth)
			}
		}
	}
	return tree.FromParents(parents)
}

// SwarmRackNodes returns rack r's node ids (ascending: head, spine, extras —
// also a parents-before-children restart order).
func SwarmRackNodes(sp SwarmSpec, r int) []int {
	base := 1 + r*sp.RackNodes
	out := make([]int, sp.RackNodes)
	for i := range out {
		out[i] = base + i
	}
	return out
}

// SwarmReport is the swarm-scenario JSON document.
type SwarmReport struct {
	Schema   string    `json:"schema"`
	Scenario string    `json:"scenario"`
	Spec     SwarmSpec `json:"spec"`
	Nodes    int       `json:"nodes"` // processes launched
	Depth    int       `json:"depth"` // tree height (root = depth 0)

	RackKilled []int `json:"rack_killed,omitempty"` // node ids SIGKILLed

	Offered int64 `json:"offered"` // schedule entries
	// Rerouted counts requests whose entry node was dead and that entered
	// at the nearest live ancestor instead; FailedInjects counts requests
	// that could not enter the tree at all.
	Rerouted      int64 `json:"rerouted"`
	FailedInjects int64 `json:"failed_injects"`
	Responses     int64 `json:"responses"`
	// LostInFlight is the drain residue: requests that entered the tree and
	// were never answered — in-flight state that died inside the rack.
	LostInFlight int64 `json:"lost_in_flight"`
	// Availability is responses/offered after the drain.
	Availability float64 `json:"availability"`

	// RepairSeconds measures kill → the surviving tree orphan-free; a whole
	// rack is a complete subtree, so this is the detector latency, not a
	// failover storm. ReabsorbSeconds measures restart → the tree whole
	// again: every process live, every non-root node re-attached, nobody
	// orphaned. Both are -1 when never reached within the run.
	RepairSeconds   float64 `json:"repair_seconds"`
	ReabsorbSeconds float64 `json:"reabsorb_seconds"`

	Reconnects      int64   `json:"reconnects"`
	ReclaimedDuty   float64 `json:"reclaimed_duty"`
	AbsorbedDuty    float64 `json:"absorbed_duty"`
	HeartbeatMisses int64   `json:"heartbeat_misses"`
	// WarmDocs totals the documents revived processes recovered from their
	// journals — nonzero proves the re-exec was warm, not a cold cache.
	WarmDocs int64 `json:"warm_docs"`

	// Harness health: stats scrapes that timed out or failed, revives that
	// errored, and node processes that had to be SIGKILLed at teardown
	// because they did not drain. All gated to zero (scrape errors
	// leniently) — a passing run is also a clean run.
	ScrapeErrors    int64 `json:"scrape_errors"`
	FinalOrphaned   int   `json:"final_orphaned"`
	FailedRevives   int64 `json:"failed_revives"`
	ForcedTeardowns int64 `json:"forced_teardowns"`
}

// SwarmOptions carries the process-level knobs that are deployment detail,
// not scenario shape (and so stay out of the spec the baseline pins).
type SwarmOptions struct {
	// Command is the node-process argv prefix, typically
	// {"bin/webwave-cluster", "node"}. Required.
	Command []string
	// Env entries are appended to each node process's environment.
	Env []string
	// WorkDir receives per-node data dirs and logs (empty = temp dir).
	WorkDir string
	// BasePort fixes the port plan (0 = probe free ports).
	BasePort int

	CacheBudgetBytes int64
	DiskBudgetBytes  int64
}

// RunSwarm launches the process tree, plays the schedule with the mid-run
// rack kill and revival, and assembles the report. The log callback (may be
// nil) receives progress lines.
func RunSwarm(sp SwarmSpec, opt SwarmOptions, logf func(format string, args ...any)) (*SwarmReport, error) {
	sp = sp.WithDefaults()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if len(opt.Command) == 0 {
		return nil, fmt.Errorf("swarm: SwarmOptions.Command is required")
	}
	if sp.KillRack >= sp.Racks {
		return nil, fmt.Errorf("swarm: kill rack %d out of range (racks %d)", sp.KillRack, sp.Racks)
	}

	t, err := SwarmTree(sp.Racks, sp.RackNodes, sp.RackDepth)
	if err != nil {
		return nil, fmt.Errorf("swarm: tree: %w", err)
	}
	rng := rand.New(rand.NewSource(sp.Seed))
	demand, err := trace.ZipfDemand(t, trace.ZipfDemandConfig{
		NumDocs: sp.NumDocs, Skew: 1.0, TotalRate: sp.TotalRate,
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("swarm: demand: %w", err)
	}
	// The node processes derive the catalog from -docs alone, so the
	// schedule must request those exact ids, not ZipfDemand's defaults.
	ids := cluster.SwarmDocIDs(sp.NumDocs)
	for j := range demand.Docs {
		demand.Docs[j].ID = ids[j]
	}
	sched := trace.PoissonSchedule(demand, sp.Duration, rng)

	var killed []int
	if sp.KillRack >= 0 {
		killed = SwarmRackNodes(sp, sp.KillRack)
	}

	gossip, diffusion, window := swarmPeriods(t.Len())
	logf("  spawning %d node processes (depth %d)...", t.Len(), t.Height())
	p, err := cluster.NewProc(t, cluster.ProcConfig{
		Command:          opt.Command,
		Env:              opt.Env,
		WorkDir:          opt.WorkDir,
		BasePort:         opt.BasePort,
		NumDocs:          sp.NumDocs,
		DocBytes:         sp.DocBytes,
		GossipPeriod:     gossip,
		DiffusionPeriod:  diffusion,
		Window:           window,
		HeartbeatPeriod:  time.Duration(sp.HeartbeatMS) * time.Millisecond,
		CacheBudgetBytes: opt.CacheBudgetBytes,
		DiskBudgetBytes:  opt.DiskBudgetBytes,
		// A loaded host answers stats in bursts; give big swarms more per-
		// node headroom before a scrape counts as an error.
		ScrapeTimeout: 2*time.Second + time.Duration(t.Len())*20*time.Millisecond,
	})
	if err != nil {
		return nil, fmt.Errorf("swarm: %w", err)
	}
	defer p.Stop()
	logf("  swarm up: %d processes, workdir %s", t.Len(), p.WorkDir())

	rep := &SwarmReport{
		Schema: SwarmSchema, Scenario: "swarm", Spec: sp,
		Nodes: t.Len(), Depth: t.Height(), RackKilled: killed,
		RepairSeconds: -1, ReabsorbSeconds: -1,
	}

	start := time.Now()
	var wg sync.WaitGroup
	if len(killed) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(time.Until(start.Add(dur(sp.KillAt))))
			killT := time.Now()
			for _, v := range killed {
				p.KillNode(v)
			}
			logf("  rack %d down: %d processes SIGKILLed at t=%.2fs",
				sp.KillRack, len(killed), time.Since(start).Seconds())
			// Survivor repair: poll until no live node is orphaned. The
			// rack died as a unit, so this clocks the detector, and catches
			// any survivor a dead rack manages to strand.
			deadlineT := start.Add(dur(sp.KillAt + sp.Downtime))
			for time.Now().Before(deadlineT) {
				if orphans, ok := orphanCount(p); ok && orphans == 0 {
					rep.RepairSeconds = time.Since(killT).Seconds()
					return
				}
				time.Sleep(250 * time.Millisecond)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(time.Until(start.Add(dur(sp.KillAt + sp.Downtime))))
			restartT := time.Now()
			// Revive in parallel waves by tree depth: everything at one
			// depth restarts concurrently (a sequential sweep of 25
			// handshakes takes most of a minute on a loaded host), while
			// the wave order keeps parents listening before their children
			// re-exec.
			var failed atomic.Int64
			for _, wave := range depthWaves(t, killed) {
				var rwg sync.WaitGroup
				for _, v := range wave {
					rwg.Add(1)
					go func(v int) {
						defer rwg.Done()
						if err := p.RestartNode(v); err != nil {
							logf("  revive node %d FAILED: %v", v, err)
							failed.Add(1)
						}
					}(v)
				}
				rwg.Wait()
			}
			rep.FailedRevives = failed.Load()
			logf("  rack %d re-exec'd (%d revived) at t=%.2fs",
				sp.KillRack, int64(len(killed))-rep.FailedRevives, time.Since(start).Seconds())
			// Reabsorption: the tree is whole when every process is live
			// and every non-root node reports a parent, orphaned nowhere.
			deadlineT := start.Add(dur(sp.Duration + 10))
			for time.Now().Before(deadlineT) {
				if swarmWhole(p) {
					rep.ReabsorbSeconds = time.Since(restartT).Seconds()
					return
				}
				time.Sleep(500 * time.Millisecond)
			}
		}()
	}

	// Open-loop playback. A request whose entry node is dead enters at the
	// nearest live ancestor instead (counted as rerouted); only a send that
	// fails outright counts as a failed injection.
	for i := range sched {
		if wait := time.Until(start.Add(dur(sched[i].Time))); wait > 0 {
			time.Sleep(wait)
		}
		rep.Offered++
		origin := sched[i].Origin
		if p.NodeDead(origin) {
			for origin != t.Root() && p.NodeDead(origin) {
				origin = t.Parent(origin)
			}
			rep.Rerouted++
		}
		if err := p.Inject(origin, sched[i].Doc); err != nil {
			rep.FailedInjects++
		}
	}
	wg.Wait()
	rep.LostInFlight = p.Drain(5 * time.Second)
	rep.Responses = p.Responses()
	if rep.Offered > 0 {
		rep.Availability = round6(float64(rep.Responses) / float64(rep.Offered))
	}

	if sts, err := p.Stats(); err == nil {
		for _, st := range sts {
			if st == nil {
				continue
			}
			rep.Reconnects += st.Reconnects
			rep.ReclaimedDuty += st.ReclaimedDuty
			rep.AbsorbedDuty += st.AbsorbedDuty
			rep.HeartbeatMisses += st.HeartbeatMisses
			rep.WarmDocs += st.WarmDocs
			rep.FinalOrphaned += st.Orphaned
		}
	}
	rep.ReclaimedDuty = round6(rep.ReclaimedDuty)
	rep.AbsorbedDuty = round6(rep.AbsorbedDuty)
	rep.RepairSeconds = round6(rep.RepairSeconds)
	rep.ReabsorbSeconds = round6(rep.ReabsorbSeconds)
	rep.ScrapeErrors = p.ScrapeErrors()

	p.Stop() // explicit, so ForcedTeardowns is final before the report
	rep.ForcedTeardowns = p.ForcedTeardowns()
	logf("  swarm done: %d/%d answered (%.4f), rerouted %d, reabsorb %.2fs, warm docs %d, forced teardowns %d",
		rep.Responses, rep.Offered, rep.Availability, rep.Rerouted,
		rep.ReabsorbSeconds, rep.WarmDocs, rep.ForcedTeardowns)
	return rep, nil
}

// depthWaves groups nodes by tree depth, shallowest first — a restart order
// where every node's parent is already back (or was never down).
func depthWaves(t *tree.Tree, nodes []int) [][]int {
	byDepth := map[int][]int{}
	for _, v := range nodes {
		byDepth[t.Depth(v)] = append(byDepth[t.Depth(v)], v)
	}
	depths := make([]int, 0, len(byDepth))
	for d := range byDepth {
		depths = append(depths, d)
	}
	sort.Ints(depths)
	waves := make([][]int, 0, len(depths))
	for _, d := range depths {
		waves = append(waves, byDepth[d])
	}
	return waves
}

// orphanCount sums the Orphaned gauge over live nodes; ok is false when the
// scrape returned nothing usable.
func orphanCount(p *cluster.ProcCluster) (int, bool) {
	sts, err := p.Stats()
	if err != nil {
		return 0, false
	}
	orphans, any := 0, false
	for _, st := range sts {
		if st != nil {
			any = true
			orphans += st.Orphaned
		}
	}
	return orphans, any
}

// swarmWhole reports whether every node is live, attached and orphan-free.
func swarmWhole(p *cluster.ProcCluster) bool {
	t := p.Tree()
	for v := 0; v < t.Len(); v++ {
		if p.NodeDead(v) {
			return false
		}
	}
	sts, err := p.Stats()
	if err != nil {
		return false
	}
	for v, st := range sts {
		if st == nil {
			return false // unreachable or mid-restart: not whole yet
		}
		if st.Orphaned != 0 {
			return false
		}
		if v != t.Root() && st.ParentID < 0 {
			return false
		}
	}
	return true
}
