package workload

// Shape tests for the swarm topology builder and its restart scheduler —
// pure tree math, no processes.

import (
	"testing"
)

func TestSwarmTreeShape(t *testing.T) {
	sp := SwarmSpec{Seed: 7}.WithDefaults()
	tr, err := SwarmTree(sp.Racks, sp.RackNodes, sp.RackDepth)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tr.Len(), 1+sp.Racks*sp.RackNodes; got != want {
		t.Fatalf("nodes %d, want %d (the headline swarm is 101 processes)", got, want)
	}
	if got, want := tr.Height(), sp.RackDepth+1; got != want {
		t.Fatalf("height %d, want %d (root + %d-deep spine)", got, want, sp.RackDepth)
	}
	// Every rack is a contiguous id range whose members never attach
	// outside the rack (except the head, which hangs off the root) — that
	// contiguity is what makes a whole-rack kill a single id interval.
	for r := 0; r < sp.Racks; r++ {
		nodes := SwarmRackNodes(sp, r)
		if len(nodes) != sp.RackNodes {
			t.Fatalf("rack %d has %d nodes, want %d", r, len(nodes), sp.RackNodes)
		}
		base := nodes[0]
		for i, v := range nodes {
			if v != base+i {
				t.Fatalf("rack %d not contiguous at index %d: %d", r, i, v)
			}
			parent := tr.Parent(v)
			if i == 0 {
				if parent != 0 {
					t.Fatalf("rack %d head %d hangs off %d, want root", r, v, parent)
				}
				continue
			}
			if parent < base || parent >= base+sp.RackNodes {
				t.Fatalf("rack %d node %d has out-of-rack parent %d", r, v, parent)
			}
			if parent >= v {
				t.Fatalf("node %d's parent %d is not an earlier id — restart order would break", v, parent)
			}
		}
	}
}

func TestSwarmTreeClampsShallowRacks(t *testing.T) {
	// A rack shallower than its spine is clamped, not an error.
	sp := SwarmSpec{Racks: 2, RackNodes: 3, RackDepth: 9}.WithDefaults()
	if sp.RackDepth != 3 {
		t.Fatalf("RackDepth %d, want clamped to RackNodes 3", sp.RackDepth)
	}
	tr, err := SwarmTree(sp.Racks, sp.RackNodes, sp.RackDepth)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Height(); got != 3 {
		t.Fatalf("height %d, want 3", got)
	}
}

func TestSwarmSpecDefaultsScaleDetector(t *testing.T) {
	big := SwarmSpec{}.WithDefaults() // 4×25 = 100 nodes
	if big.HeartbeatMS != 200 {
		t.Fatalf("big-swarm heartbeat %dms, want 200", big.HeartbeatMS)
	}
	small := SwarmSpec{Racks: 2, RackNodes: 8}.WithDefaults()
	if small.HeartbeatMS != 50 {
		t.Fatalf("small-swarm heartbeat %dms, want 50", small.HeartbeatMS)
	}
	if big.KillAt != big.Duration/3 || big.Downtime != big.Duration/4 {
		t.Fatalf("kill schedule %v/%v not derived from duration %v", big.KillAt, big.Downtime, big.Duration)
	}
}

func TestDepthWavesRestartOrder(t *testing.T) {
	sp := SwarmSpec{Seed: 1}.WithDefaults()
	tr, err := SwarmTree(sp.Racks, sp.RackNodes, sp.RackDepth)
	if err != nil {
		t.Fatal(err)
	}
	killed := SwarmRackNodes(sp, 2)
	waves := depthWaves(tr, killed)

	// Every killed node appears exactly once, and no node's parent sits in
	// a later (or the same) wave — within-wave restarts run in parallel, so
	// a same-wave parent would race its child's bring-up.
	wave := map[int]int{}
	total := 0
	for w, nodes := range waves {
		for _, v := range nodes {
			wave[v] = w
			total++
		}
	}
	if total != len(killed) {
		t.Fatalf("waves cover %d nodes, want %d", total, len(killed))
	}
	for _, v := range killed {
		p := tr.Parent(v)
		if pw, inKilled := wave[p]; inKilled && pw >= wave[v] {
			t.Fatalf("node %d (wave %d) restarts no later than its parent %d (wave %d)", v, wave[v], p, pw)
		}
	}
	// Waves are strictly shallowest-first.
	for w := 1; w < len(waves); w++ {
		if tr.Depth(waves[w][0]) <= tr.Depth(waves[w-1][0]) {
			t.Fatalf("wave %d depth %d not deeper than wave %d depth %d",
				w, tr.Depth(waves[w][0]), w-1, tr.Depth(waves[w-1][0]))
		}
	}
}
