package workload

import (
	"bytes"
	"testing"
	"time"
)

// smallSpec shrinks a scenario for test runtimes: fewer nodes and a lower
// rate, but the full virtual duration so time-phased perturbations (flash
// crowds, churn) still fire.
func smallSpec(t *testing.T, name string) Spec {
	t.Helper()
	sp, ok := Lookup(name)
	if !ok {
		t.Fatalf("unknown scenario %q", name)
	}
	sp.Nodes = 15
	sp.TotalRate = 120
	return sp
}

func reportBytes(t *testing.T, rep *Report) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := rep.WriteJSON(&b); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return b.Bytes()
}

func TestRunFastDeterministic(t *testing.T) {
	sp := smallSpec(t, "flash-crowd")
	r1, err := RunFast(sp, 9)
	if err != nil {
		t.Fatalf("RunFast: %v", err)
	}
	r2, err := RunFast(sp, 9)
	if err != nil {
		t.Fatalf("RunFast: %v", err)
	}
	a, b := reportBytes(t, r1), reportBytes(t, r2)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different reports")
	}
	r3, err := RunFast(sp, 10)
	if err != nil {
		t.Fatalf("RunFast: %v", err)
	}
	if bytes.Equal(a, reportBytes(t, r3)) {
		t.Fatal("different seeds produced identical reports")
	}
}

func TestRunFastReportShape(t *testing.T) {
	for _, name := range []string{"zipf-steady", "flash-crowd", "churn", "multi-doc-lru"} {
		name := name
		t.Run(name, func(t *testing.T) {
			rep, err := RunFast(smallSpec(t, name), 4)
			if err != nil {
				t.Fatalf("RunFast: %v", err)
			}
			if rep.Schema != Schema || rep.Mode != "fast" {
				t.Fatalf("bad header: %+v", rep)
			}
			ww := rep.System("webwave")
			if ww == nil {
				t.Fatal("no webwave system in report")
			}
			if ww.Served == 0 || ww.ThroughputRPS <= 0 {
				t.Fatalf("webwave served nothing: %+v", ww)
			}
			if ww.Latency.P50MS <= 0 || ww.Latency.P99MS < ww.Latency.P50MS {
				t.Fatalf("broken latency stats: %+v", ww.Latency)
			}
			if len(ww.Windows) == 0 {
				t.Fatal("no fairness windows")
			}
			for _, w := range ww.Windows {
				if w.Jain < 0 || w.Jain > 1 {
					t.Fatalf("Jain %v outside [0,1]", w.Jain)
				}
				if w.MaxOverMean < 1-1e-9 {
					t.Fatalf("MaxOverMean %v < 1", w.MaxOverMean)
				}
			}
			if rep.System("no-cache") == nil {
				t.Fatal("no no-cache baseline system")
			}
			if len(rep.Baselines) < 3 {
				t.Fatalf("want analytic baselines, got %d", len(rep.Baselines))
			}
			if name == "multi-doc-lru" && rep.System("path-lru") == nil {
				t.Fatal("multi-doc-lru should include the path-lru policy")
			}
			if name == "churn" {
				if rep.ChurnEvents == 0 {
					t.Fatal("churn scenario scheduled no events")
				}
				if ww.Failed == 0 {
					t.Fatal("churn run lost no requests — down nodes had no effect")
				}
			}
			if name == "flash-crowd" {
				// The flash must actually fire: windows inside the event
				// carry well above the pre-flash request rate.
				sp := rep.Spec
				var preMax, peak int64
				for _, w := range ww.Windows {
					switch {
					case w.End <= sp.Flash.Start:
						if w.Requests > preMax {
							preMax = w.Requests
						}
					case w.Start >= sp.Flash.Start+sp.Flash.Ramp &&
						w.End <= sp.Flash.Start+sp.Flash.Ramp+sp.Flash.Hold:
						if w.Requests > peak {
							peak = w.Requests
						}
					}
				}
				if peak < 3*preMax {
					t.Fatalf("flash never fired: peak window %d requests vs pre-flash max %d", peak, preMax)
				}
			}
		})
	}
}

// TestWebWaveBeatsNoCacheOnBalance is the benchmark's reason to exist: on
// the identical trace, WebWave's placement must spread load better (higher
// Jain, lower max/mean, fewer hops) than serving everything at the home.
func TestWebWaveBeatsNoCacheOnBalance(t *testing.T) {
	rep, err := RunFast(smallSpec(t, "zipf-steady"), 1)
	if err != nil {
		t.Fatalf("RunFast: %v", err)
	}
	ww, nc := rep.System("webwave"), rep.System("no-cache")
	if ww.MeanJain <= nc.MeanJain {
		t.Errorf("webwave Jain %.3f not better than no-cache %.3f", ww.MeanJain, nc.MeanJain)
	}
	if ww.WorstMaxOverMean >= nc.WorstMaxOverMean {
		t.Errorf("webwave max/mean %.2f not better than no-cache %.2f",
			ww.WorstMaxOverMean, nc.WorstMaxOverMean)
	}
	if ww.MeanHops >= nc.MeanHops {
		t.Errorf("webwave hops %.2f not better than no-cache %.2f", ww.MeanHops, nc.MeanHops)
	}
}

// TestRunLiveSmoke drives the real cluster through the gateway with a tiny
// compressed schedule.
func TestRunLiveSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live run needs wall-clock time")
	}
	sp := smallSpec(t, "zipf-steady")
	sp.Duration = 6
	sp.TotalRate = 60
	rep, err := RunLive(sp, 2, LiveOptions{
		Speedup: 8, Clients: 8,
		GossipPeriod:    10 * time.Millisecond,
		DiffusionPeriod: 20 * time.Millisecond,
		Window:          200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}
	sys := rep.System("webwave-live")
	if sys == nil {
		t.Fatal("no webwave-live system")
	}
	if sys.Served == 0 {
		t.Fatal("live run served nothing")
	}
	if sys.Failed > sys.Served/10 {
		t.Fatalf("live run failed %d of %d requests", sys.Failed, sys.Served+sys.Failed)
	}
	if len(sys.Nodes) != rep.Tree.Nodes {
		t.Fatalf("node scrape has %d entries, want %d", len(sys.Nodes), rep.Tree.Nodes)
	}
	var served int64
	for _, n := range sys.Nodes {
		served += n.Served
	}
	if served == 0 {
		t.Fatal("server counters report nothing served")
	}
}
