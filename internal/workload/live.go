package workload

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"webwave/internal/cachestore"
	"webwave/internal/cluster"
	"webwave/internal/core"
	"webwave/internal/gateway"
	"webwave/internal/trace"
	"webwave/internal/transport"
)

// originHeader carries the schedule's per-request entry node through the
// gateway.
const originHeader = "X-WebWave-Enter"

// LiveOptions tunes the live (wall-clock) runner.
type LiveOptions struct {
	// Speedup compresses the schedule: a request at schedule time T is
	// issued T/Speedup seconds after start. Default 10.
	Speedup float64
	// Clients is the number of concurrent HTTP workers. Default 16.
	Clients int
	// GossipPeriod / DiffusionPeriod / Window override the cluster's
	// protocol timers; defaults are fast (25/50/500 ms) so short
	// compressed runs still see diffusion happen.
	GossipPeriod    time.Duration
	DiffusionPeriod time.Duration
	Window          time.Duration
	// Transport selects the cluster's links: "" or "mem" is the in-process
	// memory network, "tcp" runs the tree over real loopback sockets (and
	// so through the wire codec).
	Transport string
	// WireVersion selects the TCP wire codec: 0/2 is the binary v2
	// protocol, 1 the legacy JSON framing. Ignored on the memory transport,
	// which passes envelopes by pointer.
	WireVersion int
	// NumShards is each server's doc-sharded event loop count (0 =
	// GOMAXPROCS); MaxBatch and QueueDepth tune the loops (0 = defaults).
	NumShards  int
	MaxBatch   int
	QueueDepth int
}

func (o LiveOptions) withDefaults() LiveOptions {
	if o.Speedup <= 0 {
		o.Speedup = 10
	}
	if o.Clients <= 0 {
		o.Clients = 16
	}
	if o.GossipPeriod <= 0 {
		o.GossipPeriod = 25 * time.Millisecond
	}
	if o.DiffusionPeriod <= 0 {
		o.DiffusionPeriod = 50 * time.Millisecond
	}
	if o.Window <= 0 {
		o.Window = 500 * time.Millisecond
	}
	return o
}

// respSink is the minimal ResponseWriter the load workers hand to the
// gateway: it keeps status and headers, discards the body.
type respSink struct {
	status int
	header http.Header
}

func (r *respSink) Header() http.Header { return r.header }

func (r *respSink) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return len(b), nil
}

func (r *respSink) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
}

func (r *respSink) statusCode() int {
	if r.status == 0 {
		return http.StatusOK
	}
	return r.status
}

// NodeStat is one live server's end-of-run scrape.
type NodeStat struct {
	Node          int     `json:"node"`
	Served        int64   `json:"served"`
	FastServed    int64   `json:"fast_served,omitempty"`
	Forwarded     int64   `json:"forwarded"`
	Coalesced     int64   `json:"coalesced,omitempty"`
	LoadRPS       float64 `json:"load_rps"`
	CachedDocs    int     `json:"cached_docs"`
	CacheBytes    int64   `json:"cache_bytes"`
	MaxCacheBytes int64   `json:"max_cache_bytes,omitempty"`
	EvictedDocs   int64   `json:"evicted_docs,omitempty"`
	EvictedBytes  int64   `json:"evicted_bytes,omitempty"`
	QueueLen      int     `json:"queue_len"`
	PendingLen    int     `json:"pending_len,omitempty"`
	Tunnels       int64   `json:"tunnels"`
}

// liveCacheResult aggregates the scraped per-node cache counters into the
// report's cache-pressure summary. The home node is excluded from budget
// accounting (its originals are pinned); HitRate is the share of serves
// that happened below it.
func liveCacheResult(sp Spec, policy string, root int, nodes []NodeStat) *CacheResult {
	cr := &CacheResult{
		Policy:      policy,
		BudgetBytes: sp.CacheBudgetBytes,
		DocBytes:    sp.DocBytes,
	}
	var total, below int64
	for _, ns := range nodes {
		total += ns.Served
		if ns.Node == root {
			continue
		}
		below += ns.Served
		cr.Evictions += ns.EvictedDocs
		cr.EvictedBytes += ns.EvictedBytes
		if ns.MaxCacheBytes > cr.MaxNodeBytes {
			cr.MaxNodeBytes = ns.MaxCacheBytes
		}
		if ns.MaxCacheBytes > sp.CacheBudgetBytes {
			cr.OverBudget = true
		}
	}
	if total > 0 {
		cr.HitRate = round6(float64(below) / float64(total))
	}
	return cr
}

// RunLive replays the scenario's schedule against a real cluster through
// the HTTP gateway over the in-memory transport. The same (spec, seed)
// yields the same tree and request trace as RunFast; latencies and the
// resulting report are wall-clock measurements and NOT deterministic.
func RunLive(sp Spec, seed int64, opt LiveOptions) (*Report, error) {
	sp = sp.WithDefaults()
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if sp.CacheCap > 0 {
		// CacheCap is the fluid simulator's copy-count knob; the live
		// server enforces byte budgets (CacheBudgetBytes) instead. Running
		// anyway would produce a report whose spec claims a cap that
		// wasn't enforced.
		return nil, fmt.Errorf("workload: live mode does not support cache_cap (scenario %q sets %d); use cache_budget_bytes or fast mode", sp.Name, sp.CacheCap)
	}
	opt = opt.withDefaults()
	t, err := BuildTree(sp, seed)
	if err != nil {
		return nil, fmt.Errorf("workload: tree: %w", err)
	}
	tr, err := Generate(sp, t, traceSeed(seed))
	if err != nil {
		return nil, err
	}

	docs := make(map[core.DocID][]byte, len(tr.DocWeights))
	for j := range tr.DocWeights {
		id := DocID(j)
		if sp.DocBytes > 0 {
			docs[id] = make([]byte, sp.DocBytes)
			copy(docs[id], id)
		} else {
			docs[id] = []byte("webwave live document " + string(id))
		}
	}
	evictPolicy, err := cachestore.ParsePolicy(sp.EvictPolicy)
	if err != nil {
		return nil, err
	}
	ccfg := cluster.Config{
		GossipPeriod:     opt.GossipPeriod,
		DiffusionPeriod:  opt.DiffusionPeriod,
		Window:           opt.Window,
		Tunneling:        sp.Tunneling,
		CacheBudgetBytes: sp.CacheBudgetBytes,
		CacheShards:      sp.CacheShards,
		EvictPolicy:      evictPolicy,
		NumShards:        opt.NumShards,
		MaxBatch:         opt.MaxBatch,
		QueueDepth:       opt.QueueDepth,
	}
	switch opt.Transport {
	case "", "mem":
		// cluster's default in-memory network.
	case "tcp":
		if len(tr.Churn) > 0 {
			return nil, fmt.Errorf("workload: scenario %q uses churn, which needs the memory transport's link faults; run it with Transport \"mem\"", sp.Name)
		}
		ccfg.Network = transport.TCPNetwork{Version: opt.WireVersion}
		ccfg.AddrFor = func(int) string { return "127.0.0.1:0" }
	default:
		return nil, fmt.Errorf("workload: unknown transport %q (want mem or tcp)", opt.Transport)
	}
	c, err := cluster.New(t, docs, ccfg)
	if err != nil {
		return nil, fmt.Errorf("workload: cluster: %w", err)
	}
	defer c.Stop()

	gw := gateway.New(c, gateway.Config{
		Origin: gateway.OriginFromHeader(originHeader, gateway.FixedOrigin(t.Root())),
	})
	defer gw.Close()

	col := NewCollector(t.Len(), sp.Window, sp.Duration)
	var colMu sync.Mutex

	// Churn: partition the victim's parent edge for the scheduled span.
	// Edges heal even if the run ends first; cluster.Stop tears all down.
	var churnWG sync.WaitGroup
	start := time.Now()
	for _, ev := range tr.Churn {
		ev := ev
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			due := start.Add(time.Duration(ev.Time / opt.Speedup * float64(time.Second)))
			if wait := time.Until(due); wait > 0 {
				time.Sleep(wait)
			}
			if ev.Down {
				c.PartitionEdge(ev.Node)
			} else {
				c.HealEdge(ev.Node)
			}
		}()
	}

	// Workers issue the schedule open-loop through the gateway. Latency is
	// measured from each request's *scheduled* wall time, not from when a
	// worker got around to it — when the cluster saturates and the worker
	// pool backs up, the queueing delay counts, instead of the schedule
	// silently degrading to closed-loop with rosy percentiles.
	type job struct {
		req trace.Request
		due time.Time
	}
	jobs := make(chan job, opt.Clients)
	var workWG sync.WaitGroup
	for w := 0; w < opt.Clients; w++ {
		workWG.Add(1)
		go func(id int) {
			defer workWG.Done()
			for jb := range jobs {
				httpReq, err := http.NewRequest("GET", "/docs/"+string(jb.req.Doc), nil)
				if err != nil {
					colMu.Lock()
					col.Record(jb.req.Time, -1, 0, 0, false)
					colMu.Unlock()
					continue
				}
				httpReq.Header.Set(originHeader, strconv.Itoa(jb.req.Origin))
				httpReq.RemoteAddr = fmt.Sprintf("10.0.%d.%d:999", id, jb.req.Origin)
				rec := &respSink{header: make(http.Header)}
				gw.ServeHTTP(rec, httpReq)
				lat := time.Since(jb.due).Seconds()
				servedBy, _ := strconv.Atoi(rec.header.Get("X-WebWave-Served-By"))
				hops, _ := strconv.Atoi(rec.header.Get("X-WebWave-Hops"))
				ok := rec.statusCode() == http.StatusOK
				colMu.Lock()
				if ok {
					col.Record(jb.req.Time, servedBy, hops, lat, true)
				} else {
					col.Record(jb.req.Time, -1, 0, 0, false)
				}
				colMu.Unlock()
			}
		}(w)
	}
	for i := range tr.Requests {
		req := tr.Requests[i]
		due := start.Add(time.Duration(req.Time / opt.Speedup * float64(time.Second)))
		if wait := time.Until(due); wait > 0 {
			time.Sleep(wait)
		}
		jobs <- job{req: req, due: due}
	}
	close(jobs)
	workWG.Wait()
	churnWG.Wait()

	rep := &Report{
		Schema: Schema, Scenario: sp.Name, Mode: "live", Seed: seed,
		Spec: sp, Tree: treeInfo(t),
		Requests:    int64(len(tr.Requests)),
		ChurnEvents: len(tr.Churn),
		OfferedRPS:  round6(float64(len(tr.Requests)) / sp.Duration),
	}
	sys := systemResult("webwave-live", col, sp.Duration)
	if sts, err := c.Stats(); err == nil {
		for _, st := range sts {
			if st == nil {
				continue
			}
			sys.Nodes = append(sys.Nodes, NodeStat{
				Node:          st.Node,
				Served:        st.Served,
				FastServed:    st.FastServed,
				Forwarded:     st.Forwarded,
				Coalesced:     st.Coalesced,
				LoadRPS:       round6(st.Load),
				CachedDocs:    len(st.CachedDocs),
				CacheBytes:    st.CacheBytes,
				MaxCacheBytes: st.MaxCacheBytes,
				EvictedDocs:   st.EvictedDocs,
				EvictedBytes:  st.EvictedBytes,
				QueueLen:      st.QueueLen,
				PendingLen:    st.PendingLen,
				Tunnels:       st.Tunnels,
			})
		}
		sort.Slice(sys.Nodes, func(i, j int) bool { return sys.Nodes[i].Node < sys.Nodes[j].Node })
		if sp.CacheBudgetBytes > 0 {
			sys.Cache = liveCacheResult(sp, string(evictPolicy), t.Root(), sys.Nodes)
		}
	}
	rep.Systems = append(rep.Systems, sys)
	rep.Baselines, err = analyticBaselines(t, tr, sp)
	if err != nil {
		return nil, err
	}
	return rep, nil
}
