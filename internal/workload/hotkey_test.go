package workload

import (
	"reflect"
	"testing"
)

// TestRunHotkeyDeterministic pins the property CI's byte-compare gate
// relies on: the same spec and seed produce an identical report.
func TestRunHotkeyDeterministic(t *testing.T) {
	sp := HotkeySpec{Seed: 7}
	a, err := RunHotkey(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunHotkey(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different reports:\n%+v\n%+v", a, b)
	}
}

// TestRunHotkeyModel checks the capacity model's shape: both widths face
// the identical offered trace; the single tree saturates at one server's
// capacity and never promotes; the forest promotes during the ramp, demotes
// after the decay, spreads the crowd (higher Jain) and scales throughput.
func TestRunHotkeyModel(t *testing.T) {
	rep, err := RunHotkey(HotkeySpec{Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	base, wide := rep.Run(1), rep.Run(3)
	if base == nil || wide == nil {
		t.Fatalf("default sweep missing k=1 or k=3: %+v", rep.Runs)
	}
	if base.Offered != wide.Offered {
		t.Fatalf("offered differs across widths: %d vs %d", base.Offered, wide.Offered)
	}
	if base.Promotions != 0 || base.Demotions != 0 {
		t.Fatalf("k=1 ran the promotion machinery: %+v", base)
	}
	if wide.Promotions < 1 || wide.Demotions < 1 {
		t.Fatalf("k=3 never completed a promote/demote round trip: %+v", wide)
	}
	if wide.PromotedAtS < 0 || wide.DemotedAtS <= wide.PromotedAtS {
		t.Fatalf("round trip out of order: promoted %.1fs, demoted %.1fs",
			wide.PromotedAtS, wide.DemotedAtS)
	}
	if len(wide.Roots) != 2 {
		t.Fatalf("k=3 forest has %d replica roots, want 2 (%v)", len(wide.Roots), wide.Roots)
	}
	if rep.ScalingX < 2 {
		t.Fatalf("forest scaling %.2fx < 2x", rep.ScalingX)
	}
	if wide.Jain <= base.Jain {
		t.Fatalf("forest jain %.3f did not improve on single-tree %.3f", wide.Jain, base.Jain)
	}
}
