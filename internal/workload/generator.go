package workload

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"webwave/internal/core"
	"webwave/internal/trace"
	"webwave/internal/tree"
)

func sin2pi(x float64) float64 { return math.Sin(2 * math.Pi * x) }

// Trace is a generated benchmark workload: a time-ordered open-loop request
// schedule plus the churn schedule and the stationary weights it was drawn
// from. Everything is a pure function of (Spec, tree, seed).
type Trace struct {
	Requests []trace.Request
	Churn    []ChurnEvent

	// NodeWeights[v] is node v's share of request originations (0 for
	// non-requesting nodes, e.g. the root and interior nodes when
	// LeavesOnly). DocWeights[j] is document j's stationary popularity.
	NodeWeights []float64
	DocWeights  []float64
}

// DocID returns the canonical document name for catalog index j, matching
// trace.ZipfDemand's naming so tooling can cross-reference.
func DocID(j int) core.DocID { return core.DocID(fmt.Sprintf("doc-%04d", j)) }

// docWeights builds the stationary popularity vector for the spec.
func docWeights(s Spec) []float64 {
	switch s.Popularity {
	case PopUniform:
		w := make([]float64, s.NumDocs)
		for j := range w {
			w[j] = 1 / float64(s.NumDocs)
		}
		return w
	case PopHotset:
		w := make([]float64, s.NumDocs)
		hot := s.HotsetSize
		if hot >= s.NumDocs {
			// Every document is "hot": the split degenerates to uniform.
			// Without this the weights would sum to HotsetShare < 1 and
			// skew both sampling and the demand matrix.
			for j := range w {
				w[j] = 1 / float64(s.NumDocs)
			}
			return w
		}
		for j := range w {
			if j < hot {
				w[j] = s.HotsetShare / float64(hot)
			} else {
				w[j] = (1 - s.HotsetShare) / float64(s.NumDocs-hot)
			}
		}
		return w
	default: // PopZipf
		return trace.ZipfWeights(s.NumDocs, s.ZipfSkew)
	}
}

// nodeWeights draws each requesting node's share of originations.
func nodeWeights(s Spec, t *tree.Tree, rng *rand.Rand) []float64 {
	w := make([]float64, t.Len())
	var requesters []int
	if s.LeavesOnly {
		requesters = t.Leaves()
	} else {
		for v := 0; v < t.Len(); v++ {
			if v != t.Root() { // the home server originates nothing
				requesters = append(requesters, v)
			}
		}
	}
	sum := 0.0
	for _, v := range requesters {
		w[v] = rng.Float64() + 0.05
		sum += w[v]
	}
	for v := range w {
		w[v] /= sum
	}
	return w
}

// sampleIndex draws an index from a normalized weight vector.
func sampleIndex(w []float64, rng *rand.Rand) int {
	u := rng.Float64()
	acc := 0.0
	for i, x := range w {
		acc += x
		if u < acc {
			return i
		}
	}
	// Float round-off: fall back to the last positive weight.
	for i := len(w) - 1; i >= 0; i-- {
		if w[i] > 0 {
			return i
		}
	}
	return 0
}

// onOffEnvelope precomputes a Pareto ON/OFF burst envelope over [0,
// horizon): ON intervals carry rate BurstFactor×nominal and occupy a
// 1/BurstFactor fraction of time in expectation, so the long-run mean rate
// is preserved. Returns the sorted ON interval starts and ends.
type onOffEnvelope struct {
	starts, ends []float64
	burst        float64
}

func newOnOffEnvelope(s Spec, rng *rand.Rand) *onOffEnvelope {
	if s.Arrival != ArrivalBursty {
		return nil
	}
	env := &onOffEnvelope{burst: s.BurstFactor}
	alpha := s.ParetoAlpha
	pareto := func(mean float64) float64 {
		// Pareto with tail index alpha and the given mean: scale =
		// mean·(alpha-1)/alpha.
		u := rng.Float64()
		if u <= 0 {
			u = 1e-12
		}
		return mean * (alpha - 1) / alpha / math.Pow(u, 1/alpha)
	}
	meanOn := 1.0 // seconds
	meanOff := meanOn * (s.BurstFactor - 1)
	t, on := 0.0, rng.Intn(2) == 0
	for t < s.Duration {
		if on {
			d := pareto(meanOn)
			env.starts = append(env.starts, t)
			env.ends = append(env.ends, math.Min(t+d, s.Duration))
			t += d
		} else {
			t += pareto(meanOff)
		}
		on = !on
	}
	return env
}

// factorAt returns the envelope's rate multiplier at time t (0 during OFF).
func (e *onOffEnvelope) factorAt(t float64) float64 {
	if e == nil {
		return 1
	}
	i := sort.SearchFloat64s(e.starts, t)
	// starts[i-1] <= t < starts[i]; ON iff t < ends[i-1].
	if i > 0 && t < e.ends[i-1] {
		return e.burst
	}
	return 0
}

// peak returns the envelope's maximum multiplier.
func (e *onOffEnvelope) peak() float64 {
	if e == nil {
		return 1
	}
	return e.burst
}

// Generate builds the request and churn schedules for a spec on a tree.
// The same (spec, tree, seed) always yields a byte-identical trace; see
// Trace.Canonical.
func Generate(s Spec, t *tree.Tree, seed int64) (*Trace, error) {
	s = s.WithDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if t.Len() != s.Nodes {
		return nil, fmt.Errorf("workload: tree has %d nodes, spec wants %d", t.Len(), s.Nodes)
	}
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{
		NodeWeights: nodeWeights(s, t, rng),
		DocWeights:  docWeights(s),
	}
	env := newOnOffEnvelope(s, rng)

	// Open-loop arrivals by thinning a homogeneous Poisson process at the
	// peak rate: candidate arrivals at rate λmax, each kept with
	// probability λ(t)/λmax. Exact for any bounded λ(t) and trivially
	// deterministic under a fixed seed.
	lambdaMax := s.TotalRate * s.peakRateFactor() * env.peak()
	now := 0.0
	for {
		now += rng.ExpFloat64() / lambdaMax
		if now >= s.Duration {
			break
		}
		shape := s.rateFactorAt(now)
		lambda := s.TotalRate * shape * env.factorAt(now)
		if rng.Float64()*lambdaMax >= lambda {
			continue
		}
		origin := sampleIndex(tr.NodeWeights, rng)
		// Flash surplus traffic targets the hot set: at multiplier f ≥ 1 a
		// (f-1)/f fraction of arrivals are flash-driven.
		var doc int
		if f := s.Flash.factorAt(now); f > 1 && rng.Float64() < (f-1)/f {
			doc = rng.Intn(s.Flash.HotDocs)
		} else {
			doc = sampleIndex(tr.DocWeights, rng)
		}
		tr.Requests = append(tr.Requests, trace.Request{
			Time: now, Origin: origin, Doc: DocID(doc),
		})
	}

	// Churn schedule: distinct non-root victims, down in the middle 80% of
	// the run, exponential downtimes.
	if c := s.Churn; c != nil && c.Events > 0 {
		perm := rng.Perm(t.Len())
		var victims []int
		for _, v := range perm {
			if v != t.Root() {
				victims = append(victims, v)
			}
			if len(victims) == c.Events {
				break
			}
		}
		mean := c.MeanDowntime
		if mean <= 0 {
			mean = s.Duration / 10
		}
		for _, v := range victims {
			down := s.Duration * (0.1 + 0.7*rng.Float64())
			up := down + rng.ExpFloat64()*mean
			tr.Churn = append(tr.Churn, ChurnEvent{Time: down, Node: v, Down: true})
			if up < s.Duration {
				tr.Churn = append(tr.Churn, ChurnEvent{Time: up, Node: v, Down: false})
			}
		}
		sort.Slice(tr.Churn, func(i, j int) bool {
			a, b := tr.Churn[i], tr.Churn[j]
			if a.Time != b.Time {
				return a.Time < b.Time
			}
			return a.Node < b.Node
		})
	}
	return tr, nil
}

// Canonical renders the trace in a stable text form, for byte-level
// determinism checks and offline diffing.
func (tr *Trace) Canonical() []byte {
	var b bytes.Buffer
	for _, r := range tr.Requests {
		fmt.Fprintf(&b, "req %.9f %d %s\n", r.Time, r.Origin, r.Doc)
	}
	for _, c := range tr.Churn {
		state := "up"
		if c.Down {
			state = "down"
		}
		fmt.Fprintf(&b, "churn %.9f %d %s\n", c.Time, c.Node, state)
	}
	return b.Bytes()
}

// MeanDemand returns E, the stationary per-node request-rate vector implied
// by the spec's total rate and the trace's node weights — the demand vector
// the analytic baselines evaluate.
func (tr *Trace) MeanDemand(totalRate float64) core.Vector {
	out := make(core.Vector, len(tr.NodeWeights))
	for v, w := range tr.NodeWeights {
		out[v] = totalRate * w
	}
	return out
}

// DemandMatrix returns the per-(node, document) stationary rate matrix the
// protocol simulator diffuses against.
func (tr *Trace) DemandMatrix(totalRate float64) [][]float64 {
	out := make([][]float64, len(tr.NodeWeights))
	for v := range out {
		out[v] = make([]float64, len(tr.DocWeights))
		for j := range out[v] {
			out[v][j] = totalRate * tr.NodeWeights[v] * tr.DocWeights[j]
		}
	}
	return out
}
