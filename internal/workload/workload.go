// Package workload is the benchmark subsystem of the WebWave reproduction:
// an open-loop, fully seeded workload generator (Zipf / uniform / hot-set
// document popularity, Poisson and Pareto-burst arrivals, flash-crowd
// ramps, diurnal rate shifts, node-churn schedules), a windowed metrics
// pipeline (latency histograms, per-node load vectors, Jain's fairness
// index, max/mean imbalance per sliding window), and two scenario runners:
//
//   - RunFast replays a scenario in virtual time on the discrete-event
//     engine (internal/sim) against the document-level protocol simulator
//     (internal/docwave), producing a bit-for-bit deterministic report —
//     the mode CI regressions are judged by.
//
//   - RunLive replays the same schedule in compressed wall-clock time
//     against a live cluster (internal/cluster) through the HTTP gateway
//     (internal/gateway), exercising the real servers, transport and
//     packet filters.
//
// Both emit the same machine-readable Report comparing WebWave against the
// comparison policies simulated on the identical request trace, plus the
// analytic capacity models of internal/baseline.
package workload

import (
	"fmt"

	"webwave/internal/cachestore"
)

// Popularity selects the document-popularity model.
type Popularity string

// Popularity models.
const (
	// PopZipf ranks documents by 1/rank^skew — the classic web popularity
	// model (s ≈ 1).
	PopZipf Popularity = "zipf"
	// PopUniform gives every document identical popularity.
	PopUniform Popularity = "uniform"
	// PopHotset gives HotsetSize documents a combined HotsetShare of the
	// traffic, uniformly, and spreads the remainder over the rest.
	PopHotset Popularity = "hotset"
)

// Arrival selects the request arrival process.
type Arrival string

// Arrival processes.
const (
	// ArrivalPoisson is memoryless open-loop arrivals at the nominal rate.
	ArrivalPoisson Arrival = "poisson"
	// ArrivalBursty modulates Poisson arrivals with a Pareto ON/OFF
	// envelope (heavy-tailed burst and silence periods, Crovella &
	// Bestavros style): ON with rate BurstFactor·λ for a 1/BurstFactor
	// fraction of time, preserving the long-run mean.
	ArrivalBursty Arrival = "bursty"
)

// FlashCrowd describes a hot-document flash event: between Start and
// Start+Ramp the aggregate rate climbs linearly to Factor×nominal, holds
// for Hold, then decays linearly over Decay. All the surplus traffic
// targets the HotDocs most popular documents.
type FlashCrowd struct {
	Start   float64 `json:"start"`    // seconds into the run
	Ramp    float64 `json:"ramp"`     // ramp-up duration, seconds
	Hold    float64 `json:"hold"`     // plateau duration, seconds
	Decay   float64 `json:"decay"`    // ramp-down duration, seconds
	Factor  float64 `json:"factor"`   // peak rate multiplier (≥ 1)
	HotDocs int     `json:"hot_docs"` // size of the flash document set
}

// factorAt returns the rate multiplier at time t (1 outside the event).
func (f *FlashCrowd) factorAt(t float64) float64 {
	if f == nil || f.Factor <= 1 {
		return 1
	}
	switch {
	case t < f.Start:
		return 1
	case t < f.Start+f.Ramp:
		return 1 + (f.Factor-1)*(t-f.Start)/f.Ramp
	case t < f.Start+f.Ramp+f.Hold:
		return f.Factor
	case t < f.Start+f.Ramp+f.Hold+f.Decay:
		return f.Factor - (f.Factor-1)*(t-f.Start-f.Ramp-f.Hold)/f.Decay
	default:
		return 1
	}
}

// Diurnal modulates the aggregate rate sinusoidally: rate(t) = nominal ×
// (1 + Amplitude·sin(2πt/Period)), modelling day/night demand shifts
// compressed into the run.
type Diurnal struct {
	Period    float64 `json:"period"`    // seconds per cycle
	Amplitude float64 `json:"amplitude"` // relative swing in [0, 1)
}

// factorAt returns the rate multiplier at time t.
func (d *Diurnal) factorAt(t float64) float64 {
	if d == nil || d.Amplitude <= 0 || d.Period <= 0 {
		return 1
	}
	return 1 + d.Amplitude*sin2pi(t/d.Period)
}

// ChurnSpec asks the generator for a node-churn schedule: Events nodes
// (non-root, distinct) go down at random times in the middle 80% of the
// run and come back after an exponential downtime of mean MeanDowntime.
type ChurnSpec struct {
	Events       int     `json:"events"`
	MeanDowntime float64 `json:"mean_downtime"` // seconds
}

// ChurnEvent is one scheduled node state flip.
type ChurnEvent struct {
	Time float64 `json:"time"`
	Node int     `json:"node"`
	Down bool    `json:"down"`
}

// Spec fully describes a benchmark scenario. The zero value is not usable;
// obtain specs from Lookup/Scenarios or fill the fields and let
// WithDefaults complete the rest.
type Spec struct {
	Name string `json:"name"`

	// Topology.
	Nodes       int `json:"nodes"`        // routing-tree size
	MaxChildren int `json:"max_children"` // branching bound for the random tree

	// Document catalog and popularity.
	NumDocs     int        `json:"num_docs"`
	Popularity  Popularity `json:"popularity"`
	ZipfSkew    float64    `json:"zipf_skew,omitempty"`
	HotsetSize  int        `json:"hotset_size,omitempty"`
	HotsetShare float64    `json:"hotset_share,omitempty"`

	// Demand.
	TotalRate   float64 `json:"total_rate"` // aggregate requests/second
	Duration    float64 `json:"duration"`   // seconds of schedule
	Arrival     Arrival `json:"arrival"`
	BurstFactor float64 `json:"burst_factor,omitempty"` // bursty: ON-rate multiplier
	ParetoAlpha float64 `json:"pareto_alpha,omitempty"` // bursty: tail index
	LeavesOnly  bool    `json:"leaves_only"`            // only leaves originate requests

	// Perturbations.
	Flash   *FlashCrowd `json:"flash,omitempty"`
	Diurnal *Diurnal    `json:"diurnal,omitempty"`
	Churn   *ChurnSpec  `json:"churn,omitempty"`

	// Protocol knobs.
	CacheCap        int  `json:"cache_cap,omitempty"` // per-node copy bound (0 = unlimited)
	Tunneling       bool `json:"tunneling"`
	RoundsPerWindow int  `json:"rounds_per_window"` // protocol rounds per metrics window

	// Cache capacity model (byte-budgeted stores). When CacheBudgetBytes
	// is set, every non-home node runs a byte-budgeted cachestore and the
	// fast runner compares eviction policies on the identical trace; the
	// live runner plumbs the budget into the real servers.
	CacheBudgetBytes int64  `json:"cache_budget_bytes,omitempty"` // per node, 0 = unlimited
	DocBytes         int    `json:"doc_bytes,omitempty"`          // body size per document (default 4096)
	CacheShards      int    `json:"cache_shards,omitempty"`       // store stripes (default 1 in fast mode)
	EvictPolicy      string `json:"evict_policy,omitempty"`       // lru | heat | gdsf (live mode / single-policy runs)

	// Service/latency model (fast-forward mode).
	HopDelay     float64 `json:"hop_delay"`     // one-way per-edge delay, seconds
	ServiceTime  float64 `json:"service_time"`  // unloaded per-request service time, seconds
	NodeCapacity float64 `json:"node_capacity"` // requests/second per server

	// Metrics.
	Window float64 `json:"window"` // metrics window length, seconds
}

// WithDefaults fills unset fields with workable defaults.
func (s Spec) WithDefaults() Spec {
	if s.Nodes <= 0 {
		s.Nodes = 31
	}
	if s.MaxChildren <= 0 {
		s.MaxChildren = 3
	}
	if s.NumDocs <= 0 {
		s.NumDocs = 64
	}
	if s.Popularity == "" {
		s.Popularity = PopZipf
	}
	if s.Popularity == PopZipf && s.ZipfSkew <= 0 {
		s.ZipfSkew = 1.0
	}
	if s.Popularity == PopHotset {
		if s.HotsetSize <= 0 {
			s.HotsetSize = 4
		}
		if s.HotsetShare <= 0 || s.HotsetShare >= 1 {
			s.HotsetShare = 0.8
		}
	}
	if s.TotalRate <= 0 {
		s.TotalRate = 200
	}
	if s.Duration <= 0 {
		s.Duration = 30
	}
	if s.Arrival == "" {
		s.Arrival = ArrivalPoisson
	}
	if s.Arrival == ArrivalBursty {
		if s.BurstFactor < 1 {
			s.BurstFactor = 4
		}
		if s.ParetoAlpha <= 1 {
			s.ParetoAlpha = 1.5
		}
	}
	if s.RoundsPerWindow <= 0 {
		s.RoundsPerWindow = 4
	}
	if s.CacheBudgetBytes > 0 {
		if s.DocBytes <= 0 {
			s.DocBytes = 4096
		}
		if s.CacheShards <= 0 {
			// One stripe keeps the whole budget in a single segment, so the
			// per-node byte bound is exact regardless of doc-to-shard
			// hashing; live clusters may raise it for lock spreading.
			s.CacheShards = 1
		}
	}
	if s.HopDelay <= 0 {
		s.HopDelay = 0.005
	}
	if s.ServiceTime <= 0 {
		s.ServiceTime = 0.002
	}
	if s.NodeCapacity <= 0 {
		s.NodeCapacity = 500
	}
	if s.Window <= 0 {
		s.Window = 2
	}
	return s
}

// Validate rejects specs the generator cannot honor. Call on a spec that
// already has defaults applied.
func (s Spec) Validate() error {
	if s.Nodes < 2 {
		return fmt.Errorf("workload: need at least 2 nodes, got %d", s.Nodes)
	}
	switch s.Popularity {
	case PopZipf, PopUniform, PopHotset:
	default:
		return fmt.Errorf("workload: unknown popularity %q", s.Popularity)
	}
	switch s.Arrival {
	case ArrivalPoisson, ArrivalBursty:
	default:
		return fmt.Errorf("workload: unknown arrival %q", s.Arrival)
	}
	if s.Flash != nil {
		f := s.Flash
		if f.Factor < 1 {
			return fmt.Errorf("workload: flash factor %v < 1", f.Factor)
		}
		if f.Ramp <= 0 || f.Decay <= 0 {
			return fmt.Errorf("workload: flash ramp/decay must be positive")
		}
		if f.HotDocs < 1 || f.HotDocs > s.NumDocs {
			return fmt.Errorf("workload: flash hot_docs %d outside [1, %d]", f.HotDocs, s.NumDocs)
		}
		if f.Start >= s.Duration {
			return fmt.Errorf("workload: flash starts at %vs but the run ends at %vs", f.Start, s.Duration)
		}
	}
	if s.Diurnal != nil && (s.Diurnal.Amplitude < 0 || s.Diurnal.Amplitude >= 1) {
		return fmt.Errorf("workload: diurnal amplitude %v outside [0, 1)", s.Diurnal.Amplitude)
	}
	if s.Churn != nil && s.Churn.Events >= s.Nodes {
		return fmt.Errorf("workload: churn events %d >= nodes %d", s.Churn.Events, s.Nodes)
	}
	if s.HotsetSize > s.NumDocs {
		return fmt.Errorf("workload: hotset size %d > num docs %d", s.HotsetSize, s.NumDocs)
	}
	if s.CacheBudgetBytes > 0 {
		if _, err := cachestore.ParsePolicy(s.EvictPolicy); err != nil {
			return err
		}
		shards := int64(s.CacheShards)
		if shards <= 0 {
			shards = 1 // tolerate un-defaulted specs instead of dividing by zero
		}
		if int64(s.DocBytes) > s.CacheBudgetBytes/shards {
			return fmt.Errorf("workload: doc_bytes %d exceeds the per-shard budget %d (budget %d / %d shards); no document would fit",
				s.DocBytes, s.CacheBudgetBytes/shards, s.CacheBudgetBytes, shards)
		}
	}
	if s.Window > s.Duration {
		return fmt.Errorf("workload: window %v > duration %v", s.Window, s.Duration)
	}
	return nil
}

// rateFactorAt is the combined time-varying rate multiplier at time t.
func (s *Spec) rateFactorAt(t float64) float64 {
	return s.Flash.factorAt(t) * s.Diurnal.factorAt(t)
}

// peakRateFactor bounds rateFactorAt over the whole run (for thinning).
func (s *Spec) peakRateFactor() float64 {
	peak := 1.0
	if s.Flash != nil && s.Flash.Factor > peak {
		peak = s.Flash.Factor
	}
	if s.Diurnal != nil {
		peak *= 1 + s.Diurnal.Amplitude
	}
	return peak
}
