package workload

// Core-scaling scenario: how far does one node's serving rate climb as the
// process gets more cores? The same tree, documents and closed-loop client
// pressure are driven over real TCP loopback sockets once per GOMAXPROCS
// setting, with each server's shard-loop count following the core count.
// The report records sustained responses/second, per-core throughput and
// scaling efficiency, Jain fairness of the per-node serve counts, and the
// below-home hit rate — so a scheduler or shard regression shows up as a
// bent curve, not an anecdote. Wall-clock measurement: NOT deterministic.

import (
	"fmt"
	"runtime"

	"webwave/internal/transport"
)

// ScalingSpec parameterizes the core-scaling scenario.
type ScalingSpec struct {
	Seed      int64   `json:"seed"`
	Nodes     int     `json:"nodes"`      // tree size; default 15
	Clients   int     `json:"clients"`    // closed-loop injector connections; default 16
	NumDocs   int     `json:"num_docs"`   // catalog size; default 32
	BodyBytes int     `json:"body_bytes"` // document body size; default 1024
	ZipfSkew  float64 `json:"zipf_skew"`  // popularity skew; default 1.0
	Duration  float64 `json:"duration_s"` // measured seconds per core count; default 3
	Procs     []int   `json:"procs"`      // GOMAXPROCS sweep; default 1,2,4,8
	// Repeat runs the whole sweep this many times (default 1) and keeps,
	// per core count, the run with the lowest within-sweep efficiency (for
	// the sweep base: the lowest throughput). Baselines are regenerated
	// with Repeat 3 so one noisy wall-clock run cannot commit an outlier
	// bar for the CI gate.
	Repeat int `json:"repeat,omitempty"`
}

// WithDefaults fills unset fields.
func (s ScalingSpec) WithDefaults() ScalingSpec {
	if s.Nodes <= 0 {
		s.Nodes = 15
	}
	if s.Clients <= 0 {
		// Matches cmd/webwave-bench's -clients default and the committed
		// bench/BENCH_scaling_baseline.json spec, which benchgate requires
		// to agree before comparing curves.
		s.Clients = 16
	}
	if s.NumDocs <= 0 {
		s.NumDocs = 32
	}
	if s.BodyBytes <= 0 {
		s.BodyBytes = 1024
	}
	if s.ZipfSkew <= 0 {
		s.ZipfSkew = 1.0
	}
	if s.Duration <= 0 {
		s.Duration = 3
	}
	if len(s.Procs) == 0 {
		s.Procs = []int{1, 2, 4, 8}
	}
	if s.Repeat <= 0 {
		s.Repeat = 1
	}
	return s
}

// ScalingRun is one GOMAXPROCS setting's measurement.
type ScalingRun struct {
	Procs         int     `json:"procs"`
	Shards        int     `json:"shards"` // per-server shard loops (== Procs)
	Responses     int64   `json:"responses"`
	ThroughputRPS float64 `json:"throughput_rps"`
	PerCoreRPS    float64 `json:"per_core_rps"`
	// Efficiency is PerCoreRPS over the sweep's 1-proc throughput — 1.0 is
	// perfect linear scaling. This self-normalized figure is what the CI
	// gate compares, so baselines survive hardware changes.
	Efficiency   float64 `json:"efficiency"`
	Jain         float64 `json:"jain"`
	HitRate      float64 `json:"hit_rate"` // share of serves below the home server
	MeanHops     float64 `json:"mean_hops"`
	ServingNodes int     `json:"serving_nodes"`
	FastServed   int64   `json:"fast_served"`
	Forwarded    int64   `json:"forwarded"`
	Coalesced    int64   `json:"coalesced"`
}

// ScalingReport is the core-scaling JSON document.
type ScalingReport struct {
	Schema   string      `json:"schema"`
	Scenario string      `json:"scenario"`
	Spec     ScalingSpec `json:"spec"`
	// HostProcs is runtime.NumCPU() at run time: sweep points beyond it
	// measure oversubscription, not scaling, and readers (and the gate's
	// users) should judge the curve accordingly.
	HostProcs         int          `json:"host_procs"`
	Runs              []ScalingRun `json:"runs"`
	SpeedupMaxOverOne float64      `json:"speedup_max_over_one"`
}

// ScalingSchema identifies core-scaling reports.
const ScalingSchema = "webwave-core-scaling/v1"

// Run returns the sweep entry for the given proc count, or nil.
func (r *ScalingReport) Run(procs int) *ScalingRun {
	for i := range r.Runs {
		if r.Runs[i].Procs == procs {
			return &r.Runs[i]
		}
	}
	return nil
}

// RunCoreScaling executes the sweep. GOMAXPROCS is set per run and restored
// before returning; the log callback (may be nil) receives one line per run.
func RunCoreScaling(sp ScalingSpec, logf func(format string, args ...any)) (*ScalingReport, error) {
	sp = sp.WithDefaults()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	rep := &ScalingReport{
		Schema: ScalingSchema, Scenario: "core-scaling",
		Spec: sp, HostProcs: runtime.NumCPU(),
	}
	// One or more full sweeps; each sweep's efficiency curve is computed
	// against its own base run (mixing bases across sweeps would pair
	// unrelated measurements).
	sweeps := make([][]ScalingRun, 0, sp.Repeat)
	for rpt := 0; rpt < sp.Repeat; rpt++ {
		var sweep []ScalingRun
		for _, procs := range sp.Procs {
			if procs <= 0 {
				return nil, fmt.Errorf("workload: invalid proc count %d", procs)
			}
			runtime.GOMAXPROCS(procs)
			run, err := scalingRunOnce(sp, procs)
			if err != nil {
				return nil, fmt.Errorf("core-scaling procs=%d: %w", procs, err)
			}
			sweep = append(sweep, run)
			logf("  procs=%d: %9.0f req/s (%6.0f/core, jain %.3f, hit %.3f, fast-served %d)",
				procs, run.ThroughputRPS, run.PerCoreRPS, run.Jain, run.HitRate, run.FastServed)
		}
		if base := sweep[0]; base.ThroughputRPS > 0 {
			for i := range sweep {
				sweep[i].Efficiency = round6(sweep[i].PerCoreRPS * float64(base.Procs) / base.ThroughputRPS)
			}
		}
		sweeps = append(sweeps, sweep)
	}
	// Conservative selection per core count: the lowest efficiency seen
	// (for the base: the lowest throughput). A baseline built this way is a
	// floor real hardware and healthy code always clear.
	for i := range sp.Procs {
		best := sweeps[0][i]
		for _, sweep := range sweeps[1:] {
			if i == 0 {
				if sweep[i].ThroughputRPS < best.ThroughputRPS {
					best = sweep[i]
				}
			} else if sweep[i].Efficiency < best.Efficiency {
				best = sweep[i]
			}
		}
		rep.Runs = append(rep.Runs, best)
	}
	// Headline speedup is per-sweep (each high-proc run over its OWN base)
	// and, across repeats, the minimum — mixing one sweep's peak with
	// another sweep's low base would inflate the figure the acceptance
	// criterion is judged on.
	for si, sweep := range sweeps {
		best := 0.0
		if base := sweep[0]; base.ThroughputRPS > 0 {
			for _, r := range sweep {
				if s := r.ThroughputRPS / base.ThroughputRPS; s > best {
					best = s
				}
			}
		}
		if si == 0 || best < rep.SpeedupMaxOverOne {
			rep.SpeedupMaxOverOne = round6(best)
		}
	}
	return rep, nil
}

// scalingRunOnce drives the shared closed-loop harness against a fresh TCP
// cluster with procs shard loops per server.
func scalingRunOnce(sp ScalingSpec, procs int) (ScalingRun, error) {
	res, err := RunClosedLoop(ClosedLoopSpec{
		Seed: sp.Seed, Nodes: sp.Nodes, Clients: sp.Clients,
		NumDocs: sp.NumDocs, BodyBytes: sp.BodyBytes, ZipfSkew: sp.ZipfSkew,
		Duration:  sp.Duration,
		Network:   transport.TCPNetwork{},
		NumShards: procs,
	})
	if err != nil {
		return ScalingRun{}, err
	}
	return ScalingRun{
		Procs: procs, Shards: procs,
		Responses:     res.Responses,
		ThroughputRPS: res.ThroughputRPS,
		PerCoreRPS:    round6(res.ThroughputRPS / float64(procs)),
		Jain:          res.Jain,
		HitRate:       res.HitRate,
		MeanHops:      res.MeanHops,
		ServingNodes:  res.ServingNodes,
		FastServed:    res.FastServed,
		Forwarded:     res.Forwarded,
		Coalesced:     res.Coalesced,
	}, nil
}
