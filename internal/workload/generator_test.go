package workload

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"webwave/internal/trace"
)

func genTrace(t *testing.T, sp Spec, seed int64) *Trace {
	t.Helper()
	sp = sp.WithDefaults()
	tr, err := BuildTree(sp, seed)
	if err != nil {
		t.Fatalf("BuildTree: %v", err)
	}
	w, err := Generate(sp, tr, seed)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return w
}

func TestTraceDeterministic(t *testing.T) {
	for _, sp := range Scenarios() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			a := genTrace(t, sp, 42).Canonical()
			b := genTrace(t, sp, 42).Canonical()
			if !bytes.Equal(a, b) {
				t.Fatalf("same seed produced different traces (%d vs %d bytes)", len(a), len(b))
			}
			c := genTrace(t, sp, 43).Canonical()
			if bytes.Equal(a, c) {
				t.Fatal("different seeds produced identical traces")
			}
		})
	}
}

func TestTraceOrderedAndInRange(t *testing.T) {
	sp, _ := Lookup("churn")
	w := genTrace(t, sp, 7)
	spd := sp.WithDefaults()
	if len(w.Requests) == 0 {
		t.Fatal("empty trace")
	}
	prev := 0.0
	for i, r := range w.Requests {
		if r.Time < prev {
			t.Fatalf("request %d out of order: %v < %v", i, r.Time, prev)
		}
		prev = r.Time
		if r.Time < 0 || r.Time >= spd.Duration {
			t.Fatalf("request %d time %v outside [0, %v)", i, r.Time, spd.Duration)
		}
		if r.Origin < 0 || r.Origin >= spd.Nodes {
			t.Fatalf("request %d origin %d out of range", i, r.Origin)
		}
	}
	prev = 0.0
	for i, ev := range w.Churn {
		if ev.Time < prev {
			t.Fatalf("churn %d out of order", i)
		}
		prev = ev.Time
	}
	if len(w.Churn) == 0 {
		t.Fatal("churn scenario generated no churn events")
	}
}

// TestZipfEmpiricalFrequencies checks the generated trace's document
// frequencies track the Zipf weights it was drawn from.
func TestZipfEmpiricalFrequencies(t *testing.T) {
	sp := Spec{
		Name: "zipf-test", Nodes: 15, NumDocs: 32,
		Popularity: PopZipf, ZipfSkew: 1.0,
		TotalRate: 2000, Duration: 30, Arrival: ArrivalPoisson,
	}.WithDefaults()
	w := genTrace(t, sp, 11)
	if len(w.Requests) < 20000 {
		t.Fatalf("want a large sample, got %d requests", len(w.Requests))
	}
	counts := make([]float64, sp.NumDocs)
	for _, r := range w.Requests {
		var j int
		if _, err := fmt.Sscanf(string(r.Doc), "doc-%d", &j); err != nil {
			t.Fatalf("bad doc id %q: %v", r.Doc, err)
		}
		counts[j]++
	}
	want := trace.ZipfWeights(sp.NumDocs, sp.ZipfSkew)
	n := float64(len(w.Requests))
	// The five head documents carry enough mass for tight relative bounds.
	for j := 0; j < 5; j++ {
		got := counts[j] / n
		if math.Abs(got-want[j]) > 0.25*want[j] {
			t.Errorf("doc %d empirical frequency %.4f, want %.4f ± 25%%", j, got, want[j])
		}
	}
	// Head-heavier than uniform: top 10% of docs should carry > 40% of
	// requests at skew 1.
	var head float64
	for j := 0; j < sp.NumDocs/10+1; j++ {
		head += counts[j]
	}
	if head/n < 0.4 {
		t.Errorf("Zipf head mass %.3f, want > 0.4", head/n)
	}
}

func TestFlashCrowdRampsRate(t *testing.T) {
	sp := Spec{
		Name: "flash-test", Nodes: 15, NumDocs: 16,
		Popularity: PopZipf, TotalRate: 500, Duration: 30,
		Flash: &FlashCrowd{Start: 10, Ramp: 2, Hold: 8, Decay: 2, Factor: 6, HotDocs: 2},
	}.WithDefaults()
	w := genTrace(t, sp, 5)
	var before, during float64
	hotDuring := 0.0
	for _, r := range w.Requests {
		switch {
		case r.Time < 10:
			before++
		case r.Time >= 12 && r.Time < 20:
			during++
			if r.Doc == DocID(0) || r.Doc == DocID(1) {
				hotDuring++
			}
		}
	}
	beforeRate := before / 10
	duringRate := during / 8
	if duringRate < 4*beforeRate {
		t.Errorf("flash rate %.1f req/s, want ≥ 4× base %.1f", duringRate, beforeRate)
	}
	if hotDuring/during < 0.7 {
		t.Errorf("hot-set share during flash %.2f, want > 0.7", hotDuring/during)
	}
}

func TestHotsetWeights(t *testing.T) {
	sp := Spec{
		Nodes: 7, NumDocs: 20, Popularity: PopHotset,
		HotsetSize: 4, HotsetShare: 0.8,
	}.WithDefaults()
	w := docWeights(sp)
	var hot, cold float64
	for j, x := range w {
		if j < 4 {
			hot += x
		} else {
			cold += x
		}
	}
	if math.Abs(hot-0.8) > 1e-9 || math.Abs(cold-0.2) > 1e-9 {
		t.Fatalf("hotset split %.3f/%.3f, want 0.8/0.2", hot, cold)
	}
}

// TestDocWeightsNormalized guards the invariant every consumer (sampling,
// demand matrices) relies on: weights sum to 1, including the degenerate
// all-hot case where the hotset split would otherwise sum to HotsetShare.
func TestDocWeightsNormalized(t *testing.T) {
	specs := []Spec{
		{Nodes: 7, NumDocs: 20, Popularity: PopZipf, ZipfSkew: 1.2},
		{Nodes: 7, NumDocs: 20, Popularity: PopUniform},
		{Nodes: 7, NumDocs: 20, Popularity: PopHotset, HotsetSize: 4, HotsetShare: 0.8},
		{Nodes: 7, NumDocs: 8, Popularity: PopHotset, HotsetSize: 8, HotsetShare: 0.8},
	}
	for _, sp := range specs {
		sp := sp.WithDefaults()
		sum := 0.0
		for _, x := range docWeights(sp) {
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s/%d-of-%d weights sum to %v, want 1", sp.Popularity, sp.HotsetSize, sp.NumDocs, sum)
		}
	}
}
