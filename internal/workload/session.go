package workload

// Read-my-writes session scenario: does the session token actually buy the
// guarantee, and what does its absence cost?
//
// The scenario replays the identical seeded write-then-read-elsewhere
// schedule twice against a warm two-level star. Each round, one session
// republishes a document and immediately reads it back through leaves of a
// DIFFERENT subtree — the adversarial placement: the reader's side of the
// tree still holds the pre-write copy until the invalidation diffuses, so a
// bare read is served stale. The first pass rides the session token on the
// wire (the envelope's MinVersion), the second strips it; the client-side
// violation detector runs in both. The gated figures are the violation
// counts: zero with tokens (the guarantee holds end to end, through version
// gating, lease single-flight, and root parking), strictly positive without
// them (the schedule genuinely provokes the races the tokens close — a
// zero here means the harness went soft, not that the system got better).
//
// This is a wall-clock live-cluster measurement (NOT deterministic); the CI
// gate (benchgate -session-report) applies the zero/nonzero checks, not
// byte equality.

import (
	"fmt"
	"math/rand"
	"time"

	"webwave/internal/cluster"
	"webwave/internal/core"
)

// SessionSchema identifies session-scenario reports.
const SessionSchema = "webwave-session/v1"

// SessionSpec parameterizes the session scenario.
type SessionSpec struct {
	Seed int64 `json:"seed"`
	// The tree is the storm scenario's two-level star, so "a different
	// subtree" is a literal disjoint branch, not a property of a random
	// shape.
	Subtrees  int `json:"subtrees"`   // default 3
	LeavesPer int `json:"leaves_per"` // default 4

	Docs   int `json:"docs"`   // catalog size; default 4
	Rounds int `json:"rounds"` // write-then-read rounds per pass; default 40
	// ReadsPerWrite session reads injected per round, spread over the
	// reader subtree's leaves. Default 6.
	ReadsPerWrite int `json:"reads_per_write"`
	// WarmSeconds bounds the warm-up flash that spreads copies below the
	// root before the first write. Default 8.
	WarmSeconds float64 `json:"warm_seconds"`
}

// WithDefaults fills unset fields.
func (s SessionSpec) WithDefaults() SessionSpec {
	if s.Subtrees <= 1 {
		s.Subtrees = 3
	}
	if s.LeavesPer <= 0 {
		s.LeavesPer = 4
	}
	if s.Docs <= 0 {
		s.Docs = 4
	}
	if s.Rounds <= 0 {
		s.Rounds = 40
	}
	if s.ReadsPerWrite <= 0 {
		s.ReadsPerWrite = 6
	}
	if s.WarmSeconds <= 0 {
		s.WarmSeconds = 8
	}
	return s
}

// SessionPass is one schedule replay's outcome.
type SessionPass struct {
	Reads      int64 `json:"reads"`
	Writes     int64 `json:"writes"`
	Responses  int64 `json:"responses"`
	Unanswered int64 `json:"unanswered"`

	// Violations counts session reads answered with a version older than
	// the session had already written — the read-my-writes failures. The
	// detector runs whether or not the token rode the wire.
	Violations int64 `json:"violations"`
	// ViolationWindows counts the rounds in which at least one violation
	// landed — how widely the failures are smeared over the schedule.
	ViolationWindows int64 `json:"violation_windows"`

	// Cluster-wide write-path counters.
	SessionRefreshes int64 `json:"session_refreshes"`
	LeaseRefreshes   int64 `json:"lease_refreshes"`
	StaleDrops       int64 `json:"stale_drops"`

	Staleness StalenessStats `json:"staleness"`
}

// SessionReport is the session scenario JSON document.
type SessionReport struct {
	Schema   string      `json:"schema"`
	Scenario string      `json:"scenario"`
	Spec     SessionSpec `json:"spec"`

	Nodes int `json:"nodes"`

	WithTokens    SessionPass `json:"with_tokens"`
	WithoutTokens SessionPass `json:"without_tokens"`

	// DiffusionPeriodS is the cluster's diffusion period — the width of the
	// stale window each round's reads race against.
	DiffusionPeriodS float64 `json:"diffusion_period_s"`
}

// RunSession executes both passes of the session scenario and assembles the
// report. The log callback (may be nil) receives one line per pass.
func RunSession(sp SessionSpec, logf func(format string, args ...any)) (*SessionReport, error) {
	sp = sp.WithDefaults()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	withTok, err := sessionPass(sp, true)
	if err != nil {
		return nil, fmt.Errorf("session: token pass: %w", err)
	}
	logf("  with tokens:    %d writes, %d/%d reads answered, %d violations, %d session refreshes",
		withTok.Writes, withTok.Responses, withTok.Reads, withTok.Violations, withTok.SessionRefreshes)
	without, err := sessionPass(sp, false)
	if err != nil {
		return nil, fmt.Errorf("session: bare pass: %w", err)
	}
	logf("  without tokens: %d writes, %d/%d reads answered, %d violations over %d rounds",
		without.Writes, without.Responses, without.Reads, without.Violations, without.ViolationWindows)

	_, leaves := starTree(sp.Subtrees, sp.LeavesPer)
	return &SessionReport{
		Schema: SessionSchema, Scenario: "session", Spec: sp,
		Nodes:            1 + sp.Subtrees + len(leaves),
		WithTokens:       *withTok,
		WithoutTokens:    *without,
		DiffusionPeriodS: updateDiffusionPeriod.Seconds(),
	}, nil
}

// sessionPass replays the seeded schedule against a fresh warm cluster. The
// rng is reseeded identically for both passes, so the two arms differ in
// exactly one bit: whether the session's floor rides the wire.
func sessionPass(sp SessionSpec, tokens bool) (*SessionPass, error) {
	t, leaves := starTree(sp.Subtrees, sp.LeavesPer)
	docs := make(map[core.DocID][]byte, sp.Docs)
	catalog := make([]core.DocID, sp.Docs)
	for i := 0; i < sp.Docs; i++ {
		catalog[i] = core.DocID(fmt.Sprintf("doc-%d", i))
		docs[catalog[i]] = []byte("session document body: " + string(catalog[i]))
	}
	c, err := updateCluster(t, docs, 0)
	if err != nil {
		return nil, err
	}
	defer c.Stop()

	// Warm-up flash: every document must be cached somewhere below the root
	// before the first write, or the bare pass has no stale copy to trip
	// over and the scenario measures nothing.
	warmDeadline := time.Now().Add(dur(sp.WarmSeconds))
	warmed := false
	for !warmed && time.Now().Before(warmDeadline) {
		for _, d := range catalog {
			for _, v := range leaves {
				for i := 0; i < 2; i++ {
					if err := c.Inject(v, d); err != nil {
						return nil, fmt.Errorf("warm inject: %w", err)
					}
				}
			}
		}
		if left := c.Drain(5 * time.Second); left != 0 {
			return nil, fmt.Errorf("%d warm-up reads unanswered", left)
		}
		sts, err := c.Stats()
		if err != nil {
			return nil, fmt.Errorf("warm stats: %w", err)
		}
		spread := make(map[core.DocID]bool, sp.Docs)
		for v, st := range sts {
			if v == t.Root() || st == nil {
				continue
			}
			for _, d := range st.CachedDocs {
				spread[d] = true
			}
		}
		warmed = len(spread) == sp.Docs
	}
	if !warmed {
		return nil, fmt.Errorf("warm-up never spread all %d documents", sp.Docs)
	}
	warmResponses := c.Responses()

	pass := &SessionPass{}
	rng := rand.New(rand.NewSource(sp.Seed + 424242))
	tok := cluster.NewSessionToken()
	for r := 0; r < sp.Rounds; r++ {
		doc := catalog[rng.Intn(sp.Docs)]
		// The reader subtree is chosen per round; the write lands at the
		// origin, so any subtree's leaves read "elsewhere" relative to it —
		// what matters is that their branch still holds the pre-write copy.
		readerSub := rng.Intn(sp.Subtrees)
		body := []byte(fmt.Sprintf("session body %s round %d", doc, r+1))
		if _, err := c.RepublishSession(doc, body, tok); err != nil {
			return nil, fmt.Errorf("round %d write: %w", r, err)
		}
		pass.Writes++
		before := c.RMWViolations()
		for i := 0; i < sp.ReadsPerWrite; i++ {
			leaf := leaves[readerSub*sp.LeavesPer+i%sp.LeavesPer]
			if err := c.InjectSession(leaf, doc, tok, tokens); err != nil {
				return nil, fmt.Errorf("round %d read: %w", r, err)
			}
			pass.Reads++
		}
		pass.Unanswered += c.Drain(5 * time.Second)
		if c.RMWViolations() > before {
			pass.ViolationWindows++
		}
	}

	pass.Responses = c.Responses() - warmResponses
	pass.Violations = c.RMWViolations()
	pass.Staleness = stalenessOf(c)
	sts, err := c.Stats()
	if err != nil {
		return nil, err
	}
	for _, st := range sts {
		if st == nil {
			continue
		}
		pass.SessionRefreshes += st.SessionRefreshes
		pass.LeaseRefreshes += st.LeaseRefreshes
		pass.StaleDrops += st.StaleDrops
	}
	return pass, nil
}
