package workload

import "testing"

// TestUpdateRunSmall smoke-tests the update-heavy runner end to end on a
// small tree: both passes answer everything, the write mix actually writes,
// every post-write response is staleness-sampled, and the write path's
// counters move. Thresholds are deliberately loose — wall-clock run on
// shared CI hardware; the calibrated gate lives in benchgate against the
// committed baseline.
func TestUpdateRunSmall(t *testing.T) {
	rep, err := RunUpdate(UpdateSpec{
		Seed: 1, Nodes: 9, NumDocs: 8, TotalRate: 150, Duration: 2.5,
	}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != UpdateSchema || rep.Scenario != "update-heavy" {
		t.Fatalf("bad report identity: %q %q", rep.Schema, rep.Scenario)
	}
	if rep.ReadOnly.Writes != 0 || rep.ReadOnly.Staleness.Samples != 0 {
		t.Fatalf("read-only control wrote: %d writes, %d staleness samples",
			rep.ReadOnly.Writes, rep.ReadOnly.Staleness.Samples)
	}
	if rep.Update.Writes == 0 {
		t.Fatal("write mix produced no writes")
	}
	if rep.Update.Unanswered != 0 || rep.ReadOnly.Unanswered != 0 {
		t.Fatalf("unanswered reads: read-only %d, update %d",
			rep.ReadOnly.Unanswered, rep.Update.Unanswered)
	}
	if rep.Update.Staleness.Samples == 0 {
		t.Fatal("no staleness samples in the write mix")
	}
	if rep.Update.RepublishesIn == 0 {
		t.Error("no node ever applied a republish")
	}
	if rep.Update.Staleness.P99 > 1.0 {
		t.Errorf("p99 staleness %vs implausibly high on an in-memory transport",
			rep.Update.Staleness.P99)
	}
	if rep.ReadOnly.HitRate <= 0 {
		t.Errorf("read-only hit rate %v: caching never engaged", rep.ReadOnly.HitRate)
	}
}

// TestStormRunSmall smoke-tests the invalidation-storm runner: the warm-up
// must spread (and with K=2 promote) the hot document, and the storm's
// origin fetches must collapse far below one-per-client.
func TestStormRunSmall(t *testing.T) {
	rep, err := RunStorm(StormSpec{
		Seed: 1, Subtrees: 3, LeavesPer: 2, Clients: 30, Writes: 3,
	}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != StormSchema || rep.Scenario != "invalidation-storm" {
		t.Fatalf("bad report identity: %q %q", rep.Schema, rep.Scenario)
	}
	if rep.Unanswered != 0 {
		t.Fatalf("%d storm reads unanswered", rep.Unanswered)
	}
	if rep.Promotions < 1 {
		t.Errorf("promotions = %d, want the warm-up flash to promote", rep.Promotions)
	}
	if rep.InvalidationsIn == 0 {
		t.Error("no node ever applied an invalidation")
	}
	if rep.LeaseRefreshes < 1 {
		t.Errorf("lease refreshes = %d, want >= 1: the storm never exercised "+
			"a coalesced upward fetch", rep.LeaseRefreshes)
	}
	// The point of the leases: per-write origin load is a handful of subtree
	// fetches, not one per client. A thundering herd would put this at
	// ~Clients (30); allow generous slack for shard- and timing-level
	// duplication on a loaded CI box. Zero is legitimate — if the duty
	// diffusion tick beats the burst, fresh bodies are already back down the
	// tree and the origin never sees the storm at all.
	if rep.PerWriteOriginFetches > float64(rep.Spec.Clients)/2 {
		t.Errorf("per-write origin fetches %v: no collapse versus %d clients",
			rep.PerWriteOriginFetches, rep.Spec.Clients)
	}
	if rep.PerWriteForwards > float64(rep.Spec.Clients) {
		t.Errorf("per-write upstream forwards %v: thundering herd versus %d clients",
			rep.PerWriteForwards, rep.Spec.Clients)
	}
}
