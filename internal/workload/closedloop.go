package workload

// Shared closed-loop TCP measurement harness behind the wire-throughput
// and core-scaling scenarios: build a fresh cluster, saturate it with
// closed-loop clients (each keeps exactly one request in flight), warm the
// tree so delegation spreads the hot documents, measure only the steady
// window. Having one driver keeps the two benchmarks comparable — a change
// to the request-id scheme, the warmup cap or the shutdown dance cannot
// make them quietly measure different harnesses.

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"webwave/internal/cluster"
	"webwave/internal/core"
	"webwave/internal/netproto"
	"webwave/internal/stats"
	"webwave/internal/trace"
	"webwave/internal/transport"
	"webwave/internal/tree"
)

// ClosedLoopSpec parameterizes one closed-loop measurement.
type ClosedLoopSpec struct {
	Seed      int64
	Nodes     int     // tree size
	Clients   int     // closed-loop injector connections
	NumDocs   int     // catalog size
	BodyBytes int     // document body size
	ZipfSkew  float64 // popularity skew
	Duration  float64 // measured seconds (warmup runs before, uncounted)

	Network   transport.Network // cluster links (a TCPNetwork variant)
	NumShards int               // per-server shard loops (0 = GOMAXPROCS)

	// CacheBudgetBytes bounds every node's in-memory body bytes (0 =
	// unlimited, the pre-existing behavior); DataDir non-empty adds the
	// disk tier (per-node subdirectories) under DiskBudgetBytes — the
	// two-tier configuration the bigger-than-ram scenario measures.
	CacheBudgetBytes int64
	DiskBudgetBytes  int64
	DataDir          string
}

// ClosedLoopResult is one measurement, covering only the measured window —
// warmup traffic (everything served at the root before delegation spreads)
// is excluded from the counter-derived figures too, by differencing a
// stats scrape taken when measurement starts.
type ClosedLoopResult struct {
	Responses     int64
	ThroughputRPS float64
	Jain          float64 // fairness of per-node serve counts
	MeanHops      float64
	HitRate       float64 // share of serves below the home server
	ServingNodes  int
	Forwarded     int64
	Coalesced     int64
	FastServed    int64
	DiskHits      int64 // serves answered from the disk tier
}

// counterScrape is the per-node counter baseline captured at measure start.
type counterScrape struct {
	served                           []int64
	forwarded, coalesced, fastServed int64
	diskHits                         int64
	ok                               bool
}

func scrapeCounters(c *cluster.Cluster, n int) counterScrape {
	cs := counterScrape{served: make([]int64, n)}
	sts, err := c.Stats()
	if err != nil {
		return cs
	}
	for _, st := range sts {
		if st == nil {
			continue // killed node: no scrape entry
		}
		if st.Node >= 0 && st.Node < n {
			cs.served[st.Node] = st.Served
		}
		cs.forwarded += st.Forwarded
		cs.coalesced += st.Coalesced
		cs.fastServed += st.FastServed
		cs.diskHits += st.DiskHits
	}
	cs.ok = true
	return cs
}

// RunClosedLoop executes one measurement.
func RunClosedLoop(sp ClosedLoopSpec) (ClosedLoopResult, error) {
	rng := rand.New(rand.NewSource(sp.Seed))
	t, err := tree.RandomBounded(sp.Nodes, 4, rng)
	if err != nil {
		return ClosedLoopResult{}, err
	}
	body := make([]byte, sp.BodyBytes)
	for i := range body {
		body[i] = byte('a' + i%26)
	}
	docs := make(map[core.DocID][]byte, sp.NumDocs)
	docIDs := make([]core.DocID, sp.NumDocs)
	for j := 0; j < sp.NumDocs; j++ {
		docIDs[j] = DocID(j)
		docs[docIDs[j]] = body
	}
	c, err := cluster.New(t, docs, cluster.Config{
		Network:          sp.Network,
		AddrFor:          func(int) string { return "127.0.0.1:0" },
		GossipPeriod:     25 * time.Millisecond,
		DiffusionPeriod:  50 * time.Millisecond,
		Window:           500 * time.Millisecond,
		Tunneling:        true,
		NumShards:        sp.NumShards,
		CacheBudgetBytes: sp.CacheBudgetBytes,
		DiskBudgetBytes:  sp.DiskBudgetBytes,
		DataDir:          sp.DataDir,
	})
	if err != nil {
		return ClosedLoopResult{}, err
	}
	defer c.Stop()

	// Zipf CDF over the documents, on the same weights the other scenarios
	// use.
	cdf := trace.ZipfWeights(sp.NumDocs, sp.ZipfSkew)
	for j := 1; j < len(cdf); j++ {
		cdf[j] += cdf[j-1]
	}

	var (
		measuring atomic.Bool
		stop      atomic.Bool
		responses atomic.Int64
		hops      atomic.Int64
		servedBy  = make([]atomic.Int64, t.Len())
		wg        sync.WaitGroup
	)
	conns := make([]transport.Conn, 0, sp.Clients)
	closeAll := func() {
		stop.Store(true)
		for _, cn := range conns {
			cn.Close() // releases workers blocked in Recv
		}
		wg.Wait()
	}
	for w := 0; w < sp.Clients; w++ {
		origin := 0
		if t.Len() > 1 {
			origin = 1 + w%(t.Len()-1) // clients enter at non-root nodes
		}
		wrng := rand.New(rand.NewSource(sp.Seed + int64(w)*7919))
		conn, err := c.Network().Dial(c.Addr(origin))
		if err != nil {
			closeAll()
			return ClosedLoopResult{}, fmt.Errorf("dial origin %d: %w", origin, err)
		}
		conns = append(conns, conn)
		wg.Add(1)
		go func(conn transport.Conn, origin, w int, wrng *rand.Rand) {
			defer wg.Done()
			defer conn.Close()
			// Disjoint request-id spaces: workers sharing an origin node
			// must not collide in the servers' response-routing tables.
			reqID := uint64(w+1) << 32
			for !stop.Load() {
				reqID++
				u := wrng.Float64()
				doc := 0
				for doc < len(cdf)-1 && cdf[doc] < u {
					doc++
				}
				err := conn.Send(&netproto.Envelope{
					Kind: netproto.TypeRequest, From: -1, To: origin,
					Origin: origin, ReqID: reqID, Doc: docIDs[doc],
				})
				if err != nil {
					return
				}
				for {
					env, err := conn.Recv()
					if err != nil {
						return
					}
					isResp := env.Kind == netproto.TypeResponse && env.ReqID == reqID
					if isResp && measuring.Load() {
						responses.Add(1)
						hops.Add(int64(env.Hops))
						if env.ServedBy >= 0 && env.ServedBy < len(servedBy) {
							servedBy[env.ServedBy].Add(1)
						}
					}
					netproto.PutEnvelope(env)
					if isResp {
						break
					}
				}
			}
		}(conn, origin, w, wrng)
	}

	warmup := time.Duration(sp.Duration*float64(time.Second)) / 2
	if warmup > 2*time.Second {
		warmup = 2 * time.Second
	}
	time.Sleep(warmup)
	before := scrapeCounters(c, t.Len())
	measuring.Store(true)
	time.Sleep(time.Duration(sp.Duration * float64(time.Second)))
	measuring.Store(false)
	after := scrapeCounters(c, t.Len())
	// Closing the client conns unblocks any worker stuck in Recv on a
	// response that was lost or expired server-side.
	closeAll()

	res := ClosedLoopResult{Responses: responses.Load()}
	res.ThroughputRPS = round6(float64(res.Responses) / sp.Duration)
	if res.Responses > 0 {
		res.MeanHops = round6(float64(hops.Load()) / float64(res.Responses))
	}
	loads := make([]float64, t.Len())
	for v := range servedBy {
		loads[v] = float64(servedBy[v].Load())
		if loads[v] > 0 {
			res.ServingNodes++
		}
	}
	res.Jain = round6(stats.JainIndex(loads))
	if before.ok && after.ok {
		res.Forwarded = after.forwarded - before.forwarded
		res.Coalesced = after.coalesced - before.coalesced
		res.FastServed = after.fastServed - before.fastServed
		res.DiskHits = after.diskHits - before.diskHits
		var total, below int64
		for v := range after.served {
			d := after.served[v] - before.served[v]
			total += d
			if v != t.Root() {
				below += d
			}
		}
		if total > 0 {
			res.HitRate = round6(float64(below) / float64(total))
		}
	}
	return res, nil
}
