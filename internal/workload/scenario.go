package workload

// Scenarios returns the named benchmark scenarios, in presentation order.
// Each is a complete Spec; callers may override Nodes, Duration or
// TotalRate before running (the CLI exposes flags for exactly that).
func Scenarios() []Spec {
	return []Spec{
		{
			// Steady-state skewed demand: the bread-and-butter hot-document
			// workload. Measures how far diffusion spreads a Zipf head.
			Name:       "zipf-steady",
			Nodes:      31,
			NumDocs:    64,
			Popularity: PopZipf,
			ZipfSkew:   1.0,
			TotalRate:  300,
			Duration:   40,
			Arrival:    ArrivalPoisson,
			Tunneling:  true,
		},
		{
			// A published document goes viral: rate ramps to 8× with all
			// surplus traffic on two documents, then subsides. Measures how
			// fast the wave re-balances and how bad p99 gets at the peak.
			Name:       "flash-crowd",
			Nodes:      31,
			NumDocs:    64,
			Popularity: PopZipf,
			ZipfSkew:   1.0,
			TotalRate:  200,
			Duration:   48,
			Arrival:    ArrivalPoisson,
			Tunneling:  true,
			Flash: &FlashCrowd{
				Start: 12, Ramp: 6, Hold: 12, Decay: 6,
				Factor: 8, HotDocs: 2,
			},
		},
		{
			// Adversarial skew: a Zipf head steep enough (s = 1.3) that the
			// top document alone carries ~a third of all traffic, plus a
			// single-document flash crowd riding on top — the workload
			// replication forests exist for. The deterministic run shows how
			// far diffusion alone stretches before the hot-key bench's
			// forest model takes over.
			Name:       "adversarial-skew",
			Nodes:      31,
			NumDocs:    64,
			Popularity: PopZipf,
			ZipfSkew:   1.3,
			TotalRate:  250,
			Duration:   48,
			Arrival:    ArrivalPoisson,
			Tunneling:  true,
			Flash: &FlashCrowd{
				Start: 12, Ramp: 6, Hold: 12, Decay: 6,
				Factor: 10, HotDocs: 1,
			},
		},
		{
			// Nodes fail and recover mid-run under bursty traffic. Requests
			// originating at a down node are lost; the rest of the tree
			// keeps serving around it.
			Name:        "churn",
			Nodes:       31,
			NumDocs:     64,
			Popularity:  PopZipf,
			ZipfSkew:    0.9,
			TotalRate:   250,
			Duration:    48,
			Arrival:     ArrivalBursty,
			BurstFactor: 4,
			ParetoAlpha: 1.5,
			Tunneling:   true,
			Churn:       &ChurnSpec{Events: 4, MeanDowntime: 8},
		},
		{
			// Byte-budgeted caches under a hot set wider than the aggregate
			// budget, with a diurnal shift that keeps rotating which
			// documents are hot — sustained eviction churn. Compares
			// eviction policies (heat-per-byte vs LRU vs GDSF) on hit rate,
			// origin offload and Jain fairness over the identical trace.
			Name:             "cache-pressure",
			Nodes:            31,
			NumDocs:          192,
			Popularity:       PopHotset,
			HotsetSize:       48,
			HotsetShare:      0.7,
			TotalRate:        300,
			Duration:         48,
			Arrival:          ArrivalPoisson,
			Tunneling:        true,
			CacheBudgetBytes: 10 * 4096, // ~10 docs per node vs a 48-doc hot set
			DocBytes:         4096,
			Diurnal:          &Diurnal{Period: 24, Amplitude: 0.4},
		},
		{
			// Large catalog, bounded caches: a hot set bigger than any one
			// cache forces eviction churn. Compares WebWave's demand-driven
			// placement against en-route LRU fill on the same trace.
			Name:        "multi-doc-lru",
			Nodes:       31,
			NumDocs:     256,
			Popularity:  PopHotset,
			HotsetSize:  24,
			HotsetShare: 0.8,
			TotalRate:   300,
			Duration:    40,
			Arrival:     ArrivalPoisson,
			CacheCap:    8,
			Tunneling:   true,
			Diurnal:     &Diurnal{Period: 40, Amplitude: 0.3},
		},
	}
}

// Lookup returns the named scenario spec.
func Lookup(name string) (Spec, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
