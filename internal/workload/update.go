package workload

// Mutable-document scenarios: what do writes cost the caching tree, and
// what do the subtree leases buy when a write storm hits a hot document?
//
// update-heavy plays the identical Poisson schedule twice against a live
// cluster — once read-only (the control), once with a seeded fraction of
// the schedule turned into republish writes — and reports the staleness
// percentiles of every post-write response (age of the served version
// versus the latest write) alongside the hit rate and Jain fairness of
// both passes. The gated figures are the p99 staleness (a write must
// diffuse within about one diffusion period) and the hit-rate cost of the
// write mix versus the read-only control.
//
// invalidation-storm promotes one hot document onto a replication forest,
// then repeatedly invalidates it and storms the leaves with reads: every
// copy below the origin is stale at once, and without the subtree leases
// each of the C clients would ride its own fetch to the origin. With them,
// the per-shard single-flight collapses each subtree's storm into one
// upward fetch, so the origin's serve count per write stays O(subtrees).
// The report measures exactly that quotient from the origin server's own
// serve counter.
//
// Both are wall-clock live-cluster measurements (NOT deterministic); the
// CI gates (benchgate -update-report / -storm-report) apply thresholds,
// not byte equality.

import (
	"fmt"
	"math/rand"
	"time"

	"webwave/internal/cluster"
	"webwave/internal/core"
	"webwave/internal/stats"
	"webwave/internal/trace"
	"webwave/internal/tree"
)

// UpdateSchema identifies update-heavy reports.
const UpdateSchema = "webwave-update/v1"

// StormSchema identifies invalidation-storm reports.
const StormSchema = "webwave-storm/v1"

// updateDiffusionPeriod is the cluster diffusion period every update-style
// run uses — the propagation unit the staleness gate is judged against.
const updateDiffusionPeriod = 40 * time.Millisecond

// UpdateSpec parameterizes the update-heavy scenario.
type UpdateSpec struct {
	Seed      int64   `json:"seed"`
	Nodes     int     `json:"nodes"`      // tree size; default 31
	NumDocs   int     `json:"num_docs"`   // catalog size; default 48
	TotalRate float64 `json:"total_rate"` // offered req/s; default 600
	Duration  float64 `json:"duration_s"` // schedule length; default 10
	// WriteFraction of the schedule becomes republish writes (new body, new
	// version) instead of reads. Default 0.10 — the 90/10 mix the baseline
	// gates. 0.5 is the nightly write-heavy variant.
	WriteFraction float64 `json:"write_fraction"`
}

// WithDefaults fills unset fields.
func (s UpdateSpec) WithDefaults() UpdateSpec {
	if s.Nodes <= 0 {
		s.Nodes = 31
	}
	if s.NumDocs <= 0 {
		s.NumDocs = 48
	}
	if s.TotalRate <= 0 {
		s.TotalRate = 600
	}
	if s.Duration <= 0 {
		s.Duration = 10
	}
	if s.WriteFraction <= 0 {
		s.WriteFraction = 0.10
	}
	return s
}

// StalenessStats is the percentile digest of response staleness: seconds
// since the served version was superseded, 0 for a latest-version serve.
type StalenessStats struct {
	Samples int64   `json:"samples"`
	Stale   int64   `json:"stale"` // responses that carried a superseded version
	Mean    float64 `json:"mean_s"`
	P50     float64 `json:"p50_s"`
	P95     float64 `json:"p95_s"`
	P99     float64 `json:"p99_s"`
	Max     float64 `json:"max_s"`
}

func stalenessOf(c *cluster.Cluster) StalenessStats {
	sum := c.StalenessSummary()
	stale, total := c.StaleServed()
	return StalenessStats{
		Samples: total, Stale: stale,
		Mean: round6(sum.Mean), P50: round6(sum.P50),
		P95: round6(sum.P95), P99: round6(sum.P99), Max: round6(sum.Max),
	}
}

// UpdatePass is one schedule replay's outcome.
type UpdatePass struct {
	Offered    int64 `json:"offered"` // reads injected
	Writes     int64 `json:"writes"`  // republish writes injected
	Responses  int64 `json:"responses"`
	Unanswered int64 `json:"unanswered"` // reads still open after the drain

	// HitRate is the fraction of responses answered by a node other than
	// the origin — the figure a write mix erodes when invalidations force
	// lease fetches back to the root.
	HitRate float64 `json:"hit_rate"`
	Jain    float64 `json:"jain"`

	Staleness StalenessStats `json:"staleness"`

	// Cluster-wide write-path counters.
	RepublishesIn   int64 `json:"republishes_in"`
	InvalidationsIn int64 `json:"invalidations_in"`
	StaleDrops      int64 `json:"stale_drops"`
	LeaseRefreshes  int64 `json:"lease_refreshes"`
}

// UpdateReport is the update-heavy scenario JSON document.
type UpdateReport struct {
	Schema   string     `json:"schema"`
	Scenario string     `json:"scenario"`
	Spec     UpdateSpec `json:"spec"`

	ReadOnly UpdatePass `json:"read_only"`
	Update   UpdatePass `json:"update"`

	// HitRateCost is the fractional hit-rate drop of the write mix versus
	// the read-only control — the gated price of mutability.
	HitRateCost float64 `json:"hit_rate_cost"`
	// DiffusionPeriodS is the cluster's diffusion period: the propagation
	// unit the p99 staleness gate is judged against.
	DiffusionPeriodS float64 `json:"diffusion_period_s"`
}

// updateCluster builds the live cluster every update-style run uses.
func updateCluster(t *tree.Tree, docs map[core.DocID][]byte, promoteK int) (*cluster.Cluster, error) {
	cfg := cluster.Config{
		GossipPeriod:    20 * time.Millisecond,
		DiffusionPeriod: updateDiffusionPeriod,
		Window:          400 * time.Millisecond,
		Tunneling:       true,
	}
	if promoteK > 1 {
		cfg.PromoteThreshold = 50
		cfg.PromoteK = promoteK
		cfg.PromoteHysteresis = 2
	}
	return cluster.New(t, docs, cfg)
}

// RunUpdate executes the read-only control pass and the write-mix pass on
// the identical schedule and assembles the report. The log callback (may
// be nil) receives one line per pass.
func RunUpdate(sp UpdateSpec, logf func(format string, args ...any)) (*UpdateReport, error) {
	sp = sp.WithDefaults()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rng := rand.New(rand.NewSource(sp.Seed))
	t, err := tree.RandomBounded(sp.Nodes, 3, rng)
	if err != nil {
		return nil, fmt.Errorf("update: tree: %w", err)
	}
	demand, err := trace.ZipfDemand(t, trace.ZipfDemandConfig{
		NumDocs: sp.NumDocs, Skew: 1.0, TotalRate: sp.TotalRate,
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("update: demand: %w", err)
	}
	docs := make(map[core.DocID][]byte, len(demand.Docs))
	for _, d := range demand.Docs {
		docs[d.ID] = []byte("webwave update document body: " + string(d.ID))
	}
	sched := trace.PoissonSchedule(demand, sp.Duration, rng)

	control, err := updatePass(sp, t, docs, sched, 0)
	if err != nil {
		return nil, fmt.Errorf("update: read-only pass: %w", err)
	}
	logf("  read-only: %d/%d answered, hit rate %.4f, jain %.3f",
		control.Responses, control.Offered, control.HitRate, control.Jain)
	update, err := updatePass(sp, t, docs, sched, sp.WriteFraction)
	if err != nil {
		return nil, fmt.Errorf("update: write-mix pass: %w", err)
	}
	logf("  update:    %d/%d answered + %d writes, hit rate %.4f, jain %.3f, staleness p99 %.4fs (%d/%d stale)",
		update.Responses, update.Offered, update.Writes, update.HitRate, update.Jain,
		update.Staleness.P99, update.Staleness.Stale, update.Staleness.Samples)

	rep := &UpdateReport{
		Schema: UpdateSchema, Scenario: "update-heavy", Spec: sp,
		ReadOnly:         *control,
		Update:           *update,
		DiffusionPeriodS: updateDiffusionPeriod.Seconds(),
	}
	if control.HitRate > 0 {
		rep.HitRateCost = round6((control.HitRate - update.HitRate) / control.HitRate)
	}
	return rep, nil
}

// updatePass replays the schedule against a fresh cluster, turning a
// seeded writeFraction of the entries into republish writes (0 = the
// read-only control). The write decision stream is seeded independently of
// entry order, so both passes offer the identical read set plus-or-minus
// the entries that became writes.
func updatePass(sp UpdateSpec, t *tree.Tree, docs map[core.DocID][]byte, sched []trace.Request, writeFraction float64) (*UpdatePass, error) {
	c, err := updateCluster(t, docs, 0)
	if err != nil {
		return nil, err
	}
	defer c.Stop()

	pass := &UpdatePass{}
	wrng := rand.New(rand.NewSource(sp.Seed + 7777))
	start := time.Now()
	for i := range sched {
		if wait := time.Until(start.Add(dur(sched[i].Time))); wait > 0 {
			time.Sleep(wait)
		}
		if writeFraction > 0 && wrng.Float64() < writeFraction {
			pass.Writes++
			body := []byte(fmt.Sprintf("update body %s #%d", sched[i].Doc, pass.Writes))
			if _, err := c.Republish(sched[i].Doc, body); err != nil {
				return nil, err
			}
			continue
		}
		pass.Offered++
		if err := c.Inject(sched[i].Origin, sched[i].Doc); err != nil {
			return nil, err
		}
	}
	pass.Unanswered = c.Drain(5 * time.Second)
	pass.Responses = c.Responses()
	pass.Staleness = stalenessOf(c)

	served := c.ServedBy()
	loads := make([]float64, t.Len())
	var offOrigin int64
	for v, n := range served {
		if v >= 0 && v < len(loads) {
			loads[v] = float64(n)
		}
		if v != t.Root() {
			offOrigin += n
		}
	}
	if pass.Responses > 0 {
		pass.HitRate = round6(float64(offOrigin) / float64(pass.Responses))
	}
	pass.Jain = round6(stats.JainIndex(loads))

	sts, err := c.Stats()
	if err != nil {
		return nil, err
	}
	for _, st := range sts {
		if st == nil {
			continue
		}
		pass.RepublishesIn += st.RepublishesIn
		pass.InvalidationsIn += st.InvalidationsIn
		pass.StaleDrops += st.StaleDrops
		pass.LeaseRefreshes += st.LeaseRefreshes
	}
	return pass, nil
}

// StormSpec parameterizes the invalidation-storm scenario.
type StormSpec struct {
	Seed int64 `json:"seed"`
	// The tree is a deliberate two-level star: the origin, Subtrees interior
	// children, and LeavesPer leaves under each — so "O(subtrees)" is a
	// literal count, not a property of a random shape.
	Subtrees  int `json:"subtrees"`   // default 3
	LeavesPer int `json:"leaves_per"` // default 4

	Clients int `json:"clients"` // storm reads per write burst; default 120
	Writes  int `json:"writes"`  // invalidation rounds; default 8
	// K is the replication-forest width for the hot document (PromoteK);
	// the warm-up flash promotes it before the storm. Default 2; the
	// nightly long-form variant runs 3. 1 disables promotion.
	K int `json:"k"`
	// SettleMS is the pause between a write and its read burst: longer than
	// the push propagation of the invalidate frames (a few transport hops),
	// but shorter than one diffusion period — wait a full tick and the duty
	// loop re-delegates fresh bodies downward before the storm arrives,
	// which repairs the tree so proactively the lease has nothing to do.
	// Default 25.
	SettleMS int `json:"settle_ms"`
	// WarmSeconds bounds the warm-up flash that spreads copies (and, K>1,
	// promotes the document) before the storm. Default 8.
	WarmSeconds float64 `json:"warm_seconds"`
}

// WithDefaults fills unset fields.
func (s StormSpec) WithDefaults() StormSpec {
	if s.Subtrees <= 0 {
		s.Subtrees = 3
	}
	if s.LeavesPer <= 0 {
		s.LeavesPer = 4
	}
	if s.Clients <= 0 {
		s.Clients = 120
	}
	if s.Writes <= 0 {
		s.Writes = 8
	}
	if s.K == 0 {
		s.K = 2
	}
	if s.SettleMS <= 0 {
		s.SettleMS = 25
	}
	if s.WarmSeconds <= 0 {
		s.WarmSeconds = 8
	}
	return s
}

// StormReport is the invalidation-storm scenario JSON document.
type StormReport struct {
	Schema   string    `json:"schema"`
	Scenario string    `json:"scenario"`
	Spec     StormSpec `json:"spec"`

	Nodes      int   `json:"nodes"`
	Promotions int64 `json:"promotions"` // forest transitions at the origin (K>1)

	Writes     int64 `json:"writes"`
	BurstReads int64 `json:"burst_reads"` // storm reads injected
	Responses  int64 `json:"responses"`   // total over warm-up + storm
	Unanswered int64 `json:"unanswered"`

	// OriginFetches is the origin server's own serve-counter delta over the
	// storm: requests that actually reached the root, NOT the client-side
	// served-by figure (a coalesced waiter reports the origin as its server
	// without ever costing it a request). PerWriteOriginFetches is the
	// gated quotient — O(subtrees) with the leases working, O(clients)
	// without them — and FetchCollapseX the clients-per-origin-fetch ratio.
	OriginFetches         int64   `json:"origin_fetches"`
	PerWriteOriginFetches float64 `json:"per_write_origin_fetches"`
	FetchCollapseX        float64 `json:"fetch_collapse_x"`
	// UpstreamForwards is the cluster-wide Forwarded delta over the storm —
	// every hop a storm read took toward the origin. A thundering herd
	// forwards every client's read on every write; the leases coalesce
	// concurrent misses at each shard, so the per-write figure stays around
	// the node count instead of the client count.
	UpstreamForwards int64   `json:"upstream_forwards"`
	PerWriteForwards float64 `json:"per_write_forwards"`

	Staleness StalenessStats `json:"staleness"`
	Jain      float64        `json:"jain"` // per-node serves over the whole run

	InvalidationsIn int64 `json:"invalidations_in"`
	RepublishesIn   int64 `json:"republishes_in"`
	StaleDrops      int64 `json:"stale_drops"`
	LeaseRefreshes  int64 `json:"lease_refreshes"`
	Coalesced       int64 `json:"coalesced"`
}

// stormTree builds the two-level star: root 0, Subtrees interior children,
// LeavesPer leaves under each.
func stormTree(sp StormSpec) (*tree.Tree, []int) {
	return starTree(sp.Subtrees, sp.LeavesPer)
}

// starTree builds a two-level star (root, subtrees interior children,
// leavesPer leaves under each) and returns the tree plus its leaves in
// subtree-major order: leaves[s*leavesPer+l] is leaf l of subtree s.
func starTree(subtrees, leavesPer int) (*tree.Tree, []int) {
	parents := []int{tree.NoParent}
	for s := 0; s < subtrees; s++ {
		parents = append(parents, 0)
	}
	var leaves []int
	for s := 0; s < subtrees; s++ {
		for l := 0; l < leavesPer; l++ {
			leaves = append(leaves, len(parents))
			parents = append(parents, 1+s)
		}
	}
	return tree.MustFromParents(parents), leaves
}

// RunStorm executes the invalidation storm and assembles the report. The
// log callback (may be nil) receives progress lines.
func RunStorm(sp StormSpec, logf func(format string, args ...any)) (*StormReport, error) {
	sp = sp.WithDefaults()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	t, leaves := stormTree(sp)
	const hot = core.DocID("hot")
	docs := map[core.DocID][]byte{
		hot:    []byte("storm document, version 0"),
		"cold": []byte("background document"),
	}
	c, err := updateCluster(t, docs, sp.K)
	if err != nil {
		return nil, fmt.Errorf("storm: cluster: %w", err)
	}
	defer c.Stop()
	rep := &StormReport{Schema: StormSchema, Scenario: "invalidation-storm", Spec: sp, Nodes: t.Len()}

	// Warm-up flash: spread copies across the subtrees (and promote the
	// document when a forest is configured) before any write lands.
	warmDeadline := time.Now().Add(dur(sp.WarmSeconds))
	warmed := false
	for !warmed && time.Now().Before(warmDeadline) {
		for _, v := range leaves {
			for i := 0; i < 4; i++ {
				if err := c.Inject(v, hot); err != nil {
					return nil, fmt.Errorf("storm: warm inject: %w", err)
				}
			}
		}
		if left := c.Drain(5 * time.Second); left != 0 {
			return nil, fmt.Errorf("storm: %d warm-up reads unanswered", left)
		}
		sts, err := c.Stats()
		if err != nil {
			return nil, fmt.Errorf("storm: warm stats: %w", err)
		}
		// Warm means: copies exist below the origin (some node beyond the
		// root caches hot), and the forest fired when one was asked for.
		spread := false
		for v, st := range sts {
			if v == t.Root() || st == nil {
				continue
			}
			for _, d := range st.CachedDocs {
				if d == hot {
					spread = true
				}
			}
		}
		promoted := sp.K <= 1 || (sts[t.Root()] != nil && sts[t.Root()].Promotions >= 1)
		warmed = spread && promoted
	}
	if !warmed {
		return nil, fmt.Errorf("storm: warm-up never spread the document (K=%d)", sp.K)
	}
	sts, err := c.Stats()
	if err != nil {
		return nil, err
	}
	originBefore := sts[t.Root()].Served
	var forwardedBefore int64
	for _, st := range sts {
		if st != nil {
			forwardedBefore += st.Forwarded
		}
	}
	logf("  warm: origin served %d during spread, promotions %d", originBefore, sts[t.Root()].Promotions)

	// The storm: invalidate, let the version-only frames diffuse, then hit
	// every leaf at once. Each subtree's concurrent misses must collapse
	// into one lease fetch at the origin.
	for w := 0; w < sp.Writes; w++ {
		body := []byte(fmt.Sprintf("storm document, version %d", w+1))
		if _, err := c.Invalidate(hot, body); err != nil {
			return nil, fmt.Errorf("storm: write %d: %w", w, err)
		}
		rep.Writes++
		time.Sleep(time.Duration(sp.SettleMS) * time.Millisecond)
		for i := 0; i < sp.Clients; i++ {
			if err := c.Inject(leaves[i%len(leaves)], hot); err != nil {
				return nil, fmt.Errorf("storm: burst inject: %w", err)
			}
			rep.BurstReads++
		}
		rep.Unanswered += c.Drain(5 * time.Second)
	}

	sts, err = c.Stats()
	if err != nil {
		return nil, err
	}
	rep.OriginFetches = sts[t.Root()].Served - originBefore
	rep.PerWriteOriginFetches = round6(float64(rep.OriginFetches) / float64(rep.Writes))
	if rep.PerWriteOriginFetches > 0 {
		rep.FetchCollapseX = round6(float64(sp.Clients) / rep.PerWriteOriginFetches)
	}
	rep.Promotions = sts[t.Root()].Promotions
	for _, st := range sts {
		if st != nil {
			rep.UpstreamForwards += st.Forwarded
		}
	}
	rep.UpstreamForwards -= forwardedBefore
	rep.PerWriteForwards = round6(float64(rep.UpstreamForwards) / float64(rep.Writes))
	for _, st := range sts {
		if st == nil {
			continue
		}
		rep.InvalidationsIn += st.InvalidationsIn
		rep.RepublishesIn += st.RepublishesIn
		rep.StaleDrops += st.StaleDrops
		rep.LeaseRefreshes += st.LeaseRefreshes
		rep.Coalesced += st.Coalesced
	}
	rep.Responses = c.Responses()
	rep.Staleness = stalenessOf(c)
	served := c.ServedBy()
	loads := make([]float64, t.Len())
	for v, n := range served {
		if v >= 0 && v < len(loads) {
			loads[v] = float64(n)
		}
	}
	rep.Jain = round6(stats.JainIndex(loads))
	logf("  storm: %d writes x %d clients -> %d origin fetches (%.1f/write, collapse %.0fx), %.1f forwards/write, lease refreshes %d, staleness p99 %.4fs",
		rep.Writes, sp.Clients, rep.OriginFetches, rep.PerWriteOriginFetches,
		rep.FetchCollapseX, rep.PerWriteForwards, rep.LeaseRefreshes, rep.Staleness.P99)
	return rep, nil
}
