package workload

// Bigger-than-ram scenario: the corpus is ~10x every node's memory budget,
// so a memory-only cluster thrashes — each delegated copy evicts another,
// duty bounces back upstream, and the hit rate (share of serves below the
// home server) collapses toward the root. Three closed-loop passes on the
// identical workload measure what the disk tier buys back:
//
//	in-ram:    unlimited memory — the ceiling the tier is judged against
//	mem-only:  the small memory budget alone — the thrashing floor
//	two-tier:  the same memory budget plus a disk tier holding the corpus
//
// The gates: two-tier's hit rate must stay within a tolerance of in-ram's
// (the disk tier absorbs the overflow instead of shedding it), mem-only
// must lose at least DropRatio times more hit rate than two-tier (the
// thrash is real, the fix is real), and two-tier must actually serve from
// disk (disk_hits > 0). Wall-clock measurement: NOT deterministic;
// benchgate applies thresholds, not byte equality.

import (
	"fmt"
	"os"

	"webwave/internal/transport"
)

// BigramSchema identifies bigger-than-ram reports.
const BigramSchema = "webwave-bigram/v1"

// BigramSpec parameterizes the scenario. CacheBudgetBytes defaults to the
// corpus size over MemoryRatio — "a tenth of the data fits in RAM".
type BigramSpec struct {
	Seed      int64   `json:"seed"`
	Nodes     int     `json:"nodes"`      // tree size; default 15
	Clients   int     `json:"clients"`    // closed-loop injectors; default 24
	NumDocs   int     `json:"num_docs"`   // corpus size; default 256
	BodyBytes int     `json:"body_bytes"` // document body size; default 4096
	ZipfSkew  float64 `json:"zipf_skew"`  // popularity skew; default 0.7
	Duration  float64 `json:"duration_s"` // measured seconds per pass; default 2

	// MemoryRatio is corpus-bytes : memory-budget (default 10 — the corpus
	// is ten times what memory holds). CacheBudgetBytes overrides directly.
	MemoryRatio      float64 `json:"memory_ratio"`
	CacheBudgetBytes int64   `json:"cache_budget_bytes"`
	// DiskBudgetBytes bounds the two-tier pass's disk store (default: the
	// whole corpus fits).
	DiskBudgetBytes int64 `json:"disk_budget_bytes"`
}

// WithDefaults fills unset fields.
func (s BigramSpec) WithDefaults() BigramSpec {
	if s.Nodes <= 0 {
		s.Nodes = 15
	}
	if s.Clients <= 0 {
		s.Clients = 24
	}
	if s.NumDocs <= 0 {
		s.NumDocs = 256
	}
	if s.BodyBytes <= 0 {
		s.BodyBytes = 4096
	}
	if s.ZipfSkew <= 0 {
		s.ZipfSkew = 0.7
	}
	if s.Duration <= 0 {
		s.Duration = 2
	}
	if s.MemoryRatio <= 0 {
		s.MemoryRatio = 10
	}
	corpus := int64(s.NumDocs) * int64(s.BodyBytes)
	if s.CacheBudgetBytes <= 0 {
		s.CacheBudgetBytes = int64(float64(corpus) / s.MemoryRatio)
	}
	if s.DiskBudgetBytes <= 0 {
		s.DiskBudgetBytes = 2 * corpus
	}
	return s
}

// BigramPassReport is one pass's figures.
type BigramPassReport struct {
	Responses     int64   `json:"responses"`
	ThroughputRPS float64 `json:"throughput_rps"`
	HitRate       float64 `json:"hit_rate"` // share of serves below the home server
	MeanHops      float64 `json:"mean_hops"`
	ServingNodes  int     `json:"serving_nodes"`
	DiskHits      int64   `json:"disk_hits"`
}

// BigramReport is the bigger-than-ram JSON document.
type BigramReport struct {
	Schema   string     `json:"schema"`
	Scenario string     `json:"scenario"`
	Spec     BigramSpec `json:"spec"`

	InRAM   BigramPassReport `json:"in_ram"`
	MemOnly BigramPassReport `json:"mem_only"`
	TwoTier BigramPassReport `json:"two_tier"`

	// HitDrop figures: in-ram hit rate minus each constrained pass's. The
	// gate bounds two-tier's drop and requires mem-only's to be a multiple
	// of it.
	MemOnlyHitDrop float64 `json:"mem_only_hit_drop"`
	TwoTierHitDrop float64 `json:"two_tier_hit_drop"`
}

// RunBigram executes the three passes and assembles the report. The log
// callback (may be nil) receives one line per pass.
func RunBigram(sp BigramSpec, logf func(format string, args ...any)) (*BigramReport, error) {
	sp = sp.WithDefaults()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	base := ClosedLoopSpec{
		Seed: sp.Seed, Nodes: sp.Nodes, Clients: sp.Clients,
		NumDocs: sp.NumDocs, BodyBytes: sp.BodyBytes, ZipfSkew: sp.ZipfSkew,
		Duration: sp.Duration, Network: transport.TCPNetwork{},
	}

	run := func(name string, mut func(*ClosedLoopSpec)) (BigramPassReport, error) {
		cl := base
		mut(&cl)
		res, err := RunClosedLoop(cl)
		if err != nil {
			return BigramPassReport{}, fmt.Errorf("bigram: %s pass: %w", name, err)
		}
		rep := BigramPassReport{
			Responses:     res.Responses,
			ThroughputRPS: res.ThroughputRPS,
			HitRate:       res.HitRate,
			MeanHops:      res.MeanHops,
			ServingNodes:  res.ServingNodes,
			DiskHits:      res.DiskHits,
		}
		logf("  %-8s %6d resp, hit rate %.4f, disk hits %d", name+":", rep.Responses, rep.HitRate, rep.DiskHits)
		return rep, nil
	}

	inram, err := run("in-ram", func(*ClosedLoopSpec) {})
	if err != nil {
		return nil, err
	}
	memonly, err := run("mem-only", func(cl *ClosedLoopSpec) {
		cl.CacheBudgetBytes = sp.CacheBudgetBytes
	})
	if err != nil {
		return nil, err
	}
	dataDir, err := os.MkdirTemp("", "webwave-bigram-")
	if err != nil {
		return nil, fmt.Errorf("bigram: data dir: %w", err)
	}
	defer os.RemoveAll(dataDir)
	twotier, err := run("two-tier", func(cl *ClosedLoopSpec) {
		cl.CacheBudgetBytes = sp.CacheBudgetBytes
		cl.DiskBudgetBytes = sp.DiskBudgetBytes
		cl.DataDir = dataDir
	})
	if err != nil {
		return nil, err
	}

	return &BigramReport{
		Schema: BigramSchema, Scenario: "bigger-than-ram", Spec: sp,
		InRAM: inram, MemOnly: memonly, TwoTier: twotier,
		MemOnlyHitDrop: round6(inram.HitRate - memonly.HitRate),
		TwoTierHitDrop: round6(inram.HitRate - twotier.HitRate),
	}, nil
}
