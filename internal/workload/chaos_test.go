package workload

import "testing"

// TestChaosRunSmall smoke-tests the chaos runner end to end on a small
// tree: interior nodes die and restart mid-schedule, the tree must repair
// (reconnects observed, nobody left orphaned) and keep answering a solid
// majority of the offered load. Thresholds are deliberately loose — this is
// a wall-clock run on shared CI hardware; the calibrated gate lives in
// benchgate against the committed baseline.
func TestChaosRunSmall(t *testing.T) {
	rep, err := RunChaos(ChaosSpec{
		Seed: 1, Nodes: 9, NumDocs: 8, TotalRate: 150, Duration: 2.5,
	}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ChaosSchema || rep.Scenario != "chaos" {
		t.Fatalf("bad report identity: %q %q", rep.Schema, rep.Scenario)
	}
	if len(rep.Killed) == 0 {
		t.Fatal("no interior nodes killed")
	}
	if rep.Offered == 0 || rep.Responses == 0 {
		t.Fatalf("no traffic flowed: offered %d, responses %d", rep.Offered, rep.Responses)
	}
	if rep.Availability < 0.5 {
		t.Errorf("availability %v implausibly low for a small kill", rep.Availability)
	}
	if rep.Reconnects < 1 {
		t.Errorf("reconnects = %d, want at least one failover", rep.Reconnects)
	}
	if rep.FinalOrphaned != 0 {
		t.Errorf("final orphaned = %d, want a fully repaired tree", rep.FinalOrphaned)
	}
	if rep.ReabsorbSeconds < 0 {
		t.Error("repair never completed (reabsorb_seconds = -1)")
	}
	if rep.NoFailJain <= 0 || rep.PostRepairJain <= 0 {
		t.Errorf("jain figures missing: %v / %v", rep.PostRepairJain, rep.NoFailJain)
	}
}
