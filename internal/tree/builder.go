package tree

import "fmt"

// Builder constructs trees incrementally. The first node added becomes the
// root. Builder is not safe for concurrent use.
type Builder struct {
	parent []int
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// Root adds the root node and returns its id (always 0). It must be called
// first and exactly once.
func (b *Builder) Root() int {
	if len(b.parent) != 0 {
		panic("tree: Builder.Root called twice")
	}
	b.parent = append(b.parent, NoParent)
	return 0
}

// Child adds a new node under parent p and returns its id.
func (b *Builder) Child(p int) int {
	if p < 0 || p >= len(b.parent) {
		panic(fmt.Sprintf("tree: Builder.Child parent %d out of range (n=%d)", p, len(b.parent)))
	}
	id := len(b.parent)
	b.parent = append(b.parent, p)
	return id
}

// Children adds k children under p and returns their ids.
func (b *Builder) Children(p, k int) []int {
	ids := make([]int, k)
	for i := range ids {
		ids[i] = b.Child(p)
	}
	return ids
}

// Len returns the number of nodes added so far.
func (b *Builder) Len() int { return len(b.parent) }

// Build finalizes the tree. The Builder may continue to be used afterwards;
// Build copies its state.
func (b *Builder) Build() (*Tree, error) {
	return FromParents(b.parent)
}

// MustBuild is Build that panics on error, for statically correct
// construction sequences.
func (b *Builder) MustBuild() *Tree {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}
