package tree

// This file constructs the concrete tree instances used by the paper's
// figures. The published scan does not give machine-readable rate tables, so
// the instances below are crafted to exhibit exactly the properties each
// figure demonstrates (documented per constructor); the experiment harness
// verifies those properties rather than magic numbers.

// Figure2a returns the routing tree and spontaneous request rates of
// Figure 2(a): a TLB load assignment that is also GLE (global load
// equality). A 3-node star where both leaves generate load lets WebFold fold
// everything into one fold, so every node serves total/n.
func Figure2a() (*Tree, []float64) {
	t := MustFromParents([]int{NoParent, 0, 0})
	return t, []float64{0, 30, 30}
}

// Figure2b returns the tree and rates of Figure 2(b): a TLB load assignment
// that is NOT GLE. All load originates at the root; NSS (no sibling sharing)
// forbids pushing it down into subtrees that never requested it, so the root
// fold stays a singleton carrying everything.
func Figure2b() (*Tree, []float64) {
	t := MustFromParents([]int{NoParent, 0, 0})
	return t, []float64{60, 0, 0}
}

// Figure4 returns an 8-node tree and rates on which WebFold performs a
// complete multi-step folding sequence (the paper's Figure 4 walk-through):
//
//	    0 (E=10)
//	   / \
//	  1   2        (E=0, E=0)
//	 / \   \
//	3   4   5      (E=40, E=40, E=0)
//	       / \
//	      6   7    (E=12, E=12)
//
// Folding proceeds max-average-first: 3→1, 4→1, {1,3,4}→0, 6→5, 7→5,
// {5,6,7}→2, terminating with folds {0,1,3,4} at load 22.5 and {2,5,6,7} at
// load 6 — a TLB assignment that is far from GLE (114/8 = 14.25).
func Figure4() (*Tree, []float64) {
	t := MustFromParents([]int{NoParent, 0, 0, 1, 1, 2, 5, 5})
	return t, []float64{10, 0, 0, 40, 40, 0, 12, 12}
}

// Figure6 returns the hand-crafted convergence tree of Figure 6(a): a
// 14-node tree whose spontaneous rates force a variety of fold patterns
// (singleton folds, a chain fold, bushy folds), used to demonstrate
// WebWave's convergence to TLB in Figure 6(b).
func Figure6() (*Tree, []float64) {
	b := NewBuilder()
	root := b.Root()    // 0
	n1 := b.Child(root) // 1
	n2 := b.Child(root) // 2
	n3 := b.Child(root) // 3
	b.Child(n1)         // 4
	b.Child(n1)         // 5
	n6 := b.Child(n2)   // 6
	n7 := b.Child(n2)   // 7
	n8 := b.Child(n7)   // 8
	b.Child(n3)         // 9
	b.Child(n3)         // 10
	b.Child(n6)         // 11
	b.Child(n8)         // 12
	b.Child(n8)         // 13
	t := b.MustBuild()
	rates := []float64{
		0: 5, 1: 50, 2: 0, 3: 10,
		4: 2, 5: 2, 6: 30, 7: 0,
		8: 24, 9: 10, 10: 10, 11: 6,
		12: 3, 13: 3,
	}
	return t, rates
}

// Figure7Topology returns the 4-server topology of Figure 7 (the potential
// barrier example): node 0 is the home server, node 1 is the intermediate
// server (the barrier), nodes 2 and 3 are its children.
//
//	  0  (home: authoritative copies of d1, d2, d3)
//	  |
//	  1  (caches d1, d2 — the potential barrier)
//	 / \
//	2   3
//
// Requests for documents d1 and d2 are issued by node 3; requests for d3 are
// issued by node 2. With 120 req/s per document the TLB assignment serves 90
// req/s at every node, matching the paper's narrative.
func Figure7Topology() (*Tree, []float64) {
	t := MustFromParents([]int{NoParent, 0, 1, 1})
	return t, []float64{0, 0, 120, 240}
}
