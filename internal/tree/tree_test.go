package tree

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestFromParentsValid(t *testing.T) {
	tests := []struct {
		name    string
		parents []int
		root    int
		height  int
		leaves  []int
	}{
		{"single", []int{NoParent}, 0, 0, []int{0}},
		{"chain3", []int{NoParent, 0, 1}, 0, 2, []int{2}},
		{"star4", []int{NoParent, 0, 0, 0}, 0, 1, []int{1, 2, 3}},
		{"rootNotZero", []int{2, 2, NoParent}, 2, 1, []int{0, 1}},
		{"binary7", []int{NoParent, 0, 0, 1, 1, 2, 2}, 0, 2, []int{3, 4, 5, 6}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := FromParents(tc.parents)
			if err != nil {
				t.Fatalf("FromParents(%v): %v", tc.parents, err)
			}
			if tr.Root() != tc.root {
				t.Errorf("Root() = %d, want %d", tr.Root(), tc.root)
			}
			if tr.Height() != tc.height {
				t.Errorf("Height() = %d, want %d", tr.Height(), tc.height)
			}
			if got := tr.Leaves(); !reflect.DeepEqual(got, tc.leaves) {
				t.Errorf("Leaves() = %v, want %v", got, tc.leaves)
			}
			if tr.Len() != len(tc.parents) {
				t.Errorf("Len() = %d, want %d", tr.Len(), len(tc.parents))
			}
		})
	}
}

func TestFromParentsErrors(t *testing.T) {
	tests := []struct {
		name    string
		parents []int
		wantErr error
	}{
		{"empty", nil, ErrEmpty},
		{"noRoot", []int{1, 0}, ErrNoRoot},
		{"twoRoots", []int{NoParent, NoParent}, ErrMultipleRoots},
		{"outOfRange", []int{NoParent, 5}, ErrBadParent},
		{"selfLoop", []int{NoParent, 1}, ErrCycle},
		{"cycle", []int{NoParent, 2, 1}, ErrCycle},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := FromParents(tc.parents)
			if !errors.Is(err, tc.wantErr) {
				t.Errorf("FromParents(%v) error = %v, want %v", tc.parents, err, tc.wantErr)
			}
		})
	}
}

func TestMustFromParentsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustFromParents on invalid input did not panic")
		}
	}()
	MustFromParents([]int{0})
}

func TestParentChildConsistency(t *testing.T) {
	tr := MustFromParents([]int{NoParent, 0, 0, 1, 1, 2, 2})
	for v := 0; v < tr.Len(); v++ {
		for _, c := range tr.Children(v) {
			if tr.Parent(c) != v {
				t.Errorf("Parent(Children(%d)=%d) = %d", v, c, tr.Parent(c))
			}
		}
	}
	if tr.Parent(tr.Root()) != NoParent {
		t.Errorf("root parent = %d, want NoParent", tr.Parent(tr.Root()))
	}
}

func TestChildrenCopyIsolated(t *testing.T) {
	tr := MustFromParents([]int{NoParent, 0, 0})
	kids := tr.Children(0)
	kids[0] = 99
	if got := tr.Children(0); got[0] == 99 {
		t.Error("Children returned an aliased slice; mutation leaked into the tree")
	}
}

func TestDegree(t *testing.T) {
	tr := MustFromParents([]int{NoParent, 0, 0, 1})
	tests := []struct{ node, want int }{
		{0, 2}, // two children, no parent
		{1, 2}, // one child + parent
		{2, 1}, // parent only
		{3, 1},
	}
	for _, tc := range tests {
		if got := tr.Degree(tc.node); got != tc.want {
			t.Errorf("Degree(%d) = %d, want %d", tc.node, got, tc.want)
		}
	}
	if got := tr.MaxDegree(); got != 2 {
		t.Errorf("MaxDegree() = %d, want 2", got)
	}
}

func TestPostOrderChildrenBeforeParents(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr, err := Random(50, rng)
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, tr.Len())
	for i, v := range tr.PostOrder() {
		pos[v] = i
	}
	for v := 0; v < tr.Len(); v++ {
		if v != tr.Root() && pos[v] > pos[tr.Parent(v)] {
			t.Fatalf("node %d appears after its parent %d in post-order", v, tr.Parent(v))
		}
	}
}

func TestPreOrderParentsBeforeChildren(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr, err := Random(50, rng)
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, tr.Len())
	for i, v := range tr.PreOrder() {
		pos[v] = i
	}
	for v := 0; v < tr.Len(); v++ {
		if v != tr.Root() && pos[v] < pos[tr.Parent(v)] {
			t.Fatalf("node %d appears before its parent %d in pre-order", v, tr.Parent(v))
		}
	}
}

func TestTraversalsCoverAllNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr, err := Random(40, rng)
	if err != nil {
		t.Fatal(err)
	}
	for name, order := range map[string][]int{
		"post": tr.PostOrder(),
		"pre":  tr.PreOrder(),
		"bfs":  tr.BFSOrder(),
	} {
		if len(order) != tr.Len() {
			t.Fatalf("%s order has %d nodes, want %d", name, len(order), tr.Len())
		}
		seen := make(map[int]bool, len(order))
		for _, v := range order {
			if seen[v] {
				t.Fatalf("%s order repeats node %d", name, v)
			}
			seen[v] = true
		}
	}
}

func TestBFSOrderByDepth(t *testing.T) {
	tr := MustFromParents([]int{NoParent, 0, 0, 1, 1, 2, 2})
	prev := -1
	for _, v := range tr.BFSOrder() {
		if d := tr.Depth(v); d < prev {
			t.Fatalf("BFS visits depth %d after depth %d", d, prev)
		} else {
			prev = d
		}
	}
}

func TestSubtreeSizeAndNodes(t *testing.T) {
	tr := MustFromParents([]int{NoParent, 0, 0, 1, 1, 2, 2})
	if got := tr.SubtreeSize(0); got != 7 {
		t.Errorf("SubtreeSize(root) = %d, want 7", got)
	}
	if got := tr.SubtreeSize(1); got != 3 {
		t.Errorf("SubtreeSize(1) = %d, want 3", got)
	}
	nodes := tr.SubtreeNodes(2)
	sort.Ints(nodes)
	if want := []int{2, 5, 6}; !reflect.DeepEqual(nodes, want) {
		t.Errorf("SubtreeNodes(2) = %v, want %v", nodes, want)
	}
}

func TestSubtreeSums(t *testing.T) {
	tr := MustFromParents([]int{NoParent, 0, 0, 1})
	vals := []float64{1, 2, 4, 8}
	sums := tr.SubtreeSums(vals)
	want := []float64{15, 10, 4, 8}
	if !reflect.DeepEqual(sums, want) {
		t.Errorf("SubtreeSums = %v, want %v", sums, want)
	}
}

func TestPathToRootAndAncestor(t *testing.T) {
	tr := MustFromParents([]int{NoParent, 0, 1, 2})
	if got := tr.PathToRoot(3); !reflect.DeepEqual(got, []int{3, 2, 1, 0}) {
		t.Errorf("PathToRoot(3) = %v", got)
	}
	if !tr.IsAncestor(1, 3) || !tr.IsAncestor(3, 3) {
		t.Error("IsAncestor false negative")
	}
	if tr.IsAncestor(3, 1) {
		t.Error("IsAncestor false positive")
	}
}

func TestEdgesCount(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr, err := Random(33, rng)
	if err != nil {
		t.Fatal(err)
	}
	edges := tr.Edges()
	if len(edges) != tr.Len()-1 {
		t.Fatalf("Edges() returned %d edges, want %d", len(edges), tr.Len()-1)
	}
	for _, e := range edges {
		if tr.Parent(e[1]) != e[0] {
			t.Fatalf("edge %v is not a parent-child pair", e)
		}
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	tr := MustFromParents([]int{NoParent, 0, 0, 1, 1})
	perm := []int{4, 3, 2, 1, 0}
	rt, err := tr.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Root() != 4 {
		t.Errorf("relabeled root = %d, want 4", rt.Root())
	}
	// Depth profile must be preserved under relabeling.
	for v := 0; v < tr.Len(); v++ {
		if tr.Depth(v) != rt.Depth(perm[v]) {
			t.Errorf("depth mismatch: node %d depth %d vs relabeled %d depth %d",
				v, tr.Depth(v), perm[v], rt.Depth(perm[v]))
		}
	}
	vals := []float64{10, 20, 30, 40, 50}
	mapped := ApplyPermutation(vals, perm)
	for i, v := range vals {
		if mapped[perm[i]] != v {
			t.Errorf("ApplyPermutation misplaced value %v", v)
		}
	}
}

func TestRelabelRejectsBadPermutations(t *testing.T) {
	tr := MustFromParents([]int{NoParent, 0})
	if _, err := tr.Relabel([]int{0}); err == nil {
		t.Error("short permutation accepted")
	}
	if _, err := tr.Relabel([]int{0, 0}); err == nil {
		t.Error("duplicate permutation accepted")
	}
	if _, err := tr.Relabel([]int{0, 5}); err == nil {
		t.Error("out-of-range permutation accepted")
	}
}

func TestEqual(t *testing.T) {
	a := MustFromParents([]int{NoParent, 0, 0})
	b := MustFromParents([]int{NoParent, 0, 0})
	c := MustFromParents([]int{NoParent, 0, 1})
	if !a.Equal(b) {
		t.Error("identical trees not Equal")
	}
	if a.Equal(c) {
		t.Error("different trees Equal")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	orig, err := Random(25, rng)
	if err != nil {
		t.Fatal(err)
	}
	text, err := orig.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseParents(string(text))
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Equal(back) {
		t.Error("MarshalText/ParseParents round trip changed the tree")
	}
}

func TestParseParentsErrors(t *testing.T) {
	if _, err := ParseParents(""); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty parse error = %v", err)
	}
	if _, err := ParseParents("-1 x"); err == nil {
		t.Error("non-numeric parse accepted")
	}
}

func TestDOTOutput(t *testing.T) {
	tr := MustFromParents([]int{NoParent, 0})
	dot := tr.DOT("t", nil)
	for _, want := range []string{"digraph", "n1 -> n0", "rankdir=BT"} {
		if !contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}

func TestBuilder(t *testing.T) {
	b := NewBuilder()
	root := b.Root()
	kids := b.Children(root, 3)
	grand := b.Child(kids[1])
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 5 {
		t.Fatalf("Len = %d, want 5", tr.Len())
	}
	if tr.Parent(grand) != kids[1] {
		t.Errorf("grandchild parent = %d, want %d", tr.Parent(grand), kids[1])
	}
}

func TestBuilderPanics(t *testing.T) {
	t.Run("doubleRoot", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("second Root() did not panic")
			}
		}()
		b := NewBuilder()
		b.Root()
		b.Root()
	})
	t.Run("badParent", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("Child(99) did not panic")
			}
		}()
		b := NewBuilder()
		b.Root()
		b.Child(99)
	})
}

func TestGenerators(t *testing.T) {
	t.Run("chain", func(t *testing.T) {
		tr, err := Chain(5)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Height() != 4 || len(tr.Leaves()) != 1 {
			t.Errorf("Chain(5): height=%d leaves=%d", tr.Height(), len(tr.Leaves()))
		}
	})
	t.Run("star", func(t *testing.T) {
		tr, err := Star(6)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Height() != 1 || len(tr.Leaves()) != 5 {
			t.Errorf("Star(6): height=%d leaves=%d", tr.Height(), len(tr.Leaves()))
		}
	})
	t.Run("kary", func(t *testing.T) {
		tr, err := KAry(2, 3)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Len() != 15 || tr.Height() != 3 {
			t.Errorf("KAry(2,3): n=%d height=%d", tr.Len(), tr.Height())
		}
		for v := 0; v < tr.Len(); v++ {
			if n := tr.NumChildren(v); n != 0 && n != 2 {
				t.Errorf("KAry(2,3) node %d has %d children", v, n)
			}
		}
	})
	t.Run("karyErrors", func(t *testing.T) {
		if _, err := KAry(0, 2); err == nil {
			t.Error("KAry(0,·) accepted")
		}
		if _, err := KAry(2, -1); err == nil {
			t.Error("KAry(·,-1) accepted")
		}
	})
}

func TestRandomDepthExactHeight(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20; i++ {
		n := 12 + rng.Intn(60)
		depth := 1 + rng.Intn(10)
		if depth >= n {
			depth = n - 1
		}
		tr, err := RandomDepth(n, depth, rng)
		if err != nil {
			t.Fatalf("RandomDepth(%d,%d): %v", n, depth, err)
		}
		if tr.Height() != depth {
			t.Fatalf("RandomDepth(%d,%d) height = %d", n, depth, tr.Height())
		}
	}
	if _, err := RandomDepth(3, 5, rng); err == nil {
		t.Error("RandomDepth with depth >= n accepted")
	}
}

func TestRandomBoundedDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tr, err := RandomBounded(200, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < tr.Len(); v++ {
		if tr.NumChildren(v) > 3 {
			t.Fatalf("node %d has %d > 3 children", v, tr.NumChildren(v))
		}
	}
}

func TestRandomCaterpillar(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr, err := RandomCaterpillar(30, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 9 {
		t.Errorf("caterpillar height %d < spine-1", tr.Height())
	}
}

// Property: any parent array generated by Random round-trips through
// MarshalText and preserves every derived quantity.
func TestQuickRandomTreesWellFormed(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%120) + 1
		rng := rand.New(rand.NewSource(seed))
		tr, err := Random(n, rng)
		if err != nil {
			return false
		}
		// Depth consistency: every child is exactly one deeper.
		for v := 0; v < tr.Len(); v++ {
			if v != tr.Root() && tr.Depth(v) != tr.Depth(tr.Parent(v))+1 {
				return false
			}
		}
		// Subtree sizes sum correctly at the root.
		if tr.SubtreeSize(tr.Root()) != tr.Len() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPaperTrees(t *testing.T) {
	t2a, e2a := Figure2a()
	if t2a.Len() != 3 || len(e2a) != 3 {
		t.Error("Figure2a malformed")
	}
	t2b, e2b := Figure2b()
	if t2b.Len() != 3 || e2b[t2b.Root()] != 60 {
		t.Error("Figure2b malformed")
	}
	t4, e4 := Figure4()
	if t4.Len() != 8 || len(e4) != 8 {
		t.Error("Figure4 malformed")
	}
	t6, e6 := Figure6()
	if t6.Len() != 14 || len(e6) != 14 {
		t.Error("Figure6 malformed")
	}
	t7, e7 := Figure7Topology()
	if t7.Len() != 4 || e7[2] != 120 || e7[3] != 240 {
		t.Error("Figure7Topology malformed")
	}
	// The Figure 7 topology is the chain root->1 with leaves 2,3 under 1.
	if t7.Parent(2) != 1 || t7.Parent(3) != 1 || t7.Parent(1) != 0 {
		t.Error("Figure7Topology structure wrong")
	}
}

func TestFormatWithValues(t *testing.T) {
	tr := MustFromParents([]int{NoParent, 0})
	out := tr.FormatWithValues([]string{"E"}, []float64{1.5, 2.5})
	if !contains(out, "E=1.5") || !contains(out, "E=2.5") {
		t.Errorf("FormatWithValues output missing annotations:\n%s", out)
	}
}

func TestReparent(t *testing.T) {
	tr := MustFromParents([]int{NoParent, 0, 0, 1, 1})
	// Move node 3 under node 2.
	nt, err := tr.Reparent(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if nt.Parent(3) != 2 {
		t.Errorf("parent(3) = %d, want 2", nt.Parent(3))
	}
	if tr.Parent(3) != 1 {
		t.Error("Reparent mutated the original tree")
	}
	if nt.Len() != tr.Len() {
		t.Error("node count changed")
	}
	// Errors: root, cycle, out of range.
	if _, err := tr.Reparent(0, 1); err == nil {
		t.Error("reparenting the root accepted")
	}
	if _, err := tr.Reparent(1, 3); err == nil {
		t.Error("cycle-creating reparent accepted (3 is in subtree of 1)")
	}
	if _, err := tr.Reparent(1, 1); err == nil {
		t.Error("self-parent accepted")
	}
	if _, err := tr.Reparent(-1, 0); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestSortedChildren(t *testing.T) {
	// Build a tree whose child lists are out of order by construction.
	tr := MustFromParents([]int{2, 2, NoParent, 1, 1})
	st := tr.SortedChildren()
	if !tr.Equal(st) {
		t.Error("SortedChildren changed the parent relation")
	}
	for v := 0; v < st.Len(); v++ {
		kids := st.Children(v)
		if !sort.IntsAreSorted(kids) {
			t.Errorf("children of %d not sorted: %v", v, kids)
		}
	}
}
