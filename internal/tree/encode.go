package tree

import (
	"fmt"
	"strconv"
	"strings"
)

// MarshalText encodes the tree as a space-separated parent list, e.g.
// "-1 0 0 1" for a root 0 with children 1,2 and grandchild 3 under 1.
// It implements encoding.TextMarshaler.
func (t *Tree) MarshalText() ([]byte, error) {
	parts := make([]string, len(t.parent))
	for i, p := range t.parent {
		parts[i] = strconv.Itoa(p)
	}
	return []byte(strings.Join(parts, " ")), nil
}

// ParseParents decodes the format produced by MarshalText.
func ParseParents(s string) (*Tree, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return nil, ErrEmpty
	}
	parent := make([]int, len(fields))
	for i, f := range fields {
		p, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("tree: parse field %d %q: %w", i, f, err)
		}
		parent[i] = p
	}
	return FromParents(parent)
}

// DOT renders the tree in Graphviz DOT format. The optional label function
// supplies per-node label text; if nil, node ids are used.
func (t *Tree) DOT(name string, label func(v int) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=BT;\n") // requests flow bottom-to-top toward the root
	for v := 0; v < t.Len(); v++ {
		if label != nil {
			fmt.Fprintf(&b, "  n%d [label=%q];\n", v, label(v))
		} else {
			fmt.Fprintf(&b, "  n%d;\n", v)
		}
	}
	for _, e := range t.Edges() {
		fmt.Fprintf(&b, "  n%d -> n%d;\n", e[1], e[0])
	}
	b.WriteString("}\n")
	return b.String()
}
