package tree

import (
	"fmt"
	"math/rand"
)

// Chain returns a path of n nodes: 0 is the root, node i+1 is the child of i.
func Chain(n int) (*Tree, error) {
	if n <= 0 {
		return nil, ErrEmpty
	}
	parent := make([]int, n)
	parent[0] = NoParent
	for i := 1; i < n; i++ {
		parent[i] = i - 1
	}
	return FromParents(parent)
}

// Star returns a root with n-1 leaf children.
func Star(n int) (*Tree, error) {
	if n <= 0 {
		return nil, ErrEmpty
	}
	parent := make([]int, n)
	parent[0] = NoParent
	for i := 1; i < n; i++ {
		parent[i] = 0
	}
	return FromParents(parent)
}

// KAry returns the complete k-ary tree of the given depth (depth 0 is a
// single root). Node ids are assigned in BFS order.
func KAry(k, depth int) (*Tree, error) {
	if k <= 0 {
		return nil, fmt.Errorf("tree: KAry branching factor %d <= 0", k)
	}
	if depth < 0 {
		return nil, fmt.Errorf("tree: KAry depth %d < 0", depth)
	}
	// Total nodes: (k^(depth+1)-1)/(k-1) for k>1, depth+1 for k==1.
	n := 1
	levelSize := 1
	for d := 0; d < depth; d++ {
		levelSize *= k
		n += levelSize
	}
	parent := make([]int, n)
	parent[0] = NoParent
	for i := 1; i < n; i++ {
		parent[i] = (i - 1) / k
	}
	return FromParents(parent)
}

// Random returns a uniformly random recursive tree on n nodes: node i's
// parent is drawn uniformly from 0..i-1. Deterministic for a given rng state.
func Random(n int, rng *rand.Rand) (*Tree, error) {
	if n <= 0 {
		return nil, ErrEmpty
	}
	parent := make([]int, n)
	parent[0] = NoParent
	for i := 1; i < n; i++ {
		parent[i] = rng.Intn(i)
	}
	return FromParents(parent)
}

// RandomDepth returns a random tree on n nodes whose height is exactly depth.
// It first lays down a spine (a chain of depth+1 nodes) to guarantee the
// height, then attaches the remaining nodes to uniformly random existing
// nodes whose depth is < depth (so the height bound is never exceeded).
//
// This realizes the paper's Section 5.1 experiment setup ("a random tree with
// depth 9"). n must be at least depth+1.
func RandomDepth(n, depth int, rng *rand.Rand) (*Tree, error) {
	if n <= 0 {
		return nil, ErrEmpty
	}
	if depth < 0 || depth >= n {
		return nil, fmt.Errorf("tree: RandomDepth depth %d incompatible with n %d", depth, n)
	}
	parent := make([]int, n)
	nodeDepth := make([]int, n)
	parent[0] = NoParent
	nodeDepth[0] = 0
	for i := 1; i <= depth; i++ {
		parent[i] = i - 1
		nodeDepth[i] = i
	}
	// Candidates for attachment: nodes with depth < depth limit.
	candidates := make([]int, 0, n)
	for i := 0; i <= depth; i++ {
		if nodeDepth[i] < depth {
			candidates = append(candidates, i)
		}
	}
	for i := depth + 1; i < n; i++ {
		p := candidates[rng.Intn(len(candidates))]
		parent[i] = p
		nodeDepth[i] = nodeDepth[p] + 1
		if nodeDepth[i] < depth {
			candidates = append(candidates, i)
		}
	}
	return FromParents(parent)
}

// RandomBounded returns a random tree on n nodes where every node has at most
// maxChildren children. Attachment targets are drawn uniformly from nodes
// with spare child capacity.
func RandomBounded(n, maxChildren int, rng *rand.Rand) (*Tree, error) {
	if n <= 0 {
		return nil, ErrEmpty
	}
	if maxChildren <= 0 {
		return nil, fmt.Errorf("tree: RandomBounded maxChildren %d <= 0", maxChildren)
	}
	parent := make([]int, n)
	parent[0] = NoParent
	childCount := make([]int, n)
	open := []int{0}
	for i := 1; i < n; i++ {
		idx := rng.Intn(len(open))
		p := open[idx]
		parent[i] = p
		childCount[p]++
		if childCount[p] >= maxChildren {
			// Remove p from the open set.
			open[idx] = open[len(open)-1]
			open = open[:len(open)-1]
		}
		open = append(open, i)
	}
	return FromParents(parent)
}

// RandomCaterpillar returns a chain of spineLen nodes with legLen leaf
// chains hanging off random spine nodes until n nodes exist. Caterpillar-ish
// trees stress WebFold's fold structure (long chains fold differently from
// bushy stars).
func RandomCaterpillar(n, spineLen int, rng *rand.Rand) (*Tree, error) {
	if n <= 0 {
		return nil, ErrEmpty
	}
	if spineLen <= 0 || spineLen > n {
		return nil, fmt.Errorf("tree: RandomCaterpillar spine %d incompatible with n %d", spineLen, n)
	}
	parent := make([]int, n)
	parent[0] = NoParent
	for i := 1; i < spineLen; i++ {
		parent[i] = i - 1
	}
	for i := spineLen; i < n; i++ {
		parent[i] = rng.Intn(spineLen)
	}
	return FromParents(parent)
}
