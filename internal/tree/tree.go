// Package tree models the routing tree T that underlies WebWave.
//
// The paper (Heddaya & Mirdad, "WebWave", BU-CS-96-024 / ICDCS'97) models the
// Internet as a forest of routing trees, each rooted at a home server that
// publishes a set of immutable documents. Requests originate at arbitrary
// nodes and travel up the tree toward the root; a node i is the parent of j
// when i is the first cache server on the route from j to the home server.
//
// A Tree is an immutable rooted tree over nodes 0..n-1. All per-node
// quantities used elsewhere in this module (spontaneous rates E, load
// assignments L, forwarded rates A) are dense []float64 vectors indexed by
// node.
package tree

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// NoParent marks the root's parent slot in parent-array representations.
const NoParent = -1

var (
	// ErrEmpty is returned when constructing a tree with no nodes.
	ErrEmpty = errors.New("tree: empty node set")
	// ErrMultipleRoots is returned when more than one node has no parent.
	ErrMultipleRoots = errors.New("tree: multiple roots")
	// ErrNoRoot is returned when every node has a parent (a cycle exists).
	ErrNoRoot = errors.New("tree: no root")
	// ErrCycle is returned when the parent array contains a cycle.
	ErrCycle = errors.New("tree: cycle detected")
	// ErrBadParent is returned when a parent index is out of range.
	ErrBadParent = errors.New("tree: parent index out of range")
)

// Tree is an immutable rooted tree on nodes 0..n-1.
//
// The zero value is not usable; construct trees with FromParents, NewBuilder,
// or one of the generators in this package.
type Tree struct {
	parent   []int
	children [][]int
	root     int

	// Derived, memoized at construction.
	depth     []int // depth[root] = 0
	postOrder []int // children before parents
	subSize   []int // size of subtree rooted at each node
	height    int
}

// FromParents builds a tree from a parent array: parent[i] is the parent of
// node i, and exactly one entry must be NoParent (the root). The array is
// copied; the caller keeps ownership of its slice.
func FromParents(parent []int) (*Tree, error) {
	n := len(parent)
	if n == 0 {
		return nil, ErrEmpty
	}
	p := make([]int, n)
	copy(p, parent)

	root := NoParent
	for i, pi := range p {
		switch {
		case pi == NoParent:
			if root != NoParent {
				return nil, fmt.Errorf("%w: nodes %d and %d", ErrMultipleRoots, root, i)
			}
			root = i
		case pi < 0 || pi >= n:
			return nil, fmt.Errorf("%w: node %d has parent %d (n=%d)", ErrBadParent, i, pi, n)
		case pi == i:
			return nil, fmt.Errorf("%w: node %d is its own parent", ErrCycle, i)
		}
	}
	if root == NoParent {
		return nil, ErrNoRoot
	}

	children := make([][]int, n)
	for i, pi := range p {
		if pi != NoParent {
			children[pi] = append(children[pi], i)
		}
	}

	t := &Tree{parent: p, children: children, root: root}
	if err := t.computeDerived(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustFromParents is FromParents that panics on error. It is intended for
// statically known-good literals (package initialization, tests, examples).
func MustFromParents(parent []int) *Tree {
	t, err := FromParents(parent)
	if err != nil {
		panic(err)
	}
	return t
}

// computeDerived fills depth, postOrder, subSize and height, and detects
// cycles (nodes unreachable from the root).
func (t *Tree) computeDerived() error {
	n := len(t.parent)
	t.depth = make([]int, n)
	for i := range t.depth {
		t.depth[i] = -1
	}
	t.depth[t.root] = 0
	t.height = 0

	// Iterative DFS from the root; records post-order.
	t.postOrder = make([]int, 0, n)
	type frame struct {
		node  int
		child int // index into children[node] of next child to visit
	}
	stack := make([]frame, 0, n)
	stack = append(stack, frame{node: t.root})
	visited := 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		kids := t.children[f.node]
		if f.child < len(kids) {
			c := kids[f.child]
			f.child++
			t.depth[c] = t.depth[f.node] + 1
			if t.depth[c] > t.height {
				t.height = t.depth[c]
			}
			visited++
			stack = append(stack, frame{node: c})
			continue
		}
		t.postOrder = append(t.postOrder, f.node)
		stack = stack[:len(stack)-1]
	}
	if visited != n {
		return fmt.Errorf("%w: %d of %d nodes unreachable from root %d", ErrCycle, n-visited, n, t.root)
	}

	t.subSize = make([]int, n)
	for _, v := range t.postOrder {
		t.subSize[v] = 1
		for _, c := range t.children[v] {
			t.subSize[v] += t.subSize[c]
		}
	}
	return nil
}

// Len returns the number of nodes.
func (t *Tree) Len() int { return len(t.parent) }

// Root returns the root node (the home server).
func (t *Tree) Root() int { return t.root }

// Parent returns the parent of v, or NoParent if v is the root.
func (t *Tree) Parent(v int) int { return t.parent[v] }

// Children returns a copy of v's children.
func (t *Tree) Children(v int) []int {
	kids := t.children[v]
	out := make([]int, len(kids))
	copy(out, kids)
	return out
}

// NumChildren returns the number of children of v.
func (t *Tree) NumChildren(v int) int { return len(t.children[v]) }

// EachChild calls fn for every child of v, in insertion order. It avoids the
// allocation of Children for hot paths.
func (t *Tree) EachChild(v int, fn func(child int)) {
	for _, c := range t.children[v] {
		fn(c)
	}
}

// Degree returns the tree degree of v: children plus parent edge.
func (t *Tree) Degree(v int) int {
	d := len(t.children[v])
	if v != t.root {
		d++
	}
	return d
}

// MaxDegree returns the maximum Degree over all nodes.
func (t *Tree) MaxDegree() int {
	m := 0
	for v := range t.parent {
		if d := t.Degree(v); d > m {
			m = d
		}
	}
	return m
}

// IsLeaf reports whether v has no children.
func (t *Tree) IsLeaf(v int) bool { return len(t.children[v]) == 0 }

// Leaves returns all leaves in increasing node order.
func (t *Tree) Leaves() []int {
	var out []int
	for v := range t.parent {
		if t.IsLeaf(v) {
			out = append(out, v)
		}
	}
	return out
}

// Depth returns the number of edges from the root to v.
func (t *Tree) Depth(v int) int { return t.depth[v] }

// Height returns the maximum depth over all nodes.
func (t *Tree) Height() int { return t.height }

// SubtreeSize returns the number of nodes in the subtree rooted at v
// (including v).
func (t *Tree) SubtreeSize(v int) int { return t.subSize[v] }

// PostOrder returns a copy of a post-order traversal (every node appears
// after all of its children). This is the natural order for flow-conservation
// sweeps that compute forwarded rates A bottom-up.
func (t *Tree) PostOrder() []int {
	out := make([]int, len(t.postOrder))
	copy(out, t.postOrder)
	return out
}

// PreOrder returns a traversal where every node appears before its children.
func (t *Tree) PreOrder() []int {
	out := make([]int, 0, len(t.parent))
	stack := []int{t.root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, v)
		kids := t.children[v]
		for i := len(kids) - 1; i >= 0; i-- {
			stack = append(stack, kids[i])
		}
	}
	return out
}

// BFSOrder returns a breadth-first traversal from the root.
func (t *Tree) BFSOrder() []int {
	out := make([]int, 0, len(t.parent))
	queue := []int{t.root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		out = append(out, v)
		out2 := t.children[v]
		queue = append(queue, out2...)
	}
	return out
}

// PathToRoot returns the node sequence v, parent(v), ..., root.
func (t *Tree) PathToRoot(v int) []int {
	out := []int{v}
	for v != t.root {
		v = t.parent[v]
		out = append(out, v)
	}
	return out
}

// IsAncestor reports whether a is an ancestor of v (a == v counts).
func (t *Tree) IsAncestor(a, v int) bool {
	for {
		if v == a {
			return true
		}
		if v == t.root {
			return false
		}
		v = t.parent[v]
	}
}

// SubtreeNodes returns all nodes in the subtree rooted at v, in pre-order.
func (t *Tree) SubtreeNodes(v int) []int {
	out := make([]int, 0, t.subSize[v])
	stack := []int{v}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, u)
		kids := t.children[u]
		for i := len(kids) - 1; i >= 0; i-- {
			stack = append(stack, kids[i])
		}
	}
	return out
}

// SubtreeSums returns, for every node v, the sum of vals over the subtree
// rooted at v. len(vals) must equal t.Len().
func (t *Tree) SubtreeSums(vals []float64) []float64 {
	sums := make([]float64, len(vals))
	for _, v := range t.postOrder {
		s := vals[v]
		for _, c := range t.children[v] {
			s += sums[c]
		}
		sums[v] = s
	}
	return sums
}

// Parents returns a copy of the parent array.
func (t *Tree) Parents() []int {
	out := make([]int, len(t.parent))
	copy(out, t.parent)
	return out
}

// Edges returns every (parent, child) pair in BFS order.
func (t *Tree) Edges() [][2]int {
	out := make([][2]int, 0, len(t.parent)-1)
	for _, v := range t.BFSOrder() {
		for _, c := range t.children[v] {
			out = append(out, [2]int{v, c})
		}
	}
	return out
}

// String renders the tree as an indented outline, one node per line.
func (t *Tree) String() string {
	var b strings.Builder
	t.format(&b, t.root, 0, nil)
	return b.String()
}

// FormatWithValues renders the tree as an indented outline annotating every
// node with the given per-node values (e.g. spontaneous rates and load
// assignments). Any vals entry may be nil.
func (t *Tree) FormatWithValues(labels []string, vals ...[]float64) string {
	var b strings.Builder
	ann := func(v int) string {
		parts := make([]string, 0, len(vals))
		for i, col := range vals {
			if col == nil {
				continue
			}
			name := ""
			if i < len(labels) {
				name = labels[i] + "="
			}
			parts = append(parts, fmt.Sprintf("%s%.4g", name, col[v]))
		}
		if len(parts) == 0 {
			return ""
		}
		return " [" + strings.Join(parts, " ") + "]"
	}
	t.format(&b, t.root, 0, ann)
	return b.String()
}

func (t *Tree) format(b *strings.Builder, v, indent int, ann func(int) string) {
	for i := 0; i < indent; i++ {
		b.WriteString("  ")
	}
	fmt.Fprintf(b, "%d", v)
	if ann != nil {
		b.WriteString(ann(v))
	}
	b.WriteByte('\n')
	for _, c := range t.children[v] {
		t.format(b, c, indent+1, ann)
	}
}

// Equal reports whether two trees have identical node sets and parent
// relations.
func (t *Tree) Equal(o *Tree) bool {
	if t.Len() != o.Len() || t.root != o.root {
		return false
	}
	for i := range t.parent {
		if t.parent[i] != o.parent[i] {
			return false
		}
	}
	return true
}

// Relabel returns a new tree where node i of the receiver becomes node
// perm[i]. perm must be a permutation of 0..n-1. Per-node vectors can be
// mapped with ApplyPermutation.
func (t *Tree) Relabel(perm []int) (*Tree, error) {
	n := t.Len()
	if len(perm) != n {
		return nil, fmt.Errorf("tree: permutation length %d != n %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			return nil, fmt.Errorf("tree: invalid permutation")
		}
		seen[p] = true
	}
	np := make([]int, n)
	for i, pi := range t.parent {
		if pi == NoParent {
			np[perm[i]] = NoParent
		} else {
			np[perm[i]] = perm[pi]
		}
	}
	return FromParents(np)
}

// ApplyPermutation maps a per-node vector through the same permutation used
// by Relabel: out[perm[i]] = vals[i].
func ApplyPermutation(vals []float64, perm []int) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[perm[i]] = v
	}
	return out
}

// Reparent returns a new tree where node v's parent becomes newParent —
// a single routing change. v must not be the root and newParent must not
// lie in v's subtree (that would create a cycle).
func (t *Tree) Reparent(v, newParent int) (*Tree, error) {
	if v < 0 || v >= t.Len() || newParent < 0 || newParent >= t.Len() {
		return nil, fmt.Errorf("tree: Reparent(%d,%d) out of range", v, newParent)
	}
	if v == t.root {
		return nil, fmt.Errorf("tree: cannot reparent the root")
	}
	if t.IsAncestor(v, newParent) {
		return nil, fmt.Errorf("%w: new parent %d lies in subtree of %d", ErrCycle, newParent, v)
	}
	np := t.Parents()
	np[v] = newParent
	return FromParents(np)
}

// SortedChildren returns a copy of the tree where every child list is sorted
// ascending. Traversal orders become canonical; the parent relation is
// unchanged.
func (t *Tree) SortedChildren() *Tree {
	nt := &Tree{
		parent: append([]int(nil), t.parent...),
		root:   t.root,
	}
	nt.children = make([][]int, len(t.children))
	for v, kids := range t.children {
		ck := append([]int(nil), kids...)
		sort.Ints(ck)
		nt.children[v] = ck
	}
	// Derived values do not depend on child order except postOrder; recompute.
	if err := nt.computeDerived(); err != nil {
		// The parent relation was already validated; this cannot fail.
		panic(err)
	}
	return nt
}
