package sim

import (
	"reflect"
	"testing"
)

func TestEventOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.At(3, func() { got = append(got, 3) })
	e.At(1, func() { got = append(got, 1) })
	e.At(2, func() { got = append(got, 2) })
	e.RunAll(0)
	if want := []int{1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("order = %v, want %v", got, want)
	}
}

func TestTieBreakByInsertion(t *testing.T) {
	var e Engine
	var got []string
	e.At(1, func() { got = append(got, "a") })
	e.At(1, func() { got = append(got, "b") })
	e.At(1, func() { got = append(got, "c") })
	e.RunAll(0)
	if want := []string{"a", "b", "c"}; !reflect.DeepEqual(got, want) {
		t.Errorf("tie order = %v, want %v", got, want)
	}
}

func TestNowAdvances(t *testing.T) {
	var e Engine
	var seen []float64
	e.At(5, func() { seen = append(seen, e.Now()) })
	e.At(10, func() { seen = append(seen, e.Now()) })
	e.RunAll(0)
	if want := []float64{5, 10}; !reflect.DeepEqual(seen, want) {
		t.Errorf("times = %v, want %v", seen, want)
	}
	if e.Now() != 10 {
		t.Errorf("final Now = %v", e.Now())
	}
}

func TestAfterRelative(t *testing.T) {
	var e Engine
	var at float64
	e.At(4, func() {
		e.After(2.5, func() { at = e.Now() })
	})
	e.RunAll(0)
	if at != 6.5 {
		t.Errorf("After fired at %v, want 6.5", at)
	}
}

func TestSchedulingInPastClamps(t *testing.T) {
	var e Engine
	fired := false
	e.At(5, func() {
		e.At(1, func() { fired = true }) // in the past; must clamp to now
	})
	e.Run(5)
	if !fired {
		t.Error("past-scheduled event did not run by time 5")
	}
	if e.Now() != 5 {
		t.Errorf("Now = %v, want 5", e.Now())
	}
}

func TestEveryRepeatsUntilFalse(t *testing.T) {
	var e Engine
	count := 0
	e.Every(0, 1, func() bool {
		count++
		return count < 4
	})
	e.RunAll(0)
	if count != 4 {
		t.Errorf("Every fired %d times, want 4", count)
	}
	if e.Now() != 3 {
		t.Errorf("last firing at %v, want 3", e.Now())
	}
}

func TestEveryPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Every(·,0,·) did not panic")
		}
	}()
	var e Engine
	e.Every(0, 0, func() bool { return false })
}

func TestRunUntilBoundary(t *testing.T) {
	var e Engine
	var got []float64
	for _, tm := range []float64{1, 2, 3, 4} {
		tm := tm
		e.At(tm, func() { got = append(got, tm) })
	}
	n := e.Run(2) // events exactly at the boundary run
	if n != 2 {
		t.Errorf("Run(2) executed %d events, want 2", n)
	}
	if want := []float64{1, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("executed %v, want %v", got, want)
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	// Run advances Now to the boundary even with no event there.
	var e2 Engine
	e2.Run(7)
	if e2.Now() != 7 {
		t.Errorf("empty Run(7) Now = %v", e2.Now())
	}
}

func TestRunAllBounded(t *testing.T) {
	var e Engine
	count := 0
	e.Every(0, 1, func() bool {
		count++
		return true // would run forever
	})
	n := e.RunAll(10)
	if n != 10 || count != 10 {
		t.Errorf("bounded RunAll executed %d/%d", n, count)
	}
}

func TestStepOnEmpty(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestStepsCounter(t *testing.T) {
	var e Engine
	e.At(1, func() {})
	e.At(2, func() {})
	e.RunAll(0)
	if e.Steps() != 2 {
		t.Errorf("Steps = %d, want 2", e.Steps())
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []int {
		var e Engine
		var got []int
		e.Every(0, 2, func() bool { got = append(got, 0); return e.Now() < 10 })
		e.Every(1, 2, func() bool { got = append(got, 1); return e.Now() < 10 })
		e.Every(0, 3, func() bool { got = append(got, 2); return e.Now() < 10 })
		e.RunAll(0)
		return got
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Error("identical schedules interleaved differently")
	}
}
