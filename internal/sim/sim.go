// Package sim is a small deterministic discrete-event simulation engine used
// by the asynchronous WebWave simulations (gossip periods, diffusion periods
// and bounded communication delays, Section 5.1 of the paper).
//
// Events execute in (time, insertion-sequence) order, so runs are
// reproducible bit-for-bit for a fixed seed and schedule.
package sim

import (
	"container/heap"
	"math"
)

// Engine is a discrete-event scheduler. The zero value is ready to use.
// Engine is not safe for concurrent use; it models concurrency, it does not
// employ it.
type Engine struct {
	queue eventHeap
	now   float64
	seq   int64
	steps int64
}

type event struct {
	time float64
	seq  int64
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() int64 { return e.steps }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn at absolute virtual time t. Scheduling in the past (t <
// Now) clamps to Now: the event runs next, preserving determinism instead of
// silently reordering history.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.queue, event{time: t, seq: e.seq, fn: fn})
}

// After schedules fn d time units after Now.
func (e *Engine) After(d float64, fn func()) { e.At(e.now+d, fn) }

// Every schedules fn first at start and then every period units, for as long
// as fn returns true. period must be positive.
func (e *Engine) Every(start, period float64, fn func() bool) {
	if period <= 0 {
		panic("sim: Every with non-positive period")
	}
	var tick func()
	next := start
	tick = func() {
		if !fn() {
			return
		}
		next += period
		e.At(next, tick)
	}
	e.At(start, tick)
}

// Step executes the earliest pending event. It returns false when the queue
// is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(event)
	e.now = ev.time
	e.steps++
	ev.fn()
	return true
}

// Run executes events until the queue is empty or the next event is
// scheduled strictly after `until`. It returns the number of events
// executed. Events exactly at `until` run.
func (e *Engine) Run(until float64) int64 {
	var count int64
	for len(e.queue) > 0 && e.queue[0].time <= until {
		e.Step()
		count++
	}
	if e.now < until {
		e.now = until
	}
	return count
}

// RunAll executes events until the queue drains. maxEvents bounds runaway
// schedules; pass a non-positive value for no bound.
func (e *Engine) RunAll(maxEvents int64) int64 {
	if maxEvents <= 0 {
		maxEvents = math.MaxInt64
	}
	var count int64
	for count < maxEvents && e.Step() {
		count++
	}
	return count
}
