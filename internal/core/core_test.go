package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCloneVecIsolated(t *testing.T) {
	v := Vector{1, 2, 3}
	c := CloneVec(v)
	c[0] = 99
	if v[0] != 1 {
		t.Error("CloneVec aliased the input")
	}
}

func TestSumVec(t *testing.T) {
	tests := []struct {
		v    Vector
		want float64
	}{
		{nil, 0},
		{Vector{}, 0},
		{Vector{1.5, 2.5}, 4},
		{Vector{-1, 1}, 0},
	}
	for _, tc := range tests {
		if got := SumVec(tc.v); got != tc.want {
			t.Errorf("SumVec(%v) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

func TestMaxMinVec(t *testing.T) {
	v := Vector{3, 7, 7, 1}
	if m, i := MaxVec(v); m != 7 || i != 1 {
		t.Errorf("MaxVec = (%v,%d), want (7,1)", m, i)
	}
	if m, i := MinVec(v); m != 1 || i != 3 {
		t.Errorf("MinVec = (%v,%d), want (1,3)", m, i)
	}
	if m, i := MaxVec(nil); !math.IsInf(m, -1) || i != -1 {
		t.Errorf("MaxVec(nil) = (%v,%d)", m, i)
	}
	if m, i := MinVec(nil); !math.IsInf(m, 1) || i != -1 {
		t.Errorf("MinVec(nil) = (%v,%d)", m, i)
	}
}

func TestUniformVec(t *testing.T) {
	v := UniformVec(3, 2.5)
	for _, x := range v {
		if x != 2.5 {
			t.Fatalf("UniformVec entry %v", x)
		}
	}
	if len(UniformVec(0, 1)) != 0 {
		t.Error("UniformVec(0,·) non-empty")
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1, 1+1e-12, 1e-9) {
		t.Error("AlmostEqual too strict")
	}
	if AlmostEqual(1, 1.1, 1e-9) {
		t.Error("AlmostEqual too lax")
	}
	if !VecAlmostEqual(Vector{1, 2}, Vector{1, 2 + 1e-12}, 1e-9) {
		t.Error("VecAlmostEqual too strict")
	}
	if VecAlmostEqual(Vector{1}, Vector{1, 2}, 1e-9) {
		t.Error("VecAlmostEqual ignores length")
	}
}

func TestSortedDesc(t *testing.T) {
	v := Vector{1, 5, 3}
	s := SortedDesc(v)
	if s[0] != 5 || s[1] != 3 || s[2] != 1 {
		t.Errorf("SortedDesc = %v", s)
	}
	if v[0] != 1 {
		t.Error("SortedDesc mutated input")
	}
}

func TestLexLessDesc(t *testing.T) {
	tests := []struct {
		a, b Vector
		want int // sign
	}{
		{Vector{5, 1}, Vector{5, 2}, -1},
		{Vector{5, 2}, Vector{5, 1}, 1},
		{Vector{5, 1}, Vector{5, 1}, 0},
		{Vector{4, 9}, Vector{5, 0}, -1}, // first component dominates
	}
	for _, tc := range tests {
		got := LexLessDesc(tc.a, tc.b, 1e-9)
		switch {
		case tc.want < 0 && got >= 0,
			tc.want > 0 && got <= 0,
			tc.want == 0 && got != 0:
			t.Errorf("LexLessDesc(%v,%v) = %d, want sign %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestValidateRates(t *testing.T) {
	if err := ValidateRates(Vector{1, 0, 2}, 3); err != nil {
		t.Errorf("valid rates rejected: %v", err)
	}
	if err := ValidateRates(Vector{1}, 2); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := ValidateRates(Vector{-1}, 1); err == nil {
		t.Error("negative rate accepted")
	}
	if err := ValidateRates(Vector{math.NaN()}, 1); err == nil {
		t.Error("NaN rate accepted")
	}
	if err := ValidateRates(Vector{math.Inf(1)}, 1); err == nil {
		t.Error("Inf rate accepted")
	}
}

// Property: SortedDesc output is a permutation of the input and descending.
func TestQuickSortedDesc(t *testing.T) {
	f := func(xs []float64) bool {
		// Replace NaNs, which are incomparable.
		for i, x := range xs {
			if math.IsNaN(x) {
				xs[i] = 0
			}
		}
		s := SortedDesc(xs)
		if len(s) != len(xs) {
			return false
		}
		for i := 1; i < len(s); i++ {
			if s[i-1] < s[i] {
				return false
			}
		}
		// Permutation check via multiset counts.
		counts := make(map[float64]int, len(xs))
		for _, x := range xs {
			counts[x]++
		}
		for _, x := range s {
			counts[x]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
