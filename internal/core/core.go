// Package core holds the small kernel of types shared by every WebWave
// subsystem: document identities, per-node load vectors, and numeric
// tolerances.
//
// The paper's primary contribution — the TLB optimality definition, the
// WebFold offline algorithm and the WebWave distributed protocol — is
// implemented on top of these types in internal/fold, internal/wave and
// internal/docwave.
package core

import (
	"fmt"
	"math"
	"sort"
)

// Eps is the default absolute tolerance for comparing request rates. Rates
// in this module are float64 requests/second; the simulations conserve load
// to well within this bound.
const Eps = 1e-9

// DocID identifies a published document (in a real deployment, a URL).
type DocID string

// Document is an immutable published document served by a home server.
type Document struct {
	ID   DocID
	Home int   // node id of the home server (root of the routing tree)
	Size int64 // bytes; used by transfer-cost accounting
}

// Vector is a dense per-node quantity (spontaneous rates E, load assignment
// L, forwarded rates A), indexed by tree node id.
type Vector = []float64

// CloneVec returns a copy of v.
func CloneVec(v Vector) Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// SumVec returns the sum of v's entries.
func SumVec(v Vector) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// MaxVec returns the maximum entry and its index (lowest index on ties).
// It returns (-Inf, -1) for an empty vector.
func MaxVec(v Vector) (float64, int) {
	max, idx := math.Inf(-1), -1
	for i, x := range v {
		if x > max {
			max, idx = x, i
		}
	}
	return max, idx
}

// MinVec returns the minimum entry and its index (lowest index on ties).
// It returns (+Inf, -1) for an empty vector.
func MinVec(v Vector) (float64, int) {
	min, idx := math.Inf(1), -1
	for i, x := range v {
		if x < min {
			min, idx = x, i
		}
	}
	return min, idx
}

// UniformVec returns a vector of n copies of x.
func UniformVec(n int, x float64) Vector {
	out := make(Vector, n)
	for i := range out {
		out[i] = x
	}
	return out
}

// AlmostEqual reports whether |a-b| <= eps.
func AlmostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

// VecAlmostEqual reports whether two vectors match entry-wise within eps.
func VecAlmostEqual(a, b Vector, eps float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !AlmostEqual(a[i], b[i], eps) {
			return false
		}
	}
	return true
}

// SortedDesc returns a copy of v sorted in descending order. The TLB
// optimality criterion (Definition 1 of the paper) compares these profiles
// lexicographically.
func SortedDesc(v Vector) Vector {
	out := CloneVec(v)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// LexLessDesc compares two descending-sorted load profiles
// lexicographically. It returns a negative value if a is strictly better
// (smaller) than b under Definition 1, 0 if equal within eps, and positive
// if worse.
func LexLessDesc(a, b Vector, eps float64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]-eps:
			return -1
		case a[i] > b[i]+eps:
			return 1
		}
	}
	return len(a) - len(b)
}

// ValidateRates checks that a rate vector has the expected length and no
// negative or non-finite entries.
func ValidateRates(rates Vector, n int) error {
	if len(rates) != n {
		return fmt.Errorf("core: rate vector length %d, want %d", len(rates), n)
	}
	for i, r := range rates {
		if math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("core: rate[%d] = %v is not finite", i, r)
		}
		if r < 0 {
			return fmt.Errorf("core: rate[%d] = %v is negative", i, r)
		}
	}
	return nil
}
