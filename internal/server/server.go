// Package server implements a live WebWave cache server: a multi-core node
// that serves document requests, measures its load and the per-child
// forwarded rates over sliding windows, gossips load to its tree neighbors,
// delegates document service duty down the tree, sheds it up, claims
// passing request flow when under-loaded, and tunnels across potential
// barriers — the full protocol of the paper's Sections 3–5 over real
// message passing (in-memory or TCP transports).
//
// Unlike the fluid simulators (internal/wave, internal/docwave), nothing
// here conserves load by construction: requests physically travel up the
// routing tree and are served by the first willing cache copy or, finally,
// by the home server. Protocol state (targets, gossip views) is soft; lost
// or stale messages degrade balance, never correctness.
//
// The runtime is built for multi-core throughput. Per-document protocol
// state — admission filters, serve targets, rate windows, response routing,
// single-flight tables — is partitioned by hash(doc) across NumShards
// independent shard loops with no cross-shard locking; a separate control
// loop owns gossip, diffusion and tunneling, exchanging aggregate heat and
// duty with the shards through epoch-stamped snapshot mailboxes
// (atomic.Pointer) instead of shared maps. On top of that sits a lock-free
// read fast path: each connection's read goroutine consults a copy-on-write
// publication index and serves cached hits in place — zero event-loop hops —
// falling back to the owning shard's queue only on a miss, a rate-limited
// admission decision, or an eviction race.
//
// The runtime is also fault-tolerant: heartbeat ping/pong liveness
// detection turns silent failures (partitions, wedged peers) into closed
// connections; a node that loses its parent enters a degraded orphan mode
// (it keeps serving everything it holds and parks upward flow), fails over
// along Config.AncestorAddrs with a handshake that rejects dead-but-
// dialable links, and replays its held duty as reclaim frames across the
// repaired edge; a parent that loses a child re-absorbs the duty its
// per-child ledger says lived below the dead link. See failover.go and
// docs/ARCHITECTURE.md.
package server

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"webwave/internal/cachestore"
	"webwave/internal/core"
	"webwave/internal/diskstore"
	"webwave/internal/netproto"
	"webwave/internal/transport"
)

// Config describes one server's place in the routing tree.
type Config struct {
	ID   int
	Addr string // listen address on Network

	ParentID   int    // -1 for the home server
	ParentAddr string // empty for the home server
	HomeAddr   string // the root's address (tunneling target)

	// AncestorAddrs is the failover candidate list a non-root node walks
	// when its parent link dies: typically [parent, grandparent, ..., root].
	// Candidates are tried in order with a ping/pong handshake (a dial that
	// succeeds but answers nothing — a partitioned link — is rejected), and
	// the node re-identifies and replays a reclaim summary of its held duty
	// to whichever ancestor answers first. Empty disables failover: a node
	// that loses its parent stays orphaned (pre-failure behavior).
	AncestorAddrs []string

	// DialAttempts is the bounded dial budget Start spends on the
	// configured parent (jittered backoff between tries) before giving up:
	// with ancestors configured the node then starts orphaned and fails
	// over in the background; without them Start errors. Default 1 — the
	// historical single try. Multi-process swarms raise it so a node
	// exec'd moments before its parent attaches cleanly instead of
	// orphan-starting.
	DialAttempts int

	// ReconnectCap bounds the failover hunt's backoff: rounds over the
	// ancestor list are paced by a jittered exponential schedule from
	// GossipPeriod up to this cap (default 2s), so a node that outlives a
	// dying rack settles into a slow, desynchronized redial instead of a
	// crash-loop — and a whole subtree of orphans does not stampede a
	// restarted parent in lockstep.
	ReconnectCap time.Duration

	// HeartbeatPeriod enables the liveness detector: every period the
	// control loop pings its tree neighbors and counts the periods that
	// elapsed with no traffic from each. A neighbor silent for
	// HeartbeatMisses consecutive periods (default 3) is declared dead and
	// its connection closed, which triggers the same repair paths as a
	// transport-level error — this is what detects partitions and wedged
	// peers that never produce a read error. 0 disables the detector.
	HeartbeatPeriod time.Duration
	HeartbeatMisses int

	// Docs lists the documents homed at this server (root only), with
	// bodies. Non-root servers start with empty caches.
	Docs map[core.DocID][]byte

	// Alpha is this node's diffusion parameter; the paper's default is
	// 1/(degree+1). If zero, the server computes that default once it knows
	// its degree (children attach dynamically, so it uses 1/(known
	// neighbors + 2) refreshed each period).
	Alpha float64

	GossipPeriod    time.Duration // default 50ms
	DiffusionPeriod time.Duration // default 100ms
	Window          time.Duration // rate-estimation window, default 1s

	// PendingTTL bounds how long response-routing state for a forwarded
	// request (and any single-flight waiters coalesced behind it) is kept
	// when no response arrives; stale entries are swept so lost responses
	// and vanished clients do not leak memory. Default 30s.
	PendingTTL time.Duration

	// NumShards is the number of independent doc-sharded event loops
	// (default GOMAXPROCS). Each shard owns the per-document protocol state
	// for its hash slice; 1 restores the single-loop behavior.
	NumShards int
	// MaxBatch bounds how many queued events one loop iteration drains
	// under a single clock reading (default 256).
	MaxBatch int
	// QueueDepth is the capacity of each shard loop's (and the control
	// loop's) inbound event queue (default 1024). Full queues apply
	// backpressure to the posting connection goroutine.
	QueueDepth int

	// CacheBudgetBytes bounds the bytes of cached document bodies (0 =
	// unlimited, the paper's idealized assumption). Documents homed at
	// this server are pinned and exempt: origin copies must survive any
	// pressure. When a delegated or tunneled copy is displaced, the server
	// tears down the document's admission filter (requests resume flowing
	// toward the home server) and hints the eviction to its parent so the
	// abandoned serve duty is absorbed by a surviving copy upstream.
	CacheBudgetBytes int64
	// CacheShards is the cache store's lock-stripe count (default
	// NumShards). The store's striping is aligned with the server's shard
	// hash, so when the counts match a Put's evictions always fall in the
	// putting shard's own slice (victim locality).
	CacheShards int
	// EvictPolicy selects the replacement policy: cachestore.LRU (default),
	// cachestore.Heat (evict the lowest request-rate-per-byte copy, rates
	// read from this server's sliding windows), or cachestore.GDSF.
	EvictPolicy cachestore.Policy

	// DataDir enables the disk persistence tier: evicted-but-warm bodies
	// spill to DataDir/bodies under DiskBudgetBytes, and an append-only
	// journal (DataDir/journal.wal) records admissions, drops and duty so
	// a killed node restarts warm — replaying the journal against the
	// surviving bodies and re-announcing held duty as reclaim frames.
	// Empty disables the tier (pre-existing memory-only behavior).
	DataDir string
	// DiskBudgetBytes bounds the disk tier's body bytes (0 = unlimited).
	// Ignored when DataDir is empty.
	DiskBudgetBytes int64

	// BarrierPatience is the number of diffusion periods a node stays
	// under-loaded with no delegation before tunneling (paper: > 2).
	BarrierPatience int
	Tunneling       bool

	// PromoteThreshold enables hot-document replication forests at the
	// home server (root only; 0 disables). When one document's observed
	// demand — inbound request flow plus what its replica roots announce —
	// stays at or above this rate (req/s) for PromoteHysteresis diffusion
	// periods, the home promotes the document onto PromoteK replica roots:
	// its least-loaded children, whose disjoint subtrees then run the
	// ordinary diffusion protocol as independent replica trees, and whose
	// identities a gateway learns from stats scrapes for two-choices
	// routing. Demand below DemoteThreshold (default PromoteThreshold/4)
	// for the same number of periods demotes the document; replica roots
	// hand residual duty back through the evict-hint path, so duty
	// conservation holds across promotion, demotion and replica death.
	PromoteThreshold float64
	DemoteThreshold  float64
	// PromoteK is the replica-forest size (default 2).
	PromoteK int
	// PromoteHysteresis is the consecutive-period count both promotion
	// and demotion require (default 3) — the anti-flapping dead band.
	PromoteHysteresis int

	Network transport.Network
}

func (c Config) withDefaults() Config {
	if c.GossipPeriod <= 0 {
		c.GossipPeriod = 50 * time.Millisecond
	}
	if c.DiffusionPeriod <= 0 {
		c.DiffusionPeriod = 100 * time.Millisecond
	}
	if c.Window <= 0 {
		c.Window = time.Second
	}
	if c.PendingTTL <= 0 {
		c.PendingTTL = 30 * time.Second
	}
	if c.BarrierPatience <= 0 {
		c.BarrierPatience = 3
	}
	if c.HeartbeatMisses <= 0 {
		c.HeartbeatMisses = 3
	}
	if c.DialAttempts <= 0 {
		c.DialAttempts = 1
	}
	if c.ReconnectCap <= 0 {
		c.ReconnectCap = 2 * time.Second
	}
	if c.NumShards <= 0 {
		c.NumShards = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.CacheShards <= 0 {
		c.CacheShards = c.NumShards
	}
	if c.PromoteThreshold > 0 && c.PromoteK <= 0 {
		c.PromoteK = 2
	}
	return c
}

// event is an inbound envelope tagged with its connection, a notification
// that the connection's read side ended (closed), or an internal command
// from the control loop to a shard (cmd != cmdNone). cmdParentUp travels
// the other way: from a failover goroutine to the control loop, carrying
// the handshaken connection in conn and the new parent's id in child.
type event struct {
	env    *netproto.Envelope
	conn   transport.Conn
	closed bool

	cmd   cmdKind
	doc   core.DocID
	child int
	rate  float64
	body  []byte // document bytes riding a cmdPromoteIn (copied off the wire)
	ver   uint64 // document version riding a cmdPromoteIn
	reply chan *shardSnap
}

// cmdKind discriminates control→shard commands.
type cmdKind uint8

const (
	cmdNone cmdKind = iota
	// cmdSnap asks the shard to run its maintenance tick (drain fast-path
	// counters, refresh credits, republish the mailbox) and reply with the
	// fresh snapshot — the stats scrape path, so a scrape observes fresh
	// counters. Periodic ticks are shard-owned (each loop has its own
	// timer); only the synchronous scrape needs a command.
	cmdSnap
	// cmdDelegate applies one diffusion decision: move `rate` duty for
	// `doc` down to `child`, shipping the body.
	cmdDelegate
	// cmdShed moves `rate` duty for `doc` up to the parent.
	cmdShed
	// cmdClaim raises the local serve target for `doc` by `rate` (claiming
	// passing flow). Applied only while the copy is still cached — the
	// decision came from a snapshot and the copy may have been evicted
	// since.
	cmdClaim
	// cmdPreclaim is cmdClaim without the cached check: the tunnel path
	// claims a share of a stream for a copy that is still in flight from
	// the home server.
	cmdPreclaim
	// cmdChildGone tells shards a child link died: its flow windows drop and
	// the delegated duty recorded in the child's ledger is re-absorbed into
	// this node's own targets (or hinted upward when the copy is gone).
	cmdChildGone
	// cmdParentUp is posted to the control loop by a failover goroutine once
	// an ancestor answered the handshake; conn and child carry the new link.
	cmdParentUp
	// cmdParentRestored tells shards a new parent link is live: each shard
	// replays its unanswered pending requests upward (their previous leaders
	// died with the old link) and re-announces its held duty via reclaim.
	cmdParentRestored
	// cmdPromoteOut (home side) ships `rate` replica duty for `doc` to
	// `child` in a promote frame, crediting the child's duty ledger exactly
	// like a delegation — so every existing kill/restart repair path
	// conserves replica duty unchanged.
	cmdPromoteOut
	// cmdPromoteIn (replica side) installs a promoted copy: admit the body,
	// raise the target by the handed-over rate, arm the fast path.
	cmdPromoteIn
	// cmdDemoteLocal (replica side) dissolves a replica copy: filter and
	// publication go down and the residual target is hinted upward, the
	// same teardown an eviction runs.
	cmdDemoteLocal
)

// pendingKey identifies an in-flight request for response routing.
type pendingKey struct {
	origin int
	reqID  uint64
}

// pendingEntry remembers where to route a response and when the request
// was forwarded, so stale entries can be expired. doc and hops keep enough
// of the original request to replay it after a parent failover (the
// forwarded copy died with the old link).
type pendingEntry struct {
	conn transport.Conn
	at   time.Time
	doc  core.DocID
	hops int
	// minVer is the forwarded request's session floor, kept so a failover
	// replay (parentRestored) re-sends the request with the same guarantee
	// instead of silently dropping it.
	minVer uint64
}

// waiter is a request coalesced behind an identical in-flight fetch.
// minVer is the session's version floor (0 = any): a response older than it
// must not answer this waiter — the waiter re-arms as a fresh flight
// instead (refetchUnsatisfied).
type waiter struct {
	origin int
	reqID  uint64
	conn   transport.Conn
	minVer uint64
}

// flight tracks one upstream fetch for an uncached document; concurrent
// requests for the same document ride along as waiters instead of each
// traveling up the tree.
type flight struct {
	at      time.Time
	waiters []waiter
}

// childView is the copy-on-write registry of attached children. The
// control loop rebuilds it on (un)registration; shard loops and the fast
// path read it without locking.
type childView struct {
	conns map[int]transport.Conn
}

// parentLink is the current upward edge: the parent's node id and the
// connection to it. It lives behind an atomic pointer — the control loop
// swaps it on failover, shard loops read it per forward — and is nil while
// the node is orphaned (or at the root).
type parentLink struct {
	id   int
	conn transport.Conn
}

// Server is a live WebWave node. Create with New, start with Start, stop
// with Stop.
type Server struct {
	cfg    Config
	isRoot bool

	// cache is shared by all shards (internally striped, aligned with the
	// server's shard hash). Bodies are immutable by convention.
	cache *cachestore.Store

	// disk and journal form the persistence tier (nil with DataDir unset);
	// warmDocs counts documents recovered at New time, nSpills the memory
	// evictions that became disk-resident spills instead of losses.
	disk     *diskstore.Store
	journal  *diskstore.Journal
	warmDocs int
	nSpills  atomic.Int64

	shards []*shard
	ctrl   *control

	parent                  atomic.Pointer[parentLink] // swapped by the control loop on failover; nil = root or orphaned
	children                atomic.Pointer[childView]  // COW, written by the control loop
	seq                     atomic.Uint64              // wire sequence, stamped per send
	gotDelegate             atomic.Bool                // set by shards, drained by diffusion
	nEvicted, nEvictedBytes atomic.Int64               // bumped by the evicting shard at Put time

	events   chan event // control loop's queue
	stopOnce sync.Once
	stopped  chan struct{}
	wg       sync.WaitGroup
	listener transport.Listener

	connsMu sync.Mutex
	conns   []transport.Conn
}

// New validates cfg and creates a server (not yet started).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Network == nil {
		return nil, errors.New("server: nil network")
	}
	if cfg.Addr == "" {
		return nil, errors.New("server: empty listen address")
	}
	isRoot := cfg.ParentID < 0
	if !isRoot && cfg.ParentAddr == "" {
		return nil, fmt.Errorf("server %d: non-root without parent address", cfg.ID)
	}
	policy, err := cachestore.ParsePolicy(string(cfg.EvictPolicy))
	if err != nil {
		return nil, fmt.Errorf("server %d: %w", cfg.ID, err)
	}
	s := &Server{
		cfg:     cfg,
		isRoot:  isRoot,
		events:  make(chan event, cfg.QueueDepth),
		stopped: make(chan struct{}),
	}
	s.shards = make([]*shard, cfg.NumShards)
	for i := range s.shards {
		s.shards[i] = newShard(s, i)
	}
	s.ctrl = newControl(s)
	s.cache = cachestore.New(cachestore.Config{
		BudgetBytes: cfg.CacheBudgetBytes,
		Shards:      cfg.CacheShards,
		Policy:      policy,
		// Align the store's striping with the server's shard hash: when
		// CacheShards == NumShards a Put's evictions are always documents
		// of the putting shard.
		ShardOf: shardHash,
		// Heat is the serve duty the copy carries (measured served rate
		// plus intended target), read from the owning shard's atomic
		// snapshot mailbox — safe from whichever shard loop is Putting.
		HeatOf: s.docHeat,
	})
	if isRoot {
		for id, body := range cfg.Docs {
			s.cache.Pin(id, body) // origin copies are immune to eviction
			sh := s.shardFor(id)
			sh.rt.Install(id, nil) // the home extracts everything it owns
			sh.publish(id, body, true, 0)
		}
	}
	if cfg.DataDir != "" {
		// Warm recovery runs here, single-threaded, before any loop exists:
		// the journal replays against the surviving body files and the node
		// comes up already holding what it held when it was killed.
		if err := s.openPersist(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// shardHash is the document→shard hash (FNV-1a), shared with the cache
// store's striping so victim locality holds when the stripe counts match.
func shardHash(doc core.DocID) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(doc); i++ {
		h = (h ^ uint32(doc[i])) * 16777619
	}
	return h
}

func (s *Server) shardIndex(doc core.DocID) int {
	if len(s.shards) == 1 {
		return 0
	}
	return int(shardHash(doc) % uint32(len(s.shards)))
}

func (s *Server) shardFor(doc core.DocID) *shard { return s.shards[s.shardIndex(doc)] }

// docHeat ranks a held copy for eviction by the serve duty it carries: the
// measured served rate plus the intended target (so a freshly delegated
// copy with no serve history yet is not evicted on arrival). Pass-through
// flow is deliberately excluded — requests that stream through but are
// served elsewhere must not make a bystander copy look hot. The figures
// come from the owning shard's snapshot mailbox (at most one tick stale),
// which makes the readout safe from any shard loop.
func (s *Server) docHeat(doc core.DocID) float64 {
	snap := s.shardFor(doc).snap.Load()
	if snap == nil {
		return 0
	}
	return snap.targets[doc] + snap.served[doc]
}

// Start begins listening and, for non-root servers, connects to the parent.
// It returns once the server is operational. When the parent cannot be
// dialed and an ancestor list is configured, the server starts orphaned and
// fails over in the background instead of failing Start — a restarted node
// must come up even while its configured parent is still down.
func (s *Server) Start() error {
	l, err := s.cfg.Network.Listen(s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server %d: %w", s.cfg.ID, err)
	}
	s.listener = l

	startFailover := false
	if !s.isRoot {
		// The startup dial spends a bounded budget (DialAttempts, jittered
		// backoff between tries) on the configured parent: in a multi-process
		// launch a child is routinely exec'd a beat before its parent
		// listens, and a couple of paced retries attach it to the right
		// place instead of orphan-starting it onto a grandparent.
		conn, err := transport.DialRetry(s.cfg.Network, s.cfg.Addr, s.cfg.ParentAddr,
			&transport.Backoff{Base: s.cfg.GossipPeriod, Cap: s.cfg.ReconnectCap},
			s.cfg.DialAttempts, s.stopped)
		if err != nil {
			if len(s.cfg.AncestorAddrs) == 0 {
				l.Close()
				return fmt.Errorf("server %d: dial parent: %w", s.cfg.ID, err)
			}
			startFailover = true
		} else {
			s.parent.Store(&parentLink{id: s.cfg.ParentID, conn: conn})
			// Identify ourselves to the parent immediately.
			s.stampAndSend(conn, &netproto.Envelope{Kind: netproto.TypeGossip, From: s.cfg.ID, To: s.cfg.ParentID})
			s.readLoop(conn)
		}
	}

	// Accept loop.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			s.readLoop(conn)
		}
	}()

	// Shard loops and the control loop.
	for _, sh := range s.shards {
		s.wg.Add(1)
		go sh.loop()
	}
	s.wg.Add(1)
	go s.ctrl.loop()
	if startFailover {
		s.ctrl.failoverOn.Store(true)
		s.wg.Add(1)
		go s.failover()
	}
	if s.warmDocs > 0 && !s.isRoot && s.parentLink() != nil {
		// Warm restart: re-announce recovered duty upstream right away. The
		// parentRestored handler is exactly the failover replay — reclaim
		// frames for every held target — so a warm node needs zero new
		// repair protocol to resume carrying what it carried before the kill.
		for _, sh := range s.shards {
			s.post(sh.events, event{cmd: cmdParentRestored})
		}
	}
	return nil
}

// readLoop pumps a connection: requests hitting the publication index are
// served right here (the lock-free fast path); everything else is routed to
// the owning shard or the control loop. When the read side ends it posts a
// close notification to every loop so each can sweep the routing state
// (pending responses, single-flight waiters, child registration) tied to
// the connection.
func (s *Server) readLoop(conn transport.Conn) {
	s.connsMu.Lock()
	s.conns = append(s.conns, conn)
	s.connsMu.Unlock()
	// Stop sweeps s.conns once, after closing s.stopped. A conn registered
	// after that sweep (accept or tunnel dial racing with shutdown) would
	// never be closed and its Recv below would block forever, wedging
	// Stop's wg.Wait. The append above is serialized with the sweep by
	// connsMu, so observing s.stopped closed here means the sweep may have
	// already run: close the conn ourselves (double-close is safe).
	select {
	case <-s.stopped:
		conn.Close()
	default:
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			env, err := conn.Recv()
			if err != nil {
				closed := event{conn: conn, closed: true}
				s.post(s.events, closed)
				for _, sh := range s.shards {
					s.post(sh.events, closed)
				}
				return
			}
			s.dispatch(env, conn)
		}
	}()
}

// dispatch routes one inbound envelope: cached request hits are served on
// this goroutine; per-document kinds go to the owning shard; neighborhood
// kinds (gossip, stats, shutdown) go to the control loop.
func (s *Server) dispatch(env *netproto.Envelope, conn transport.Conn) {
	switch env.Kind {
	case netproto.TypeRequest:
		sh := s.shardFor(env.Doc) // hashed once: fast path and fallback share it
		if s.tryFastServe(sh, env, conn) {
			netproto.PutEnvelope(env)
			return
		}
		s.post(sh.events, event{env: env, conn: conn})
	case netproto.TypeResponse, netproto.TypeDelegate, netproto.TypeDelegateAck,
		netproto.TypeShed, netproto.TypeEvict, netproto.TypeReclaim,
		netproto.TypeTunnelFetch, netproto.TypeTunnelReply,
		netproto.TypeRepublish, netproto.TypeInvalidate:
		s.post(s.shardFor(env.Doc).events, event{env: env, conn: conn})
	case netproto.TypePromote, netproto.TypeDemote:
		// Control-plane kinds despite carrying a Doc: the promotion state
		// machine is control-loop state, which re-posts the per-document
		// work (admit, target, teardown) to the owning shard as commands.
		s.post(s.events, event{env: env, conn: conn})
	default:
		s.post(s.events, event{env: env, conn: conn})
	}
}

// post enqueues an event, releasing the envelope if the server stopped.
func (s *Server) post(ch chan event, ev event) {
	select {
	case ch <- ev:
	case <-s.stopped:
		if ev.env != nil {
			netproto.PutEnvelope(ev.env)
		}
	}
}

// tryPost enqueues without blocking, reporting whether the event landed.
// The control loop uses it for every command it sends a shard: commands
// are soft state (a dropped tick or duty movement is re-issued or re-derived
// next period), and the control loop must never stall node-wide gossip and
// diffusion behind one saturated shard queue.
func (s *Server) tryPost(ch chan event, ev event) bool {
	select {
	case ch <- ev:
		return true
	default:
		return false
	}
}

// tryFastServe is the lock-free read fast path: one atomic load of the
// owning shard's copy-on-write publication index, and a hit is answered on
// the connection goroutine — no event-loop hop, no lock. It declines (the
// request then takes the shard queue) on an index miss, a dead entry (an
// eviction race; the queued path re-checks the store and forwards), or an
// exhausted admission budget (rate-limited copies fall back to the shard's
// exact filter). Serve and flow counts accumulate on atomics the owning
// shard drains into its rate windows each tick, so diffusion sees fast-path
// demand exactly like queued demand.
func (s *Server) tryFastServe(sh *shard, env *netproto.Envelope, conn transport.Conn) bool {
	pm := sh.pub.Load()
	if pm == nil {
		return false
	}
	e := (*pm)[env.Doc]
	if e == nil || e.dead.Load() {
		return false
	}
	if env.MinVersion > e.version {
		// The session has seen a newer version than this copy: decline
		// before spending a credit so the queued path can gate the request
		// upward (sessionGate) instead of serving it stale.
		return false
	}
	if !e.always && e.credits.Add(-1) < 0 {
		return false
	}
	e.bumpFlow(env.From)
	e.served.Add(1)
	sh.nFastServed.Add(1)
	resp := netproto.GetEnvelope()
	*resp = netproto.Envelope{
		Kind: netproto.TypeResponse, From: s.cfg.ID, To: env.Origin,
		Doc: env.Doc, Origin: env.Origin, ReqID: env.ReqID,
		ServedBy: s.cfg.ID, Hops: env.Hops, Body: e.body,
		DocVersion: e.version,
		// Seq deliberately unstamped: no receiver consumes it, and the
		// global counter would be the one shared cacheline every core's
		// fast path contends on. Loop-emitted frames keep their stamps.
		V: netproto.Version,
	}
	_ = conn.Send(resp) // soft state: a failed send is equivalent to loss
	netproto.PutEnvelope(resp)
	return true
}

// stampAndSend stamps the wire sequence/version and transmits immediately
// (plain Send — transports coalesce concurrent senders' flushes). Loops
// that batch many frames per iteration use their laneSender instead.
func (s *Server) stampAndSend(conn transport.Conn, env *netproto.Envelope) {
	if conn == nil {
		return
	}
	env.Seq = s.seq.Add(1)
	if env.V == 0 {
		env.V = netproto.Version
	}
	_ = conn.Send(env) // soft state: a failed send is equivalent to loss
}

// laneSender is the buffered-send state each loop (shard or control) owns:
// one lane index on every lane-capable connection, plus the set of lanes
// dirtied since the last flush. Buffering here and flushing once at the
// end of a loop iteration means a batch of frames costs one flush per
// connection rather than one per frame, and distinct loops sharing a
// connection never contend on an encoder.
type laneSender struct {
	s     *Server
	lane  int
	dirty []transport.BatchLane
}

// sendOn stamps and transmits env: buffered on this loop's lane where the
// transport supports it, plain Send otherwise.
func (ls *laneSender) sendOn(conn transport.Conn, env *netproto.Envelope) {
	if conn == nil {
		return
	}
	env.Seq = ls.s.seq.Add(1)
	if env.V == 0 {
		env.V = netproto.Version
	}
	if lc, ok := conn.(transport.LaneConn); ok {
		ln := lc.Lane(ls.lane)
		_ = ln.SendBuffered(env) // soft state: a failed send is equivalent to loss
		ls.markDirty(ln)
		return
	}
	_ = conn.Send(env)
}

func (ls *laneSender) markDirty(ln transport.BatchLane) {
	for _, d := range ls.dirty {
		if d == ln {
			return
		}
	}
	ls.dirty = append(ls.dirty, ln)
}

// flushDirty flushes every lane sendOn buffered to since the last call.
func (ls *laneSender) flushDirty() {
	for i, ln := range ls.dirty {
		_ = ln.Flush()
		ls.dirty[i] = nil
	}
	ls.dirty = ls.dirty[:0]
}

// childConn returns the registered child's connection, if any.
func (s *Server) childConn(id int) transport.Conn {
	cv := s.children.Load()
	if cv == nil {
		return nil
	}
	return cv.conns[id]
}

// parentLink returns the current upward edge, nil at the root or while
// orphaned. Safe from any goroutine.
func (s *Server) parentLink() *parentLink { return s.parent.Load() }

// Stop shuts the server down and waits for its goroutines.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		close(s.stopped)
		if s.listener != nil {
			s.listener.Close()
		}
		if pl := s.parent.Load(); pl != nil {
			pl.conn.Close()
		}
		s.connsMu.Lock()
		for _, c := range s.conns {
			c.Close()
		}
		s.connsMu.Unlock()
	})
	s.wg.Wait()
	s.closePersist()
}

// Addr returns the listen address (useful with TCP port 0).
func (s *Server) Addr() string {
	if s.listener != nil {
		return s.listener.Addr()
	}
	return s.cfg.Addr
}

// queueLens returns the per-shard and control-loop backlog right now.
func (s *Server) queueLens() (shards []int, ctrl int, total int) {
	shards = make([]int, len(s.shards))
	for i, sh := range s.shards {
		shards[i] = len(sh.events)
		total += shards[i]
	}
	ctrl = len(s.events)
	total += ctrl
	return shards, ctrl, total
}
