// Package server implements a live WebWave cache server: a goroutine-driven
// node that serves document requests, measures its load and the per-child
// forwarded rates over sliding windows, gossips load to its tree neighbors,
// delegates document service duty down the tree, sheds it up, claims
// passing request flow when under-loaded, and tunnels across potential
// barriers — the full protocol of the paper's Sections 3–5 over real
// message passing (in-memory or TCP transports).
//
// Unlike the fluid simulators (internal/wave, internal/docwave), nothing
// here conserves load by construction: requests physically travel up the
// routing tree and are served by the first willing cache copy or, finally,
// by the home server. Protocol state (targets, gossip views) is soft; lost
// or stale messages degrade balance, never correctness.
//
// The main loop is built for throughput: inbound events drain in batches
// under a single loop-owned clock reading, stale gossip coalesces to the
// newest figure per neighbor, consumed envelopes recycle through netproto's
// pool, and concurrent requests for the same uncached document collapse
// into one upstream fetch (single-flight) whose response answers every
// waiter.
package server

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"webwave/internal/cachestore"
	"webwave/internal/core"
	"webwave/internal/netproto"
	"webwave/internal/router"
	"webwave/internal/transport"
)

// Config describes one server's place in the routing tree.
type Config struct {
	ID   int
	Addr string // listen address on Network

	ParentID   int    // -1 for the home server
	ParentAddr string // empty for the home server
	HomeAddr   string // the root's address (tunneling target)

	// Docs lists the documents homed at this server (root only), with
	// bodies. Non-root servers start with empty caches.
	Docs map[core.DocID][]byte

	// Alpha is this node's diffusion parameter; the paper's default is
	// 1/(degree+1). If zero, the server computes that default once it knows
	// its degree (children attach dynamically, so it uses 1/(known
	// neighbors + 2) refreshed each period).
	Alpha float64

	GossipPeriod    time.Duration // default 50ms
	DiffusionPeriod time.Duration // default 100ms
	Window          time.Duration // rate-estimation window, default 1s

	// PendingTTL bounds how long response-routing state for a forwarded
	// request (and any single-flight waiters coalesced behind it) is kept
	// when no response arrives; stale entries are swept so lost responses
	// and vanished clients do not leak memory. Default 30s.
	PendingTTL time.Duration

	// CacheBudgetBytes bounds the bytes of cached document bodies (0 =
	// unlimited, the paper's idealized assumption). Documents homed at
	// this server are pinned and exempt: origin copies must survive any
	// pressure. When a delegated or tunneled copy is displaced, the server
	// tears down the document's admission filter (requests resume flowing
	// toward the home server) and hints the eviction to its parent so the
	// abandoned serve duty is absorbed by a surviving copy upstream.
	CacheBudgetBytes int64
	// CacheShards is the cache store's lock-stripe count (default 8).
	CacheShards int
	// EvictPolicy selects the replacement policy: cachestore.LRU (default),
	// cachestore.Heat (evict the lowest request-rate-per-byte copy, rates
	// read from this server's sliding windows), or cachestore.GDSF.
	EvictPolicy cachestore.Policy

	// BarrierPatience is the number of diffusion periods a node stays
	// under-loaded with no delegation before tunneling (paper: > 2).
	BarrierPatience int
	Tunneling       bool

	Network transport.Network
}

func (c Config) withDefaults() Config {
	if c.GossipPeriod <= 0 {
		c.GossipPeriod = 50 * time.Millisecond
	}
	if c.DiffusionPeriod <= 0 {
		c.DiffusionPeriod = 100 * time.Millisecond
	}
	if c.Window <= 0 {
		c.Window = time.Second
	}
	if c.PendingTTL <= 0 {
		c.PendingTTL = 30 * time.Second
	}
	if c.BarrierPatience <= 0 {
		c.BarrierPatience = 3
	}
	return c
}

// event is an inbound envelope tagged with its connection, or (when closed
// is set) a notification that the connection's read side has ended.
type event struct {
	env    *netproto.Envelope
	conn   transport.Conn
	closed bool
}

// maxBatch bounds how many queued events one clock reading covers.
const maxBatch = 256

// pendingKey identifies an in-flight request for response routing.
type pendingKey struct {
	origin int
	reqID  uint64
}

// pendingEntry remembers where to route a response and when the request
// was forwarded, so stale entries can be expired.
type pendingEntry struct {
	conn transport.Conn
	at   time.Time
}

// waiter is a request coalesced behind an identical in-flight fetch.
type waiter struct {
	origin int
	reqID  uint64
	conn   transport.Conn
}

// flight tracks one upstream fetch for an uncached document; concurrent
// requests for the same document ride along as waiters instead of each
// traveling up the tree.
type flight struct {
	at      time.Time
	waiters []waiter
}

// Server is a live WebWave node. Create with New, start with Start, stop
// with Stop.
type Server struct {
	cfg    Config
	isRoot bool
	rt     *router.Router

	// Owned by the main loop (no locking needed). The cache store itself
	// is concurrency-safe, but this server only touches it from the loop,
	// so its heat callback may read loop-owned rate windows.
	now         time.Time // loop-owned clock, read once per event batch
	cache       *cachestore.Store
	targets     map[core.DocID]float64 // intended serve rate per doc
	served      map[core.DocID]*rateWindow
	totalServed *rateWindow
	childConns  map[int]transport.Conn             // child id -> conn
	childFlow   map[int]map[core.DocID]*rateWindow // A_j^d estimates
	childLoad   map[int]float64                    // gossiped child loads
	parentLoad  float64
	parentKnown bool
	parentConn  transport.Conn
	pending     map[pendingKey]pendingEntry
	inflight    map[core.DocID]*flight
	underFor    int // consecutive under-loaded periods with no delegation
	gotDelegate bool
	flightRetry time.Duration // age past which a flight forwards a new leader
	batch       []event       // reused event-drain scratch
	gossipSeen  map[int]int   // reused per-batch newest-gossip index by sender
	gossipEnv   netproto.Envelope
	dirty       []transport.BatchConn // conns with buffered frames this batch

	// Counters (owned by main loop; exported via stats scrape).
	nServed, nForwarded          int64
	nGossip, nDelegIn, nDelegOut int64
	nShedIn, nShedOut, nTunnels  int64
	nCoalesced                   int64
	nEvicted, nEvictedBytes      int64
	nEvictHintsIn                int64
	seq                          uint64

	localFlow map[core.DocID]*rateWindow // locally injected request rates

	events   chan event
	stopOnce sync.Once
	stopped  chan struct{}
	wg       sync.WaitGroup
	listener transport.Listener

	connsMu sync.Mutex
	conns   []transport.Conn
}

// New validates cfg and creates a server (not yet started).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Network == nil {
		return nil, errors.New("server: nil network")
	}
	if cfg.Addr == "" {
		return nil, errors.New("server: empty listen address")
	}
	isRoot := cfg.ParentID < 0
	if !isRoot && cfg.ParentAddr == "" {
		return nil, fmt.Errorf("server %d: non-root without parent address", cfg.ID)
	}
	policy, err := cachestore.ParsePolicy(string(cfg.EvictPolicy))
	if err != nil {
		return nil, fmt.Errorf("server %d: %w", cfg.ID, err)
	}
	s := &Server{
		cfg:        cfg,
		isRoot:     isRoot,
		rt:         router.New(),
		now:        time.Now(),
		targets:    make(map[core.DocID]float64, 16),
		served:     make(map[core.DocID]*rateWindow, 16),
		childConns: make(map[int]transport.Conn, 8),
		childFlow:  make(map[int]map[core.DocID]*rateWindow, 8),
		childLoad:  make(map[int]float64, 8),
		pending:    make(map[pendingKey]pendingEntry, 256),
		inflight:   make(map[core.DocID]*flight, 16),
		localFlow:  make(map[core.DocID]*rateWindow, 16),
		batch:      make([]event, 0, maxBatch),
		gossipSeen: make(map[int]int, 8),
		events:     make(chan event, 1024),
		stopped:    make(chan struct{}),
	}
	s.flightRetry = 2 * cfg.GossipPeriod
	if s.flightRetry < 20*time.Millisecond {
		s.flightRetry = 20 * time.Millisecond
	}
	s.totalServed = newRateWindow(cfg.Window, 8)
	s.cache = cachestore.New(cachestore.Config{
		BudgetBytes: cfg.CacheBudgetBytes,
		Shards:      cfg.CacheShards,
		Policy:      policy,
		// Heat is the serve duty the copy carries (measured served rate
		// plus intended target), read from loop-owned windows — safe
		// because the store is only touched from the main loop.
		HeatOf: func(doc core.DocID) float64 { return s.docHeat(doc) },
	})
	if isRoot {
		for id, body := range cfg.Docs {
			s.cache.Pin(id, body) // origin copies are immune to eviction
			s.rt.Install(id, nil) // the home extracts everything it owns
		}
	}
	return s, nil
}

// docHeat ranks a held copy for eviction by the serve duty it carries:
// the measured served rate plus the intended target (so a freshly
// delegated copy with no serve history yet is not evicted on arrival).
// Pass-through flow is deliberately excluded — requests that stream
// through but are served elsewhere must not make a bystander copy look
// hot.
func (s *Server) docHeat(doc core.DocID) float64 {
	h := s.targets[doc]
	if w := s.served[doc]; w != nil {
		h += w.Rate(s.now)
	}
	return h
}

// Start begins listening and, for non-root servers, connects to the parent.
// It returns once the server is operational.
func (s *Server) Start() error {
	l, err := s.cfg.Network.Listen(s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server %d: %w", s.cfg.ID, err)
	}
	s.listener = l

	if !s.isRoot {
		conn, err := transport.DialOn(s.cfg.Network, s.cfg.Addr, s.cfg.ParentAddr)
		if err != nil {
			l.Close()
			return fmt.Errorf("server %d: dial parent: %w", s.cfg.ID, err)
		}
		s.parentConn = conn
		// Identify ourselves to the parent immediately.
		s.sendOn(conn, &netproto.Envelope{Kind: netproto.TypeGossip, From: s.cfg.ID, To: s.cfg.ParentID})
		s.flushDirty()
		s.readLoop(conn)
	}

	// Accept loop.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			s.readLoop(conn)
		}
	}()

	// Main loop.
	s.wg.Add(1)
	go s.mainLoop()
	return nil
}

// readLoop pumps a connection into the event channel. When the read side
// ends it posts a close notification so the main loop can sweep routing
// state (pending responses, single-flight waiters, child registration)
// tied to the connection.
func (s *Server) readLoop(conn transport.Conn) {
	s.connsMu.Lock()
	s.conns = append(s.conns, conn)
	s.connsMu.Unlock()
	// Stop sweeps s.conns once, after closing s.stopped. A conn registered
	// after that sweep (accept or tunnel dial racing with shutdown) would
	// never be closed and its Recv below would block forever, wedging
	// Stop's wg.Wait. The append above is serialized with the sweep by
	// connsMu, so observing s.stopped closed here means the sweep may have
	// already run: close the conn ourselves (double-close is safe).
	select {
	case <-s.stopped:
		conn.Close()
	default:
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			env, err := conn.Recv()
			if err != nil {
				select {
				case s.events <- event{conn: conn, closed: true}:
				case <-s.stopped:
				}
				return
			}
			select {
			case s.events <- event{env: env, conn: conn}:
			case <-s.stopped:
				netproto.PutEnvelope(env)
				return
			}
		}
	}()
}

// Stop shuts the server down and waits for its goroutines.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		close(s.stopped)
		if s.listener != nil {
			s.listener.Close()
		}
		if s.parentConn != nil {
			s.parentConn.Close()
		}
		s.connsMu.Lock()
		for _, c := range s.conns {
			c.Close()
		}
		s.connsMu.Unlock()
	})
	s.wg.Wait()
}

// Addr returns the listen address (useful with TCP port 0).
func (s *Server) Addr() string {
	if s.listener != nil {
		return s.listener.Addr()
	}
	return s.cfg.Addr
}

func (s *Server) mainLoop() {
	defer s.wg.Done()
	gossip := time.NewTicker(s.cfg.GossipPeriod)
	defer gossip.Stop()
	diffuse := time.NewTicker(s.cfg.DiffusionPeriod)
	defer diffuse.Stop()
	sweepEvery := s.cfg.PendingTTL / 2
	if sweepEvery < 10*time.Millisecond {
		sweepEvery = 10 * time.Millisecond
	}
	sweep := time.NewTicker(sweepEvery)
	defer sweep.Stop()
	for {
		select {
		case <-s.stopped:
			return
		case ev := <-s.events:
			s.now = time.Now()
			s.handleBatch(ev)
		case <-gossip.C:
			s.now = time.Now()
			s.doGossip()
		case <-diffuse.C:
			s.now = time.Now()
			s.doDiffusion()
		case <-sweep.C:
			s.now = time.Now()
			s.sweepStale()
		}
		s.flushDirty()
	}
}

// handleBatch drains the event queue (bounded by maxBatch) and processes
// it under one clock reading. Queued gossip coalesces per neighbor — under
// backlog only the newest load figure matters, so stale ones are dropped
// instead of handled. Consumed envelopes return to netproto's pool.
func (s *Server) handleBatch(first event) {
	s.batch = append(s.batch[:0], first)
drain:
	for len(s.batch) < maxBatch {
		select {
		case ev := <-s.events:
			s.batch = append(s.batch, ev)
		default:
			break drain
		}
	}
	gossipSeen := s.gossipSeen
	if len(s.batch) > 1 {
		for i, ev := range s.batch {
			if !ev.closed && ev.env.Kind == netproto.TypeGossip {
				gossipSeen[ev.env.From] = i
			}
		}
	}
	for i, ev := range s.batch {
		if ev.closed {
			s.handleConnClosed(ev.conn)
			continue
		}
		if ev.env.Kind == netproto.TypeGossip && len(gossipSeen) > 0 {
			if last, ok := gossipSeen[ev.env.From]; ok && last != i {
				netproto.PutEnvelope(ev.env) // stale: a newer figure is queued
				continue
			}
		}
		s.handle(ev)
		netproto.PutEnvelope(ev.env)
	}
	clear(gossipSeen)
	clear(s.batch) // drop envelope/conn refs before reuse
}

func (s *Server) handle(ev event) {
	env := ev.env
	switch env.Kind {
	case netproto.TypeGossip:
		if env.From == s.cfg.ParentID && !s.isRoot {
			s.parentLoad = env.Load
			s.parentKnown = true
			return
		}
		// First gossip from an unknown conn registers a child.
		if _, ok := s.childConns[env.From]; !ok {
			s.childConns[env.From] = ev.conn
			s.childFlow[env.From] = make(map[core.DocID]*rateWindow, 16)
		}
		s.childLoad[env.From] = env.Load

	case netproto.TypeRequest:
		s.handleRequest(ev)

	case netproto.TypeResponse:
		key := pendingKey{origin: env.Origin, reqID: env.ReqID}
		if pe, ok := s.pending[key]; ok {
			delete(s.pending, key)
			s.sendOn(pe.conn, env)
		}
		// Any response carrying this document also answers the requests
		// coalesced behind the in-flight fetch.
		if fl, ok := s.inflight[env.Doc]; ok {
			delete(s.inflight, env.Doc)
			s.answerWaiters(fl, env)
		}

	case netproto.TypeDelegate:
		s.nDelegIn++
		s.gotDelegate = true
		if env.Body != nil {
			// A copy that does not fit under the byte budget is simply not
			// admitted (no ack): the delegated flow keeps passing toward
			// the home server and the parent reclaims it via claimPassing.
			s.admit(env.Doc, env.Body)
		}
		if s.cache.Contains(env.Doc) {
			s.targets[env.Doc] += env.Rate
			s.sendOn(ev.conn, &netproto.Envelope{
				Kind: netproto.TypeDelegateAck, From: s.cfg.ID, To: env.From,
				Doc: env.Doc, Rate: env.Rate,
			})
		}

	case netproto.TypeDelegateAck:
		// Accepted in full in this implementation; nothing to reconcile.

	case netproto.TypeShed:
		s.nShedIn++
		// Pick up shed duty only for documents we hold; otherwise the
		// request flow simply continues to the home server.
		if s.cache.Contains(env.Doc) {
			s.targets[env.Doc] += env.Rate
		}

	case netproto.TypeEvict:
		// A neighbor displaced its copy under memory pressure. Absorb the
		// serve duty it abandoned if we still hold the document; otherwise
		// the flow simply continues toward the home server, which always
		// can serve (origin copies are pinned).
		s.nEvictHintsIn++
		if s.cache.Contains(env.Doc) {
			s.targets[env.Doc] += env.Rate
		}

	case netproto.TypeTunnelFetch:
		// Only the home can answer authoritatively. Peek: a tunnel fetch
		// is a copy transfer, not local demand, so it must not refresh
		// recency or frequency.
		if body, ok := s.cache.Peek(env.Doc); ok {
			s.sendOn(ev.conn, &netproto.Envelope{
				Kind: netproto.TypeTunnelReply, From: s.cfg.ID, To: env.From,
				Doc: env.Doc, Body: body,
			})
		}

	case netproto.TypeTunnelReply:
		if env.Body != nil {
			s.admit(env.Doc, env.Body)
		}

	case netproto.TypeStatsQuery:
		s.sendOn(ev.conn, &netproto.Envelope{
			Kind: netproto.TypeStatsReply, From: s.cfg.ID, To: env.From,
			Stats: s.snapshot(s.now),
		})

	case netproto.TypeShutdown:
		go s.Stop()
	}
}

// handleConnClosed sweeps per-connection routing state when a link dies:
// pending response routes and coalesced waiters pointing at the dead
// connection are dropped (the leak fix — before this sweep, entries for
// requests whose client went away lived forever), and a child registered
// on the connection is forgotten so gossip and delegation stop targeting
// it until it re-registers.
func (s *Server) handleConnClosed(conn transport.Conn) {
	for key, pe := range s.pending {
		if pe.conn == conn {
			delete(s.pending, key)
		}
	}
	for _, fl := range s.inflight {
		kept := fl.waiters[:0]
		for _, w := range fl.waiters {
			if w.conn != conn {
				kept = append(kept, w)
			}
		}
		fl.waiters = kept
	}
	for id, c := range s.childConns {
		if c == conn {
			delete(s.childConns, id)
			delete(s.childFlow, id)
			delete(s.childLoad, id)
		}
	}
}

// sweepStale expires pending routes and in-flight fetches older than
// PendingTTL — responses that will never come (message loss, dead
// subtrees) must not pin table entries forever.
func (s *Server) sweepStale() {
	ttl := s.cfg.PendingTTL
	for key, pe := range s.pending {
		if s.now.Sub(pe.at) > ttl {
			delete(s.pending, key)
		}
	}
	for doc, fl := range s.inflight {
		if s.now.Sub(fl.at) > ttl {
			delete(s.inflight, doc)
		}
	}
}

// handleRequest implements the data path: the local router classifies the
// packet; Extract serves it here, Pass forwards it toward the home server.
func (s *Server) handleRequest(ev event) {
	env := ev.env
	now := s.now
	// Account per-child forwarded flow (A_j^d) when the request came from a
	// registered child, or local demand otherwise. Accounting happens
	// before single-flight coalescing, so the local protocol signals see
	// the full demand even when the upstream fetch is shared.
	if flows, ok := s.childFlow[env.From]; ok {
		w := flows[env.Doc]
		if w == nil {
			w = newRateWindow(s.cfg.Window, 8)
			flows[env.Doc] = w
		}
		w.Add(now, 1)
	} else {
		w := s.localFlow[env.Doc]
		if w == nil {
			w = newRateWindow(s.cfg.Window, 8)
			s.localFlow[env.Doc] = w
		}
		w.Add(now, 1)
	}

	if s.rt.Classify(env.Doc) == router.Extract || s.isRoot {
		s.serveRequest(ev)
		return
	}
	s.forwardUp(ev)
}

// forwardUp relays a request toward the home server, remembering which
// connection to route the response back on. Concurrent requests for the
// same uncached document collapse into the existing in-flight fetch: they
// are parked as waiters and answered from its response instead of each
// traveling upstream (single-flight). A flight whose leader has gone
// unanswered past the retry horizon (a lost message, a healed partition)
// stops absorbing requests: the next one travels upstream as a fresh
// leader, keeping the accumulated waiters eligible for its response.
func (s *Server) forwardUp(ev event) {
	env := ev.env
	fl := s.inflight[env.Doc]
	if fl != nil && s.now.Sub(fl.at) < s.flightRetry {
		fl.waiters = append(fl.waiters, waiter{origin: env.Origin, reqID: env.ReqID, conn: ev.conn})
		s.nCoalesced++
		return
	}
	if fl == nil {
		fl = &flight{}
		s.inflight[env.Doc] = fl
	}
	fl.at = s.now
	s.nForwarded++
	key := pendingKey{origin: env.Origin, reqID: env.ReqID}
	s.pending[key] = pendingEntry{conn: ev.conn, at: s.now}
	fwd := netproto.GetEnvelope()
	*fwd = *env
	fwd.From = s.cfg.ID
	fwd.To = s.cfg.ParentID
	fwd.Hops = env.Hops + 1
	s.sendOn(s.parentConn, fwd)
	netproto.PutEnvelope(fwd)
}

// answerWaiters fans a response out to every request coalesced behind the
// fetch that produced it.
func (s *Server) answerWaiters(fl *flight, resp *netproto.Envelope) {
	if len(fl.waiters) == 0 {
		return
	}
	out := netproto.GetEnvelope()
	for _, w := range fl.waiters {
		*out = netproto.Envelope{
			Kind: netproto.TypeResponse, From: s.cfg.ID, To: w.origin,
			Doc: resp.Doc, Origin: w.origin, ReqID: w.reqID,
			ServedBy: resp.ServedBy, Hops: resp.Hops,
			Body: resp.Body, NotFound: resp.NotFound,
		}
		s.sendOn(w.conn, out)
	}
	netproto.PutEnvelope(out)
}

// admit caches a document copy under the byte budget and wires the
// eviction feedback into the protocol. It returns whether the copy was
// admitted (a body that cannot fit is rejected, not cached).
//
// For every displaced document the server: (1) tears down the admission
// filter, so requests stop being extracted here and resume traveling
// toward the home server — in-flight demand re-forwards on the next
// packet; (2) drops the local serve target and rate window; (3) hints the
// eviction to its parent with the abandoned target rate, so a surviving
// copy upstream absorbs the duty instead of waiting a diffusion period to
// notice the imbalance.
func (s *Server) admit(doc core.DocID, body []byte) bool {
	evs, ok := s.cache.Put(doc, body)
	for _, ev := range evs {
		s.nEvicted++
		s.nEvictedBytes += int64(ev.Bytes)
		s.rt.Remove(ev.Doc)
		residual := s.targets[ev.Doc]
		delete(s.targets, ev.Doc)
		delete(s.served, ev.Doc)
		// A copy displaced before accruing any serve duty has nothing for
		// the parent to absorb; skip the no-op hint.
		if residual > 0 && s.parentConn != nil {
			s.sendOn(s.parentConn, &netproto.Envelope{
				Kind: netproto.TypeEvict, From: s.cfg.ID, To: s.cfg.ParentID,
				Doc: ev.Doc, Rate: residual,
			})
		}
	}
	if ok {
		s.installFilter(doc)
	}
	return ok
}

func (s *Server) serveRequest(ev event) {
	env := ev.env
	body, cached := s.cache.Get(env.Doc)
	if !cached && !s.isRoot {
		// The filter extracted a document we no longer hold (install/evict
		// race); keep the request moving toward the home server.
		s.forwardUp(ev)
		return
	}
	now := s.now
	s.nServed++
	s.totalServed.Add(now, 1)
	w := s.served[env.Doc]
	if w == nil {
		w = newRateWindow(s.cfg.Window, 8)
		s.served[env.Doc] = w
	}
	w.Add(now, 1)
	resp := netproto.GetEnvelope()
	*resp = netproto.Envelope{
		Kind: netproto.TypeResponse, From: s.cfg.ID, To: env.Origin,
		Doc: env.Doc, Origin: env.Origin, ReqID: env.ReqID,
		ServedBy: s.cfg.ID, Hops: env.Hops,
		Body: body, NotFound: !cached,
	}
	s.sendOn(ev.conn, resp)
	netproto.PutEnvelope(resp)
}

// installFilter wires the admission decision for one cached document: the
// packet is extracted while the measured served rate lags the target rate.
// The filter runs on the main loop, so it reads the loop-owned clock
// instead of taking a timestamp per classified packet.
func (s *Server) installFilter(doc core.DocID) {
	s.rt.Install(doc, router.FilterFunc(func(d core.DocID) bool {
		w := s.served[d]
		if w == nil {
			return s.targets[d] > 0
		}
		return w.Rate(s.now) < s.targets[d]
	}))
}

// doGossip sends this node's load figure to every tree neighbor. One
// envelope is built per tick and reused across neighbors; transports copy
// or serialize it per send.
func (s *Server) doGossip() {
	load := s.totalServed.Rate(s.now)
	env := &s.gossipEnv
	*env = netproto.Envelope{Kind: netproto.TypeGossip, From: s.cfg.ID, Load: load}
	if s.parentConn != nil {
		env.To = s.cfg.ParentID
		s.sendOn(s.parentConn, env)
		s.nGossip++
	}
	for id, conn := range s.childConns {
		env.To = id
		s.sendOn(conn, env)
		s.nGossip++
	}
}

// alpha returns the diffusion parameter: configured, or 1/(degree+1).
func (s *Server) alpha() float64 {
	if s.cfg.Alpha > 0 {
		return s.cfg.Alpha
	}
	deg := len(s.childConns)
	if !s.isRoot {
		deg++
	}
	return 1.0 / float64(deg+1)
}

// doDiffusion runs the Figure 5 body on current local knowledge.
func (s *Server) doDiffusion() {
	now := s.now
	load := s.totalServed.Rate(now)
	a := s.alpha()

	// (2.1) Delegate down to less-loaded children, capped by A_j.
	for id, childLoad := range s.childLoad {
		if load <= childLoad {
			continue
		}
		want := a * (load - childLoad)
		s.delegateDown(id, want, now)
	}

	// (2.2) Shed up toward a less-loaded parent.
	if s.parentKnown && load > s.parentLoad {
		want := a * (load - s.parentLoad)
		s.shedUp(want, now)
	}

	// Claim passing flow when under-loaded (the "handle it if your rate is
	// smaller than it should be" rule), and evaluate the tunneling trigger.
	if s.parentKnown && load < s.parentLoad {
		want := a * (s.parentLoad - load)
		claimed := s.claimPassing(want, now)
		if s.gotDelegate || claimed > 0 {
			s.underFor = 0
		} else {
			s.underFor++
			if s.cfg.Tunneling && s.underFor >= s.cfg.BarrierPatience {
				s.tunnel(now)
				s.underFor = 0
			}
		}
	} else {
		s.underFor = 0
	}
	s.gotDelegate = false
}

func (s *Server) delegateDown(child int, want float64, now time.Time) {
	conn := s.childConns[child]
	flows := s.childFlow[child]
	if conn == nil || flows == nil {
		return
	}
	type cand struct {
		doc core.DocID
		cap float64
	}
	var cands []cand
	for doc, fw := range flows {
		if !s.cache.Contains(doc) {
			continue
		}
		flow := fw.Rate(now)
		srv := 0.0
		if w := s.served[doc]; w != nil {
			srv = w.Rate(now)
		}
		cap := flow
		if srv < cap {
			cap = srv // can only hand off duty we are actually carrying
		}
		if cap > 0 {
			cands = append(cands, cand{doc: doc, cap: cap})
		}
	}
	// Largest stream first, deterministic tie-break by doc id.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && (cands[j].cap > cands[j-1].cap ||
			(cands[j].cap == cands[j-1].cap && cands[j].doc < cands[j-1].doc)); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	moved := 0.0
	for _, c := range cands {
		if moved >= want {
			break
		}
		amt := want - moved
		if amt > c.cap {
			amt = c.cap
		}
		s.targets[c.doc] -= amt
		if s.targets[c.doc] < 0 {
			s.targets[c.doc] = 0
		}
		s.nDelegOut++
		body, _ := s.cache.Peek(c.doc) // a handoff is not local demand
		s.sendOn(conn, &netproto.Envelope{
			Kind: netproto.TypeDelegate, From: s.cfg.ID, To: child,
			Doc: c.doc, Rate: amt, Body: body,
		})
		moved += amt
	}
}

func (s *Server) shedUp(want float64, now time.Time) {
	if s.parentConn == nil {
		return
	}
	shed := 0.0
	for doc, w := range s.served {
		if shed >= want {
			break
		}
		srv := w.Rate(now)
		if srv <= 0 {
			continue
		}
		amt := want - shed
		if amt > srv {
			amt = srv
		}
		s.targets[doc] -= amt
		if s.targets[doc] < 0 {
			s.targets[doc] = 0
		}
		s.nShedOut++
		s.sendOn(s.parentConn, &netproto.Envelope{
			Kind: netproto.TypeShed, From: s.cfg.ID, To: s.cfg.ParentID,
			Doc: doc, Rate: amt,
		})
		shed += amt
	}
}

// claimPassing raises targets on cached documents whose requests still flow
// through this node, up to `want`; the upstream copies lose that flow
// automatically. Returns the amount claimed.
func (s *Server) claimPassing(want float64, now time.Time) float64 {
	claimed := 0.0
	s.cache.ForEach(func(doc core.DocID, _ int) bool {
		flow := s.observedFlow(doc, now)
		srv := 0.0
		if w := s.served[doc]; w != nil {
			srv = w.Rate(now)
		}
		spare := flow - srv
		if spare <= 0 {
			return true
		}
		amt := want - claimed
		if amt > spare {
			amt = spare
		}
		s.targets[doc] += amt
		claimed += amt
		return claimed < want
	})
	return claimed
}

// observedFlow estimates the request rate for doc passing this node: child
// forwarded flow plus locally injected demand.
func (s *Server) observedFlow(doc core.DocID, now time.Time) float64 {
	total := 0.0
	for _, flows := range s.childFlow {
		if w, ok := flows[doc]; ok {
			total += w.Rate(now)
		}
	}
	if w, ok := s.localFlow[doc]; ok {
		total += w.Rate(now)
	}
	return total
}

// tunnel fetches the hottest forwarded-but-uncached document straight from
// the home server (Section 5.2).
func (s *Server) tunnel(now time.Time) {
	if s.cfg.HomeAddr == "" || s.isRoot {
		return
	}
	var best core.DocID
	bestFlow := 0.0
	consider := func(doc core.DocID, f float64) {
		if s.cache.Contains(doc) {
			return
		}
		if f > bestFlow {
			best, bestFlow = doc, f
		}
	}
	for _, flows := range s.childFlow {
		for doc, w := range flows {
			consider(doc, w.Rate(now))
		}
	}
	for doc, w := range s.localFlow {
		consider(doc, w.Rate(now))
	}
	if bestFlow <= 0 {
		return
	}
	conn, err := transport.DialOn(s.cfg.Network, s.cfg.Addr, s.cfg.HomeAddr)
	if err != nil {
		return
	}
	s.nTunnels++
	s.sendOn(conn, &netproto.Envelope{
		Kind: netproto.TypeTunnelFetch, From: s.cfg.ID, Doc: best,
	})
	s.readLoop(conn)
	// Pre-claim a share of the stream we already forward.
	deficit := (s.parentLoad - s.totalServed.Rate(now)) / 2
	claim := bestFlow
	if claim > deficit {
		claim = deficit
	}
	if claim > 0 {
		s.targets[best] += claim
	}
}

// sendOn transmits env, buffering on transports that support explicit
// flushing: those frames coalesce until the current main-loop step ends
// (flushDirty), so a batch of responses or a gossip fan-out costs one
// flush per connection rather than one per frame.
func (s *Server) sendOn(conn transport.Conn, env *netproto.Envelope) {
	if conn == nil {
		return
	}
	s.seq++
	env.Seq = s.seq
	if env.V == 0 {
		env.V = netproto.Version
	}
	if bc, ok := conn.(transport.BatchConn); ok {
		_ = bc.SendBuffered(env) // soft state: a failed send is equivalent to loss
		s.markDirty(bc)
		return
	}
	_ = conn.Send(env)
}

func (s *Server) markDirty(bc transport.BatchConn) {
	for _, d := range s.dirty {
		if d == bc {
			return
		}
	}
	s.dirty = append(s.dirty, bc)
}

// flushDirty flushes every connection sendOn buffered to since the last
// call. The main loop invokes it after each event batch and timer tick;
// Start invokes it after the parent handshake.
func (s *Server) flushDirty() {
	for i, bc := range s.dirty {
		_ = bc.Flush()
		s.dirty[i] = nil
	}
	s.dirty = s.dirty[:0]
}

func (s *Server) snapshot(now time.Time) *netproto.Stats {
	st := &netproto.Stats{
		Node:           s.cfg.ID,
		Load:           s.totalServed.Rate(now),
		Served:         s.nServed,
		Forwarded:      s.nForwarded,
		Coalesced:      s.nCoalesced,
		Targets:        make(map[core.DocID]float64, len(s.targets)),
		GossipSent:     s.nGossip,
		DelegationsIn:  s.nDelegIn,
		DelegationsOut: s.nDelegOut,
		ShedsIn:        s.nShedIn,
		ShedsOut:       s.nShedOut,
		Tunnels:        s.nTunnels,
		QueueLen:       len(s.events),
		PendingLen:     len(s.pending),
		// Maintained incrementally by the store — no per-scrape walk over
		// every cached body.
		CacheBytes:       s.cache.Bytes(),
		CacheBudgetBytes: s.cfg.CacheBudgetBytes,
		EvictedDocs:      s.nEvicted,
		EvictedBytes:     s.nEvictedBytes,
		EvictHintsIn:     s.nEvictHintsIn,
		MaxCacheBytes:    s.cache.MaxBytes(),
	}
	st.CachedDocs = s.rt.Installed()
	for d, t := range s.targets {
		st.Targets[d] = t
	}
	rs := s.rt.Stats()
	st.FilterStats = netproto.FilterStats{
		Inspected: rs.Inspected, Extracted: rs.Extracted, Passed: rs.Passed,
	}
	return st
}
