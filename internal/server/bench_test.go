package server

import (
	"testing"
	"time"

	"webwave/internal/core"
	"webwave/internal/netproto"
	"webwave/internal/transport"
)

// nopConn discards sends; the benchmarks drive the loop handlers directly,
// so nothing ever reads.
type nopConn struct{}

func (nopConn) Send(*netproto.Envelope) error     { return nil }
func (nopConn) Recv() (*netproto.Envelope, error) { return nil, transport.ErrClosed }
func (nopConn) Close() error                      { return nil }

func benchServer(b *testing.B, cfg Config) *Server {
	b.Helper()
	cfg.Network = transport.NewMemoryNetwork(transport.MemoryOptions{})
	if cfg.Addr == "" {
		cfg.Addr = "bench"
	}
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return s // not started: handlers run inline on the bench goroutine
}

// BenchmarkServeCachedRequest measures the queued request path on a home
// server: classify, account the flow windows, serve from cache, emit the
// response. The acceptance target is 0 allocs/op in steady state.
func BenchmarkServeCachedRequest(b *testing.B) {
	s := benchServer(b, Config{
		ID: 0, ParentID: -1,
		Docs: map[core.DocID][]byte{"hot": []byte("cached body bytes")},
	})
	env := &netproto.Envelope{Kind: netproto.TypeRequest, From: -1, Origin: 0, Doc: "hot"}
	ev := event{env: env, conn: nopConn{}}
	sh := s.shardFor("hot")
	sh.now = time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.ReqID = uint64(i + 1)
		sh.now = sh.now.Add(50 * time.Microsecond)
		sh.handle(ev)
	}
}

// BenchmarkFastPathServe measures the lock-free read fast path: one atomic
// index load, admission check, flow accounting and the pooled response —
// the work a connection goroutine does per cached hit without ever touching
// an event loop. Target: 0 allocs/op.
func BenchmarkFastPathServe(b *testing.B) {
	s := benchServer(b, Config{
		ID: 0, ParentID: -1,
		Docs: map[core.DocID][]byte{"hot": []byte("cached body bytes")},
	})
	env := &netproto.Envelope{Kind: netproto.TypeRequest, From: -1, Origin: 0, Doc: "hot"}
	conn := nopConn{}
	sh := s.shardFor("hot")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.ReqID = uint64(i + 1)
		if !s.tryFastServe(sh, env, conn) {
			b.Fatal("fast path declined a pinned doc")
		}
	}
}

// BenchmarkForwardAndRespond measures the relay path on an interior node:
// forward a request upstream (pending entry, single-flight leader) and
// route its response back down.
func BenchmarkForwardAndRespond(b *testing.B) {
	s := benchServer(b, Config{ID: 1, ParentID: 0, ParentAddr: "parent", HomeAddr: "parent"})
	s.parent.Store(&parentLink{id: 0, conn: nopConn{}})
	req := &netproto.Envelope{Kind: netproto.TypeRequest, From: -1, Origin: 1, Doc: "d"}
	resp := &netproto.Envelope{Kind: netproto.TypeResponse, From: 0, Origin: 1, Doc: "d", ServedBy: 0, Hops: 1, Body: []byte("x")}
	reqEv := event{env: req, conn: nopConn{}}
	respEv := event{env: resp, conn: nopConn{}}
	sh := s.shardFor("d")
	sh.now = time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(i + 1)
		req.ReqID, resp.ReqID = id, id
		sh.now = sh.now.Add(50 * time.Microsecond)
		sh.handle(reqEv)
		sh.handle(respEv)
	}
}

// BenchmarkGossipTick measures one gossip fan-out over eight children.
func BenchmarkGossipTick(b *testing.B) {
	s := benchServer(b, Config{ID: 0, ParentID: -1})
	conns := make(map[int]transport.Conn, 8)
	for i := 1; i <= 8; i++ {
		conns[i] = nopConn{}
	}
	s.children.Store(&childView{conns: conns})
	s.ctrl.now = time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ctrl.now = s.ctrl.now.Add(time.Millisecond)
		s.ctrl.doGossip()
	}
}

// BenchmarkRateWindowAdd pins the cost of the per-request flow accounting.
func BenchmarkRateWindowAdd(b *testing.B) {
	w := newRateWindow(time.Second, 8)
	now := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(10 * time.Microsecond)
		w.Add(now, 1)
	}
}
