package server

// Parent failover: when a non-root node loses its parent link it enters a
// degraded "orphan" mode — it keeps serving every document it holds from
// the lock-free fast path and the shard loops, and it parks upward flow in
// its pending/single-flight tables instead of sending it into a dead link —
// while a single background goroutine walks Config.AncestorAddrs looking
// for a live ancestor to re-attach to.
//
// A candidate must pass a ping/pong handshake before it counts: across a
// partitioned in-memory link (and some real-network failure modes) a dial
// succeeds but traffic is silently dropped, so only a pong — which also
// names the responder, sparing the config an id list — proves the edge
// carries frames both ways. The handshaken connection is handed to the
// control loop (cmdParentUp), which installs it, re-identifies the node to
// its new parent, and has every shard replay its queued requests and
// re-announce its held duty with reclaim frames.

import (
	"time"

	"webwave/internal/netproto"
	"webwave/internal/transport"
)

// failover hunts the ancestor list until a candidate answers the handshake
// or the server stops. At most one instance runs per server (guarded by
// control.failoverOn); rounds are paced by a jittered exponential backoff
// capped at Config.ReconnectCap, so a long outage costs a bounded dial
// budget (one round per cap, eventually) instead of a spin — and the jitter
// desynchronizes a whole subtree of orphans that all observed the same
// parent death within one heartbeat, which would otherwise stampede the
// replacement in lockstep. A healed partition or restarted ancestor is
// picked up on the next round.
func (s *Server) failover() {
	defer s.wg.Done()
	backoff := &transport.Backoff{Base: s.cfg.GossipPeriod, Cap: s.cfg.ReconnectCap}
	for {
		for _, addr := range s.cfg.AncestorAddrs {
			select {
			case <-s.stopped:
				return
			default:
			}
			conn, id, ok := s.handshake(addr)
			if !ok {
				continue
			}
			// Track the conn for Stop's sweep before handing it off: the
			// control loop exits without draining its queue, so a
			// cmdParentUp posted just before shutdown would otherwise leak
			// the conn (and pin the ancestor's read goroutine). readLoop
			// later appends it again; the double Close is harmless.
			s.connsMu.Lock()
			s.conns = append(s.conns, conn)
			s.connsMu.Unlock()
			select {
			case <-s.stopped:
				conn.Close() // the sweep may have already run; close ourselves
				return
			default:
			}
			select {
			case s.events <- event{cmd: cmdParentUp, conn: conn, child: id}:
			case <-s.stopped:
				conn.Close()
			}
			return
		}
		t := time.NewTimer(backoff.Next())
		select {
		case <-s.stopped:
			t.Stop()
			return
		case <-t.C:
		}
	}
}

// handshake dials addr, pings, and waits for the pong that proves the link
// is live and names the responder. On timeout the connection is closed,
// which also releases the reader goroutine.
func (s *Server) handshake(addr string) (transport.Conn, int, bool) {
	conn, err := transport.DialOn(s.cfg.Network, s.cfg.Addr, addr)
	if err != nil {
		return nil, 0, false
	}
	s.stampAndSend(conn, &netproto.Envelope{Kind: netproto.TypePing, From: s.cfg.ID})

	wait := 4 * s.cfg.GossipPeriod
	if wait < 100*time.Millisecond {
		wait = 100 * time.Millisecond
	}
	if wait > time.Second {
		wait = time.Second
	}
	pong := make(chan int, 1)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			env, err := conn.Recv()
			if err != nil {
				return
			}
			kind, from := env.Kind, env.From
			netproto.PutEnvelope(env)
			if kind == netproto.TypePong {
				pong <- from
				return
			}
			// Anything else (an early gossip tick, say) is discarded; the
			// candidate is not our parent until the handshake completes.
		}
	}()
	timeout := time.NewTimer(wait)
	defer timeout.Stop()
	select {
	case id := <-pong:
		return conn, id, true
	case <-timeout.C:
	case <-s.stopped:
	}
	conn.Close()
	return nil, 0, false
}
