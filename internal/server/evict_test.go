package server

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"webwave/internal/cachestore"
	"webwave/internal/core"
	"webwave/internal/netproto"
	"webwave/internal/transport"
)

// scrape polls one server's stats over a fresh connection.
func scrape(t *testing.T, netw transport.Network, addr string) *netproto.Stats {
	t.Helper()
	conn := dial(t, netw, addr)
	if err := conn.Send(&netproto.Envelope{Kind: netproto.TypeStatsQuery, From: -1}); err != nil {
		t.Fatalf("stats query: %v", err)
	}
	env := recvKind(t, conn, netproto.TypeStatsReply, 2*time.Second)
	if env.Stats == nil {
		t.Fatalf("stats reply without stats")
	}
	return env.Stats
}

// waitCached polls until the server's installed-filter set matches want.
func waitCached(t *testing.T, netw transport.Network, addr string, want map[core.DocID]bool) *netproto.Stats {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		st := scrape(t, netw, addr)
		got := make(map[core.DocID]bool, len(st.CachedDocs))
		for _, d := range st.CachedDocs {
			got[d] = true
		}
		match := len(got) == len(want)
		for d := range want {
			match = match && got[d]
		}
		if match {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("cached docs never became %v; last scrape %v", want, st.CachedDocs)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEvictionTearsDownFilter delegates two documents into a child whose
// budget holds only one: admitting the second must displace the first,
// remove its admission filter, and surface the eviction in the stats
// scrape — and a follow-up request for the displaced document must travel
// to the home server instead of being extracted into a cache miss.
func TestEvictionTearsDownFilter(t *testing.T) {
	netw := newTestNetwork()
	bodyA := []byte("aaaaaaaaaa") // 10 bytes
	bodyB := []byte("bbbbbbbbbb")
	startServer(t, Config{
		ID: 0, Addr: "root", ParentID: -1,
		Docs:    map[core.DocID][]byte{"A": bodyA, "B": bodyB},
		Network: netw,
	})
	startServer(t, Config{
		ID: 1, Addr: "child", ParentID: 0, ParentAddr: "root",
		Network:          netw,
		CacheBudgetBytes: 16, CacheShards: 1, EvictPolicy: cachestore.LRU,
	})

	conn := dial(t, netw, "child")
	if err := conn.Send(&netproto.Envelope{
		Kind: netproto.TypeDelegate, From: 0, To: 1, Doc: "A", Rate: 1, Body: bodyA,
	}); err != nil {
		t.Fatalf("delegate A: %v", err)
	}
	waitCached(t, netw, "child", map[core.DocID]bool{"A": true})

	if err := conn.Send(&netproto.Envelope{
		Kind: netproto.TypeDelegate, From: 0, To: 1, Doc: "B", Rate: 1, Body: bodyB,
	}); err != nil {
		t.Fatalf("delegate B: %v", err)
	}
	st := waitCached(t, netw, "child", map[core.DocID]bool{"B": true})
	if st.EvictedDocs != 1 || st.EvictedBytes != int64(len(bodyA)) {
		t.Fatalf("evicted docs/bytes = %d/%d, want 1/%d", st.EvictedDocs, st.EvictedBytes, len(bodyA))
	}
	if st.CacheBytes != int64(len(bodyB)) {
		t.Fatalf("cache bytes = %d, want %d", st.CacheBytes, len(bodyB))
	}
	if st.MaxCacheBytes > 16 {
		t.Fatalf("max cache bytes %d exceeded budget 16", st.MaxCacheBytes)
	}
	if tgt, ok := st.Targets["A"]; ok && tgt > 0 {
		t.Fatalf("evicted doc kept a serve target: %v", tgt)
	}

	// A request for the evicted document must be forwarded to the home
	// server, not answered locally from a stale filter.
	if err := conn.Send(&netproto.Envelope{
		Kind: netproto.TypeRequest, From: -1, To: 1, Origin: 1, ReqID: 7, Doc: "A",
	}); err != nil {
		t.Fatalf("request A: %v", err)
	}
	resp := recvKind(t, conn, netproto.TypeResponse, 2*time.Second)
	if resp.ServedBy != 0 || resp.NotFound {
		t.Fatalf("evicted doc served by %d notFound=%v, want home server 0", resp.ServedBy, resp.NotFound)
	}
}

// TestRootPinImmunity gives the home server a budget smaller than its own
// catalog: published documents are pinned, survive, and stay servable.
func TestRootPinImmunity(t *testing.T) {
	netw := newTestNetwork()
	docs := map[core.DocID][]byte{
		"A": make([]byte, 100),
		"B": make([]byte, 100),
	}
	startServer(t, Config{
		ID: 0, Addr: "root", ParentID: -1, Docs: docs, Network: netw,
		CacheBudgetBytes: 50, CacheShards: 1,
	})
	conn := dial(t, netw, "root")
	for i, doc := range []core.DocID{"A", "B"} {
		if err := conn.Send(&netproto.Envelope{
			Kind: netproto.TypeRequest, From: -1, Origin: 0, ReqID: uint64(i + 1), Doc: doc,
		}); err != nil {
			t.Fatalf("request %s: %v", doc, err)
		}
		resp := recvKind(t, conn, netproto.TypeResponse, 2*time.Second)
		if resp.NotFound || len(resp.Body) != 100 {
			t.Fatalf("pinned doc %s: notFound=%v len=%d", doc, resp.NotFound, len(resp.Body))
		}
	}
	st := scrape(t, netw, "root")
	if st.EvictedDocs != 0 {
		t.Fatalf("home server evicted %d pinned docs", st.EvictedDocs)
	}
	if st.CacheBytes != 200 {
		t.Fatalf("pinned cache bytes = %d, want 200", st.CacheBytes)
	}
}

// TestSingleFlightRacesEviction parks requests behind a single in-flight
// fetch, admits the document (filter up), evicts it again (filter down),
// and only then releases the upstream response: every parked waiter and
// the leader must still be answered, and the eviction hint must reach the
// parent carrying the abandoned serve duty.
func TestSingleFlightRacesEviction(t *testing.T) {
	netw := newTestNetwork()
	// The test plays the parent itself so it controls when the upstream
	// response is released.
	pl, err := netw.Listen("parent")
	if err != nil {
		t.Fatalf("listen parent: %v", err)
	}
	t.Cleanup(func() { pl.Close() })

	type accepted struct {
		conn transport.Conn
		err  error
	}
	acceptCh := make(chan accepted, 1)
	go func() {
		c, err := pl.Accept()
		acceptCh <- accepted{c, err}
	}()

	bodyA := []byte("aaaaaaaaaa")
	bodyB := []byte("bbbbbbbbbb")
	startServer(t, Config{
		ID: 1, Addr: "child", ParentID: 0, ParentAddr: "parent",
		Network:          netw,
		CacheBudgetBytes: 16, CacheShards: 1, EvictPolicy: cachestore.LRU,
		// A long gossip period keeps the flight-retry horizon far away so
		// every request below coalesces behind the first leader.
		GossipPeriod: 2 * time.Second,
	})
	acc := <-acceptCh
	if acc.err != nil {
		t.Fatalf("accept child: %v", acc.err)
	}
	parent := acc.conn
	t.Cleanup(func() { parent.Close() })

	// Pump the parent side: collect forwarded requests and evict hints.
	var mu sync.Mutex
	var upRequests []*netproto.Envelope
	var evicts []*netproto.Envelope
	go func() {
		for {
			env, err := parent.Recv()
			if err != nil {
				return
			}
			mu.Lock()
			switch env.Kind {
			case netproto.TypeRequest:
				upRequests = append(upRequests, env)
			case netproto.TypeEvict:
				evicts = append(evicts, env)
			default:
				netproto.PutEnvelope(env)
			}
			mu.Unlock()
		}
	}()
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	inject := dial(t, netw, "child")
	// r1 leads the flight; r2 and r3 park behind it.
	for _, id := range []uint64{1, 2, 3} {
		if err := inject.Send(&netproto.Envelope{
			Kind: netproto.TypeRequest, From: -1, Origin: 1, ReqID: id, Doc: "A",
		}); err != nil {
			t.Fatalf("request %d: %v", id, err)
		}
	}
	waitFor("flight leader upstream", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(upRequests) == 1
	})

	// Admit A mid-flight, then displace it with B before the upstream
	// response exists.
	if err := parent.Send(&netproto.Envelope{
		Kind: netproto.TypeDelegate, From: 0, To: 1, Doc: "A", Rate: 5, Body: bodyA,
	}); err != nil {
		t.Fatalf("delegate A: %v", err)
	}
	waitCached(t, netw, "child", map[core.DocID]bool{"A": true})
	if err := parent.Send(&netproto.Envelope{
		Kind: netproto.TypeDelegate, From: 0, To: 1, Doc: "B", Rate: 1, Body: bodyB,
	}); err != nil {
		t.Fatalf("delegate B: %v", err)
	}
	waitCached(t, netw, "child", map[core.DocID]bool{"B": true})
	waitFor("evict hint", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(evicts) == 1
	})
	mu.Lock()
	hint := evicts[0]
	mu.Unlock()
	if hint.Doc != "A" || hint.Rate <= 0 {
		t.Fatalf("evict hint = doc %q rate %v, want doc A with the delegated duty", hint.Doc, hint.Rate)
	}

	// A post-eviction request for A must coalesce into the still-open
	// flight rather than being served from the torn-down filter.
	if err := inject.Send(&netproto.Envelope{
		Kind: netproto.TypeRequest, From: -1, Origin: 1, ReqID: 5, Doc: "A",
	}); err != nil {
		t.Fatalf("request 5: %v", err)
	}
	// Wait until it actually parked (2, 3 and 5 coalesced) before releasing
	// the response — otherwise the response can overtake request 5 across
	// the two connections and promote it to a fresh flight leader whose
	// upstream answer this test never sends.
	waitFor("request 5 coalesced", func() bool {
		return scrape(t, netw, "child").Coalesced >= 3
	})

	// Release the upstream response for the leader; it must fan out to the
	// leader and every parked waiter.
	mu.Lock()
	lead := upRequests[0]
	mu.Unlock()
	if err := parent.Send(&netproto.Envelope{
		Kind: netproto.TypeResponse, From: 0, To: 1,
		Doc: "A", Origin: lead.Origin, ReqID: lead.ReqID,
		ServedBy: 0, Hops: lead.Hops, Body: bodyA,
	}); err != nil {
		t.Fatalf("upstream response: %v", err)
	}

	got := make(map[uint64]bool)
	deadline := time.Now().Add(3 * time.Second)
	for len(got) < 4 && time.Now().Before(deadline) {
		env := recvKind(t, inject, netproto.TypeResponse, 2*time.Second)
		if env.Doc != "A" || env.NotFound {
			t.Fatalf("bad response: %+v", env)
		}
		got[env.ReqID] = true
	}
	for _, id := range []uint64{1, 2, 3, 5} {
		if !got[id] {
			t.Fatalf("request %d never answered (got %v)", id, got)
		}
	}
}

// TestBudgetAccountingUnderConcurrentDrains hammers one bounded server
// with delegations and requests from several connections at once; the
// batched event drains must keep the incremental byte accounting exact
// and the budget invariant intact.
func TestBudgetAccountingUnderConcurrentDrains(t *testing.T) {
	netw := newTestNetwork()
	const budget = 4096
	startServer(t, Config{
		ID: 0, Addr: "root", ParentID: -1, Network: netw,
		Docs:             map[core.DocID][]byte{"home": []byte("origin-doc")},
		CacheBudgetBytes: budget, CacheShards: 4, EvictPolicy: cachestore.Heat,
	})

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn, err := netw.Dial("root")
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer conn.Close()
			go func() { // drain acks/responses
				for {
					env, err := conn.Recv()
					if err != nil {
						return
					}
					netproto.PutEnvelope(env)
				}
			}()
			for i := 0; i < 80; i++ {
				doc := core.DocID(fmt.Sprintf("d-%d-%d", g, i%20))
				if err := conn.Send(&netproto.Envelope{
					Kind: netproto.TypeDelegate, From: 100 + g, To: 0,
					Doc: doc, Rate: 1, Body: make([]byte, 100+(i%7)*50),
				}); err != nil {
					return
				}
				if i%5 == 0 {
					_ = conn.Send(&netproto.Envelope{
						Kind: netproto.TypeRequest, From: -1, Origin: 0,
						ReqID: uint64(g*1000 + i), Doc: doc,
					})
				}
			}
		}(g)
	}
	wg.Wait()

	// One final scrape once the event queue has drained.
	deadline := time.Now().Add(3 * time.Second)
	var st *netproto.Stats
	for {
		st = scrape(t, netw, "root")
		if st.QueueLen == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	pinned := int64(len("origin-doc"))
	if st.CacheBytes > budget+pinned {
		t.Fatalf("cache bytes %d exceed budget %d (+%d pinned)", st.CacheBytes, budget, pinned)
	}
	if st.MaxCacheBytes > budget+pinned {
		t.Fatalf("high-water %d exceeds budget %d (+%d pinned)", st.MaxCacheBytes, budget, pinned)
	}
	if st.EvictedDocs == 0 {
		t.Fatalf("expected eviction churn under pressure, got none")
	}
	if !contains(st.CachedDocs, "home") {
		t.Fatalf("pinned origin doc displaced; cached = %v", st.CachedDocs)
	}
}

func contains(ds []core.DocID, want core.DocID) bool {
	for _, d := range ds {
		if d == want {
			return true
		}
	}
	return false
}
