package server

import (
	"sync"
	"sync/atomic"
	"time"

	"webwave/internal/cachestore"
	"webwave/internal/core"
	"webwave/internal/netproto"
	"webwave/internal/router"
	"webwave/internal/transport"
)

// pubMap is a shard's copy-on-write publication index: the documents this
// shard currently serves, readable lock-free by every connection goroutine.
// Only the owning shard loop writes it (load, copy, store — no CAS needed);
// other shards may at most tombstone an entry's dead flag on an eviction.
type pubMap = map[core.DocID]*pubEntry

// pubEntry is one published document. The body is immutable; the atomics
// accumulate fast-path activity between shard ticks.
type pubEntry struct {
	body []byte
	// version is the document version of body (0 = never republished);
	// responses stamp it so clients and staleness probes can compare the
	// served copy against the latest write.
	version uint64
	// always marks an origin (pinned) copy: admitted unconditionally. A
	// delegated or tunneled copy instead spends credits, the fast-path
	// stand-in for the shard's rate-limited admission filter.
	always bool
	// dead is the eviction tombstone: set (possibly by another shard's
	// Put displacing this copy) the moment the document leaves the store,
	// so the fast path stops serving a stale body before the owning shard
	// gets around to unpublishing.
	dead atomic.Bool
	// credits is the admission budget for gated copies: the owning shard
	// refreshes it each tick to the window the exact filter would admit
	// (target − served rate, scaled to the tick); the fast path spends one
	// per serve and falls back to the shard queue when exhausted.
	credits atomic.Int64
	// served counts fast-path serves since the owner last drained them
	// into its rate windows.
	served atomic.Int64
	// flows counts fast-path arrivals per sender id (-1 = locally
	// injected) since the last drain — the A_j^d accounting the diffusion
	// protocol needs, kept even for requests that never touch a loop.
	flows atomic.Pointer[map[int]*atomic.Int64]
}

// bumpFlow counts one fast-path arrival from the given sender. New senders
// install their counter with a copy-on-write swap (existing counters are
// carried by pointer, so no concurrent increment is lost); the steady state
// is a single atomic add.
func (e *pubEntry) bumpFlow(from int) {
	for {
		m := e.flows.Load()
		if m != nil {
			if c, ok := (*m)[from]; ok {
				c.Add(1)
				return
			}
		}
		var nm map[int]*atomic.Int64
		if m == nil {
			nm = make(map[int]*atomic.Int64, 4)
		} else {
			nm = make(map[int]*atomic.Int64, len(*m)+1)
			for k, v := range *m {
				nm[k] = v
			}
		}
		c := new(atomic.Int64)
		nm[from] = c
		if e.flows.CompareAndSwap(m, &nm) {
			c.Add(1)
			return
		}
	}
}

// shardSnap is the epoch-stamped snapshot a shard publishes to its mailbox:
// the aggregate heat/duty figures the control loop reads for gossip and
// diffusion, and other shards read for eviction ranking — all without
// touching loop-owned state.
type shardSnap struct {
	// epoch increments per publication; it stops advancing when a wedged
	// shard misses its (non-blocking, skippable) ticks, and the stats
	// scrape exposes it per shard so exactly that is observable.
	epoch      uint64
	load       float64 // served req/s over the window, fast path included
	pendingLen int

	targets map[core.DocID]float64
	served  map[core.DocID]float64         // measured served rates
	flows   map[int]map[core.DocID]float64 // per sender id; -1 = local demand

	// Router state captured at the same instant as the duty figures, so a
	// stats scrape served from this snapshot is internally consistent: a
	// torn-down filter never appears alongside its already-deleted target's
	// stale value, however stale the snapshot itself is.
	installed []core.DocID
	filter    router.Stats

	counters shardCounters
}

// shardCounters is the loop-owned counter block carried in snapshots.
// fastServed is captured here right after the snapshot's drain, so a
// scrape always sees FastServed consistent with (a subset of) Served
// instead of a live atomic racing ahead of the drained counters.
type shardCounters struct {
	served, forwarded, coalesced       int64
	delegIn, delegOut, shedIn, shedOut int64
	evictHintsIn, fastServed           int64
	diskHits                           int64
	republishesIn, invalidationsIn     int64
	staleDrops, leaseRefreshes         int64
	sessionRefreshes                   int64
	reclaimedDuty, absorbedDuty        float64
}

// evictedNote is a cross-shard eviction cleanup request: shard A's Put
// displaced a document owned by shard B; B must tear down its protocol
// state for it.
type evictedNote struct {
	doc core.DocID
}

// shard is one doc-sharded event loop. Everything below `events` is owned
// by the loop goroutine; the atomics at the bottom are the lock-free
// surfaces other goroutines touch.
type shard struct {
	s      *Server
	idx    int
	events chan event

	now         time.Time // loop-owned clock, read once per event batch
	rt          *router.Router
	targets     map[core.DocID]float64
	served      map[core.DocID]*rateWindow
	totalServed *rateWindow
	localFlow   map[core.DocID]*rateWindow
	childFlow   map[int]map[core.DocID]*rateWindow // A_j^d estimates
	// childDuty is the per-child delegated-duty ledger: how much serve duty
	// for each document is believed to live at (or below) each child —
	// credited by outgoing delegations and incoming reclaims, debited when
	// the child sheds duty back or abandons it with an evict hint. When a
	// child dies the ledger is what the node re-absorbs, so the wave does
	// not silently lose the dead subtree's share.
	childDuty map[int]map[core.DocID]float64
	pending   map[pendingKey]pendingEntry
	inflight  map[core.DocID]*flight
	// docVer is the latest document version this shard has seen per doc
	// (from republish/invalidate frames, delegated copies, or responses);
	// it only moves forward. staleDocs marks documents whose body was
	// dropped by an invalidation while their filter and duty stayed —
	// cleared when a passing response re-admits the fresh copy (the lease
	// refresh, update.go).
	docVer      map[core.DocID]uint64
	staleDocs   map[core.DocID]bool
	flightRetry time.Duration
	batch       []event
	laneSender

	lastSweep time.Time
	lastReap  time.Time

	// Counters (loop-owned; exported via snapshots).
	nServed, nForwarded, nCoalesced  int64
	nDelegIn, nDelegOut              int64
	nShedIn, nShedOut, nEvictHintsIn int64
	nDiskHits                        int64
	nRepublishesIn, nInvalidationsIn int64
	nStaleDrops, nLeaseRefreshes     int64
	nSessionRefreshes                int64
	nReclaimedDuty, nAbsorbedDuty    float64

	// jTargets is the last journaled duty per admitted document (persist.go);
	// nil while the disk tier is disabled. jVers mirrors it for the last
	// journaled copy version (update.go).
	jTargets map[core.DocID]float64
	jVers    map[core.DocID]uint64

	// Lock-free surfaces.
	pub         atomic.Pointer[pubMap]    // publication index (single writer: this loop)
	snap        atomic.Pointer[shardSnap] // epoch-stamped mailbox
	epoch       uint64
	nFastServed atomic.Int64 // cumulative fast-path serves

	// strandedDuty parks duty that should have been hinted upward (an
	// eviction's residual, a dead child's un-absorbable ledger) while the
	// node is orphaned: with no parent link the hint has nowhere to go, and
	// dropping it would silently zero that share of the wave. parentRestored
	// flushes it across the repaired edge.
	strandedDuty map[core.DocID]float64

	// Two-phase tombstone reaping: unpublished docs wait here one full
	// tick before their entries leave the index, so a connection goroutine
	// that loaded the index just before the tombstone still bumps counters
	// drainFast can reach.
	tombstoned, tombstonedPrev []core.DocID

	evictMu   sync.Mutex
	evictedIn []evictedNote // posted by other shards' Puts, drained by this loop
}

func newShard(s *Server, idx int) *shard {
	cfg := s.cfg
	sh := &shard{
		s:           s,
		idx:         idx,
		events:      make(chan event, cfg.QueueDepth),
		now:         time.Now(),
		rt:          router.New(),
		targets:     make(map[core.DocID]float64, 16),
		served:      make(map[core.DocID]*rateWindow, 16),
		localFlow:   make(map[core.DocID]*rateWindow, 16),
		childFlow:   make(map[int]map[core.DocID]*rateWindow, 8),
		childDuty:   make(map[int]map[core.DocID]float64, 8),
		pending:     make(map[pendingKey]pendingEntry, 64),
		inflight:    make(map[core.DocID]*flight, 16),
		docVer:      make(map[core.DocID]uint64, 16),
		staleDocs:   make(map[core.DocID]bool, 4),
		batch:       make([]event, 0, cfg.MaxBatch),
		totalServed: newRateWindow(cfg.Window, 8),
		laneSender:  laneSender{s: s, lane: idx},
	}
	sh.flightRetry = 2 * cfg.GossipPeriod
	if sh.flightRetry < 20*time.Millisecond {
		sh.flightRetry = 20 * time.Millisecond
	}
	pm := make(pubMap)
	sh.pub.Store(&pm)
	return sh
}

func (sh *shard) loop() {
	defer sh.s.wg.Done()
	// Each shard owns its maintenance timer: ticks must keep firing on the
	// busiest shard (select chooses uniformly among ready cases, so a
	// flooded event queue cannot starve the ticker), where a control-posted
	// tick command would be exactly what a saturated queue drops.
	tick := time.NewTicker(sh.s.cfg.GossipPeriod)
	defer tick.Stop()
	for {
		select {
		case <-sh.s.stopped:
			return
		case ev := <-sh.events:
			sh.now = time.Now()
			sh.drainEvicted()
			sh.handleBatch(ev)
		case <-tick.C:
			sh.now = time.Now()
			sh.drainEvicted()
			sh.tick()
		}
		sh.flushDirty()
	}
}

// handleBatch drains the shard queue (bounded by MaxBatch) and processes it
// under one clock reading. Consumed envelopes return to netproto's pool.
func (sh *shard) handleBatch(first event) {
	sh.batch = append(sh.batch[:0], first)
drain:
	for len(sh.batch) < sh.s.cfg.MaxBatch {
		select {
		case ev := <-sh.events:
			sh.batch = append(sh.batch, ev)
		default:
			break drain
		}
	}
	for _, ev := range sh.batch {
		if ev.closed {
			sh.handleConnClosed(ev.conn)
			continue
		}
		if ev.cmd != cmdNone {
			sh.handleCmd(ev)
			continue
		}
		sh.handle(ev)
		netproto.PutEnvelope(ev.env)
	}
	clear(sh.batch) // drop envelope/conn refs before reuse
}

func (sh *shard) handleCmd(ev event) {
	switch ev.cmd {
	case cmdSnap:
		sh.tick()
		if ev.reply != nil {
			ev.reply <- sh.snap.Load()
		}
	case cmdDelegate:
		sh.delegateOut(ev.child, ev.doc, ev.rate)
	case cmdShed:
		sh.shedOut(ev.doc, ev.rate)
	case cmdClaim:
		// The claim was computed from a snapshot; re-validate like
		// delegateOut does, so a copy evicted in between does not get a
		// phantom target resurrected for it.
		if !sh.s.holdsCopy(ev.doc) {
			return
		}
		sh.targets[ev.doc] += ev.rate
		sh.refreshCredit(ev.doc) // arm the fast path without waiting a tick
	case cmdPreclaim:
		sh.targets[ev.doc] += ev.rate // tunneled copy still in flight: no cached check
	case cmdChildGone:
		delete(sh.childFlow, ev.child)
		sh.absorbChildDuty(ev.child)
	case cmdParentRestored:
		sh.parentRestored()
	case cmdPromoteOut:
		sh.promoteOut(ev.child, ev.doc, ev.rate)
	case cmdPromoteIn:
		sh.promoteIn(ev.doc, ev.rate, ev.body, ev.ver)
	case cmdDemoteLocal:
		sh.demoteLocal(ev.doc)
	}
}

// absorbChildDuty re-absorbs a dead child's ledgered duty: documents this
// node still holds take the rate back into their own targets (the parent
// resumes serving what the dead subtree carried); documents it no longer
// holds get the stranded rate hinted upward like an eviction, so a
// surviving ancestor copy absorbs it instead of the wave zeroing out.
func (sh *shard) absorbChildDuty(child int) {
	ledger := sh.childDuty[child]
	if ledger == nil {
		return
	}
	delete(sh.childDuty, child)
	for doc, rate := range ledger {
		if rate <= 0 {
			continue
		}
		if sh.s.holdsCopy(doc) {
			sh.targets[doc] += rate
			sh.nAbsorbedDuty += rate
			sh.refreshCredit(doc)
			continue
		}
		sh.hintUp(doc, rate)
	}
}

// hintUp forwards abandoned duty toward the parent as an evict hint so a
// surviving copy upstream absorbs it. While orphaned the hint has no live
// edge to travel; the rate is parked in strandedDuty and flushed by
// parentRestored, so duty conservation survives a double failure (losing a
// child and the parent in the same window).
func (sh *shard) hintUp(doc core.DocID, rate float64) {
	if rate <= 0 {
		return
	}
	pl := sh.s.parentLink()
	if pl == nil {
		if sh.strandedDuty == nil {
			sh.strandedDuty = make(map[core.DocID]float64, 4)
		}
		sh.strandedDuty[doc] += rate
		return
	}
	sh.sendOn(pl.conn, &netproto.Envelope{
		Kind: netproto.TypeEvict, From: sh.s.cfg.ID, To: pl.id,
		Doc: doc, Rate: rate,
	})
}

// parentRestored replays this shard's state onto a freshly failed-over
// parent link: one reclaim frame per held target (so the new parent's duty
// ledger mirrors what actually lives below the repaired edge), then every
// unanswered pending request (their forwarded copies died with the old
// link; responses still route back by (origin, reqID)).
func (sh *shard) parentRestored() {
	pl := sh.s.parentLink()
	if pl == nil {
		return // lost again before the command drained
	}
	for doc, rate := range sh.targets {
		if rate <= 0 {
			continue
		}
		sh.sendOn(pl.conn, &netproto.Envelope{
			Kind: netproto.TypeReclaim, From: sh.s.cfg.ID, To: pl.id,
			Doc: doc, Rate: rate,
		})
	}
	// Duty stranded while orphaned: re-absorb what we meanwhile hold again
	// (a tunneled copy, say), hint the rest across the repaired edge.
	stranded := sh.strandedDuty
	sh.strandedDuty = nil
	for doc, rate := range stranded {
		if sh.s.holdsCopy(doc) {
			sh.targets[doc] += rate
			sh.nAbsorbedDuty += rate
			sh.refreshCredit(doc)
			continue
		}
		sh.hintUp(doc, rate)
	}
	fwd := netproto.GetEnvelope()
	for key, pe := range sh.pending {
		*fwd = netproto.Envelope{
			Kind: netproto.TypeRequest, From: sh.s.cfg.ID, To: pl.id,
			Doc: pe.doc, Origin: key.origin, ReqID: key.reqID, Hops: pe.hops + 1,
			MinVersion: pe.minVer,
		}
		sh.sendOn(pl.conn, fwd)
		pe.at = sh.now // restart the TTL clock from the replay
		sh.pending[key] = pe
	}
	netproto.PutEnvelope(fwd)
	// Flights stay armed so new arrivals keep coalescing behind the replays
	// instead of each traveling upstream.
	for _, fl := range sh.inflight {
		fl.at = sh.now
	}
}

// dutyLedger returns (creating if needed) the delegated-duty ledger for one
// child.
func (sh *shard) dutyLedger(child int) map[core.DocID]float64 {
	m := sh.childDuty[child]
	if m == nil {
		m = make(map[core.DocID]float64, 8)
		sh.childDuty[child] = m
	}
	return m
}

// dropLedgerDuty debits duty a child handed back (shed) or abandoned
// (evict hint), clamped at zero.
func (sh *shard) dropLedgerDuty(child int, doc core.DocID, rate float64) {
	m := sh.childDuty[child]
	if m == nil {
		return
	}
	if r := m[doc] - rate; r > 1e-9 {
		m[doc] = r
	} else {
		delete(m, doc)
	}
}

// tick is the shard's periodic self-maintenance, driven by its own timer
// every gossip period (and by cmdSnap for scrapes): fold fast-path
// activity into the rate windows, refresh admission credits, sweep stale
// routing state, republish the snapshot mailbox.
func (sh *shard) tick() {
	// Read the cumulative fast-serve counter before the drain: every serve
	// it covers bumped its entry counter first (program order, seq-cst
	// atomics), so the drain below folds all of them into nServed and the
	// snapshot's fastServed stays a subset of its served.
	fast := sh.nFastServed.Load()
	sh.drainFast()
	sh.reapTombstones()
	sh.refreshCredits()
	sh.journalTick()
	sweepEvery := sh.s.cfg.PendingTTL / 2
	if sweepEvery < 10*time.Millisecond {
		sweepEvery = 10 * time.Millisecond
	}
	if sh.now.Sub(sh.lastSweep) >= sweepEvery {
		sh.lastSweep = sh.now
		sh.sweepStale()
	}
	sh.publishSnap(fast)
}

// drainFast folds the fast path's atomic serve/flow counts into the
// loop-owned rate windows, so gossip, diffusion and the admission filters
// see fast-path demand exactly like queued demand. A drained serve also
// touches the store once, keeping recency-based eviction policies aware
// that the document is hot.
func (sh *shard) drainFast() {
	for doc, e := range *sh.pub.Load() {
		sh.drainEntry(doc, e)
	}
}

// drainEntry folds one entry's pending fast-path counts into the windows.
func (sh *shard) drainEntry(doc core.DocID, e *pubEntry) {
	now := sh.now
	if n := e.served.Swap(0); n > 0 {
		sh.nServed += n
		sh.totalServed.Add(now, float64(n))
		sh.servedWindow(doc).Add(now, float64(n))
		if !e.dead.Load() {
			sh.s.cache.Get(doc) // one recency/frequency touch per active tick
		}
	}
	if fm := e.flows.Load(); fm != nil {
		for from, c := range *fm {
			if n := c.Swap(0); n > 0 {
				sh.flowWindow(from, doc).Add(now, float64(n))
			}
		}
	}
}

// reapTombstones removes entries unpublished at least one full gossip
// period ago from the index (unless the document was republished since —
// its entry is live again and stays). Between the tombstone and the reap
// the dead entry declines every fast-path serve but keeps its counters
// reachable, so a racing bump is at worst drained one tick late instead of
// lost. The generation shift is clamped to the gossip period — ticks also
// run per stats scrape (cmdSnap), and a tight scrape loop must not
// collapse the grace window a racing connection goroutine relies on.
func (sh *shard) reapTombstones() {
	if sh.now.Sub(sh.lastReap) < sh.s.cfg.GossipPeriod {
		return
	}
	sh.lastReap = sh.now
	if len(sh.tombstonedPrev) > 0 {
		old := sh.pub.Load()
		nm := make(pubMap, len(*old))
		for k, v := range *old {
			nm[k] = v
		}
		for _, doc := range sh.tombstonedPrev {
			if e := nm[doc]; e != nil && e.dead.Load() {
				sh.drainEntry(doc, e) // final stragglers
				delete(nm, doc)
			}
		}
		sh.pub.Store(&nm)
	}
	sh.tombstonedPrev = sh.tombstoned
	sh.tombstoned = nil
}

// refreshCredits reloads every gated entry's admission budget (see
// refreshCredit).
func (sh *shard) refreshCredits() {
	for doc, e := range *sh.pub.Load() {
		sh.refreshEntryCredit(doc, e)
	}
}

// publishSnap rebuilds and stores the snapshot mailbox. fast is the
// cumulative fast-serve count captured before the preceding drain.
func (sh *shard) publishSnap(fast int64) {
	sh.epoch++
	now := sh.now
	snap := &shardSnap{
		epoch:      sh.epoch,
		load:       sh.totalServed.Rate(now),
		pendingLen: len(sh.pending),
		targets:    make(map[core.DocID]float64, len(sh.targets)),
		served:     make(map[core.DocID]float64, len(sh.served)),
		flows:      make(map[int]map[core.DocID]float64, len(sh.childFlow)+1),
		installed:  sh.rt.Installed(),
		filter:     sh.rt.Stats(),
		counters: shardCounters{
			served: sh.nServed, forwarded: sh.nForwarded, coalesced: sh.nCoalesced,
			delegIn: sh.nDelegIn, delegOut: sh.nDelegOut,
			shedIn: sh.nShedIn, shedOut: sh.nShedOut,
			evictHintsIn:     sh.nEvictHintsIn,
			diskHits:         sh.nDiskHits,
			republishesIn:    sh.nRepublishesIn,
			invalidationsIn:  sh.nInvalidationsIn,
			staleDrops:       sh.nStaleDrops,
			leaseRefreshes:   sh.nLeaseRefreshes,
			sessionRefreshes: sh.nSessionRefreshes,
			fastServed:       fast,
			reclaimedDuty:    sh.nReclaimedDuty, absorbedDuty: sh.nAbsorbedDuty,
		},
	}
	for d, t := range sh.targets {
		snap.targets[d] = t
	}
	for d, w := range sh.served {
		snap.served[d] = w.Rate(now)
	}
	for child, flows := range sh.childFlow {
		m := make(map[core.DocID]float64, len(flows))
		for d, w := range flows {
			if r := w.Rate(now); r > 0 {
				m[d] = r
			}
		}
		snap.flows[child] = m
	}
	if len(sh.localFlow) > 0 {
		m := make(map[core.DocID]float64, len(sh.localFlow))
		for d, w := range sh.localFlow {
			if r := w.Rate(now); r > 0 {
				m[d] = r
			}
		}
		snap.flows[-1] = m
	}
	sh.snap.Store(snap)
}

// drainEvicted applies eviction cleanups posted by other shards' Puts.
func (sh *shard) drainEvicted() {
	sh.evictMu.Lock()
	if len(sh.evictedIn) == 0 {
		sh.evictMu.Unlock()
		return
	}
	notes := sh.evictedIn
	sh.evictedIn = nil
	sh.evictMu.Unlock()
	for _, n := range notes {
		sh.dropEvicted(n.doc)
	}
}

// postEvicted queues an eviction cleanup for this (non-owning caller's)
// shard; the owner drains it at its next batch or tick.
func (sh *shard) postEvicted(doc core.DocID) {
	sh.evictMu.Lock()
	sh.evictedIn = append(sh.evictedIn, evictedNote{doc: doc})
	sh.evictMu.Unlock()
}

// killPub tombstones a published entry so the fast path stops serving it.
// Safe from any goroutine — this is the one cross-shard write, a single
// atomic flag.
func (sh *shard) killPub(doc core.DocID) {
	if e := (*sh.pub.Load())[doc]; e != nil {
		e.dead.Store(true)
	}
}

// publish installs (or refreshes) a document in the copy-on-write
// publication index, stamping the copy's version for response frames.
// Owner loop only (single writer). Counts still pending on a replaced
// entry (a refresh, or a tombstone being republished) are drained first so
// no fast-path serves vanish from the stats.
func (sh *shard) publish(doc core.DocID, body []byte, always bool, version uint64) {
	old := sh.pub.Load()
	var nm pubMap
	if old == nil {
		nm = make(pubMap, 8)
	} else {
		nm = make(pubMap, len(*old)+1)
		for k, v := range *old {
			nm[k] = v
		}
		if prev := nm[doc]; prev != nil {
			sh.drainEntry(doc, prev)
		}
	}
	e := &pubEntry{body: body, always: always, version: version}
	nm[doc] = e
	sh.pub.Store(&nm)
}

// unpublish tombstones a document in the publication index (owner loop
// only) and drains its pending counts; the entry itself is reaped from the
// map two ticks later (reapTombstones), keeping a racing bump reachable.
func (sh *shard) unpublish(doc core.DocID) {
	e := (*sh.pub.Load())[doc]
	if e == nil {
		return
	}
	e.dead.Store(true)
	sh.drainEntry(doc, e)
	sh.tombstoned = append(sh.tombstoned, doc)
}

// servedWindow returns (creating if needed) the served-rate window for doc.
func (sh *shard) servedWindow(doc core.DocID) *rateWindow {
	w := sh.served[doc]
	if w == nil {
		w = newRateWindow(sh.s.cfg.Window, 8)
		sh.served[doc] = w
	}
	return w
}

// flowWindow returns the arrival-rate window for doc as seen from sender
// `from`: a child's A_j^d estimate for forwarded requests (requests only
// travel up the tree, so any non-negative sender id is a child), or local
// demand for client-injected ones (From -1). Keying on the envelope's id
// rather than the registration view keeps attribution correct even when a
// child's first requests overtake its registering gossip across the shard
// and control queues — the single event loop's per-connection FIFO no
// longer orders those two.
func (sh *shard) flowWindow(from int, doc core.DocID) *rateWindow {
	if from >= 0 {
		flows := sh.childFlow[from]
		if flows == nil {
			flows = make(map[core.DocID]*rateWindow, 16)
			sh.childFlow[from] = flows
		}
		w := flows[doc]
		if w == nil {
			w = newRateWindow(sh.s.cfg.Window, 8)
			flows[doc] = w
		}
		return w
	}
	w := sh.localFlow[doc]
	if w == nil {
		w = newRateWindow(sh.s.cfg.Window, 8)
		sh.localFlow[doc] = w
	}
	return w
}

func (sh *shard) handle(ev event) {
	env := ev.env
	switch env.Kind {
	case netproto.TypeRequest:
		sh.handleRequest(ev)

	case netproto.TypeResponse:
		// A response is also a version observation: learn the served
		// version before routing, so the lease check below compares
		// against the freshest high-water mark.
		sh.bumpDocVer(env.Doc, env.DocVersion)
		key := pendingKey{origin: env.Origin, reqID: env.ReqID}
		if pe, ok := sh.pending[key]; ok {
			delete(sh.pending, key)
			sh.sendOn(pe.conn, env)
		}
		// Any response carrying this document also answers the requests
		// coalesced behind the in-flight fetch.
		if fl, ok := sh.inflight[env.Doc]; ok {
			delete(sh.inflight, env.Doc)
			sh.answerWaiters(fl, env)
		}
		sh.maybeLeaseRefresh(env)

	case netproto.TypeDelegate:
		sh.nDelegIn++
		sh.s.gotDelegate.Store(true)
		if env.Body != nil {
			// A copy that does not fit under the byte budget is simply not
			// admitted (no ack): the delegated flow keeps passing toward
			// the home server and the parent reclaims it via claimPassing.
			sh.admit(env.Doc, env.Body, env.DocVersion)
		}
		if sh.s.holdsCopy(env.Doc) {
			sh.targets[env.Doc] += env.Rate
			sh.refreshCredit(env.Doc) // arm the fast path without waiting a tick
			sh.sendOn(ev.conn, &netproto.Envelope{
				Kind: netproto.TypeDelegateAck, From: sh.s.cfg.ID, To: env.From,
				Doc: env.Doc, Rate: env.Rate,
			})
		}

	case netproto.TypeDelegateAck:
		// Accepted in full in this implementation; nothing to reconcile.

	case netproto.TypeShed:
		sh.nShedIn++
		// Duty coming back up is no longer the sender's: debit its ledger.
		sh.dropLedgerDuty(env.From, env.Doc, env.Rate)
		// Pick up shed duty only for documents we hold (either tier);
		// otherwise the request flow simply continues to the home server.
		if sh.s.holdsCopy(env.Doc) {
			sh.targets[env.Doc] += env.Rate
			sh.refreshCredit(env.Doc)
		}

	case netproto.TypeEvict:
		// A neighbor displaced its copy under memory pressure. Absorb the
		// serve duty it abandoned if we still hold the document; otherwise
		// the flow simply continues toward the home server, which always
		// can serve (origin copies are pinned).
		sh.nEvictHintsIn++
		sh.dropLedgerDuty(env.From, env.Doc, env.Rate)
		if sh.s.holdsCopy(env.Doc) {
			sh.targets[env.Doc] += env.Rate
			sh.refreshCredit(env.Doc)
		}

	case netproto.TypeReclaim:
		// An orphan that failed over to this node re-announces duty it is
		// still carrying. Credit the child's ledger — the same bookkeeping
		// the evict-hint path debits — so a later loss of this child
		// re-absorbs exactly what lives below the repaired edge. The duty
		// itself stays at the child; nothing is added to our own targets.
		sh.nReclaimedDuty += env.Rate
		sh.dutyLedger(env.From)[env.Doc] += env.Rate

	case netproto.TypeTunnelFetch:
		// Only the home can answer authoritatively. Peek: a tunnel fetch
		// is a copy transfer, not local demand, so it must not refresh
		// recency or frequency. A fetch carrying a session floor newer than
		// our high-water mark goes unanswered — shipping an older copy
		// across the barrier would plant exactly the stale body the token
		// exists to bypass.
		if body, ok := sh.s.bodyOf(env.Doc); ok && env.MinVersion <= sh.docVer[env.Doc] {
			sh.sendOn(ev.conn, &netproto.Envelope{
				Kind: netproto.TypeTunnelReply, From: sh.s.cfg.ID, To: env.From,
				Doc: env.Doc, Body: body, DocVersion: sh.docVer[env.Doc],
			})
		}

	case netproto.TypeTunnelReply:
		if env.Body != nil && sh.admit(env.Doc, env.Body, env.DocVersion) {
			// The tunnel's pre-claim raised the target before the copy
			// existed; arm the fast path now instead of one tick late —
			// the burst that triggered tunneling is happening right now.
			sh.refreshCredit(env.Doc)
		}

	case netproto.TypeRepublish:
		sh.handleRepublish(env)

	case netproto.TypeInvalidate:
		sh.handleInvalidate(env)
	}
}

// refreshCredit re-arms one gated entry's fast-path budget after a target
// change, instead of leaving the fast path cold until the next tick.
func (sh *shard) refreshCredit(doc core.DocID) {
	if e := (*sh.pub.Load())[doc]; e != nil {
		sh.refreshEntryCredit(doc, e)
	}
}

// refreshEntryCredit reloads one gated entry's admission budget to what the
// exact filter would admit over the next tick: target minus measured served
// rate, scaled by the tick length (+1 so a barely-lagging copy still
// serves). Overshoot is bounded by one tick's worth of credits.
func (sh *shard) refreshEntryCredit(doc core.DocID, e *pubEntry) {
	if e.always || e.dead.Load() {
		return
	}
	gap := sh.targets[doc]
	if w := sh.served[doc]; w != nil {
		gap -= w.Rate(sh.now)
	}
	if gap > 0 {
		e.credits.Store(int64(gap*sh.s.cfg.GossipPeriod.Seconds()) + 1)
	} else {
		e.credits.Store(0)
	}
}

// handleConnClosed sweeps per-connection routing state when a link dies:
// pending response routes and coalesced waiters pointing at the dead
// connection are dropped (entries for requests whose client went away must
// not live forever). Child registration is control-loop state; the control
// loop additionally posts cmdChildGone so the flow windows drop.
func (sh *shard) handleConnClosed(conn transport.Conn) {
	for key, pe := range sh.pending {
		if pe.conn == conn {
			delete(sh.pending, key)
		}
	}
	for _, fl := range sh.inflight {
		kept := fl.waiters[:0]
		for _, w := range fl.waiters {
			if w.conn != conn {
				kept = append(kept, w)
			}
		}
		fl.waiters = kept
	}
}

// sweepStale expires pending routes and in-flight fetches older than
// PendingTTL — responses that will never come (message loss, dead
// subtrees) must not pin table entries forever.
func (sh *shard) sweepStale() {
	ttl := sh.s.cfg.PendingTTL
	for key, pe := range sh.pending {
		if sh.now.Sub(pe.at) > ttl {
			delete(sh.pending, key)
		}
	}
	for doc, fl := range sh.inflight {
		if sh.now.Sub(fl.at) > ttl {
			delete(sh.inflight, doc)
		}
	}
}

// handleRequest implements the queued data path: the shard's router
// classifies the packet; Extract serves it here, Pass forwards it toward
// the home server. (Requests the fast path already answered never reach
// this point.)
func (sh *shard) handleRequest(ev event) {
	env := ev.env
	// Account per-child forwarded flow (A_j^d) when the request came from a
	// registered child, or local demand otherwise. Accounting happens
	// before single-flight coalescing, so the local protocol signals see
	// the full demand even when the upstream fetch is shared.
	sh.flowWindow(env.From, env.Doc).Add(sh.now, 1)

	if env.MinVersion > sh.docVer[env.Doc] && sh.sessionGate(ev) {
		return
	}
	if sh.rt.Classify(env.Doc) == router.Extract || sh.s.isRoot {
		sh.serveRequest(ev)
		return
	}
	sh.forwardUp(ev)
}

// sessionGate handles a request whose session token demands a newer version
// than this shard has seen (MinVersion > docVer): serving the local copy
// would violate read-my-writes, so the request bypasses it and rides the
// subtree-lease single-flight upward instead — any held body is marked
// stale (kept serving token-less readers) so the passing response re-admits
// the fresh copy through maybeLeaseRefresh, the same repair path
// invalidation uses. At the root there is no upward edge; the write that
// minted the token is still in flight toward us, so the request parks as a
// flight waiter until the version lands (answerParked) or the pending sweep
// expires it (a token claiming a version that never arrives). Reports
// whether the request was consumed; false means the token is unsatisfiable
// here and normal serving should proceed (an unpublished document at the
// root answers NotFound rather than parking forever).
func (sh *shard) sessionGate(ev event) bool {
	env := ev.env
	if sh.s.isRoot {
		if _, published := sh.s.bodyOf(env.Doc); !published && sh.docVer[env.Doc] == 0 {
			return false
		}
		sh.nSessionRefreshes++
		fl := sh.inflight[env.Doc]
		if fl == nil {
			fl = &flight{at: sh.now}
			sh.inflight[env.Doc] = fl
		}
		fl.waiters = append(fl.waiters, waiter{
			origin: env.Origin, reqID: env.ReqID, conn: ev.conn, minVer: env.MinVersion,
		})
		return true
	}
	sh.nSessionRefreshes++
	if sh.s.holdsCopy(env.Doc) {
		sh.staleDocs[env.Doc] = true
	}
	sh.forwardUp(ev)
	return true
}

// forwardUp relays a request toward the home server, remembering which
// connection to route the response back on. Concurrent requests for the
// same uncached document collapse into the existing in-flight fetch: they
// are parked as waiters and answered from its response instead of each
// traveling upstream (single-flight). A flight whose leader has gone
// unanswered past the retry horizon (a lost message, a healed partition)
// stops absorbing requests: the next one travels upstream as a fresh
// leader, keeping the accumulated waiters eligible for its response.
//
// While orphaned (no parent link), the request is parked — pending entry
// and flight created, nothing sent — and replayed by parentRestored once a
// failover lands, so losing a parent delays queued upward flow instead of
// dropping it.
func (sh *shard) forwardUp(ev event) {
	env := ev.env
	fl := sh.inflight[env.Doc]
	if fl != nil && sh.now.Sub(fl.at) < sh.flightRetry {
		fl.waiters = append(fl.waiters, waiter{origin: env.Origin, reqID: env.ReqID, conn: ev.conn, minVer: env.MinVersion})
		sh.nCoalesced++
		return
	}
	if fl == nil {
		fl = &flight{}
		sh.inflight[env.Doc] = fl
	}
	fl.at = sh.now
	sh.nForwarded++
	key := pendingKey{origin: env.Origin, reqID: env.ReqID}
	sh.pending[key] = pendingEntry{conn: ev.conn, at: sh.now, doc: env.Doc, hops: env.Hops, minVer: env.MinVersion}
	pl := sh.s.parentLink()
	if pl == nil {
		return // orphaned: queued for replay
	}
	fwd := netproto.GetEnvelope()
	*fwd = *env
	fwd.From = sh.s.cfg.ID
	fwd.To = pl.id
	fwd.Hops = env.Hops + 1
	sh.sendOn(pl.conn, fwd)
	netproto.PutEnvelope(fwd)
}

// answerWaiters fans a response out to every request coalesced behind the
// fetch that produced it. Waiters whose session floor exceeds the
// response's version must not be answered with it (a token-less leader's
// fetch can resolve to a copy older than what a coalesced session has
// already seen); they re-arm as a fresh flight instead.
func (sh *shard) answerWaiters(fl *flight, resp *netproto.Envelope) {
	if len(fl.waiters) == 0 {
		return
	}
	var unsatisfied []waiter
	out := netproto.GetEnvelope()
	for _, w := range fl.waiters {
		if w.minVer > resp.DocVersion && !resp.NotFound {
			unsatisfied = append(unsatisfied, w)
			continue
		}
		*out = netproto.Envelope{
			Kind: netproto.TypeResponse, From: sh.s.cfg.ID, To: w.origin,
			Doc: resp.Doc, Origin: w.origin, ReqID: w.reqID,
			ServedBy: resp.ServedBy, Hops: resp.Hops,
			Body: resp.Body, NotFound: resp.NotFound,
			DocVersion: resp.DocVersion,
		}
		sh.sendOn(w.conn, out)
	}
	netproto.PutEnvelope(out)
	if len(unsatisfied) > 0 {
		sh.refetchUnsatisfied(resp.Doc, unsatisfied)
	}
}

// refetchUnsatisfied re-arms session waiters a too-old response could not
// answer: they become a fresh flight whose first waiter leads a new fetch
// upward carrying the group's highest version floor — ancestors gate on it
// recursively, so the routed response is guaranteed to satisfy everyone
// left behind it. At the root there is nowhere to forward; the group stays
// parked until the claimed write lands (answerParked) or the sweep expires
// the flight.
func (sh *shard) refetchUnsatisfied(doc core.DocID, ws []waiter) {
	fl := &flight{at: sh.now, waiters: ws}
	sh.inflight[doc] = fl
	if sh.s.isRoot {
		return
	}
	lead := ws[0]
	fl.waiters = ws[1:]
	var maxVer uint64
	for _, w := range ws {
		if w.minVer > maxVer {
			maxVer = w.minVer
		}
	}
	sh.nForwarded++
	sh.pending[pendingKey{origin: lead.origin, reqID: lead.reqID}] = pendingEntry{conn: lead.conn, at: sh.now, doc: doc, minVer: maxVer}
	pl := sh.s.parentLink()
	if pl == nil {
		return // orphaned: replayed by parentRestored
	}
	fwd := netproto.GetEnvelope()
	*fwd = netproto.Envelope{
		Kind: netproto.TypeRequest, From: sh.s.cfg.ID, To: pl.id,
		Doc: doc, Origin: lead.origin, ReqID: lead.reqID, MinVersion: maxVer,
	}
	sh.sendOn(pl.conn, fwd)
	netproto.PutEnvelope(fwd)
}

// admit caches a document copy under the byte budget and wires the
// eviction feedback into the protocol. It returns whether the copy was
// admitted (a body that cannot fit is rejected, not cached).
//
// For every displaced document: the fast path is cut immediately (the
// publication tombstone), and the owning shard — usually this one, always
// this one when the cache striping is aligned — tears down the admission
// filter so requests resume traveling toward the home server, drops the
// serve target and rate window, and hints the eviction to the parent with
// the abandoned target rate so a surviving copy upstream absorbs the duty
// instead of waiting a diffusion period to notice the imbalance.
func (sh *shard) admit(doc core.DocID, body []byte, ver uint64) bool {
	if ver < sh.docVer[doc] {
		// A stale body (a delegation or tunnel reply that raced a
		// republish): refuse it — admitting it would roll the document
		// back behind the version the tree has already converged on.
		sh.nStaleDrops++
		return false
	}
	if sh.bumpDocVer(doc, ver) && sh.s.disk != nil {
		sh.s.disk.Delete(doc) // any resident disk body predates ver
	}
	// Write through to the disk tier first, so the body is crash-safe (and
	// eviction-safe) before any duty is accepted for it.
	sh.diskWriteThrough(doc, body)
	evs, ok := sh.s.cache.PutVersion(doc, body, ver)
	sh.applyEvictions(evs)
	if ok {
		sh.installFilter(doc)
		sh.publish(doc, body, false, ver)
		sh.journalAdmit(doc)
		sh.journalVersion(doc, ver)
		return true
	}
	if sh.s.diskHas(doc) {
		// Too big (or too contended) for memory, but captured by the disk
		// tier: the node still accepts the copy and its duty — this is what
		// lets a corpus larger than RAM keep serving below the home server.
		// No publication: the fast path needs an in-memory body; the read
		// path serves the copy from disk until a hit re-admits it.
		sh.installFilter(doc)
		sh.journalAdmit(doc)
		sh.journalVersion(doc, ver)
		return true
	}
	return false
}

// applyEvictions runs the protocol-side cleanup for a Put's displaced
// documents: cut the fast path now, route the owner-side teardown (or
// spill) to each document's owning shard.
func (sh *shard) applyEvictions(evs []cachestore.Eviction) {
	for _, ev := range evs {
		sh.s.nEvicted.Add(1)
		sh.s.nEvictedBytes.Add(int64(ev.Bytes))
		owner := sh.s.shardFor(ev.Doc)
		owner.killPub(ev.Doc) // stop fast-path serves of the stale body now
		if owner == sh {
			sh.dropEvicted(ev.Doc)
		} else {
			owner.postEvicted(ev.Doc)
		}
	}
}

// dropEvicted is the owner-side eviction cleanup: filter down, publication
// entry out, duty handed to the parent. Skipped when the document was
// re-admitted before the cleanup drained (the note is then stale).
func (sh *shard) dropEvicted(doc core.DocID) {
	if sh.s.cache.Contains(doc) {
		// Re-admitted since the note was posted. The evictor's killPub may
		// have raced the re-admission and tombstoned the FRESH publication
		// entry — which sits in no tombstone list and would otherwise stay
		// dead (fast path disabled) forever. Republish from the live copy.
		if e := (*sh.pub.Load())[doc]; e != nil && e.dead.Load() {
			if body, ok := sh.s.cache.Peek(doc); ok {
				sh.publish(doc, body, false, sh.docVer[doc])
				sh.refreshCredit(doc)
			}
		}
		return
	}
	if sh.s.diskHas(doc) {
		// Spilled, not lost: the disk tier still holds the body (admission
		// wrote through), so the node keeps the document's duty and filter.
		// Only the fast path goes down — it needs an in-memory body — and
		// the read path serves memory → disk until a hit re-admits it.
		sh.unpublish(doc)
		sh.s.nSpills.Add(1)
		return
	}
	sh.rt.Remove(doc)
	sh.unpublish(doc)
	residual := sh.targets[doc]
	delete(sh.targets, doc)
	delete(sh.served, doc)
	sh.journalDrop(doc)
	// A copy displaced before accruing any serve duty has nothing for the
	// parent to absorb; hintUp skips the no-op (and parks the hint while
	// orphaned).
	sh.hintUp(doc, residual)
}

func (sh *shard) serveRequest(ev event) {
	env := ev.env
	body, cached := sh.s.cache.Get(env.Doc)
	if !cached {
		if dbody, ok := sh.s.diskGet(env.Doc); ok {
			// Disk-tier hit: serve the spilled copy and re-admit it to
			// memory so subsequent requests take the fast path again (the
			// disk copy stays — bodies are immutable, demotion is free).
			sh.nDiskHits++
			sh.readmitFromDisk(env.Doc, dbody)
			body, cached = dbody, true
		}
	}
	if !cached && !sh.s.isRoot {
		// The filter extracted a document we no longer hold (install/evict
		// race); keep the request moving toward the home server.
		sh.forwardUp(ev)
		return
	}
	now := sh.now
	sh.nServed++
	sh.totalServed.Add(now, 1)
	sh.servedWindow(env.Doc).Add(now, 1)
	resp := netproto.GetEnvelope()
	*resp = netproto.Envelope{
		Kind: netproto.TypeResponse, From: sh.s.cfg.ID, To: env.Origin,
		Doc: env.Doc, Origin: env.Origin, ReqID: env.ReqID,
		ServedBy: sh.s.cfg.ID, Hops: env.Hops,
		Body: body, NotFound: !cached,
		// Stale copies are dropped the instant a newer version is known
		// (republish swaps in place, invalidate deletes), so a locally
		// served body is always at the shard's high-water version.
		DocVersion: sh.docVer[env.Doc],
	}
	sh.sendOn(ev.conn, resp)
	netproto.PutEnvelope(resp)
}

// readmitFromDisk promotes a disk-served body back into memory so the next
// request takes the fast path. No journal traffic: the document was already
// journaled as admitted, and the disk copy stays where it is. If memory
// still refuses the body (budget smaller than the body), the document simply
// stays disk-resident.
func (sh *shard) readmitFromDisk(doc core.DocID, body []byte) {
	evs, ok := sh.s.cache.PutVersion(doc, body, sh.docVer[doc])
	sh.applyEvictions(evs)
	if ok {
		sh.publish(doc, body, false, sh.docVer[doc])
		sh.refreshCredit(doc)
	}
}

// installFilter wires the admission decision for one cached document: the
// packet is extracted while the measured served rate lags the target rate.
// The filter runs on this shard's loop, so it reads the loop-owned clock
// instead of taking a timestamp per classified packet.
func (sh *shard) installFilter(doc core.DocID) {
	sh.rt.Install(doc, router.FilterFunc(func(d core.DocID) bool {
		w := sh.served[d]
		if w == nil {
			return sh.targets[d] > 0
		}
		return w.Rate(sh.now) < sh.targets[d]
	}))
}

// delegateOut executes one control-loop delegation decision on the owning
// shard: drop the local target, ship the duty (and body) to the child.
// Decisions are computed from snapshots and so may be a tick stale; the
// shard re-validates what still holds.
func (sh *shard) delegateOut(child int, doc core.DocID, rate float64) {
	conn := sh.s.childConn(child)
	if conn == nil || !sh.s.holdsCopy(doc) {
		return
	}
	sh.targets[doc] -= rate
	if sh.targets[doc] < 0 {
		sh.targets[doc] = 0
	}
	sh.nDelegOut++
	sh.dutyLedger(child)[doc] += rate // credited back if the child sheds or dies
	body, _ := sh.s.bodyOf(doc)       // a handoff is not local demand
	sh.sendOn(conn, &netproto.Envelope{
		Kind: netproto.TypeDelegate, From: sh.s.cfg.ID, To: child,
		Doc: doc, Rate: rate, Body: body, DocVersion: sh.docVer[doc],
	})
}

// shedOut executes one control-loop shed decision: move duty up to the
// parent. Re-validated like delegateOut: if the copy was evicted since the
// snapshot, its residual duty already traveled upstream in the evict hint
// and a shed here would hand the parent the same duty twice.
func (sh *shard) shedOut(doc core.DocID, rate float64) {
	pl := sh.s.parentLink()
	if pl == nil || !sh.s.holdsCopy(doc) {
		return
	}
	sh.targets[doc] -= rate
	if sh.targets[doc] < 0 {
		sh.targets[doc] = 0
	}
	sh.nShedOut++
	sh.sendOn(pl.conn, &netproto.Envelope{
		Kind: netproto.TypeShed, From: sh.s.cfg.ID, To: pl.id,
		Doc: doc, Rate: rate,
	})
}
