package server

import (
	"testing"
	"time"

	"webwave/internal/core"
	"webwave/internal/netproto"
)

// TestInvalidateDropsCopyThenLeaseRefreshes drives the full write path with
// no duty ledger entry for the leaf: the root installs the new version, the
// leaf gets a version-only invalidate, drops its copy (keeping duty), and
// the next request lease-refreshes the fresh body through the single-flight
// fetch — after which the leaf serves the new version locally again.
func TestInvalidateDropsCopyThenLeaseRefreshes(t *testing.T) {
	netw := newTestNetwork()
	startServer(t, Config{
		ID: 0, Addr: "root", ParentID: -1,
		Docs:         map[core.DocID][]byte{"d": []byte("v0")},
		Network:      netw,
		GossipPeriod: 15 * time.Millisecond,
	})
	startServer(t, Config{
		ID: 1, Addr: "leaf", ParentID: 0, ParentAddr: "root", HomeAddr: "root",
		Network:      netw,
		GossipPeriod: 15 * time.Millisecond,
	})
	client := dial(t, netw, "leaf")

	// Register the leaf's parent link as a child edge at the root: a miss
	// for an unheld document forwards up, and the first frame From the leaf
	// installs its connection in the root's child view.
	if err := client.Send(&netproto.Envelope{
		Kind: netproto.TypeRequest, From: -1, To: 1, Origin: 1, ReqID: 1, Doc: "u",
	}); err != nil {
		t.Fatal(err)
	}
	netproto.PutEnvelope(recvKind(t, client, netproto.TypeResponse, 2*time.Second))

	// Hand the leaf a copy of "d" at version 0 with duty.
	deleg := dial(t, netw, "leaf")
	if err := deleg.Send(&netproto.Envelope{
		Kind: netproto.TypeDelegate, From: 0, To: 1, Doc: "d", Rate: 5, Body: []byte("v0"),
	}); err != nil {
		t.Fatal(err)
	}
	waitCached(t, netw, "leaf", map[core.DocID]bool{"d": true})

	// Write version 1 at the origin: an invalidate carrying the new body.
	// The body installs at the root; the leaf sees a version-only frame.
	writer := dial(t, netw, "root")
	if err := writer.Send(&netproto.Envelope{
		Kind: netproto.TypeInvalidate, From: -1, To: 0, Doc: "d", DocVersion: 1, Body: []byte("v1"),
	}); err != nil {
		t.Fatal(err)
	}
	waitStats(t, netw, "leaf", "leaf invalidated", func(st *netproto.Stats) bool {
		return st.InvalidationsIn == 1
	})
	waitCached(t, netw, "leaf", map[core.DocID]bool{"d": false})

	// The stale miss travels up through the single-flight lease; the
	// response carries v1 and re-admits the copy at the leaf.
	if err := client.Send(&netproto.Envelope{
		Kind: netproto.TypeRequest, From: -1, To: 1, Origin: 1, ReqID: 2, Doc: "d",
	}); err != nil {
		t.Fatal(err)
	}
	resp := recvKind(t, client, netproto.TypeResponse, 2*time.Second)
	if string(resp.Body) != "v1" || resp.DocVersion != 1 {
		t.Fatalf("post-invalidate response = body %q version %d, want v1/1", resp.Body, resp.DocVersion)
	}
	if resp.ServedBy != 0 {
		t.Fatalf("served by %d, want the origin (0) on the lease fetch", resp.ServedBy)
	}
	netproto.PutEnvelope(resp)
	waitStats(t, netw, "leaf", "lease refresh", func(st *netproto.Stats) bool {
		return st.LeaseRefreshes == 1
	})

	// The refreshed copy serves the new version locally.
	if err := client.Send(&netproto.Envelope{
		Kind: netproto.TypeRequest, From: -1, To: 1, Origin: 1, ReqID: 3, Doc: "d",
	}); err != nil {
		t.Fatal(err)
	}
	resp = recvKind(t, client, netproto.TypeResponse, 2*time.Second)
	if resp.ServedBy != 1 || string(resp.Body) != "v1" || resp.DocVersion != 1 {
		t.Fatalf("refreshed serve = by %d body %q version %d, want local v1/1", resp.ServedBy, resp.Body, resp.DocVersion)
	}
	netproto.PutEnvelope(resp)
}

// TestRepublishPushesBodyAlongDutyEdge puts delegated duty for the leaf in
// the root's child ledger, then republishes: the new body must ride the
// duty edge down so the leaf swaps its copy in place and keeps serving —
// no extra round trip to the origin.
func TestRepublishPushesBodyAlongDutyEdge(t *testing.T) {
	netw := newTestNetwork()
	startServer(t, Config{
		ID: 0, Addr: "root", ParentID: -1,
		Docs:         map[core.DocID][]byte{"d": []byte("v0")},
		Network:      netw,
		GossipPeriod: 15 * time.Millisecond,
	})
	startServer(t, Config{
		ID: 1, Addr: "leaf", ParentID: 0, ParentAddr: "root", HomeAddr: "root",
		Network:      netw,
		GossipPeriod: 15 * time.Millisecond,
	})
	client := dial(t, netw, "leaf")

	// Register the leaf's real parent link at the root (see above), so the
	// reclaim below credits a ledger whose edge is the genuine connection.
	if err := client.Send(&netproto.Envelope{
		Kind: netproto.TypeRequest, From: -1, To: 1, Origin: 1, ReqID: 1, Doc: "u",
	}); err != nil {
		t.Fatal(err)
	}
	netproto.PutEnvelope(recvKind(t, client, netproto.TypeResponse, 2*time.Second))

	deleg := dial(t, netw, "leaf")
	if err := deleg.Send(&netproto.Envelope{
		Kind: netproto.TypeDelegate, From: 0, To: 1, Doc: "d", Rate: 5, Body: []byte("v0"),
	}); err != nil {
		t.Fatal(err)
	}
	waitCached(t, netw, "leaf", map[core.DocID]bool{"d": true})

	// Announce the leaf's held duty to the root — the failover replay frame
	// — so the root's child ledger knows a copy lives below that edge.
	ann := dial(t, netw, "root")
	if err := ann.Send(&netproto.Envelope{
		Kind: netproto.TypeReclaim, From: 1, To: 0, Doc: "d", Rate: 5,
	}); err != nil {
		t.Fatal(err)
	}
	waitStats(t, netw, "root", "ledger credited", func(st *netproto.Stats) bool {
		return st.ReclaimedDuty == 5
	})

	// Republish version 1: the body must arrive at the leaf as a republish
	// (not a version-only invalidate) and swap in place.
	writer := dial(t, netw, "root")
	if err := writer.Send(&netproto.Envelope{
		Kind: netproto.TypeRepublish, From: -1, To: 0, Doc: "d", DocVersion: 1, Body: []byte("v1"),
	}); err != nil {
		t.Fatal(err)
	}
	waitStats(t, netw, "leaf", "republish applied", func(st *netproto.Stats) bool {
		return st.RepublishesIn == 1
	})

	// The leaf still holds (and serves) the document — now at version 1 —
	// without ever dropping it or fetching upward.
	if err := client.Send(&netproto.Envelope{
		Kind: netproto.TypeRequest, From: -1, To: 1, Origin: 1, ReqID: 2, Doc: "d",
	}); err != nil {
		t.Fatal(err)
	}
	resp := recvKind(t, client, netproto.TypeResponse, 2*time.Second)
	if resp.ServedBy != 1 || string(resp.Body) != "v1" || resp.DocVersion != 1 {
		t.Fatalf("post-republish serve = by %d body %q version %d, want local v1/1", resp.ServedBy, resp.Body, resp.DocVersion)
	}
	netproto.PutEnvelope(resp)
	st := waitStats(t, netw, "leaf", "no invalidation at the leaf", func(st *netproto.Stats) bool {
		return st.InvalidationsIn == 0
	})
	if st.LeaseRefreshes != 0 {
		t.Errorf("lease refreshes = %d, want 0: the body rode the duty edge", st.LeaseRefreshes)
	}
}

// TestVersionGateDropsStaleWrites drives a shard loop single-threaded: a
// frame at or below the high-water version must be dropped without touching
// the held copy, and version-carrying copy handoffs below the high-water
// mark must be refused.
func TestVersionGateDropsStaleWrites(t *testing.T) {
	s, err := New(Config{
		ID: 1, Addr: "x", ParentID: 0, ParentAddr: "p",
		Network: newTestNetwork(), NumShards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sh := s.shards[0]
	sh.now = time.Now()
	if !sh.admit("d", []byte("v2"), 2) {
		t.Fatal("admit failed")
	}

	// A republish carrying an older version is a stale duplicate: dropped.
	sh.handle(event{env: &netproto.Envelope{
		Kind: netproto.TypeRepublish, From: 0, To: 1, Doc: "d", DocVersion: 1, Body: []byte("old"),
	}, conn: nopConn{}})
	if sh.nStaleDrops != 1 || sh.nRepublishesIn != 0 {
		t.Fatalf("stale republish: drops=%d applied=%d, want 1/0", sh.nStaleDrops, sh.nRepublishesIn)
	}
	if body, ok := s.cache.Peek("d"); !ok || string(body) != "v2" {
		t.Fatalf("held body = %q (%v) after stale republish, want v2 intact", body, ok)
	}

	// Same version is not news either — invalidates gate identically.
	sh.handle(event{env: &netproto.Envelope{
		Kind: netproto.TypeInvalidate, From: 0, To: 1, Doc: "d", DocVersion: 2,
	}, conn: nopConn{}})
	if sh.nStaleDrops != 2 || sh.nInvalidationsIn != 0 {
		t.Fatalf("same-version invalidate: drops=%d applied=%d, want 2/0", sh.nStaleDrops, sh.nInvalidationsIn)
	}
	if !s.cache.Contains("d") {
		t.Fatal("same-version invalidate dropped the copy")
	}

	// A genuinely newer invalidate applies: body gone, duty and filter stay,
	// the document marked stale for the lease path.
	sh.targets["d"] = 4
	sh.handle(event{env: &netproto.Envelope{
		Kind: netproto.TypeInvalidate, From: 0, To: 1, Doc: "d", DocVersion: 3,
	}, conn: nopConn{}})
	if sh.nInvalidationsIn != 1 {
		t.Fatalf("invalidations applied = %d, want 1", sh.nInvalidationsIn)
	}
	if s.cache.Contains("d") {
		t.Fatal("invalidate left the stale body in memory")
	}
	if !sh.staleDocs["d"] {
		t.Fatal("invalidate did not mark the document stale")
	}
	if sh.targets["d"] != 4 {
		t.Fatalf("invalidate moved duty: target = %v, want 4", sh.targets["d"])
	}

	// A stale delegate handoff (version below high-water) must be refused.
	if sh.admit("d", []byte("v1"), 1) {
		t.Fatal("admit accepted a version below the high-water mark")
	}
	if sh.nStaleDrops != 3 {
		t.Fatalf("stale drops = %d, want 3 after refused handoff", sh.nStaleDrops)
	}
	// The current version re-admits fine (the lease refresh path).
	if !sh.admit("d", []byte("v3"), 3) {
		t.Fatal("admit refused the high-water version")
	}
	if v, ok := s.cache.Version("d"); !ok || v != 3 {
		t.Fatalf("re-admitted version = %d (%v), want 3", v, ok)
	}
}

// TestWarmRestartRecoversVersions kills a copy-holding server and restarts
// it on the same data directory: the recovered copy must come back at the
// version it held, and the version gate must keep refusing stale writes
// across the restart.
func TestWarmRestartRecoversVersions(t *testing.T) {
	netw := newTestNetwork()
	dir := t.TempDir()
	startServer(t, Config{
		ID: 0, Addr: "root", ParentID: -1, Network: netw,
	})
	cfg := Config{
		ID: 1, Addr: "leaf", ParentID: 0, ParentAddr: "root", HomeAddr: "root",
		Network: netw, DataDir: dir,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	deleg := dial(t, netw, "leaf")
	if err := deleg.Send(&netproto.Envelope{
		Kind: netproto.TypeDelegate, From: 0, To: 1, Doc: "d", Rate: 5, DocVersion: 7, Body: []byte("v7"),
	}); err != nil {
		t.Fatal(err)
	}
	waitCached(t, netw, "leaf", map[core.DocID]bool{"d": true})
	s.Stop()

	s2 := startServer(t, cfg)
	waitCached(t, netw, "leaf", map[core.DocID]bool{"d": true})
	sh := s2.shardFor("d")
	if got := sh.docVer["d"]; got != 7 {
		t.Fatalf("recovered version = %d, want 7", got)
	}

	// Rollback prevention survives the restart: a write at or below the
	// recovered version is a stale duplicate.
	conn := dial(t, netw, "leaf")
	if err := conn.Send(&netproto.Envelope{
		Kind: netproto.TypeRepublish, From: 0, To: 1, Doc: "d", DocVersion: 6, Body: []byte("old"),
	}); err != nil {
		t.Fatal(err)
	}
	waitStats(t, netw, "leaf", "stale write dropped", func(st *netproto.Stats) bool {
		return st.StaleDrops >= 1
	})
	if err := conn.Send(&netproto.Envelope{
		Kind: netproto.TypeRequest, From: -1, To: 1, Origin: 1, ReqID: 1, Doc: "d",
	}); err != nil {
		t.Fatal(err)
	}
	resp := recvKind(t, conn, netproto.TypeResponse, 2*time.Second)
	if string(resp.Body) != "v7" || resp.DocVersion != 7 {
		t.Fatalf("post-restart serve = body %q version %d, want v7/7", resp.Body, resp.DocVersion)
	}
	netproto.PutEnvelope(resp)
}
