package server

import (
	"os"
	"path/filepath"
	"testing"

	"webwave/internal/core"
	"webwave/internal/diskstore"
	"webwave/internal/transport"
)

// tearJournalTail appends half a frame to the journal — the torn write a
// SIGKILL leaves behind.
func tearJournalTail(t *testing.T, path string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// A plausible length header with no payload behind it.
	if _, err := f.Write([]byte{0x20, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
}

// forgePreviousLife writes the on-disk remains of a killed node under dir:
// body files for each doc and a journal admitting them at the given rates.
// A rate under docs but absent from rates journals as admit-at-zero.
func forgePreviousLife(t *testing.T, dir string, docs map[core.DocID][]byte, rates map[core.DocID]float64) {
	t.Helper()
	ds, err := diskstore.Open(diskstore.Config{Dir: filepath.Join(dir, "bodies")})
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := diskstore.OpenJournal(filepath.Join(dir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	for doc, body := range docs {
		if _, ok := ds.Put(doc, body); !ok {
			t.Fatalf("forge: body %q rejected", doc)
		}
		if err := j.Append(diskstore.OpAdmit, doc, rates[doc]); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func warmConfig(dir string) Config {
	return Config{
		ID: 7, Addr: "warm-node", ParentID: 0, ParentAddr: "warm-parent",
		Network: transport.NewMemoryNetwork(transport.MemoryOptions{}),
		DataDir: dir, NumShards: 1, CacheShards: 1,
	}
}

// TestNewRecoversWarmStateFromDataDir: New on a data dir left by a killed
// node must come up holding the journaled documents — bodies back in
// memory, filters installed, targets restored — before Start runs at all,
// and must skip journal entries whose body file did not survive.
func TestNewRecoversWarmStateFromDataDir(t *testing.T) {
	dir := t.TempDir()
	forgePreviousLife(t, dir,
		map[core.DocID][]byte{"a": []byte("aaaa"), "b": []byte("bbbb")},
		map[core.DocID]float64{"a": 12, "b": 3})
	// A doc journaled as held whose body the disk tier later dropped:
	// recovery must skip it, not refuse to start.
	j, _, err := diskstore.OpenJournal(filepath.Join(dir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(diskstore.OpAdmit, "ghost", 5); err != nil {
		t.Fatal(err)
	}
	j.Close()

	s, err := New(warmConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	if s.warmDocs != 2 {
		t.Fatalf("warmDocs = %d, want 2", s.warmDocs)
	}
	if !s.cache.Contains("a") || !s.cache.Contains("b") {
		t.Fatalf("recovered bodies not in memory: a=%v b=%v",
			s.cache.Contains("a"), s.cache.Contains("b"))
	}
	if s.cache.Contains("ghost") {
		t.Fatal("bodyless journal entry resurrected")
	}
	if got := s.shardFor("a").targets["a"]; got != 12 {
		t.Fatalf("target a = %v, want 12", got)
	}
	if got := s.shardFor("b").targets["b"]; got != 3 {
		t.Fatalf("target b = %v, want 3", got)
	}
	// Recovery compacts the journal to one admit per live doc, so journals
	// stay proportional to the held set across restart cycles.
	if n := s.journal.Appended(); n != 2 {
		t.Fatalf("compacted journal holds %d records, want 2", n)
	}
}

// TestRecoveryKeepsOverflowOnDisk: when the recovered set exceeds the
// memory budget the surplus stays disk-resident — still held (filter in,
// holdsCopy true, duty keepable), served via the disk read path.
func TestRecoveryKeepsOverflowOnDisk(t *testing.T) {
	dir := t.TempDir()
	big := make([]byte, 100)
	forgePreviousLife(t, dir,
		map[core.DocID][]byte{"a": big, "b": big, "c": big},
		map[core.DocID]float64{"a": 1, "b": 1, "c": 1})

	cfg := warmConfig(dir)
	cfg.CacheBudgetBytes = 150 // one body fits, three were held
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	if s.warmDocs != 3 {
		t.Fatalf("warmDocs = %d, want 3", s.warmDocs)
	}
	inMem := 0
	for _, doc := range []core.DocID{"a", "b", "c"} {
		if s.cache.Contains(doc) {
			inMem++
		}
		if !s.holdsCopy(doc) {
			t.Fatalf("recovered doc %q not held in any tier", doc)
		}
		if body, ok := s.bodyOf(doc); !ok || len(body) != len(big) {
			t.Fatalf("recovered doc %q unservable: %d bytes, ok=%v", doc, len(body), ok)
		}
	}
	if inMem != 1 {
		t.Fatalf("%d recovered bodies in memory, want 1 under the budget", inMem)
	}
}

// TestTornJournalNeverPreventsStart: a data dir whose journal ends
// mid-frame (the write a SIGKILL interrupted) must still produce a running
// node holding the valid prefix.
func TestTornJournalNeverPreventsStart(t *testing.T) {
	dir := t.TempDir()
	forgePreviousLife(t, dir,
		map[core.DocID][]byte{"a": []byte("aaaa")},
		map[core.DocID]float64{"a": 2})
	tearJournalTail(t, filepath.Join(dir, "journal.wal"))

	s, err := New(warmConfig(dir))
	if err != nil {
		t.Fatalf("torn journal refused start: %v", err)
	}
	defer s.Stop()
	if s.warmDocs != 1 || !s.cache.Contains("a") {
		t.Fatalf("warmDocs=%d contains(a)=%v after torn-tail recovery",
			s.warmDocs, s.cache.Contains("a"))
	}
}
