package server

import (
	"sort"
	"sync/atomic"
	"time"

	"webwave/internal/core"
	"webwave/internal/forest"
	"webwave/internal/netproto"
	"webwave/internal/router"
	"webwave/internal/transport"
)

// control is the server's control loop: it owns the neighborhood — gossip
// timers and load figures, child registration, diffusion and tunneling
// decisions, stats scrapes — while the shard loops own per-document state.
// It never reads shard state directly: decisions are computed from the
// shards' epoch-stamped snapshot mailboxes and applied by posting commands
// into the shard queues, so the two layers share nothing but atomics.
type control struct {
	s *Server

	now         time.Time
	childLoad   map[int]float64
	parentLoad  float64
	parentKnown bool
	underFor    int // consecutive under-loaded periods with no delegation

	nGossip, nTunnels int64

	// Replication-forest state (promote.go). promoCfg/promos/replicaHeat
	// belong to the home side of the protocol, replicaDocs to the replica
	// side; a mid-tree node uses both roles at once only in degenerate
	// configurations, so the maps coexist harmlessly.
	promoCfg                forest.PromoConfig
	promos                  map[core.DocID]*promoEntry     // home: per-doc tracker + roots
	replicaHeat             map[core.DocID]map[int]float64 // home: announced served rates per root
	replicaDocs             map[core.DocID]bool            // replica: docs this node hosts a replica for
	nPromotions, nDemotions int64

	// Failure-detector state (loop-owned except failoverOn, which the
	// Start-time orphan path also sets). lastParent / childSeen record when
	// each neighbor last produced control-visible traffic (gossip, pings,
	// pongs); the heartbeat tick turns prolonged silence into a closed
	// connection, which funnels into the same repair paths as a transport
	// error.
	failoverOn       atomic.Bool // a failover goroutine is hunting ancestors
	lastParent       time.Time
	parentMisses     int
	childSeen        map[int]time.Time
	childMisses      map[int]int
	nReconnects      int64
	nHeartbeatMisses int64

	batch      []event
	gossipSeen map[int]int // reused per-batch newest-gossip index by sender
	gossipEnv  netproto.Envelope
	laneSender              // lane index NumShards, after the shard lanes
	snapsBuf   []*shardSnap // reused mailbox-read scratch (loop-owned)
}

func newControl(s *Server) *control {
	return &control{
		s:           s,
		now:         time.Now(),
		childLoad:   make(map[int]float64, 8),
		childSeen:   make(map[int]time.Time, 8),
		childMisses: make(map[int]int, 8),
		batch:       make([]event, 0, s.cfg.MaxBatch),
		gossipSeen:  make(map[int]int, 8),
		laneSender:  laneSender{s: s, lane: len(s.shards)},
		promoCfg: forest.PromoConfig{
			PromoteThreshold: s.cfg.PromoteThreshold,
			DemoteThreshold:  s.cfg.DemoteThreshold,
			Hysteresis:       s.cfg.PromoteHysteresis,
		}.WithDefaults(),
		promos:      make(map[core.DocID]*promoEntry, 4),
		replicaHeat: make(map[core.DocID]map[int]float64, 4),
		replicaDocs: make(map[core.DocID]bool, 4),
	}
}

func (c *control) loop() {
	s := c.s
	defer s.wg.Done()
	gossip := time.NewTicker(s.cfg.GossipPeriod)
	defer gossip.Stop()
	diffuse := time.NewTicker(s.cfg.DiffusionPeriod)
	defer diffuse.Stop()
	var heartbeat <-chan time.Time // nil (never fires) when the detector is off
	if s.cfg.HeartbeatPeriod > 0 {
		hb := time.NewTicker(s.cfg.HeartbeatPeriod)
		defer hb.Stop()
		heartbeat = hb.C
	}
	for {
		select {
		case <-s.stopped:
			return
		case ev := <-s.events:
			c.now = time.Now()
			c.handleBatch(ev)
		case <-gossip.C:
			c.now = time.Now()
			c.doGossip()
		case <-diffuse.C:
			c.now = time.Now()
			c.doDiffusion()
		case <-heartbeat:
			c.now = time.Now()
			c.doHeartbeat()
		}
		c.flushDirty()
	}
}

// handleBatch drains the control queue (bounded by MaxBatch) under one
// clock reading. Queued gossip coalesces per neighbor — under backlog only
// the newest load figure matters, so stale ones are dropped instead of
// handled. Consumed envelopes return to netproto's pool.
func (c *control) handleBatch(first event) {
	c.batch = append(c.batch[:0], first)
drain:
	for len(c.batch) < c.s.cfg.MaxBatch {
		select {
		case ev := <-c.s.events:
			c.batch = append(c.batch, ev)
		default:
			break drain
		}
	}
	gossipSeen := c.gossipSeen
	if len(c.batch) > 1 {
		for i, ev := range c.batch {
			if !ev.closed && ev.env != nil && ev.env.Kind == netproto.TypeGossip {
				gossipSeen[ev.env.From] = i
			}
		}
	}
	for i, ev := range c.batch {
		if ev.closed {
			c.handleConnClosed(ev.conn)
			continue
		}
		if ev.cmd != cmdNone {
			c.handleCmd(ev)
			continue
		}
		if ev.env.Kind == netproto.TypeGossip && len(gossipSeen) > 0 {
			if last, ok := gossipSeen[ev.env.From]; ok && last != i {
				netproto.PutEnvelope(ev.env) // stale: a newer figure is queued
				continue
			}
		}
		c.handle(ev)
		netproto.PutEnvelope(ev.env)
	}
	clear(gossipSeen)
	clear(c.batch) // drop envelope/conn refs before reuse
}

func (c *control) handle(ev event) {
	env := ev.env
	s := c.s
	c.noteAlive(env.From)
	switch env.Kind {
	case netproto.TypeGossip:
		if pl := s.parentLink(); pl != nil && env.From == pl.id {
			c.parentLoad = env.Load
			c.parentKnown = true
			return
		}
		// First gossip from an unknown conn registers a child: the child
		// view is copy-on-write, so shard loops and the fast path observe
		// the registration without locking.
		if s.childConn(env.From) == nil {
			c.registerChild(env.From, ev.conn)
		}
		c.childLoad[env.From] = env.Load

	case netproto.TypePing:
		// Answer on the same connection; the pong both proves liveness to a
		// monitoring neighbor and completes an orphan's failover handshake.
		c.sendOn(ev.conn, &netproto.Envelope{
			Kind: netproto.TypePong, From: s.cfg.ID, To: env.From,
		})

	case netproto.TypePong:
		// Liveness only, recorded by noteAlive above.

	case netproto.TypePromote:
		c.handlePromote(ev)

	case netproto.TypeDemote:
		c.handleDemote(ev)

	case netproto.TypeStatsQuery:
		s.stampAndSend(ev.conn, &netproto.Envelope{
			Kind: netproto.TypeStatsReply, From: s.cfg.ID, To: env.From,
			Stats: c.snapshot(),
		})

	case netproto.TypeShutdown:
		go s.Stop()
	}
}

// handleCmd applies a command posted to the control queue (currently only
// the failover goroutine's "new parent link is live" hand-off).
func (c *control) handleCmd(ev event) {
	if ev.cmd == cmdParentUp {
		c.installParent(ev.child, ev.conn)
	}
}

// noteAlive records control-visible traffic from a tree neighbor for the
// failure detector.
func (c *control) noteAlive(from int) {
	if pl := c.s.parentLink(); pl != nil && from == pl.id {
		c.lastParent = c.now
		c.parentMisses = 0
		return
	}
	if _, ok := c.childSeen[from]; ok || c.s.childConn(from) != nil {
		c.childSeen[from] = c.now
		c.childMisses[from] = 0
	}
}

// registerChild rebuilds the copy-on-write child view with one more child.
func (c *control) registerChild(id int, conn transport.Conn) {
	old := c.s.children.Load()
	conns := make(map[int]transport.Conn, 8)
	if old != nil {
		for k, v := range old.conns {
			conns[k] = v
		}
	}
	conns[id] = conn
	c.s.children.Store(&childView{conns: conns})
}

// handleConnClosed routes a dead connection to the right repair path: the
// parent link's death makes this node an orphan (degraded serving plus a
// background failover hunt); a child's death tears down its registration
// and flow windows and re-absorbs the duty delegated to it. (Shard loops
// sweep their own per-connection routing state from the same close
// notification.)
func (c *control) handleConnClosed(conn transport.Conn) {
	if pl := c.s.parentLink(); pl != nil && pl.conn == conn {
		c.parentLost(pl)
		return
	}
	old := c.s.children.Load()
	if old == nil {
		return
	}
	gone := -1
	for id, cc := range old.conns {
		if cc == conn {
			gone = id
			break
		}
	}
	if gone < 0 {
		return
	}
	conns := make(map[int]transport.Conn, len(old.conns))
	for k, v := range old.conns {
		if k != gone {
			conns[k] = v
		}
	}
	c.s.children.Store(&childView{conns: conns})
	delete(c.childLoad, gone)
	delete(c.childSeen, gone)
	delete(c.childMisses, gone)
	for _, sh := range c.s.shards {
		// Blocking post: cmdChildGone now re-absorbs the child's delegated
		// duty, and dropping it would strand that duty in a deleted ledger.
		// The shard loops drain continuously and never post back to the
		// control queue, so this cannot deadlock.
		c.s.post(sh.events, event{cmd: cmdChildGone, child: gone})
	}
	c.forestChildGone(gone)
}

// parentLost flips the node into orphan mode: the parent pointer clears (so
// shards queue upward flow instead of sending it into a dead link), gossip
// figures for the parent reset, and — when an ancestor list is configured —
// a single failover goroutine starts hunting for a live ancestor.
func (c *control) parentLost(pl *parentLink) {
	s := c.s
	s.parent.Store(nil)
	pl.conn.Close() // idempotent; ensures a heartbeat-declared link really dies
	c.parentKnown = false
	c.parentLoad = 0
	c.parentMisses = 0
	if len(s.cfg.AncestorAddrs) == 0 {
		return
	}
	if !c.failoverOn.CompareAndSwap(false, true) {
		return // a hunt is already running
	}
	// wg.Add here is safe: the control loop itself is wg-tracked, so the
	// counter cannot have reached zero while this runs.
	s.wg.Add(1)
	go s.failover()
}

// installParent wires a handshaken ancestor connection in as the new
// parent: the link goes live for the shards, the node re-identifies itself
// (the ancestor registers it as a child on the gossip), and every shard
// replays its held duty (reclaim) and unanswered upward requests.
func (c *control) installParent(id int, conn transport.Conn) {
	s := c.s
	c.failoverOn.Store(false)
	if s.isRoot || s.parentLink() != nil {
		conn.Close() // stale hand-off: a parent is already live
		return
	}
	s.parent.Store(&parentLink{id: id, conn: conn})
	c.nReconnects++
	c.lastParent = c.now
	c.parentMisses = 0
	s.readLoop(conn)
	c.sendOn(conn, &netproto.Envelope{
		Kind: netproto.TypeGossip, From: s.cfg.ID, To: id, Load: sumLoad(c.snaps()),
	})
	for _, sh := range s.shards {
		// Blocking post, like cmdChildGone: losing this command would strand
		// the shard's queued upward flow until its pending TTL.
		s.post(sh.events, event{cmd: cmdParentRestored})
	}
}

// doHeartbeat pings every tree neighbor and turns prolonged silence into a
// closed connection. Closing is the whole intervention: the read loop's
// error then posts the close notifications every loop already repairs from,
// so a partition (no read error, traffic silently dropped) and a crashed
// peer (read error) converge on one code path.
func (c *control) doHeartbeat() {
	s := c.s
	period := s.cfg.HeartbeatPeriod
	env := netproto.Envelope{Kind: netproto.TypePing, From: s.cfg.ID}
	if pl := s.parentLink(); pl != nil {
		env.To = pl.id
		c.sendOn(pl.conn, &env)
		if c.lastParent.IsZero() {
			c.lastParent = c.now
		} else if c.now.Sub(c.lastParent) > period {
			c.parentMisses++
			c.nHeartbeatMisses++
			if c.parentMisses >= s.cfg.HeartbeatMisses {
				pl.conn.Close() // the read loop's error triggers parentLost
			}
		}
	}
	cv := s.children.Load()
	if cv == nil {
		return
	}
	for id, conn := range cv.conns {
		env.To = id
		c.sendOn(conn, &env)
		last, ok := c.childSeen[id]
		if !ok {
			c.childSeen[id] = c.now
			continue
		}
		if c.now.Sub(last) > period {
			c.childMisses[id]++
			c.nHeartbeatMisses++
			if c.childMisses[id] >= s.cfg.HeartbeatMisses {
				conn.Close() // the read loop's error triggers the child-gone path
			}
		}
	}
}

// snaps returns the latest mailbox snapshot of every shard (entries may be
// nil before the first tick). The backing slice is loop-owned scratch,
// valid until the next call.
func (c *control) snaps() []*shardSnap {
	if cap(c.snapsBuf) < len(c.s.shards) {
		c.snapsBuf = make([]*shardSnap, len(c.s.shards))
	}
	out := c.snapsBuf[:len(c.s.shards)]
	for i, sh := range c.s.shards {
		out[i] = sh.snap.Load()
	}
	return out
}

// sumLoad totals the shards' served rates from their snapshots.
func sumLoad(snaps []*shardSnap) float64 {
	load := 0.0
	for _, sn := range snaps {
		if sn != nil {
			load += sn.load
		}
	}
	return load
}

// doGossip sends this node's load figure to every tree neighbor. One
// envelope is built per tick and reused across neighbors; transports copy
// or serialize it per send.
func (c *control) doGossip() {
	s := c.s
	load := sumLoad(c.snaps())
	env := &c.gossipEnv
	*env = netproto.Envelope{Kind: netproto.TypeGossip, From: s.cfg.ID, Load: load}
	if pl := s.parentLink(); pl != nil {
		env.To = pl.id
		c.sendOn(pl.conn, env)
		c.nGossip++
	}
	if cv := s.children.Load(); cv != nil {
		for id, conn := range cv.conns {
			env.To = id
			c.sendOn(conn, env)
			c.nGossip++
		}
	}
}

// alpha returns the diffusion parameter: configured, or 1/(degree+1).
func (c *control) alpha() float64 {
	if c.s.cfg.Alpha > 0 {
		return c.s.cfg.Alpha
	}
	deg := 0
	if cv := c.s.children.Load(); cv != nil {
		deg = len(cv.conns)
	}
	if c.s.parentLink() != nil {
		deg++
	}
	return 1.0 / float64(deg+1)
}

// doDiffusion runs the Figure 5 body on current local knowledge: the
// neighbors' gossiped loads (control-owned) and the shards' snapshot
// mailboxes. Duty movements are posted to the owning shards as commands.
func (c *control) doDiffusion() {
	s := c.s
	snaps := c.snaps()
	load := sumLoad(snaps)
	a := c.alpha()
	gotDelegate := s.gotDelegate.Swap(false)

	// (2.1) Delegate down to less-loaded children, capped by A_j.
	for id, childLoad := range c.childLoad {
		if load <= childLoad {
			continue
		}
		want := a * (load - childLoad)
		c.delegateDown(id, want, snaps)
	}

	// (2.2) Shed up toward a less-loaded parent.
	if c.parentKnown && load > c.parentLoad {
		want := a * (load - c.parentLoad)
		c.shedUp(want, snaps)
	}

	// Claim passing flow when under-loaded (the "handle it if your rate is
	// smaller than it should be" rule), and evaluate the tunneling trigger.
	if c.parentKnown && load < c.parentLoad {
		want := a * (c.parentLoad - load)
		claimed := c.claimPassing(want, snaps)
		if gotDelegate || claimed > 0 {
			c.underFor = 0
		} else {
			c.underFor++
			if s.cfg.Tunneling && c.underFor >= s.cfg.BarrierPatience {
				c.tunnel(load, snaps)
				c.underFor = 0
			}
		}
	} else {
		c.underFor = 0
	}

	// Replication forests ride the diffusion cadence: the home runs the
	// promotion state machine, replica roots announce their served rates.
	c.doPromotion(snaps)
}

// delegateDown picks the child's largest forwarded streams we actually
// serve and posts delegation commands to the owning shards.
func (c *control) delegateDown(child int, want float64, snaps []*shardSnap) {
	if c.s.childConn(child) == nil {
		return
	}
	type cand struct {
		doc core.DocID
		cap float64
	}
	var cands []cand
	for _, sn := range snaps {
		if sn == nil {
			continue
		}
		flows := sn.flows[child]
		for doc, flow := range flows {
			if !c.s.holdsCopy(doc) {
				continue
			}
			srv := sn.served[doc]
			cap := flow
			if srv < cap {
				cap = srv // can only hand off duty we are actually carrying
			}
			if cap > 0 {
				cands = append(cands, cand{doc: doc, cap: cap})
			}
		}
	}
	// Largest stream first, deterministic tie-break by doc id.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cap != cands[j].cap {
			return cands[i].cap > cands[j].cap
		}
		return cands[i].doc < cands[j].doc
	})
	moved := 0.0
	for _, cd := range cands {
		if moved >= want {
			break
		}
		amt := want - moved
		if amt > cd.cap {
			amt = cd.cap
		}
		if c.s.tryPost(c.s.shardFor(cd.doc).events, event{cmd: cmdDelegate, child: child, doc: cd.doc, rate: amt}) {
			moved += amt
		}
	}
}

// shedUp posts shed commands for served documents until `want` duty moved.
func (c *control) shedUp(want float64, snaps []*shardSnap) {
	if c.s.parentLink() == nil {
		return
	}
	shed := 0.0
	for _, sn := range snaps {
		if sn == nil {
			continue
		}
		for doc, srv := range sn.served {
			if shed >= want {
				return
			}
			if srv <= 0 {
				continue
			}
			amt := want - shed
			if amt > srv {
				amt = srv
			}
			if c.s.tryPost(c.s.shardFor(doc).events, event{cmd: cmdShed, doc: doc, rate: amt}) {
				shed += amt
			}
		}
	}
}

// claimPassing raises targets on cached documents whose requests still flow
// through this node, up to `want`; the upstream copies lose that flow
// automatically. Returns the amount claimed.
func (c *control) claimPassing(want float64, snaps []*shardSnap) float64 {
	claimed := 0.0
	for _, sn := range snaps {
		if sn == nil {
			continue
		}
		// Union of docs with observed flow, totaled across senders.
		flowOf := make(map[core.DocID]float64, 16)
		for _, flows := range sn.flows {
			for doc, r := range flows {
				flowOf[doc] += r
			}
		}
		for doc, flow := range flowOf {
			if claimed >= want {
				return claimed
			}
			if !c.s.holdsCopy(doc) {
				continue
			}
			spare := flow - sn.served[doc]
			if spare <= 0 {
				continue
			}
			amt := want - claimed
			if amt > spare {
				amt = spare
			}
			if c.s.tryPost(c.s.shardFor(doc).events, event{cmd: cmdClaim, doc: doc, rate: amt}) {
				claimed += amt
			}
		}
	}
	return claimed
}

// tunnel fetches the hottest forwarded-but-uncached document straight from
// the home server (Section 5.2).
func (c *control) tunnel(load float64, snaps []*shardSnap) {
	s := c.s
	if s.cfg.HomeAddr == "" || s.isRoot {
		return
	}
	var best core.DocID
	bestFlow := 0.0
	for _, sn := range snaps {
		if sn == nil {
			continue
		}
		for _, flows := range sn.flows {
			for doc, r := range flows {
				if r > bestFlow && !s.holdsCopy(doc) {
					best, bestFlow = doc, r
				}
			}
		}
	}
	if bestFlow <= 0 {
		return
	}
	conn, err := transport.DialOn(s.cfg.Network, s.cfg.Addr, s.cfg.HomeAddr)
	if err != nil {
		return
	}
	c.nTunnels++
	c.sendOn(conn, &netproto.Envelope{
		Kind: netproto.TypeTunnelFetch, From: s.cfg.ID, Doc: best,
	})
	s.readLoop(conn)
	// Pre-claim a share of the stream we already forward.
	deficit := (c.parentLoad - load) / 2
	claim := bestFlow
	if claim > deficit {
		claim = deficit
	}
	if claim > 0 {
		s.tryPost(s.shardFor(best).events, event{cmd: cmdPreclaim, doc: best, rate: claim})
	}
}

// snapshot assembles the stats scrape. Counters come from synchronous
// shard snapshots (cmdSnap forces a fresh drain of the fast-path atomics,
// so a scrape right after traffic observes it all); queue depths and
// router/cache figures are read live.
func (c *control) snapshot() *netproto.Stats {
	s := c.s
	snaps := c.freshSnaps()
	st := &netproto.Stats{
		Node:       s.cfg.ID,
		Targets:    make(map[core.DocID]float64, 16),
		GossipSent: c.nGossip,
		Tunnels:    c.nTunnels,
		// Maintained incrementally by the store — no per-scrape walk over
		// every cached body.
		CacheBytes:       s.cache.Bytes(),
		CacheBudgetBytes: s.cfg.CacheBudgetBytes,
		EvictedDocs:      s.nEvicted.Load(),
		EvictedBytes:     s.nEvictedBytes.Load(),
		MaxCacheBytes:    s.cache.MaxBytes(),
		Shards:           len(s.shards),
		ParentID:         -1,
		Reconnects:       c.nReconnects,
		HeartbeatMisses:  c.nHeartbeatMisses,
	}
	if pl := s.parentLink(); pl != nil {
		st.ParentID = pl.id
	} else if !s.isRoot {
		st.Orphaned = 1
	}
	st.ShardSnapEpochs = make([]uint64, len(snaps))
	var rs router.Stats
	for i, sn := range snaps {
		if sn == nil {
			continue
		}
		st.ShardSnapEpochs[i] = sn.epoch
		st.Load += sn.load
		st.Served += sn.counters.served
		st.Forwarded += sn.counters.forwarded
		st.Coalesced += sn.counters.coalesced
		st.DelegationsIn += sn.counters.delegIn
		st.DelegationsOut += sn.counters.delegOut
		st.ShedsIn += sn.counters.shedIn
		st.ShedsOut += sn.counters.shedOut
		st.EvictHintsIn += sn.counters.evictHintsIn
		st.ReclaimedDuty += sn.counters.reclaimedDuty
		st.AbsorbedDuty += sn.counters.absorbedDuty
		st.DiskHits += sn.counters.diskHits
		st.RepublishesIn += sn.counters.republishesIn
		st.InvalidationsIn += sn.counters.invalidationsIn
		st.StaleDrops += sn.counters.staleDrops
		st.LeaseRefreshes += sn.counters.leaseRefreshes
		st.SessionRefreshes += sn.counters.sessionRefreshes
		// Snapshot-carried (not a live atomic), so a scrape never reports
		// more fast serves than the drained Served it sits inside.
		st.FastServed += sn.counters.fastServed
		st.PendingLen += sn.pendingLen
		for d, t := range sn.targets {
			st.Targets[d] = t
		}
		// Router state comes from the same snapshot as the duty figures —
		// never a live read that could be newer than the targets beside it.
		rs.Inspected += sn.filter.Inspected
		rs.Extracted += sn.filter.Extracted
		rs.Passed += sn.filter.Passed
		st.CachedDocs = append(st.CachedDocs, sn.installed...)
	}
	sort.Slice(st.CachedDocs, func(i, j int) bool { return st.CachedDocs[i] < st.CachedDocs[j] })
	// The publication index is the filter table's lock-free fast lane:
	// count its serves as inspected-and-extracted packets so filter
	// accounting still covers every request.
	st.FilterStats = netproto.FilterStats{
		Inspected: rs.Inspected + st.FastServed,
		Extracted: rs.Extracted + st.FastServed,
		Passed:    rs.Passed,
	}
	st.ShardQueueLens, st.CtrlQueueLen, st.QueueLen = s.queueLens()
	if s.disk != nil {
		st.DiskDocs = int64(s.disk.Len())
		st.DiskBytes = s.disk.Bytes()
		st.DiskBudgetBytes = s.disk.Budget()
		st.DiskSpills = s.nSpills.Load()
		st.WarmDocs = int64(s.warmDocs)
	}
	if s.journal != nil {
		st.JournalLag = s.journal.Lag()
	}
	c.promoStats(st)
	return st
}

// freshSnaps asks every shard for a synchronous snapshot (draining its
// fast-path counters first) and falls back to the mailbox where a shard is
// too backlogged to answer in time. The cap trades a stalled control loop
// (gossip and diffusion pause while a scrape waits on a wedged shard)
// against scrape freshness; because every figure in a snapshot — targets,
// filters, counters — is captured together, a timeout degrades a scrape to
// uniformly stale, never to torn.
func (c *control) freshSnaps() []*shardSnap {
	s := c.s
	reply := make(chan *shardSnap, len(s.shards))
	asked := 0
	for _, sh := range s.shards {
		select {
		case sh.events <- event{cmd: cmdSnap, reply: reply}:
			asked++
		case <-s.stopped:
		default:
			// Shard queue full: don't block the scrape behind a saturated
			// shard; its mailbox is at most a tick stale.
		}
	}
	// Bound the stall relative to the protocol's own cadence: long enough
	// that an idle shard always answers (the harness asserts scrape
	// freshness), short enough that a wedged shard costs a few gossip
	// periods of control-loop time, not a fixed second.
	wait := 8 * s.cfg.GossipPeriod
	if wait < 200*time.Millisecond {
		wait = 200 * time.Millisecond
	}
	if wait > time.Second {
		wait = time.Second
	}
	timeout := time.NewTimer(wait)
	defer timeout.Stop()
	got := 0
	for got < asked {
		select {
		case <-reply:
			got++
		case <-timeout.C:
			asked = got // stop waiting; stale mailboxes cover the rest
		case <-s.stopped:
			asked = got
		}
	}
	return c.snaps()
}
