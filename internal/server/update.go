package server

// Mutable documents: versioned republish and tree-diffused invalidation.
//
// A write enters the tree at the origin (root) as a republish (new body,
// new version) or an invalidate (version only) and diffuses down the same
// filter/target edges the duty protocol maintains. Each node version-gates
// the frame against its per-document high-water mark, so duplicates and
// reordered stale frames are dropped, never applied. A copy-holding node
// either swaps the new body into both tiers in place (republish) or drops
// the stale body while KEEPING its admission filter, targets and duty
// (invalidate) — requests then miss locally and travel upward through the
// existing single-flight table, which acts as the subtree's lease: however
// many clients storm a freshly invalidated document, one fetch per shard
// travels toward the origin, and the response re-admits the fresh copy for
// everyone coalesced behind it.
//
// Body frames ride only the edges the duty ledger says have copies below
// them (the delegation/promotion edges); every other child gets a cheap
// version-only invalidate and forwards it on, so deeper copies the ledger
// cannot see (tunneled ones, for instance) still converge — they drop to
// stale and lease-refresh on the next demand.

import (
	"webwave/internal/core"
	"webwave/internal/netproto"
)

// bumpDocVer advances the shard's latest-known version for doc, reporting
// whether ver was news. Versions only move forward.
func (sh *shard) bumpDocVer(doc core.DocID, ver uint64) bool {
	if ver <= sh.docVer[doc] {
		return false
	}
	sh.docVer[doc] = ver
	return true
}

// handleRepublish applies one versioned body push: gate on the version,
// refresh (origin or copy-holder) locally, diffuse down the tree.
func (sh *shard) handleRepublish(env *netproto.Envelope) {
	doc, ver := env.Doc, env.DocVersion
	if !sh.bumpDocVer(doc, ver) {
		sh.nStaleDrops++
		return
	}
	sh.nRepublishesIn++
	var body []byte
	if len(env.Body) > 0 {
		body = env.Body // safe to retain: recycled envelopes drop, never reuse, Body
	}
	switch {
	case sh.s.isRoot:
		sh.originWrite(doc, body, ver)
		sh.answerParked(doc)
	case sh.s.holdsCopy(doc):
		if body == nil || !sh.refreshCopy(doc, body, ver) {
			// No body to install (or neither tier kept it): degrade to an
			// invalidation so the stale copy never serves again.
			sh.invalidateLocal(doc)
		}
	}
	sh.diffuseDown(doc, ver, body)
}

// handleInvalidate applies one version-only write: gate, drop any local
// stale copy (duty and filter stay), diffuse version-only frames down. At
// the origin an injected invalidate may carry the new body — the root must
// always serve the latest version — but it never travels further.
func (sh *shard) handleInvalidate(env *netproto.Envelope) {
	doc, ver := env.Doc, env.DocVersion
	if !sh.bumpDocVer(doc, ver) {
		sh.nStaleDrops++
		return
	}
	sh.nInvalidationsIn++
	if sh.s.isRoot && len(env.Body) > 0 {
		sh.originWrite(doc, env.Body, ver)
	} else {
		sh.invalidateLocal(doc)
	}
	if sh.s.isRoot {
		sh.answerParked(doc)
	}
	sh.diffuseDown(doc, ver, nil)
}

// originWrite installs a new version at the home server: the pinned origin
// copy swaps in place and stays immune to eviction. A version-only frame
// cannot install anything — the previous origin body keeps serving (the
// origin is never stale relative to itself; its copy IS the document until
// a body arrives).
func (sh *shard) originWrite(doc core.DocID, body []byte, ver uint64) {
	if body == nil {
		return
	}
	if !sh.s.cache.PinVersion(doc, body, ver) {
		return
	}
	sh.rt.Install(doc, nil) // the home extracts everything it owns
	sh.publish(doc, body, true, ver)
}

// refreshCopy swaps a republished body into both tiers in place, keeping
// the document's filter, targets and duty exactly as they were — a
// republish moves data, not duty. Reports whether at least one tier holds
// the new body.
func (sh *shard) refreshCopy(doc core.DocID, body []byte, ver uint64) bool {
	if sh.s.disk != nil {
		// Disk bodies are immutable per version; replace, don't touch.
		sh.s.disk.Delete(doc)
		sh.diskWriteThrough(doc, body)
	}
	evs, inMem := sh.s.cache.PutVersion(doc, body, ver)
	sh.applyEvictions(evs)
	if inMem {
		sh.publish(doc, body, false, ver)
		sh.refreshCredit(doc)
	} else {
		// Memory refused the new body (it outgrew the budget): the fast path
		// must not keep serving the old one.
		sh.unpublish(doc)
	}
	sh.journalVersion(doc, ver)
	return inMem || sh.s.diskHas(doc)
}

// invalidateLocal drops the stale body from both tiers while keeping the
// document's admission filter, targets and duty. Requests now miss locally
// and travel upward through the single-flight table — the lease — and the
// response re-admits the fresh copy (maybeLeaseRefresh).
func (sh *shard) invalidateLocal(doc core.DocID) {
	if !sh.s.holdsCopy(doc) {
		return
	}
	sh.unpublish(doc)
	sh.s.cache.Delete(doc)
	if sh.s.disk != nil {
		sh.s.disk.Delete(doc)
	}
	sh.staleDocs[doc] = true
	// The node no longer holds a body in any tier; a restart before the
	// lease refresh recovers without this document, like any dropped copy.
	sh.journalDrop(doc)
}

// diffuseDown forwards a write down every child edge. Children whose duty
// ledger shows delegated duty for doc likely hold a copy below them, so
// they get the full republish (body included); the rest get a version-only
// invalidate — any deeper copy the ledger cannot see drops to stale and
// lease-refreshes on its next demand.
func (sh *shard) diffuseDown(doc core.DocID, ver uint64, body []byte) {
	cv := sh.s.children.Load()
	if cv == nil {
		return
	}
	out := netproto.GetEnvelope()
	for id, conn := range cv.conns {
		kind, b := netproto.TypeInvalidate, []byte(nil)
		if body != nil && sh.childDuty[id][doc] > 0 {
			kind, b = netproto.TypeRepublish, body
		}
		*out = netproto.Envelope{
			Kind: kind, From: sh.s.cfg.ID, To: id,
			Doc: doc, DocVersion: ver, Body: b,
		}
		sh.sendOn(conn, out)
	}
	netproto.PutEnvelope(out)
}

// maybeLeaseRefresh re-admits a stale copy from a response passing through:
// the single-flight fetch that produced it is the subtree's lease, so the
// refreshed copy costs the origin one fetch however many clients stormed
// the document here.
func (sh *shard) maybeLeaseRefresh(env *netproto.Envelope) {
	if !sh.staleDocs[env.Doc] || env.NotFound || len(env.Body) == 0 {
		return
	}
	if env.DocVersion < sh.docVer[env.Doc] {
		return // upstream served an older version: keep waiting for the write
	}
	if sh.admit(env.Doc, env.Body, env.DocVersion) {
		delete(sh.staleDocs, env.Doc)
		sh.nLeaseRefreshes++
		sh.refreshCredit(env.Doc)
	}
}

// answerParked serves session requests parked at the root (sessionGate) for
// a version that just arrived: once the high-water mark satisfies a
// waiter's floor it is answered from the pinned origin copy — the origin is
// never stale relative to itself, so the copy is stamped at docVer exactly
// like serveRequest does. Waiters demanding a still-newer version stay
// parked for the next write (or the sweep's expiry).
func (sh *shard) answerParked(doc core.DocID) {
	fl := sh.inflight[doc]
	if fl == nil || len(fl.waiters) == 0 {
		return
	}
	body, ok := sh.s.bodyOf(doc)
	if !ok {
		return
	}
	ver := sh.docVer[doc]
	var kept []waiter
	out := netproto.GetEnvelope()
	for _, w := range fl.waiters {
		if w.minVer > ver {
			kept = append(kept, w)
			continue
		}
		sh.nServed++
		sh.totalServed.Add(sh.now, 1)
		sh.servedWindow(doc).Add(sh.now, 1)
		*out = netproto.Envelope{
			Kind: netproto.TypeResponse, From: sh.s.cfg.ID, To: w.origin,
			Doc: doc, Origin: w.origin, ReqID: w.reqID,
			ServedBy: sh.s.cfg.ID, Body: body, DocVersion: ver,
		}
		sh.sendOn(w.conn, out)
	}
	netproto.PutEnvelope(out)
	if len(kept) == 0 {
		delete(sh.inflight, doc)
		return
	}
	fl.waiters = kept
}

// journalVersion records the held copy's version, deduplicated per
// version, so a warm restart recovers the version alongside the body.
func (sh *shard) journalVersion(doc core.DocID, ver uint64) {
	j := sh.s.journal
	if j == nil || ver == 0 {
		return
	}
	if sh.jVers[doc] == ver {
		return
	}
	if sh.jVers == nil {
		sh.jVers = make(map[core.DocID]uint64, 16)
	}
	sh.jVers[doc] = ver
	_ = j.AppendVersion(doc, ver)
}
