package server

import (
	"testing"
	"time"

	"webwave/internal/core"
	"webwave/internal/netproto"
	"webwave/internal/transport"
)

func newTestNetwork() transport.Network {
	return transport.NewMemoryNetwork(transport.MemoryOptions{})
}

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(s.Stop)
	return s
}

func dial(t *testing.T, netw transport.Network, addr string) transport.Conn {
	t.Helper()
	conn, err := netw.Dial(addr)
	if err != nil {
		t.Fatalf("Dial %s: %v", addr, err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func recvKind(t *testing.T, conn transport.Conn, kind netproto.Type, timeout time.Duration) *netproto.Envelope {
	t.Helper()
	deadline := time.Now().Add(timeout)
	type result struct {
		env *netproto.Envelope
		err error
	}
	for time.Now().Before(deadline) {
		ch := make(chan result, 1)
		go func() {
			env, err := conn.Recv()
			ch <- result{env, err}
		}()
		select {
		case r := <-ch:
			if r.err != nil {
				t.Fatalf("Recv: %v", r.err)
			}
			if r.env.Kind == kind {
				return r.env
			}
		case <-time.After(time.Until(deadline)):
		}
	}
	t.Fatalf("no %s within %v", kind, timeout)
	return nil
}

func TestConfigValidation(t *testing.T) {
	netw := newTestNetwork()
	if _, err := New(Config{Addr: "a"}); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := New(Config{Network: netw}); err == nil {
		t.Error("empty address accepted")
	}
	if _, err := New(Config{Network: netw, Addr: "a", ParentID: 3}); err == nil {
		t.Error("non-root without parent address accepted")
	}
}

func TestRootServesOwnedDocs(t *testing.T) {
	netw := newTestNetwork()
	startServer(t, Config{
		ID: 0, Addr: "root", ParentID: -1,
		Docs:    map[core.DocID][]byte{"d1": []byte("body")},
		Network: netw,
	})
	conn := dial(t, netw, "root")
	if err := conn.Send(&netproto.Envelope{
		Kind: netproto.TypeRequest, From: -1, Origin: 0, ReqID: 1, Doc: "d1",
	}); err != nil {
		t.Fatal(err)
	}
	resp := recvKind(t, conn, netproto.TypeResponse, 2*time.Second)
	if resp.ServedBy != 0 || resp.ReqID != 1 {
		t.Errorf("response = %+v", resp)
	}
}

func TestChildForwardsToParent(t *testing.T) {
	netw := newTestNetwork()
	startServer(t, Config{
		ID: 0, Addr: "root", ParentID: -1,
		Docs:    map[core.DocID][]byte{"d1": []byte("body")},
		Network: netw,
	})
	startServer(t, Config{
		ID: 1, Addr: "child", ParentID: 0, ParentAddr: "root", HomeAddr: "root",
		Network: netw,
	})
	conn := dial(t, netw, "child")
	if err := conn.Send(&netproto.Envelope{
		Kind: netproto.TypeRequest, From: -1, Origin: 1, ReqID: 7, Doc: "d1",
	}); err != nil {
		t.Fatal(err)
	}
	resp := recvKind(t, conn, netproto.TypeResponse, 2*time.Second)
	if resp.ServedBy != 0 {
		t.Errorf("served by %d, want root (0)", resp.ServedBy)
	}
	if resp.Hops != 1 {
		t.Errorf("hops = %d, want 1", resp.Hops)
	}
}

func TestStatsScrape(t *testing.T) {
	netw := newTestNetwork()
	startServer(t, Config{
		ID: 0, Addr: "root", ParentID: -1,
		Docs:    map[core.DocID][]byte{"d1": []byte("x"), "d2": []byte("y")},
		Network: netw,
	})
	conn := dial(t, netw, "root")
	// Generate some traffic first.
	for i := 0; i < 5; i++ {
		conn.Send(&netproto.Envelope{
			Kind: netproto.TypeRequest, From: -1, Origin: 0, ReqID: uint64(i + 1), Doc: "d1",
		})
	}
	for i := 0; i < 5; i++ {
		recvKind(t, conn, netproto.TypeResponse, 2*time.Second)
	}
	if err := conn.Send(&netproto.Envelope{Kind: netproto.TypeStatsQuery, From: -1}); err != nil {
		t.Fatal(err)
	}
	reply := recvKind(t, conn, netproto.TypeStatsReply, 2*time.Second)
	if reply.Stats == nil {
		t.Fatal("nil stats")
	}
	if reply.Stats.Served != 5 {
		t.Errorf("served = %d, want 5", reply.Stats.Served)
	}
	if len(reply.Stats.CachedDocs) != 2 {
		t.Errorf("cached docs = %v", reply.Stats.CachedDocs)
	}
	if reply.Stats.FilterStats.Inspected == 0 {
		t.Error("filter stats empty")
	}
}

func TestDelegationMovesServiceDown(t *testing.T) {
	netw := newTestNetwork()
	startServer(t, Config{
		ID: 0, Addr: "root", ParentID: -1,
		Docs:            map[core.DocID][]byte{"hot": []byte("body")},
		Network:         netw,
		GossipPeriod:    10 * time.Millisecond,
		DiffusionPeriod: 20 * time.Millisecond,
		Window:          200 * time.Millisecond,
	})
	startServer(t, Config{
		ID: 1, Addr: "child", ParentID: 0, ParentAddr: "root", HomeAddr: "root",
		Network:         netw,
		GossipPeriod:    10 * time.Millisecond,
		DiffusionPeriod: 20 * time.Millisecond,
		Window:          200 * time.Millisecond,
	})
	conn := dial(t, netw, "child")

	// Pump requests through the child toward the root; the root should
	// delegate the hot document back down.
	served := map[int]int{}
	deadline := time.Now().Add(4 * time.Second)
	var reqID uint64
	for time.Now().Before(deadline) {
		reqID++
		conn.Send(&netproto.Envelope{
			Kind: netproto.TypeRequest, From: -1, Origin: 1, ReqID: reqID, Doc: "hot",
		})
		resp := recvKind(t, conn, netproto.TypeResponse, 2*time.Second)
		served[resp.ServedBy]++
		if served[1] > 20 {
			break // child is serving: delegation worked
		}
		time.Sleep(2 * time.Millisecond)
	}
	if served[1] == 0 {
		t.Fatalf("child never served; distribution %v", served)
	}
}

func TestTunnelingAcrossLiveBarrier(t *testing.T) {
	// Chain root(0) <- parent(1) <- child(2). The parent is kept busy with
	// its own hot document dP (delegated down from the home), while the
	// child's document dC flows through to the home. The parent never has
	// dC duty to delegate, so the under-loaded child must tunnel dC
	// straight from the home and start serving it locally.
	netw := newTestNetwork()
	period := 15 * time.Millisecond
	common := func(cfg Config) Config {
		cfg.GossipPeriod = period
		cfg.DiffusionPeriod = 2 * period
		cfg.Window = 250 * time.Millisecond
		cfg.Network = netw
		cfg.Tunneling = true
		cfg.BarrierPatience = 3
		return cfg
	}
	startServer(t, common(Config{
		ID: 0, Addr: "root", ParentID: -1,
		Docs: map[core.DocID][]byte{"dP": []byte("hot"), "dC": []byte("cold")},
	}))
	startServer(t, common(Config{
		ID: 1, Addr: "parent", ParentID: 0, ParentAddr: "root", HomeAddr: "root",
	}))
	childSrv := startServer(t, common(Config{
		ID: 2, Addr: "child", ParentID: 1, ParentAddr: "parent", HomeAddr: "root",
	}))
	_ = childSrv

	parentConn := dial(t, netw, "parent")
	childConn := dial(t, netw, "child")

	// Traffic pumps: heavy dP at the parent, light dC at the child.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		var id uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			id++
			parentConn.Send(&netproto.Envelope{
				Kind: netproto.TypeRequest, From: -1, Origin: 1, ReqID: id, Doc: "dP",
			})
			if id%8 == 0 {
				childConn.Send(&netproto.Envelope{
					Kind: netproto.TypeRequest, From: -1, Origin: 2, ReqID: id, Doc: "dC",
				})
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	// Wait for the child to acquire dC — via tunnel (or, if dynamics allow,
	// a delegation that reached it).
	statsConn := dial(t, netw, "child")
	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		statsConn.Send(&netproto.Envelope{Kind: netproto.TypeStatsQuery, From: -1})
		reply := recvKind(t, statsConn, netproto.TypeStatsReply, 2*time.Second)
		for _, d := range reply.Stats.CachedDocs {
			if d == "dC" {
				return // the barrier was crossed
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatal("child never obtained dC across the barrier")
}

func TestShutdownMessage(t *testing.T) {
	netw := newTestNetwork()
	s := startServer(t, Config{
		ID: 0, Addr: "root", ParentID: -1, Network: netw,
	})
	conn := dial(t, netw, "root")
	if err := conn.Send(&netproto.Envelope{Kind: netproto.TypeShutdown, From: -1}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		s.Stop() // must return promptly even though shutdown already ran
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("Stop did not complete after shutdown message")
	}
}

func TestStopIdempotent(t *testing.T) {
	netw := newTestNetwork()
	s := startServer(t, Config{ID: 0, Addr: "root", ParentID: -1, Network: netw})
	s.Stop()
	s.Stop() // second call must be safe
}

func TestTunnelFetchServedByHome(t *testing.T) {
	netw := newTestNetwork()
	startServer(t, Config{
		ID: 0, Addr: "root", ParentID: -1,
		Docs:    map[core.DocID][]byte{"d": []byte("tunnel-me")},
		Network: netw,
	})
	conn := dial(t, netw, "root")
	if err := conn.Send(&netproto.Envelope{Kind: netproto.TypeTunnelFetch, From: 9, Doc: "d"}); err != nil {
		t.Fatal(err)
	}
	reply := recvKind(t, conn, netproto.TypeTunnelReply, 2*time.Second)
	if string(reply.Body) != "tunnel-me" {
		t.Errorf("tunnel body = %q", reply.Body)
	}
}
